// Package usched is a deterministic simulation framework reproducing the
// PPoPP'26 paper "Rethinking Thread Scheduling under Oversubscription: A
// User-Space Framework for Coordinating Multi-runtime and Multi-process
// Workloads" (Roca & Beltran).
//
// It provides, fully in Go with no external dependencies:
//
//   - a simulated Linux kernel (EEVDF-style fair scheduler, SCHED_RR,
//     futexes, affinity, NUMA/cache/bandwidth cost models);
//   - a glibc-like pthread layer with two backends — standard futex
//     synchronisation and "glibcv", which routes every pthread and
//     blocking call through the nOS-V tasking library;
//   - USF, the user-space scheduling framework: a pluggable policy
//     interface over nOS-V, with the paper's SCHED_COOP cooperative
//     policy plus example alternatives;
//   - the runtime substrates the paper composes (OpenMP gomp/libomp,
//     OmpSs-2, oneTBB, pthreadpool, OpenBLAS/BLIS, MPICH-like MPI);
//   - the four evaluation workloads (nested matmul, Cholesky runtime
//     compositions, AI microservices, LAMMPS+DeePMD ensembles) and
//     drivers that regenerate every table and figure of the paper's
//     evaluation section.
//
// # Quick start
//
//	sys := usched.NewSystem(usched.SmallNode(), 1)
//	sys.Start("app", usched.SchedCoop, usched.ProcessOptions{}, func(l *usched.CLib) {
//	    pt := l.PthreadCreate("worker", func() { l.Compute(time.Millisecond) })
//	    l.PthreadJoin(pt)
//	})
//	sys.Run(0)
//
// See the examples/ directory for runnable programs and cmd/uschedsim for
// the experiment CLI.
package usched

import (
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/glibc"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/load"
	"repro/internal/nosv"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/usf"
	"repro/internal/workloads/cholesky"
	"repro/internal/workloads/inference"
	"repro/internal/workloads/matmul"
	"repro/internal/workloads/md"
)

// Core simulation types.
type (
	// System is a wired simulated machine (engine + kernel + USF).
	System = stack.System
	// Mode selects one of the paper's software stacks (Fig. 2).
	Mode = stack.Mode
	// MachineSpec describes the simulated hardware.
	MachineSpec = hw.Config
	// CLib is a process's C library handle (the pthread API surface).
	CLib = glibc.Lib
	// ProcessOptions configures a simulated process.
	ProcessOptions = glibc.Options
	// Pthread is a pthread_t handle.
	Pthread = glibc.Pthread
	// CPUMask is a cpu_set_t-style affinity mask.
	CPUMask = kernel.Mask
	// Duration / VTime are virtual time types (nanoseconds).
	Duration = sim.Duration
	// VTime is an absolute point in virtual time.
	VTime = sim.Time
)

// Stack modes (Fig. 2).
const (
	// Original: stock glibc, unpatched busy-wait barriers.
	Original = stack.ModeOriginal
	// Baseline: stock glibc + sched_yield barrier patch.
	Baseline = stack.ModeBaseline
	// Manual: hand-integrated nOS-V (blocking barriers).
	Manual = stack.ModeManual
	// SchedCoop: transparent glibcv + SCHED_COOP.
	SchedCoop = stack.ModeCoop
)

// USF policy framework types, for writing custom scheduling policies
// (see examples/custom-policy).
type (
	// Policy is the USF scheduling-policy interface.
	Policy = nosv.Policy
	// Task is a nOS-V task bound to a worker thread.
	Task = nosv.Task
	// Instance is a nOS-V shared-memory segment instance.
	Instance = nosv.Instance
	// CoopConfig tunes SCHED_COOP.
	CoopConfig = usf.CoopConfig
	// SchedCoopPolicy is the paper's cooperative policy.
	SchedCoopPolicy = usf.SchedCoop
)

// NewSchedCoop builds a SCHED_COOP policy instance.
func NewSchedCoop(cfg CoopConfig) *SchedCoopPolicy { return usf.NewSchedCoop(cfg) }

// DefaultCoopConfig returns the paper's SCHED_COOP defaults (20 ms
// process quantum, core→NUMA→any placement).
func DefaultCoopConfig() CoopConfig { return usf.DefaultCoopConfig() }

// Machine presets.

// MareNostrum5 is the paper's Table 1 machine: 2x56-core Sapphire Rapids.
func MareNostrum5() MachineSpec { return hw.MareNostrum5() }

// SmallNode is an 8-core single-socket machine for demos and tests.
func SmallNode() MachineSpec { return hw.SmallNode() }

// DualSocket16 is a 2x8-core machine exercising NUMA placement.
func DualSocket16() MachineSpec { return hw.DualSocket16() }

// NewSystem wires a simulated machine with the default kernel scheduler
// parameters (a CFS-era Linux, matching the paper's testbed).
func NewSystem(machine MachineSpec, seed uint64) *System { return stack.New(machine, seed) }

// NewSystemOnEngine wires a simulated machine over an existing engine,
// so several fully independent machines share one deterministic event
// loop — the building block of the cluster layer. seed roots the
// system's private RNG-stream namespace (System.Rand).
func NewSystemOnEngine(eng *sim.Engine, machine MachineSpec, seed uint64, params KernelSchedParams) *System {
	return stack.NewOnEngine(eng, machine, seed, params)
}

// NewEngine returns a bare discrete-event engine, for wiring multi-node
// clusters (see the cluster types below).
func NewEngine(seed uint64) *sim.Engine { return sim.NewEngine(seed) }

// Kernel scheduling classes. The simulated kernel's scheduler is a set
// of pluggable classes (kernel.Class): EEVDF-style fair, SCHED_RR,
// SCHED_FIFO, and SCHED_BATCH ship built in, and new classes register
// with kernel.RegisterClass.
type (
	// KernelSchedParams are the simulated kernel's scheduler tunables,
	// including the DefaultClass every thread starts in.
	KernelSchedParams = kernel.SchedParams
	// KernelClass is one pluggable kernel scheduling class.
	KernelClass = kernel.Class
)

// DefaultKernelSchedParams returns the stock Linux-like tunables used by
// NewSystem.
func DefaultKernelSchedParams() KernelSchedParams { return kernel.DefaultSchedParams() }

// NewSystemWithParams wires a machine with explicit kernel scheduler
// parameters.
func NewSystemWithParams(machine MachineSpec, seed uint64, params KernelSchedParams) *System {
	return stack.NewWithParams(machine, seed, params)
}

// NewSystemWithClass wires a machine whose kernel schedules every thread
// under the named scheduling class ("fair", "rr", "fifo", "batch") —
// the kernel-scheduler ablation entry point (see the schedcmp scenario).
func NewSystemWithClass(machine MachineSpec, seed uint64, class string) *System {
	return stack.NewWithClass(machine, seed, class)
}

// KernelClasses returns the registered kernel scheduling-class names.
func KernelClasses() []string { return kernel.ClassNames() }

// Workload configurations and single-run entry points.
type (
	// MatmulConfig parameterises the §5.3 nested-runtime matmul.
	MatmulConfig = matmul.Config
	// MatmulResult is its outcome.
	MatmulResult = matmul.Result
	// CholeskyConfig parameterises the §5.4 composition study.
	CholeskyConfig = cholesky.Config
	// CholeskyResult is its outcome.
	CholeskyResult = cholesky.Result
	// MicroservicesConfig parameterises the §5.5 AI service benchmark.
	MicroservicesConfig = inference.Config
	// MicroservicesResult is its outcome.
	MicroservicesResult = inference.Result
	// InferenceModel is one inference server's compute profile.
	InferenceModel = inference.Model
	// InferenceScheme is one of Fig. 4's resource-management schemes.
	InferenceScheme = inference.Scheme
	// MDConfig parameterises the §5.6 LAMMPS+DeePMD study.
	MDConfig = md.Config
	// MDResult is its outcome.
	MDResult = md.Result
)

// Microservices resource-management schemes (Fig. 4).
const (
	// InferenceBlNone: no partitioning, stock scheduler.
	InferenceBlNone = inference.BlNone
	// InferenceBlEq: equal core split between servers.
	InferenceBlEq = inference.BlEq
	// InferenceBlOpt: scalability-proportional split.
	InferenceBlOpt = inference.BlOpt
	// InferenceBlNoneSeq: no partitioning, sequential inference.
	InferenceBlNoneSeq = inference.BlNoneSeq
	// InferenceCoop: SCHED_COOP.
	InferenceCoop = inference.Coop
)

// RunMatmul executes one nested-runtime matmul configuration.
func RunMatmul(cfg MatmulConfig) MatmulResult { return matmul.Run(cfg) }

// RunCholesky executes one runtime-composition configuration.
func RunCholesky(cfg CholeskyConfig) CholeskyResult { return cholesky.Run(cfg) }

// RunMicroservices executes one microservices configuration.
func RunMicroservices(cfg MicroservicesConfig) MicroservicesResult { return inference.Run(cfg) }

// RunMD executes one molecular-dynamics scenario.
func RunMD(cfg MDConfig) MDResult { return md.Run(cfg) }

// Experiment drivers: full table/figure reproductions.
type (
	// Figure3Config sweeps the matmul heatmaps.
	Figure3Config = experiments.Figure3Config
	// Figure3Result holds the four heatmaps.
	Figure3Result = experiments.Figure3Result
	// Table2Config sweeps the Cholesky compositions.
	Table2Config = experiments.Table2Config
	// Table2Result holds Table 2.
	Table2Result = experiments.Table2Result
	// Figure4Config sweeps the microservices schemes and rates.
	Figure4Config = experiments.Figure4Config
	// Figure4Result holds Fig. 4.
	Figure4Result = experiments.Figure4Result
	// Figure5Config sweeps the MD scenarios.
	Figure5Config = experiments.Figure5Config
	// Figure5Result holds Fig. 5.
	Figure5Result = experiments.Figure5Result
)

// RunFigure3 regenerates the Fig. 3 heatmaps.
func RunFigure3(cfg Figure3Config) *Figure3Result { return experiments.RunFigure3(cfg) }

// RunTable2 regenerates Table 2.
func RunTable2(cfg Table2Config) *Table2Result { return experiments.RunTable2(cfg) }

// RunFigure4 regenerates Fig. 4.
func RunFigure4(cfg Figure4Config) *Figure4Result { return experiments.RunFigure4(cfg) }

// RunFigure5 regenerates Fig. 5.
func RunFigure5(cfg Figure5Config) *Figure5Result { return experiments.RunFigure5(cfg) }

// Default and quick experiment configurations.

// DefaultFigure3 returns the scaled full sweep (112-core machine).
func DefaultFigure3() Figure3Config { return experiments.DefaultFigure3() }

// QuickFigure3 returns a small fast sweep.
func QuickFigure3() Figure3Config { return experiments.QuickFigure3() }

// DefaultTable2 returns the scaled full composition study.
func DefaultTable2() Table2Config { return experiments.DefaultTable2() }

// QuickTable2 returns a small fast composition study.
func QuickTable2() Table2Config { return experiments.QuickTable2() }

// DefaultFigure4 returns the paper-shaped microservices sweep.
func DefaultFigure4() Figure4Config { return experiments.DefaultFigure4() }

// QuickFigure4 returns a small fast microservices sweep.
func QuickFigure4() Figure4Config { return experiments.QuickFigure4() }

// DefaultFigure5 returns the paper-shaped MD study.
func DefaultFigure5() Figure5Config { return experiments.DefaultFigure5() }

// QuickFigure5 returns a small fast MD study.
func QuickFigure5() Figure5Config { return experiments.QuickFigure5() }

// Load generation and SLO/tail-latency accounting (internal/load).
type (
	// LoadSource is a pluggable client arrival process.
	LoadSource = load.Source
	// Poisson is the open-loop memoryless arrival process.
	Poisson = load.Poisson
	// Bursty is the MMPP-style two-state bursty arrival process.
	Bursty = load.Bursty
	// Ramp is the diurnal sinusoidal-rate arrival process.
	Ramp = load.Ramp
	// ClosedLoop models N clients with think time.
	ClosedLoop = load.Closed
	// Replay submits requests at exact recorded offsets.
	Replay = load.Replay
	// LoadMeter does streaming tail-latency and SLO accounting.
	LoadMeter = load.Meter
	// LoadMeterStats is a meter snapshot.
	LoadMeterStats = load.MeterStats
	// AdmissionLimiter caps concurrently admitted requests.
	AdmissionLimiter = load.Limiter
	// TailLoadConfig sweeps offered load × arrival shape × scheme.
	TailLoadConfig = experiments.TailLoadConfig
	// TailLoadResult holds the tailload grid and its SLO knees.
	TailLoadResult = experiments.TailLoadResult
)

// Cluster layer (internal/cluster): a fleet of named nodes — each a
// complete simulated machine — behind a routing policy and a network
// cost model, serving routed traffic end to end on one shared engine
// or (NewShardedCluster) over conservative-parallel engine shards.
type (
	// Cluster is a multi-node fleet on one shared engine, or on several
	// conservative-parallel shards (NewShardedCluster).
	Cluster = cluster.Cluster
	// ClusterNode is one named machine of a fleet.
	ClusterNode = cluster.Node
	// ClusterStats snapshots a cluster run (end-to-end tails, per-node
	// views, cluster-aggregated node percentiles, routing balance).
	ClusterStats = cluster.Stats
	// ClusterBackend is a node's resident serving workload.
	ClusterBackend = cluster.Backend
	// ClusterNetwork is the per-hop latency + per-link bandwidth model.
	ClusterNetwork = cluster.Network
	// ClusterRouting is the routing-policy interface.
	ClusterRouting = cluster.Router
	// ClusterOptions parameterises a cluster (network, SLO, sessions).
	ClusterOptions = cluster.Config
	// InferenceService is the resident microservice stack a cluster
	// node serves (the paper's §5.5 gateway + servers, push-driven).
	InferenceService = inference.Service
	// InferenceServiceConfig parameterises an InferenceService.
	InferenceServiceConfig = inference.ServiceConfig
	// ClusterConfig sweeps the fleet scenario (routers × schemes ×
	// shapes × offered load).
	ClusterConfig = experiments.ClusterConfig
	// ClusterResult holds the fleet sweep grid and its SLO knees.
	ClusterResult = experiments.ClusterResult
)

// Fault injection and resilience (internal/cluster): declarative
// node-fault schedules, client-edge retry/hedging policies, passive
// outlier ejection, and the queue-model node backend fault fleets run
// on. All of it keeps the cluster's determinism contract: a faulted run
// is byte-identical for any worker or shard count.
type (
	// FaultPlan is a declarative schedule of node crashes, recoveries,
	// and brownouts, installed via ClusterOptions.Faults.
	FaultPlan = cluster.FaultPlan
	// FaultAware is the optional backend extension crashes and
	// brownouts drive (SimService implements it).
	FaultAware = cluster.FaultAware
	// RetryPolicy is the client edge's resilience policy: per-attempt
	// deadlines, capped-backoff retries under an optional token-bucket
	// budget, and hedged requests (ClusterOptions.Retry).
	RetryPolicy = load.RetryPolicy
	// RetryBudget is the Finagle-style token-bucket retry budget.
	RetryBudget = load.RetryBudget
	// HealthConfig enables passive outlier ejection at the client edge
	// (ClusterOptions.Health).
	HealthConfig = cluster.HealthConfig
	// ResilienceStats counts a run's fault-handling activity (retries,
	// hedges, sheds, timeouts, ejections; ClusterStats.Resilience).
	ResilienceStats = cluster.Resilience
	// SimService is the lightweight queue-model node backend fault
	// fleets use (Cluster.AddSimNode).
	SimService = cluster.SimService
	// SimServiceConfig parameterises a SimService.
	SimServiceConfig = cluster.SimServiceConfig
	// PhasedPoisson is Poisson arrivals on a quantised timeline, the
	// arrival process that keeps faulted sharded runs tie-free.
	PhasedPoisson = load.PhasedPoisson
	// ChaosConfig sweeps the fault-injection scenario (faults × retry
	// policies × routers).
	ChaosConfig = experiments.ChaosConfig
	// ChaosResult holds the chaos sweep grid.
	ChaosResult = experiments.ChaosResult
)

// ErrNoLiveNodes is the typed routing failure when every node is
// crashed or ejected (errors.Is-matchable; see Cluster.PickNode).
var ErrNoLiveNodes = cluster.ErrNoLiveNodes

// NewFaultPlan returns an empty fault schedule; chain Crash, Recover,
// and Brownout calls onto it.
func NewFaultPlan() *FaultPlan { return cluster.NewFaultPlan() }

// NewRetryBudget returns a token-bucket retry budget allowing ratio
// retries per original request with the given burst allowance.
func NewRetryBudget(ratio, burst float64) *RetryBudget { return load.NewRetryBudget(ratio, burst) }

// NewBoundedAdmissionLimiter returns a limiter admitting at most limit
// concurrent requests and queueing at most queueCap more; admissions
// beyond that are shed (Admit returns false and the callback never
// runs).
func NewBoundedAdmissionLimiter(limit, queueCap int) *AdmissionLimiter {
	return load.NewBoundedLimiter(limit, queueCap)
}

// RunChaos executes the fault-injection sweep.
func RunChaos(cfg ChaosConfig) *ChaosResult { return experiments.RunChaos(cfg) }

// DefaultChaos returns the scaled fault-injection sweep (4-node fleet,
// kill + brownout legs, every retry policy and router).
func DefaultChaos() ChaosConfig { return experiments.DefaultChaos() }

// QuickChaos returns a small fast fault-injection sweep.
func QuickChaos() ChaosConfig { return experiments.QuickChaos() }

// Telemetry layer (internal/obs): deterministic simulated-time
// observability — metric samples scraped by engine timers and
// per-request hop spans — with the same byte-identity contract as the
// stats: identical for any worker or shard count. Enable via
// ClusterOptions.MetricsInterval / ClusterOptions.Spans and read back
// with Cluster.Samples / Cluster.Spans.
type (
	// MetricSample is one scraped telemetry row, keyed by (series, node,
	// simulated time).
	MetricSample = obs.Sample
	// RequestSpan is one request's hop timeline through the cluster
	// path (submit → arrive → start → done → reply).
	RequestSpan = obs.Span
	// TailBreakdown attributes tail latency to network, queueing, and
	// service shares ("where does p99 live").
	TailBreakdown = obs.TailBreakdown
)

// BreakSpanTail decomposes the spans at or beyond the q-th total-latency
// quantile into mean network/queue/service shares.
func BreakSpanTail(spans []RequestSpan, q float64) TailBreakdown { return obs.BreakTail(spans, q) }

// NewCluster builds an empty fleet on eng; add nodes, then Serve.
func NewCluster(eng *sim.Engine, opts ClusterOptions, r ClusterRouting) *Cluster {
	return cluster.New(eng, opts, r)
}

// NewShardedCluster builds a fleet spread over `shards` engines
// advanced in conservative lockstep windows (Chandy–Misra–Bryant
// lookahead synchronisation over the network's propagation delay), so
// one big fleet can use several host cores while producing results
// byte-identical to the shared-engine path. Build each node's system on
// NodeEngine(i), not on Eng; shards <= 1 is exactly NewCluster on a
// fresh engine.
func NewShardedCluster(opts ClusterOptions, r ClusterRouting, shards int, seed uint64) *Cluster {
	return cluster.NewSharded(opts, r, shards, seed)
}

// NewRoundRobinRouter returns the stateless rotation policy.
func NewRoundRobinRouter() ClusterRouting { return cluster.NewRoundRobin() }

// NewLeastOutstandingRouter returns the power-of-two-choices
// least-outstanding policy (sampled on the cluster's RNG stream).
func NewLeastOutstandingRouter() ClusterRouting { return cluster.NewLeastOutstanding() }

// NewConsistentHashRouter returns the session-affinity consistent-hash
// policy.
func NewConsistentHashRouter() ClusterRouting { return cluster.NewConsistentHash() }

// NewInferenceService wires the resident microservice stack on a node;
// done fires once per completed request.
func NewInferenceService(sys *System, cfg InferenceServiceConfig, done func(id int)) (*InferenceService, error) {
	return inference.NewService(sys, cfg, done)
}

// RunCluster executes the fleet sweep.
func RunCluster(cfg ClusterConfig) *ClusterResult { return experiments.RunCluster(cfg) }

// DefaultCluster returns the scaled full fleet sweep (3 full nodes +
// 1 straggler).
func DefaultCluster() ClusterConfig { return experiments.DefaultCluster() }

// QuickCluster returns a small fast fleet sweep.
func QuickCluster() ClusterConfig { return experiments.QuickCluster() }

// NewLoadMeter returns a meter judging completions against slo (0 =
// none).
func NewLoadMeter(slo sim.Duration) *LoadMeter { return load.NewMeter(slo) }

// NewAdmissionLimiter returns a limiter admitting at most limit
// concurrent requests (non-positive = unlimited).
func NewAdmissionLimiter(limit int) *AdmissionLimiter { return load.NewLimiter(limit) }

// RunTailLoad executes the tail-latency-under-load sweep.
func RunTailLoad(cfg TailLoadConfig) *TailLoadResult { return experiments.RunTailLoad(cfg) }

// DefaultTailLoad returns the scaled full tailload sweep.
func DefaultTailLoad() TailLoadConfig { return experiments.DefaultTailLoad() }

// QuickTailLoad returns a small fast tailload sweep.
func QuickTailLoad() TailLoadConfig { return experiments.QuickTailLoad() }
