// Cluster: serve bursty traffic across a heterogeneous three-node
// fleet — two 8-core nodes and a 4-core straggler — and compare routing
// policies. Round-robin ignores load, so during a burst it keeps
// feeding the straggler and the tail explodes; least-outstanding
// (power-of-two-choices) sees the straggler's queue and routes around
// it; consistent-hash session affinity pins sessions regardless of
// load, trading tails for locality.
//
// Every node is a complete simulated machine (kernel, glibc, nOS-V,
// SCHED_COOP) on ONE shared deterministic engine: the whole fleet runs
// in a single virtual timeline and the output is byte-reproducible.
package main

import (
	"fmt"

	usched "repro"
	"repro/internal/sim"
)

const (
	requests = 18
	rate     = 1.0 // offered cluster-wide load, req/s of unscaled time
	scale    = 0.2
	slo      = 600 * sim.Millisecond
)

// models are the 10%-work inference profiles (cf. examples/tailload).
func models() []usched.InferenceModel {
	return []usched.InferenceModel{
		{Name: "llama", Work: 5770 * sim.Millisecond, SerialFrac: 0.06, Threads: 8, OptShare: 0.64},
		{Name: "gpt2", Work: 1010 * sim.Millisecond, SerialFrac: 0.06, Threads: 4, OptShare: 0.21},
		{Name: "roberta", Work: 676 * sim.Millisecond, SerialFrac: 0.06, Threads: 4, OptShare: 0.14},
	}
}

// run serves one bursty request train through the given router over a
// fresh fleet and reports the cluster stats.
func run(router usched.ClusterRouting) usched.ClusterStats {
	eng := usched.NewEngine(31)
	cl := usched.NewCluster(eng, usched.ClusterOptions{
		Net: usched.ClusterNetwork{
			RequestLatency: 200 * sim.Microsecond,
			ReplyLatency:   200 * sim.Microsecond,
			RequestBytes:   16 << 10,
			ReplyBytes:     64 << 10,
			LinkBandwidth:  10, // GB/s per node link
		},
		SLO:      slo,
		Sessions: 6,
	}, router)

	// Two full nodes and one half-width straggler.
	weak := usched.SmallNode()
	weak.Name = "WeakNode"
	weak.Topo.CoresPerSocket = 4
	machines := []usched.MachineSpec{usched.SmallNode(), usched.SmallNode(), weak}
	for i, m := range machines {
		sys := usched.NewSystemOnEngine(eng, m, uint64(100+i), usched.DefaultKernelSchedParams())
		cl.AddNode(fmt.Sprintf("node%d(%dc)", i, m.Topo.Cores()), sys,
			func(done func(id int)) usched.ClusterBackend {
				svc, err := usched.NewInferenceService(sys, usched.InferenceServiceConfig{
					Scheme:  usched.InferenceCoop,
					Batches: 4,
					Scale:   scale,
					Models:  models(),
				}, done)
				if err != nil {
					panic(err)
				}
				return svc
			})
	}

	// Bursty arrivals: 40%/160% two-state modulation around the target
	// rate (sources are single-use — fresh per run).
	cl.Serve(&usched.Bursty{
		Base:      0.4 * rate / scale,
		Burst:     1.6 * rate / scale,
		MeanDwell: sim.Duration(4 / rate * scale * 1e9),
	}, requests)
	if _, err := cl.Run(0); err != nil {
		panic(err)
	}
	return cl.Stats()
}

func main() {
	fmt.Printf("Heterogeneous fleet (8c+8c+4c), bursty arrivals at %.1f req/s, SLO %v\n\n", rate, slo)
	fmt.Printf("%-18s %8s %8s %9s %6s  %s\n",
		"router", "p99", "max", "goodput", "viol%", "requests per node")
	for _, r := range []usched.ClusterRouting{
		usched.NewRoundRobinRouter(),
		usched.NewLeastOutstandingRouter(),
		usched.NewConsistentHashRouter(),
	} {
		st := run(r)
		var split string
		for i, ns := range st.Nodes {
			if i > 0 {
				split += "/"
			}
			split += fmt.Sprint(ns.Dispatched)
		}
		fmt.Printf("%-18s %7.2fs %7.2fs %9.3f %5.0f%%  %s\n",
			r.Name(), st.EndToEnd.P99.Seconds(), st.EndToEnd.Max.Seconds(),
			st.EndToEnd.Goodput, 100*st.EndToEnd.ViolationFrac, split)
	}
	fmt.Println("\nLoad-aware routing (least-outstanding, power-of-two-choices) keeps the")
	fmt.Println("straggler's queue short during bursts; round-robin keeps feeding it and")
	fmt.Println("pays at the tail; session affinity pins sessions wherever they hash.")
}
