// Cluster: serve bursty traffic across a heterogeneous three-node
// fleet — two 8-core nodes and a 4-core straggler — and compare routing
// policies. Round-robin ignores load, so during a burst it keeps
// feeding the straggler and the tail explodes; least-outstanding
// (power-of-two-choices) sees the straggler's queue and routes around
// it; consistent-hash session affinity pins sessions regardless of
// load, trading tails for locality.
//
// Every node is a complete simulated machine (kernel, glibc, nOS-V,
// SCHED_COOP). The fleets here run SHARDED: each node lives on its own
// engine and a conservative-parallel coordinator advances the engines
// in lockstep lookahead windows (usched.NewShardedCluster), so a big
// fleet can spread over host cores — yet the results are byte-identical
// to the classic single shared engine, which the final check verifies.
package main

import (
	"fmt"

	usched "repro"
	"repro/internal/sim"
)

const (
	requests = 18
	rate     = 1.0 // offered cluster-wide load, req/s of unscaled time
	scale    = 0.2
	slo      = 600 * sim.Millisecond
)

// models are the 10%-work inference profiles (cf. examples/tailload).
func models() []usched.InferenceModel {
	return []usched.InferenceModel{
		{Name: "llama", Work: 5770 * sim.Millisecond, SerialFrac: 0.06, Threads: 8, OptShare: 0.64},
		{Name: "gpt2", Work: 1010 * sim.Millisecond, SerialFrac: 0.06, Threads: 4, OptShare: 0.21},
		{Name: "roberta", Work: 676 * sim.Millisecond, SerialFrac: 0.06, Threads: 4, OptShare: 0.14},
	}
}

// run serves one bursty request train through the given router over a
// fresh fleet spread across the given number of engine shards (1 =
// the classic single shared engine) and reports the cluster stats plus
// the recorded per-request hop spans.
func run(router usched.ClusterRouting, shards int) (usched.ClusterStats, []usched.RequestSpan) {
	cl := usched.NewShardedCluster(usched.ClusterOptions{
		Net: usched.ClusterNetwork{
			RequestLatency: 200 * sim.Microsecond,
			ReplyLatency:   200 * sim.Microsecond,
			RequestBytes:   16 << 10,
			ReplyBytes:     64 << 10,
			LinkBandwidth:  10, // GB/s per node link
		},
		SLO:      slo,
		Sessions: 6,
		Spans:    true, // record client→router→network→queue→service→reply timelines
	}, router, shards, 31)

	// Two full nodes and one half-width straggler, each built on its
	// home shard's engine (NodeEngine is the shared engine at shards=1).
	weak := usched.SmallNode()
	weak.Name = "WeakNode"
	weak.Topo.CoresPerSocket = 4
	machines := []usched.MachineSpec{usched.SmallNode(), usched.SmallNode(), weak}
	for i, m := range machines {
		sys := usched.NewSystemOnEngine(cl.NodeEngine(i), m, uint64(100+i), usched.DefaultKernelSchedParams())
		cl.AddNode(fmt.Sprintf("node%d(%dc)", i, m.Topo.Cores()), sys,
			func(done func(id int)) usched.ClusterBackend {
				svc, err := usched.NewInferenceService(sys, usched.InferenceServiceConfig{
					Scheme:  usched.InferenceCoop,
					Batches: 4,
					Scale:   scale,
					Models:  models(),
					Started: cl.StartedFunc(i), // stamp the service-start hop
				}, done)
				if err != nil {
					panic(err)
				}
				return svc
			})
	}

	// Bursty arrivals: 40%/160% two-state modulation around the target
	// rate (sources are single-use — fresh per run).
	cl.Serve(&usched.Bursty{
		Base:      0.4 * rate / scale,
		Burst:     1.6 * rate / scale,
		MeanDwell: sim.Duration(4 / rate * scale * 1e9),
	}, requests)
	if _, err := cl.Run(0); err != nil {
		panic(err)
	}
	return cl.Stats(), cl.Spans()
}

func main() {
	fmt.Printf("Heterogeneous fleet (8c+8c+4c), bursty arrivals at %.1f req/s, SLO %v\n", rate, slo)
	fmt.Println("One engine shard per node: three engines in conservative lockstep.")
	fmt.Println()
	fmt.Printf("%-18s %8s %8s %9s %6s %15s  %s\n",
		"router", "p99", "max", "goodput", "viol%", "p99 net/q/svc", "requests per node")
	for _, r := range []usched.ClusterRouting{
		usched.NewRoundRobinRouter(),
		usched.NewLeastOutstandingRouter(),
		usched.NewConsistentHashRouter(),
	} {
		st, spans := run(r, 3)
		var split string
		for i, ns := range st.Nodes {
			if i > 0 {
				split += "/"
			}
			split += fmt.Sprint(ns.Dispatched)
		}
		// "Where does p99 live": decompose the slowest percentile of
		// recorded spans into network / queueing / service shares.
		tb := usched.BreakSpanTail(spans, 0.99)
		fmt.Printf("%-18s %7.2fs %7.2fs %9.3f %5.0f%% %4.0f%%/%3.0f%%/%3.0f%%  %s\n",
			r.Name(), st.EndToEnd.P99.Seconds(), st.EndToEnd.Max.Seconds(),
			st.EndToEnd.Goodput, 100*st.EndToEnd.ViolationFrac,
			100*tb.Network, 100*tb.Queue, 100*tb.Service, split)
	}
	fmt.Println("\nLoad-aware routing (least-outstanding, power-of-two-choices) keeps the")
	fmt.Println("straggler's queue short during bursts; round-robin keeps feeding it and")
	fmt.Println("pays at the tail; session affinity pins sessions wherever they hash.")
	fmt.Println("The hop breakdown (\"where does p99 live\") pins the tail on node service")
	fmt.Println("time, not the network — span evidence that the straggler's compute, not")
	fmt.Println("the links, sets the tail here.")

	// The conservative-parallel contract, checked end to end: the same
	// fleet on one shared engine and over three shards must agree on
	// every number — stats AND the per-request span timelines.
	shared, sharedSpans := run(usched.NewLeastOutstandingRouter(), 1)
	sharded, shardedSpans := run(usched.NewLeastOutstandingRouter(), 3)
	if fmt.Sprintf("%+v", shared) != fmt.Sprintf("%+v", sharded) {
		panic("sharded run diverged from the shared engine")
	}
	if fmt.Sprintf("%+v", sharedSpans) != fmt.Sprintf("%+v", shardedSpans) {
		panic("sharded spans diverged from the shared engine")
	}
	fmt.Println("\n1 shard and 3 shards produced identical stats and spans (conservative")
	fmt.Println("PDES: lookahead windows bounded by the network propagation delay).")
}
