// Custom policy: USF's point is that scheduling policies are user code.
// This example implements a shortest-queue policy from scratch — tasks go
// to the core with the fewest queued tasks, FIFO within a core, no
// process quantum — plugs it into a process, and runs a fork-join load
// under it, comparing against SCHED_COOP.
package main

import (
	"fmt"

	usched "repro"
	"repro/internal/glibc"
	"repro/internal/nosv"
	"repro/internal/sim"
)

// shortestQueue is a complete USF policy in ~60 lines.
type shortestQueue struct {
	in *nosv.Instance
	q  [][]*nosv.Task // per-core FIFO
}

func (p *shortestQueue) Name() string { return "shortest-queue" }

func (p *shortestQueue) Bind(in *nosv.Instance) {
	p.in = in
	p.q = make([][]*nosv.Task, in.NumCores())
}

func (p *shortestQueue) Ready(t *nosv.Task, yield bool) int {
	if !yield {
		if c := p.in.FirstIdleCore(); c >= 0 {
			return c // run immediately
		}
	}
	best := 0
	for c := range p.q {
		if len(p.q[c]) < len(p.q[best]) {
			best = c
		}
	}
	t.SetQueuedAt(best)
	p.q[best] = append(p.q[best], t)
	return -1
}

func (p *shortestQueue) Next(core int) *nosv.Task {
	if len(p.q[core]) > 0 {
		t := p.q[core][0]
		p.q[core] = p.q[core][1:]
		return t
	}
	// steal from the longest queue
	longest := -1
	for c := range p.q {
		if len(p.q[c]) > 0 && (longest < 0 || len(p.q[c]) > len(p.q[longest])) {
			longest = c
		}
	}
	if longest < 0 {
		return nil
	}
	t := p.q[longest][0]
	p.q[longest] = p.q[longest][1:]
	return t
}

func (p *shortestQueue) Remove(t *nosv.Task) {
	c := t.QueuedAt()
	for i, x := range p.q[c] {
		if x == t {
			p.q[c] = append(p.q[c][:i], p.q[c][i+1:]...)
			return
		}
	}
}

func run(name string, policy func() nosv.Policy) {
	sys := usched.NewSystem(usched.SmallNode(), 1)
	var makespan sim.Time
	_, err := glibc.StartProcess(sys.K, "app", glibc.Options{
		USF:    true,
		Policy: policy,
	}, func(l *glibc.Lib) {
		var ts []*glibc.Pthread
		for i := 0; i < 24; i++ {
			ts = append(ts, l.PthreadCreate("w", func() {
				for j := 0; j < 4; j++ {
					l.Compute(1 * sim.Millisecond)
					l.SchedYield()
				}
			}))
		}
		for _, t := range ts {
			l.PthreadJoin(t)
		}
		makespan = l.K.Eng.Now()
	})
	if err != nil {
		panic(err)
	}
	if _, err := sys.Run(0); err != nil {
		panic(err)
	}
	fmt.Printf("%-16s makespan %7.2f ms\n", name, makespan.Seconds()*1000)
}

func main() {
	fmt.Println("24 fork-join threads on 8 cores under two USF policies")
	run("shortest-queue", func() nosv.Policy { return &shortestQueue{} })
	run("sched_coop", func() nosv.Policy { return usched.NewSchedCoop(usched.DefaultCoopConfig()) })
}
