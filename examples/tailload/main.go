// Tailload: drive the §5.5 microservices stack at a fixed offered load
// under three different arrival shapes, judge each run against a
// latency SLO with the streaming load meter, and show what a concurrency
// limit in front of the gateway does to the burst case.
//
// The load subsystem separates three concerns: the arrival process
// (load.Source: who sends requests, when), the accounting
// (load.Meter: streaming p50..p99.9, goodput, SLO violations), and
// admission (load.Limiter: how many requests may be in flight).
package main

import (
	"fmt"

	usched "repro"
	"repro/internal/sim"
)

const slo = 800 * sim.Millisecond

var (
	rate  = 3.0 // offered load, req/s of unscaled paper time
	scale = 0.2 // work scale (rates scale by 1/scale, times by scale)
)

// sources returns fresh single-use arrival processes, all offering the
// same average load with very different shapes.
func sources() map[string]usched.LoadSource {
	return map[string]usched.LoadSource{
		"poisson": &usched.Poisson{Rate: rate / scale},
		"bursty": &usched.Bursty{
			Base:      0.4 * rate / scale,
			Burst:     1.6 * rate / scale,
			MeanDwell: sim.Duration(4.0 / rate * scale * 1e9),
		},
		"closed-loop": &usched.ClosedLoop{
			Clients: 4,
			Think:   sim.Duration(4.0 / rate * scale * 1e9),
		},
	}
}

func run(name string, src usched.LoadSource, maxInFlight int) {
	models := []usched.InferenceModel{
		{Name: "llama", Work: 5770 * sim.Millisecond, SerialFrac: 0.06, Threads: 8, OptShare: 0.64},
		{Name: "gpt2", Work: 1010 * sim.Millisecond, SerialFrac: 0.06, Threads: 4, OptShare: 0.21},
		{Name: "roberta", Work: 676 * sim.Millisecond, SerialFrac: 0.06, Threads: 4, OptShare: 0.14},
	}
	res := usched.RunMicroservices(usched.MicroservicesConfig{
		Machine:     usched.DualSocket16(),
		Scheme:      0, // bl-none: stock scheduler, no partitioning
		Rate:        rate,
		Requests:    12,
		Batches:     4,
		Scale:       scale,
		Models:      models,
		Horizon:     4000 * sim.Second,
		Seed:        23,
		Arrivals:    src,
		SLO:         slo,
		MaxInFlight: maxInFlight,
	})
	t := res.Tail
	limit := "none"
	if maxInFlight > 0 {
		limit = fmt.Sprintf("%d", maxInFlight)
	}
	fmt.Printf("%-12s limit %-5s p50 %6.2fs  p99 %6.2fs  goodput %5.2f req/s  SLO viol %3.0f%%\n",
		name, limit, t.P50.Seconds(), t.P99.Seconds(), t.Goodput, t.ViolationFrac*100)
}

func main() {
	fmt.Printf("microservices at %.1f req/s, SLO %.1fs, 16 cores\n\n", rate, slo.Seconds())
	for _, name := range []string{"poisson", "bursty", "closed-loop"} {
		run(name, sources()[name], 0)
	}
	fmt.Println()
	fmt.Println("same bursty traffic, with and without admission control:")
	run("bursty", sources()["bursty"], 0)
	run("bursty", sources()["bursty"], 4)
}
