// Microservices: a scaled-down §5.5 run — a gateway plus three inference
// servers under a Poisson request stream, comparing all five resource
// management schemes at one rate.
package main

import (
	"fmt"

	usched "repro"
	"repro/internal/sim"
	"repro/internal/workloads/inference"
)

func main() {
	fmt.Println("AI microservices at 1.0 req/s (scaled 20%), 16 cores")
	models := []inference.Model{
		{Name: "llama", Work: 5770 * sim.Millisecond, SerialFrac: 0.06, Threads: 8, OptShare: 0.64},
		{Name: "gpt2", Work: 1010 * sim.Millisecond, SerialFrac: 0.06, Threads: 4, OptShare: 0.21},
		{Name: "roberta", Work: 676 * sim.Millisecond, SerialFrac: 0.06, Threads: 4, OptShare: 0.14},
	}
	for _, scheme := range []inference.Scheme{
		inference.BlEq, inference.BlOpt, inference.BlNone,
		inference.BlNoneSeq, inference.Coop,
	} {
		res := usched.RunMicroservices(usched.MicroservicesConfig{
			Machine:  usched.DualSocket16(),
			Scheme:   scheme,
			Rate:     1.0,
			Requests: 10,
			Batches:  4,
			Scale:    0.2,
			Models:   models,
			Horizon:  4000 * sim.Second,
			Seed:     9,
		})
		if res.TimedOut {
			fmt.Printf("%-12s timed out\n", scheme)
			continue
		}
		fmt.Printf("%-12s mean latency %7.2f s   p99 %7.2f s   throughput %6.3f req/s\n",
			scheme, res.Stats.Mean.Seconds(), res.Stats.P99.Seconds(), res.Throughput)
	}
}
