// MD ensembles: a scaled-down §5.6 run — two LAMMPS+DeePMD ensembles
// under the seven execution scenarios, reporting the per-ensemble and
// aggregate Katom-step/s plus the memory-bandwidth usage of each.
package main

import (
	"fmt"

	usched "repro"
	"repro/internal/sim"
	"repro/internal/workloads/md"
)

func main() {
	fmt.Println("Two MD ensembles, 16 cores (scaled): Fig. 5 scenarios")
	for _, s := range []md.Scenario{
		md.Exclusive, md.ColocationNode, md.ColocationSocket,
		md.CoexecutionNode, md.CoexecutionSocket,
		md.SchedCoopNode, md.SchedCoopSocket,
	} {
		cfg := usched.MDConfig{
			Machine:          usched.DualSocket16(),
			Scenario:         s,
			Ensembles:        2,
			RanksPerEnsemble: 8,
			OMPPerRank:       2,
			Steps:            5,
			Atoms:            4000,
			Regions:          14,
			PerAtomWork:      650 * sim.Microsecond,
			BWPerThread:      2.0,
			InitWork:         500 * sim.Millisecond,
			Horizon:          1200 * sim.Second,
			Seed:             11,
		}
		if s.Colocated() {
			cfg.RanksPerEnsemble = 4
		}
		res := usched.RunMD(cfg)
		if res.TimedOut {
			fmt.Printf("%-20s timed out\n", s)
			continue
		}
		fmt.Printf("%-20s per-ensemble %6.1f / %6.1f   aggregate %6.1f Katom-step/s   avg BW %6.1f GB/s\n",
			s, res.PerEnsemble[0], res.PerEnsemble[1], res.Aggregate, res.AvgBandwidth)
	}
}
