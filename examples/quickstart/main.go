// Quickstart: run the same oversubscribed workload under the stock
// scheduler and under SCHED_COOP, and compare the interference counters.
//
// 32 compute threads plus a lock-protected critical section contend for 8
// cores. Under the fair scheduler the lock holder gets preempted
// (Lock-Holder Preemption); under SCHED_COOP threads switch only when
// they block, so the critical path runs undisturbed.
package main

import (
	"fmt"

	usched "repro"
	"repro/internal/sim"
)

func run(mode usched.Mode) {
	sys := usched.NewSystem(usched.SmallNode(), 42)
	var makespan sim.Time
	_, err := sys.Start("app", mode, usched.ProcessOptions{}, func(l *usched.CLib) {
		m := l.NewMutex()
		var threads []*usched.Pthread
		for i := 0; i < 32; i++ {
			threads = append(threads, l.PthreadCreate("worker", func() {
				for j := 0; j < 10; j++ {
					m.Lock()
					l.Compute(200 * sim.Microsecond) // critical section
					m.Unlock()
					l.Compute(2 * sim.Millisecond) // parallel work
				}
			}))
		}
		for _, t := range threads {
			l.PthreadJoin(t)
		}
		makespan = l.K.Eng.Now()
	})
	if err != nil {
		panic(err)
	}
	if _, err := sys.Run(0); err != nil {
		panic(err)
	}
	k := sys.K
	fmt.Printf("%-11s makespan %8.2f ms  preemptions %5d  ctx-switches %6d  migrations %5d\n",
		mode, makespan.Seconds()*1000, k.Stats.Preemptions, k.Stats.ContextSwitches, k.Stats.Migrations)
}

func main() {
	fmt.Println("32 threads, 8 cores, shared lock — stock scheduler vs SCHED_COOP")
	run(usched.Baseline)
	run(usched.SchedCoop)
}
