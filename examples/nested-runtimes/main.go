// Nested runtimes: the paper's §5.3 scenario in miniature. An OmpSs-2
// outer runtime creates matrix-block tasks; each task runs a BLIS dgemm
// parallelised with OpenMP, multiplying the thread count. The example
// prints the throughput of every stack (Fig. 2) on the same configuration.
package main

import (
	"fmt"

	usched "repro"
	"repro/internal/sim"
)

func main() {
	fmt.Println("Nested OmpSs-2 + BLIS/OpenMP matmul, 16 cores, 16 blocks x 8 OMP threads")
	fmt.Println("(the paper's Fig. 2 stacks on one oversubscribed configuration)")
	for _, mode := range []usched.Mode{usched.Original, usched.Baseline, usched.Manual, usched.SchedCoop} {
		res := usched.RunMatmul(usched.MatmulConfig{
			Machine:    usched.DualSocket16(),
			Mode:       mode,
			N:          2048,
			TaskSize:   512,
			OMPThreads: 8,
			Reps:       1,
			Horizon:    10 * sim.Second,
			Seed:       7,
		})
		if res.TimedOut {
			fmt.Printf("%-11s timed out (the paper's white squares)\n", mode)
			continue
		}
		fmt.Printf("%-11s %8.1f GFLOP/s   elapsed %7.2f ms   preemptions %5d\n",
			mode, res.GFLOPS, res.Elapsed.Seconds()*1000, res.Preemptions)
	}
}
