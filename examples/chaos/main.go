// Chaos: kill a node under load and watch the retry policy decide the
// fleet's fate. Three queueing nodes serve a steady request train; two
// seconds in, node 0 crashes, and four seconds later it comes back.
// With unlimited client retries the surviving nodes drown in retried
// work — queue wait exceeds the attempt timeout, so every queued
// request times out and is retried again: metastable collapse, goodput
// stays down even after the node returns. A Finagle-style retry budget
// caps the retry rate below the spare capacity, so the same fleet
// sheds the excess and recovers as soon as the node is back; hedging
// rides on the same budget and trims the tail.
//
// The fault timeline is part of the simulation: crashes and recoveries
// fire as engine timers, retries and backoff jitter draw from named
// deterministic streams, and every duration sits on a tie-free time
// grid — so the whole catastrophe is byte-identical on one engine or
// sharded across three, which the final check verifies.
package main

import (
	"fmt"

	usched "repro"
	"repro/internal/sim"
)

// q is the tie-free time quantum: every configured duration is a
// multiple of q, and each request carries a unique sub-quantum phase,
// so no two requests' events ever share a nanosecond (see the README's
// "Fault injection & resilience" determinism note).
const q = 32768 * sim.Nanosecond

// align rounds a duration down onto the quantum grid.
func align(d sim.Duration) sim.Duration { return d - d%q }

const (
	nodes    = 3
	workers  = 4              // per node
	service  = 610 * q        // ≈20ms mean service → 600 req/s fleet capacity
	rate     = 480            // offered load: 80% of capacity, 120% after the kill
	requests = 6000           // ≈12.5s of traffic
	faultAt  = 2 * sim.Second // node 0 dies here...
	clearAt  = 6 * sim.Second // ...and returns here
	timeout  = 150 * sim.Millisecond
	slo      = 250 * sim.Millisecond
)

// run serves the request train through a freshly built, freshly faulted
// fleet under the given retry policy and shard count.
func run(name string, retry usched.RetryPolicy, shards int) (usched.ClusterStats, int, sim.Duration) {
	cl := usched.NewShardedCluster(usched.ClusterOptions{
		Net:   usched.ClusterNetwork{RequestLatency: 8 * q, ReplyLatency: 8 * q},
		SLO:   slo,
		Retry: retry,
		Faults: usched.NewFaultPlan().
			Crash(0, align(faultAt)).
			Recover(0, align(clearAt)),
		Health: usched.HealthConfig{EjectAfter: 5, Cooldown: align(sim.Second)},
	}, usched.NewRoundRobinRouter(), shards, 47)
	var svcs []*usched.SimService
	for i := 0; i < nodes; i++ {
		svcs = append(svcs, cl.AddSimNode(fmt.Sprintf("node%d", i), usched.SimServiceConfig{
			Workers: workers, QueueCap: 64, MeanService: service, Quantum: q,
		}))
	}
	cl.Serve(&usched.PhasedPoisson{Rate: rate, Quantum: q}, requests)
	timedOut, err := cl.Run(120 * sim.Second)
	if err != nil {
		panic(err)
	}
	if timedOut {
		panic(name + ": fleet hit the horizon")
	}
	shed := 0
	for _, svc := range svcs {
		shed += svc.Shed()
	}
	return cl.Stats(), shed, cl.Elapsed()
}

// policy builds the three client-edge policies under comparison; the
// zero-value base fields are shared so the comparison isolates the
// budget and the hedge.
func policy(budget *usched.RetryBudget, hedge sim.Duration, maxAttempts int) usched.RetryPolicy {
	return usched.RetryPolicy{
		Timeout:     align(timeout),
		MaxAttempts: maxAttempts,
		BaseBackoff: align(10 * sim.Millisecond),
		MaxBackoff:  align(80 * sim.Millisecond),
		Budget:      budget,
		HedgeDelay:  hedge,
		Quantum:     q,
	}
}

func main() {
	fmt.Printf("Three-node fleet at %d req/s (80%% of capacity), node 0 dead %v–%v\n",
		rate, faultAt, clearAt)
	fmt.Println()
	fmt.Printf("%-10s %9s %9s %6s %8s %7s %7s %7s\n",
		"policy", "goodput", "p99", "ok%", "retries", "hedges", "shed", "failed")
	for _, p := range []struct {
		name  string
		retry usched.RetryPolicy
	}{
		{"unlimited", policy(nil, 0, 0)}, // retry forever, no budget
		{"budgeted", policy(usched.NewRetryBudget(0.15, 50), 0, 4)},
		{"hedged", policy(usched.NewRetryBudget(0.15, 50), align(75*sim.Millisecond), 4)},
	} {
		st, nodeShed, _ := run(p.name, p.retry, 1)
		res := st.Resilience
		fmt.Printf("%-10s %9.1f %8.0fms %5.1f%% %8d %7d %7d %7d\n",
			p.name, st.EndToEnd.Goodput, st.EndToEnd.P99.Seconds()*1e3,
			100*float64(st.EndToEnd.Completed)/float64(requests),
			res.Retries, res.Hedges, res.Shed+nodeShed, res.Failed)
	}
	fmt.Println("\nUnlimited retries turn a 4-second outage into a permanent collapse:")
	fmt.Println("the backlog's queue wait exceeds the attempt timeout, so queued work")
	fmt.Println("times out, retries, and requeues forever — goodput never recovers.")
	fmt.Println("The budget caps the retry rate below the survivors' spare capacity;")
	fmt.Println("excess retries are shed, the backlog drains, the fleet recovers.")

	// The determinism contract survives the catastrophe: the same
	// collapse on one shared engine and across three conservative
	// shards must agree on every number.
	st1, shed1, el1 := run("unlimited", policy(nil, 0, 0), 1)
	st3, shed3, el3 := run("unlimited", policy(nil, 0, 0), 3)
	if fmt.Sprintf("%+v %d %v", st1, shed1, el1) != fmt.Sprintf("%+v %d %v", st3, shed3, el3) {
		panic("sharded collapse diverged from the shared engine")
	}
	fmt.Println("\n1 shard and 3 shards produced an identical collapse, retry storm")
	fmt.Println("included (conservative PDES on a quantised tie-free timeline).")
}
