package usched

import (
	"testing"

	"repro/internal/sim"
)

func TestPublicAPIQuickstart(t *testing.T) {
	sys := NewSystem(SmallNode(), 42)
	var makespan VTime
	_, err := sys.Start("app", SchedCoop, ProcessOptions{}, func(l *CLib) {
		m := l.NewMutex()
		var pts []*Pthread
		for i := 0; i < 8; i++ {
			pts = append(pts, l.PthreadCreate("w", func() {
				m.Lock()
				l.Compute(100 * sim.Microsecond)
				m.Unlock()
			}))
		}
		for _, pt := range pts {
			l.PthreadJoin(pt)
		}
		makespan = l.K.Eng.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(0); err != nil {
		t.Fatal(err)
	}
	if makespan <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestPublicAPIModes(t *testing.T) {
	modes := []Mode{Original, Baseline, Manual, SchedCoop}
	want := []string{"original", "baseline", "manual", "sched_coop"}
	for i, m := range modes {
		if m.String() != want[i] {
			t.Fatalf("mode %d = %q, want %q", i, m, want[i])
		}
	}
	if !Manual.UsesUSF() || Baseline.UsesUSF() {
		t.Fatal("UsesUSF mapping wrong")
	}
}

func TestPublicAPIWorkloadRun(t *testing.T) {
	res := RunMatmul(MatmulConfig{
		Machine:    DualSocket16(),
		Mode:       SchedCoop,
		N:          1024,
		TaskSize:   512,
		OMPThreads: 2,
		Reps:       1,
		Horizon:    2 * sim.Second,
		Seed:       1,
	})
	if res.TimedOut || res.GFLOPS <= 0 {
		t.Fatalf("matmul via facade failed: %+v", res)
	}
}

func TestPublicAPICustomPolicy(t *testing.T) {
	pol := NewSchedCoop(DefaultCoopConfig())
	if pol.Name() != "sched_coop" {
		t.Fatalf("policy name = %q", pol.Name())
	}
	var _ Policy = pol // compile-time: SchedCoop satisfies the interface
}

func TestMachinePresets(t *testing.T) {
	if MareNostrum5().Topo.Cores() != 112 {
		t.Fatal("MareNostrum5 must have 112 cores")
	}
	if SmallNode().Topo.Cores() != 8 || DualSocket16().Topo.Cores() != 16 {
		t.Fatal("small presets wrong")
	}
}

func TestPublicAPIKernelClasses(t *testing.T) {
	names := KernelClasses()
	want := map[string]bool{"fair": true, "rr": true, "fifo": true, "batch": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("KernelClasses() = %v, missing %v", names, want)
	}
	// The same workload completes under every kernel scheduling class.
	for _, class := range names {
		sys := NewSystemWithClass(SmallNode(), 42, class)
		if got := sys.K.DefaultClass().Name(); got != class {
			t.Fatalf("default class = %s, want %s", got, class)
		}
		var makespan VTime
		_, err := sys.Start("app", Baseline, ProcessOptions{}, func(l *CLib) {
			var pts []*Pthread
			for i := 0; i < 16; i++ {
				pts = append(pts, l.PthreadCreate("w", func() {
					l.Compute(200 * sim.Microsecond)
				}))
			}
			for _, pt := range pts {
				l.PthreadJoin(pt)
			}
			makespan = l.K.Eng.Now()
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(0); err != nil {
			t.Fatalf("class %s: %v", class, err)
		}
		if makespan <= 0 {
			t.Fatalf("class %s: no virtual time elapsed", class)
		}
	}
}

func TestPublicAPISchedParams(t *testing.T) {
	params := DefaultKernelSchedParams()
	params.DefaultClass = "batch"
	sys := NewSystemWithParams(SmallNode(), 1, params)
	if got := sys.K.DefaultClass().Name(); got != "batch" {
		t.Fatalf("default class = %s, want batch", got)
	}
}

func TestPublicAPICluster(t *testing.T) {
	// Wire a two-node fleet through the facade: shared engine, one
	// inference service per node, power-of-two-choices routing.
	eng := NewEngine(3)
	cl := NewCluster(eng, ClusterOptions{
		Net:      ClusterNetwork{RequestLatency: 100 * sim.Microsecond, ReplyLatency: 100 * sim.Microsecond},
		SLO:      2 * sim.Second,
		Sessions: 4,
	}, NewLeastOutstandingRouter())
	models := []InferenceModel{
		{Name: "llama", Work: 600 * sim.Millisecond, SerialFrac: 0.06, Threads: 4, OptShare: 0.64},
		{Name: "gpt2", Work: 150 * sim.Millisecond, SerialFrac: 0.06, Threads: 2, OptShare: 0.21},
		{Name: "roberta", Work: 100 * sim.Millisecond, SerialFrac: 0.06, Threads: 2, OptShare: 0.14},
	}
	for i := 0; i < 2; i++ {
		sys := NewSystemOnEngine(eng, SmallNode(), uint64(10+i), DefaultKernelSchedParams())
		cl.AddNode("node"+string(rune('0'+i)), sys, func(done func(id int)) ClusterBackend {
			svc, err := NewInferenceService(sys, InferenceServiceConfig{
				Scheme: InferenceCoop, Batches: 2, Scale: 0.05, Models: models,
			}, done)
			if err != nil {
				t.Fatal(err)
			}
			return svc
		})
	}
	cl.Serve(&Poisson{Rate: 40}, 8)
	timedOut, err := cl.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if timedOut || cl.Completed() != 8 {
		t.Fatalf("fleet served %d of 8 (timed out %v)", cl.Completed(), timedOut)
	}
	st := cl.Stats()
	if st.EndToEnd.Completed != 8 || st.NodeP99 <= 0 || len(st.Nodes) != 2 {
		t.Fatalf("bad cluster stats: %+v", st)
	}
}

func TestPublicAPIFaultInjection(t *testing.T) {
	// Wire a faulted SimService fleet through the facade: one node is
	// killed and recovers, the client edge retries under a budget, and
	// the run completes with the resilience counters populated.
	const q = 32768 * sim.Nanosecond
	cl := NewShardedCluster(ClusterOptions{
		Net: ClusterNetwork{RequestLatency: 2 * q, ReplyLatency: 2 * q},
		SLO: 64 * q,
		Retry: RetryPolicy{
			Timeout:     64 * q,
			MaxAttempts: 3,
			BaseBackoff: 8 * q,
			MaxBackoff:  32 * q,
			Budget:      NewRetryBudget(0.5, 10),
			Quantum:     q,
		},
		Faults: NewFaultPlan().Crash(0, 200*q).Recover(0, 2000*q),
		Health: HealthConfig{EjectAfter: 5, Cooldown: 500 * q},
	}, NewRoundRobinRouter(), 2, 7)
	var svcs []*SimService
	for i := 0; i < 2; i++ {
		svcs = append(svcs, cl.AddSimNode("n"+string(rune('0'+i)), SimServiceConfig{
			Workers: 2, QueueCap: 16, MeanService: 8 * q, Quantum: q,
		}))
	}
	cl.Serve(&PhasedPoisson{Rate: 20000, Quantum: q}, 400)
	timedOut, err := cl.Run(sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if timedOut {
		t.Fatal("faulted fleet hit the horizon")
	}
	st := cl.Stats()
	var res ResilienceStats = st.Resilience
	if res.Retries == 0 || res.Failed == 0 {
		t.Fatalf("fault machinery unexercised: %+v", res)
	}
	if st.EndToEnd.Completed+res.Failed != 400 {
		t.Fatalf("accounts for %d+%d of 400 requests", st.EndToEnd.Completed, res.Failed)
	}
	shed := 0
	for _, svc := range svcs {
		shed += svc.Shed()
	}
	if shed == 0 {
		t.Fatal("bounded node queues never shed under the crash backlog")
	}
	// The bounded admission limiter sheds once its backlog fills.
	lim := NewBoundedAdmissionLimiter(1, 1)
	if !lim.Admit(func() {}) || !lim.Admit(func() {}) {
		t.Fatal("limiter refused admissible work")
	}
	if lim.Admit(func() {}) || lim.Shed() != 1 {
		t.Fatal("bounded limiter did not shed beyond its backlog")
	}
}
