// The go vet -vettool protocol: the go command compiles each package's
// dependencies, writes their export data, and invokes the vet tool
// once per package with the path to a JSON config file. The tool
// type-checks the package from that config (no source importer, no
// network), prints findings to stderr, writes a facts file (empty —
// the determinism passes are factless), and exits 2 when it found
// anything. This mirrors golang.org/x/tools/go/analysis/unitchecker,
// which is unavailable offline.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

// vetConfig is the subset of the go command's vet config JSON that
// simlint needs.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

func runUnitchecker(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "simlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The facts file must exist even though simlint records no facts;
	// the go command caches and re-feeds it to dependents.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	diags, err := checkVetPackage(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func checkVetPackage(cfg *vetConfig) ([]lint.Diagnostic, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// The determinism contract covers simulation output, not
		// tests; vet hands us test variants too, so filter here the
		// same way the standalone loader's go list GoFiles does.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	// Imports resolve through the export data the go command already
	// built: path -> canonical path (ImportMap) -> export file
	// (PackageFile).
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, compiler, lookup)

	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}
	pkg := &lint.Package{Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	return lint.CheckPackage(pkg, lint.Analyzers()), nil
}
