// Command simlint runs the repository's determinism lint suite
// (internal/lint): maprange, wallclock, globalrand, and goleak, the
// passes that mechanically enforce the simulator's
// byte-identical-output contract.
//
// Standalone (what `make lint` runs):
//
//	simlint ./...
//	go run ./cmd/simlint ./internal/kernel
//
// It prints findings as file:line:col: analyzer: message and exits 1
// if there are any, 2 on internal errors.
//
// As a vet tool, for integration with the go command's caching and
// per-package fan-out:
//
//	go build -o bin/simlint ./cmd/simlint
//	go vet -vettool=$PWD/bin/simlint ./...
//
// In that mode the go command invokes simlint once per package with a
// JSON .cfg file describing the package and pre-built export data for
// its imports (see unitchecker.go).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The go command probes vet tools before use: -V=full for the
	// build-cache key, -flags for the JSON list of tool flags it may
	// forward. Answer both before normal flag parsing.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			fmt.Println("simlint version 1 (repro determinism suite)")
			return 0
		case "-flags", "--flags":
			fmt.Println("[]")
			return 0
		}
	}

	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	list := fs.Bool("list", false, "print each analyzer's name and rule, then exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}

	rest := fs.Args()
	// go vet -vettool mode: a single *.cfg argument.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnitchecker(rest[0])
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(".", patterns, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
