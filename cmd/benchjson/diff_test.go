package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fp(v float64) *float64 { return &v }

func mkReport(benchmarks ...Benchmark) *Report {
	return &Report{Goos: "linux", Goarch: "amd64", Benchmarks: benchmarks}
}

func deltaByKey(t *testing.T, deltas []benchDelta, key string) benchDelta {
	t.Helper()
	for _, d := range deltas {
		if d.key == key {
			return d
		}
	}
	t.Fatalf("no delta for %q in %+v", key, deltas)
	return benchDelta{}
}

func TestDiffHoldsWithinNoise(t *testing.T) {
	old := mkReport(
		Benchmark{Name: "BenchmarkA", Package: "p", NsPerOp: 100, AllocsPerOp: fp(0)},
		Benchmark{Name: "BenchmarkB", Package: "p", NsPerOp: 200, AllocsPerOp: fp(7)},
	)
	new := mkReport(
		Benchmark{Name: "BenchmarkA", Package: "p", NsPerOp: 109, AllocsPerOp: fp(0)}, // +9%: noise
		Benchmark{Name: "BenchmarkB", Package: "p", NsPerOp: 150, AllocsPerOp: fp(5)}, // improvement
	)
	deltas := diffReports(old, new)
	var sb strings.Builder
	if failed := writeDiff(&sb, deltas); failed {
		t.Fatalf("within-noise diff failed the gate:\n%s", sb.String())
	}
}

func TestDiffFlagsNsRegression(t *testing.T) {
	old := mkReport(Benchmark{Name: "BenchmarkA", Package: "p", NsPerOp: 100})
	new := mkReport(Benchmark{Name: "BenchmarkA", Package: "p", NsPerOp: 111}) // +11% > 10%
	deltas := diffReports(old, new)
	d := deltaByKey(t, deltas, "p.BenchmarkA")
	if !d.nsRegress {
		t.Fatalf("+11%% ns/op not flagged: %+v", d)
	}
	var sb strings.Builder
	if failed := writeDiff(&sb, deltas); !failed {
		t.Fatal("gate passed despite ns/op regression")
	}
	if !strings.Contains(sb.String(), "NS REGRESSION") {
		t.Fatalf("report does not name the regression:\n%s", sb.String())
	}
}

func TestDiffFlagsAnyAllocIncrease(t *testing.T) {
	// One alloc/op up is a failure even when ns/op improved: the
	// engine's 0 allocs/op is exact, not statistical.
	old := mkReport(Benchmark{Name: "BenchmarkEvent", Package: "p", NsPerOp: 100, AllocsPerOp: fp(0)})
	new := mkReport(Benchmark{Name: "BenchmarkEvent", Package: "p", NsPerOp: 50, AllocsPerOp: fp(1)})
	deltas := diffReports(old, new)
	d := deltaByKey(t, deltas, "p.BenchmarkEvent")
	if !d.allocs {
		t.Fatalf("alloc increase not flagged: %+v", d)
	}
	var sb strings.Builder
	if failed := writeDiff(&sb, deltas); !failed {
		t.Fatal("gate passed despite allocs/op increase")
	}
	if !strings.Contains(sb.String(), "ALLOC REGRESSION") {
		t.Fatalf("report does not name the regression:\n%s", sb.String())
	}
}

func TestDiffAllocNoiseBand(t *testing.T) {
	// Whole-simulation benchmarks at -benchtime=1x pick up a couple of
	// stray runtime allocations per run; the gate must absorb those
	// without letting a real per-op leak (which scales with the event
	// count) slip through.
	old := mkReport(
		Benchmark{Name: "BenchmarkJitter", Package: "p", NsPerOp: 100, AllocsPerOp: fp(5000)},
		Benchmark{Name: "BenchmarkLeak", Package: "p", NsPerOp: 100, AllocsPerOp: fp(5000)},
	)
	new := mkReport(
		Benchmark{Name: "BenchmarkJitter", Package: "p", NsPerOp: 100, AllocsPerOp: fp(5003)}, // runtime noise
		Benchmark{Name: "BenchmarkLeak", Package: "p", NsPerOp: 100, AllocsPerOp: fp(5100)},   // real leak
	)
	deltas := diffReports(old, new)
	if d := deltaByKey(t, deltas, "p.BenchmarkJitter"); d.allocs {
		t.Fatalf("+3 allocs on a 5000-alloc run flagged as a regression: %+v", d)
	}
	if d := deltaByKey(t, deltas, "p.BenchmarkLeak"); !d.allocs {
		t.Fatalf("+100 allocs on a 5000-alloc run not flagged: %+v", d)
	}
}

func TestDiffAddedAndRemovedAreInformational(t *testing.T) {
	old := mkReport(
		Benchmark{Name: "BenchmarkGone", Package: "p", NsPerOp: 10},
		Benchmark{Name: "BenchmarkKept", Package: "p", NsPerOp: 10},
	)
	new := mkReport(
		Benchmark{Name: "BenchmarkKept", Package: "p", NsPerOp: 10},
		Benchmark{Name: "BenchmarkNew", Package: "p", NsPerOp: 10},
	)
	deltas := diffReports(old, new)
	if d := deltaByKey(t, deltas, "p.BenchmarkGone"); !d.missingNew {
		t.Fatalf("removed benchmark not marked: %+v", d)
	}
	if d := deltaByKey(t, deltas, "p.BenchmarkNew"); !d.missingOld {
		t.Fatalf("added benchmark not marked: %+v", d)
	}
	var sb strings.Builder
	if failed := writeDiff(&sb, deltas); failed {
		t.Fatalf("membership changes alone must not fail the gate:\n%s", sb.String())
	}
}

func TestDiffMissingAllocsOnOneSideIsNotARegression(t *testing.T) {
	old := mkReport(Benchmark{Name: "BenchmarkA", Package: "p", NsPerOp: 100})
	new := mkReport(Benchmark{Name: "BenchmarkA", Package: "p", NsPerOp: 100, AllocsPerOp: fp(9)})
	var sb strings.Builder
	if failed := writeDiff(&sb, diffReports(old, new)); failed {
		t.Fatalf("allocs/op appearing on one side only must not fail:\n%s", sb.String())
	}
}

// TestRunDiffEndToEnd exercises the CLI path: files on disk, exit
// codes 0 / 1 / 2.
func TestRunDiffEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep *Report) string {
		t.Helper()
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old.json", mkReport(Benchmark{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: fp(2)}))
	goodPath := write("good.json", mkReport(Benchmark{Name: "BenchmarkA", NsPerOp: 95, AllocsPerOp: fp(2)}))
	badPath := write("bad.json", mkReport(Benchmark{Name: "BenchmarkA", NsPerOp: 95, AllocsPerOp: fp(3)}))

	var out, errb strings.Builder
	if code := runDiff(oldPath, goodPath, &out, &errb); code != 0 {
		t.Fatalf("clean diff exited %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "holds the line") {
		t.Fatalf("missing success summary:\n%s", out.String())
	}
	out.Reset()
	errb.Reset()
	if code := runDiff(oldPath, badPath, &out, &errb); code != 1 {
		t.Fatalf("regressing diff exited %d, want 1", code)
	}
	if code := runDiff(filepath.Join(dir, "absent.json"), goodPath, &out, &errb); code != 2 {
		t.Fatalf("missing file exited %d, want 2", code)
	}
}
