package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// The -diff mode: compare two BENCH_*.json perf trajectories and turn
// the committed baseline into a gate (ROADMAP item 5b). Allocs/op
// increases fail — the engine core earned its 0 allocs/op and keeps
// it — and ns/op may drift up at most nsTolerance before it counts as
// a regression, because wall-time is noisy across hosts while alloc
// counts are nearly exact: benchmarks that run whole simulations at
// -benchtime=1x pick up a couple of stray runtime/GC allocations
// attributed to their single iteration, so the alloc gate tolerates
// allocSlackAbs or allocSlackRel·old, whichever is larger. A real
// per-op leak scales with the simulation's event count and blows
// through both; 0 -> 1 on an alloc-free microbenchmark still fails.

// nsTolerance is the fractional ns/op increase tolerated as noise.
const nsTolerance = 0.10

// allocSlackAbs/allocSlackRel bound the allocs/op noise band.
const (
	allocSlackAbs = 0.5
	allocSlackRel = 0.005
)

// benchDelta is one benchmark's old-vs-new comparison.
type benchDelta struct {
	key        string
	oldNs      float64
	newNs      float64
	oldAllocs  *float64
	newAllocs  *float64
	nsRatio    float64 // new/old, 0 when old ns/op is 0
	nsRegress  bool
	allocs     bool // allocs/op increased
	missingNew bool
	missingOld bool
}

func benchKey(b Benchmark) string {
	if b.Package == "" {
		return b.Name
	}
	return b.Package + "." + b.Name
}

// diffReports compares old and new, returning per-benchmark deltas in
// the old report's (package, name) order with new-only benchmarks
// appended.
func diffReports(old, new *Report) []benchDelta {
	newByKey := make(map[string]Benchmark, len(new.Benchmarks))
	for _, b := range new.Benchmarks {
		newByKey[benchKey(b)] = b
	}
	var deltas []benchDelta
	seen := make(map[string]bool, len(old.Benchmarks))
	for _, ob := range old.Benchmarks {
		key := benchKey(ob)
		seen[key] = true
		nb, ok := newByKey[key]
		if !ok {
			deltas = append(deltas, benchDelta{key: key, oldNs: ob.NsPerOp, missingNew: true})
			continue
		}
		d := benchDelta{
			key:       key,
			oldNs:     ob.NsPerOp,
			newNs:     nb.NsPerOp,
			oldAllocs: ob.AllocsPerOp,
			newAllocs: nb.AllocsPerOp,
		}
		if ob.NsPerOp > 0 {
			d.nsRatio = nb.NsPerOp / ob.NsPerOp
			d.nsRegress = d.nsRatio > 1+nsTolerance
		}
		if ob.AllocsPerOp != nil && nb.AllocsPerOp != nil {
			slack := allocSlackAbs
			if rel := allocSlackRel * *ob.AllocsPerOp; rel > slack {
				slack = rel
			}
			d.allocs = *nb.AllocsPerOp > *ob.AllocsPerOp+slack
		}
		deltas = append(deltas, d)
	}
	for _, nb := range new.Benchmarks {
		if key := benchKey(nb); !seen[key] {
			deltas = append(deltas, benchDelta{key: key, newNs: nb.NsPerOp, missingOld: true})
		}
	}
	return deltas
}

// writeDiff renders the deltas and reports whether the comparison
// fails the gate (any allocs/op increase or >nsTolerance ns/op
// regression). Benchmarks present on only one side are informational.
func writeDiff(w io.Writer, deltas []benchDelta) (failed bool) {
	for _, d := range deltas {
		switch {
		case d.missingNew:
			fmt.Fprintf(w, "?  %-60s only in OLD\n", d.key)
		case d.missingOld:
			fmt.Fprintf(w, "?  %-60s only in NEW (%.1f ns/op)\n", d.key, d.newNs)
		default:
			mark := "ok"
			if d.nsRegress || d.allocs {
				mark = "RE"
				failed = true
			} else if d.nsRatio != 0 && d.nsRatio < 1-nsTolerance {
				mark = "im" // improvement beyond the noise band
			}
			line := fmt.Sprintf("%s %-60s %12.1f -> %12.1f ns/op (%+.1f%%)",
				mark, d.key, d.oldNs, d.newNs, 100*(d.nsRatio-1))
			if d.oldAllocs != nil && d.newAllocs != nil {
				line += fmt.Sprintf("  %6.0f -> %6.0f allocs/op", *d.oldAllocs, *d.newAllocs)
				if d.allocs {
					line += "  ALLOC REGRESSION"
				}
			}
			if d.nsRegress {
				line += fmt.Sprintf("  NS REGRESSION (> %+.0f%%)", 100*nsTolerance)
			}
			fmt.Fprintln(w, line)
		}
	}
	return failed
}

// readReport loads one BENCH_*.json file.
func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rep, nil
}

// runDiff implements `benchjson -diff OLD NEW`: exit 0 when NEW holds
// the line against OLD, 1 on any regression, 2 on usage/IO errors.
func runDiff(oldPath, newPath string, stdout, stderr io.Writer) int {
	old, err := readReport(oldPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	new, err := readReport(newPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	deltas := diffReports(old, new)
	if writeDiff(stdout, deltas) {
		fmt.Fprintf(stderr, "benchjson: %s regressed against %s (allocs/op increase or ns/op > +%.0f%%)\n",
			newPath, oldPath, 100*nsTolerance)
		return 1
	}
	fmt.Fprintf(stdout, "benchjson: %s holds the line against %s\n", newPath, oldPath)
	return 0
}
