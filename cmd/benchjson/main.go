// Command benchjson converts `go test -bench` output into a
// machine-readable JSON perf trajectory. It reads benchmark text from
// stdin (or -in FILE) and writes a JSON document (to stdout or -out
// FILE) with one record per benchmark: iterations, ns/op, B/op,
// allocs/op, and any custom metrics (the sim-* values the paper
// benchmarks report). CI runs it after the bench job so every PR leaves
// a BENCH_*.json artifact to diff against.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -benchmem -run='^$' ./... | benchjson -out BENCH_PR4.json
//
// It can also gate a fresh run against a committed baseline:
//
//	benchjson -diff BENCH_PR5.json BENCH_CI.json
//
// which prints a per-benchmark comparison and exits non-zero if any
// benchmark's allocs/op increased or its ns/op regressed by more than
// 10% (wall time is noisy; allocation counts are near-exact — see the
// noise band in diff.go).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Package     string             `json:"package,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"b_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "", "read benchmark output from `file` instead of stdin")
	out := flag.String("out", "", "write JSON to `file` instead of stdout")
	diff := flag.Bool("diff", false, "compare two BENCH_*.json files: benchjson -diff OLD NEW")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two arguments: OLD NEW")
			os.Exit(2)
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1), os.Stdout, os.Stderr))
	}

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		defer f.Close()
		r = f
	}
	rep, err := parse(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
}

// parse consumes `go test -bench` text output. Unknown lines are
// ignored, so interleaved test output ("ok repro 1.2s", PASS) is
// harmless.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		b.Package = pkg
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(rep.Benchmarks, func(i, j int) bool {
		if rep.Benchmarks[i].Package != rep.Benchmarks[j].Package {
			return rep.Benchmarks[i].Package < rep.Benchmarks[j].Package
		}
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})
	return rep, nil
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkTimerChurn-4  10398724  115.1 ns/op  0 B/op  0 allocs/op  3.2 sim-GFLOPS
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so names are stable across hosts.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	seenNs := false
	// The remainder alternates value / unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
			seenNs = true
		case "B/op":
			vv := v
			b.BytesPerOp = &vv
		case "allocs/op":
			vv := v
			b.AllocsPerOp = &vv
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, seenNs
}
