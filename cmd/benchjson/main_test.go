package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFigure3MatmulBaseline-4    3  46143907 ns/op  207.2 sim-GFLOPS  0 sim-preemptions  222306 B/op  3750 allocs/op
BenchmarkZZZ-4  1  5 ns/op
PASS
ok  	repro	1.923s
pkg: repro/internal/sim
BenchmarkTimerChurn-4  10398724  115.1 ns/op  0 B/op  0 allocs/op
some noise line
ok  	repro/internal/sim	8.417s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	// Sorted by (package, name).
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkFigure3MatmulBaseline" || b.Package != "repro" {
		t.Fatalf("first = %+v", b)
	}
	if b.Iterations != 3 || b.NsPerOp != 46143907 {
		t.Fatalf("ns/op: %+v", b)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 3750 {
		t.Fatalf("allocs/op: %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 222306 {
		t.Fatalf("B/op: %+v", b)
	}
	if b.Metrics["sim-GFLOPS"] != 207.2 || b.Metrics["sim-preemptions"] != 0 {
		t.Fatalf("metrics: %+v", b.Metrics)
	}
	churn := rep.Benchmarks[2]
	if churn.Name != "BenchmarkTimerChurn" || churn.Package != "repro/internal/sim" {
		t.Fatalf("third = %+v", churn)
	}
	if churn.AllocsPerOp == nil || *churn.AllocsPerOp != 0 {
		t.Fatalf("churn allocs: %+v", churn)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	rep, err := parse(strings.NewReader("BenchmarkBroken-4 notanumber ns/op\nhello\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("parsed garbage: %+v", rep.Benchmarks)
	}
}
