package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestMachineSmoke(t *testing.T) {
	code, out, _ := runCLI(t, "machine")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"Machine:", "Sockets:", "Core dgemm rate:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("machine output missing %q:\n%s", want, out)
		}
	}
	// machine has no cells, so asking for a metrics report is an error,
	// not silently ignored.
	code, _, errOut := runCLI(t, "machine", "-json")
	if code != 2 || !strings.Contains(errOut, "machine does not support") {
		t.Fatalf("machine -json: exit %d, stderr:\n%s", code, errOut)
	}
}

func TestQuickSweepFlagsEitherPosition(t *testing.T) {
	// `-quick` before the subcommand (the form that used to exit 2).
	code, before, errOut := runCLI(t, "-quick", "-par", "2", "cholesky")
	if code != 0 {
		t.Fatalf("flags-first exit %d: %s", code, errOut)
	}
	// Same flags after the subcommand, different pool width.
	code, after, _ := runCLI(t, "cholesky", "-quick", "-par", "4")
	if code != 0 {
		t.Fatalf("flags-last exit %d", code)
	}
	if before != after {
		t.Fatalf("tables differ between -par 2 and -par 4:\n%s\n---\n%s", before, after)
	}
	for _, want := range []string{"Table 2: Cholesky runtime compositions", "tbb", "blis"} {
		if !strings.Contains(before, want) {
			t.Fatalf("sweep output missing %q:\n%s", want, before)
		}
	}
}

func TestUnknownSubcommandNamed(t *testing.T) {
	code, _, errOut := runCLI(t, "bogus", "-quick")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, `unknown subcommand "bogus"`) {
		t.Fatalf("usage error does not name the subcommand:\n%s", errOut)
	}
	if code, _, errOut = runCLI(t); code != 2 || !strings.Contains(errOut, "missing subcommand") {
		t.Fatalf("no-arg run: exit %d, stderr:\n%s", code, errOut)
	}
}

func TestJSONReportRoundTripAndOutFile(t *testing.T) {
	csvPath := filepath.Join(t.TempDir(), "cells.CSV") // extension match is case-insensitive
	code, out, errOut := runCLI(t, "-quick", "-json", "-par", "64", "-out", csvPath, "lammps")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	var rep harness.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-json output does not round-trip: %v\n%s", err, out)
	}
	if len(rep.Cells) != 7 { // seven Fig. 5 scenarios
		t.Fatalf("cells = %d, want 7", len(rep.Cells))
	}
	if rep.Workers != 7 { // -par 64 must be clamped to the cell count
		t.Fatalf("workers = %d, want 7", rep.Workers)
	}
	// A bad -out path must fail before the sweep runs.
	if code, _, errOut = runCLI(t, "-quick", "-out", "/nonexistent-dir/x.csv", "lammps"); code != 2 {
		t.Fatalf("bad -out path: exit %d, stderr:\n%s", code, errOut)
	}
	for _, c := range rep.Cells {
		if c.Scenario != "lammps" || c.SimSeconds <= 0 || c.HostSeconds <= 0 {
			t.Fatalf("bad cell metric: %+v", c)
		}
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 8 || !strings.HasPrefix(lines[0], "scenario,cell,") {
		t.Fatalf("-out csv:\n%s", data)
	}
}

func TestSchedCmpSubcommand(t *testing.T) {
	code, out, errOut := runCLI(t, "schedcmp", "-quick", "-par", "2")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"Kernel-scheduler ablation", "fair", "rr", "fifo", "batch", "speedup vs fair"} {
		if !strings.Contains(out, want) {
			t.Fatalf("schedcmp output missing %q:\n%s", want, out)
		}
	}
	// Determinism across pool widths, like every other scenario.
	code, out2, _ := runCLI(t, "-par", "5", "schedcmp", "-quick")
	if code != 0 || out != out2 {
		t.Fatalf("schedcmp tables differ between -par 2 and -par 5 (exit %d)", code)
	}
}

func TestChaosSubcommand(t *testing.T) {
	code, out, errOut := runCLI(t, "chaos", "-quick", "-par", "2")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{
		"fault: kill", "fault: brownout", "goodput", "ttr_s", "never",
		"rr/unlimited", "rr/budgeted", "p2c/hedged",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("chaos output missing %q:\n%s", want, out)
		}
	}
	// Determinism across pool widths and shard counts: a retry storm
	// renders the same tables on any host configuration.
	code, out2, _ := runCLI(t, "-par", "5", "chaos", "-quick", "-shards", "2")
	if code != 0 || out != out2 {
		t.Fatalf("chaos tables differ between -par 2 and -par 5 -shards 2 (exit %d)", code)
	}
}

func TestTailLoadSubcommand(t *testing.T) {
	code, out, errOut := runCLI(t, "tailload", "-quick", "-par", "2")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{
		"Tail latency under load", "arrivals: poisson", "arrivals: bursty",
		"p99 latency", "goodput", "SLO violation fraction",
		"Max sustainable load", "sched_coop", "fair", "rr", "fifo", "batch",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("tailload output missing %q:\n%s", want, out)
		}
	}
	// Determinism across pool widths, like every other scenario.
	code, out2, _ := runCLI(t, "-par", "5", "tailload", "-quick")
	if code != 0 || out != out2 {
		t.Fatalf("tailload tables differ between -par 2 and -par 5 (exit %d)", code)
	}
}

func TestTailLoadJSONReport(t *testing.T) {
	code, out, errOut := runCLI(t, "tailload", "-quick", "-json", "-par", "3")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	var rep harness.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-json output does not round-trip: %v\n%s", err, out)
	}
	// 2 shapes x 5 schemes x 4 loads in the quick config.
	if len(rep.Cells) != 40 {
		t.Fatalf("cells = %d, want 40", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Scenario != "tailload" || c.SimSeconds <= 0 || c.HostSeconds <= 0 {
			t.Fatalf("bad cell metric: %+v", c)
		}
	}
	if rep.Seed != 0 {
		t.Fatalf("default run must record seed 0, got %d", rep.Seed)
	}
}

func TestSeedFlagReplicatesSweeps(t *testing.T) {
	// The override must be recorded in the report and perturb results;
	// the same override twice must agree exactly.
	code, def, _ := runCLI(t, "microservices", "-quick")
	if code != 0 {
		t.Fatal("default run failed")
	}
	code, seeded, errOut := runCLI(t, "microservices", "-quick", "-seed", "12345")
	if code != 0 {
		t.Fatalf("seeded run failed: %s", errOut)
	}
	if def == seeded {
		t.Fatal("-seed 12345 produced byte-identical output to the default seeds")
	}
	code, seeded2, _ := runCLI(t, "-seed", "12345", "microservices", "-quick")
	if code != 0 || seeded != seeded2 {
		t.Fatalf("same -seed not reproducible (exit %d)", code)
	}
	code, out, _ := runCLI(t, "microservices", "-quick", "-json", "-seed", "12345")
	if code != 0 {
		t.Fatal("seeded -json run failed")
	}
	var rep harness.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Seed != 12345 {
		t.Fatalf("report seed = %d, want 12345", rep.Seed)
	}
}

func TestShardsFlagRecordedAndInert(t *testing.T) {
	// -shards must be recorded in the report, and scenarios without a
	// fleet must ignore it entirely: same tables, byte for byte. (The
	// cluster scenario's byte-identity across shard counts is covered in
	// internal/experiments and internal/cluster.)
	code, def, _ := runCLI(t, "cholesky", "-quick")
	if code != 0 {
		t.Fatal("default run failed")
	}
	code, sharded, errOut := runCLI(t, "cholesky", "-quick", "-shards", "3")
	if code != 0 {
		t.Fatalf("sharded run failed: %s", errOut)
	}
	if def != sharded {
		t.Fatal("-shards changed a scenario with no fleet")
	}
	code, out, _ := runCLI(t, "cholesky", "-quick", "-json", "-shards", "3")
	if code != 0 {
		t.Fatal("sharded -json run failed")
	}
	var rep harness.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Shards != 3 {
		t.Fatalf("report shards = %d, want 3", rep.Shards)
	}
}

func TestTraceFlagWritesChromeJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	code, out, errOut := runCLI(t, "schedcmp", "-quick", "-trace", path)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if out != "" {
		t.Fatalf("-trace must not print tables, got:\n%s", out)
	}
	if !strings.Contains(errOut, "trace events written") {
		t.Fatalf("missing trace summary on stderr:\n%s", errOut)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(data, &evs); err != nil {
		t.Fatalf("trace file is not a JSON event array: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("trace file holds no events")
	}
	// Dispatch slices carry the scheduling-class tag.
	tagged := false
	for _, e := range evs {
		if e["ph"] == "B" {
			if args, ok := e["args"].(map[string]any); ok && args["class"] != nil {
				tagged = true
				break
			}
		}
	}
	if !tagged {
		t.Fatal("no run-start event carries a scheduling-class tag")
	}
}

func TestTraceFlagErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	// cholesky has no tracer hookup.
	if code, _, errOut := runCLI(t, "cholesky", "-quick", "-trace", path); code != 2 ||
		!strings.Contains(errOut, "does not support tracing") {
		t.Fatalf("cholesky -trace: exit %d, stderr:\n%s", code, errOut)
	}
	// -trace is a single-scenario mode.
	if code, _, errOut := runCLI(t, "all", "-quick", "-trace", path); code != 2 ||
		!strings.Contains(errOut, "single scenario") {
		t.Fatalf("all -trace: exit %d, stderr:\n%s", code, errOut)
	}
	// ...and excludes the metrics report.
	if code, _, errOut := runCLI(t, "matmul", "-quick", "-trace", path, "-json"); code != 2 ||
		!strings.Contains(errOut, "cannot be combined") {
		t.Fatalf("-trace -json: exit %d, stderr:\n%s", code, errOut)
	}
}

func TestProfileFlagsWriteProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	code, out, errOut := runCLI(t, "cholesky", "-quick", "-par", "1",
		"-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "Table 2") {
		t.Fatalf("profiled run lost its table output:\n%s", out)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	// An unwritable profile path must fail fast, before the sweep.
	code, _, _ = runCLI(t, "cholesky", "-quick",
		"-cpuprofile", filepath.Join(dir, "no/such/dir/cpu.pprof"))
	if code != 2 {
		t.Fatalf("bad -cpuprofile path: exit %d, want 2", code)
	}
}

func TestTraceShardsExclusion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	// Traced cells run on one shared engine; a sharded fleet would
	// scramble the single flight-recorder ring.
	if code, _, errOut := runCLI(t, "schedcmp", "-quick", "-trace", path, "-shards", "2"); code != 2 ||
		!strings.Contains(errOut, "-trace cannot be combined with -shards") {
		t.Fatalf("-trace -shards: exit %d, stderr:\n%s", code, errOut)
	}
	// -shards 1 is the shared-engine degenerate case and stays allowed.
	if code, _, errOut := runCLI(t, "schedcmp", "-quick", "-trace", path, "-shards", "1"); code != 0 {
		t.Fatalf("-trace -shards 1: exit %d, stderr:\n%s", code, errOut)
	}
}

func TestTelemetryFlagExclusions(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	mfile := filepath.Join(dir, "m.csv")
	// -trace replaces the sweep, so there is no telemetry to export.
	if code, _, errOut := runCLI(t, "schedcmp", "-quick", "-trace", trace, "-metrics", mfile); code != 2 ||
		!strings.Contains(errOut, "-trace cannot be combined with -metrics or -spans") {
		t.Fatalf("-trace -metrics: exit %d, stderr:\n%s", code, errOut)
	}
	if code, _, errOut := runCLI(t, "schedcmp", "-quick", "-trace", trace, "-spans", mfile); code != 2 ||
		!strings.Contains(errOut, "-trace cannot be combined with -metrics or -spans") {
		t.Fatalf("-trace -spans: exit %d, stderr:\n%s", code, errOut)
	}
	// machine has no cells to scrape.
	if code, _, errOut := runCLI(t, "machine", "-metrics", mfile); code != 2 ||
		!strings.Contains(errOut, "machine does not support") {
		t.Fatalf("machine -metrics: exit %d, stderr:\n%s", code, errOut)
	}
	// A bad telemetry path must fail before the sweep runs.
	if code, _, _ := runCLI(t, "cholesky", "-quick", "-metrics", "/nonexistent-dir/m.csv"); code != 2 {
		t.Fatalf("bad -metrics path: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "cholesky", "-quick", "-spans", "/nonexistent-dir/s.csv"); code != 2 {
		t.Fatalf("bad -spans path: exit %d, want 2", code)
	}
}

func TestMetricsAndSpansExport(t *testing.T) {
	dir := t.TempDir()
	mfile := filepath.Join(dir, "metrics.csv")
	sfile := filepath.Join(dir, "spans.csv")
	code, out, errOut := runCLI(t, "cluster", "-quick", "-metrics", mfile, "-spans", sfile)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	// With spans on, the cluster scenario renders its hop-attribution
	// table.
	if !strings.Contains(out, "where does p99 live") {
		t.Fatalf("-spans did not render the tail-attribution table:\n%s", out)
	}
	m, err := os.ReadFile(mfile)
	if err != nil {
		t.Fatal(err)
	}
	mLines := strings.Split(strings.TrimSpace(string(m)), "\n")
	if mLines[0] != "scenario,cell,series,node,at_ns,value" || len(mLines) < 2 {
		t.Fatalf("metrics csv header/rows:\n%s", mLines[0])
	}
	if !strings.HasPrefix(mLines[1], "cluster,") {
		t.Fatalf("metrics row: %q", mLines[1])
	}
	s, err := os.ReadFile(sfile)
	if err != nil {
		t.Fatal(err)
	}
	sLines := strings.Split(strings.TrimSpace(string(s)), "\n")
	if sLines[0] != "scenario,cell,id,node,submit_ns,arrive_ns,start_ns,done_ns,reply_ns,network_ns,queue_ns,service_ns,outcome,attempts" || len(sLines) < 2 {
		t.Fatalf("spans csv header/rows:\n%s", sLines[0])
	}
	// JSON export round-trips.
	mjson := filepath.Join(dir, "metrics.json")
	if code, _, errOut := runCLI(t, "tailload", "-quick", "-metrics", mjson); code != 0 {
		t.Fatalf("json metrics run: exit %d: %s", code, errOut)
	}
	var rows []harness.MetricRow
	data, err := os.ReadFile(mjson)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("metrics json: %v", err)
	}
	if len(rows) == 0 || rows[0].Scenario != "tailload" {
		t.Fatalf("metrics json rows: %d", len(rows))
	}
}

func TestVerboseProgress(t *testing.T) {
	code, out, errOut := runCLI(t, "cholesky", "-quick", "-v", "-par", "2")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	// Progress goes to stderr only; the tables are untouched.
	if !strings.Contains(out, "Table 2") {
		t.Fatalf("verbose run lost its table output:\n%s", out)
	}
	if !strings.Contains(errOut, "[1/") || !strings.Contains(errOut, "cholesky/") {
		t.Fatalf("no per-cell progress on stderr:\n%s", errOut)
	}
	code, quiet, _ := runCLI(t, "cholesky", "-quick", "-par", "2")
	if code != 0 || quiet != out {
		t.Fatal("-v changed the table output")
	}
}
