// Command uschedsim runs the paper's experiments on the simulated stack
// and prints paper-style tables.
//
// Usage:
//
//	uschedsim machine                 # print the Table 1 machine model
//	uschedsim matmul [-quick]         # Figure 3 heatmaps
//	uschedsim cholesky [-quick]       # Table 2
//	uschedsim microservices [-quick]  # Figure 4
//	uschedsim lammps [-quick]         # Figure 5 (+ bandwidth trace)
//	uschedsim schedcmp [-quick]       # kernel-scheduler ablation (classes × oversubscription)
//	uschedsim tailload [-quick]       # tail latency under load (arrival shapes × schemes, SLO knee)
//	uschedsim cluster [-quick]        # multi-node fleet (routers × schemes × shapes × load)
//	uschedsim chaos [-quick]          # fault injection (node kill & brownout × retry policies × routers)
//	uschedsim all -quick              # everything, small instances
//
// Flags may appear before or after the subcommand:
//
//	-quick      run small, fast instances instead of the scaled sweep
//	-par N      run N sim cells concurrently (default GOMAXPROCS)
//	-seed N     replace each scenario's default RNG seed so sweeps can
//	            be replicated under independent random streams (0, the
//	            default, keeps the paper seeds: output stays
//	            byte-identical run to run)
//	-shards N   spread each fleet cell (the cluster scenario) over N
//	            conservative-parallel engine shards so one cell can use
//	            several host cores; tables are byte-identical for any N
//	            (0, the default, keeps one shared engine per cell;
//	            scenarios without a fleet ignore the flag)
//	-json       print the per-cell metrics report as JSON instead of tables
//	-out FILE   also write the metrics report to FILE (.csv selects CSV)
//	-metrics FILE
//	            collect simulated-time telemetry (meter, admission,
//	            kernel, and router series scraped on the virtual
//	            timeline) in scenarios that support it and write the
//	            long-format rows to FILE (.csv selects CSV, otherwise
//	            JSON); the file is byte-identical for any -par or
//	            -shards value
//	-spans FILE record per-request hop spans (client → router → network →
//	            node queue → service → reply) in fleet scenarios and
//	            write them to FILE (.csv selects CSV); byte-identical
//	            for any -par or -shards value
//	-v          print one progress line per completed cell to stderr
//	            (completion order; table output is unaffected)
//	-trace FILE instead of sweeping, run one representative cell of the
//	            scenario with kernel event tracing and write Chrome
//	            trace-event JSON (chrome://tracing, Perfetto) to FILE;
//	            events are tagged with the scheduling class. -trace runs
//	            the cell on one shared engine and cannot be combined
//	            with -shards, -metrics, or -spans
//	-cpuprofile FILE
//	            write a pprof CPU profile of the run to FILE, so any
//	            scenario can be profiled directly (go tool pprof)
//	-memprofile FILE
//	            write a pprof heap profile taken at exit to FILE
//
// Experiments are resolved against the internal/harness scenario
// registry; their independent cells fan out over a bounded worker pool
// and are reassembled in declaration order, so table output is
// byte-identical for any -par value (timing goes to stderr). Full-size
// sweeps (-quick omitted) run the scaled paper configurations and can
// take many minutes of host time.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	_ "repro/internal/experiments" // register the experiment scenarios
	"repro/internal/harness"
	"repro/internal/hw"
	"repro/internal/metrics"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("uschedsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "run small, fast instances instead of the scaled paper sweep")
	par := fs.Int("par", 0, "sim cells to run concurrently (0 means GOMAXPROCS)")
	asJSON := fs.Bool("json", false, "print the metrics report as JSON instead of tables")
	outPath := fs.String("out", "", "write the metrics report to `file` (.csv selects CSV, otherwise JSON)")
	metricsPath := fs.String("metrics", "", "collect simulated-time telemetry and write the rows to `file` (.csv selects CSV, otherwise JSON)")
	spansPath := fs.String("spans", "", "record per-request spans in fleet scenarios and write them to `file` (.csv selects CSV, otherwise JSON)")
	verbose := fs.Bool("v", false, "print one progress line per completed cell to stderr")
	tracePath := fs.String("trace", "", "run one representative traced cell and write Chrome trace-event JSON to `file` (single shared engine: cannot be combined with -shards, -metrics, or -spans)")
	seed := fs.Uint64("seed", 0, "replace each scenario's default RNG seed (0 keeps the paper seeds; output is then byte-identical)")
	shards := fs.Int("shards", 0, "spread each fleet cell over `N` conservative-parallel engine shards (0 keeps one shared engine; tables are byte-identical for any N)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to `file`")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile at exit to `file`")
	fs.Usage = func() { usage(fs) }
	parse := func(args []string) (int, bool) {
		switch err := fs.Parse(args); {
		case err == nil:
			return 0, true
		case errors.Is(err, flag.ErrHelp):
			return 0, false
		default:
			return 2, false
		}
	}
	if code, ok := parse(args); !ok {
		return code
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fmt.Fprintln(stderr, "uschedsim: missing subcommand")
		fs.Usage()
		return 2
	}
	cmd := rest[0]
	// Flags may follow the subcommand too: `uschedsim all -quick` and
	// `uschedsim -quick all` are equivalent.
	if code, ok := parse(rest[1:]); !ok {
		return code
	}
	if extra := fs.Args(); len(extra) > 0 {
		fmt.Fprintf(stderr, "uschedsim: unexpected arguments %q\n", extra)
		fs.Usage()
		return 2
	}

	// Profiling wraps everything below, so any scenario (or the whole
	// sweep) can be profiled directly: the CPU profile covers the run,
	// the heap profile is a snapshot at exit.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, "uschedsim:", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "uschedsim:", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		// Fail fast on an unwritable path before minutes of simulation.
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(stderr, "uschedsim:", err)
			return 2
		}
		defer func() {
			runtime.GC() // surface live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "uschedsim:", err)
			}
			f.Close()
		}()
	}

	var scenarios []*harness.Scenario
	switch cmd {
	case "machine":
		if *asJSON || *outPath != "" || *tracePath != "" || *metricsPath != "" || *spansPath != "" {
			fmt.Fprintln(stderr, "uschedsim: machine does not support -json, -out, -metrics, -spans, or -trace")
			return 2
		}
		machineCmd(stdout)
		return 0
	case "all":
		scenarios = harness.Scenarios()
	default:
		s, ok := harness.Lookup(cmd)
		if !ok {
			fmt.Fprintf(stderr, "uschedsim: unknown subcommand %q\n", cmd)
			fs.Usage()
			return 2
		}
		scenarios = []*harness.Scenario{s}
	}

	opt := harness.Opts{
		Quick:       *quick,
		Seed:        *seed,
		Shards:      *shards,
		Metrics:     *metricsPath != "",
		SpanRecords: *spansPath != "",
	}
	if *verbose {
		opt.Progress = func(done, total int, m metrics.CellMetric) {
			fmt.Fprintf(stderr, "[%d/%d] %s/%s: sim %.1fs host %.2fs\n",
				done, total, m.Scenario, m.Cell, m.SimSeconds, m.HostSeconds)
		}
	}
	if *tracePath != "" {
		if *shards > 1 {
			// Traced cells run on one shared engine: a sharded fleet's
			// events interleave across engines, which would scramble the
			// single flight-recorder ring.
			fmt.Fprintln(stderr, "uschedsim: -trace cannot be combined with -shards (traced cells run on one shared engine)")
			return 2
		}
		if *metricsPath != "" || *spansPath != "" {
			fmt.Fprintln(stderr, "uschedsim: -trace cannot be combined with -metrics or -spans")
			return 2
		}
		return traceCmd(scenarios, cmd, opt, *asJSON || *outPath != "", *tracePath, stderr)
	}

	// Open a temp file next to each output target before the sweep: a bad
	// path must fail fast, not after minutes of simulation, and a crash
	// or interrupt mid-sweep must not clobber a previous report. The
	// publish below renames it into place only on success.
	outFile, ok := openTarget(*outPath, stderr)
	if !ok {
		return 2
	}
	defer outFile.cleanup()
	metricsFile, ok := openTarget(*metricsPath, stderr)
	if !ok {
		return 2
	}
	defer metricsFile.cleanup()
	spansFile, ok := openTarget(*spansPath, stderr)
	if !ok {
		return 2
	}
	defer spansFile.cleanup()

	sweep := harness.RunScenarios(scenarios, opt, *par)
	report := sweep.Report()
	if *asJSON {
		b, err := report.JSON()
		if err != nil {
			fmt.Fprintln(stderr, "uschedsim:", err)
			return 1
		}
		fmt.Fprintf(stdout, "%s\n", b)
	} else if err := sweep.RenderTables(stdout); err != nil {
		fmt.Fprintln(stderr, "uschedsim:", err)
		return 1
	}
	fmt.Fprintf(stderr, "(%d cells, %d workers, sim time %.1fs, host time %.2fs, wall %.2fs)\n",
		sweep.Cells(), sweep.Par, report.TotalSimSeconds, report.TotalHostSeconds, report.WallSeconds)
	if !outFile.publish(stderr, report.Write) {
		return 1
	}
	if !metricsFile.publish(stderr, sweep.WriteMetrics) {
		return 1
	}
	if !spansFile.publish(stderr, sweep.WriteSpans) {
		return 1
	}
	return 0
}

// outTarget is one pending output file: a temp file next to the target
// path, renamed into place only after a successful write.
type outTarget struct {
	path string
	f    *os.File
	done bool
}

// openTarget opens a temp file next to path (nil target when path is
// empty). Reports false after printing the error.
func openTarget(path string, stderr io.Writer) (*outTarget, bool) {
	if path == "" {
		return nil, true
	}
	f, err := os.CreateTemp(filepath.Dir(path), ".uschedsim-out-*")
	if err != nil {
		fmt.Fprintln(stderr, "uschedsim:", err)
		return nil, false
	}
	return &outTarget{path: path, f: f}, true
}

// cleanup removes the temp file unless publish renamed it into place.
func (t *outTarget) cleanup() {
	if t == nil || t.done {
		return
	}
	t.f.Close()
	os.Remove(t.f.Name())
}

// publish writes via write (CSV when the target path ends in .csv) and
// renames the temp file into place. Reports success; errors go to
// stderr.
func (t *outTarget) publish(stderr io.Writer, write func(w io.Writer, csv bool) error) bool {
	if t == nil {
		return true
	}
	if err := write(t.f, harness.CSVPath(t.path)); err != nil {
		fmt.Fprintln(stderr, "uschedsim:", err)
		return false
	}
	// CreateTemp made the file 0600; publish it world-readable like a
	// plain create would.
	if err := t.f.Chmod(0o644); err != nil {
		fmt.Fprintln(stderr, "uschedsim:", err)
		return false
	}
	if err := t.f.Close(); err != nil {
		fmt.Fprintln(stderr, "uschedsim:", err)
		return false
	}
	if err := os.Rename(t.f.Name(), t.path); err != nil {
		fmt.Fprintln(stderr, "uschedsim:", err)
		return false
	}
	t.done = true
	return true
}

// traceCmd runs the scenario's representative traced cell and writes the
// Chrome trace-event JSON. It replaces the sweep: the traced cell runs
// serially (traces from a pooled sweep would interleave engines).
func traceCmd(scenarios []*harness.Scenario, cmd string, opt harness.Opts, withReport bool, path string, stderr io.Writer) int {
	if withReport {
		fmt.Fprintln(stderr, "uschedsim: -trace cannot be combined with -json or -out")
		return 2
	}
	if len(scenarios) != 1 {
		fmt.Fprintln(stderr, "uschedsim: -trace needs a single scenario subcommand")
		return 2
	}
	s := scenarios[0]
	if s.Trace == nil {
		fmt.Fprintf(stderr, "uschedsim: scenario %q does not support tracing\n", s.Name)
		return 2
	}
	buf := s.Trace(opt)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(stderr, "uschedsim:", err)
		return 2
	}
	if err := buf.WriteChromeTrace(f); err != nil {
		f.Close()
		fmt.Fprintln(stderr, "uschedsim:", err)
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(stderr, "uschedsim:", err)
		return 1
	}
	fmt.Fprintf(stderr, "(%s: %d trace events written to %s, %d dropped)\n",
		cmd, buf.Len(), path, buf.Dropped)
	return 0
}

func usage(fs *flag.FlagSet) {
	fmt.Fprintf(fs.Output(), "usage: uschedsim [flags] {machine|%s|all} [flags]\n",
		strings.Join(harness.Names(), "|"))
	fs.PrintDefaults()
}

func machineCmd(w io.Writer) {
	cfg := hw.MareNostrum5()
	fmt.Fprintf(w, "Machine: %s (paper Table 1)\n", cfg.Name)
	fmt.Fprintf(w, "  Sockets:          %d\n", cfg.Topo.Sockets)
	fmt.Fprintf(w, "  Cores/socket:     %d (total %d)\n", cfg.Topo.CoresPerSocket, cfg.Topo.Cores())
	fmt.Fprintf(w, "  NUMA nodes:       %d\n", cfg.Topo.NUMANodes())
	fmt.Fprintf(w, "  Socket bandwidth: %.0f GB/s\n", cfg.Mem.SocketBandwidth)
	fmt.Fprintf(w, "  Core dgemm rate:  %.0f GFLOP/s\n", cfg.CoreGFLOPS)
	fmt.Fprintf(w, "  Context switch:   %v\n", cfg.Costs.ContextSwitch)
	fmt.Fprintf(w, "  Migration (socket): %v\n", cfg.Costs.MigrationCrossSocket)
}
