// Command uschedsim runs the paper's experiments on the simulated stack
// and prints paper-style tables.
//
// Usage:
//
//	uschedsim machine                 # print the Table 1 machine model
//	uschedsim matmul [-quick]         # Figure 3 heatmaps
//	uschedsim cholesky [-quick]       # Table 2
//	uschedsim microservices [-quick]  # Figure 4
//	uschedsim lammps [-quick]         # Figure 5 (+ bandwidth trace)
//	uschedsim all -quick              # everything, small instances
//
// Full-size sweeps (-quick omitted) run the scaled paper configurations
// and can take many minutes of host time.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/workloads/md"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	quick := fs.Bool("quick", false, "run small, fast instances instead of the scaled paper sweep")
	_ = fs.Parse(os.Args[2:])

	switch cmd {
	case "machine":
		machineCmd()
	case "matmul":
		matmulCmd(*quick)
	case "cholesky":
		choleskyCmd(*quick)
	case "microservices":
		microservicesCmd(*quick)
	case "lammps":
		lammpsCmd(*quick)
	case "all":
		matmulCmd(*quick)
		choleskyCmd(*quick)
		microservicesCmd(*quick)
		lammpsCmd(*quick)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: uschedsim {machine|matmul|cholesky|microservices|lammps|all} [-quick]")
}

func timed(name string, fn func()) {
	start := time.Now()
	fmt.Printf("==== %s ====\n", name)
	fn()
	fmt.Printf("(host time: %v)\n\n", time.Since(start).Round(time.Millisecond))
}

func machineCmd() {
	cfg := hw.MareNostrum5()
	fmt.Printf("Machine: %s (paper Table 1)\n", cfg.Name)
	fmt.Printf("  Sockets:          %d\n", cfg.Topo.Sockets)
	fmt.Printf("  Cores/socket:     %d (total %d)\n", cfg.Topo.CoresPerSocket, cfg.Topo.Cores())
	fmt.Printf("  NUMA nodes:       %d\n", cfg.Topo.NUMANodes())
	fmt.Printf("  Socket bandwidth: %.0f GB/s\n", cfg.Mem.SocketBandwidth)
	fmt.Printf("  Core dgemm rate:  %.0f GFLOP/s\n", cfg.CoreGFLOPS)
	fmt.Printf("  Context switch:   %v\n", cfg.Costs.ContextSwitch)
	fmt.Printf("  Migration (socket): %v\n", cfg.Costs.MigrationCrossSocket)
}

func matmulCmd(quick bool) {
	cfg := experiments.DefaultFigure3()
	if quick {
		cfg = experiments.QuickFigure3()
	}
	timed("Figure 3: nested-runtime matmul heatmaps", func() {
		fmt.Print(experiments.RunFigure3(cfg).Render())
	})
}

func choleskyCmd(quick bool) {
	cfg := experiments.DefaultTable2()
	if quick {
		cfg = experiments.QuickTable2()
	}
	timed("Table 2: Cholesky runtime compositions", func() {
		fmt.Print(experiments.RunTable2(cfg).Render())
	})
}

func microservicesCmd(quick bool) {
	cfg := experiments.DefaultFigure4()
	if quick {
		cfg = experiments.QuickFigure4()
	}
	timed("Figure 4: AI microservices", func() {
		fmt.Print(experiments.RunFigure4(cfg).Render())
	})
}

func lammpsCmd(quick bool) {
	cfg := experiments.DefaultFigure5()
	if quick {
		cfg = experiments.QuickFigure5()
	}
	timed("Figure 5: LAMMPS + DeePMD-kit ensembles", func() {
		res := experiments.RunFigure5(cfg)
		fmt.Print(res.Render())
		fmt.Print(res.RenderBWTrace(md.SchedCoopNode, 30))
	})
}
