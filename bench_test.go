// Benchmarks regenerating every table and figure of the paper's
// evaluation section (one benchmark family per artefact), plus ablations
// of the simulator's main design choices. Each benchmark iteration
// runs a complete deterministic simulation; custom metrics report the
// simulated performance the paper plots (GFLOP/s, speedups, latency,
// Katom-step/s) alongside the usual host-side ns/op.
//
// Benches use shape-preserving scaled-down instances; `uschedsim` without
// -quick runs the full scaled sweeps.
package usched

import (
	"testing"

	"repro/internal/blas"
	"repro/internal/experiments"
	"repro/internal/glibc"
	"repro/internal/harness"
	"repro/internal/hw"
	"repro/internal/nosv"
	"repro/internal/rt/omp"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/usf"
	"repro/internal/workloads/cholesky"
	"repro/internal/workloads/inference"
	"repro/internal/workloads/matmul"
	"repro/internal/workloads/md"
)

// --- Figure 3: nested-runtime matmul heatmaps -------------------------

func matmulCell(mode stack.Mode, ts, ompThreads int) matmul.Config {
	return matmul.Config{
		Machine:    hw.DualSocket16(),
		Mode:       mode,
		N:          2048,
		TaskSize:   ts,
		OMPThreads: ompThreads,
		Reps:       1,
		Horizon:    10 * sim.Second,
		Seed:       3,
	}
}

func benchMatmul(b *testing.B, mode stack.Mode, ts, threads int) {
	var last matmul.Result
	for i := 0; i < b.N; i++ {
		last = matmul.Run(matmulCell(mode, ts, threads))
	}
	if !last.TimedOut {
		b.ReportMetric(last.GFLOPS, "sim-GFLOPS")
	}
	b.ReportMetric(float64(last.Preemptions), "sim-preemptions")
}

// Oversubscribed middle cell (the region the paper optimises).
func BenchmarkFigure3MatmulBaseline(b *testing.B) { benchMatmul(b, stack.ModeBaseline, 512, 8) }
func BenchmarkFigure3MatmulManual(b *testing.B)   { benchMatmul(b, stack.ModeManual, 512, 8) }
func BenchmarkFigure3MatmulCoop(b *testing.B)     { benchMatmul(b, stack.ModeCoop, 512, 8) }
func BenchmarkFigure3MatmulOriginal(b *testing.B) { benchMatmul(b, stack.ModeOriginal, 512, 8) }

// Underused corner (speedups ~1.0 expected).
func BenchmarkFigure3MatmulUnderusedBaseline(b *testing.B) {
	benchMatmul(b, stack.ModeBaseline, 1024, 2)
}
func BenchmarkFigure3MatmulUnderusedCoop(b *testing.B) { benchMatmul(b, stack.ModeCoop, 1024, 2) }

// --- Table 2: Cholesky runtime compositions ---------------------------

func choleskyCfg(mode stack.Mode, outer cholesky.OuterKind, inner cholesky.InnerKind, impl blas.Impl) cholesky.Config {
	return cholesky.Config{
		Machine:      hw.DualSocket16(),
		Mode:         mode,
		N:            4096,
		TileSize:     512,
		Outer:        outer,
		Inner:        inner,
		Impl:         impl,
		OuterThreads: 8,
		InnerThreads: 8,
		Horizon:      60 * sim.Second,
		Seed:         5,
	}
}

func benchCholesky(b *testing.B, mode stack.Mode, outer cholesky.OuterKind, inner cholesky.InnerKind, impl blas.Impl) {
	var last cholesky.Result
	for i := 0; i < b.N; i++ {
		last = cholesky.Run(choleskyCfg(mode, outer, inner, impl))
	}
	if !last.TimedOut {
		b.ReportMetric(last.GFLOPS, "sim-GFLOPS")
	}
}

func BenchmarkTable2CholeskyGnuLlvmOpbBaseline(b *testing.B) {
	benchCholesky(b, stack.ModeBaseline, cholesky.OuterGnu, cholesky.InnerLlvm, blas.OpenBLAS)
}
func BenchmarkTable2CholeskyGnuLlvmOpbCoop(b *testing.B) {
	benchCholesky(b, stack.ModeCoop, cholesky.OuterGnu, cholesky.InnerLlvm, blas.OpenBLAS)
}
func BenchmarkTable2CholeskyTbbLlvmOpbBaseline(b *testing.B) {
	benchCholesky(b, stack.ModeBaseline, cholesky.OuterTbb, cholesky.InnerLlvm, blas.OpenBLAS)
}
func BenchmarkTable2CholeskyTbbLlvmOpbCoop(b *testing.B) {
	benchCholesky(b, stack.ModeCoop, cholesky.OuterTbb, cholesky.InnerLlvm, blas.OpenBLAS)
}
func BenchmarkTable2CholeskyTbbGnuBlisBaseline(b *testing.B) {
	benchCholesky(b, stack.ModeBaseline, cholesky.OuterTbb, cholesky.InnerGnu, blas.BLIS)
}
func BenchmarkTable2CholeskyTbbGnuBlisCoop(b *testing.B) {
	benchCholesky(b, stack.ModeCoop, cholesky.OuterTbb, cholesky.InnerGnu, blas.BLIS)
}
func BenchmarkTable2CholeskyTbbPthBlisBaseline(b *testing.B) {
	benchCholesky(b, stack.ModeBaseline, cholesky.OuterTbb, cholesky.InnerPth, blas.BLIS)
}
func BenchmarkTable2CholeskyTbbPthBlisCoop(b *testing.B) {
	benchCholesky(b, stack.ModeCoop, cholesky.OuterTbb, cholesky.InnerPth, blas.BLIS)
}
func BenchmarkTable2CholeskyGnuPthBlisBaseline(b *testing.B) {
	benchCholesky(b, stack.ModeBaseline, cholesky.OuterGnu, cholesky.InnerPth, blas.BLIS)
}
func BenchmarkTable2CholeskyGnuPthBlisCoop(b *testing.B) {
	benchCholesky(b, stack.ModeCoop, cholesky.OuterGnu, cholesky.InnerPth, blas.BLIS)
}

// --- Figure 4: AI microservices ---------------------------------------

func microCfg(scheme inference.Scheme, rate float64) inference.Config {
	return inference.Config{
		Machine:  hw.DualSocket16(),
		Scheme:   scheme,
		Rate:     rate,
		Requests: 8,
		Batches:  4,
		Scale:    0.2,
		Models: []inference.Model{
			{Name: "llama", Work: 5770 * sim.Millisecond, SerialFrac: 0.06, Threads: 8, OptShare: 0.64},
			{Name: "gpt2", Work: 1010 * sim.Millisecond, SerialFrac: 0.06, Threads: 4, OptShare: 0.21},
			{Name: "roberta", Work: 676 * sim.Millisecond, SerialFrac: 0.06, Threads: 4, OptShare: 0.14},
		},
		Horizon: 4000 * sim.Second,
		Seed:    9,
	}
}

func benchMicro(b *testing.B, scheme inference.Scheme, rate float64) {
	var last inference.Result
	for i := 0; i < b.N; i++ {
		last = inference.Run(microCfg(scheme, rate))
	}
	if !last.TimedOut {
		b.ReportMetric(last.Stats.Mean.Seconds(), "sim-mean-latency-s")
		b.ReportMetric(last.Throughput, "sim-req/s")
	}
}

func BenchmarkFigure4MicroservicesBlNone(b *testing.B)    { benchMicro(b, inference.BlNone, 0.33) }
func BenchmarkFigure4MicroservicesBlEq(b *testing.B)      { benchMicro(b, inference.BlEq, 0.33) }
func BenchmarkFigure4MicroservicesBlOpt(b *testing.B)     { benchMicro(b, inference.BlOpt, 0.33) }
func BenchmarkFigure4MicroservicesBlNoneSeq(b *testing.B) { benchMicro(b, inference.BlNoneSeq, 0.33) }
func BenchmarkFigure4MicroservicesCoop(b *testing.B)      { benchMicro(b, inference.Coop, 0.33) }
func BenchmarkFigure4MicroservicesCoopHighRate(b *testing.B) {
	benchMicro(b, inference.Coop, 1.0)
}

// --- Figure 5: LAMMPS + DeePMD ensembles -------------------------------

func mdCfg(s md.Scenario) md.Config {
	cfg := md.Config{
		Machine:          hw.DualSocket16(),
		Scenario:         s,
		Ensembles:        2,
		RanksPerEnsemble: 8,
		OMPPerRank:       2,
		Steps:            5,
		Atoms:            4000,
		Regions:          14,
		PerAtomWork:      650 * sim.Microsecond,
		BWPerThread:      2.0,
		InitWork:         500 * sim.Millisecond,
		Horizon:          1200 * sim.Second,
		Seed:             11,
	}
	if s.Colocated() {
		cfg.RanksPerEnsemble = 4
	}
	return cfg
}

func benchMD(b *testing.B, s md.Scenario) {
	var last md.Result
	for i := 0; i < b.N; i++ {
		last = md.Run(mdCfg(s))
	}
	if !last.TimedOut {
		b.ReportMetric(last.Aggregate, "sim-Katom-step/s")
		b.ReportMetric(last.AvgBandwidth, "sim-GB/s")
	}
}

func BenchmarkFigure5MDExclusive(b *testing.B)         { benchMD(b, md.Exclusive) }
func BenchmarkFigure5MDColocationNode(b *testing.B)    { benchMD(b, md.ColocationNode) }
func BenchmarkFigure5MDColocationSocket(b *testing.B)  { benchMD(b, md.ColocationSocket) }
func BenchmarkFigure5MDCoexecutionNode(b *testing.B)   { benchMD(b, md.CoexecutionNode) }
func BenchmarkFigure5MDCoexecutionSocket(b *testing.B) { benchMD(b, md.CoexecutionSocket) }
func BenchmarkFigure5MDSchedCoopNode(b *testing.B)     { benchMD(b, md.SchedCoopNode) }
func BenchmarkFigure5MDSchedCoopSocket(b *testing.B)   { benchMD(b, md.SchedCoopSocket) }

// --- Harness: parallel sweep scaling -----------------------------------

// One iteration runs the full quick Table 2 job list (20 independent
// cells) through the bounded pool; comparing Par1 with ParN shows how
// the sweep scales with host cores.
func benchHarnessTable2(b *testing.B, par int) {
	cfg := experiments.QuickTable2()
	var results []harness.Result
	for i := 0; i < b.N; i++ {
		results = harness.Run(experiments.Table2Jobs(cfg), par)
	}
	rep := 0.0
	for _, r := range results {
		rep += r.Metric.SimSeconds
	}
	b.ReportMetric(rep, "sim-seconds-total")
}

func BenchmarkHarnessTable2Par1(b *testing.B) { benchHarnessTable2(b, 1) }
func BenchmarkHarnessTable2Par4(b *testing.B) { benchHarnessTable2(b, 4) }
func BenchmarkHarnessTable2ParMax(b *testing.B) {
	benchHarnessTable2(b, 0) // GOMAXPROCS
}

// --- Ablations ---------------------------------------------------------

// Thread cache on/off: the §5.4 claim that caching multiplies pth-backend
// performance.
func benchThreadCache(b *testing.B, disable bool) {
	var elapsed sim.Duration
	for i := 0; i < b.N; i++ {
		sys := stack.New(hw.DualSocket16(), 5)
		_, err := glibc.StartProcess(sys.K, "app", glibc.Options{
			USF:                true,
			DisableThreadCache: disable,
			Policy:             func() nosv.Policy { return usf.NewSchedCoop(usf.DefaultCoopConfig()) },
		}, func(l *glibc.Lib) {
			bl := blas.New(l, blas.Config{
				Impl: blas.BLIS, Backend: blas.BackendPthread,
				Threads: 8, YieldInBarrier: true,
			})
			start := l.K.Eng.Now()
			for j := 0; j < 20; j++ {
				bl.Dgemm(512, 512, 512)
			}
			elapsed = l.K.Eng.Now().Sub(start)
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Run(0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(elapsed.Seconds()*1000, "sim-ms")
}

func BenchmarkAblationThreadCacheOn(b *testing.B)  { benchThreadCache(b, false) }
func BenchmarkAblationThreadCacheOff(b *testing.B) { benchThreadCache(b, true) }

// Barrier yield on/off: the Fig. 3d Original-vs-Baseline distinction.
func BenchmarkAblationBarrierYieldOn(b *testing.B)  { benchMatmul(b, stack.ModeBaseline, 512, 8) }
func BenchmarkAblationBarrierYieldOff(b *testing.B) { benchMatmul(b, stack.ModeOriginal, 512, 8) }

// nOS-V process quantum sweep (default 20ms, §4.1): two competing coop
// processes share the machine; the quantum governs how cores rotate
// between them at scheduling points.
func benchQuantum(b *testing.B, q sim.Duration) {
	var makespan sim.Time
	for i := 0; i < b.N; i++ {
		sys := stack.New(hw.DualSocket16(), 5)
		sys.CoopConfig = usf.CoopConfig{ProcessQuantum: q}
		for p := 0; p < 2; p++ {
			_, err := sys.Start("app", stack.ModeCoop, glibc.Options{}, func(l *glibc.Lib) {
				var pts []*glibc.Pthread
				for t := 0; t < 24; t++ {
					pts = append(pts, l.PthreadCreate("w", func() {
						for j := 0; j < 20; j++ {
							l.Compute(1 * sim.Millisecond)
							l.SchedYield()
						}
					}))
				}
				for _, pt := range pts {
					l.PthreadJoin(pt)
				}
				if now := l.K.Eng.Now(); now > makespan {
					makespan = now
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		if _, err := sys.Run(0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(makespan.Seconds()*1000, "sim-makespan-ms")
}

func BenchmarkAblationQuantum5ms(b *testing.B)  { benchQuantum(b, 5*sim.Millisecond) }
func BenchmarkAblationQuantum20ms(b *testing.B) { benchQuantum(b, 20*sim.Millisecond) }
func BenchmarkAblationQuantum80ms(b *testing.B) { benchQuantum(b, 80*sim.Millisecond) }

// Affinity fallback levels on/off (§4.1 core→NUMA→any search).
func benchAffinity(b *testing.B, disable bool) {
	var last matmul.Result
	for i := 0; i < b.N; i++ {
		cfg := matmulCell(stack.ModeCoop, 512, 8)
		cfg.Coop = &usf.CoopConfig{
			ProcessQuantum:  20 * sim.Millisecond,
			DisableAffinity: disable,
		}
		last = matmul.Run(cfg)
	}
	if !last.TimedOut {
		b.ReportMetric(last.GFLOPS, "sim-GFLOPS")
		b.ReportMetric(float64(last.Migrations), "sim-migrations")
	}
}

func BenchmarkAblationAffinityOn(b *testing.B)  { benchAffinity(b, false) }
func BenchmarkAblationAffinityOff(b *testing.B) { benchAffinity(b, true) }

// OMP wait policy under oversubscription (§5.2).
func benchWaitPolicy(b *testing.B, wp omp.WaitPolicy) {
	var elapsed sim.Duration
	for i := 0; i < b.N; i++ {
		sys := stack.New(hw.DualSocket16(), 7)
		_, err := sys.Start("app", stack.ModeBaseline, glibc.Options{}, func(l *glibc.Lib) {
			rt := omp.New(l, omp.Config{NumThreads: 8, WaitPolicy: wp, SpinBeforeBlock: 100 * sim.Microsecond})
			bl := blas.New(l, blas.Config{
				Impl: blas.OpenBLAS, Backend: blas.BackendOpenMP,
				Threads: 8, OMP: rt, YieldInBarrier: true,
			})
			start := l.K.Eng.Now()
			// Two concurrent 8-thread teams on 16 cores, with gaps
			// where the wait policy matters.
			var pts []*glibc.Pthread
			for t := 0; t < 4; t++ {
				pts = append(pts, l.PthreadCreate("driver", func() {
					for j := 0; j < 6; j++ {
						bl.Dgemm(512, 512, 512)
						l.Sleep(1 * sim.Millisecond)
					}
				}))
			}
			for _, pt := range pts {
				l.PthreadJoin(pt)
			}
			elapsed = l.K.Eng.Now().Sub(start)
			rt.Shutdown()
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Run(0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(elapsed.Seconds()*1000, "sim-ms")
}

func BenchmarkAblationWaitPolicyPassive(b *testing.B) { benchWaitPolicy(b, omp.WaitPassive) }
func BenchmarkAblationWaitPolicyHybrid(b *testing.B)  { benchWaitPolicy(b, omp.WaitHybrid) }
func BenchmarkAblationWaitPolicyActive(b *testing.B)  { benchWaitPolicy(b, omp.WaitActive) }

// TASIO (§7 future work): blocking I/O with and without task-aware
// interception under SCHED_COOP.
func benchTASIO(b *testing.B, tasio bool) {
	var makespan sim.Time
	for i := 0; i < b.N; i++ {
		sys := stack.New(hw.DualSocket16(), 3)
		_, err := sys.Start("app", stack.ModeCoop, glibc.Options{TaskAwareIO: tasio}, func(l *glibc.Lib) {
			var pts []*glibc.Pthread
			for t := 0; t < 32; t++ {
				pts = append(pts, l.PthreadCreate("w", func() {
					for j := 0; j < 6; j++ {
						l.Compute(1 * sim.Millisecond)
						l.BlockingIO(1 * sim.Millisecond)
					}
				}))
			}
			for _, pt := range pts {
				l.PthreadJoin(pt)
			}
			makespan = l.K.Eng.Now()
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Run(0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(makespan.Seconds()*1000, "sim-makespan-ms")
}

func BenchmarkAblationTASIOOff(b *testing.B) { benchTASIO(b, false) }
func BenchmarkAblationTASIOOn(b *testing.B)  { benchTASIO(b, true) }

// --- schedcmp: kernel-scheduler ablation ------------------------------

// benchSchedCmpMatmul runs the oversubscribed matmul cell under one
// kernel scheduling class (Baseline stack, no USF).
func benchSchedCmpMatmul(b *testing.B, class string) {
	cfg := matmulCell(stack.ModeBaseline, 512, 8)
	cfg.KernelClass = class
	var last matmul.Result
	for i := 0; i < b.N; i++ {
		last = matmul.Run(cfg)
	}
	if !last.TimedOut {
		b.ReportMetric(last.GFLOPS, "sim-GFLOPS")
	}
	b.ReportMetric(float64(last.Preemptions), "sim-preemptions")
}

func BenchmarkSchedCmpMatmulFair(b *testing.B)  { benchSchedCmpMatmul(b, "fair") }
func BenchmarkSchedCmpMatmulRR(b *testing.B)    { benchSchedCmpMatmul(b, "rr") }
func BenchmarkSchedCmpMatmulFIFO(b *testing.B)  { benchSchedCmpMatmul(b, "fifo") }
func BenchmarkSchedCmpMatmulBatch(b *testing.B) { benchSchedCmpMatmul(b, "batch") }

// --- tailload: tail latency under load --------------------------------

// benchTailLoad runs one (shape, scheme, load) cell of the tailload
// sweep and reports the streaming meter's tail metrics.
func benchTailLoad(b *testing.B, shapeName, schemeName string, rate float64) {
	cfg := experiments.QuickTailLoad()
	var shape experiments.TailShape
	for _, s := range experiments.TailShapes() {
		if s.Name == shapeName {
			shape = s
		}
	}
	if shape.New == nil {
		b.Fatalf("unknown arrival shape %q", shapeName)
	}
	var scheme experiments.TailScheme
	for _, s := range experiments.TailSchemes() {
		if s.Name == schemeName {
			scheme = s
		}
	}
	if scheme.Name == "" {
		b.Fatalf("unknown scheme %q", schemeName)
	}
	var last inference.Result
	for i := 0; i < b.N; i++ {
		last = inference.Run(inference.Config{
			Machine:     cfg.Machine,
			Scheme:      scheme.Scheme,
			KernelClass: scheme.KernelClass,
			Rate:        rate,
			Requests:    cfg.Requests,
			Batches:     cfg.Batches,
			Scale:       cfg.Scale,
			Models:      cfg.Models,
			Horizon:     cfg.Horizon,
			Seed:        cfg.Seed,
			Arrivals:    shape.New(rate, cfg.Scale, cfg.Requests),
			SLO:         cfg.SLO,
		})
	}
	if !last.TimedOut {
		b.ReportMetric(last.Tail.P99.Seconds()*1000, "sim-p99-ms")
		b.ReportMetric(last.Tail.ViolationFrac*100, "sim-SLO-viol-pct")
	}
}

func BenchmarkTailLoadPoissonCoop(b *testing.B) { benchTailLoad(b, "poisson", "sched_coop", 3.0) }
func BenchmarkTailLoadPoissonFair(b *testing.B) { benchTailLoad(b, "poisson", "fair", 3.0) }
func BenchmarkTailLoadBurstyCoop(b *testing.B)  { benchTailLoad(b, "bursty", "sched_coop", 3.0) }
func BenchmarkTailLoadClosedCoop(b *testing.B)  { benchTailLoad(b, "closed", "sched_coop", 3.0) }
func BenchmarkTailLoadReplayCoop(b *testing.B)  { benchTailLoad(b, "replay", "sched_coop", 3.0) }
