# Developer entry points. The benchmarks regenerate paper artefacts, so
# one iteration (-benchtime=1x) per family is a complete, deterministic
# simulation; raise BENCHTIME for statistically stable ns/op.
SHELL := /bin/bash
BENCHTIME ?= 1x
# The internal/sim microbenchmarks are nanosecond-scale and batched, so
# one iteration only measures pool warm-up; they get a real iteration
# count while the artefact benchmarks stay at one full simulation each.
SIM_BENCHTIME ?= 100000x
BENCH     ?= .
BENCH_OUT ?= BENCH_PR5.json

.PHONY: test race bench bench-json quick

test:
	go build ./... && go test ./...

race:
	go test -race ./internal/load ./internal/harness ./internal/sim ./internal/kernel ./internal/cluster

quick:
	go run ./cmd/uschedsim all -quick

# bench runs every benchmark family once (plus the engine
# microbenchmarks at a steady-state iteration count) and keeps the raw
# text.
bench:
	set -o pipefail; \
	go test -bench=$(BENCH) -benchtime=$(BENCHTIME) -benchmem -run='^$$' \
		$$(go list ./... | grep -v '/internal/sim$$') | tee bench.txt && \
	go test -bench=$(BENCH) -benchtime=$(SIM_BENCHTIME) -benchmem -run='^$$' \
		./internal/sim | tee -a bench.txt

# bench-json runs the tier-1 benchmarks and writes the machine-readable
# perf trajectory (ns/op + allocs/op + sim metrics per benchmark). CI
# uploads the result as an artifact so PRs can be diffed for perf
# regressions.
bench-json: bench
	go run ./cmd/benchjson -in bench.txt -out $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT)"
