# Developer entry points. The benchmarks regenerate paper artefacts, so
# one iteration (-benchtime=1x) per family is a complete, deterministic
# simulation; raise BENCHTIME for statistically stable ns/op.
SHELL := /bin/bash
BENCHTIME ?= 1x
# The internal/sim and internal/sim/pdes microbenchmarks are
# nanosecond-scale and batched, so one iteration only measures pool
# warm-up; they get a real iteration count while the artefact benchmarks
# stay at one full simulation each.
SIM_BENCHTIME ?= 100000x
BENCH     ?= .
BENCH_OUT ?= BENCH_PR10.json

.PHONY: test race lint bench bench-json quick

test:
	go build ./... && go test ./...

# lint runs simlint, the determinism static-analysis suite
# (internal/lint): maprange, wallclock, globalrand, goleak over the
# whole tree. CI's lint job runs this plus gofmt -l and go vet.
lint:
	go run ./cmd/simlint ./...

# race runs the whole tree under the race detector except the packages
# that are too slow under its ~10x slowdown (times on the CI-class
# container):
#   repro/cmd/uschedsim         ~6.1 min  end-to-end scenario smoke runs
#   repro/internal/experiments  ~3.6 min  full figure/table sweep drivers
#   repro/internal/workloads/md ~2.1 min  MD ensemble integration runs
#   repro/internal/lint         ~1.0 min  single-threaded static analysis;
#                                         TestTreeIsClean type-checks the module
# Their logic still runs race-free in `make test`, and the scenario
# machinery they drive is covered here through its own packages
# (sim, kernel, harness, load, cluster, workloads/{matmul,inference,...}).
RACE_EXCLUDE := repro/cmd/uschedsim repro/internal/experiments repro/internal/workloads/md repro/internal/lint
race:
	go test -race $$(go list ./... | grep -Fxv $(foreach p,$(RACE_EXCLUDE),-e $(p)))

quick:
	go run ./cmd/uschedsim all -quick

# bench runs every benchmark family once (plus the engine
# microbenchmarks at a steady-state iteration count) and keeps the raw
# text.
bench:
	set -o pipefail; \
	go test -bench=$(BENCH) -benchtime=$(BENCHTIME) -benchmem -run='^$$' \
		$$(go list ./... | grep -v -e '/internal/sim$$' -e '/internal/sim/pdes$$') | tee bench.txt && \
	go test -bench=$(BENCH) -benchtime=$(SIM_BENCHTIME) -benchmem -run='^$$' \
		./internal/sim ./internal/sim/pdes | tee -a bench.txt

# bench-json runs the tier-1 benchmarks and writes the machine-readable
# perf trajectory (ns/op + allocs/op + sim metrics per benchmark). CI
# uploads the result as an artifact so PRs can be diffed for perf
# regressions.
bench-json: bench
	go run ./cmd/benchjson -in bench.txt -out $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT)"
