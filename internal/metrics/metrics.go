// Package metrics provides the small statistics toolkit the experiment
// drivers share: time series (bandwidth traces), latency summaries, and
// fixed-width table rendering for paper-style output.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Series is a step-function time series: the value holds from each sample
// until the next. Used for the Fig. 5b bandwidth traces.
type Series struct {
	T []sim.Time
	V []float64
}

// Add appends a sample (times must be nondecreasing).
func (s *Series) Add(t sim.Time, v float64) {
	if n := len(s.T); n > 0 && s.T[n-1] == t {
		s.V[n-1] = v
		return
	}
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the sample count.
func (s *Series) Len() int { return len(s.T) }

// Mean integrates the step function over [from, to] and divides by the
// span.
func (s *Series) Mean(from, to sim.Time) float64 {
	if to <= from || len(s.T) == 0 {
		return 0
	}
	var area float64
	cur := 0.0
	last := from
	for i, t := range s.T {
		if t >= to {
			break
		}
		if t <= from {
			cur = s.V[i]
			continue
		}
		area += cur * float64(t-last)
		cur = s.V[i]
		last = t
	}
	area += cur * float64(to-last)
	return area / float64(to-from)
}

// Max returns the maximum sample value (0 for an empty series).
func (s *Series) Max() float64 {
	m := 0.0
	for _, v := range s.V {
		if v > m {
			m = v
		}
	}
	return m
}

// Resample returns n evenly spaced (time, value) points across [from, to].
func (s *Series) Resample(from, to sim.Time, n int) ([]sim.Time, []float64) {
	ts := make([]sim.Time, n)
	vs := make([]float64, n)
	idx := 0
	cur := 0.0
	for i := 0; i < n; i++ {
		t := from + sim.Time(int64(to-from)*int64(i)/int64(n))
		for idx < len(s.T) && s.T[idx] <= t {
			cur = s.V[idx]
			idx++
		}
		ts[i] = t
		vs[i] = cur
	}
	return ts, vs
}

// LatencyStats summarises a set of durations.
type LatencyStats struct {
	N              int
	Mean, P50, P99 sim.Duration
	Min, Max       sim.Duration
}

// Summarize computes latency statistics.
func Summarize(ds []sim.Duration) LatencyStats {
	if len(ds) == 0 {
		return LatencyStats{}
	}
	sorted := make([]sim.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum sim.Duration
	for _, d := range sorted {
		sum += d
	}
	pick := func(q float64) sim.Duration {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return LatencyStats{
		N:    len(sorted),
		Mean: sum / sim.Duration(len(sorted)),
		P50:  pick(0.5),
		P99:  pick(0.99),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
	}
}

// Table renders rows of columns with right-aligned numeric formatting.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	all := append([][]string{t.Header}, t.Rows...)
	width := make([]int, 0)
	for _, row := range all {
		for i, c := range row {
			for len(width) <= i {
				width = append(width, 0)
			}
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range width {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}
