// Package metrics provides the small statistics toolkit the experiment
// drivers share: time series (bandwidth traces), latency summaries, and
// fixed-width table rendering for paper-style output.
package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Series is a step-function time series: the value holds from each sample
// until the next. Used for the Fig. 5b bandwidth traces.
type Series struct {
	T []sim.Time
	V []float64
}

// Add appends a sample (times must be nondecreasing).
func (s *Series) Add(t sim.Time, v float64) {
	if n := len(s.T); n > 0 && s.T[n-1] == t {
		s.V[n-1] = v
		return
	}
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the sample count.
func (s *Series) Len() int { return len(s.T) }

// Mean integrates the step function over [from, to] and divides by the
// span.
func (s *Series) Mean(from, to sim.Time) float64 {
	if to <= from || len(s.T) == 0 {
		return 0
	}
	var area float64
	cur := 0.0
	last := from
	for i, t := range s.T {
		if t >= to {
			break
		}
		if t <= from {
			cur = s.V[i]
			continue
		}
		area += cur * float64(t-last)
		cur = s.V[i]
		last = t
	}
	area += cur * float64(to-last)
	return area / float64(to-from)
}

// Max returns the maximum sample value (0 for an empty series).
func (s *Series) Max() float64 {
	m := 0.0
	for _, v := range s.V {
		if v > m {
			m = v
		}
	}
	return m
}

// Resample returns n evenly spaced (time, value) points across [from, to].
func (s *Series) Resample(from, to sim.Time, n int) ([]sim.Time, []float64) {
	ts := make([]sim.Time, n)
	vs := make([]float64, n)
	idx := 0
	cur := 0.0
	for i := 0; i < n; i++ {
		t := from + sim.Time(int64(to-from)*int64(i)/int64(n))
		for idx < len(s.T) && s.T[idx] <= t {
			cur = s.V[idx]
			idx++
		}
		ts[i] = t
		vs[i] = cur
	}
	return ts, vs
}

// LatencyStats summarises a set of durations.
type LatencyStats struct {
	N              int
	Mean, P50, P99 sim.Duration
	Min, Max       sim.Duration
}

// Summarize computes latency statistics.
func Summarize(ds []sim.Duration) LatencyStats {
	if len(ds) == 0 {
		return LatencyStats{}
	}
	sorted := make([]sim.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum sim.Duration
	for _, d := range sorted {
		sum += d
	}
	pick := func(q float64) sim.Duration {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return LatencyStats{
		N:    len(sorted),
		Mean: sum / sim.Duration(len(sorted)),
		P50:  pick(0.5),
		P99:  pick(0.99),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
	}
}

// CellMetric records one experiment cell's cost: the simulated time its
// engine covered and the host time spent computing it. The harness
// emits one row per cell so sweeps can be compared across changes.
type CellMetric struct {
	// Scenario is the owning experiment's registry name.
	Scenario string `json:"scenario,omitempty"`
	// Cell names the cell within its scenario.
	Cell string `json:"cell"`
	// SimSeconds is the simulated time the cell's engine advanced.
	SimSeconds float64 `json:"sim_seconds"`
	// HostSeconds is the cell's host wall-clock residency: time from
	// start to finish of its Run, including time descheduled while
	// other cells share the host's cores.
	HostSeconds float64 `json:"host_seconds"`
	// SimPerHost is SimSeconds/HostSeconds — simulated seconds per wall
	// second, the simulator's headline speed metric. Like HostSeconds
	// it is host timing, so compare it across changes only at equal
	// -par.
	SimPerHost float64 `json:"sim_per_host,omitempty"`
	// Events counts discrete events the cell's engine(s) fired
	// (sim.Engine.Processed, summed across shards). Sharded cells fire
	// a few extra coordination events (stop messages), so compare
	// across changes at equal -shards.
	Events int64 `json:"events,omitempty"`
	// Windows and MeanWindowMs profile sharded cells: the number of
	// conservative-parallel lockstep windows run and their mean width
	// in simulated milliseconds. Zero for unsharded cells.
	Windows      int64   `json:"windows,omitempty"`
	MeanWindowMs float64 `json:"mean_window_ms,omitempty"`
	// TimedOut marks cells that hit their simulation horizon.
	TimedOut bool `json:"timed_out,omitempty"`
}

// WriteCellCSV writes cells as CSV with a header row.
func WriteCellCSV(w io.Writer, cells []CellMetric) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"scenario", "cell", "sim_seconds", "host_seconds", "sim_per_host", "events", "windows", "mean_window_ms", "timed_out"}); err != nil {
		return err
	}
	for _, c := range cells {
		rec := []string{
			c.Scenario,
			c.Cell,
			strconv.FormatFloat(c.SimSeconds, 'g', -1, 64),
			strconv.FormatFloat(c.HostSeconds, 'g', -1, 64),
			strconv.FormatFloat(c.SimPerHost, 'g', -1, 64),
			strconv.FormatInt(c.Events, 10),
			strconv.FormatInt(c.Windows, 10),
			strconv.FormatFloat(c.MeanWindowMs, 'g', -1, 64),
			strconv.FormatBool(c.TimedOut),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table renders rows of columns with right-aligned numeric formatting.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	all := append([][]string{t.Header}, t.Rows...)
	width := make([]int, 0)
	for _, row := range all {
		for i, c := range row {
			for len(width) <= i {
				width = append(width, 0)
			}
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range width {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}
