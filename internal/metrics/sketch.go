package metrics

import (
	"math/bits"

	"repro/internal/sim"
)

// Sketch bucket geometry: values below 2^(subBits+1) land in exact
// unit-wide buckets; above that, each power-of-two octave is split into
// 2^subBits log-spaced buckets, so a bucket's relative width is at most
// 2^-subBits (≈0.78%) and its midpoint is within ≈0.4% of any member.
const (
	sketchSubBits = 7
	sketchSub     = 1 << sketchSubBits // sub-buckets per octave
	// sketchBuckets covers the full non-negative int64 range: the
	// 2*sketchSub linear buckets plus (63 - sketchSubBits - 1) octaves.
	sketchBuckets = 2*sketchSub + (62-sketchSubBits)*sketchSub
)

// Sketch is a fixed-memory streaming quantile estimator for durations:
// an HDR-histogram-style log-bucketed histogram. Adding a sample is
// O(1), memory is ~57 KiB regardless of sample count, and any
// quantile is recovered within 1% relative error — the tool the load
// subsystem uses to report p99/p99.9 without retaining every latency.
//
// The zero value is ready to use.
type Sketch struct {
	counts [sketchBuckets]int64
	n      int64
	sum    int64
	min    int64
	max    int64
}

// sketchIndex maps a non-negative value to its bucket.
func sketchIndex(v int64) int {
	if v < 2*sketchSub {
		return int(v)
	}
	// 2^(h-1) <= v < 2^h, h >= sketchSubBits+2.
	h := bits.Len64(uint64(v))
	top := h - (sketchSubBits + 1)
	mant := int(v >> uint(top)) // in [sketchSub, 2*sketchSub)
	return 2*sketchSub + (top-1)*sketchSub + (mant - sketchSub)
}

// sketchMid returns the representative (midpoint) value of a bucket.
func sketchMid(idx int) int64 {
	if idx < 2*sketchSub {
		return int64(idx)
	}
	rel := idx - 2*sketchSub
	top := rel/sketchSub + 1
	mant := int64(rel%sketchSub + sketchSub)
	lo := mant << uint(top)
	return lo + int64(1)<<uint(top-1)
}

// Add records one duration. Negative durations clamp to zero.
func (s *Sketch) Add(d sim.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	s.counts[sketchIndex(v)]++
	s.sum += v
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.n++
}

// N returns the number of recorded samples.
func (s *Sketch) N() int64 { return s.n }

// Mean returns the exact mean of the recorded samples (0 when empty).
func (s *Sketch) Mean() sim.Duration {
	if s.n == 0 {
		return 0
	}
	return sim.Duration(s.sum / s.n)
}

// Min returns the exact minimum sample (0 when empty).
func (s *Sketch) Min() sim.Duration { return sim.Duration(s.min) }

// Max returns the exact maximum sample (0 when empty).
func (s *Sketch) Max() sim.Duration { return sim.Duration(s.max) }

// Quantile returns the q-quantile (q in [0, 1]) of the recorded
// samples, using the same rank convention as Summarize: the value at
// sorted index int(q * (n-1)). The result is the matched bucket's
// midpoint clamped into [Min, Max], so it is within 1% (relative) of
// the exact order statistic. Returns 0 when empty.
func (s *Sketch) Quantile(q float64) sim.Duration {
	if s.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.n-1))
	var cum int64
	for i := range s.counts {
		cum += s.counts[i]
		if cum > rank {
			v := sketchMid(i)
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return sim.Duration(v)
		}
	}
	return sim.Duration(s.max)
}

// QuantileSince returns the q-quantile of the samples recorded after
// prev was copied from this sketch — the windowed counterpart of
// Quantile, computed by diffing bucket counts. prev must be an earlier
// snapshot of the same sketch (same sample stream); the result carries
// the same 1% relative-error bound, clamped into the lifetime [Min,
// Max] (the window's own extrema are not retained). Returns 0 when the
// window is empty.
func (s *Sketch) QuantileSince(prev *Sketch, q float64) sim.Duration {
	n := s.n - prev.n
	if n <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(n-1))
	var cum int64
	for i := range s.counts {
		cum += s.counts[i] - prev.counts[i]
		if cum > rank {
			v := sketchMid(i)
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return sim.Duration(v)
		}
	}
	return sim.Duration(s.max)
}

// Merge adds every sample recorded in o into s.
func (s *Sketch) Merge(o *Sketch) {
	if o.n == 0 {
		return
	}
	for i := range o.counts {
		s.counts[i] += o.counts[i]
	}
	if s.n == 0 || o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n += o.n
	s.sum += o.sum
}
