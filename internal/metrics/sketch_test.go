package metrics

import (
	"math"
	"sort"
	"testing"

	"repro/internal/sim"
)

// exactQuantile mirrors Summarize's rank convention on a sorted copy.
func exactQuantile(ds []sim.Duration, q float64) sim.Duration {
	sorted := make([]sim.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[int(q*float64(len(sorted)-1))]
}

func TestSketchEmptyAndSingle(t *testing.T) {
	var s Sketch
	if s.N() != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Max() != 0 {
		t.Fatalf("empty sketch not zero: %+v", s)
	}
	s.Add(42 * sim.Millisecond)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 42*sim.Millisecond {
			t.Fatalf("single-sample q%.2f = %v", q, got)
		}
	}
	if s.Mean() != 42*sim.Millisecond || s.Min() != 42*sim.Millisecond {
		t.Fatalf("single-sample mean/min wrong: %v/%v", s.Mean(), s.Min())
	}
}

func TestSketchSmallExactRegion(t *testing.T) {
	// Values below 256ns land in exact unit buckets.
	var s Sketch
	for v := int64(0); v < 256; v++ {
		s.Add(sim.Duration(v))
	}
	if got := s.Quantile(0.5); got != 127 && got != 128 {
		t.Fatalf("median of 0..255 = %v", got)
	}
	if s.Min() != 0 || s.Max() != 255 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

// TestSketchWithin1PercentOf10kReference is the acceptance check: on a
// 10k-sample reference stream, the sketch's p50 and p99 match the
// exact-sorted percentiles within 1%.
func TestSketchWithin1PercentOf10kReference(t *testing.T) {
	rng := sim.NewRand(12345)
	var s Sketch
	ds := make([]sim.Duration, 0, 10000)
	for i := 0; i < 10000; i++ {
		// Log-normal-ish latencies spanning several orders of magnitude.
		d := sim.Duration(math.Exp(rng.NormFloat64()) * 50e6) // ~50ms scale
		ds = append(ds, d)
		s.Add(d)
	}
	if s.N() != 10000 {
		t.Fatalf("N = %d", s.N())
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
		got := float64(s.Quantile(q))
		want := float64(exactQuantile(ds, q))
		if relErr := math.Abs(got-want) / want; relErr > 0.01 {
			t.Fatalf("q%g: sketch %v vs exact %v (rel err %.4f > 1%%)",
				q, sim.Duration(got), sim.Duration(want), relErr)
		}
	}
	// The exact aggregates must match to the nanosecond.
	var sum sim.Duration
	for _, d := range ds {
		sum += d
	}
	if s.Mean() != sum/10000 {
		t.Fatalf("mean %v != exact %v", s.Mean(), sum/10000)
	}
	if s.Max() != exactQuantile(ds, 1) || s.Min() != exactQuantile(ds, 0) {
		t.Fatalf("min/max not exact: %v/%v", s.Min(), s.Max())
	}
}

func TestSketchQuantileMonotone(t *testing.T) {
	rng := sim.NewRand(7)
	var s Sketch
	for i := 0; i < 1000; i++ {
		s.Add(sim.Duration(rng.Intn(1_000_000_000)))
	}
	prev := sim.Duration(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%.2f: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestSketchNegativeClampsToZero(t *testing.T) {
	var s Sketch
	s.Add(-5 * sim.Second)
	if s.Quantile(0.5) != 0 || s.Min() != 0 {
		t.Fatalf("negative sample not clamped: %+v", s.Quantile(0.5))
	}
}

func TestSketchMerge(t *testing.T) {
	var a, b, all Sketch
	rng := sim.NewRand(99)
	for i := 0; i < 500; i++ {
		d := sim.Duration(rng.Intn(1_000_000))
		all.Add(d)
		if i%2 == 0 {
			a.Add(d)
		} else {
			b.Add(d)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() || a.Mean() != all.Mean() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merge aggregates differ: %v vs %v", a, all)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("merge q%g differs: %v vs %v", q, a.Quantile(q), all.Quantile(q))
		}
	}
	// Merging an empty sketch is a no-op.
	var empty Sketch
	before := a.Quantile(0.5)
	a.Merge(&empty)
	if a.Quantile(0.5) != before || a.N() != all.N() {
		t.Fatal("merging empty sketch changed state")
	}
}

func TestSketchBucketGeometry(t *testing.T) {
	// Every representative value must land back in its own bucket, and
	// bucket boundaries must be monotone.
	for idx := 0; idx < sketchBuckets; idx++ {
		mid := sketchMid(idx)
		if mid < 0 { // past int64 range at the very top octave
			break
		}
		if got := sketchIndex(mid); got != idx {
			t.Fatalf("bucket %d: midpoint %d maps to bucket %d", idx, mid, got)
		}
	}
}

func TestSketchMergeWithinErrorBoundVsExact(t *testing.T) {
	// The cluster layer merges per-node sketches to report fleet-wide
	// percentiles: quantiles of a merged sketch must stay within the
	// sketch's 1% relative error bound of the exact order statistics of
	// the pooled samples. Shards are deliberately skewed (disjoint
	// latency regimes per shard, log-uniform spread) so merging actually
	// crosses bucket ranges.
	rng := sim.NewRand(7)
	const shards = 4
	var parts [shards]Sketch
	var all []sim.Duration
	for i := 0; i < 20000; i++ {
		shard := i % shards
		// Shard k lives around 10^k milliseconds, log-uniformly jittered.
		base := math.Pow(10, float64(shard)) * float64(sim.Millisecond)
		d := sim.Duration(base * math.Pow(4, rng.Float64()*2-1))
		parts[shard].Add(d)
		all = append(all, d)
	}
	var merged Sketch
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged.N() != int64(len(all)) {
		t.Fatalf("merged N = %d, want %d", merged.N(), len(all))
	}
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999} {
		got := float64(merged.Quantile(q))
		want := float64(exactQuantile(all, q))
		if relErr := math.Abs(got-want) / want; relErr > 0.01 {
			t.Fatalf("merged q%g = %v, exact %v: relative error %.4f > 1%%",
				q, sim.Duration(got), sim.Duration(want), relErr)
		}
	}
}

func TestSketchQuantileSince(t *testing.T) {
	var s Sketch
	// First window: 100 values around 10ms.
	for i := 0; i < 100; i++ {
		s.Add(10*sim.Millisecond + sim.Duration(i)*sim.Microsecond)
	}
	prev := s // value copy: the window boundary snapshot
	// Second window: 100 values around 500ms.
	for i := 0; i < 100; i++ {
		s.Add(500*sim.Millisecond + sim.Duration(i)*sim.Microsecond)
	}
	// The cumulative median straddles both populations, but the
	// windowed median must see only the second window.
	if got := s.QuantileSince(&prev, 0.5); got < 400*sim.Millisecond {
		t.Fatalf("windowed p50 = %v, want ~500ms", got)
	}
	if got := s.QuantileSince(&prev, 0.99); got < 400*sim.Millisecond {
		t.Fatalf("windowed p99 = %v, want ~500ms", got)
	}
	// An empty window (no completions since prev) reports zero.
	now := s
	if got := s.QuantileSince(&now, 0.99); got != 0 {
		t.Fatalf("empty-window quantile = %v", got)
	}
	// Out-of-range q clamps instead of indexing out of bounds.
	if got := s.QuantileSince(&prev, 1.5); got == 0 {
		t.Fatal("q>1 returned zero")
	}
	if got := s.QuantileSince(&prev, -1); got == 0 {
		t.Fatal("q<0 returned zero")
	}
	// Diffing against the zero sketch is the cumulative quantile.
	var zero Sketch
	if got, want := s.QuantileSince(&zero, 0.5), s.Quantile(0.5); got != want {
		t.Fatalf("since-zero p50 = %v, cumulative = %v", got, want)
	}
}
