package metrics

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestSeriesMeanStepFunction(t *testing.T) {
	var s Series
	s.Add(0, 10)
	s.Add(100, 20)
	s.Add(200, 0)
	// mean over [0,200): 10*100 + 20*100 over 200 = 15
	if m := s.Mean(0, 200); m != 15 {
		t.Fatalf("Mean = %v, want 15", m)
	}
	// mean over [50,150): 10*50 + 20*50 over 100 = 15
	if m := s.Mean(50, 150); m != 15 {
		t.Fatalf("Mean = %v, want 15", m)
	}
	// after the last sample the value holds
	if m := s.Mean(200, 300); m != 0 {
		t.Fatalf("Mean = %v, want 0", m)
	}
}

func TestSeriesDuplicateTimeOverwrites(t *testing.T) {
	var s Series
	s.Add(5, 1)
	s.Add(5, 2)
	if s.Len() != 1 || s.V[0] != 2 {
		t.Fatalf("duplicate-time sample not overwritten: %+v", s)
	}
}

func TestSeriesMax(t *testing.T) {
	var s Series
	if s.Max() != 0 {
		t.Fatal("empty Max != 0")
	}
	s.Add(0, 3)
	s.Add(1, 7)
	s.Add(2, 5)
	if s.Max() != 7 {
		t.Fatalf("Max = %v", s.Max())
	}
}

func TestSeriesResample(t *testing.T) {
	var s Series
	s.Add(0, 1)
	s.Add(50, 2)
	ts, vs := s.Resample(0, 100, 4)
	if len(ts) != 4 || len(vs) != 4 {
		t.Fatal("wrong resample size")
	}
	if vs[0] != 1 || vs[3] != 2 {
		t.Fatalf("resampled values %v", vs)
	}
}

func TestSeriesMeanEdgeCases(t *testing.T) {
	// Empty series: mean is 0 over any window.
	var empty Series
	if m := empty.Mean(0, 100); m != 0 {
		t.Fatalf("empty Mean = %v", m)
	}
	// Degenerate window (to <= from) is 0, not NaN/Inf.
	var s Series
	s.Add(10, 5)
	if m := s.Mean(50, 50); m != 0 {
		t.Fatalf("zero-width Mean = %v", m)
	}
	if m := s.Mean(80, 20); m != 0 {
		t.Fatalf("inverted-window Mean = %v", m)
	}
	// Single sample: value holds from its timestamp onward.
	if m := s.Mean(10, 20); m != 5 {
		t.Fatalf("single-sample Mean = %v, want 5", m)
	}
	// Window entirely before the first sample: the implicit initial 0.
	if m := s.Mean(0, 10); m != 0 {
		t.Fatalf("pre-sample Mean = %v, want 0", m)
	}
	// Window entirely after the last sample: last value holds.
	if m := s.Mean(1000, 2000); m != 5 {
		t.Fatalf("post-sample Mean = %v, want 5", m)
	}
}

func TestSeriesResampleEdgeCases(t *testing.T) {
	// Empty series resamples to all zeros at the requested grid.
	var empty Series
	ts, vs := empty.Resample(0, 100, 5)
	if len(ts) != 5 || len(vs) != 5 {
		t.Fatalf("empty resample sizes %d/%d", len(ts), len(vs))
	}
	for i, v := range vs {
		if v != 0 {
			t.Fatalf("empty resample vs[%d] = %v", i, v)
		}
	}
	// Single sample: zero before its timestamp, its value after.
	var s Series
	s.Add(50, 3)
	_, vs = s.Resample(0, 100, 4) // grid points 0, 25, 50, 75
	if vs[0] != 0 || vs[1] != 0 || vs[2] != 3 || vs[3] != 3 {
		t.Fatalf("single-sample resample %v", vs)
	}
	// Window entirely outside (after) the sampled range holds the last
	// value everywhere.
	_, vs = s.Resample(1000, 2000, 3)
	for i, v := range vs {
		if v != 3 {
			t.Fatalf("post-range resample vs[%d] = %v", i, v)
		}
	}
	// Window entirely before the sampled range is all zeros.
	_, vs = s.Resample(0, 40, 3)
	for i, v := range vs {
		if v != 0 {
			t.Fatalf("pre-range resample vs[%d] = %v", i, v)
		}
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	// Empty slice (and nil) summarise to the zero value.
	if st := Summarize([]sim.Duration{}); st != (LatencyStats{}) {
		t.Fatalf("empty Summarize = %+v", st)
	}
	// Single sample: every statistic is that sample.
	st := Summarize([]sim.Duration{7 * sim.Second})
	want := LatencyStats{N: 1, Mean: 7 * sim.Second, P50: 7 * sim.Second,
		P99: 7 * sim.Second, Min: 7 * sim.Second, Max: 7 * sim.Second}
	if st != want {
		t.Fatalf("single Summarize = %+v", st)
	}
	// Summarize must not mutate its input.
	ds := []sim.Duration{30, 10, 20}
	Summarize(ds)
	if ds[0] != 30 || ds[1] != 10 || ds[2] != 20 {
		t.Fatalf("Summarize reordered input: %v", ds)
	}
}

func TestSeriesMeanBoundsProperty(t *testing.T) {
	// Property: the integral mean always lies within [min, max] of the
	// contributing samples (plus initial 0).
	f := func(raw []uint8) bool {
		var s Series
		min, max := 0.0, 0.0
		for i, v := range raw {
			val := float64(v)
			s.Add(sim.Time(i*10), val)
			if val < min {
				min = val
			}
			if val > max {
				max = val
			}
		}
		if s.Len() == 0 {
			return true
		}
		m := s.Mean(0, sim.Time(len(raw)*10+10))
		return m >= min-1e-9 && m <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	ds := []sim.Duration{40, 10, 30, 20}
	st := Summarize(ds)
	if st.N != 4 || st.Mean != 25 || st.Min != 10 || st.Max != 40 {
		t.Fatalf("stats = %+v", st)
	}
	if st.P50 != 20 && st.P50 != 30 {
		t.Fatalf("P50 = %v", st.P50)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summarize not zero")
	}
}

func TestSummarizeOrderInvariant(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		a := make([]sim.Duration, len(raw))
		b := make([]sim.Duration, len(raw))
		for i, v := range raw {
			a[i] = sim.Duration(v)
			b[len(raw)-1-i] = sim.Duration(v)
		}
		sa, sb := Summarize(a), Summarize(b)
		return sa == sb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Header: []string{"name", "value"}}
	tab.AddRow("alpha", "1")
	tab.AddRow("b", "22222")
	out := tab.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "22222") {
		t.Fatalf("table output wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + rule + 2 rows
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
}

func TestCellMetricCSV(t *testing.T) {
	cells := []CellMetric{
		{Scenario: "matmul", Cell: "coop/tasks512/omp8", SimSeconds: 1.5, HostSeconds: 0.25, SimPerHost: 6},
		{Scenario: "matmul", Cell: "original/tasks512/omp8", SimSeconds: 5, HostSeconds: 0.5, SimPerHost: 10, TimedOut: true},
	}
	var sb strings.Builder
	if err := WriteCellCSV(&sb, cells); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("line count = %d:\n%s", len(lines), sb.String())
	}
	if lines[0] != "scenario,cell,sim_seconds,host_seconds,sim_per_host,events,windows,mean_window_ms,timed_out" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "matmul,coop/tasks512/omp8,1.5,0.25,6,0,0,0,false" {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if lines[2] != "matmul,original/tasks512/omp8,5,0.5,10,0,0,0,true" {
		t.Fatalf("row 2 = %q", lines[2])
	}
}
