package usf

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/nosv"
	"repro/internal/sim"
)

func coopStack(t *testing.T, cfg hw.Config, ccfg CoopConfig) (*sim.Engine, *kernel.Kernel, *nosv.Instance, *SchedCoop) {
	t.Helper()
	cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
	eng := sim.NewEngine(1)
	k := kernel.New(eng, cfg, kernel.DefaultSchedParams())
	boot := k.NewProcess("boot")
	var pol *SchedCoop
	in, err := nosv.OpenSegment(k, "usf", boot, func() nosv.Policy {
		pol = NewSchedCoop(ccfg)
		return pol
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, k, in, pol
}

func openProc(t *testing.T, k *kernel.Kernel, name string) *kernel.Process {
	t.Helper()
	p := k.NewProcess(name)
	if _, err := nosv.OpenSegment(k, "usf", p, func() nosv.Policy { return nil }); err != nil {
		t.Fatal(err)
	}
	return p
}

func attachRun(k *kernel.Kernel, in *nosv.Instance, p *kernel.Process, label string, body func(kt *kernel.Thread, task *nosv.Task)) {
	k.SpawnThread(p, label, func(kt *kernel.Thread) {
		task := in.Attach(kt, p.PID, label)
		body(kt, task)
		in.Complete(task)
	})
}

func TestCoopPrefersLastCore(t *testing.T) {
	eng, k, in, _ := coopStack(t, hw.SmallNode(), DefaultCoopConfig())
	p := openProc(t, k, "app")
	var cores []int
	var pauser *nosv.Task
	attachRun(k, in, p, "t", func(kt *kernel.Thread, task *nosv.Task) {
		pauser = task
		for i := 0; i < 4; i++ {
			kt.Compute(1 * sim.Millisecond)
			cores = append(cores, task.PrefCore())
			in.Pause(task)
		}
	})
	// An event-driven waker resubmits the pauser periodically.
	var tick func()
	rounds := 0
	tick = func() {
		rounds++
		if pauser != nil {
			in.Submit(pauser)
		}
		if rounds < 10 {
			eng.After(5*sim.Millisecond, tick)
		}
	}
	eng.After(5*sim.Millisecond, tick)
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(cores) != 4 {
		t.Fatalf("rounds recorded = %d, want 4", len(cores))
	}
	for i := 1; i < len(cores); i++ {
		if cores[i] != cores[0] {
			t.Fatalf("task moved cores: %v (SCHED_COOP must keep last-core affinity)", cores)
		}
	}
}

func TestCoopNoPreemptionAmongTasks(t *testing.T) {
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = 2
	eng, k, in, _ := coopStack(t, cfg, DefaultCoopConfig())
	p := openProc(t, k, "app")
	for i := 0; i < 6; i++ {
		attachRun(k, in, p, "hog", func(kt *kernel.Thread, task *nosv.Task) {
			kt.Compute(100 * sim.Millisecond)
		})
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if k.Stats.Preemptions > 6 {
		t.Fatalf("preemptions = %d; SCHED_COOP tasks must not preempt each other", k.Stats.Preemptions)
	}
}

func TestCoopProcessQuantumRotation(t *testing.T) {
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = 1
	eng, k, in, pol := coopStack(t, cfg, CoopConfig{ProcessQuantum: 5 * sim.Millisecond})
	pa := openProc(t, k, "A")
	pb := openProc(t, k, "B")
	var order []string
	work := func(p *kernel.Process, name string, n int) {
		for i := 0; i < n; i++ {
			attachRun(k, in, p, name, func(kt *kernel.Thread, task *nosv.Task) {
				kt.Compute(3 * sim.Millisecond)
				order = append(order, name)
			})
		}
	}
	work(pa, "A", 6)
	work(pb, "B", 6)
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 12 {
		t.Fatalf("completions = %d", len(order))
	}
	if pol.Stats.QuantumRotations == 0 {
		t.Fatal("expected process rotations with a 5ms quantum and 3ms tasks")
	}
	// Both processes must make progress before either finishes all 6:
	// find position of first B and last A.
	firstB, lastA := -1, -1
	for i, s := range order {
		if s == "B" && firstB < 0 {
			firstB = i
		}
		if s == "A" {
			lastA = i
		}
	}
	if firstB > lastA {
		// all A then all B would mean no interleaving at all
		t.Fatalf("no inter-process rotation: %v", order)
	}
}

func TestCoopAffinitySpreadsAcrossNUMA(t *testing.T) {
	cfg := hw.DualSocket16()
	eng, k, in, pol := coopStack(t, cfg, DefaultCoopConfig())
	p := openProc(t, k, "app")
	// 32 tasks on 16 cores: placements beyond the idle set go through
	// queues; all must complete.
	done := 0
	for i := 0; i < 32; i++ {
		attachRun(k, in, p, "w", func(kt *kernel.Thread, task *nosv.Task) {
			kt.Compute(2 * sim.Millisecond)
			done++
		})
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if done != 32 {
		t.Fatalf("done = %d", done)
	}
	if pol.Stats.IdlePlacements == 0 {
		t.Fatal("expected some direct idle placements")
	}
}

func TestCoopDisableAffinityAblation(t *testing.T) {
	cfg := hw.DualSocket16()
	eng, k, in, pol := coopStack(t, cfg, CoopConfig{ProcessQuantum: 20 * sim.Millisecond, DisableAffinity: true})
	p := openProc(t, k, "app")
	done := 0
	for i := 0; i < 24; i++ {
		attachRun(k, in, p, "w", func(kt *kernel.Thread, task *nosv.Task) {
			kt.Compute(1 * sim.Millisecond)
			in.Yield(task)
			kt.Compute(1 * sim.Millisecond)
			done++
		})
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if done != 24 {
		t.Fatalf("done = %d", done)
	}
	if pol.Stats.LocalPicks != 0 || pol.Stats.NUMAPicks != 0 {
		t.Fatal("affinity-disabled policy must not take affinity-ordered picks")
	}
}

func TestLIFOPolicyOrder(t *testing.T) {
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = 1
	cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
	eng := sim.NewEngine(1)
	k := kernel.New(eng, cfg, kernel.DefaultSchedParams())
	boot := k.NewProcess("boot")
	in, err := nosv.OpenSegment(k, "lifo", boot, func() nosv.Policy { return NewLIFO() })
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	// Occupy the core with a long task while three more queue up; LIFO
	// must then run them newest-first.
	attachRun(k, in, boot, "hog", func(kt *kernel.Thread, task *nosv.Task) {
		kt.Compute(60 * sim.Millisecond)
	})
	for i := 0; i < 3; i++ {
		i := i
		k.SpawnThread(boot, "w", func(kt *kernel.Thread) {
			kt.Nanosleep(sim.Duration(i+1) * sim.Millisecond) // deterministic queue order
			task := in.Attach(kt, boot.PID, "w")
			order = append(order, i)
			in.Complete(task)
		})
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1, 0}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (LIFO)", order, want)
		}
	}
}

func TestPriorityPolicyOrder(t *testing.T) {
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = 1
	cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
	eng := sim.NewEngine(1)
	k := kernel.New(eng, cfg, kernel.DefaultSchedParams())
	boot := k.NewProcess("boot")
	lo := k.NewProcess("lo")
	hi := k.NewProcess("hi")
	prio := map[int]int{int(lo.PID): 1, int(hi.PID): 9}
	in, err := nosv.OpenSegment(k, "prio", boot, func() nosv.Policy { return NewPriority(prio) })
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*kernel.Process{lo, hi} {
		if _, err := nosv.OpenSegment(k, "prio", p, nil); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	attachRun(k, in, boot, "hog", func(kt *kernel.Thread, task *nosv.Task) {
		kt.Compute(60 * sim.Millisecond)
	})
	mk := func(p *kernel.Process, name string, delay sim.Duration) {
		k.SpawnThread(p, name, func(kt *kernel.Thread) {
			kt.Nanosleep(delay)
			task := in.Attach(kt, p.PID, name)
			order = append(order, name)
			in.Complete(task)
		})
	}
	mk(lo, "lo", 1*sim.Millisecond) // queues first
	mk(hi, "hi", 2*sim.Millisecond) // queues second but outranks lo
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "hi" || order[1] != "lo" {
		t.Fatalf("order = %v, want [hi lo]", order)
	}
}
