package usf

import (
	"repro/internal/nosv"
)

// LIFOPolicy is a depth-first policy: the most recently readied task runs
// first, with no affinity or fairness. It exists to demonstrate that USF
// policies are pluggable (and is a reasonable choice for fork-join
// recursion, where the newest task has the hottest cache).
type LIFOPolicy struct {
	in    *nosv.Instance
	stack []*nosv.Task
}

// NewLIFO returns a LIFOPolicy.
func NewLIFO() *LIFOPolicy { return &LIFOPolicy{} }

// Name implements nosv.Policy.
func (p *LIFOPolicy) Name() string { return "lifo" }

// Bind implements nosv.Policy.
func (p *LIFOPolicy) Bind(in *nosv.Instance) { p.in = in }

// Ready implements nosv.Policy.
func (p *LIFOPolicy) Ready(t *nosv.Task, yield bool) int {
	if !yield {
		if pref := t.PrefCore(); pref >= 0 && p.in.IsIdle(pref) {
			return pref
		}
		if c := p.in.FirstIdleCore(); c >= 0 {
			return c
		}
	}
	p.stack = append(p.stack, t)
	return -1
}

// Next implements nosv.Policy.
func (p *LIFOPolicy) Next(core int) *nosv.Task {
	n := len(p.stack)
	if n == 0 {
		return nil
	}
	t := p.stack[n-1]
	p.stack = p.stack[:n-1]
	return t
}

// Remove implements nosv.Policy.
func (p *LIFOPolicy) Remove(t *nosv.Task) {
	for i, x := range p.stack {
		if x == t {
			copy(p.stack[i:], p.stack[i+1:])
			p.stack = p.stack[:len(p.stack)-1]
			return
		}
	}
}

// PriorityPolicy schedules ready tasks by a user-assigned per-process
// priority (higher first), FIFO within a level. It demonstrates a policy
// that a latency-critical gateway process could use instead of nice
// levels — the kind of ad-hoc policy §7 of the paper envisions users
// writing on USF.
type PriorityPolicy struct {
	in *nosv.Instance
	// Prio maps pid -> priority; unlisted processes get 0.
	Prio map[int]int
	q    []*nosv.Task
}

// NewPriority returns a PriorityPolicy with the given pid->priority map.
func NewPriority(prio map[int]int) *PriorityPolicy {
	if prio == nil {
		prio = make(map[int]int)
	}
	return &PriorityPolicy{Prio: prio}
}

// Name implements nosv.Policy.
func (p *PriorityPolicy) Name() string { return "priority" }

// Bind implements nosv.Policy.
func (p *PriorityPolicy) Bind(in *nosv.Instance) { p.in = in }

func (p *PriorityPolicy) prioOf(t *nosv.Task) int { return p.Prio[int(t.Pid)] }

// Ready implements nosv.Policy.
func (p *PriorityPolicy) Ready(t *nosv.Task, yield bool) int {
	if !yield {
		if c := p.in.FirstIdleCore(); c >= 0 {
			return c
		}
	}
	// Insert keeping the queue sorted by descending priority, FIFO
	// within equal priorities.
	i := len(p.q)
	for i > 0 && p.prioOf(p.q[i-1]) < p.prioOf(t) {
		i--
	}
	p.q = append(p.q, nil)
	copy(p.q[i+1:], p.q[i:])
	p.q[i] = t
	return -1
}

// Next implements nosv.Policy.
func (p *PriorityPolicy) Next(core int) *nosv.Task {
	if len(p.q) == 0 {
		return nil
	}
	t := p.q[0]
	p.q = p.q[1:]
	return t
}

// Remove implements nosv.Policy.
func (p *PriorityPolicy) Remove(t *nosv.Task) {
	for i, x := range p.q {
		if x == t {
			copy(p.q[i:], p.q[i+1:])
			p.q = p.q[:len(p.q)-1]
			return
		}
	}
}
