// Package usf is the User-space Scheduling Framework: the pluggable policy
// layer on top of nOS-V that the paper contributes. A policy owns every
// choice — which ready task goes where, in what order, and when one
// process's tasks yield to another's — while nosv provides the mechanics.
//
// SchedCoop is the paper's SCHED_COOP policy (§3, §4.1): threads run
// uninterrupted with single-core affinity until they block or yield; ready
// tasks queue in per-process per-core FIFOs; idle cores are filled
// preferring the task's own core, then its NUMA node, then anywhere; and a
// per-process quantum (20 ms by default), evaluated only at scheduling
// points, rotates cores between processes.
package usf

import (
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/nosv"
	"repro/internal/sim"
)

// CoopConfig tunes SCHED_COOP.
type CoopConfig struct {
	// ProcessQuantum is the per-process quantum evaluated at scheduling
	// points (20 ms in the paper).
	ProcessQuantum sim.Duration
	// DisableAffinity drops the core→NUMA→any search and treats all
	// queues as one pool (ablation of §4.1's placement).
	DisableAffinity bool
}

// DefaultCoopConfig returns the paper's defaults.
func DefaultCoopConfig() CoopConfig {
	return CoopConfig{ProcessQuantum: 20 * sim.Millisecond}
}

// CoopStats counts policy-level decisions.
type CoopStats struct {
	LocalPicks       int64 // task picked from the idle core's own queue
	NUMAPicks        int64 // task picked from a same-NUMA queue
	RemotePicks      int64 // task picked from another NUMA node
	QuantumRotations int64 // process switches due to quantum expiry
	IdlePlacements   int64 // ready tasks placed straight onto idle cores
}

// SchedCoop implements nosv.Policy with the paper's cooperative policy.
type SchedCoop struct {
	cfg  CoopConfig
	in   *nosv.Instance
	topo hw.Topology

	// queues[pid][core] is the per-process per-core FIFO of ready tasks.
	queues  map[kernel.Pid][][]*nosv.Task
	pending map[kernel.Pid]int
	pids    []kernel.Pid // rotation ring, registration order

	curPid     []kernel.Pid // per core: process currently being served
	sliceStart []sim.Time   // per core: when that process's quantum began
	nextHome   int          // round-robin home queue for never-run tasks

	Stats CoopStats
}

// NewSchedCoop returns a SCHED_COOP policy with the given configuration.
func NewSchedCoop(cfg CoopConfig) *SchedCoop {
	if cfg.ProcessQuantum <= 0 {
		cfg.ProcessQuantum = 20 * sim.Millisecond
	}
	return &SchedCoop{
		cfg:     cfg,
		queues:  make(map[kernel.Pid][][]*nosv.Task),
		pending: make(map[kernel.Pid]int),
	}
}

// Name implements nosv.Policy.
func (p *SchedCoop) Name() string { return "sched_coop" }

// Bind implements nosv.Policy.
func (p *SchedCoop) Bind(in *nosv.Instance) {
	p.in = in
	p.topo = in.Topo()
	n := in.NumCores()
	p.curPid = make([]kernel.Pid, n)
	p.sliceStart = make([]sim.Time, n)
}

func (p *SchedCoop) queuesFor(pid kernel.Pid) [][]*nosv.Task {
	q, ok := p.queues[pid]
	if !ok {
		q = make([][]*nosv.Task, p.in.NumCores())
		p.queues[pid] = q
		p.pids = append(p.pids, pid)
	}
	return q
}

// Ready implements nosv.Policy: place on an idle core (own, same-NUMA,
// any), else queue in the task's per-process per-core FIFO.
func (p *SchedCoop) Ready(t *nosv.Task, yield bool) int {
	pref := t.PrefCore()
	if !yield {
		if c := p.findIdle(pref); c >= 0 {
			p.Stats.IdlePlacements++
			p.notePick(c, t.Pid)
			return c
		}
	}
	q := p.queuesFor(t.Pid)
	home := pref
	if home < 0 {
		// Never-run tasks have no affinity yet: spread them round-robin
		// so no single core's FIFO becomes the funnel for new work.
		home = p.nextHome
		p.nextHome = (p.nextHome + 1) % p.in.NumCores()
	}
	t.SetQueuedAt(home)
	q[home] = append(q[home], t)
	p.pending[t.Pid]++
	return -1
}

// findIdle searches for an idle core: preferred, same NUMA, anywhere.
func (p *SchedCoop) findIdle(pref int) int {
	in := p.in
	if p.cfg.DisableAffinity || pref < 0 {
		return in.FirstIdleCore()
	}
	if in.IsIdle(pref) {
		return pref
	}
	n := in.NumCores()
	for c := 0; c < n; c++ {
		if c != pref && p.topo.SameNUMA(c, pref) && in.IsIdle(c) {
			return c
		}
	}
	for c := 0; c < n; c++ {
		if !p.topo.SameNUMA(c, pref) && in.IsIdle(c) {
			return c
		}
	}
	return -1
}

// Next implements nosv.Policy: serve the core's current process until its
// quantum expires or it runs dry, then rotate to the next process with
// pending work.
func (p *SchedCoop) Next(core int) *nosv.Task {
	now := p.in.Now()
	cur := p.curPid[core]
	if cur != 0 && p.pending[cur] > 0 && now.Sub(p.sliceStart[core]) < p.cfg.ProcessQuantum {
		if t := p.pickFor(cur, core); t != nil {
			return t
		}
	}
	// Rotate through the process ring, starting after the current one.
	start := 0
	for i, pid := range p.pids {
		if pid == cur {
			start = i + 1
			break
		}
	}
	n := len(p.pids)
	for i := 0; i < n; i++ {
		pid := p.pids[(start+i)%n]
		if p.pending[pid] == 0 {
			continue
		}
		if t := p.pickFor(pid, core); t != nil {
			if pid != cur {
				p.Stats.QuantumRotations++
			}
			p.curPid[core] = pid
			p.sliceStart[core] = now
			return t
		}
	}
	return nil
}

// pickFor pops a queued task of pid suitable for core, honouring the
// core→NUMA→any affinity order.
func (p *SchedCoop) pickFor(pid kernel.Pid, core int) *nosv.Task {
	q := p.queues[pid]
	if q == nil {
		return nil
	}
	// pop shifts the queue in place (rather than re-slicing the head
	// away) so the backing array is stable and enqueue/pick cycles do
	// not reallocate it.
	pop := func(c int) *nosv.Task {
		t := q[c][0]
		n := copy(q[c], q[c][1:])
		q[c][n] = nil
		q[c] = q[c][:n]
		p.pending[pid]--
		return t
	}
	if p.cfg.DisableAffinity {
		for c := range q {
			if len(q[c]) > 0 {
				return pop(c)
			}
		}
		return nil
	}
	if len(q[core]) > 0 {
		p.Stats.LocalPicks++
		return pop(core)
	}
	for c := range q {
		if c != core && p.topo.SameNUMA(c, core) && len(q[c]) > 0 {
			p.Stats.NUMAPicks++
			return pop(c)
		}
	}
	for c := range q {
		if !p.topo.SameNUMA(c, core) && len(q[c]) > 0 {
			p.Stats.RemotePicks++
			return pop(c)
		}
	}
	return nil
}

// NextAfterYield implements nosv.YieldAware: a yielding (busy-waiting)
// task only runs again when nothing else is queued, so spinning on a
// barrier hands the core to real work anywhere in the system instead of
// burning it in a self-yield loop.
func (p *SchedCoop) NextAfterYield(core int, y *nosv.Task) *nosv.Task {
	t := p.Next(core)
	if t != y || t == nil {
		return t
	}
	// Popped the yielder itself: look for any alternative.
	if alt := p.Next(core); alt != nil {
		// Requeue the yielder behind its siblings and run the
		// alternative.
		q := p.queuesFor(y.Pid)
		home := y.PrefCore()
		if home < 0 {
			home = core
		}
		y.SetQueuedAt(home)
		q[home] = append(q[home], y)
		p.pending[y.Pid]++
		return alt
	}
	return y
}

// notePick charges the placement to the pid's quantum bookkeeping so that
// direct idle placements also count as serving that process.
func (p *SchedCoop) notePick(core int, pid kernel.Pid) {
	if p.curPid[core] != pid {
		p.curPid[core] = pid
		p.sliceStart[core] = p.in.Now()
	}
}

// Remove implements nosv.Policy.
func (p *SchedCoop) Remove(t *nosv.Task) {
	q := p.queues[t.Pid]
	if q == nil {
		return
	}
	c := t.QueuedAt()
	if c < 0 || c >= len(q) {
		return
	}
	for i, x := range q[c] {
		if x == t {
			copy(q[c][i:], q[c][i+1:])
			q[c] = q[c][:len(q[c])-1]
			p.pending[t.Pid]--
			return
		}
	}
}
