package hw

import (
	"testing"
	"testing/quick"
)

func TestTopologyMapping(t *testing.T) {
	topo := Topology{Sockets: 2, CoresPerSocket: 56, NUMAPerSocket: 1}
	if topo.Cores() != 112 {
		t.Fatalf("Cores = %d, want 112", topo.Cores())
	}
	if topo.SocketOf(0) != 0 || topo.SocketOf(55) != 0 || topo.SocketOf(56) != 1 || topo.SocketOf(111) != 1 {
		t.Fatal("SocketOf mapping wrong")
	}
	if !topo.SameSocket(3, 50) || topo.SameSocket(55, 56) {
		t.Fatal("SameSocket wrong")
	}
	if !topo.SameNUMA(0, 55) || topo.SameNUMA(55, 56) {
		t.Fatal("SameNUMA wrong")
	}
}

func TestTopologySubNUMA(t *testing.T) {
	topo := Topology{Sockets: 2, CoresPerSocket: 8, NUMAPerSocket: 2}
	if topo.NUMANodes() != 4 {
		t.Fatalf("NUMANodes = %d, want 4", topo.NUMANodes())
	}
	if topo.NUMAOf(0) != 0 || topo.NUMAOf(3) != 0 || topo.NUMAOf(4) != 1 || topo.NUMAOf(8) != 2 || topo.NUMAOf(15) != 3 {
		t.Fatal("sub-NUMA mapping wrong")
	}
	if topo.SameNUMA(3, 4) {
		t.Fatal("cores 3 and 4 must be in different sub-NUMA nodes")
	}
	if !topo.SameSocket(3, 4) {
		t.Fatal("cores 3 and 4 share a socket")
	}
}

func TestSocketCores(t *testing.T) {
	topo := Topology{Sockets: 2, CoresPerSocket: 4, NUMAPerSocket: 1}
	got := topo.SocketCores(1)
	want := []int{4, 5, 6, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SocketCores(1) = %v, want %v", got, want)
		}
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range []Config{MareNostrum5(), SmallNode(), DualSocket16()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestMareNostrum5Shape(t *testing.T) {
	cfg := MareNostrum5()
	if cfg.Topo.Cores() != 112 {
		t.Fatalf("MN5 cores = %d, want 112 (Table 1: 56x2)", cfg.Topo.Cores())
	}
	if cfg.Topo.Sockets != 2 {
		t.Fatal("MN5 must be dual-socket")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Topo: Topology{Sockets: 0, CoresPerSocket: 8, NUMAPerSocket: 1}, CoreGFLOPS: 1, Mem: Memory{SocketBandwidth: 1}},
		{Topo: Topology{Sockets: 1, CoresPerSocket: 8, NUMAPerSocket: 3}, CoreGFLOPS: 1, Mem: Memory{SocketBandwidth: 1}},
		{Topo: Topology{Sockets: 1, CoresPerSocket: 8, NUMAPerSocket: 1}, CoreGFLOPS: 0, Mem: Memory{SocketBandwidth: 1}},
		{Topo: Topology{Sockets: 1, CoresPerSocket: 8, NUMAPerSocket: 1}, CoreGFLOPS: 1, Mem: Memory{SocketBandwidth: 0}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestSocketOfNUMAOfConsistency(t *testing.T) {
	// Property: a core's NUMA node always lies within its socket's NUMA
	// range, for arbitrary (small) topologies.
	f := func(sockets, cps, npsRaw uint8) bool {
		s := int(sockets%4) + 1
		c := (int(cps%8) + 1) * 2
		nps := 1
		if npsRaw%2 == 1 && c%2 == 0 {
			nps = 2
		}
		topo := Topology{Sockets: s, CoresPerSocket: c, NUMAPerSocket: nps}
		for core := 0; core < topo.Cores(); core++ {
			sock := topo.SocketOf(core)
			numa := topo.NUMAOf(core)
			if numa < sock*nps || numa >= (sock+1)*nps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
