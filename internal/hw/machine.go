// Package hw models the hardware substrate: CPU topology (sockets, NUMA
// nodes, cores), the scheduling-relevant cost constants (context switch,
// migration, cache re-pollution), and the shared per-socket memory
// bandwidth that bounds bandwidth-heavy workloads.
package hw

import (
	"fmt"

	"repro/internal/sim"
)

// Topology describes the CPU layout. Cores are numbered 0..Cores()-1,
// socket-major: core c belongs to socket c / CoresPerSocket.
type Topology struct {
	Sockets        int
	CoresPerSocket int
	// NUMAPerSocket lets a socket expose multiple NUMA domains
	// (sub-NUMA clustering). 1 for most configurations.
	NUMAPerSocket int
}

// Cores returns the total number of cores.
func (t Topology) Cores() int { return t.Sockets * t.CoresPerSocket }

// NUMANodes returns the total number of NUMA domains.
func (t Topology) NUMANodes() int { return t.Sockets * t.NUMAPerSocket }

// SocketOf returns the socket that owns core c.
func (t Topology) SocketOf(c int) int { return c / t.CoresPerSocket }

// NUMAOf returns the NUMA node that owns core c.
func (t Topology) NUMAOf(c int) int {
	perNode := t.CoresPerSocket / t.NUMAPerSocket
	return c / perNode
}

// SameSocket reports whether cores a and b share a socket.
func (t Topology) SameSocket(a, b int) bool { return t.SocketOf(a) == t.SocketOf(b) }

// SameNUMA reports whether cores a and b share a NUMA node.
func (t Topology) SameNUMA(a, b int) bool { return t.NUMAOf(a) == t.NUMAOf(b) }

// SocketCores returns the core ids belonging to socket s.
func (t Topology) SocketCores(s int) []int {
	out := make([]int, t.CoresPerSocket)
	for i := range out {
		out[i] = s*t.CoresPerSocket + i
	}
	return out
}

// Costs holds the scheduling cost constants. All values are in virtual
// time; they are calibrated to typical Linux/x86 figures, and the defaults
// approximate the paper's Sapphire Rapids testbed.
type Costs struct {
	// ContextSwitch is the direct cost of switching the thread running
	// on a core (register state, kernel path).
	ContextSwitch sim.Duration
	// MigrationSameNUMA / MigrationCrossNUMA / MigrationCrossSocket are
	// added when a thread resumes on a different core than it last ran
	// on, before any cache-refill effect.
	MigrationSameNUMA    sim.Duration
	MigrationCrossNUMA   sim.Duration
	MigrationCrossSocket sim.Duration
	// CacheRefillBytesPerNs converts a thread's working-set footprint
	// into a warm-up penalty when its cache state was evicted (another
	// thread ran on the core in between, or it migrated).
	CacheRefillBytesPerNs float64
	// L2Bytes caps the per-core refill penalty (beyond L2 the model
	// assumes the data was never core-local anyway).
	L2Bytes int64
	// SyscallEntry is the fixed cost of entering the simulated kernel
	// (futex, yield, nanosleep, ...).
	SyscallEntry sim.Duration
	// TimerTick is the cost charged when a preemption timer fires and
	// interrupts a running thread.
	TimerTick sim.Duration
}

// Memory describes the per-socket shared memory system.
type Memory struct {
	// SocketBandwidth is the sustainable read+write bandwidth of one
	// socket's memory controllers, in bytes per virtual nanosecond
	// (i.e. GB/s when multiplied by ~1).
	SocketBandwidth float64
	// RemotePenalty scales effective bandwidth demand for accesses that
	// cross the socket interconnect (>1 means remote traffic is more
	// expensive).
	RemotePenalty float64
}

// Config is a complete machine description.
type Config struct {
	Name  string
	Topo  Topology
	Costs Costs
	Mem   Memory
	// CoreGFLOPS is the per-core peak double-precision rate used by the
	// BLAS cost model (flops per ns = GFLOPS).
	CoreGFLOPS float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Topo.Sockets <= 0 || c.Topo.CoresPerSocket <= 0 {
		return fmt.Errorf("hw: invalid topology %+v", c.Topo)
	}
	if c.Topo.NUMAPerSocket <= 0 || c.Topo.CoresPerSocket%c.Topo.NUMAPerSocket != 0 {
		return fmt.Errorf("hw: NUMAPerSocket %d must divide CoresPerSocket %d",
			c.Topo.NUMAPerSocket, c.Topo.CoresPerSocket)
	}
	if c.CoreGFLOPS <= 0 {
		return fmt.Errorf("hw: CoreGFLOPS must be positive")
	}
	if c.Mem.SocketBandwidth <= 0 {
		return fmt.Errorf("hw: SocketBandwidth must be positive")
	}
	return nil
}

// DefaultCosts returns cost constants calibrated to contemporary x86
// server parts.
func DefaultCosts() Costs {
	return Costs{
		ContextSwitch:         1800 * sim.Nanosecond,
		MigrationSameNUMA:     3 * sim.Microsecond,
		MigrationCrossNUMA:    6 * sim.Microsecond,
		MigrationCrossSocket:  12 * sim.Microsecond,
		CacheRefillBytesPerNs: 20, // ~20 GB/s effective refill stream
		L2Bytes:               2 << 20,
		SyscallEntry:          300 * sim.Nanosecond,
		TimerTick:             900 * sim.Nanosecond,
	}
}

// MareNostrum5 models the paper's evaluation node (Table 1): dual-socket
// Intel Sapphire Rapids 8480+, 56 cores per socket, 256 GiB, ~307 GB/s
// per-socket theoretical DDR5 bandwidth of which ~60% is sustainable; the
// paper's Fig. 5b observes ~250 GB/s total, so we use 128 GB/s per socket.
func MareNostrum5() Config {
	return Config{
		Name:  "MareNostrum5",
		Topo:  Topology{Sockets: 2, CoresPerSocket: 56, NUMAPerSocket: 1},
		Costs: DefaultCosts(),
		Mem: Memory{
			SocketBandwidth: 128, // bytes/ns == GB/s
			RemotePenalty:   1.6,
		},
		CoreGFLOPS: 48, // sustained dgemm per core (AVX-512, derated)
	}
}

// SmallNode returns an 8-core single-socket machine for tests and the
// quickstart example.
func SmallNode() Config {
	cfg := MareNostrum5()
	cfg.Name = "SmallNode"
	cfg.Topo = Topology{Sockets: 1, CoresPerSocket: 8, NUMAPerSocket: 1}
	cfg.Mem.SocketBandwidth = 64
	return cfg
}

// DualSocket16 returns a 2x8-core machine, the smallest shape that still
// exercises NUMA and cross-socket placement logic.
func DualSocket16() Config {
	cfg := MareNostrum5()
	cfg.Name = "DualSocket16"
	cfg.Topo = Topology{Sockets: 2, CoresPerSocket: 8, NUMAPerSocket: 1}
	cfg.Mem.SocketBandwidth = 64
	return cfg
}
