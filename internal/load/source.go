// Package load is the traffic-generation and SLO/tail-latency
// subsystem: pluggable arrival processes (Source), streaming latency
// accounting against a service-level objective (Meter), and an optional
// admission/concurrency-limit stage (Limiter) that can sit in front of
// any served workload.
//
// Sources draw every random variate from a labelled engine RNG stream,
// so cells stay reproducible: the same seed and source always produce
// the same arrival sequence, independent of what the served workload
// does. A Source is single-use — construct a fresh one per simulation.
package load

import (
	"math"

	"repro/internal/sim"
)

// Source is a pluggable arrival process. Start schedules the submission
// of n requests onto the engine: submit(id) is called at each arrival
// instant with ids 0..n-1 in order. Open-loop sources ignore Completed;
// closed-loop sources use it to trigger the owning client's next
// request after think time. The workload must call Completed exactly
// once per finished request.
type Source interface {
	// Name labels the source in cell names and tables.
	Name() string
	// Start begins the arrival process.
	Start(eng *sim.Engine, rng *sim.Rand, n int, submit func(id int))
	// Completed informs the source that request id finished.
	Completed(id int)
}

// openLoopChain is the reusable state of an open-loop arrival chain, so
// each arrival schedules its successor without allocating a closure.
type openLoopChain struct {
	eng    *sim.Engine
	n, i   int
	submit func(id int)
	gap    func() sim.Duration
}

// openLoopStep is the arrival callback shared by every open-loop source.
func openLoopStep(arg any) {
	c := arg.(*openLoopChain)
	if c.i >= c.n {
		return
	}
	c.submit(c.i)
	c.i++
	c.eng.AfterFunc(c.gap(), openLoopStep, c)
}

// openLoop runs an open-loop arrival chain: submit each request, then
// draw the gap to the next one from gap(). The gap is drawn (and the
// follow-up event scheduled) even after the final request, exactly
// mirroring the original inline inference client so refactored
// workloads keep byte-identical RNG and event sequences.
func openLoop(eng *sim.Engine, n int, submit func(id int), gap func() sim.Duration) {
	eng.AfterFunc(0, openLoopStep, &openLoopChain{eng: eng, n: n, submit: submit, gap: gap})
}

// expGap converts a rate in requests/second into one exponentially
// distributed inter-arrival draw.
func expGap(rng *sim.Rand, rate float64) sim.Duration {
	return sim.Duration(rng.ExpFloat64() / rate * 1e9)
}

// Poisson is the classic open-loop memoryless arrival process at a
// fixed rate (requests per second of simulated time).
type Poisson struct {
	Rate float64
}

// Name implements Source.
func (p *Poisson) Name() string { return "poisson" }

// Start implements Source.
func (p *Poisson) Start(eng *sim.Engine, rng *sim.Rand, n int, submit func(id int)) {
	if p.Rate <= 0 {
		panic("load: Poisson needs Rate > 0")
	}
	openLoop(eng, n, submit, func() sim.Duration { return expGap(rng, p.Rate) })
}

// Completed implements Source (open loop: ignored).
func (p *Poisson) Completed(int) {}

// PhasedPoisson is Poisson arrivals on a quantised timeline: each
// cumulative arrival offset is snapped down to the Quantum grid and
// request id arrives at grid + (id+1) nanoseconds. When every other
// duration in the simulation is a Quantum multiple, every event caused
// by request id inherits the unique sub-quantum phase id+1 — so no two
// requests' events can ever share an exact nanosecond, the one
// collision the sharded runtime's determinism contract excludes (see
// sim/pdes). High-event-rate scenarios (retry storms) use it where
// plain continuous draws would tie by birthday paradox. Requires
// n < Quantum nanoseconds of phase space.
type PhasedPoisson struct {
	// Rate is the arrival rate (req/s).
	Rate float64
	// Quantum is the timeline grid every other simulated duration must
	// be a multiple of.
	Quantum sim.Duration
}

// Name implements Source.
func (p *PhasedPoisson) Name() string { return "phased-poisson" }

// phasedChain is the open-loop chain state for PhasedPoisson.
type phasedChain struct {
	eng    *sim.Engine
	rng    *sim.Rand
	rate   float64
	q      sim.Duration
	cum    sim.Duration // continuous cumulative offset, pre-snap
	at     sim.Duration // current arrival's absolute offset
	n, i   int
	submit func(id int)
}

// phasedStep submits one arrival and schedules the next on the grid.
func phasedStep(arg any) {
	c := arg.(*phasedChain)
	if c.i >= c.n {
		return
	}
	c.submit(c.i)
	c.i++
	c.cum += expGap(c.rng, c.rate)
	next := c.cum - c.cum%c.q + sim.Duration(c.i+1)
	c.eng.AfterFunc(next-c.at, phasedStep, c)
	c.at = next
}

// Start implements Source.
func (p *PhasedPoisson) Start(eng *sim.Engine, rng *sim.Rand, n int, submit func(id int)) {
	if p.Rate <= 0 || p.Quantum <= 0 {
		panic("load: PhasedPoisson needs Rate > 0 and Quantum > 0")
	}
	if sim.Duration(n) >= p.Quantum {
		panic("load: PhasedPoisson phase space exhausted: need n < Quantum nanoseconds")
	}
	c := &phasedChain{eng: eng, rng: rng, rate: p.Rate, q: p.Quantum,
		n: n, submit: submit, at: 1}
	// Request 0 arrives at its phase offset (1ns), mirroring Poisson's
	// immediate first arrival.
	eng.AfterFunc(c.at, phasedStep, c)
}

// Completed implements Source (open loop: ignored).
func (p *PhasedPoisson) Completed(int) {}

// Bursty is an MMPP-style bursty arrival process: a two-state Markov
// chain modulates the instantaneous Poisson rate between Base and
// Burst, with exponentially distributed state dwell times. Arrivals are
// generated by Lewis-Shedler thinning against the modulated rate, so
// the whole process consumes a single deterministic RNG stream.
type Bursty struct {
	// Base and Burst are the two states' arrival rates (req/s).
	Base, Burst float64
	// MeanDwell is the mean residence time in each state.
	MeanDwell sim.Duration

	inBurst  bool
	stateEnd sim.Duration // state boundary, as offset from sim start
}

// Name implements Source.
func (b *Bursty) Name() string { return "bursty" }

// rateAt returns the modulated rate at offset t, lazily extending the
// state timeline. Queries must be monotone in t (thinning guarantees
// this).
func (b *Bursty) rateAt(rng *sim.Rand, t sim.Duration) float64 {
	for t >= b.stateEnd {
		b.inBurst = !b.inBurst
		dwell := sim.Duration(rng.ExpFloat64() * float64(b.MeanDwell))
		b.stateEnd += dwell
	}
	if b.inBurst {
		return b.Burst
	}
	return b.Base
}

// Start implements Source.
func (b *Bursty) Start(eng *sim.Engine, rng *sim.Rand, n int, submit func(id int)) {
	if b.Base <= 0 || b.Burst <= 0 || b.MeanDwell <= 0 {
		panic("load: Bursty needs Base, Burst, and MeanDwell > 0")
	}
	// The chain starts in the base state; the first dwell draw happens
	// on the first rate query.
	b.inBurst = true // flipped to base on first rateAt
	b.stateEnd = 0
	maxRate := math.Max(b.Base, b.Burst)
	at := sim.Duration(0) // current absolute offset of the thinning scan
	openLoop(eng, n, submit, func() sim.Duration {
		start := at
		for {
			at += expGap(rng, maxRate)
			if rng.Float64()*maxRate < b.rateAt(rng, at) {
				return at - start
			}
		}
	})
}

// Completed implements Source (open loop: ignored).
func (b *Bursty) Completed(int) {}

// Ramp is a diurnal-style open-loop process: the instantaneous rate
// sweeps sinusoidally between Low and High with the given period,
// starting at Low. Arrivals are generated by thinning against the
// closed-form rate curve.
type Ramp struct {
	// Low and High bound the instantaneous arrival rate (req/s).
	Low, High float64
	// Period is the full low→high→low cycle length.
	Period sim.Duration
}

// Name implements Source.
func (r *Ramp) Name() string { return "ramp" }

// rateAt returns the diurnal rate at offset t.
func (r *Ramp) rateAt(t sim.Duration) float64 {
	phase := 2 * math.Pi * float64(t) / float64(r.Period)
	return r.Low + (r.High-r.Low)*(1-math.Cos(phase))/2
}

// Start implements Source.
func (r *Ramp) Start(eng *sim.Engine, rng *sim.Rand, n int, submit func(id int)) {
	if r.Low < 0 || r.High <= 0 || r.High < r.Low || r.Period <= 0 {
		panic("load: Ramp needs 0 <= Low <= High (High > 0) and Period > 0")
	}
	at := sim.Duration(0)
	openLoop(eng, n, submit, func() sim.Duration {
		start := at
		for {
			at += expGap(rng, r.High)
			if rng.Float64()*r.High < r.rateAt(at) {
				return at - start
			}
		}
	})
}

// Completed implements Source (open loop: ignored).
func (r *Ramp) Completed(int) {}

// Closed is a closed-loop source: Clients virtual users each submit one
// request, wait for its completion, think for an exponentially
// distributed time with mean Think, and repeat. Offered load therefore
// self-regulates with service latency — the canonical
// interactive-user model.
type Closed struct {
	Clients int
	Think   sim.Duration

	eng       *sim.Engine
	rng       *sim.Rand
	n         int
	scheduled int // submissions with a pending timer
	next      int // next id to assign, in arrival order
	submit    func(id int)
}

// Name implements Source.
func (c *Closed) Name() string { return "closed" }

// Start implements Source.
func (c *Closed) Start(eng *sim.Engine, rng *sim.Rand, n int, submit func(id int)) {
	if c.Clients < 1 || c.Think <= 0 {
		panic("load: Closed needs Clients >= 1 and Think > 0")
	}
	c.eng, c.rng, c.n, c.submit = eng, rng, n, submit
	c.scheduled, c.next = 0, 0
	for i := 0; i < c.Clients && i < n; i++ {
		// Each client's first request arrives after an initial think, so
		// clients do not stampede the service at t=0.
		c.scheduleNext()
	}
}

// scheduleNext schedules one more submission after a think-time draw.
// Ids are assigned when the timer fires, so arrivals carry ids in
// arrival order even when clients' think draws interleave.
func (c *Closed) scheduleNext() {
	if c.scheduled >= c.n {
		return
	}
	c.scheduled++
	gap := sim.Duration(c.rng.ExpFloat64() * float64(c.Think))
	c.eng.AfterFunc(gap, closedSubmit, c)
}

// closedSubmit is the post-think submission callback shared by every
// closed-loop source.
func closedSubmit(arg any) {
	c := arg.(*Closed)
	id := c.next
	c.next++
	c.submit(id)
}

// Completed implements Source: the freed client thinks, then submits
// the next request.
func (c *Closed) Completed(int) { c.scheduleNext() }

// Replay is a deterministic trace-replay source: request i is submitted
// exactly at offset At[i] from the start of the process. When more
// requests are demanded than the trace holds, the trace repeats with a
// period of its span plus one mean inter-arrival gap, so the seam
// between cycles carries an average-sized gap and the offered rate
// matches the trace's. Replay consumes no randomness.
type Replay struct {
	// At holds nondecreasing arrival offsets.
	At []sim.Duration
}

// Name implements Source.
func (r *Replay) Name() string { return "replay" }

// period returns the cycle length used when the trace repeats: the
// trace span plus its mean inter-arrival gap (single-offset traces
// repeat back to back at their sole offset).
func (r *Replay) period() sim.Duration {
	span := r.At[len(r.At)-1] - r.At[0]
	if len(r.At) < 2 {
		return 0
	}
	return span + span/sim.Duration(len(r.At)-1)
}

// Start implements Source.
func (r *Replay) Start(eng *sim.Engine, rng *sim.Rand, n int, submit func(id int)) {
	if len(r.At) == 0 {
		for i := 0; i < n; i++ {
			i := i
			eng.After(0, func() { submit(i) })
		}
		return
	}
	period := r.period()
	for i := 0; i < n; i++ {
		i := i
		cycle, off := i/len(r.At), i%len(r.At)
		at := sim.Duration(cycle)*period + r.At[off]
		eng.After(at, func() { submit(i) })
	}
}

// Completed implements Source (open loop: ignored).
func (r *Replay) Completed(int) {}
