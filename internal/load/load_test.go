package load

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// collect runs src for n arrivals on a fresh engine and returns the
// submission times. Each request completes service seconds after
// submission (feeding closed-loop sources).
func collect(t *testing.T, src Source, seed uint64, n int, service sim.Duration) []sim.Time {
	t.Helper()
	eng := sim.NewEngine(seed)
	var times []sim.Time
	src.Start(eng, eng.Rand("client"), n, func(id int) {
		if id != len(times) {
			t.Fatalf("out-of-order submit: id %d at position %d", id, len(times))
		}
		times = append(times, eng.Now())
		eng.After(service, func() { src.Completed(id) })
	})
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(times) != n {
		t.Fatalf("%d arrivals, want %d", len(times), n)
	}
	return times
}

// meanGap returns the mean inter-arrival time in seconds.
func meanGap(times []sim.Time) float64 {
	if len(times) < 2 {
		return 0
	}
	span := times[len(times)-1].Sub(times[0]).Seconds()
	return span / float64(len(times)-1)
}

func TestPoissonHitsConfiguredRate(t *testing.T) {
	const rate = 10.0
	times := collect(t, &Poisson{Rate: rate}, 1, 5000, sim.Millisecond)
	got := meanGap(times)
	want := 1 / rate
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("poisson mean gap %.4fs, want %.4fs ±5%%", got, want)
	}
}

func TestBurstyHitsMeanRateAndIsBurstier(t *testing.T) {
	// Equal mean dwell in each state → long-run rate (Base+Burst)/2.
	src := &Bursty{Base: 4, Burst: 36, MeanDwell: 5 * sim.Second}
	times := collect(t, src, 2, 8000, sim.Millisecond)
	got := meanGap(times)
	want := 1 / 20.0
	if math.Abs(got-want)/want > 0.10 {
		t.Fatalf("bursty mean gap %.4fs, want %.4fs ±10%%", got, want)
	}
	// Burstiness: the squared coefficient of variation of inter-arrival
	// times must exceed a Poisson process's (CV² = 1).
	var gaps []float64
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, times[i].Sub(times[i-1]).Seconds())
	}
	mean, varsum := 0.0, 0.0
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	for _, g := range gaps {
		varsum += (g - mean) * (g - mean)
	}
	cv2 := varsum / float64(len(gaps)) / (mean * mean)
	if cv2 <= 1.1 {
		t.Fatalf("bursty CV² = %.2f, want > 1.1 (burstier than Poisson)", cv2)
	}
}

func TestRampHitsMeanRate(t *testing.T) {
	// Sinusoid between Low and High averages (Low+High)/2 over whole
	// periods.
	src := &Ramp{Low: 5, High: 15, Period: 20 * sim.Second}
	times := collect(t, src, 3, 6000, sim.Millisecond)
	got := meanGap(times)
	want := 1 / 10.0
	if math.Abs(got-want)/want > 0.10 {
		t.Fatalf("ramp mean gap %.4fs, want %.4fs ±10%%", got, want)
	}
}

func TestClosedLoopSelfRegulates(t *testing.T) {
	// 4 clients, 1s mean think, 0.5s service: each client cycles every
	// ~1.5s, so ~2.67 req/s aggregate.
	src := &Closed{Clients: 4, Think: sim.Second}
	const service = 500 * sim.Millisecond
	eng := sim.NewEngine(4)
	var times []sim.Time
	inflight, peak := 0, 0
	src.Start(eng, eng.Rand("client"), 2000, func(id int) {
		times = append(times, eng.Now())
		inflight++
		if inflight > peak {
			peak = inflight
		}
		eng.After(service, func() {
			inflight--
			src.Completed(id)
		})
	})
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2000 {
		t.Fatalf("%d arrivals, want 2000", len(times))
	}
	if peak > 4 {
		t.Fatalf("closed loop exceeded client count: %d in flight", peak)
	}
	got := meanGap(times)
	want := 1.5 / 4 // cycle time / clients
	if math.Abs(got-want)/want > 0.10 {
		t.Fatalf("closed-loop mean gap %.4fs, want %.4fs ±10%%", got, want)
	}
}

func TestReplayIsExact(t *testing.T) {
	at := []sim.Duration{0, 100 * sim.Millisecond, 150 * sim.Millisecond, sim.Second}
	times := collect(t, &Replay{At: at}, 5, 4, sim.Millisecond)
	for i, want := range at {
		if got := times[i].Sub(0); got != want {
			t.Fatalf("replay[%d] at %v, want exactly %v", i, got, want)
		}
	}
	// Replay consumes no randomness: a different seed gives the same
	// arrival times.
	other := collect(t, &Replay{At: at}, 99, 4, sim.Millisecond)
	for i := range times {
		if times[i] != other[i] {
			t.Fatalf("replay depends on seed: %v vs %v", times[i], other[i])
		}
	}
}

func TestReplayCyclesBeyondTrace(t *testing.T) {
	at := []sim.Duration{0, 1 * sim.Second, 2 * sim.Second}
	times := collect(t, &Replay{At: at}, 5, 5, sim.Millisecond)
	// Cycle 1 repeats the trace with a period of span + mean gap (2s +
	// 1s), so the seam between cycles carries the trace's 1s gap.
	if times[3].Sub(0) != 3*sim.Second || times[4].Sub(0) != 4*sim.Second {
		t.Fatalf("cycled replay times %v", times)
	}
	if gap := times[3].Sub(times[2]); gap != sim.Second {
		t.Fatalf("seam gap %v, want the trace's 1s mean gap", gap)
	}
	// A single-offset trace repeats back to back at its offset.
	one := collect(t, &Replay{At: []sim.Duration{500 * sim.Millisecond}}, 5, 3, sim.Millisecond)
	for i, tm := range one {
		if tm.Sub(0) != 500*sim.Millisecond {
			t.Fatalf("single-offset replay[%d] at %v", i, tm.Sub(0))
		}
	}
}

func TestSourceParamValidation(t *testing.T) {
	// Degenerate parameters must fail loudly at Start, not hang the
	// simulation (e.g. a zero MeanDwell used to spin forever extending
	// the state timeline by zero-length dwells).
	bad := []Source{
		&Poisson{},
		&Bursty{Base: 4, Burst: 16}, // MeanDwell missing
		&Bursty{Burst: 16, MeanDwell: sim.Second},
		&Ramp{Low: 2, High: 1, Period: sim.Second},
		&Ramp{Low: 1, High: 2},
		&Closed{Clients: 4},
		&Closed{Think: sim.Second}, // Clients missing
	}
	for i, src := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("source %d (%s) accepted degenerate parameters", i, src.Name())
				}
			}()
			eng := sim.NewEngine(1)
			src.Start(eng, eng.Rand("client"), 1, func(int) {})
		}()
	}
}

func TestSourcesDeterministicPerSeed(t *testing.T) {
	mk := func() []Source {
		return []Source{
			&Poisson{Rate: 8},
			&Bursty{Base: 2, Burst: 20, MeanDwell: 2 * sim.Second},
			&Ramp{Low: 2, High: 10, Period: 10 * sim.Second},
			&Closed{Clients: 3, Think: sim.Second},
		}
	}
	a, b := mk(), mk()
	for i := range a {
		ta := collect(t, a[i], 7, 200, 100*sim.Millisecond)
		tb := collect(t, b[i], 7, 200, 100*sim.Millisecond)
		for j := range ta {
			if ta[j] != tb[j] {
				t.Fatalf("%s not deterministic at arrival %d: %v vs %v",
					a[i].Name(), j, ta[j], tb[j])
			}
		}
		// And a different seed perturbs the sequence.
		tc := collect(t, mk()[i], 8, 200, 100*sim.Millisecond)
		same := true
		for j := range ta {
			if ta[j] != tc[j] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s ignores the seed", a[i].Name())
		}
	}
}

func TestMeterStatsAndSLO(t *testing.T) {
	m := NewMeter(100 * sim.Millisecond)
	// 10 requests back to back; latencies 10ms..190ms in 20ms steps: 5
	// meet the 100ms SLO, 5 violate it.
	for i := 0; i < 10; i++ {
		m.Submitted(i, sim.Time(i)*sim.Time(sim.Millisecond))
	}
	if m.InFlight() != 10 {
		t.Fatalf("in flight = %d", m.InFlight())
	}
	for i := 0; i < 10; i++ {
		sub := sim.Time(i) * sim.Time(sim.Millisecond)
		lat := sim.Duration(10+20*i) * sim.Millisecond
		if got := m.Completed(i, sub.Add(lat)); got != lat {
			t.Fatalf("latency %v, want %v", got, lat)
		}
	}
	st := m.Stats()
	if st.Offered != 10 || st.Completed != 10 || m.InFlight() != 0 {
		t.Fatalf("counts: %+v", st)
	}
	if st.Violations != 5 || st.ViolationFrac != 0.5 {
		t.Fatalf("violations: %+v", st)
	}
	if st.Mean != 100*sim.Millisecond {
		t.Fatalf("mean = %v", st.Mean)
	}
	if st.Min != 10*sim.Millisecond || st.Max != 190*sim.Millisecond {
		t.Fatalf("extrema: %v / %v", st.Min, st.Max)
	}
	// Goodput counts only SLO-met completions over the same span.
	if st.Goodput >= st.Throughput || st.Goodput <= 0 {
		t.Fatalf("goodput %v vs throughput %v", st.Goodput, st.Throughput)
	}
	if st.MeetsSLO(0.4) || !st.MeetsSLO(0.5) {
		t.Fatalf("MeetsSLO budget logic wrong: frac %v", st.ViolationFrac)
	}
}

func TestMeterEmptyAndUnknownCompletion(t *testing.T) {
	m := NewMeter(0)
	st := m.Stats()
	if st.Completed != 0 || st.Throughput != 0 || !st.MeetsSLO(0) {
		t.Fatalf("empty meter stats %+v", st)
	}
	// Completing an unknown id records a zero-latency completion rather
	// than panicking.
	if lat := m.Completed(42, 100); lat != 0 {
		t.Fatalf("unknown completion latency %v", lat)
	}
	// SLO 0 disables violation accounting.
	m.Submitted(1, 0)
	m.Completed(1, sim.Time(sim.Second))
	if st := m.Stats(); st.Violations != 0 || st.Goodput != st.Throughput {
		t.Fatalf("SLO-disabled stats %+v", st)
	}
}

func TestMaxSustainable(t *testing.T) {
	pts := []LoadPoint{
		{Load: 0.25, Stats: MeterStats{ViolationFrac: 0}},
		{Load: 0.5, Stats: MeterStats{ViolationFrac: 0.05}},
		{Load: 1.0, Stats: MeterStats{ViolationFrac: 0.4}},
		{Load: 2.0, TimedOut: true},
	}
	if got, ok := MaxSustainable(pts, 0.1); !ok || got != 0.5 {
		t.Fatalf("knee = %v (ok %v), want 0.5", got, ok)
	}
	if got, ok := MaxSustainable(pts, 0); !ok || got != 0.25 {
		t.Fatalf("strict knee = %v (ok %v), want 0.25", got, ok)
	}
	if _, ok := MaxSustainable(pts[3:], 1); ok {
		t.Fatal("timed-out point must never sustain")
	}
	if _, ok := MaxSustainable(nil, 1); ok {
		t.Fatal("empty points must not sustain")
	}
}

func TestLimiterCapsAndFIFO(t *testing.T) {
	l := NewLimiter(2)
	var ran []int
	run := func(id int) func() { return func() { ran = append(ran, id) } }
	l.Admit(run(0))
	l.Admit(run(1))
	l.Admit(run(2)) // queued
	l.Admit(run(3)) // queued
	if l.InFlight() != 2 || l.Queued() != 2 {
		t.Fatalf("inflight %d queued %d", l.InFlight(), l.Queued())
	}
	if len(ran) != 2 {
		t.Fatalf("ran %v before any release", ran)
	}
	l.Done() // releases 0's slot, dispatches 2
	l.Done() // releases 1's slot, dispatches 3
	if len(ran) != 4 || ran[2] != 2 || ran[3] != 3 {
		t.Fatalf("dispatch order %v", ran)
	}
	l.Done()
	l.Done()
	if l.InFlight() != 0 || l.Queued() != 0 {
		t.Fatalf("not drained: inflight %d queued %d", l.InFlight(), l.Queued())
	}
	if l.Peak() != 2 || l.QueuedMax() != 2 {
		t.Fatalf("peak %d queuedMax %d", l.Peak(), l.QueuedMax())
	}
}

func TestLimiterDisabled(t *testing.T) {
	l := NewLimiter(0)
	n := 0
	for i := 0; i < 5; i++ {
		l.Admit(func() { n++ })
	}
	if n != 5 || l.InFlight() != 0 || l.Queued() != 0 {
		t.Fatalf("disabled limiter deferred work: n=%d", n)
	}
	l.Done() // must be a no-op
}

func TestMeterSnapshotDoesNotPerturb(t *testing.T) {
	// Drive two meters through the same request train; snapshot one of
	// them between every step. Final stats must be identical: Snapshot
	// is a pure read (the sketch is copied by value), so observing a
	// meter can never change what it reports.
	plain := NewMeter(100 * sim.Millisecond)
	snapped := NewMeter(100 * sim.Millisecond)
	for i := 0; i < 20; i++ {
		at := sim.Time(i) * sim.Time(sim.Millisecond)
		plain.Submitted(i, at)
		snapped.Submitted(i, at)
		snapped.Snapshot(at)
	}
	for i := 0; i < 20; i++ {
		sub := sim.Time(i) * sim.Time(sim.Millisecond)
		done := sub.Add(sim.Duration(10+13*i) * sim.Millisecond)
		plain.Completed(i, done)
		snapped.Completed(i, done)
		snap := snapped.Snapshot(done)
		if snap.Completed != i+1 || snap.At != done {
			t.Fatalf("snapshot %d: %+v", i, snap)
		}
	}
	if plain.Stats() != snapped.Stats() {
		t.Fatalf("snapshots perturbed the meter:\nplain   %+v\nsnapped %+v",
			plain.Stats(), snapped.Stats())
	}
	// The snapshot's sketch is a value copy: quantiles diffed between
	// two snapshots cover exactly the interleaved completions.
	a := snapped.Snapshot(0)
	snapped.Submitted(100, 0)
	snapped.Completed(100, sim.Time(500*sim.Millisecond))
	b := snapped.Snapshot(sim.Time(500 * sim.Millisecond))
	if q := b.Sketch.QuantileSince(&a.Sketch, 0.5); q < 400*sim.Millisecond {
		t.Fatalf("windowed quantile %v does not reflect the 500ms completion", q)
	}
}

func TestLimiterAdmissionCounters(t *testing.T) {
	l := NewLimiter(2)
	for i := 0; i < 5; i++ {
		l.Admit(func() {})
	}
	// 2 admitted immediately, 3 delayed behind the cap.
	if l.Admitted() != 2 || l.Delayed() != 3 {
		t.Fatalf("admitted %d delayed %d", l.Admitted(), l.Delayed())
	}
	for i := 0; i < 5; i++ {
		l.Done()
	}
	// FIFO queueing drops nothing: every delayed admission eventually
	// runs, so admitted catches up to the full train.
	if l.Admitted() != 5 || l.Delayed() != 3 {
		t.Fatalf("after drain: admitted %d delayed %d", l.Admitted(), l.Delayed())
	}

	// A disabled limiter admits everything and delays nothing.
	free := NewLimiter(0)
	for i := 0; i < 4; i++ {
		free.Admit(func() {})
	}
	if free.Admitted() != 4 || free.Delayed() != 0 {
		t.Fatalf("disabled: admitted %d delayed %d", free.Admitted(), free.Delayed())
	}
}
