package load

import "repro/internal/sim"

// RetryPolicy describes the client edge's resilience behaviour for one
// request class: a per-attempt deadline, capped exponential backoff
// between attempts, an optional token-bucket budget that bounds the
// fleet-wide retry amplification, and an optional hedging delay after
// which a second copy of a slow first attempt is issued. The zero value
// disables everything: no timeouts, no retries, no hedging — exactly
// the pre-fault cluster behaviour.
type RetryPolicy struct {
	// Timeout is the per-attempt deadline. An attempt that has not
	// replied within Timeout of its dispatch is abandoned (and, policy
	// permitting, retried). Zero disables deadlines — and with them
	// retries, since only failures and timeouts trigger retry.
	Timeout sim.Duration
	// MaxAttempts caps total attempts per request, counting the first.
	// Zero or negative means unlimited attempts (the naive policy that
	// sustains metastable collapse). One means fail-fast: no retries.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further
	// retry doubles it, capped at MaxBackoff. Zero retries immediately.
	BaseBackoff sim.Duration
	// MaxBackoff caps the exponential growth. Zero means no cap.
	MaxBackoff sim.Duration
	// Budget, when non-nil, is consulted before every retry: if the
	// bucket is empty the request fails instead of retrying. Budgets
	// are the lever that turns a retry storm back into load shedding.
	Budget *RetryBudget
	// HedgeDelay, when positive, issues a second copy of the request if
	// the first attempt has not replied within HedgeDelay; the first
	// reply wins and the loser is cancelled. Only the first attempt is
	// hedged, so hedging at most doubles offered load.
	HedgeDelay sim.Duration
	// Quantum, when positive, rounds every backoff up to a positive
	// multiple of it. Simulations that keep all their durations on a
	// shared quantum grid (so that per-request timeline phases survive
	// every hop — see the sharded determinism notes in sim/pdes) set it
	// to that grid; zero keeps the continuous jittered schedule.
	Quantum sim.Duration
}

// Enabled reports whether the policy does anything at all. A disabled
// policy keeps the cluster's client edge on its original zero-overhead
// path.
func (p RetryPolicy) Enabled() bool {
	return p.Timeout > 0 || p.HedgeDelay > 0
}

// Backoff returns the delay before retry number retry (1-based: the
// delay between the first failure and the second attempt is
// Backoff(1, …)). The schedule is capped exponential with full jitter
// drawn from rng — pass a labelled sim.Rand stream so the draw order,
// and with it the whole simulation, stays deterministic.
func (p RetryPolicy) Backoff(retry int, rng *sim.Rand) sim.Duration {
	if p.BaseBackoff <= 0 {
		return 0
	}
	d := p.BaseBackoff
	for i := 1; i < retry; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	// Full jitter: uniform in (0, d]. Sleeping a strictly positive
	// span keeps retry instants off other events' instants.
	j := sim.Duration(float64(d) * rng.Float64())
	if p.Quantum > 0 {
		return (d-j)/p.Quantum*p.Quantum + p.Quantum
	}
	return d - j + 1
}

// RetryBudget is a token-bucket retry budget in the Finagle tradition:
// every original request deposits Ratio tokens, every retry withdraws
// one. While the fleet is healthy the bucket stays full and retries
// flow freely; when failures outpace Ratio× the offered load the
// bucket drains and further retries are dropped, bounding the
// amplification a dying node can induce to (1+Ratio)×.
type RetryBudget struct {
	ratio  float64
	cap    float64
	tokens float64
	// withdrawn and exhausted count successful withdrawals and refused
	// ones, for reporting.
	withdrawn int
	exhausted int
}

// NewRetryBudget returns a budget allowing ratio retries per original
// request, with a burst allowance of burst tokens (also the initial
// fill, so cold starts can retry immediately). A non-positive burst
// defaults to 10 tokens.
func NewRetryBudget(ratio float64, burst float64) *RetryBudget {
	if burst <= 0 {
		burst = 10
	}
	return &RetryBudget{ratio: ratio, cap: burst, tokens: burst}
}

// Deposit credits the budget for one original (non-retry) request.
func (b *RetryBudget) Deposit() {
	b.tokens += b.ratio
	if b.tokens > b.cap {
		b.tokens = b.cap
	}
}

// Withdraw takes one token if available and reports whether the caller
// may retry. A refused withdrawal means the retry must be converted
// into a failure.
func (b *RetryBudget) Withdraw() bool {
	if b.tokens >= 1 {
		b.tokens--
		b.withdrawn++
		return true
	}
	b.exhausted++
	return false
}

// Tokens returns the current token balance.
func (b *RetryBudget) Tokens() float64 { return b.tokens }

// Withdrawn counts retries the budget allowed.
func (b *RetryBudget) Withdrawn() int { return b.withdrawn }

// Exhausted counts retries the budget refused.
func (b *RetryBudget) Exhausted() int { return b.exhausted }
