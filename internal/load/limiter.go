package load

// Limiter is an optional admission/concurrency-limit stage between a
// Source and a served workload: at most Limit requests run at once;
// excess admissions queue FIFO and dispatch as completions free slots.
// It is purely event-driven — admissions run synchronously at the
// simulated instant a slot is available — so placing it in front of a
// workload never perturbs engine determinism.
type Limiter struct {
	limit    int
	inflight int
	queue    []func()
	// peak tracks the high-water mark of concurrently running
	// admissions, for tests and reporting.
	peak int
	// queuedMax tracks the deepest the backlog got.
	queuedMax int
	// admitted counts admissions that ran (immediately or after
	// queueing); delayed counts the subset that had to queue first.
	admitted int
	delayed  int
}

// NewLimiter returns a limiter admitting at most limit concurrent
// requests. A non-positive limit disables limiting: every admission
// runs immediately.
func NewLimiter(limit int) *Limiter {
	return &Limiter{limit: limit}
}

// Admit runs fn now if a slot is free (or limiting is disabled),
// otherwise queues it behind earlier waiters.
func (l *Limiter) Admit(fn func()) {
	if l.limit <= 0 {
		l.admitted++
		fn()
		return
	}
	if l.inflight < l.limit {
		l.inflight++
		if l.inflight > l.peak {
			l.peak = l.inflight
		}
		l.admitted++
		fn()
		return
	}
	l.queue = append(l.queue, fn)
	l.delayed++
	if len(l.queue) > l.queuedMax {
		l.queuedMax = len(l.queue)
	}
}

// Done releases one slot and dispatches the oldest queued admission, if
// any. Call it exactly once per completed admission.
func (l *Limiter) Done() {
	if l.limit <= 0 {
		return
	}
	if len(l.queue) > 0 {
		next := l.queue[0]
		l.queue = l.queue[1:]
		l.admitted++
		next()
		return
	}
	if l.inflight > 0 {
		l.inflight--
	}
}

// InFlight returns the number of currently admitted requests.
func (l *Limiter) InFlight() int { return l.inflight }

// Queued returns the current backlog depth.
func (l *Limiter) Queued() int { return len(l.queue) }

// Peak returns the high-water mark of concurrent admissions.
func (l *Limiter) Peak() int { return l.peak }

// QueuedMax returns the deepest the backlog got.
func (l *Limiter) QueuedMax() int { return l.queuedMax }

// Admitted counts admissions that have run so far — immediately or
// after waiting in the backlog.
func (l *Limiter) Admitted() int { return l.admitted }

// Delayed counts admissions that could not run immediately and had to
// queue (the limiter's "rejection" signal: with FIFO queueing nothing
// is dropped, it is delayed instead).
func (l *Limiter) Delayed() int { return l.delayed }
