package load

// Limiter is an optional admission/concurrency-limit stage between a
// Source and a served workload: at most Limit requests run at once;
// excess admissions queue FIFO and dispatch as completions free slots.
// The backlog can itself be bounded (NewBoundedLimiter): admissions
// arriving with the queue full are shed — refused outright rather than
// queued — which is the admission-control half of metastable-collapse
// avoidance. It is purely event-driven — admissions run synchronously
// at the simulated instant a slot is available — so placing it in
// front of a workload never perturbs engine determinism.
type Limiter struct {
	limit int
	// queueCap bounds the backlog; non-positive means unbounded (the
	// pre-bounding behaviour).
	queueCap int
	inflight int
	queue    []func()
	// peak tracks the high-water mark of concurrently running
	// admissions, for tests and reporting.
	peak int
	// queuedMax tracks the deepest the backlog got.
	queuedMax int
	// admitted counts admissions that ran (immediately or after
	// queueing); delayed counts the subset that had to queue first;
	// shed counts admissions refused because the backlog was full.
	admitted int
	delayed  int
	shed     int
}

// NewLimiter returns a limiter admitting at most limit concurrent
// requests, with an unbounded backlog. A non-positive limit disables
// limiting: every admission runs immediately.
func NewLimiter(limit int) *Limiter {
	return &Limiter{limit: limit}
}

// NewBoundedLimiter returns a limiter admitting at most limit
// concurrent requests and queueing at most queueCap more; admissions
// beyond that are shed (Admit returns false and fn never runs). A
// non-positive queueCap leaves the backlog unbounded.
func NewBoundedLimiter(limit, queueCap int) *Limiter {
	return &Limiter{limit: limit, queueCap: queueCap}
}

// Admit runs fn now if a slot is free (or limiting is disabled),
// otherwise queues it behind earlier waiters. It reports whether fn was
// accepted: false means the backlog was full and fn was shed — it will
// never run, and the caller must fail the request.
func (l *Limiter) Admit(fn func()) bool {
	if l.limit <= 0 {
		l.admitted++
		fn()
		return true
	}
	if l.inflight < l.limit {
		l.inflight++
		if l.inflight > l.peak {
			l.peak = l.inflight
		}
		l.admitted++
		fn()
		return true
	}
	if l.queueCap > 0 && len(l.queue) >= l.queueCap {
		l.shed++
		return false
	}
	l.queue = append(l.queue, fn)
	l.delayed++
	if len(l.queue) > l.queuedMax {
		l.queuedMax = len(l.queue)
	}
	return true
}

// Done releases one slot and dispatches the oldest queued admission, if
// any. Call it exactly once per completed admission.
func (l *Limiter) Done() {
	if l.limit <= 0 {
		return
	}
	if len(l.queue) > 0 {
		next := l.queue[0]
		l.queue = l.queue[1:]
		l.admitted++
		next()
		return
	}
	if l.inflight > 0 {
		l.inflight--
	}
}

// Reset discards the backlog and zeroes the in-flight count, leaving
// the cumulative counters (admitted, delayed, shed, peaks) intact.
// Queued admissions are dropped without running and are added to the
// shed count. Used when the stage behind the limiter crashes: its
// queued work can never be served.
func (l *Limiter) Reset() {
	l.shed += len(l.queue)
	l.queue = nil
	l.inflight = 0
}

// InFlight returns the number of currently admitted requests.
func (l *Limiter) InFlight() int { return l.inflight }

// Queued returns the current backlog depth.
func (l *Limiter) Queued() int { return len(l.queue) }

// QueueCap returns the backlog bound (non-positive = unbounded).
func (l *Limiter) QueueCap() int { return l.queueCap }

// Peak returns the high-water mark of concurrent admissions.
func (l *Limiter) Peak() int { return l.peak }

// QueuedMax returns the deepest the backlog got.
func (l *Limiter) QueuedMax() int { return l.queuedMax }

// Admitted counts admissions that have run so far — immediately or
// after waiting in the backlog.
func (l *Limiter) Admitted() int { return l.admitted }

// Delayed counts admissions that could not run immediately and had to
// queue (the limiter's soft "rejection" signal: queued work is delayed,
// not dropped).
func (l *Limiter) Delayed() int { return l.delayed }

// Shed counts admissions refused because the bounded backlog was full,
// plus queued admissions discarded by Reset. Shed work never runs.
func (l *Limiter) Shed() int { return l.shed }
