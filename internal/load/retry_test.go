package load

import (
	"testing"

	"repro/internal/sim"
)

func TestRetryPolicyZeroValueDisabled(t *testing.T) {
	var p RetryPolicy
	if p.Enabled() {
		t.Fatal("zero policy reports enabled")
	}
	eng := sim.NewEngine(1)
	if d := p.Backoff(1, eng.Rand("t")); d != 0 {
		t.Fatalf("zero policy backoff %v, want 0", d)
	}
}

func TestBackoffCappedExponentialWithJitter(t *testing.T) {
	p := RetryPolicy{
		Timeout:     100 * sim.Millisecond,
		BaseBackoff: 10 * sim.Millisecond,
		MaxBackoff:  80 * sim.Millisecond,
	}
	if !p.Enabled() {
		t.Fatal("timeout-bearing policy reports disabled")
	}
	eng := sim.NewEngine(7)
	rng := eng.Rand("t")
	for retry := 1; retry <= 8; retry++ {
		ceiling := p.BaseBackoff << (retry - 1)
		if ceiling > p.MaxBackoff {
			ceiling = p.MaxBackoff
		}
		for i := 0; i < 200; i++ {
			d := p.Backoff(retry, rng)
			if d <= 0 {
				t.Fatalf("retry %d: non-positive backoff %v", retry, d)
			}
			if d > ceiling+1 {
				t.Fatalf("retry %d: backoff %v above ceiling %v", retry, d, ceiling)
			}
		}
	}
}

func TestBackoffQuantumAligned(t *testing.T) {
	const q = sim.Duration(1 << 12)
	p := RetryPolicy{BaseBackoff: 64 * q, MaxBackoff: 512 * q, Quantum: q}
	eng := sim.NewEngine(11)
	rng := eng.Rand("t")
	for retry := 1; retry <= 6; retry++ {
		for i := 0; i < 200; i++ {
			d := p.Backoff(retry, rng)
			if d <= 0 || d%q != 0 {
				t.Fatalf("retry %d: backoff %v not a positive multiple of quantum %v", retry, d, q)
			}
			if d > 512*q+q {
				t.Fatalf("retry %d: backoff %v above quantised cap", retry, d)
			}
		}
	}
}

func TestBackoffDeterministicPerStream(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 5 * sim.Millisecond, MaxBackoff: 40 * sim.Millisecond}
	draw := func() []sim.Duration {
		eng := sim.NewEngine(3)
		rng := eng.Rand("retry")
		var ds []sim.Duration
		for retry := 1; retry <= 32; retry++ {
			ds = append(ds, p.Backoff(retry, rng))
		}
		return ds
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %v vs %v across identical streams", i, a[i], b[i])
		}
	}
}

func TestRetryBudgetTokenBucket(t *testing.T) {
	b := NewRetryBudget(0.5, 2)
	if got := b.Tokens(); got != 2 {
		t.Fatalf("initial tokens %v, want burst 2", got)
	}
	if !b.Withdraw() || !b.Withdraw() {
		t.Fatal("burst tokens refused")
	}
	if b.Withdraw() {
		t.Fatal("empty bucket allowed a retry")
	}
	if b.Exhausted() != 1 || b.Withdrawn() != 2 {
		t.Fatalf("counters withdrawn=%d exhausted=%d, want 2/1", b.Withdrawn(), b.Exhausted())
	}
	// Two originals deposit 2×0.5 = 1 token: exactly one more retry.
	b.Deposit()
	b.Deposit()
	if !b.Withdraw() {
		t.Fatal("deposited token refused")
	}
	if b.Withdraw() {
		t.Fatal("bucket overdrawn")
	}
	// Deposits clamp at the burst cap.
	for i := 0; i < 100; i++ {
		b.Deposit()
	}
	if got := b.Tokens(); got != 2 {
		t.Fatalf("tokens %v after flood, want cap 2", got)
	}
}

func TestRetryBudgetDefaultBurst(t *testing.T) {
	b := NewRetryBudget(0.1, 0)
	if got := b.Tokens(); got != 10 {
		t.Fatalf("default burst %v, want 10", got)
	}
}

func TestBoundedLimiterShedsWhenFull(t *testing.T) {
	l := NewBoundedLimiter(1, 2)
	var ran []int
	admit := func(id int) bool {
		return l.Admit(func() { ran = append(ran, id) })
	}
	if !admit(0) {
		t.Fatal("first admission refused")
	}
	if !admit(1) || !admit(2) {
		t.Fatal("queueable admissions refused")
	}
	if admit(3) {
		t.Fatal("full backlog accepted a fourth admission")
	}
	if l.Shed() != 1 || l.Queued() != 2 || l.QueueCap() != 2 {
		t.Fatalf("shed=%d queued=%d cap=%d, want 1/2/2", l.Shed(), l.Queued(), l.QueueCap())
	}
	// Slots freeing drain the backlog FIFO; the shed admission never runs.
	l.Done()
	l.Done()
	l.Done()
	if len(ran) != 3 || ran[0] != 0 || ran[1] != 1 || ran[2] != 2 {
		t.Fatalf("ran %v, want [0 1 2]", ran)
	}
}

func TestBoundedLimiterResetShedsBacklog(t *testing.T) {
	l := NewBoundedLimiter(1, 4)
	run := 0
	for i := 0; i < 4; i++ {
		l.Admit(func() { run++ })
	}
	if run != 1 || l.Queued() != 3 {
		t.Fatalf("run=%d queued=%d before reset, want 1/3", run, l.Queued())
	}
	l.Reset()
	if l.Shed() != 3 || l.Queued() != 0 || l.InFlight() != 0 {
		t.Fatalf("shed=%d queued=%d inflight=%d after reset, want 3/0/0",
			l.Shed(), l.Queued(), l.InFlight())
	}
	// The dropped admissions must never run, even as later work completes.
	l.Done()
	if run != 1 {
		t.Fatalf("reset backlog ran anyway: run=%d", run)
	}
}

func TestPhasedPoissonArrivalsCarryUniquePhases(t *testing.T) {
	const q = sim.Duration(1 << 10)
	times := collect(t, &PhasedPoisson{Rate: 5000, Quantum: q}, 9, 500, sim.Millisecond)
	for i, at := range times {
		if got := sim.Duration(at) % q; got != sim.Duration(i+1) {
			t.Fatalf("arrival %d at %v: phase %v, want %v", i, at, got, sim.Duration(i+1))
		}
		if i > 0 && at <= times[i-1] {
			t.Fatalf("arrival %d at %v not after %v", i, at, times[i-1])
		}
	}
	// Same seed, same timeline.
	again := collect(t, &PhasedPoisson{Rate: 5000, Quantum: q}, 9, 500, sim.Millisecond)
	for i := range times {
		if times[i] != again[i] {
			t.Fatalf("arrival %d differs across identical runs: %v vs %v", i, times[i], again[i])
		}
	}
}

func TestPhasedPoissonValidation(t *testing.T) {
	bad := []struct {
		name string
		src  *PhasedPoisson
		n    int
	}{
		{"zero rate", &PhasedPoisson{Quantum: 1024}, 1},
		{"zero quantum", &PhasedPoisson{Rate: 10}, 1},
		{"phase space exhausted", &PhasedPoisson{Rate: 10, Quantum: 16}, 16},
	}
	for _, tc := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s accepted", tc.name)
				}
			}()
			eng := sim.NewEngine(1)
			tc.src.Start(eng, eng.Rand("client"), tc.n, func(int) {})
		}()
	}
}
