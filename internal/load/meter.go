package load

import (
	"sort"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Meter does streaming latency accounting for a served workload:
// submissions and completions are recorded as they happen, latencies
// feed a fixed-memory quantile sketch (metrics.Sketch), and completions
// are judged against an optional SLO. Nothing is retained per request
// beyond the in-flight submission times, so the meter scales to
// arbitrarily long runs.
type Meter struct {
	// SLO is the latency objective; completions above it count as
	// violations. Zero disables SLO accounting (goodput == throughput).
	SLO sim.Duration

	sketch       metrics.Sketch
	inflight     map[int]sim.Time
	submitted    int
	completed    int
	failed       int
	violations   int
	firstSubmit  sim.Time
	lastComplete sim.Time
}

// NewMeter returns a meter judging completions against slo (0 = none).
func NewMeter(slo sim.Duration) *Meter {
	return &Meter{SLO: slo, inflight: make(map[int]sim.Time)}
}

// Submitted records the arrival of request id at time t.
func (m *Meter) Submitted(id int, t sim.Time) {
	if m.submitted == 0 || t < m.firstSubmit {
		m.firstSubmit = t
	}
	m.submitted++
	m.inflight[id] = t
}

// Completed records the completion of request id at time t and returns
// its latency. Completing an id that was never submitted records a
// zero-latency completion.
func (m *Meter) Completed(id int, t sim.Time) sim.Duration {
	start, ok := m.inflight[id]
	if !ok {
		start = t
	}
	delete(m.inflight, id)
	lat := t.Sub(start)
	m.sketch.Add(lat)
	m.completed++
	if m.SLO > 0 && lat > m.SLO {
		m.violations++
	}
	if t > m.lastComplete {
		m.lastComplete = t
	}
	return lat
}

// Failed records that request id will never complete (node crash,
// deadline exceeded, retry budget exhausted, shed). The request leaves
// the in-flight set and counts as failed; no latency sample is
// recorded, so percentiles and goodput describe served work only.
// Failing an id that was never submitted (or already resolved) is a
// no-op.
func (m *Meter) Failed(id int, t sim.Time) {
	_ = t
	if _, ok := m.inflight[id]; !ok {
		return
	}
	delete(m.inflight, id)
	m.failed++
}

// FailAll fails every in-flight request at time t, in ascending id
// order so the operation is deterministic. Used when a run is abandoned
// at its horizon: the meter ends in a well-defined state instead of
// carrying phantom in-flight entries.
func (m *Meter) FailAll(t sim.Time) {
	if len(m.inflight) == 0 {
		return
	}
	ids := make([]int, 0, len(m.inflight))
	for id := range m.inflight { //lint:allow maprange(keys sorted below before any effect escapes)
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		m.Failed(id, t)
	}
}

// InFlight returns the number of submitted-but-uncompleted requests.
func (m *Meter) InFlight() int { return len(m.inflight) }

// FailedCount returns how many requests were recorded as failed.
func (m *Meter) FailedCount() int { return m.failed }

// MeterSnapshot is a cheap point-in-time view of a Meter for scrapers:
// plain counter copies plus a value copy of the streaming sketch, so a
// later snapshot can be diffed against it for windowed statistics
// (Sketch.QuantileSince) without the meter retaining any history.
type MeterSnapshot struct {
	// At is the simulated instant the snapshot was taken.
	At sim.Time
	// InFlight, Submitted, Completed, and Violations copy the meter's
	// counters at At.
	InFlight, Submitted, Completed, Violations int
	// Sketch is a value copy of the streaming latency sketch.
	Sketch metrics.Sketch
}

// Snapshot copies the meter's state at simulated time at. It only reads
// the meter — taking snapshots at any cadence leaves the streaming
// statistics byte-identical — and the cost is a fixed-size copy
// (the sketch's bucket array), independent of how much the meter has
// recorded.
func (m *Meter) Snapshot(at sim.Time) MeterSnapshot {
	return MeterSnapshot{
		At:         at,
		InFlight:   len(m.inflight),
		Submitted:  m.submitted,
		Completed:  m.completed,
		Violations: m.violations,
		Sketch:     m.sketch,
	}
}

// MergeInto merges the meter's latency sketch into dst, so several
// meters' populations can be aggregated (cluster-wide percentiles
// across per-node meters) without retaining any samples.
func (m *Meter) MergeInto(dst *metrics.Sketch) { dst.Merge(&m.sketch) }

// MeterStats is a snapshot of a Meter: streaming tail-latency
// percentiles plus SLO-relative goodput accounting.
type MeterStats struct {
	// Offered and Completed count submissions and completions; Failed
	// counts requests recorded as never completing (crashes, exceeded
	// deadlines, shed work).
	Offered, Completed, Failed int
	// Latency percentiles from the quantile sketch (within 1% of the
	// exact order statistics) plus the exact mean and extrema.
	Mean, P50, P95, P99, P999 sim.Duration
	Min, Max                  sim.Duration
	// SLO echoes the objective; Violations counts completions above it
	// and ViolationFrac is their fraction of all completions.
	SLO           sim.Duration
	Violations    int
	ViolationFrac float64
	// Throughput is completions per second between the first submission
	// and the last completion; Goodput counts only SLO-met completions.
	Throughput float64
	Goodput    float64
}

// Stats snapshots the meter.
func (m *Meter) Stats() MeterStats {
	st := MeterStats{
		Offered:    m.submitted,
		Completed:  m.completed,
		Failed:     m.failed,
		SLO:        m.SLO,
		Violations: m.violations,
		Mean:       m.sketch.Mean(),
		P50:        m.sketch.Quantile(0.5),
		P95:        m.sketch.Quantile(0.95),
		P99:        m.sketch.Quantile(0.99),
		P999:       m.sketch.Quantile(0.999),
		Min:        m.sketch.Min(),
		Max:        m.sketch.Max(),
	}
	if m.completed > 0 {
		st.ViolationFrac = float64(m.violations) / float64(m.completed)
		if span := m.lastComplete.Sub(m.firstSubmit); span > 0 {
			st.Throughput = float64(m.completed) / span.Seconds()
			st.Goodput = float64(m.completed-m.violations) / span.Seconds()
		}
	}
	return st
}

// MeetsSLO reports whether the measured violation fraction is within
// the tolerated budget (e.g. 0.01 allows 1% of completions over the
// objective). A meter with no completions vacuously meets the SLO.
func (st MeterStats) MeetsSLO(budget float64) bool {
	return st.ViolationFrac <= budget
}

// LoadPoint pairs one offered load with its measured stats, for
// max-sustainable-load detection across a sweep.
type LoadPoint struct {
	// Load is the offered load (req/s, multiplier — any monotone axis).
	Load float64
	// Stats is the measurement at that load.
	Stats MeterStats
	// TimedOut marks runs that hit their horizon; they never sustain.
	TimedOut bool
}

// MaxSustainable scans load points (in increasing-load order) and
// returns the highest load that completed within its horizon and kept
// the SLO violation fraction within budget — the knee of the
// throughput-vs-tail-latency curve. ok is false when no point
// qualifies.
func MaxSustainable(points []LoadPoint, budget float64) (load float64, ok bool) {
	for _, p := range points {
		if p.TimedOut || !p.Stats.MeetsSLO(budget) {
			continue
		}
		if !ok || p.Load > load {
			load, ok = p.Load, true
		}
	}
	return load, ok
}
