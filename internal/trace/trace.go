// Package trace records scheduling events from a simulation and exports
// them as Chrome trace-event JSON (load chrome://tracing or Perfetto), the
// tool a scheduler developer reaches for when a policy misbehaves. Events
// carry the virtual timestamp, the core, and the thread, so a SCHED_COOP
// decision trace can be compared side by side with the kernel baseline.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	KindRunStart Kind = iota // thread became current on a core
	KindRunEnd               // thread left a core
	KindWake                 // thread became runnable
	KindBlock                // thread blocked
	KindCustom               // user annotation
)

func (k Kind) String() string {
	switch k {
	case KindRunStart:
		return "run-start"
	case KindRunEnd:
		return "run-end"
	case KindWake:
		return "wake"
	case KindBlock:
		return "block"
	}
	return "custom"
}

// Event is one trace record.
type Event struct {
	At     sim.Time
	Kind   Kind
	Core   int
	Thread string
	TID    int
	Label  string
	// Class is the scheduling class the thread ran under ("fair",
	// "rr", ...), so traces from different kernel schedulers can be
	// told apart side by side.
	Class string
}

// Buffer is a bounded event recorder. When full, the oldest events are
// dropped (a flight-recorder ring).
type Buffer struct {
	cap    int
	events []Event
	start  int
	// Dropped counts events discarded due to capacity.
	Dropped int64
}

// NewBuffer returns a recorder holding up to capacity events (0 means an
// unbounded buffer).
func NewBuffer(capacity int) *Buffer {
	return &Buffer{cap: capacity}
}

// Add records an event.
func (b *Buffer) Add(e Event) {
	if b.cap > 0 && len(b.events) == b.cap {
		b.events[b.start] = e
		b.start = (b.start + 1) % b.cap
		b.Dropped++
		return
	}
	b.events = append(b.events, e)
}

// Len reports the number of retained events.
func (b *Buffer) Len() int { return len(b.events) }

// Events returns the retained events in chronological order.
func (b *Buffer) Events() []Event {
	out := make([]Event, 0, len(b.events))
	for i := 0; i < len(b.events); i++ {
		out = append(out, b.events[(b.start+i)%max(len(b.events), 1)])
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// chromeEvent is the Chrome trace-event JSON schema (subset).
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`  // microseconds
	PID   int            `json:"pid"` // we use: core
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the buffer as a Chrome trace-event array.
// run-start/run-end pairs become duration slices on per-core tracks;
// wake/block become instant events.
func (b *Buffer) WriteChromeTrace(w io.Writer) error {
	var out []chromeEvent
	for _, e := range b.Events() {
		ce := chromeEvent{
			Name: e.Thread,
			TS:   float64(e.At) / 1000.0,
			PID:  e.Core,
			TID:  e.TID,
		}
		switch e.Kind {
		case KindRunStart:
			ce.Phase = "B"
			if e.Class != "" {
				ce.Args = map[string]any{"class": e.Class}
			}
		case KindRunEnd:
			ce.Phase = "E"
		default:
			ce.Phase = "i"
			ce.Name = fmt.Sprintf("%s:%s", e.Kind, e.Thread)
			if e.Label != "" || e.Class != "" {
				ce.Args = map[string]any{}
				if e.Label != "" {
					ce.Args["label"] = e.Label
				}
				if e.Class != "" {
					ce.Args["class"] = e.Class
				}
			}
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
