package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

func TestBufferUnbounded(t *testing.T) {
	b := NewBuffer(0)
	for i := 0; i < 100; i++ {
		b.Add(Event{At: sim.Time(i)})
	}
	if b.Len() != 100 || b.Dropped != 0 {
		t.Fatalf("len=%d dropped=%d", b.Len(), b.Dropped)
	}
	evs := b.Events()
	for i := range evs {
		if evs[i].At != sim.Time(i) {
			t.Fatalf("order broken at %d", i)
		}
	}
}

func TestBufferRingDropsOldest(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 10; i++ {
		b.Add(Event{At: sim.Time(i)})
	}
	if b.Len() != 4 || b.Dropped != 6 {
		t.Fatalf("len=%d dropped=%d", b.Len(), b.Dropped)
	}
	evs := b.Events()
	if evs[0].At != 6 || evs[3].At != 9 {
		t.Fatalf("ring contents %v", evs)
	}
}

func TestBufferWraparoundBoundary(t *testing.T) {
	// Exactly at capacity: the ring is full but nothing is dropped yet.
	b := NewBuffer(4)
	for i := 0; i < 4; i++ {
		b.Add(Event{At: sim.Time(i)})
	}
	if b.Len() != 4 || b.Dropped != 0 {
		t.Fatalf("at capacity: len=%d dropped=%d", b.Len(), b.Dropped)
	}
	evs := b.Events()
	if evs[0].At != 0 || evs[3].At != 3 {
		t.Fatalf("at capacity contents %v", evs)
	}
	// One past capacity: exactly the oldest is dropped, order preserved.
	b.Add(Event{At: 4})
	if b.Len() != 4 || b.Dropped != 1 {
		t.Fatalf("past capacity: len=%d dropped=%d", b.Len(), b.Dropped)
	}
	evs = b.Events()
	for i := range evs {
		if evs[i].At != sim.Time(i+1) {
			t.Fatalf("post-wrap order broken: %v", evs)
		}
	}
	// Several full revolutions: drop accounting keeps counting, and the
	// surviving window is always the newest cap events in order.
	for i := 5; i < 103; i++ {
		b.Add(Event{At: sim.Time(i)})
	}
	if b.Len() != 4 || b.Dropped != 99 {
		t.Fatalf("revolved: len=%d dropped=%d", b.Len(), b.Dropped)
	}
	evs = b.Events()
	for i := range evs {
		if evs[i].At != sim.Time(99+i) {
			t.Fatalf("revolved window wrong: %v", evs)
		}
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindRunStart, "run-start"},
		{KindRunEnd, "run-end"},
		{KindWake, "wake"},
		{KindBlock, "block"},
		{KindCustom, "custom"},
		// Out-of-range kinds fall back to the custom label rather than
		// panicking or printing a bare integer.
		{Kind(99), "custom"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(tt.k), got, tt.want)
		}
	}
}

func TestChromeTraceJSON(t *testing.T) {
	b := NewBuffer(0)
	b.Add(Event{At: 1000, Kind: KindRunStart, Core: 2, Thread: "w", TID: 7})
	b.Add(Event{At: 3000, Kind: KindRunEnd, Core: 2, Thread: "w", TID: 7})
	b.Add(Event{At: 4000, Kind: KindWake, Core: 2, Thread: "x", TID: 8})
	var buf bytes.Buffer
	if err := b.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != 3 {
		t.Fatalf("events = %d", len(out))
	}
	if out[0]["ph"] != "B" || out[1]["ph"] != "E" || out[2]["ph"] != "i" {
		t.Fatalf("phases wrong: %v", out)
	}
	if out[0]["ts"].(float64) != 1.0 {
		t.Fatalf("ts = %v, want µs", out[0]["ts"])
	}
}
