package lint

import (
	"go/importer"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The testdata runner mirrors x/tools' analysistest: each testdata
// package is parsed and type-checked, one analyzer runs over it, and
// every diagnostic must be claimed by a `// want` comment with a
// backquoted regexp on the same line (and vice versa).

// detPath is the deterministic-core import path testdata packages are
// checked under; hostPath is a host-side path outside the contract.
const (
	detPath  = "repro/internal/kernel"
	hostPath = "repro/cmd/uschedsim"
)

func loadTestdata(t *testing.T, dir, pkgPath string) *Package {
	t.Helper()
	names, err := filepath.Glob(filepath.Join("testdata", dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no testdata files in %s: %v", dir, err)
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, err := typeCheck(fset, imp, pkgPath, "", names)
	if err != nil {
		t.Fatalf("type-checking testdata/%s: %v", dir, err)
	}
	return pkg
}

// wantExpectation is one unclaimed `// want` regexp.
type wantExpectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	claimed bool
}

var wantPattern = regexp.MustCompile("`([^`]+)`")

func parseWants(t *testing.T, files []string) []*wantExpectation {
	t.Helper()
	var wants []*wantExpectation
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, rest, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			ms := wantPattern.FindAllStringSubmatch(rest, -1)
			if len(ms) == 0 {
				t.Errorf("%s:%d: // want comment with no backquoted pattern", name, i+1)
			}
			for _, m := range ms {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, m[1], err)
				}
				wants = append(wants, &wantExpectation{file: name, line: i + 1, re: re, raw: m[1]})
			}
		}
	}
	return wants
}

// checkTestdata runs analyzers over testdata/dir under pkgPath and
// matches diagnostics against the want comments.
func checkTestdata(t *testing.T, dir, pkgPath string, analyzers []*Analyzer) {
	t.Helper()
	pkg := loadTestdata(t, dir, pkgPath)
	diags := CheckPackage(pkg, analyzers)
	var files []string
	for _, f := range pkg.Files {
		files = append(files, pkg.Fset.Position(f.Pos()).Filename)
	}
	wants := parseWants(t, files)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.claimed && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.claimed = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.claimed {
			t.Errorf("%s:%d: want %q: no matching diagnostic", w.file, w.line, w.raw)
		}
	}
}

func TestMapRange(t *testing.T)   { checkTestdata(t, "maprange", detPath, []*Analyzer{MapRange}) }
func TestWallClock(t *testing.T)  { checkTestdata(t, "wallclock", detPath, []*Analyzer{WallClock}) }
func TestGlobalRand(t *testing.T) { checkTestdata(t, "globalrand", detPath, []*Analyzer{GlobalRand}) }
func TestGoLeak(t *testing.T)     { checkTestdata(t, "goleak", detPath, []*Analyzer{GoLeak}) }

// TestNonDeterministicPackagesAreExempt runs the full suite over code
// that violates every rule, classified as host-side: nothing may fire.
func TestNonDeterministicPackagesAreExempt(t *testing.T) {
	checkTestdata(t, "nondet", hostPath, Analyzers())
}

// TestDeterministicPackagesDoFire is the classification counterpart:
// the same violating file under a deterministic path must produce
// findings (exact positions are covered by the per-analyzer tests).
func TestDeterministicPackagesDoFire(t *testing.T) {
	pkg := loadTestdata(t, "nondet", detPath)
	diags := CheckPackage(pkg, Analyzers())
	if len(diags) == 0 {
		t.Fatal("expected findings from testdata/nondet under a deterministic import path, got none")
	}
	seen := map[string]bool{}
	for _, d := range diags {
		seen[d.Analyzer] = true
	}
	for _, a := range Analyzers() {
		if !seen[a.Name] {
			t.Errorf("analyzer %s reported nothing over testdata/nondet", a.Name)
		}
	}
}

// TestTreeIsClean runs the whole suite over the repository exactly as
// `make lint` does: the tree must stay lint-clean. This is the
// compile-time form of the byte-identical-output contract.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped with -short")
	}
	diags, err := Run("../..", []string{"./..."}, nil)
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("tree not lint-clean: %s", d)
	}
}
