package lint

import (
	"go/ast"
	"strconv"
)

// GlobalRand flags math/rand (and math/rand/v2) inside deterministic
// packages. The global functions share process-wide state seeded per
// run, and even a locally-seeded rand.New hides the draw from the
// engine's replay contract: adding one consumer perturbs every later
// draw. All simulation randomness must come from the engine's labelled
// splitmix64 streams (sim.Rand / Rand.Stream), which give each
// subsystem an independent, seed-stable sequence.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc: "flags math/rand use in simulation-deterministic packages; draw from the " +
		"engine's labelled RNG streams (sim.Rand / System.Rand) instead",
	Run: runGlobalRand,
}

func runGlobalRand(pass *Pass) error {
	if !pass.Deterministic {
		return nil
	}
	// Report each identifier resolving into math/rand; if a file
	// imports the package without a resolvable use (blank or dot
	// imports), report the import itself so nothing slips through.
	for _, f := range pass.Files {
		seenUse := false
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if p := obj.Pkg().Path(); p == "math/rand" || p == "math/rand/v2" {
				seenUse = true
				pass.Reportf(id.Pos(),
					"%s.%s in deterministic package %s: use the engine's labelled RNG "+
						"streams (sim.Rand / Rand.Stream) so draws replay byte-identically",
					p, obj.Name(), pass.PkgPath)
			}
			return true
		})
		if seenUse {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s in deterministic package %s: use the engine's labelled "+
						"RNG streams (sim.Rand / Rand.Stream) instead",
					path, pass.PkgPath)
			}
		}
	}
	return nil
}
