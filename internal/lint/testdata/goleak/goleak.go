// Firing and non-firing cases for the goleak analyzer.
package goleak

import "sync"

// fires: raw goroutines and bare channel plumbing.
func fires() {
	ch := make(chan int)    // want `make\(chan\)`
	go func() { ch <- 1 }() // want `go statement` `channel send`
	<-ch                    // want `channel receive`
	close(ch)               // want `close of channel`
}

// firesSelect: the runtime picks among ready cases pseudo-randomly.
func firesSelect(a, b chan int) {
	select { // want `select`
	case <-a: // want `channel receive`
	case <-b: // want `channel receive`
	}
}

// firesRangeChan: draining a channel is still channel plumbing.
func firesRangeChan(ch chan int) {
	for range ch { // want `range over channel`
	}
}

// firesSync: host synchronisation primitives.
func firesSync() {
	var mu sync.Mutex // want `sync.Mutex`
	mu.Lock()
	defer mu.Unlock()
	var wg sync.WaitGroup // want `sync.WaitGroup`
	wg.Wait()
	var once sync.Once // want `sync.Once`
	once.Do(func() {})
}

// okEngineStyle: plain sequential code — what the deterministic core
// is supposed to look like — produces nothing.
func okEngineStyle(events []func()) {
	for _, ev := range events {
		ev()
	}
}

// okAllowed: the engine's own coroutine handoff carries reasoned
// allows like this one.
func okAllowed() chan struct{} {
	//lint:allow goleak(test fixture mirroring the engine's handoff channel)
	return make(chan struct{})
}
