// Firing and non-firing cases for the maprange analyzer. The test
// runner type-checks this package under a deterministic-core import
// path; each `// want` comment asserts a finding on its line.
package maprange

import "sort"

var m = map[string]int{"a": 1, "b": 2}

// fires: plain iteration, order escapes through the side effect.
func fires() int {
	n := 0
	for _, v := range m { // want `range over map`
		n ^= n<<3 + v
	}
	return n
}

// firesCollectNoSort: collecting keys is not enough — nothing sorts
// them before they are used.
func firesCollectNoSort() []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want `range over map`
		keys = append(keys, k)
	}
	return keys
}

// okCollectThenSort is the recognised safe shape: append-only body,
// then a sort call on the collected slice in the same block.
func okCollectThenSort() []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// okCollectThenSortSlice: sort.Slice also counts.
func okCollectThenSortSlice() []int {
	vals := make([]int, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// okAllowed: an explicit, reasoned allow suppresses the finding.
func okAllowed() int {
	n := 0
	//lint:allow maprange(integer xor-sum is commutative, order cannot escape)
	for _, v := range m {
		n ^= v
	}
	return n
}

// okSliceRange: ranging over a slice is ordered and fine.
func okSliceRange(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
