// Violations of every simlint rule, type-checked under a host-side
// (non-deterministic) import path: none of them may fire. This is the
// classification half of the non-firing cases — the same code under a
// deterministic path is covered by the per-analyzer testdata packages.
package nondet

import (
	"math/rand"
	"sync"
	"time"
)

var m = map[string]int{"a": 1}

func hostSideIsFree() time.Duration {
	n := 0
	for _, v := range m {
		n += v
	}
	_ = rand.Intn(10)
	var wg sync.WaitGroup
	ch := make(chan int)
	wg.Add(1)
	go func() { defer wg.Done(); ch <- n }()
	<-ch
	wg.Wait()
	t0 := time.Now()
	return time.Since(t0)
}
