// Firing and non-firing cases for the wallclock analyzer.
package wallclock

import "time"

// fires: every host-clock entry point is flagged.
func fires() time.Duration {
	t0 := time.Now()             // want `time.Now`
	time.Sleep(time.Millisecond) // want `time.Sleep`
	<-time.After(time.Second)    // want `time.After`
	return time.Since(t0)        // want `time.Since`
}

// okDurations: pure duration values and arithmetic never touch the
// host clock.
func okDurations() time.Duration {
	return 3*time.Millisecond + time.Duration(42)
}

// okAllowed: an explicit, reasoned allow suppresses the finding.
func okAllowed() {
	//lint:allow wallclock(host-side progress logging only; value never reaches simulation state)
	_ = time.Now()
}
