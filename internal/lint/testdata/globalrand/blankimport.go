// A file that imports math/rand without a resolvable identifier use:
// the import line itself is flagged so nothing slips through.
package globalrand

import _ "math/rand" // want `import of math/rand`
