// Firing and non-firing cases for the globalrand analyzer.
package globalrand

import "math/rand"

// firesGlobal: the shared global source.
func firesGlobal() int {
	return rand.Intn(10) // want `rand.Intn`
}

// firesLocal: even a locally-seeded generator hides draws from the
// engine's labelled-stream replay contract.
func firesLocal() *rand.Rand { // want `rand.Rand`
	return rand.New(rand.NewSource(1)) // want `rand.New` `rand.NewSource`
}

// okLocalPRNG: a hand-rolled generator with no math/rand involvement
// (what sim.Rand does) is fine.
func okLocalPRNG(state uint64) uint64 {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return z ^ (z >> 31)
}

// okAllowed: an explicit, reasoned allow suppresses the finding.
func okAllowed() int {
	//lint:allow globalrand(value feeds a host-side debug shuffle, never simulation state)
	return rand.Intn(3)
}
