// Package lint is simlint: a suite of static-analysis passes that
// mechanically enforce the simulator's byte-identical-output contract.
// Every PR so far re-proved determinism by running the paper artefacts
// and diffing bytes; these passes move the contract to compile time so
// a stray time.Now, global math/rand draw, unsorted map range, or raw
// goroutine in the deterministic core is a lint failure, not a
// heisenbug hunted through Figure 5.
//
// The package mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer / Pass / Diagnostic) but is self-contained on the standard
// library: the toolchain in this environment has no module proxy, so
// the framework ships with the repo. If x/tools ever becomes
// available, each analyzer's Run is a drop-in go/analysis pass.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named determinism rule. The fields deliberately
// match golang.org/x/tools/go/analysis.Analyzer so the passes can be
// ported to a stock multichecker without edits to their Run functions.
type Analyzer struct {
	// Name identifies the pass in diagnostics and in
	// //lint:allow Name(reason) directives.
	Name string
	// Doc is the one-paragraph rule statement printed by
	// `simlint -help`.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's non-test source files, parsed with
	// comments. Test files are excluded: the determinism contract
	// covers simulation output, and tests are free to use wall-clock
	// timeouts and host concurrency around the simulated system.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the import path used for classification (the
	// vet-style " [pkg.test]" suffix already stripped).
	PkgPath string
	// Deterministic reports whether PkgPath is inside the simulation's
	// deterministic core (see classify.go). Analyzers must return
	// immediately when it is false.
	Deterministic bool
	// Report receives each finding. The driver wraps it with the
	// //lint:allow suppression index before the analyzer runs.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzers returns the full simlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapRange, WallClock, GlobalRand, GoLeak}
}

// AnalyzerByName resolves an analyzer name (as used in //lint:allow
// directives); ok is false for unknown names.
func AnalyzerByName(name string) (a *Analyzer, ok bool) {
	for _, x := range Analyzers() {
		if x.Name == name {
			return x, true
		}
	}
	return nil, false
}

// inspect walks every file in the pass in source order.
func inspect(pass *Pass, fn func(ast.Node) bool) {
	for _, f := range pass.Files {
		ast.Inspect(f, fn)
	}
}

// useOf resolves an identifier or selector to the object it refers to,
// or nil.
func useOf(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// isPkgFunc reports whether e refers to the package-level name
// pkgPath.name (e.g. time.Now).
func isPkgFunc(info *types.Info, e ast.Expr, pkgPath, name string) bool {
	obj := useOf(info, e)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}
