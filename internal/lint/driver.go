package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The driver: load packages, type-check them with the standard
// library's source importer (no module proxy needed), and run the
// analyzer suite. cmd/simlint uses this for standalone `simlint ./...`
// runs; the tests use CheckPackage directly on testdata.

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// CheckPackage runs the analyzers over one package: it builds the
// //lint:allow index (reporting malformed directives as findings),
// runs each analyzer, drops suppressed findings, and returns the rest
// sorted by position.
func CheckPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	ix := buildAllowIndex(pkg.Fset, pkg.Files, func(d Diagnostic) {
		diags = append(diags, d)
	})
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:      a,
			Fset:          pkg.Fset,
			Files:         pkg.Files,
			Pkg:           pkg.Types,
			TypesInfo:     pkg.Info,
			PkgPath:       basePkgPath(pkg.Path),
			Deterministic: IsDeterministic(pkg.Path),
		}
		pass.Report = func(d Diagnostic) {
			if !ix.suppresses(d) {
				diags = append(diags, d)
			}
		}
		if err := a.Run(pass); err != nil {
			diags = append(diags, Diagnostic{
				Analyzer: a.Name,
				Message:  fmt.Sprintf("internal analyzer error: %v", err),
			})
		}
	}
	sortDiagnostics(diags)
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// listedPackage is the subset of `go list -json` output the loader
// needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
}

// Load enumerates the packages matching patterns (via `go list`, so it
// follows the module's own view of the tree — testdata and vendored
// files are excluded exactly as the build excludes them), parses their
// non-test files with comments, and type-checks them. Dependencies are
// resolved by the standard library's source importer, so the loader
// needs no pre-built export data and no network.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		listed = append(listed, p)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typeCheck parses and type-checks one package's files.
func typeCheck(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Run loads the packages matching patterns under dir and returns all
// findings from the given analyzers (pass nil for the full suite).
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	if analyzers == nil {
		analyzers = Analyzers()
	}
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, CheckPackage(pkg, analyzers)...)
	}
	return diags, nil
}
