package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// //lint:allow directives.
//
// A finding is suppressed by annotating the offending line:
//
//	for t := range s.segs { //lint:allow maprange(keys insertion-sorted by TID below)
//
// or by a standalone comment on the line directly above it:
//
//	//lint:allow goleak(coroutine handoff; engine serialises all procs)
//	go func() { ... }()
//
// The reason string is mandatory: an allow is a claim that the site is
// deterministic anyway, and the claim must be stated where the next
// reader (and the next refactor) can judge it. Malformed directives —
// unknown analyzer, missing or empty reason, trailing junk — are
// reported as errors rather than silently honoured, so a typo can
// never quietly disable a rule.

// directiveName is the pseudo-analyzer under which malformed-directive
// errors are reported. It is not suppressible.
const directiveName = "lintdirective"

// allowKey identifies one suppressed (file line, analyzer) site.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowIndex records which analyzer findings are suppressed at which
// lines of a package.
type allowIndex struct {
	allowed map[allowKey]bool
}

// suppresses reports whether d is covered by an allow directive.
func (ix *allowIndex) suppresses(d Diagnostic) bool {
	if d.Analyzer == directiveName {
		return false
	}
	return ix.allowed[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}]
}

// buildAllowIndex scans the files' comments for //lint: directives,
// reporting malformed ones through report. A valid allow covers its
// own line and the line directly below (so both trailing and
// line-above placement work).
func buildAllowIndex(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) *allowIndex {
	ix := &allowIndex{allowed: make(map[allowKey]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				name, errmsg := parseAllow(body)
				if errmsg != "" {
					report(Diagnostic{Analyzer: directiveName, Pos: pos, Message: errmsg})
					continue
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					ix.allowed[allowKey{pos.Filename, line, name}] = true
				}
			}
		}
	}
	return ix
}

// parseAllow parses the body of a //lint: comment (everything after
// the colon). It returns the allowed analyzer name, or a non-empty
// error message describing why the directive is malformed.
func parseAllow(body string) (name, errmsg string) {
	verb, rest, hasArg := strings.Cut(body, " ")
	if verb != "allow" {
		return "", "malformed lint directive: unknown verb //lint:" + verb + " (only //lint:allow analyzer(reason) is defined)"
	}
	if !hasArg {
		return "", "malformed //lint:allow: want //lint:allow analyzer(reason)"
	}
	rest = strings.TrimSpace(rest)
	open := strings.IndexByte(rest, '(')
	if open < 0 {
		return "", "malformed //lint:allow: want //lint:allow analyzer(reason), got no (reason)"
	}
	name = strings.TrimSpace(rest[:open])
	if _, ok := AnalyzerByName(name); !ok {
		return "", `malformed //lint:allow: unknown analyzer "` + name + `"`
	}
	if !strings.HasSuffix(rest, ")") {
		return "", "malformed //lint:allow: missing closing parenthesis"
	}
	reason := strings.TrimSpace(rest[open+1 : len(rest)-1])
	if reason == "" {
		return "", "malformed //lint:allow: empty reason — state why the site is deterministic"
	}
	return name, ""
}
