package lint

import (
	"go/ast"
)

// WallClock flags host wall-clock access inside deterministic
// packages. Simulated code has exactly one clock — the engine's
// virtual time (sim.Time, Engine.Now) — and any time.Now/Sleep/After
// leaking in makes output depend on host speed and scheduling. Only
// host-side code (internal/harness metrics, the CLI, this linter) may
// read the real clock, and those packages are outside the
// deterministic set.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "flags wall-clock access (time.Now, time.Since, time.Sleep, time.After, " +
		"timers/tickers) in simulation-deterministic packages; use the engine's " +
		"virtual time instead",
	Run: runWallClock,
}

// wallClockFuncs are the package time names whose use means the host
// clock has leaked into the simulation. Pure-value names (Duration,
// Nanosecond, ...) are fine and not listed.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runWallClock(pass *Pass) error {
	if !pass.Deterministic {
		return nil
	}
	inspect(pass, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !wallClockFuncs[sel.Sel.Name] {
			return true
		}
		if isPkgFunc(pass.TypesInfo, sel, "time", sel.Sel.Name) {
			pass.Reportf(sel.Pos(),
				"time.%s in deterministic package %s: simulated code must use the engine's "+
					"virtual clock (sim.Time / Engine.Now), never the host wall clock",
				sel.Sel.Name, pass.PkgPath)
		}
		return true
	})
	return nil
}
