package lint

import "testing"

func TestIsDeterministic(t *testing.T) {
	tests := []struct {
		pkg  string
		want bool
	}{
		// The deterministic core and its subtrees.
		{"repro/internal/sim", true},
		{"repro/internal/kernel", true},
		{"repro/internal/glibc", true},
		{"repro/internal/nosv", true},
		{"repro/internal/usf", true},
		{"repro/internal/rt", true},
		{"repro/internal/rt/omp", true},
		{"repro/internal/rt/pthreadpool", true},
		{"repro/internal/stack", true},
		{"repro/internal/load", true},
		{"repro/internal/cluster", true},
		{"repro/internal/obs", true},
		{"repro/internal/workloads", true},
		{"repro/internal/workloads/inference", true},

		// go vet test-variant decorations classify as the base package.
		{"repro/internal/sim [repro/internal/sim.test]", true},
		{"repro/internal/sim.test", true},

		// Host-side code may touch the wall clock and host concurrency.
		{"repro/internal/harness", false},
		{"repro/internal/metrics", false},
		{"repro/internal/experiments", false},
		{"repro/internal/lint", false},
		{"repro/cmd/uschedsim", false},
		{"repro/cmd/simlint", false},
		{"repro", false},
		{"repro/examples/quickstart", false},

		// Prefix matching is per path segment, not per byte.
		{"repro/internal/simulator", false},
		{"repro/internal/rtx", false},

		// Other modules are never ours to classify.
		{"time", false},
		{"example.com/internal/sim", false},
	}
	for _, tt := range tests {
		if got := IsDeterministic(tt.pkg); got != tt.want {
			t.Errorf("IsDeterministic(%q) = %v, want %v", tt.pkg, got, tt.want)
		}
	}
}
