package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange flags `for range` over a map in deterministic packages. Go
// randomises map iteration order per run, so any order-sensitive work
// inside such a loop (scheduling events, mutating ordered queues,
// accumulating floats) breaks the byte-identical-output contract —
// exactly the omp.Runtime.Shutdown bug PR 3 caught by diffing Figure 5.
//
// One shape is recognised as safe without an annotation: a loop whose
// body only collects keys/values into slices that are then passed to a
// sort or slices call later in the same block (collect-then-sort).
// Everything else needs either a rewrite or an explicit
// //lint:allow maprange(reason).
var MapRange = &Analyzer{
	Name: "maprange",
	Doc: "flags range over a map in simulation-deterministic packages; " +
		"iterate sorted keys (collect-then-sort is recognised) or annotate " +
		"//lint:allow maprange(reason)",
	Run: runMapRange,
}

func runMapRange(pass *Pass) error {
	if !pass.Deterministic {
		return nil
	}
	for _, f := range pass.Files {
		var walk func(n ast.Node, encl []ast.Stmt)
		// walk tracks the statement list enclosing each node so a
		// flagged loop can look at its younger siblings for the sort.
		walk = func(n ast.Node, encl []ast.Stmt) {
			ast.Inspect(n, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BlockStmt:
					for _, s := range n.List {
						walk(s, n.List)
					}
					return false
				case *ast.RangeStmt:
					checkMapRange(pass, n, encl)
					// The body was not descended into by the
					// BlockStmt case only if it is this range's own
					// body; recurse so nested loops are seen.
				}
				return true
			})
		}
		walk(f, nil)
	}
	return nil
}

func checkMapRange(pass *Pass, r *ast.RangeStmt, encl []ast.Stmt) {
	tv, ok := pass.TypesInfo.Types[r.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if collectThenSorted(pass, r, encl) {
		return
	}
	pass.Reportf(r.For,
		"range over map %s in deterministic package %s: iteration order is randomised per run; "+
			"iterate over sorted keys (or //lint:allow maprange(reason) if order provably cannot escape)",
		tv.Type.String(), pass.PkgPath)
}

// collectThenSorted recognises the one annotation-free safe shape:
//
//	keys := make([]K, 0, len(m))
//	for k := range m {
//	    keys = append(keys, k)
//	}
//	sort.Slice(keys, ...)   // or sort.Ints/Strings, slices.Sort*, ...
//
// Every statement in the loop body must be an append of loop variables
// into a slice, and at least one collected slice must be passed to a
// sort/slices call in a statement after the loop in the same block.
func collectThenSorted(pass *Pass, r *ast.RangeStmt, encl []ast.Stmt) bool {
	// Collect the objects appended to; bail on any other statement.
	targets := map[types.Object]bool{}
	if len(r.Body.List) == 0 {
		return false
	}
	for _, s := range r.Body.List {
		as, ok := s.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" || pass.TypesInfo.Uses[fn] != types.Universe.Lookup("append") {
			return false
		}
		if len(call.Args) < 2 {
			return false
		}
		first, ok := call.Args[0].(*ast.Ident)
		if !ok || first.Name != lhs.Name {
			return false
		}
		obj := pass.TypesInfo.Uses[lhs]
		if obj == nil {
			obj = pass.TypesInfo.Defs[lhs]
		}
		if obj == nil {
			return false
		}
		targets[obj] = true
	}
	// Find the loop in its enclosing statement list, then look for a
	// sort of one of the targets in the statements after it.
	after := false
	for _, s := range encl {
		if s == ast.Stmt(r) {
			after = true
			continue
		}
		if !after {
			continue
		}
		if stmtSortsAny(pass, s, targets) {
			return true
		}
	}
	return false
}

// stmtSortsAny reports whether s is a call into package sort or slices
// that mentions one of the collected slices.
func stmtSortsAny(pass *Pass, s ast.Stmt, targets map[types.Object]bool) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if p := obj.Pkg().Path(); p != "sort" && p != "slices" {
		return false
	}
	mentions := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && targets[pass.TypesInfo.Uses[id]] {
				mentions = true
			}
			return !mentions
		})
	}
	return mentions
}
