package lint

import "strings"

// Package classification. This is the single shared source of truth
// for which packages carry the byte-identical-output contract: the
// code that runs *inside* a simulation, where every observable effect
// must be a pure function of the scenario configuration and seed.
//
// Host-side code — the harness worker pool, CLI, report writers, and
// this lint suite itself — may touch the wall clock and host
// concurrency freely; it lives outside the list.
//
// When the sharded parallel-simulation refactor (ROADMAP item 1) adds
// shard packages, adding them here is the whole change: every analyzer
// consults this list through Pass.Deterministic.

// deterministicPrefixes lists the deterministic-core packages by
// import path relative to the module root. An entry matches the
// package itself and everything below it (so "internal/rt" covers
// internal/rt/omp, internal/rt/tbb, ...).
var deterministicPrefixes = []string{
	"internal/sim",
	"internal/kernel",
	"internal/glibc",
	"internal/nosv",
	"internal/usf",
	"internal/rt",
	"internal/stack",
	"internal/load",
	"internal/cluster",
	"internal/obs",
	"internal/workloads",
}

// modulePath is the import-path prefix of this repository. Kept here
// rather than read from go.mod so classification works identically in
// the standalone driver, the vet unitchecker (which only sees import
// paths), and the tests.
const modulePath = "repro"

// IsDeterministic reports whether the package with the given import
// path is part of the simulation's deterministic core. Vet-style
// variant suffixes ("repro/internal/sim [repro/internal/sim.test]")
// are classified as their base package.
func IsDeterministic(pkgPath string) bool {
	pkgPath = basePkgPath(pkgPath)
	rel, ok := strings.CutPrefix(pkgPath, modulePath+"/")
	if !ok {
		return false
	}
	for _, p := range deterministicPrefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// basePkgPath strips the go-vet test-variant decorations from an
// import path: "p.test" and "p [q.test]" both classify as p's
// external view ("p_test" external test packages keep their own path
// and are never deterministic-core).
func basePkgPath(pkgPath string) string {
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	return strings.TrimSuffix(pkgPath, ".test")
}
