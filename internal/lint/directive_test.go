package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

func TestParseAllow(t *testing.T) {
	tests := []struct {
		body    string // text after "//lint:"
		name    string // expected analyzer, "" if malformed
		errPart string // expected substring of the error message
	}{
		{body: "allow maprange(keys sorted below)", name: "maprange"},
		{body: "allow goleak(coroutine handoff)", name: "goleak"},
		{body: "allow wallclock( padded reason )", name: "wallclock"},
		{body: "allow globalrand(x)", name: "globalrand"},

		{body: "deny maprange(no)", errPart: "unknown verb"},
		{body: "allowmaprange(no)", errPart: "unknown verb"},
		{body: "allow", errPart: "want //lint:allow analyzer(reason)"},
		{body: "allow maprange", errPart: "got no (reason)"},
		{body: "allow maprange()", errPart: "empty reason"},
		{body: "allow maprange(   )", errPart: "empty reason"},
		{body: "allow maprange(unclosed", errPart: "missing closing parenthesis"},
		{body: "allow maprange(reason) trailing", errPart: "missing closing parenthesis"},
		{body: "allow nosuchpass(reason)", errPart: `unknown analyzer "nosuchpass"`},
		{body: "allow (reason)", errPart: `unknown analyzer ""`},
	}
	for _, tt := range tests {
		name, errmsg := parseAllow(tt.body)
		if tt.errPart == "" {
			if errmsg != "" || name != tt.name {
				t.Errorf("parseAllow(%q) = (%q, %q), want (%q, ok)", tt.body, name, errmsg, tt.name)
			}
			continue
		}
		if errmsg == "" {
			t.Errorf("parseAllow(%q) accepted a malformed directive (name %q)", tt.body, name)
			continue
		}
		if !strings.Contains(errmsg, tt.errPart) {
			t.Errorf("parseAllow(%q) error %q does not mention %q", tt.body, errmsg, tt.errPart)
		}
	}
}

// checkSource type-checks one in-memory file under a deterministic
// path and returns the suite's diagnostics. The sources must not
// import anything, so no importer is needed.
func checkSource(t *testing.T, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{}
	tpkg, err := conf.Check(detPath, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Path: detPath, Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
	return CheckPackage(pkg, Analyzers())
}

// TestMalformedDirectiveDoesNotSuppress is the contract the satellite
// task names: a malformed //lint:allow is reported as an error AND the
// finding it sat next to still fires.
func TestMalformedDirectiveDoesNotSuppress(t *testing.T) {
	diags := checkSource(t, `package p

var m = map[int]int{1: 1}

func f() int {
	n := 0
	//lint:allow maprange()
	for _, v := range m {
		n += v
	}
	return n
}
`)
	var haveDirectiveErr, haveMapRange bool
	for _, d := range diags {
		switch {
		case d.Analyzer == directiveName && strings.Contains(d.Message, "empty reason") && d.Pos.Line == 7:
			haveDirectiveErr = true
		case d.Analyzer == "maprange" && d.Pos.Line == 8:
			haveMapRange = true
		}
	}
	if !haveDirectiveErr {
		t.Errorf("malformed directive not reported as an error; got %v", diags)
	}
	if !haveMapRange {
		t.Errorf("malformed directive silently suppressed the maprange finding; got %v", diags)
	}
}

// TestWellFormedDirectiveSuppressesOnlyItsAnalyzer: an allow names one
// analyzer; findings from other analyzers on the same line survive.
func TestWellFormedDirectiveSuppressesOnlyItsAnalyzer(t *testing.T) {
	diags := checkSource(t, `package p

func f() {
	//lint:allow goleak(handoff fixture)
	ch := make(chan int)
	//lint:allow maprange(wrong analyzer on purpose)
	go func() { close(ch) }()
}
`)
	var goleakAt5, goleakAt7 bool
	for _, d := range diags {
		if d.Analyzer == directiveName {
			t.Errorf("unexpected directive error: %s", d)
		}
		if d.Analyzer == "goleak" && d.Pos.Line == 5 {
			goleakAt5 = true
		}
		if d.Analyzer == "goleak" && d.Pos.Line == 7 {
			goleakAt7 = true
		}
	}
	if goleakAt5 {
		t.Error("allow goleak did not suppress the make(chan) finding on the next line")
	}
	if !goleakAt7 {
		t.Error("allow maprange suppressed a goleak finding; directives must be analyzer-specific")
	}
}

// TestDirectiveAppliesToOwnAndNextLine: trailing placement works too.
func TestDirectiveAppliesToOwnAndNextLine(t *testing.T) {
	diags := checkSource(t, `package p

var m = map[int]int{1: 1}

func f() int {
	n := 0
	for _, v := range m { //lint:allow maprange(xor-sum is commutative)
		n ^= v
	}
	return n
}
`)
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
