package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak flags host concurrency inside the deterministic core: raw go
// statements, bare channel operations (make/send/receive/close/select/
// range), and sync.{Mutex,RWMutex,WaitGroup,Once,Cond,Map}. All
// concurrency in a simulation must ride the engine's event queue
// (Engine.Spawn procs, events, virtual-time ordering) so that the
// interleaving is a function of the seed, not of the Go scheduler. The
// only legitimate host concurrency is the engine's own coroutine
// handoff in internal/sim, and those few sites carry annotated
// //lint:allow goleak(...) directives; the harness worker pool lives
// outside the deterministic package set entirely.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc: "flags raw goroutines, bare channel operations, and sync primitives in " +
		"simulation-deterministic packages; concurrency must ride the engine's " +
		"event queue",
	Run: runGoLeak,
}

// syncTypes are the sync package names whose presence means host
// synchronisation (and therefore host scheduling order) has entered
// the deterministic core.
var syncTypes = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Once":      true,
	"Cond":      true,
	"Map":       true,
}

func runGoLeak(pass *Pass) error {
	if !pass.Deterministic {
		return nil
	}
	info := pass.TypesInfo
	inspect(pass, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Go,
				"go statement in deterministic package %s: spawn simulated activities "+
					"through the engine (Engine.Spawn), not raw goroutines", pass.PkgPath)
		case *ast.SendStmt:
			pass.Reportf(n.Arrow,
				"channel send in deterministic package %s: pass control through engine "+
					"events, not host channels", pass.PkgPath)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.OpPos,
					"channel receive in deterministic package %s: pass control through "+
						"engine events, not host channels", pass.PkgPath)
			}
		case *ast.SelectStmt:
			pass.Reportf(n.Select,
				"select in deterministic package %s: the Go runtime picks ready cases "+
					"pseudo-randomly; use engine events", pass.PkgPath)
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					pass.Reportf(n.For,
						"range over channel in deterministic package %s: use engine events",
						pass.PkgPath)
				}
			}
		case *ast.CallExpr:
			switch fn := n.Fun.(type) {
			case *ast.Ident:
				obj := info.Uses[fn]
				if obj == types.Universe.Lookup("close") {
					pass.Reportf(n.Pos(),
						"close of channel in deterministic package %s: use engine events",
						pass.PkgPath)
				}
				if obj == types.Universe.Lookup("make") && len(n.Args) > 0 {
					if tv, ok := info.Types[n.Args[0]]; ok && tv.Type != nil {
						if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
							pass.Reportf(n.Pos(),
								"make(chan) in deterministic package %s: host channels have "+
									"no place on the simulated timeline; use engine events",
								pass.PkgPath)
						}
					}
				}
			}
		case *ast.SelectorExpr:
			obj := info.Uses[n.Sel]
			if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncTypes[obj.Name()] {
				pass.Reportf(n.Pos(),
					"sync.%s in deterministic package %s: the simulation is single-threaded "+
						"per engine; synchronisation belongs in simulated primitives (futex, "+
						"glibc locks), not host sync", obj.Name(), pass.PkgPath)
			}
		}
		return true
	})
	return nil
}
