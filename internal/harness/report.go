package harness

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"

	"repro/internal/metrics"
)

// Report is the structured -json/-out payload: per-cell sim-time and
// host-time metrics plus sweep totals, for tracking the performance
// trajectory of the reproduction across changes.
type Report struct {
	// Workers is the resolved pool size the sweep ran with.
	Workers int `json:"workers"`
	// Quick records whether the small configurations were used.
	Quick bool `json:"quick"`
	// Seed records a -seed override (0 means the per-scenario default
	// seeds, omitted from JSON so default reports are unchanged).
	Seed uint64 `json:"seed,omitempty"`
	// Shards records a -shards override (0 means each scenario's default
	// single shared engine, omitted so default reports are unchanged).
	Shards int `json:"shards,omitempty"`
	// Cells holds one metric row per simulation cell, in declaration
	// order.
	Cells []metrics.CellMetric `json:"cells"`
	// TotalSimSeconds sums the simulated time covered by all cells.
	TotalSimSeconds float64 `json:"total_sim_seconds"`
	// TotalHostSeconds sums per-cell host residency. Cells time-sharing
	// host cores inflate each other's residency, so compare this across
	// changes only at equal -par (at -par 1 it is pure compute time).
	TotalHostSeconds float64 `json:"total_host_seconds"`
	// WallSeconds is the sweep's wall-clock time (shrinks with -par).
	WallSeconds float64 `json:"wall_seconds"`
}

// Report converts the sweep's metrics into a serialisable report.
func (sw *Sweep) Report() *Report {
	r := &Report{Workers: sw.Par, Quick: sw.Opt.Quick, Seed: sw.Opt.Seed, Shards: sw.Opt.Shards, WallSeconds: sw.HostTime.Seconds()}
	for _, sr := range sw.Scenarios {
		for _, res := range sr.Results {
			r.Cells = append(r.Cells, res.Metric)
			r.TotalSimSeconds += res.Metric.SimSeconds
			r.TotalHostSeconds += res.Metric.HostSeconds
		}
	}
	return r
}

// JSON serialises the report with indentation.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// CSVPath reports whether path selects CSV output (a case-insensitive
// .csv extension).
func CSVPath(path string) bool {
	return strings.EqualFold(filepath.Ext(path), ".csv")
}

// Write serialises the report to w: CSV rows when csv is true, indented
// JSON otherwise.
func (r *Report) Write(w io.Writer, csv bool) error {
	if csv {
		return metrics.WriteCellCSV(w, r.Cells)
	}
	b, err := r.JSON()
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}
