// Package harness turns the paper's experiment sweeps into named,
// self-contained simulation cells and fans them out over a bounded
// worker pool. Every cell builds a fresh, deterministic sim.Engine from
// its captured config, so cells are independent and a sweep's results
// are byte-identical regardless of worker count: the runner reassembles
// them in declaration order before rendering.
//
// The package has two layers:
//
//   - a generic runner (Job, Output, Result, Run) that executes any
//     slice of cells with bounded parallelism and records per-cell
//     sim-time and host-time metrics;
//   - a scenario registry (Scenario, Register, Lookup, RunScenarios)
//     that names whole experiments, expands them into cells, and slices
//     the pooled results back per scenario for rendering and reporting.
package harness

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Job is one self-contained simulation cell: Run constructs a fresh
// engine from its captured config and returns the typed cell result.
// Jobs must not share mutable state; the runner calls Run from worker
// goroutines.
type Job struct {
	// Scenario is the owning scenario's registry name (stamped by the
	// registry during expansion; jobs run directly may leave it empty).
	Scenario string
	// Name identifies the cell within its scenario, e.g.
	// "sched_coop/tasks512/omp8".
	Name string
	// Run executes the cell.
	Run func() Output
}

// Output is what a Job's Run returns.
type Output struct {
	// Value is the cell's typed result, handed back to the scenario's
	// assemble/render step in declaration order.
	Value any
	// SimTime is how far the cell's simulated clock advanced.
	SimTime sim.Duration
	// TimedOut marks cells that hit their horizon (the paper's white
	// squares).
	TimedOut bool
	// Events counts engine events the cell fired (0 when the workload
	// does not report it). Profiling data: combined with host time it
	// gives events per wall second.
	Events int64
	// Windows and WindowWidthSum profile a sharded cell's conservative
	// windows (zero when unsharded): the window count and the summed
	// window widths.
	Windows        int64
	WindowWidthSum sim.Duration
	// Samples holds the cell's simulated-time telemetry rows when the
	// sweep ran with metrics enabled.
	Samples []obs.Sample
	// Spans holds the cell's per-request hop timelines when the sweep
	// ran with spans enabled.
	Spans []obs.Span
}

// Result pairs a cell's value with its measured cost.
type Result struct {
	Value  any
	Metric metrics.CellMetric
	// Samples and Spans carry the cell's telemetry through to the
	// sweep-level exports (Sweep.WriteMetrics / WriteSpans).
	Samples []obs.Sample
	Spans   []obs.Span
}

// Workers normalises a -par value: n when positive, GOMAXPROCS
// otherwise.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Progress is a per-cell completion callback for live sweep feedback
// (the cmd/uschedsim -v flag). The runner invokes it under a lock —
// completion order, not declaration order — with the finished cell's
// metric; results themselves are still reassembled deterministically.
type Progress func(done, total int, m metrics.CellMetric)

// Run executes jobs on a bounded pool of par workers (par <= 0 means
// GOMAXPROCS) and returns results indexed exactly like jobs, so
// downstream assembly is independent of completion order.
func Run(jobs []Job, par int) []Result {
	return RunProgress(jobs, par, nil)
}

// RunProgress is Run with a per-cell completion callback (nil behaves
// exactly like Run).
func RunProgress(jobs []Job, par int, progress Progress) []Result {
	par = Workers(par)
	if par > len(jobs) {
		par = len(jobs)
	}
	results := make([]Result, len(jobs))
	var mu sync.Mutex
	done := 0
	report := func(r Result) {
		if progress == nil {
			return
		}
		mu.Lock()
		done++
		progress(done, len(jobs), r.Metric)
		mu.Unlock()
	}
	if par <= 1 {
		for i := range jobs {
			results[i] = runOne(jobs[i])
			report(results[i])
		}
		return results
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runOne(jobs[i])
				report(results[i])
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

func runOne(j Job) Result {
	start := time.Now()
	out := j.Run()
	host := time.Since(start).Seconds()
	m := metrics.CellMetric{
		Scenario:    j.Scenario,
		Cell:        j.Name,
		SimSeconds:  out.SimTime.Seconds(),
		HostSeconds: host,
		TimedOut:    out.TimedOut,
		Events:      out.Events,
		Windows:     out.Windows,
	}
	if host > 0 {
		m.SimPerHost = m.SimSeconds / host
	}
	if out.Windows > 0 {
		m.MeanWindowMs = out.WindowWidthSum.Seconds() * 1e3 / float64(out.Windows)
	}
	return Result{Value: out.Value, Metric: m, Samples: out.Samples, Spans: out.Spans}
}
