package harness

import (
	"encoding/json"
	"io"
	"strconv"

	"repro/internal/obs"
)

// Telemetry exports: the sweep's scraped metric rows and request spans
// in long format, keyed by (scenario, cell) plus each row's own keys.
// Rows are emitted in declaration order of cells and canonical order
// within a cell, and every value is formatted from exact integers or
// shortest-round-trip floats — so the files are byte-identical for any
// -par or -shards value (the CI determinism gate compares them with
// cmp).

// MetricRow is one exported metric sample.
type MetricRow struct {
	Scenario string  `json:"scenario"`
	Cell     string  `json:"cell"`
	Series   string  `json:"series"`
	Node     string  `json:"node"`
	AtNs     int64   `json:"at_ns"`
	Value    float64 `json:"value"`
}

// SpanRow is one exported request span with its derived hop breakdown.
type SpanRow struct {
	Scenario string `json:"scenario"`
	Cell     string `json:"cell"`
	ID       int    `json:"id"`
	Node     string `json:"node"`
	SubmitNs int64  `json:"submit_ns"`
	ArriveNs int64  `json:"arrive_ns"`
	StartNs  int64  `json:"start_ns"`
	DoneNs   int64  `json:"done_ns"`
	ReplyNs  int64  `json:"reply_ns"`
	// NetworkNs, QueueNs, and ServiceNs decompose the end-to-end
	// latency; zero-filled on incomplete spans (ReplyNs == 0).
	NetworkNs int64 `json:"network_ns"`
	QueueNs   int64 `json:"queue_ns"`
	ServiceNs int64 `json:"service_ns"`
	// Outcome and Attempts carry the fault layer's request resolution
	// ("" / 0 on runs without resilience).
	Outcome  string `json:"outcome"`
	Attempts int    `json:"attempts"`
}

// MetricRows flattens the sweep's scraped samples into export rows.
func (sw *Sweep) MetricRows() []MetricRow {
	var rows []MetricRow
	for _, sr := range sw.Scenarios {
		for _, res := range sr.Results {
			for _, s := range res.Samples {
				rows = append(rows, MetricRow{
					Scenario: sr.Scenario.Name,
					Cell:     res.Metric.Cell,
					Series:   s.Series,
					Node:     s.Node,
					AtNs:     int64(s.At),
					Value:    s.Value,
				})
			}
		}
	}
	return rows
}

// SpanRows flattens the sweep's request spans into export rows.
func (sw *Sweep) SpanRows() []SpanRow {
	var rows []SpanRow
	for _, sr := range sw.Scenarios {
		for _, res := range sr.Results {
			for _, s := range res.Spans {
				row := SpanRow{
					Scenario: sr.Scenario.Name,
					Cell:     res.Metric.Cell,
					ID:       s.ID,
					Node:     s.Node,
					SubmitNs: int64(s.Submit),
					ArriveNs: int64(s.Arrive),
					StartNs:  int64(s.Start),
					DoneNs:   int64(s.Done),
					ReplyNs:  int64(s.Reply),
					Outcome:  s.Outcome,
					Attempts: s.Attempts,
				}
				if s.Complete() {
					row.NetworkNs = int64(s.Network())
					row.QueueNs = int64(s.Queue())
					row.ServiceNs = int64(s.Service())
				}
				rows = append(rows, row)
			}
		}
	}
	return rows
}

// WriteMetrics writes the sweep's metric rows to w: CSV when csv is
// true, an indented JSON array otherwise.
func (sw *Sweep) WriteMetrics(w io.Writer, csv bool) error {
	rows := sw.MetricRows()
	if !csv {
		return writeJSONRows(w, rows)
	}
	if err := writeLine(w, "scenario,cell,series,node,at_ns,value"); err != nil {
		return err
	}
	for _, r := range rows {
		line := r.Scenario + "," + r.Cell + "," + r.Series + "," + r.Node + "," +
			strconv.FormatInt(r.AtNs, 10) + "," + strconv.FormatFloat(r.Value, 'g', -1, 64)
		if err := writeLine(w, line); err != nil {
			return err
		}
	}
	return nil
}

// WriteSpans writes the sweep's span rows to w: CSV when csv is true,
// an indented JSON array otherwise.
func (sw *Sweep) WriteSpans(w io.Writer, csv bool) error {
	rows := sw.SpanRows()
	if !csv {
		return writeJSONRows(w, rows)
	}
	if err := writeLine(w,
		"scenario,cell,id,node,submit_ns,arrive_ns,start_ns,done_ns,reply_ns,network_ns,queue_ns,service_ns,outcome,attempts"); err != nil {
		return err
	}
	for _, r := range rows {
		line := r.Scenario + "," + r.Cell + "," + strconv.Itoa(r.ID) + "," + r.Node + "," +
			strconv.FormatInt(r.SubmitNs, 10) + "," + strconv.FormatInt(r.ArriveNs, 10) + "," +
			strconv.FormatInt(r.StartNs, 10) + "," + strconv.FormatInt(r.DoneNs, 10) + "," +
			strconv.FormatInt(r.ReplyNs, 10) + "," + strconv.FormatInt(r.NetworkNs, 10) + "," +
			strconv.FormatInt(r.QueueNs, 10) + "," + strconv.FormatInt(r.ServiceNs, 10) + "," +
			r.Outcome + "," + strconv.Itoa(r.Attempts)
		if err := writeLine(w, line); err != nil {
			return err
		}
	}
	return nil
}

// Spans collects every cell's spans in declaration order, for in-process
// consumers (the examples' breakdown summaries).
func (sw *Sweep) Spans() []obs.Span {
	var ss []obs.Span
	for _, sr := range sw.Scenarios {
		for _, res := range sr.Results {
			ss = append(ss, res.Spans...)
		}
	}
	return ss
}

func writeJSONRows(w io.Writer, rows any) error {
	b, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

func writeLine(w io.Writer, s string) error {
	_, err := io.WriteString(w, s+"\n")
	return err
}
