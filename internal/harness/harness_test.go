package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// countJobs returns n jobs whose values record their declaration index.
// A non-nil gate makes every job rendezvous inside Run: none returns
// until all have entered, which only completes with a wide-enough pool.
func countJobs(n int, gate *sync.WaitGroup) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Name: fmt.Sprintf("cell%d", i),
			Run: func() Output {
				if gate != nil {
					// Rendezvous: every worker must arrive before any
					// returns, proving real concurrency.
					gate.Done()
					gate.Wait()
				}
				return Output{Value: i, SimTime: sim.Duration(i) * sim.Second}
			},
		}
	}
	return jobs
}

func TestRunPreservesDeclarationOrder(t *testing.T) {
	for _, par := range []int{1, 3, 16} {
		results := Run(countJobs(20, nil), par)
		if len(results) != 20 {
			t.Fatalf("par=%d: %d results", par, len(results))
		}
		for i, r := range results {
			if r.Value.(int) != i {
				t.Fatalf("par=%d: results[%d] = %v", par, i, r.Value)
			}
			if r.Metric.Cell != fmt.Sprintf("cell%d", i) {
				t.Fatalf("par=%d: cell name %q", par, r.Metric.Cell)
			}
			if r.Metric.SimSeconds != float64(i) {
				t.Fatalf("par=%d: sim seconds %v", par, r.Metric.SimSeconds)
			}
		}
	}
}

func TestRunActuallyParallel(t *testing.T) {
	// All 4 jobs block until 4 workers have entered Run; with fewer
	// concurrent workers this would deadlock, so completion proves the
	// pool width.
	var gate sync.WaitGroup
	gate.Add(4)
	done := make(chan struct{})
	go func() {
		Run(countJobs(4, &gate), 4)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("pool narrower than par=4: rendezvous never completed")
	}
}

func TestRunEmptyAndOversizedPool(t *testing.T) {
	if got := Run(nil, 8); len(got) != 0 {
		t.Fatalf("empty jobs -> %d results", len(got))
	}
	// par larger than the job count must not leak or deadlock.
	if got := Run(countJobs(2, nil), 64); len(got) != 2 {
		t.Fatalf("got %d results", len(got))
	}
}

func TestWorkersDefault(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("positive par must pass through")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("non-positive par must default to GOMAXPROCS")
	}
}

func testScenario(name string, cells int) *Scenario {
	return &Scenario{
		Name:  name,
		Title: "Test " + name,
		Jobs:  func(opt Opts) []Job { return countJobs(cells, nil) },
		Render: func(opt Opts, results []Result) string {
			var sb strings.Builder
			for _, r := range results {
				fmt.Fprintf(&sb, "%d ", r.Value.(int))
			}
			sb.WriteByte('\n')
			return sb.String()
		},
	}
}

func TestOptsApplySeed(t *testing.T) {
	if got := (Opts{}).ApplySeed(9); got != 9 {
		t.Fatalf("default seed = %d, want 9", got)
	}
	if got := (Opts{Seed: 42}).ApplySeed(9); got != 42 {
		t.Fatalf("override seed = %d, want 42", got)
	}
	sw := RunScenarios([]*Scenario{testScenario("test-seed", 1)}, Opts{Quick: true, Seed: 7}, 1)
	rep := sw.Report()
	if !rep.Quick || rep.Seed != 7 {
		t.Fatalf("report opts = quick %v seed %d", rep.Quick, rep.Seed)
	}
}

func TestRegisterLookupAndDuplicatePanic(t *testing.T) {
	s := testScenario("test-registry", 1)
	Register(s)
	got, ok := Lookup("test-registry")
	if !ok || got != s {
		t.Fatal("lookup failed after register")
	}
	found := false
	for _, n := range Names() {
		if n == "test-registry" {
			found = true
		}
	}
	if !found {
		t.Fatal("Names() missing registered scenario")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(&Scenario{Name: "test-registry"})
}

func TestRunScenariosSlicesAndRenders(t *testing.T) {
	ss := []*Scenario{testScenario("test-a", 3), testScenario("test-b", 2)}
	sw := RunScenarios(ss, Opts{Quick: true}, 2)
	if sw.Cells() != 5 {
		t.Fatalf("cells = %d", sw.Cells())
	}
	if len(sw.Scenarios) != 2 || len(sw.Scenarios[0].Results) != 3 || len(sw.Scenarios[1].Results) != 2 {
		t.Fatalf("bad slicing: %+v", sw.Scenarios)
	}
	for _, sr := range sw.Scenarios {
		for _, r := range sr.Results {
			if r.Metric.Scenario != sr.Scenario.Name {
				t.Fatalf("metric scenario %q under %q", r.Metric.Scenario, sr.Scenario.Name)
			}
		}
	}
	var buf bytes.Buffer
	if err := sw.RenderTables(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "==== Test test-a ====\n0 1 2 \n") ||
		!strings.Contains(out, "==== Test test-b ====\n0 1 \n") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestReportJSONRoundTripAndCSV(t *testing.T) {
	sw := RunScenarios([]*Scenario{testScenario("test-report", 3)}, Opts{}, 1)
	rep := sw.Report()
	if rep.TotalSimSeconds != 3 { // 0+1+2 sim-seconds
		t.Fatalf("total sim seconds = %v", rep.TotalSimSeconds)
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Workers != rep.Workers || len(back.Cells) != 3 || back.Cells[2].Cell != "cell2" {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	var csvBuf bytes.Buffer
	if err := metrics.WriteCellCSV(&csvBuf, rep.Cells); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 4 || lines[0] != "scenario,cell,sim_seconds,host_seconds,sim_per_host,events,windows,mean_window_ms,timed_out" {
		t.Fatalf("csv:\n%s", csvBuf.String())
	}
	if !strings.HasPrefix(lines[3], "test-report,cell2,2,") {
		t.Fatalf("csv row: %q", lines[3])
	}
}

// telemetrySweep builds a two-cell sweep with hand-written samples and
// spans, so writer output is checkable literally.
func telemetrySweep() *Sweep {
	sc := testScenario("test-tel", 2)
	span := obs.Span{ID: 0, Node: "a-node", Submit: 0,
		Arrive: sim.Time(2 * sim.Millisecond), Start: sim.Time(2 * sim.Millisecond),
		Done: sim.Time(12 * sim.Millisecond), Reply: sim.Time(15 * sim.Millisecond),
		Outcome: obs.OutcomeOK, Attempts: 2}
	return &Sweep{Scenarios: []ScenarioResult{{
		Scenario: sc,
		Results: []Result{
			{
				Metric: metrics.CellMetric{Scenario: "test-tel", Cell: "c0"},
				Samples: []obs.Sample{
					{Series: "meter/inflight", Node: "a-node", At: sim.Time(5 * sim.Millisecond), Value: 3},
					{Series: "meter/p99_win_s", Node: "a-node", At: sim.Time(5 * sim.Millisecond), Value: 0.0125},
				},
				Spans: []obs.Span{span, {ID: 1, Node: "b-node", Submit: sim.Time(sim.Millisecond)}},
			},
			{
				Metric:  metrics.CellMetric{Scenario: "test-tel", Cell: "c1"},
				Samples: []obs.Sample{{Series: "kernel/runnable", Node: "b-node", At: sim.Time(10 * sim.Millisecond), Value: 7}},
			},
		},
	}}}
}

func TestWriteMetricsCSVAndJSON(t *testing.T) {
	sw := telemetrySweep()
	var buf bytes.Buffer
	if err := sw.WriteMetrics(&buf, true); err != nil {
		t.Fatal(err)
	}
	want := "scenario,cell,series,node,at_ns,value\n" +
		"test-tel,c0,meter/inflight,a-node,5000000,3\n" +
		"test-tel,c0,meter/p99_win_s,a-node,5000000,0.0125\n" +
		"test-tel,c1,kernel/runnable,b-node,10000000,7\n"
	if buf.String() != want {
		t.Fatalf("metrics csv:\n%s\nwant:\n%s", buf.String(), want)
	}
	buf.Reset()
	if err := sw.WriteMetrics(&buf, false); err != nil {
		t.Fatal(err)
	}
	var rows []MetricRow
	if err := json.Unmarshal(buf.Bytes(), &rows); err != nil {
		t.Fatalf("metrics json: %v\n%s", err, buf.String())
	}
	if len(rows) != 3 || rows[1].Value != 0.0125 || rows[2].Cell != "c1" {
		t.Fatalf("metrics json rows: %+v", rows)
	}
}

func TestWriteSpansCSVAndJSON(t *testing.T) {
	sw := telemetrySweep()
	var buf bytes.Buffer
	if err := sw.WriteSpans(&buf, true); err != nil {
		t.Fatal(err)
	}
	want := "scenario,cell,id,node,submit_ns,arrive_ns,start_ns,done_ns,reply_ns,network_ns,queue_ns,service_ns,outcome,attempts\n" +
		"test-tel,c0,0,a-node,0,2000000,2000000,12000000,15000000,5000000,0,10000000,ok,2\n" +
		// Incomplete span: raw stamps kept, derived hops zero-filled,
		// resilience fields at their inert defaults.
		"test-tel,c0,1,b-node,1000000,0,0,0,0,0,0,0,,0\n"
	if buf.String() != want {
		t.Fatalf("spans csv:\n%s\nwant:\n%s", buf.String(), want)
	}
	buf.Reset()
	if err := sw.WriteSpans(&buf, false); err != nil {
		t.Fatal(err)
	}
	var rows []SpanRow
	if err := json.Unmarshal(buf.Bytes(), &rows); err != nil {
		t.Fatalf("spans json: %v\n%s", err, buf.String())
	}
	if len(rows) != 2 || rows[0].NetworkNs != 5000000 || rows[1].ReplyNs != 0 {
		t.Fatalf("spans json rows: %+v", rows)
	}
	if got := sw.Spans(); len(got) != 2 || got[0].Node != "a-node" {
		t.Fatalf("Spans() = %+v", got)
	}
}

func TestRunProgressReportsEveryCell(t *testing.T) {
	for _, par := range []int{1, 4} {
		var mu sync.Mutex
		var dones []int
		total := -1
		results := RunProgress(countJobs(6, nil), par, func(done, n int, m metrics.CellMetric) {
			mu.Lock()
			dones = append(dones, done)
			total = n
			mu.Unlock()
			if m.Cell == "" {
				t.Errorf("par=%d: progress metric missing cell name", par)
			}
		})
		if len(results) != 6 || total != 6 {
			t.Fatalf("par=%d: results %d, total %d", par, len(results), total)
		}
		// The done counter is strictly increasing 1..n even under a
		// parallel pool (the callback runs under the runner's lock).
		if len(dones) != 6 {
			t.Fatalf("par=%d: %d progress callbacks", par, len(dones))
		}
		for i, d := range dones {
			if d != i+1 {
				t.Fatalf("par=%d: done sequence %v", par, dones)
			}
		}
	}
}
