package harness

import (
	"io"
	"time"

	"repro/internal/trace"
)

// Opts parameterises a sweep expansion: which configuration size to use
// and, optionally, a replacement RNG seed. Every Scenario hook receives
// the same Opts so Jobs, Render, and Trace agree on the configuration.
type Opts struct {
	// Quick selects the small test-sized configuration over the scaled
	// paper sweep.
	Quick bool
	// Seed, when non-zero, replaces each scenario's default engine seed
	// so sweeps can be replicated under independent RNG streams (the
	// cmd/uschedsim -seed flag). Zero keeps the per-scenario paper
	// seeds, so default output stays byte-identical.
	Seed uint64
	// Shards, when > 1, spreads each fleet cell over this many
	// conservative-parallel engine shards (the cmd/uschedsim -shards
	// flag). Tables stay byte-identical for any value; scenarios without
	// a fleet ignore it. Zero keeps each scenario's default (one shared
	// engine).
	Shards int
	// Metrics enables simulated-time telemetry scraping in scenarios
	// that support it (the -metrics flag). The collected rows are keyed
	// by virtual time, so exports are byte-identical for any -par or
	// -shards value.
	Metrics bool
	// SpanRecords enables per-request hop spans in fleet scenarios (the
	// -spans flag). Same determinism guarantee as Metrics.
	SpanRecords bool
	// Progress, when non-nil, receives one callback per completed cell
	// (the -v flag). Called in completion order; it never influences
	// results.
	Progress Progress
}

// ApplySeed returns the scenario's default seed, or the override when
// one is set. Experiment config helpers call it when expanding.
func (o Opts) ApplySeed(def uint64) uint64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return def
}

// Scenario is a registered experiment: a named expansion of config into
// independent cell jobs plus a renderer that reassembles ordered
// results into the paper-style text. Scenarios register at init time
// (see internal/experiments) and cmd/uschedsim resolves subcommands
// against the registry.
type Scenario struct {
	// Name is the registry key and CLI subcommand ("matmul",
	// "cholesky", "microservices", "lammps").
	Name string
	// Title is the heading printed above the rendered output.
	Title string
	// Jobs expands the scenario into its cell jobs under the given
	// options.
	Jobs func(opt Opts) []Job
	// Render reassembles results (in Jobs order) into display text.
	Render func(opt Opts, results []Result) string
	// Trace, when non-nil, runs one representative cell of the
	// scenario with kernel event tracing enabled and returns the
	// recorded buffer (the cmd/uschedsim -trace flag). Scenarios whose
	// workloads cannot attach a tracer leave it nil.
	Trace func(opt Opts) *trace.Buffer
}

var (
	registry = map[string]*Scenario{}
	ordered  []*Scenario
)

// Register adds a scenario to the registry. Empty or duplicate names
// panic: registry wiring is an init-time programming error.
func Register(s *Scenario) {
	if s.Name == "" {
		panic("harness: scenario with empty name")
	}
	if _, dup := registry[s.Name]; dup {
		panic("harness: duplicate scenario " + s.Name)
	}
	registry[s.Name] = s
	ordered = append(ordered, s)
}

// Lookup returns the named scenario.
func Lookup(name string) (*Scenario, bool) {
	s, ok := registry[name]
	return s, ok
}

// Scenarios returns all registered scenarios in registration order.
func Scenarios() []*Scenario {
	return append([]*Scenario(nil), ordered...)
}

// Names returns the registered scenario names in registration order.
func Names() []string {
	ns := make([]string, len(ordered))
	for i, s := range ordered {
		ns[i] = s.Name
	}
	return ns
}

// expand returns the scenario's jobs with the Scenario tag stamped.
func (s *Scenario) expand(opt Opts) []Job {
	jobs := s.Jobs(opt)
	for i := range jobs {
		jobs[i].Scenario = s.Name
	}
	return jobs
}

// ScenarioResult is one scenario's slice of a sweep.
type ScenarioResult struct {
	Scenario *Scenario
	Results  []Result
}

// Sweep is the outcome of RunScenarios: per-scenario ordered results
// plus the pool configuration and wall time of the whole run.
type Sweep struct {
	Opt       Opts
	Par       int
	Scenarios []ScenarioResult
	// HostTime is the wall-clock time of the pooled run.
	HostTime time.Duration
}

// RunScenarios expands every scenario into cells, runs all cells
// through one bounded pool (so `all` parallelises across scenarios,
// not just within one), and slices the ordered results back per
// scenario.
func RunScenarios(ss []*Scenario, opt Opts, par int) *Sweep {
	var jobs []Job
	bounds := make([]int, 0, len(ss)+1)
	for _, s := range ss {
		bounds = append(bounds, len(jobs))
		jobs = append(jobs, s.expand(opt)...)
	}
	bounds = append(bounds, len(jobs))
	// Record the effective pool width (Run clamps identically), so the
	// report's workers field matches what actually ran.
	par = Workers(par)
	if len(jobs) > 0 && par > len(jobs) {
		par = len(jobs)
	}
	start := time.Now()
	results := RunProgress(jobs, par, opt.Progress)
	sw := &Sweep{Opt: opt, Par: par, HostTime: time.Since(start)}
	for i, s := range ss {
		sw.Scenarios = append(sw.Scenarios, ScenarioResult{
			Scenario: s,
			Results:  results[bounds[i]:bounds[i+1]],
		})
	}
	return sw
}

// Cells returns the total cell count across the sweep.
func (sw *Sweep) Cells() int {
	n := 0
	for _, sr := range sw.Scenarios {
		n += len(sr.Results)
	}
	return n
}

// RenderTables writes each scenario's title and rendered tables to w.
// The output depends only on cell results (never on scheduling or
// timing), so it is byte-identical for any worker count.
func (sw *Sweep) RenderTables(w io.Writer) error {
	for _, sr := range sw.Scenarios {
		if _, err := io.WriteString(w, "==== "+sr.Scenario.Title+" ====\n"); err != nil {
			return err
		}
		if _, err := io.WriteString(w, sr.Scenario.Render(sw.Opt, sr.Results)); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}
