// Engine microbenchmarks isolating the discrete-event hot paths the
// end-to-end figure benchmarks sit on: timer churn (schedule + fire),
// cancel-heavy timer traffic (futex timeouts, slice renewals), and the
// proc park/resume ping-pong behind every simulated context switch.
// All report allocations: the pooled closure-free paths are expected to
// allocate nothing in steady state.
package sim

import "testing"

// BenchmarkTimerChurn measures the closure-free schedule/fire cycle: one
// future timer per iteration, drained in batches.
func BenchmarkTimerChurn(b *testing.B) {
	e := NewEngine(1)
	nop := func(any) {}
	b.ReportAllocs()
	b.ResetTimer()
	const batch = 1024
	for n := 0; n < b.N; n += batch {
		for i := 0; i < batch; i++ {
			e.AfterFunc(Duration(i%97), nop, nil)
		}
		if _, err := e.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimerChurnClosure is the closure path (Engine.After) for
// comparison: it pays one closure allocation per event.
func BenchmarkTimerChurnClosure(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	const batch = 1024
	for n := 0; n < b.N; n += batch {
		for i := 0; i < batch; i++ {
			e.After(Duration(i%97), func() {})
		}
		if _, err := e.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimerImmediate measures the same-instant ring path (the
// resume-event pattern: every park/dispatch schedules one of these).
func BenchmarkTimerImmediate(b *testing.B) {
	e := NewEngine(1)
	nop := func(any) {}
	b.ReportAllocs()
	b.ResetTimer()
	const batch = 1024
	for n := 0; n < b.N; n += batch {
		for i := 0; i < batch; i++ {
			e.AfterFunc(0, nop, nil)
		}
		if _, err := e.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCancelHeavy models timeout-style traffic: timers that are
// almost always cancelled before firing (futex timeouts, RR slice
// renewals, load.Limiter deadlines). One schedule + cancel per
// iteration against a standing population of pending timers.
func BenchmarkCancelHeavy(b *testing.B) {
	e := NewEngine(1)
	nop := func(any) {}
	// Standing population of future timers the cancelled ones must be
	// removed from between.
	for i := 0; i < 1024; i++ {
		e.AfterFunc(Duration(1000+i), nop, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		ev := e.AfterFunc(Duration(500+n%400), nop, nil)
		ev.Cancel()
	}
	b.StopTimer()
	if _, err := e.RunAll(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkParkResumePingPong measures the full proc context-switch
// machinery: two procs alternately readying each other, so every
// iteration is two park/dispatch cycles (four goroutine handoffs).
func BenchmarkParkResumePingPong(b *testing.B) {
	e := NewEngine(1)
	var a, c *Proc
	rounds := 0
	a = e.Spawn("a", func(p *Proc) {
		for rounds < b.N {
			e.Ready(c)
			p.Park()
		}
	})
	c = e.Spawn("c", func(p *Proc) {
		for rounds < b.N {
			rounds++
			e.Ready(a)
			p.Park()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Ready(a)
	// The first proc to observe rounds >= b.N exits with the other
	// parked, so RunAll reports the expected deadlock; KillAll releases
	// the survivor.
	_, _ = e.RunAll()
	b.StopTimer()
	e.KillAll()
}

// BenchmarkProcSleep measures the sleep path: timer + resume event per
// iteration.
func BenchmarkProcSleep(b *testing.B) {
	e := NewEngine(1)
	p := e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(10)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Ready(p)
	if _, err := e.RunAll(); err != nil {
		b.Fatal(err)
	}
}
