// Engine microbenchmarks isolating the discrete-event hot paths the
// end-to-end figure benchmarks sit on: timer churn (schedule + fire),
// cancel-heavy timer traffic (futex timeouts, slice renewals), and the
// proc park/resume ping-pong behind every simulated context switch.
// All report allocations: the pooled closure-free paths are expected to
// allocate nothing in steady state.
package sim

import "testing"

// BenchmarkTimerChurn measures the closure-free schedule/fire cycle: one
// future timer per iteration, drained in batches.
func BenchmarkTimerChurn(b *testing.B) {
	e := NewEngine(1)
	nop := func(any) {}
	b.ReportAllocs()
	b.ResetTimer()
	const batch = 1024
	for n := 0; n < b.N; n += batch {
		for i := 0; i < batch; i++ {
			e.AfterFunc(Duration(i%97), nop, nil)
		}
		if _, err := e.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimerChurnClosure is the closure path (Engine.After) for
// comparison: it pays one closure allocation per event.
func BenchmarkTimerChurnClosure(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	const batch = 1024
	for n := 0; n < b.N; n += batch {
		for i := 0; i < batch; i++ {
			e.After(Duration(i%97), func() {})
		}
		if _, err := e.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimerImmediate measures the same-instant ring path (the
// resume-event pattern: every park/dispatch schedules one of these).
func BenchmarkTimerImmediate(b *testing.B) {
	e := NewEngine(1)
	nop := func(any) {}
	b.ReportAllocs()
	b.ResetTimer()
	const batch = 1024
	for n := 0; n < b.N; n += batch {
		for i := 0; i < batch; i++ {
			e.AfterFunc(0, nop, nil)
		}
		if _, err := e.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCancelHeavy models timeout-style traffic: timers that are
// almost always cancelled before firing (futex timeouts, RR slice
// renewals, load.Limiter deadlines). One schedule + cancel per
// iteration against a standing population of pending timers.
func BenchmarkCancelHeavy(b *testing.B) {
	e := NewEngine(1)
	nop := func(any) {}
	// Standing population of future timers the cancelled ones must be
	// removed from between.
	for i := 0; i < 1024; i++ {
		e.AfterFunc(Duration(1000+i), nop, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		ev := e.AfterFunc(Duration(500+n%400), nop, nil)
		ev.Cancel()
	}
	b.StopTimer()
	if _, err := e.RunAll(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkParkResumePingPong measures the full proc context-switch
// machinery: two procs alternately readying each other, so every
// iteration is two park/dispatch cycles (four goroutine handoffs).
func BenchmarkParkResumePingPong(b *testing.B) {
	e := NewEngine(1)
	var a, c *Proc
	rounds := 0
	a = e.Spawn("a", func(p *Proc) {
		for rounds < b.N {
			e.Ready(c)
			p.Park()
		}
	})
	c = e.Spawn("c", func(p *Proc) {
		for rounds < b.N {
			rounds++
			e.Ready(a)
			p.Park()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Ready(a)
	// The first proc to observe rounds >= b.N exits with the other
	// parked, so RunAll reports the expected deadlock; KillAll releases
	// the survivor.
	_, _ = e.RunAll()
	b.StopTimer()
	e.KillAll()
}

// benchDenseFleetTimers models the fleet-scale inner loop the timing
// wheel exists for: `nodes` simulated nodes' worth of dense
// short-horizon timers (per node: slice expiries, quantum renewals, and
// a backlog of pending arrivals), spread over a few milliseconds on the
// 32.768µs quantised timeline grid from the resilience layer. Per
// benchmark op: one closure-free schedule plus its fire, against a
// standing population that scales with the node count — exactly where
// the heap's O(log n) used to bite.
func benchDenseFleetTimers(b *testing.B, nodes int) {
	e := NewEngine(1)
	nop := func(any) {}
	const perNode = 48 // ~16 cores' slice+quantum timers plus a queue of arrivals
	const grid = 32768 * Nanosecond
	pop := nodes * perNode
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += pop {
		for i := 0; i < pop; i++ {
			e.AfterFunc(Duration(i%128+1)*grid, nop, nil)
		}
		if _, err := e.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDenseTimersNode1(b *testing.B)  { benchDenseFleetTimers(b, 1) }
func BenchmarkDenseTimersNode8(b *testing.B)  { benchDenseFleetTimers(b, 8) }
func BenchmarkDenseTimersNode64(b *testing.B) { benchDenseFleetTimers(b, 64) }

// BenchmarkCancelStorm models a fleet-wide timeout storm: a large
// standing population of pending retry/futex deadlines, with each op
// scheduling a new timeout and cancelling it before it fires (the
// overwhelmingly common case — timeouts exist to not expire). Wheel
// insert and cancel are both O(1); the heap paid O(log n) twice against
// the full population.
func BenchmarkCancelStorm(b *testing.B) {
	e := NewEngine(1)
	nop := func(any) {}
	const grid = 32768 * Nanosecond
	for i := 0; i < 8192; i++ {
		e.AfterFunc(Duration(i%512+1)*grid, nop, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		ev := e.AfterFunc(Duration(n%256+1)*grid, nop, nil)
		ev.Cancel()
	}
	b.StopTimer()
	if _, err := e.RunAll(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcSleep measures the sleep path: timer + resume event per
// iteration.
func BenchmarkProcSleep(b *testing.B) {
	e := NewEngine(1)
	p := e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(10)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Ready(p)
	if _, err := e.RunAll(); err != nil {
		b.Fatal(err)
	}
}
