package sim

import "math"

// Rand is a small deterministic PRNG (splitmix64). Every stochastic element
// of a simulation draws from a named stream so that adding a new consumer
// never perturbs existing draws.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Hash64 is FNV-1a over a string: the deterministic label hash used for
// RNG stream derivation and consistent-hash ring placement.
func Hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Stream derives an independent child generator from a label, so separate
// subsystems consume independent sequences.
func (r *Rand) Stream(label string) *Rand {
	return NewRand(r.state ^ Hash64(label) ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be > 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed value with mean 1.
func (r *Rand) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// NormFloat64 returns a normally distributed value (mean 0, stddev 1),
// using the Box-Muller transform.
func (r *Rand) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Jitter returns d scaled by a uniform factor in [1-f, 1+f]. Used to model
// small per-operation variability in compute costs.
func (r *Rand) Jitter(d Duration, f float64) Duration {
	if f <= 0 {
		return d
	}
	scale := 1 + f*(2*r.Float64()-1)
	return Duration(float64(d) * scale)
}
