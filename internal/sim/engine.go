package sim

import "fmt"

// Engine is the discrete-event simulation driver. It owns the virtual clock
// and the event queue, and it schedules procs (coroutine-style goroutines)
// one at a time: at any instant exactly one proc — or the engine itself —
// is executing, so simulations are race-free and deterministic without
// locks.
type Engine struct {
	now  Time
	heap eventHeap
	seq  uint64
	rng  *Rand
	free []*event // recycled event storage; steady-state At allocates nothing

	// imm is the immediate ring: events scheduled for the current
	// instant (proc resumes, After(0) chains). Because the clock never
	// runs backwards and seq increases, these arrive already sorted by
	// (at, seq), so they bypass the heap entirely — an O(1) ring instead
	// of O(log n) sifts for roughly half of all event traffic. peekNext
	// merges the ring head with the heap head by (at, seq), preserving
	// the exact global firing order.
	imm     []*event
	immHead int
	immDead int // cancelled ring entries awaiting drop at peek

	cur     *Proc
	back    chan struct{} // procs hand control back to the driver here
	nextPID int
	live    int // procs spawned and not yet exited
	procs   []*Proc

	panicVal any // panic propagated out of a proc
	stopped  bool

	// processed counts events fired over the engine's lifetime, for run
	// profiling (events/s, events-per-window). One integer increment in
	// fire — no allocation, no observable effect on the simulation.
	processed uint64
}

// NewEngine returns an engine whose RNG streams derive from seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		rng: NewRand(seed),
		//lint:allow goleak(unbuffered back channel is the engine half of the proc coroutine handoff; see Proc.Spawn)
		back: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns an independent RNG stream for the given label.
func (e *Engine) Rand(label string) *Rand { return e.rng.Stream(label) }

// alloc takes an event from the free list (or allocates one), stamping
// it with the clamped time and the next sequence number.
func (e *Engine) alloc(t Time) *event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{eng: e}
	}
	ev.at = t
	ev.seq = e.seq
	ev.dead = false
	return ev
}

// invalidate retires an event's callbacks and outstanding handles
// (generation bump) without touching its queue linkage.
func (e *Engine) invalidate(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
}

// recycle returns invalidated, unlinked event storage to the free list.
func (e *Engine) recycle(ev *event) {
	ev.idx = idxFree
	e.free = append(e.free, ev)
}

// enqueue routes a freshly allocated event to the immediate ring (events
// for the current instant) or the heap (future events).
func (e *Engine) enqueue(ev *event) {
	if ev.at == e.now {
		ev.idx = idxImm
		e.imm = append(e.imm, ev)
		return
	}
	e.heap.push(ev)
}

// At schedules fn to run at virtual time t (>= now). It returns a handle
// that may be used to cancel the event.
func (e *Engine) At(t Time, fn func()) Event {
	ev := e.alloc(t)
	ev.fn = fn
	e.enqueue(ev)
	return Event{e: ev, gen: ev.gen}
}

// AtFunc schedules fn(arg) to run at virtual time t (>= now). It is the
// closure-free counterpart of At: hot call sites pass a long-lived
// function and the receiver as arg, so scheduling allocates nothing.
func (e *Engine) AtFunc(t Time, fn func(any), arg any) Event {
	ev := e.alloc(t)
	ev.afn = fn
	ev.arg = arg
	e.enqueue(ev)
	return Event{e: ev, gen: ev.gen}
}

// After schedules fn to run d from now.
func (e *Engine) After(d Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// AfterFunc schedules fn(arg) to run d from now, without allocating a
// closure.
func (e *Engine) AfterFunc(d Duration, fn func(any), arg any) Event {
	if d < 0 {
		d = 0
	}
	return e.AtFunc(e.now.Add(d), fn, arg)
}

// Live reports the number of procs that have been spawned and not yet
// exited. After Run returns, a non-zero value with an empty queue usually
// indicates a deadlock in the simulated system.
func (e *Engine) Live() int { return e.live }

// Pending reports the number of queued events. Cancelled events never
// count: heap events are removed eagerly, ring events are invalidated at
// cancel and excluded here.
func (e *Engine) Pending() int {
	return e.heap.len() + (len(e.imm) - e.immHead) - e.immDead
}

// Stop makes Run return after the current event completes. The request
// is sticky until a Run call consumes it: a Stop issued while no Run is
// in progress (including before the first Run) makes the next Run return
// immediately, at its current time, without processing any events.
func (e *Engine) Stop() { e.stopped = true }

// peekNext returns the next event to fire — the smaller of the ring and
// heap heads by (at, seq) — or nil when no live event remains. Dead
// (cancelled) ring entries reaching the head are dropped here.
func (e *Engine) peekNext() *event {
	for e.immHead < len(e.imm) {
		iv := e.imm[e.immHead]
		if !iv.dead {
			break
		}
		e.imm[e.immHead] = nil
		e.immHead++
		e.immDead--
		e.recycle(iv)
	}
	if e.immHead == len(e.imm) && len(e.imm) > 0 {
		e.imm = e.imm[:0]
		e.immHead = 0
	}
	hv := e.heap.peek()
	if e.immHead == len(e.imm) {
		return hv
	}
	iv := e.imm[e.immHead]
	if hv != nil && (hv.at < iv.at || (hv.at == iv.at && hv.seq < iv.seq)) {
		return hv
	}
	return iv
}

// unlink removes a queued event from whichever structure holds it. ev
// must be the ring head when it is a ring entry (as returned by
// peekNext).
func (e *Engine) unlink(ev *event) {
	if ev.idx == idxImm {
		e.imm[e.immHead] = nil
		e.immHead++
		ev.idx = idxFree
		return
	}
	e.heap.remove(ev)
}

// fire pops the head event and runs its callback, recycling the storage
// first so the callback itself may schedule (and the pool may reuse) it.
func (e *Engine) fire(ev *event) {
	e.unlink(ev)
	e.now = ev.at
	e.processed++
	fn, afn, arg := ev.fn, ev.afn, ev.arg
	e.invalidate(ev)
	e.recycle(ev)
	if fn != nil {
		fn()
	} else {
		afn(arg)
	}
}

// Run processes events until the queue drains, the horizon passes, or Stop
// is called. It returns the time at which processing stopped and an error
// if the simulated system deadlocked (no events left but live procs
// remain parked). A Run cut short by Stop consumes the stop request;
// calling Run again resumes event processing.
func (e *Engine) Run(until Time) (Time, error) {
	return e.run(until, false)
}

// RunWindow processes events with at <= until exactly like Run, but an
// empty queue means "window exhausted", not deadlock: parked procs may
// be waiting on events another engine will inject at the next shard
// barrier (see sim/pdes). The clock always ends at until, keeping shard
// clocks in lockstep, so a window with no events is a pure clock
// advance.
func (e *Engine) RunWindow(until Time) (Time, error) {
	return e.run(until, true)
}

func (e *Engine) run(until Time, window bool) (Time, error) {
	for !e.stopped {
		ev := e.peekNext()
		if ev == nil {
			break
		}
		if ev.at > until {
			// Leave the event queued, untouched, for a later Run call.
			// The clock only moves forward: a horizon in the past
			// returns immediately at the current time.
			if until > e.now {
				e.now = until
			}
			return e.now, nil
		}
		e.fire(ev)
		if e.panicVal != nil {
			panic(e.panicVal)
		}
	}
	if e.stopped {
		e.stopped = false
		return e.now, nil
	}
	if window {
		if until > e.now {
			e.now = until
		}
		return e.now, nil
	}
	if e.live > 0 {
		return e.now, fmt.Errorf("sim: deadlock at %v: %d procs parked with no pending events", e.now, e.live)
	}
	return e.now, nil
}

// Processed returns the number of events the engine has fired over its
// lifetime — the profiling denominator for events-per-host-second and
// the pdes per-shard events-per-window accounting.
func (e *Engine) Processed() uint64 { return e.processed }

// NextEventTime returns the instant of the earliest queued live event
// and whether one exists. Shard coordinators use it to derive the next
// safe window bound without disturbing the queue.
func (e *Engine) NextEventTime() (Time, bool) {
	ev := e.peekNext()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// RunAll runs with no horizon.
func (e *Engine) RunAll() (Time, error) { return e.Run(Forever) }

// RunHorizon drives the engine with an optional horizon (non-positive
// means none) and additionally reports whether the horizon was reached.
// Callers that model timed-out simulations combine `hit` with their own
// work-remaining predicate and then tear the engine down (KillAll) —
// see stack.System.Run and cluster.Cluster.Run.
func (e *Engine) RunHorizon(horizon Duration) (end Time, hit bool, err error) {
	until := Forever
	if horizon > 0 {
		until = e.now.Add(horizon)
	}
	end, err = e.Run(until)
	return end, err == nil && end >= until, err
}
