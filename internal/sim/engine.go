package sim

import "fmt"

// Engine is the discrete-event simulation driver. It owns the virtual clock
// and the event queue, and it schedules procs (coroutine-style goroutines)
// one at a time: at any instant exactly one proc — or the engine itself —
// is executing, so simulations are race-free and deterministic without
// locks.
type Engine struct {
	now  Time
	heap eventHeap
	seq  uint64
	rng  *Rand
	free []*event // recycled event storage; steady-state At allocates nothing

	// wheel absorbs short-horizon future timers with O(1) insert/cancel;
	// its leading slots drain into the heap before they can fire, so the
	// firing order below is still the two-way ring/heap (at, seq) merge.
	// Far-future events (beyond the wheel horizon) go to the heap
	// directly. See wheel.go.
	wheel timerWheel

	// wheelGate is the heap population at which new events start
	// routing into the wheel (wheelMinHeap; tests zero it to force
	// wheel placement). Cascading costs a constant per event, which
	// only beats the heap's O(log n) once the near-horizon population
	// is dense; below the gate — a lone cross-shard message, a single
	// self-rescheduling tick — the 4-ary heap is 2–3 levels deep and
	// already optimal. Once open (wheel non-empty) the gate stays open
	// until the wheel drains, so a dense phase is not split across
	// tiers by heap-length wobble. Placement is unobservable either
	// way: firing order is the (at, seq) total order regardless of
	// tier, and the gate reads only deterministic engine state.
	wheelGate int

	// pending counts live queued events across all three tiers (wheel,
	// immediate ring, heap): incremented at enqueue, decremented at fire
	// and at Cancel, so Pending is O(1).
	pending int

	// imm is the immediate ring: events scheduled for the current
	// instant (proc resumes, After(0) chains). Because the clock never
	// runs backwards and seq increases, these arrive already sorted by
	// (at, seq), so they bypass the heap entirely — an O(1) ring instead
	// of O(log n) sifts for roughly half of all event traffic. peekNext
	// merges the ring head with the heap head by (at, seq), preserving
	// the exact global firing order.
	imm     []*event
	immHead int

	cur     *Proc
	back    chan struct{} // procs hand control back to the driver here
	nextPID int
	live    int // procs spawned and not yet exited
	procs   []*Proc

	panicVal any // panic propagated out of a proc
	stopped  bool

	// processed counts events fired over the engine's lifetime, for run
	// profiling (events/s, events-per-window). One integer increment in
	// fire — no allocation, no observable effect on the simulation.
	processed uint64
}

// NewEngine returns an engine whose RNG streams derive from seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		rng: NewRand(seed),
		//lint:allow goleak(unbuffered back channel is the engine half of the proc coroutine handoff; see Proc.Spawn)
		back:      make(chan struct{}),
		wheelGate: wheelMinHeap,
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns an independent RNG stream for the given label.
func (e *Engine) Rand(label string) *Rand { return e.rng.Stream(label) }

// alloc takes an event from the free list (or allocates one), stamping
// it with the clamped time and the next sequence number.
func (e *Engine) alloc(t Time) *event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{eng: e}
	}
	ev.at = t
	ev.seq = e.seq
	ev.dead = false
	return ev
}

// invalidate retires an event's callbacks and outstanding handles
// (generation bump) without touching its queue linkage.
func (e *Engine) invalidate(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
}

// recycle returns invalidated, unlinked event storage to the free list.
func (e *Engine) recycle(ev *event) {
	ev.idx = idxFree
	e.free = append(e.free, ev)
}

// enqueue routes a freshly allocated event to the immediate ring (events
// for the current instant), the timing wheel (future events within its
// horizon), or the heap (far-future overflow, plus events whose wheel
// slot has already drained).
func (e *Engine) enqueue(ev *event) {
	e.pending++
	if ev.at == e.now {
		ev.idx = idxImm
		e.imm = append(e.imm, ev)
		return
	}
	if uint64(ev.at)>>wheelShift >= e.wheel.pos &&
		(e.wheel.count > 0 || e.heap.len() >= e.wheelGate) &&
		e.wheel.place(ev) {
		e.wheel.inserts++
		return
	}
	e.heap.push(ev)
}

// At schedules fn to run at virtual time t (>= now). It returns a handle
// that may be used to cancel the event.
func (e *Engine) At(t Time, fn func()) Event {
	ev := e.alloc(t)
	ev.fn = fn
	e.enqueue(ev)
	return Event{e: ev, gen: ev.gen}
}

// AtFunc schedules fn(arg) to run at virtual time t (>= now). It is the
// closure-free counterpart of At: hot call sites pass a long-lived
// function and the receiver as arg, so scheduling allocates nothing.
func (e *Engine) AtFunc(t Time, fn func(any), arg any) Event {
	ev := e.alloc(t)
	ev.afn = fn
	ev.arg = arg
	e.enqueue(ev)
	return Event{e: ev, gen: ev.gen}
}

// After schedules fn to run d from now.
func (e *Engine) After(d Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// AfterFunc schedules fn(arg) to run d from now, without allocating a
// closure.
func (e *Engine) AfterFunc(d Duration, fn func(any), arg any) Event {
	if d < 0 {
		d = 0
	}
	return e.AtFunc(e.now.Add(d), fn, arg)
}

// Live reports the number of procs that have been spawned and not yet
// exited. After Run returns, a non-zero value with an empty queue usually
// indicates a deadlock in the simulated system.
func (e *Engine) Live() int { return e.live }

// Pending reports the number of queued events — O(1), from a live-event
// counter maintained at schedule, fire, and cancel. Cancelled events
// never count: wheel and heap events are removed eagerly, ring events
// are invalidated (and uncounted) at cancel and their storage dropped at
// peek.
func (e *Engine) Pending() int { return e.pending }

// Stop makes Run return after the current event completes. The request
// is sticky until a Run call consumes it: a Stop issued while no Run is
// in progress (including before the first Run) makes the next Run return
// immediately, at its current time, without processing any events.
func (e *Engine) Stop() { e.stopped = true }

// peekNext returns the next event to fire — the smaller of the ring and
// heap heads by (at, seq) — or nil when no live event remains. Dead
// (cancelled) ring entries reaching the head are dropped here, and any
// wheel slot that might hold the earliest event is drained into the heap
// first, so the merge below remains a two-way comparison and the global
// (at, seq) firing order is exactly what a heap-only queue would
// produce.
func (e *Engine) peekNext() *event {
	for e.immHead < len(e.imm) {
		iv := e.imm[e.immHead]
		if !iv.dead {
			break
		}
		e.imm[e.immHead] = nil
		e.immHead++
		e.recycle(iv)
	}
	if e.immHead == len(e.imm) && len(e.imm) > 0 {
		e.imm = e.imm[:0]
		e.immHead = 0
	}
	// Every wheel-resident event satisfies at >= wheel.pos<<wheelShift
	// (see wheel.go), so a ring/heap head strictly below that bound wins
	// outright; at or beyond it, drain slots until the bound passes the
	// candidate (ties must drain: an equal-instant wheel event may carry
	// a smaller seq).
	for e.wheel.count > 0 {
		var cand Time = -1
		if e.immHead < len(e.imm) {
			cand = e.imm[e.immHead].at
		}
		if hv := e.heap.peek(); hv != nil && (cand < 0 || hv.at < cand) {
			cand = hv.at
		}
		if cand >= 0 && cand < Time(e.wheel.pos<<wheelShift) {
			break
		}
		e.wheel.drainNextSlot(e)
	}
	hv := e.heap.peek()
	if e.immHead == len(e.imm) {
		return hv
	}
	iv := e.imm[e.immHead]
	if hv != nil && (hv.at < iv.at || (hv.at == iv.at && hv.seq < iv.seq)) {
		return hv
	}
	return iv
}

// unlink removes a queued event from whichever structure holds it. ev
// must be the ring head when it is a ring entry (as returned by
// peekNext).
func (e *Engine) unlink(ev *event) {
	if ev.idx == idxImm {
		e.imm[e.immHead] = nil
		e.immHead++
		ev.idx = idxFree
		return
	}
	e.heap.remove(ev)
}

// fire pops the head event and runs its callback, recycling the storage
// first so the callback itself may schedule (and the pool may reuse) it.
func (e *Engine) fire(ev *event) {
	e.unlink(ev)
	e.pending--
	e.now = ev.at
	e.processed++
	fn, afn, arg := ev.fn, ev.afn, ev.arg
	e.invalidate(ev)
	e.recycle(ev)
	if fn != nil {
		fn()
	} else {
		afn(arg)
	}
}

// Run processes events until the queue drains, the horizon passes, or Stop
// is called. It returns the time at which processing stopped and an error
// if the simulated system deadlocked (no events left but live procs
// remain parked). A Run cut short by Stop consumes the stop request;
// calling Run again resumes event processing.
func (e *Engine) Run(until Time) (Time, error) {
	return e.run(until, false)
}

// RunWindow processes events with at <= until exactly like Run, but an
// empty queue means "window exhausted", not deadlock: parked procs may
// be waiting on events another engine will inject at the next shard
// barrier (see sim/pdes). The clock always ends at until, keeping shard
// clocks in lockstep, so a window with no events is a pure clock
// advance.
func (e *Engine) RunWindow(until Time) (Time, error) {
	return e.run(until, true)
}

func (e *Engine) run(until Time, window bool) (Time, error) {
	for !e.stopped {
		ev := e.peekNext()
		if ev == nil {
			break
		}
		if ev.at > until {
			// Leave the event queued, untouched, for a later Run call.
			// The clock only moves forward: a horizon in the past
			// returns immediately at the current time.
			if until > e.now {
				e.now = until
			}
			return e.now, nil
		}
		e.fire(ev)
		if e.panicVal != nil {
			panic(e.panicVal)
		}
	}
	if e.stopped {
		e.stopped = false
		return e.now, nil
	}
	if window {
		if until > e.now {
			e.now = until
		}
		return e.now, nil
	}
	if e.live > 0 {
		return e.now, fmt.Errorf("sim: deadlock at %v: %d procs parked with no pending events", e.now, e.live)
	}
	return e.now, nil
}

// Processed returns the number of events the engine has fired over its
// lifetime — the profiling denominator for events-per-host-second and
// the pdes per-shard events-per-window accounting.
func (e *Engine) Processed() uint64 { return e.processed }

// WheelOccupancy returns the number of events currently resident in the
// timing wheel — the short-horizon tier between the immediate ring and
// the overflow heap. Like Processed, it is a profiling accessor: the
// value is per-engine (and therefore shard-dependent in a pdes fleet),
// so it belongs in run-profiling reports, not in shard-count-invariant
// metric exports.
func (e *Engine) WheelOccupancy() int { return e.wheel.count }

// WheelInserts returns the number of events the engine has routed into
// the timing wheel over its lifetime (schedule-time placements only;
// cascades are counted separately).
func (e *Engine) WheelInserts() uint64 { return e.wheel.inserts }

// WheelCascades returns the number of level-to-level event migrations
// the wheel has performed — each event cascades at most wheelLevels-1
// times, so this bounds the wheel's amortized per-event overhead.
func (e *Engine) WheelCascades() uint64 { return e.wheel.cascades }

// WheelDrains returns the number of events the wheel has handed to the
// heap as their slots became current. WheelInserts - WheelDrains -
// WheelOccupancy is the number of wheel events cancelled before their
// slot drained — timers that never paid a heap operation at all.
func (e *Engine) WheelDrains() uint64 { return e.wheel.drains }

// NextEventTime returns the instant of the earliest queued live event
// and whether one exists. Shard coordinators use it to derive the next
// safe window bound without disturbing the queue.
func (e *Engine) NextEventTime() (Time, bool) {
	ev := e.peekNext()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// RunAll runs with no horizon.
func (e *Engine) RunAll() (Time, error) { return e.Run(Forever) }

// RunHorizon drives the engine with an optional horizon (non-positive
// means none) and additionally reports whether the horizon was reached.
// Callers that model timed-out simulations combine `hit` with their own
// work-remaining predicate and then tear the engine down (KillAll) —
// see stack.System.Run and cluster.Cluster.Run.
func (e *Engine) RunHorizon(horizon Duration) (end Time, hit bool, err error) {
	until := Forever
	if horizon > 0 {
		until = e.now.Add(horizon)
	}
	end, err = e.Run(until)
	return end, err == nil && end >= until, err
}
