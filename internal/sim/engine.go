package sim

import "fmt"

// Engine is the discrete-event simulation driver. It owns the virtual clock
// and the event queue, and it schedules procs (coroutine-style goroutines)
// one at a time: at any instant exactly one proc — or the engine itself —
// is executing, so simulations are race-free and deterministic without
// locks.
type Engine struct {
	now  Time
	heap eventHeap
	seq  uint64
	rng  *Rand

	cur     *Proc
	back    chan struct{} // procs hand control back to the driver here
	nextPID int
	live    int // procs spawned and not yet exited
	procs   []*Proc

	panicVal any // panic propagated out of a proc
	stopped  bool
}

// NewEngine returns an engine whose RNG streams derive from seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		rng:  NewRand(seed),
		back: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns an independent RNG stream for the given label.
func (e *Engine) Rand(label string) *Rand { return e.rng.Stream(label) }

// At schedules fn to run at virtual time t (>= now). It returns the event,
// which may be cancelled.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn, idx: -1}
	e.heap.push(ev)
	return ev
}

// After schedules fn to run d from now.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Live reports the number of procs that have been spawned and not yet
// exited. After Run returns, a non-zero value with an empty queue usually
// indicates a deadlock in the simulated system.
func (e *Engine) Live() int { return e.live }

// Pending reports the number of queued (possibly cancelled) events.
func (e *Engine) Pending() int { return e.heap.len() }

// Stop makes Run return after the current event completes. The request
// is sticky until a Run call consumes it: a Stop issued while no Run is
// in progress (including before the first Run) makes the next Run return
// immediately, at its current time, without processing any events.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events until the queue drains, the horizon passes, or Stop
// is called. It returns the time at which processing stopped and an error
// if the simulated system deadlocked (no events left but live procs
// remain parked). A Run cut short by Stop consumes the stop request;
// calling Run again resumes event processing.
func (e *Engine) Run(until Time) (Time, error) {
	for !e.stopped && e.heap.len() > 0 {
		ev := e.heap.pop()
		if ev.canceled {
			continue
		}
		if ev.at > until {
			// Leave the event for a later Run call.
			e.heap.push(ev)
			e.now = until
			return e.now, nil
		}
		e.now = ev.at
		ev.fn()
		if e.panicVal != nil {
			panic(e.panicVal)
		}
	}
	if e.stopped {
		e.stopped = false
		return e.now, nil
	}
	if e.live > 0 {
		return e.now, fmt.Errorf("sim: deadlock at %v: %d procs parked with no pending events", e.now, e.live)
	}
	return e.now, nil
}

// RunAll runs with no horizon.
func (e *Engine) RunAll() (Time, error) { return e.Run(Forever) }
