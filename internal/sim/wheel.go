package sim

import "math/bits"

// timerWheel is a hierarchical timing wheel (Varghese & Lauer's scheme,
// as adopted by the Linux timer subsystem and Kafka's purgatory) that
// fronts the event heap for the dense short-horizon timer traffic a
// fleet simulation generates: slice expiries, quantum renewals,
// arrivals, futex/retry timeouts. Insert and cancel are O(1) — a slot
// is a doubly linked list addressed by bit arithmetic — while far-future
// events (beyond the wheel horizon) overflow into the 4-ary heap.
//
// The wheel never fires events itself, so it is invisible to the
// (at, seq) ordering contract: whenever the earliest queued event might
// be wheel-resident, peekNext drains the wheel's leading slot(s) into
// the heap first (drainNextSlot), and the ring/heap two-way merge then
// decides the firing order exactly as before. Draining moves pooled
// event storage between queue tiers without touching callbacks, handles,
// or sequence numbers, so firing order — and therefore every artefact
// byte — is unchanged at any -par/-shards.
//
// Geometry: wheelLevels levels of wheelSlots slots; a level-0 slot spans
// 2^wheelShift ns (32.768µs) and each level is wheelSlots times coarser:
//
//	level 0:  32.768µs/slot —  2.10ms horizon
//	level 1:    2.10ms/slot —   134ms horizon
//	level 2:     134ms/slot —   8.59s horizon
//	level 3:     8.59s/slot —   9.16m horizon
//	level 4:     9.16m/slot —   9.77h horizon
//
// The level-0 slot width equals the 32.768µs (2^15 ns) quantised
// timeline grid from the resilience layer (load.RetryPolicy.Quantum,
// load.PhasedPoisson), so a grid-aligned retry/backoff storm's instant
// occupies exactly one slot: the whole burst is placed, cascaded, and
// drained as a single list, never straddling two slots.
//
// pos is the wheel's cursor: the next undrained level-0 tick. Every
// wheel-resident event satisfies at >= pos<<wheelShift (level-0 events
// sit at ticks >= pos; a level-k slot is cascaded into lower levels
// before pos enters it), which is the bound peekNext uses to stop
// draining. pos advances only through drainNextSlot — never with the
// clock directly — so RunWindow's park-at-window-edge clock jumps and
// NextEventTime peeks need no wheel bookkeeping of their own.
const (
	wheelShift    = 15 // log2 of the level-0 slot width in ns (32.768µs)
	wheelSlotBits = 6  // log2 slots per level
	wheelSlots    = 1 << wheelSlotBits
	wheelMask     = wheelSlots - 1
	wheelLevels   = 5

	// wheelMinHeap is the heap population that opens the wheel gate
	// (Engine.wheelGate): a 4-ary heap of 16 is two levels deep, so
	// below this the heap wins and the wheel's per-event cascade
	// constant would be pure overhead.
	wheelMinHeap = 16
)

type timerWheel struct {
	pos   uint64                          // next undrained level-0 tick (time >> wheelShift)
	count int                             // live events resident in the wheel
	occ   [wheelLevels]uint64             // per-level slot occupancy bitmaps
	slots [wheelLevels][wheelSlots]*event // doubly linked slot lists

	// Lifetime counters for the profiling accessors (Engine.WheelInserts
	// etc.); plain increments, never read on the simulation path.
	inserts  uint64 // events routed into the wheel at schedule time
	cascades uint64 // events moved down a level by drainNextSlot
	drains   uint64 // events handed from level 0 to the heap
}

// place routes ev into the wheel slot covering ev.at and reports whether
// it fit; an event beyond the top level's horizon is left for the heap.
// The caller guarantees ev.at's tick is >= pos (otherwise the slot has
// already been drained and only the heap preserves ordering).
func (w *timerWheel) place(ev *event) bool {
	tick := uint64(ev.at) >> wheelShift
	for lvl := 0; lvl < wheelLevels; lvl++ {
		sh := uint(lvl * wheelSlotBits)
		if (tick>>sh)-(w.pos>>sh) < wheelSlots {
			s := int((tick >> sh) & wheelMask)
			head := w.slots[lvl][s]
			ev.prev = nil
			ev.next = head
			if head != nil {
				head.prev = ev
			}
			w.slots[lvl][s] = ev
			w.occ[lvl] |= 1 << uint(s)
			ev.idx = idxWheelBase - (lvl*wheelSlots + s)
			w.count++
			return true
		}
	}
	return false
}

// remove unlinks a wheel-resident event (O(1)): idx encodes its level
// and slot, prev/next splice it out of the slot list.
func (w *timerWheel) remove(ev *event) {
	code := idxWheelBase - ev.idx
	lvl, s := code/wheelSlots, code%wheelSlots
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		w.slots[lvl][s] = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	}
	ev.prev, ev.next = nil, nil
	if w.slots[lvl][s] == nil {
		w.occ[lvl] &^= 1 << uint(s)
	}
	ev.idx = idxFree
	w.count--
}

// nextSlot locates the earliest occupied slot across all levels,
// returning its level and start tick (in level-0 ticks). Each level's
// bitmap is scanned as a ring from the cursor: bits at or above
// pos&mask are this revolution, wrapped bits below it are the next.
// A start-tick tie between levels keeps the higher level — its slot
// spans the lower one's and must cascade before anything at that
// instant may drain.
func (w *timerWheel) nextSlot() (lvl int, startTick uint64) {
	lvl = -1
	for l := 0; l < wheelLevels; l++ {
		if w.occ[l] == 0 {
			continue
		}
		sh := uint(l * wheelSlotBits)
		posL := w.pos >> sh
		r := uint(posL & wheelMask)
		var tickL uint64
		if hi := w.occ[l] >> r; hi != 0 {
			tickL = posL + uint64(bits.TrailingZeros64(hi))
		} else {
			// Only wrapped bits remain: they sit one revolution ahead.
			tickL = posL - uint64(r) + wheelSlots + uint64(bits.TrailingZeros64(w.occ[l]))
		}
		if st := tickL << sh; lvl < 0 || st <= startTick {
			lvl, startTick = l, st
		}
	}
	return lvl, startTick
}

// drainNextSlot advances the cursor to the earliest occupied slot,
// cascading higher-level slots into lower levels as the cursor enters
// them, and moves the resulting level-0 slot's events into the heap.
// Each event cascades at most wheelLevels-1 times over its lifetime, so
// the amortized cost per event is O(1) list splices plus one O(log h)
// heap push against the small near-horizon heap. Precondition:
// w.count > 0.
func (w *timerWheel) drainNextSlot(e *Engine) {
	for {
		lvl, start := w.nextSlot()
		w.pos = start
		s := int((start >> uint(lvl*wheelSlotBits)) & wheelMask)
		list := w.slots[lvl][s]
		w.slots[lvl][s] = nil
		w.occ[lvl] &^= 1 << uint(s)
		if lvl == 0 {
			for ev := list; ev != nil; {
				next := ev.next
				ev.prev, ev.next = nil, nil
				w.count--
				w.drains++
				e.heap.push(ev)
				ev = next
			}
			w.pos = start + 1
			return
		}
		// Cascade: with the cursor now at the slot's start, every event
		// in it fits a lower level (or level 0) by construction.
		for ev := list; ev != nil; {
			next := ev.next
			ev.prev, ev.next = nil, nil
			w.count--
			w.cascades++
			w.place(ev)
			ev = next
		}
	}
}
