package pdes

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

const look = 10 * sim.Millisecond

// newGroup builds a group of n shards with the test lookahead, all
// seeded identically.
func newGroup(n int) (*Group, []*Shard) {
	g := New(look)
	shards := make([]*Shard, n)
	for i := range shards {
		shards[i] = g.AddShard(sim.NewEngine(7))
	}
	return g, shards
}

func TestCrossShardDeliveryOrder(t *testing.T) {
	// Messages from several shards landing on shard 0 at identical and
	// distinct instants must fire in (at, sent, src, seq) order — the
	// sharded counterpart of the engine's (at, seq) contract.
	g, s := newGroup(3)
	var fired []string
	record := func(arg any) { fired = append(fired, arg.(string)) }

	at := sim.Time(0).Add(100 * sim.Millisecond)
	s[1].Engine().After(1*sim.Millisecond, func() {
		s[1].Send(s[0], at, record, "b-first")  // sent 1ms
		s[1].Send(s[0], at, record, "b-second") // sent 1ms, later seq
	})
	s[2].Engine().After(1*sim.Millisecond, func() {
		s[2].Send(s[0], at, record, "c-tie") // sent 1ms, src 2 > src 1
	})
	s[2].Engine().After(2*sim.Millisecond, func() {
		s[2].Send(s[0], at, record, "c-later-send")                            // sent 2ms
		s[2].Send(s[0], at.Add(-sim.Millisecond), record, "c-earlier-deliver") // earlier at wins overall
	})
	if _, err := g.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	want := []string{"c-earlier-deliver", "b-first", "b-second", "c-tie", "c-later-send"}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("delivery order %v, want %v", fired, want)
	}
}

func TestLookaheadViolationPanics(t *testing.T) {
	g, s := newGroup(2)
	s[1].Engine().After(sim.Millisecond, func() {
		// Delivery less than lookahead away: conservatively unsafe.
		s[1].Send(s[0], s[1].Now().Add(look/2), func(any) {}, nil)
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("lookahead violation not detected")
		}
		if !strings.Contains(fmt.Sprint(r), "violates lookahead") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	g.Run(sim.Forever)
}

func TestShardPanicReachesCoordinator(t *testing.T) {
	g, s := newGroup(3)
	s[2].Engine().After(sim.Millisecond, func() { panic("boom on shard 2") })
	// Give the other shards work in the same window so the parallel
	// fan-out path (not the single-active-shard inline path) runs.
	s[0].Engine().After(sim.Millisecond, func() {})
	s[1].Engine().After(sim.Millisecond, func() {})
	defer func() {
		if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "boom on shard 2") {
			t.Fatalf("shard panic not propagated: %v", r)
		}
	}()
	g.Run(sim.Forever)
}

func TestDeadlockAcrossShards(t *testing.T) {
	g, s := newGroup(2)
	p := s[1].Engine().Spawn("stuck", func(p *sim.Proc) { p.Park() })
	s[1].Engine().Ready(p)
	s[0].Engine().After(sim.Millisecond, func() {}) // unrelated traffic elsewhere
	_, err := g.Run(sim.Forever)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("deadlock not reported: %v", err)
	}
	if g.Live() != 1 {
		t.Fatalf("live = %d, want 1", g.Live())
	}
	g.KillAll()
	if g.Live() != 0 {
		t.Fatalf("live after KillAll = %d", g.Live())
	}
}

func TestHorizonLeavesQueuesIntact(t *testing.T) {
	g, s := newGroup(2)
	var fired int
	s[1].Engine().After(50*sim.Millisecond, func() { fired++ })
	end, hit, err := g.RunHorizon(20 * sim.Millisecond)
	if err != nil || !hit {
		t.Fatalf("end %v hit %v err %v", end, hit, err)
	}
	if fired != 0 {
		t.Fatal("event beyond horizon fired")
	}
	if got := g.Now(); got != sim.Time(0).Add(20*sim.Millisecond) {
		t.Fatalf("clocks at %v, want 20ms", got)
	}
	// A later unbounded Run picks the queue back up.
	if _, err := g.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d after resume", fired)
	}
}

// shardedPipeline runs M logical nodes spread over n shards: a client
// on shard 0 sends each node a request train; each node "serves" with a
// node-specific delay chain and replies; the client records completion
// instants. The recorded log must be identical for any shard count —
// the core shard-assignment-invariance property the cluster layer
// relies on.
func shardedPipeline(t *testing.T, shards int) []string {
	t.Helper()
	const nodes, reqs = 4, 6
	g, s := newGroup(shards)
	var log []string
	var completed int

	type node struct {
		sh   *Shard
		id   int
		busy sim.Time
	}
	ns := make([]*node, nodes)
	for i := range ns {
		ns[i] = &node{sh: s[i%shards], id: i}
	}

	// reply closes one request at the client (shard 0).
	reply := func(arg any) {
		log = append(log, fmt.Sprintf("%v %v", s[0].Now(), arg))
		completed++
	}
	// serve runs on the node's shard: FIFO queue with a deterministic
	// per-node service time, reply after lookahead.
	serve := func(arg any) {
		n := arg.(*node)
		now := n.sh.Now()
		if n.busy < now {
			n.busy = now
		}
		n.busy = n.busy.Add(sim.Duration(n.id+1) * 3 * sim.Millisecond)
		n.sh.Send(s[0], n.busy.Add(look), reply, fmt.Sprintf("node%d", n.id))
	}
	// The client fans the request train out round-robin, one request
	// per millisecond, each delivered exactly lookahead later.
	for r := 0; r < reqs; r++ {
		n := ns[r%nodes]
		s[0].Engine().AfterFunc(sim.Duration(r)*sim.Millisecond, func(arg any) {
			nd := arg.(*node)
			s[0].Send(nd.sh, s[0].Now().Add(look), serve, nd)
		}, n)
	}
	if _, err := g.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	if completed != reqs {
		t.Fatalf("completed %d of %d", completed, reqs)
	}
	return log
}

func TestShardCountInvariant(t *testing.T) {
	ref := shardedPipeline(t, 1)
	for _, n := range []int{2, 3, 4} {
		if got := shardedPipeline(t, n); !reflect.DeepEqual(got, ref) {
			t.Fatalf("%d shards diverged:\n%v\nwant\n%v", n, got, ref)
		}
	}
}

func TestEmptyGroupAndZeroLookahead(t *testing.T) {
	if end, err := New(look).Run(sim.Forever); end != 0 || err != nil {
		t.Fatalf("empty group run: %v, %v", end, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero lookahead accepted")
		}
	}()
	New(0)
}

func TestWindowStats(t *testing.T) {
	g, s := newGroup(2)
	// A ping-pong across shards: each leg forces at least one more
	// conservative window.
	var hops int
	var bounce func(arg any)
	bounce = func(arg any) {
		hops++
		if hops >= 4 {
			return
		}
		from, to := s[hops%2], s[(hops+1)%2]
		from.Send(to, from.Engine().Now().Add(look), bounce, nil)
	}
	s[1].Engine().After(look, func() { s[1].Send(s[0], s[1].Engine().Now().Add(look), bounce, nil) })
	if _, err := g.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	ws := g.WindowStats()
	if ws.Windows <= 0 {
		t.Fatalf("windows = %d", ws.Windows)
	}
	if ws.WidthSum <= 0 {
		t.Fatalf("width sum = %v", ws.WidthSum)
	}
	if len(ws.ShardEvents) != 2 {
		t.Fatalf("shard events = %v", ws.ShardEvents)
	}
	var events uint64
	for _, n := range ws.ShardEvents {
		events += n
	}
	// 1 kickoff + 4 bounce deliveries fired across the group.
	if events != 5 {
		t.Fatalf("total events = %d, want 5", events)
	}
}

// shardedDenseTimers runs the wheel's fleet workload under the
// conservative-parallel coordinator: each logical node answers requests
// by scheduling a dense burst of short-horizon grid-aligned timers (the
// slice/quantum/arrival pattern the timing wheel absorbs), cancelling a
// deterministic third of them, and folding every fire instant into a
// node-local accumulator that is shipped back to shard 0 when the burst
// settles. Burst deltas deliberately straddle the lookahead window, so
// wheel-resident timers must survive RunWindow's park-at-window-edge
// clock jumps and keep NextEventTime (the safe-window input) exact.
// The recorded log must be identical for any shard count.
func shardedDenseTimers(t *testing.T, shards int) []string {
	t.Helper()
	const nodes, reqs, burst = 4, 3, 48
	const grid = 32768 * sim.Nanosecond
	g, s := newGroup(shards)
	var log []string

	type node struct {
		sh  *Shard
		id  int
		acc uint64
		out int // burst timers still pending
	}
	ns := make([]*node, nodes)
	for i := range ns {
		ns[i] = &node{sh: s[i%shards], id: i}
	}

	reply := func(arg any) {
		log = append(log, fmt.Sprintf("%v %v", s[0].Now(), arg))
	}
	// serve schedules the dense burst on the node's shard. Deltas span
	// sub-window grid instants up to a few multiples of the lookahead,
	// so some timers are still wheel-resident when the window closes.
	serve := func(arg any) {
		n := arg.(*node)
		eng := n.sh.Engine()
		for j := 0; j < burst; j++ {
			delta := sim.Duration(j%96+1)*grid + sim.Duration(j%5)*7*sim.Millisecond
			n.out++
			ev := eng.AfterFunc(delta, func(a any) {
				nd := a.(*node)
				nd.acc = nd.acc*1099511628211 + uint64(nd.sh.Now())
				nd.out--
				if nd.out == 0 {
					nd.sh.Send(s[0], nd.sh.Now().Add(look), reply,
						fmt.Sprintf("node%d acc%x", nd.id, nd.acc))
				}
			}, n)
			if j%3 == 2 {
				ev.Cancel()
				n.out--
			}
		}
	}
	for r := 0; r < reqs; r++ {
		n := ns[r%nodes]
		s[0].Engine().AfterFunc(sim.Duration(r)*5*sim.Millisecond, func(arg any) {
			nd := arg.(*node)
			s[0].Send(nd.sh, s[0].Now().Add(look), serve, nd)
		}, n)
	}
	if _, err := g.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	if len(log) != reqs {
		t.Fatalf("%d replies, want %d", len(log), reqs)
	}
	// The bursts must actually have exercised the wheel tier, not just
	// the heap: grid-scale deltas are well inside the level-0/1 horizon.
	var inserts uint64
	for _, sh := range g.Shards() {
		inserts += sh.Engine().WheelInserts()
	}
	if inserts == 0 {
		t.Fatal("dense burst never touched the timing wheel")
	}
	if ws := g.WindowStats(); ws.Windows < 2 {
		t.Fatalf("windows = %d, want the bursts to span several lockstep windows", ws.Windows)
	}
	return log
}

func TestDenseTimersShardCountInvariant(t *testing.T) {
	ref := shardedDenseTimers(t, 1)
	for _, n := range []int{2, 4} {
		if got := shardedDenseTimers(t, n); !reflect.DeepEqual(got, ref) {
			t.Fatalf("%d shards diverged:\n%v\nwant\n%v", n, got, ref)
		}
	}
}
