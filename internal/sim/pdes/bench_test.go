package pdes

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkShardBarrier measures the pure window cost: four shards,
// each with a self-rescheduling timer exactly one lookahead apart, so
// every window runs every shard for one event and the barrier fan-out/
// fan-in dominates. ns/op is the per-window round-trip paid at fleet
// scale; steady state must not allocate.
func BenchmarkShardBarrier(b *testing.B) {
	const shards = 4
	g, s := newGroupB(shards)
	type ticker struct {
		sh    *Shard
		fn    func(any)
		count int
	}
	ts := make([]*ticker, shards)
	for i := range ts {
		t := &ticker{sh: s[i]}
		t.fn = func(arg any) {
			tk := arg.(*ticker)
			tk.count++
			tk.sh.Engine().AfterFunc(look, tk.fn, tk)
		}
		ts[i] = t
		s[i].Engine().AfterFunc(0, t.fn, t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	// Each horizon extension admits b.N further windows of width look.
	if _, err := g.Run(sim.Time(0).Add(sim.Duration(b.N) * look)); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if ts[0].count < b.N {
		b.Fatalf("ticks = %d, want >= %d", ts[0].count, b.N)
	}
}

// BenchmarkCrossShardSend measures one message round trip: a request
// hops from shard 0 to shard 1 and a reply hops back, covering Send,
// the outbox, the barrier merge sort, and injection into the
// destination engine. Reported ns/op is one full round trip (two
// sends); steady state must not allocate.
func BenchmarkCrossShardSend(b *testing.B) {
	g, s := newGroupB(2)
	var pong func(any)
	var ping func(any)
	count := 0
	ping = func(any) {
		s[0].Send(s[1], s[0].Now().Add(look), pong, nil)
	}
	pong = func(any) {
		count++
		s[1].Send(s[0], s[1].Now().Add(look), ping, nil)
	}
	s[0].Engine().AfterFunc(0, ping, nil)
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := g.Run(sim.Time(0).Add(sim.Duration(2*b.N) * look)); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if count < b.N {
		b.Fatalf("round trips = %d, want >= %d", count, b.N)
	}
}

// newGroupB mirrors newGroup without the testing.T plumbing.
func newGroupB(n int) (*Group, []*Shard) {
	g := New(look)
	shards := make([]*Shard, n)
	for i := range shards {
		shards[i] = g.AddShard(sim.NewEngine(7))
	}
	return g, shards
}
