// Package pdes implements conservative parallel discrete-event
// simulation (classic Chandy–Misra–Bryant lookahead synchronisation)
// over several sim.Engine shards.
//
// A Group owns N engines and advances them in lockstep safe windows: if
// every cross-shard interaction takes at least `lookahead` of virtual
// time to arrive, then all events strictly below
//
//	min(next event time across shards) + lookahead
//
// are causally independent across shards, and each shard may process
// its slice of that window on its own host core without ever seeing an
// event from the past. Cross-shard interactions are timestamped
// messages (Shard.Send) buffered in per-shard outboxes during a window
// and exchanged at the barrier, so no null-message machinery is needed
// beyond the window bound itself.
//
// Determinism: window bounds derive only from queued event times (never
// host timing), each shard appends to its own outbox in its own event
// order, and the barrier injects the merged messages sorted by
// (deliverAt, sendTime, source shard, source sequence) — a total order
// that is a pure function of the simulated timeline. A Group therefore
// produces byte-identical simulations at any host parallelism, and —
// because message timestamps are the same virtual instants a single
// shared engine would have used — a sharded run reproduces the
// single-engine timeline exactly up to same-nanosecond ties between
// unrelated events, which the scenarios' continuous-time workloads do
// not generate (and the determinism tests verify).
//
// The host goroutines and channels below are the second sanctioned use
// of host concurrency in the deterministic core (after the engine's
// coroutine handoff): one worker per shard, commanded over unbuffered
// channels, with a full barrier between windows — so the Go scheduler
// chooses only *when* windows run, never their contents or order.
package pdes

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// message is one cross-shard interaction: fn(arg) runs on the
// destination shard's engine at virtual time at.
type message struct {
	at   sim.Time // delivery instant (>= sendTime + lookahead)
	sent sim.Time // source shard's clock at Send
	src  int      // source shard id
	seq  uint64   // per-source send counter (outbox order)
	dst  int
	fn   func(any)
	arg  any
}

// messageLess is the barrier's total delivery order: delivery instant,
// then send instant, then source shard, then the source's own send
// order. The first two keys make the order shard-assignment-invariant
// for the continuous-time workloads (distinct sends virtually never
// share an exact nanosecond); the last two make it a total order
// regardless.
func messageLess(a, b *message) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.sent != b.sent {
		return a.sent < b.sent
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// msgSlice sorts messages by messageLess. A named type with a pointer
// receiver keeps the barrier's sort allocation-free (no per-window
// closure or interface boxing).
type msgSlice []*message

func (m *msgSlice) Len() int           { return len(*m) }
func (m *msgSlice) Less(i, j int) bool { return messageLess((*m)[i], (*m)[j]) }
func (m *msgSlice) Swap(i, j int)      { (*m)[i], (*m)[j] = (*m)[j], (*m)[i] }

// Shard is one engine's membership in a Group. All access to a shard's
// engine (and to any simulation state homed on it) must happen either
// inside that engine's event context or while the group is at a
// barrier.
type Shard struct {
	g   *Group
	id  int
	eng *sim.Engine

	outbox []*message // filled by Send during a window, drained at the barrier
	free   []*message // recycled message storage (returned at the barrier)
	seq    uint64

	cmd chan sim.Time
	res chan windowResult
}

// windowResult carries a shard worker's window outcome back to the
// coordinator, including a recovered panic to re-raise there.
type windowResult struct {
	err      error
	panicked any
}

// ID returns the shard's index within its group.
func (s *Shard) ID() int { return s.id }

// Engine returns the shard's engine. Simulation state homed on this
// shard must be built on (and only ever touched from) this engine.
func (s *Shard) Engine() *sim.Engine { return s.eng }

// Now returns the shard engine's current virtual time.
func (s *Shard) Now() sim.Time { return s.eng.Now() }

// Send schedules fn(arg) on dst's engine at virtual time at. It must be
// called from within s's own execution (an event callback or proc on
// s's engine), and at must respect the group's lookahead:
// at >= s.Now() + lookahead. Sends to the shard itself are legal and
// simply take the barrier path like any other message.
func (s *Shard) Send(dst *Shard, at sim.Time, fn func(any), arg any) {
	if dst.g != s.g {
		panic("pdes: Send across groups")
	}
	if min := s.eng.Now().Add(s.g.lookahead); at < min {
		panic(fmt.Sprintf("pdes: send from shard %d at %v for %v violates lookahead %v",
			s.id, s.eng.Now(), at, s.g.lookahead))
	}
	s.seq++
	var m *message
	if n := len(s.free); n > 0 {
		m = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		m = new(message)
	}
	*m = message{at: at, sent: s.eng.Now(), src: s.id, seq: s.seq,
		dst: dst.id, fn: fn, arg: arg}
	s.outbox = append(s.outbox, m)
}

// Group is a set of engine shards advancing in conservative lockstep
// windows.
type Group struct {
	shards    []*Shard
	lookahead sim.Duration
	merged    msgSlice // barrier scratch, reused across windows
	active    []*Shard // window scratch: shards with work this window
	running   bool

	// windows and widthSum profile the coordinator: how many lockstep
	// windows ran and their total simulated width (see WindowStats).
	windows  int64
	widthSum sim.Duration
}

// New returns an empty group with the given lookahead — the minimum
// virtual latency of any cross-shard interaction. It must be positive:
// a zero lookahead admits no safe window.
func New(lookahead sim.Duration) *Group {
	if lookahead <= 0 {
		panic("pdes: lookahead must be positive")
	}
	return &Group{lookahead: lookahead}
}

// Lookahead returns the group's safe-window width.
func (g *Group) Lookahead() sim.Duration { return g.lookahead }

// AddShard wraps eng as the group's next shard. All shards must be
// added before the first Run.
func (g *Group) AddShard(eng *sim.Engine) *Shard {
	if g.running {
		panic("pdes: AddShard during Run")
	}
	s := &Shard{g: g, id: len(g.shards), eng: eng}
	g.shards = append(g.shards, s)
	return s
}

// Shards returns the group's shards in id order.
func (g *Group) Shards() []*Shard { return append([]*Shard(nil), g.shards...) }

// Live reports the total number of live procs across all shard engines.
func (g *Group) Live() int {
	n := 0
	for _, s := range g.shards {
		n += s.eng.Live()
	}
	return n
}

// Now returns the latest shard clock — the group's notion of current
// virtual time (shard clocks stay within one window of each other and
// converge at barriers).
func (g *Group) Now() sim.Time {
	var now sim.Time
	for _, s := range g.shards {
		if t := s.eng.Now(); t > now {
			now = t
		}
	}
	return now
}

// KillAll terminates every live proc on every shard (see
// sim.Engine.KillAll). Call it only at a barrier — i.e. after Run has
// returned — to abandon a timed-out simulation.
func (g *Group) KillAll() {
	for _, s := range g.shards {
		s.eng.KillAll()
	}
}

// worker is one shard's window executor: it runs windows on command
// until its cmd channel closes. Engine panics (including proc panics)
// are recovered and shipped to the coordinator, which re-raises them.
// The channels arrive as arguments so the goroutine never touches the
// Shard's channel fields, which the coordinator clears after close.
func (s *Shard) worker(cmd <-chan sim.Time, res chan<- windowResult) {
	//lint:allow goleak(shard worker receive: pdes barrier protocol — the coordinator commands one window at a time and blocks on res, so exactly the commanded shards run between barriers)
	for end := range cmd {
		var wr windowResult
		func() {
			defer func() { wr.panicked = recover() }()
			_, wr.err = s.eng.RunWindow(end)
		}()
		//lint:allow goleak(shard worker send: barrier result hand-back; the coordinator is always blocked on this receive)
		res <- wr
	}
}

// Run advances all shards in lockstep windows until every engine's
// queue is dry (and no messages are in flight) or the next event lies
// beyond until. It returns the group's final virtual time and an error
// if the whole simulation deadlocked: procs alive somewhere but no
// shard has events and no messages are pending. Like sim.Engine.Run, a
// horizon in the past of every shard clock returns immediately.
func (g *Group) Run(until sim.Time) (sim.Time, error) {
	if len(g.shards) == 0 {
		return 0, nil
	}
	g.running = true
	defer func() { g.running = false }()

	parallel := len(g.shards) > 1
	if parallel {
		for _, s := range g.shards {
			//lint:allow goleak(unbuffered cmd channel is the coordinator half of the pdes barrier protocol; see package comment)
			s.cmd = make(chan sim.Time)
			//lint:allow goleak(unbuffered res channel is the worker half of the pdes barrier protocol; see package comment)
			s.res = make(chan windowResult)
			//lint:allow goleak(one worker goroutine per shard, commanded one window at a time with a full barrier between windows — shut down via close(cmd) before Run returns)
			go s.worker(s.cmd, s.res)
		}
		defer func() {
			for _, s := range g.shards {
				//lint:allow goleak(worker shutdown: closing cmd ends the worker's range loop)
				close(s.cmd)
				s.cmd, s.res = nil, nil
			}
		}()
	}

	for {
		// The safe bound: no shard can produce an effect on another
		// before minNext + lookahead, so every event strictly below that
		// is independent across shards.
		var minNext sim.Time
		any := false
		for _, s := range g.shards {
			if t, ok := s.eng.NextEventTime(); ok && (!any || t < minNext) {
				minNext, any = t, true
			}
		}
		if !any {
			break
		}
		if minNext > until {
			// Everything left is beyond the horizon: advance the clocks
			// (forward only) and leave the queues for a later Run.
			for _, s := range g.shards {
				if _, err := s.eng.RunWindow(until); err != nil {
					return g.Now(), err
				}
			}
			return g.Now(), nil
		}
		end := minNext.Add(g.lookahead) - 1 // window is [.., minNext+lookahead)
		if end > until {
			end = until
		}
		g.windows++
		g.widthSum += end.Sub(minNext) + 1

		if err := g.window(end, parallel); err != nil {
			return g.Now(), err
		}
		g.exchange()
	}

	if live := g.Live(); live > 0 {
		return g.Now(), fmt.Errorf("pdes: deadlock at %v: %d procs parked across %d shards with no pending events or messages",
			g.Now(), live, len(g.shards))
	}
	return g.Now(), nil
}

// window runs every shard with work to end. Shards whose next event
// lies beyond the window are skipped entirely — their clocks catch up
// lazily — so a fleet with one hot shard pays no barrier fan-out.
func (g *Group) window(end sim.Time, parallel bool) error {
	if !parallel {
		_, err := g.shards[0].eng.RunWindow(end)
		return err
	}
	active := g.active[:0]
	for _, s := range g.shards {
		if t, ok := s.eng.NextEventTime(); ok && t <= end {
			active = append(active, s)
		}
	}
	g.active = active
	if len(active) == 1 {
		// One busy shard: run it inline, skip the channel round-trip.
		_, err := active[0].eng.RunWindow(end)
		return err
	}
	for _, s := range active {
		//lint:allow goleak(barrier fan-out send: commands the shard's worker to run one window)
		s.cmd <- end
	}
	var firstErr error
	var panicked any
	for _, s := range active {
		//lint:allow goleak(barrier fan-in receive: collects the shard's window result; every commanded worker sends exactly one)
		wr := <-s.res
		if wr.panicked != nil && panicked == nil {
			panicked = wr.panicked
		}
		if wr.err != nil && firstErr == nil {
			firstErr = wr.err
		}
	}
	if panicked != nil {
		// Re-raise on the coordinator after the full barrier, so no
		// worker is left mid-window.
		panic(panicked)
	}
	return firstErr
}

// exchange drains every shard's outbox and injects the merged messages
// into their destination engines in (at, sent, src, seq) order. Every
// buffered message is for a future window (Send enforces the
// lookahead), so injection order equals firing order at equal instants.
func (g *Group) exchange() {
	g.merged = g.merged[:0]
	for _, s := range g.shards {
		g.merged = append(g.merged, s.outbox...)
		for i := range s.outbox {
			s.outbox[i] = nil
		}
		s.outbox = s.outbox[:0]
	}
	if len(g.merged) == 0 {
		return
	}
	sort.Sort(&g.merged)
	for i, m := range g.merged {
		g.shards[m.dst].eng.AtFunc(m.at, m.fn, m.arg)
		m.fn, m.arg = nil, nil
		g.shards[m.src].free = append(g.shards[m.src].free, m)
		g.merged[i] = nil
	}
}

// WindowStats profiles a group's run so far: lockstep windows executed,
// their total simulated width, and per-shard processed-event counts.
// All three are host-timing-free, but they describe the coordination
// structure — which only exists when sharded — so they belong in run
// profiling reports, not in shard-count-invariant metric exports.
type WindowStats struct {
	// Windows counts the lockstep windows the coordinator ran.
	Windows int64
	// WidthSum is the total simulated width of those windows; divide by
	// Windows for the mean safe-window width (bounded by the lookahead).
	WidthSum sim.Duration
	// ShardEvents[i] is the number of events shard i's engine fired.
	ShardEvents []uint64
}

// WindowStats returns the group's window profile. Call it at a barrier
// (after Run returns).
func (g *Group) WindowStats() WindowStats {
	st := WindowStats{Windows: g.windows, WidthSum: g.widthSum,
		ShardEvents: make([]uint64, len(g.shards))}
	for i, s := range g.shards {
		st.ShardEvents[i] = s.eng.Processed()
	}
	return st
}

// RunHorizon drives the group with an optional horizon (non-positive
// means none), reporting whether the horizon was reached — the group
// counterpart of sim.Engine.RunHorizon.
func (g *Group) RunHorizon(horizon sim.Duration) (end sim.Time, hit bool, err error) {
	until := sim.Forever
	if horizon > 0 {
		until = g.Now().Add(horizon)
	}
	end, err = g.Run(until)
	return end, err == nil && end >= until, err
}
