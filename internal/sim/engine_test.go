package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEventCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(10, func() { fired = true })
	e.At(5, func() { ev.Cancel() })
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestAfterClampsNegative(t *testing.T) {
	e := NewEngine(1)
	fired := Time(-1)
	e.After(-5, func() { fired = e.Now() })
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("negative After fired at %v, want 0", fired)
	}
}

func TestRunHorizon(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.At(10, func() { fired = append(fired, 10) })
	e.At(100, func() { fired = append(fired, 100) })
	now, err := e.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	if now != 50 || len(fired) != 1 {
		t.Fatalf("Run(50) = %v, fired %v", now, fired)
	}
	now, err = e.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if now != 100 || len(fired) != 2 {
		t.Fatalf("RunAll = %v, fired %v", now, fired)
	}
}

func TestProcParkReady(t *testing.T) {
	e := NewEngine(1)
	var trace []string
	p := e.Spawn("worker", func(p *Proc) {
		trace = append(trace, "start")
		p.Park()
		trace = append(trace, "resumed")
	})
	e.Ready(p)
	e.At(10, func() {
		trace = append(trace, "wake")
		e.Ready(p)
	})
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []string{"start", "wake", "resumed"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
	if p.State() != ProcExited {
		t.Fatalf("state = %v, want exited", p.State())
	}
}

func TestProcSleepAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	var woke Time
	p := e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(1234)
		woke = e.Now()
	})
	e.Ready(p)
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if woke != 1234 {
		t.Fatalf("woke at %v, want 1234", woke)
	}
}

func TestDoubleReadyIsSingleResume(t *testing.T) {
	e := NewEngine(1)
	resumes := 0
	p := e.Spawn("w", func(p *Proc) {
		p.Park()
		resumes++
		p.Park()
		resumes++
	})
	e.Ready(p)
	e.At(1, func() {
		e.Ready(p)
		e.Ready(p) // duplicate must collapse
	})
	e.At(2, func() { e.Ready(p) })
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if resumes != 2 {
		t.Fatalf("resumes = %d, want 2", resumes)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine(1)
	p := e.Spawn("stuck", func(p *Proc) { p.Park() })
	e.Ready(p)
	if _, err := e.RunAll(); err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestManyProcsDeterministic(t *testing.T) {
	run := func() []int {
		e := NewEngine(42)
		var order []int
		for i := 0; i < 100; i++ {
			i := i
			p := e.Spawn("w", func(p *Proc) {
				p.Sleep(Duration(e.Rand("d").Intn(1000) + 1))
				order = append(order, i)
			})
			e.Ready(p)
		}
		if _, err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic: run1[%d]=%d run2[%d]=%d", i, a[i], i, b[i])
		}
	}
}

func TestHeapPropertyOrdered(t *testing.T) {
	// Property: events always fire in nondecreasing (at, seq) order no
	// matter the insertion pattern.
	f := func(times []uint16) bool {
		e := NewEngine(7)
		var fired []Time
		for _, tt := range times {
			at := Time(tt)
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		if _, err := e.RunAll(); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandStreamsIndependent(t *testing.T) {
	r := NewRand(99)
	a := r.Stream("alpha")
	b := r.Stream("beta")
	a2 := NewRand(99).Stream("alpha")
	if a.Uint64() != a2.Uint64() {
		t.Fatal("same-label streams differ")
	}
	if a.Uint64() == b.Uint64() {
		t.Fatal("different-label streams collide (unlikely)")
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRand(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if mean < 0.98 || mean > 1.02 {
		t.Fatalf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRand(8)
	for i := 0; i < 1000; i++ {
		d := r.Jitter(1000, 0.1)
		if d < 900 || d > 1100 {
			t.Fatalf("jitter out of bounds: %v", d)
		}
	}
	if r.Jitter(1000, 0) != 1000 {
		t.Fatal("zero jitter must be identity")
	}
}

func TestKillUnwindsParkedProc(t *testing.T) {
	e := NewEngine(1)
	cleaned := false
	p := e.Spawn("victim", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Park() // never resumed normally
		t.Error("victim continued past Park")
	})
	e.Ready(p)
	e.At(5, func() { e.Kill(p) })
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !cleaned {
		t.Fatal("deferred cleanup did not run on kill")
	}
	if p.State() != ProcExited {
		t.Fatalf("state = %v, want exited", p.State())
	}
	if e.Live() != 0 {
		t.Fatalf("live = %d", e.Live())
	}
}

func TestKillBeforeFirstRun(t *testing.T) {
	e := NewEngine(1)
	ran := false
	p := e.Spawn("never", func(p *Proc) { ran = true })
	e.Kill(p)
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("killed proc ran its body")
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.At(1, func() { count++; e.Stop() })
	e.At(2, func() { count++ })
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("count = %d, want 1 (Stop must halt)", count)
	}
	// Remaining event still runs on the next call.
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestStopBeforeRunIsNotLost(t *testing.T) {
	// Regression: Run used to reset the stop flag unconditionally, so a
	// Stop issued between (or before) Run calls was silently discarded.
	e := NewEngine(1)
	count := 0
	e.At(1, func() { count++ })
	e.Stop()
	if end, err := e.RunAll(); err != nil {
		t.Fatal(err)
	} else if end != 0 {
		t.Fatalf("stopped Run advanced the clock to %v", end)
	}
	if count != 0 {
		t.Fatalf("count = %d: pre-Run Stop processed events", count)
	}
	// The stop request is consumed by exactly one Run: the next call
	// processes events normally.
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("count = %d, want 1 after resumed Run", count)
	}
}

func TestStopBetweenRunsIsNotLost(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.At(1, func() { count++ })
	e.At(10, func() { count++ })
	if _, err := e.Run(5); err != nil { // horizon return, no stop involved
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("count = %d, want 1 after horizon run", count)
	}
	e.Stop()
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("count = %d: between-Runs Stop was lost", count)
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestProcessedCountsFiredEvents(t *testing.T) {
	e := NewEngine(1)
	if e.Processed() != 0 {
		t.Fatalf("fresh engine processed = %d", e.Processed())
	}
	for i := 0; i < 5; i++ {
		e.After(Duration(i+1)*Millisecond, func() {})
	}
	// A cancelled event never fires, so it must not count.
	ev := e.AfterFunc(10*Millisecond, func(any) {}, nil)
	ev.Cancel()
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if e.Processed() != 5 {
		t.Fatalf("processed = %d, want 5", e.Processed())
	}
}
