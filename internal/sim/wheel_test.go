package sim

import (
	"testing"
	"testing/quick"
)

// wheelDelta spreads test timers across all queue tiers: the immediate
// ring, every wheel level, and the overflow heap.
func wheelDelta(r *Rand) Duration {
	switch r.Intn(7) {
	case 0:
		return 0 // immediate ring
	case 1:
		return Duration(r.Intn(1 << wheelShift)) // inside one level-0 slot
	case 2:
		return Duration(r.Intn(1 << (wheelShift + wheelSlotBits))) // level 0
	case 3:
		return Duration(r.Intn(1 << (wheelShift + 2*wheelSlotBits))) // level 1
	case 4:
		return Duration(r.Intn(1 << (wheelShift + 3*wheelSlotBits))) // level 2
	case 5:
		return Duration(r.Intn(1 << (wheelShift + 5*wheelSlotBits))) // level 3/4
	default:
		return Duration(1<<(wheelShift+5*wheelSlotBits)) + Duration(r.Intn(1000)) // heap overflow
	}
}

// TestWheelPlacementTiers pins the routing rules: same-instant events hit
// the ring, short-horizon futures the wheel, beyond-horizon futures the
// heap, and events whose slot has already drained fall back to the heap.
func TestWheelPlacementTiers(t *testing.T) {
	e := NewEngine(1)
	e.wheelGate = 0    // force wheel placement; the density gate has its own coverage
	e.At(0, func() {}) // at == now: immediate ring
	if e.WheelOccupancy() != 0 || e.heap.len() != 0 {
		t.Fatalf("ring event leaked into wheel/heap")
	}
	e.At(Time(3*(1<<wheelShift)), func() {})   // level 0
	e.At(Time(100*(1<<wheelShift)), func() {}) // level 1
	if e.WheelOccupancy() != 2 {
		t.Fatalf("wheel occupancy = %d, want 2", e.WheelOccupancy())
	}
	e.At(Time(uint64(1)<<(wheelShift+wheelLevels*wheelSlotBits))+10, func() {}) // overflow
	if e.WheelOccupancy() != 2 || e.heap.len() != 1 {
		t.Fatalf("overflow event not in heap (wheel %d, heap %d)", e.WheelOccupancy(), e.heap.len())
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if e.WheelOccupancy() != 0 || e.Pending() != 0 {
		t.Fatalf("events left behind: wheel %d, pending %d", e.WheelOccupancy(), e.Pending())
	}
	// After a wheel event fires, the cursor sits one past its drained
	// slot while the clock sits inside it: a new event for the current
	// (already-drained) tick must route to the heap, yet still fire.
	e2 := NewEngine(1)
	e2.wheelGate = 0
	e2.At(Time(3*(1<<wheelShift)), func() {})
	if _, err := e2.RunAll(); err != nil {
		t.Fatal(err)
	}
	if nowTick := uint64(e2.Now()) >> wheelShift; e2.wheel.pos != nowTick+1 {
		t.Fatalf("cursor = %d, want %d (one past the fired slot)", e2.wheel.pos, nowTick+1)
	}
	var got []Time
	e2.At(e2.Now()+1, func() { got = append(got, e2.Now()) })
	if e2.WheelOccupancy() != 0 {
		t.Fatalf("behind-cursor event landed in the wheel")
	}
	if _, err := e2.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("behind-cursor event did not fire: %v", got)
	}
}

// TestWheelOrderingProperty is the cross-tier ordering property: events
// whose times span the ring, all wheel levels, and the overflow heap
// fire in nondecreasing (at, seq) order regardless of insertion pattern.
func TestWheelOrderingProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := NewRand(seed)
		e := NewEngine(1)
		if seed%2 == 0 {
			e.wheelGate = 0 // sweep both the gated and always-wheel configs
		}
		var fired []Time
		count := int(n)%200 + 20
		for i := 0; i < count; i++ {
			e.After(wheelDelta(r), func() { fired = append(fired, e.Now()) })
		}
		if _, err := e.RunAll(); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestWheelSameInstantFIFO checks the quantised-grid shape from the
// resilience layer: many timers on the exact same grid instants (the
// 32.768µs retry/backoff grid) must fire FIFO within each instant even
// though they share a wheel slot.
func TestWheelSameInstantFIFO(t *testing.T) {
	const grid = 32768 * Nanosecond
	e := NewEngine(1)
	e.wheelGate = 0
	type rec struct {
		at  Time
		ord int
	}
	var fired []rec
	ord := 0
	for i := 0; i < 300; i++ {
		i := i
		e.After(Duration(i%10+1)*grid, func() {
			fired = append(fired, rec{e.Now(), i})
			ord++
		})
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 300 {
		t.Fatalf("fired %d, want 300", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		a, b := fired[i-1], fired[i]
		if b.at < a.at || (b.at == a.at && b.ord < a.ord) {
			t.Fatalf("grid instants not FIFO: %+v after %+v", b, a)
		}
	}
}

// TestWheelCancelInterleavings is the wheel-range counterpart of
// TestCancelHeavyInterleavings: deltas span all levels, and the full
// invariant set (wheel linkage, occupancy bitmaps, pending counter) is
// checked after every mutation.
func TestWheelCancelInterleavings(t *testing.T) {
	rng := NewRand(4321)
	e := NewEngine(1)
	e.wheelGate = 0
	var handles []Event
	var fired []Time
	for round := 0; round < 25; round++ {
		for op := 0; op < 40; op++ {
			switch rng.Intn(4) {
			case 0, 1:
				handles = append(handles, e.After(wheelDelta(rng), func() { fired = append(fired, e.Now()) }))
			case 2:
				if len(handles) > 0 {
					handles[rng.Intn(len(handles))].Cancel()
				}
			case 3:
				if len(handles) > 0 {
					victim := handles[rng.Intn(len(handles))]
					handles = append(handles, e.After(wheelDelta(rng), func() {
						victim.Cancel()
						fired = append(fired, e.Now())
					}))
				}
			}
			checkInvariants(t, e)
		}
		// Split the drain at a horizon inside the wheel range to exercise
		// park-and-resume across slot boundaries.
		if _, err := e.Run(e.Now() + Time(rng.Intn(1<<(wheelShift+2*wheelSlotBits)))); err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, e)
		if _, err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, e)
		if e.Pending() != 0 {
			t.Fatalf("round %d: %d events pending after RunAll", round, e.Pending())
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				t.Fatalf("events fired out of order: %v after %v", fired[i], fired[i-1])
			}
		}
		fired = fired[:0]
		handles = handles[:0]
	}
}

// TestWheelHandleSurvivesCascade verifies that cascading (level k ->
// level k-1 -> heap) preserves event identity: a handle taken at
// schedule time still reports Active/When and can cancel after the
// event has migrated tiers.
func TestWheelHandleSurvivesCascade(t *testing.T) {
	e := NewEngine(1)
	e.wheelGate = 0
	at := Time(200 * (1 << (wheelShift + wheelSlotBits))) // level 2 distance
	fired := false
	ev := e.At(at, func() { fired = true })
	if e.WheelOccupancy() != 1 {
		t.Fatalf("event not wheel-resident")
	}
	// Drive the clock close enough that the event has cascaded at least
	// once (a sacrificial earlier timer forces cursor advance).
	e.At(at-Time(1<<wheelShift), func() {})
	if _, err := e.Run(at - 1); err != nil {
		t.Fatal(err)
	}
	if !ev.Active() || ev.When() != at {
		t.Fatalf("handle lost across cascade: active=%v when=%v", ev.Active(), ev.When())
	}
	if e.WheelCascades() == 0 {
		t.Fatalf("no cascades recorded; test scenario broken")
	}
	ev.Cancel()
	if ev.Active() {
		t.Fatal("cancel after cascade did not take")
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired after cascade")
	}
}

// TestWheelCounters checks the profiling accessors' accounting identity:
// every wheel insert is eventually drained to the heap, cancelled in
// place, or still resident.
func TestWheelCounters(t *testing.T) {
	e := NewEngine(1)
	e.wheelGate = 0 // all 500 must be wheel-resident for the counter identity
	nop := func(any) {}
	var handles []Event
	for i := 0; i < 500; i++ {
		handles = append(handles, e.AfterFunc(Duration(i%300+1)*Duration(1<<wheelShift), nop, nil))
	}
	inserted := e.WheelInserts()
	if inserted == 0 {
		t.Fatal("no wheel inserts recorded")
	}
	cancelled := uint64(0)
	for i, h := range handles {
		if i%3 == 0 {
			h.Cancel()
			cancelled++
		}
	}
	if _, err := e.Run(150 * Time(1<<wheelShift)); err != nil {
		t.Fatal(err)
	}
	if got := e.WheelInserts() - e.WheelDrains() - uint64(e.WheelOccupancy()); got != cancelled {
		t.Fatalf("counter identity: inserts-drains-occupancy = %d, want %d cancelled", got, cancelled)
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if e.WheelOccupancy() != 0 {
		t.Fatalf("occupancy = %d after drain", e.WheelOccupancy())
	}
	if e.WheelInserts()-e.WheelDrains() != cancelled {
		t.Fatalf("drains = %d, inserts = %d, cancelled = %d", e.WheelDrains(), e.WheelInserts(), cancelled)
	}
}

// TestWheelSteadyStateZeroAlloc extends the zero-alloc pin to the wheel
// path: schedule/cascade/drain/fire cycles at wheel distances allocate
// nothing once the pool is warm.
func TestWheelSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine(1)
	e.wheelGate = 0
	nop := func(any) {}
	for i := 0; i < 200; i++ {
		e.AfterFunc(Duration(i%100+1)*Duration(1<<wheelShift), nop, nil)
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		e.AfterFunc(70*Duration(1<<wheelShift), nop, nil)      // level 1
		ev := e.AfterFunc(3*Duration(1<<wheelShift), nop, nil) // level 0
		ev.Cancel()                                            // O(1) wheel cancel
		if _, err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state wheel cycle allocates %.1f objects, want 0", allocs)
	}
}

// TestWheelRunWindowPark checks the pdes contract: RunWindow must park
// the clock at the window edge without disturbing wheel-resident events,
// and NextEventTime must report the exact next instant (not a slot
// bound) both before and after the park.
func TestWheelRunWindowPark(t *testing.T) {
	e := NewEngine(1)
	e.wheelGate = 0
	at := Time(37*(1<<wheelShift)) + 123 // mid-slot, level 0
	fired := Time(-1)
	e.At(at, func() { fired = e.Now() })
	if got, ok := e.NextEventTime(); !ok || got != at {
		t.Fatalf("NextEventTime = %v,%v, want %v,true", got, ok, at)
	}
	edge := at - 500
	end, err := e.RunWindow(edge)
	if err != nil {
		t.Fatal(err)
	}
	if end != edge || e.Now() != edge {
		t.Fatalf("RunWindow parked at %v, want %v", end, edge)
	}
	if fired != -1 {
		t.Fatal("event fired inside a window that excludes it")
	}
	if got, ok := e.NextEventTime(); !ok || got != at {
		t.Fatalf("NextEventTime after park = %v,%v, want %v,true", got, ok, at)
	}
	// A message injected at the barrier (AtFunc from outside) for an
	// instant between the edge and the wheel event must fire first.
	var order []string
	e.AtFunc(at-100, func(any) { order = append(order, "msg") }, nil)
	e.At(at+50, func() { order = append(order, "late") })
	if _, err := e.RunWindow(at + 100); err != nil {
		t.Fatal(err)
	}
	if fired != at {
		t.Fatalf("wheel event fired at %v, want %v", fired, at)
	}
	if len(order) != 2 || order[0] != "msg" || order[1] != "late" {
		t.Fatalf("order = %v, want [msg late]", order)
	}
	checkInvariants(t, e)
}

// TestPendingCounterExact is the satellite pin: Pending must track
// alloc/fire/cancel/recycle exactly, across all three queue tiers,
// through horizon splits, double cancels, and stale handles.
func TestPendingCounterExact(t *testing.T) {
	e := NewEngine(1)
	e.wheelGate = 0 // keep the one-event-per-tier layout below exact
	model := 0
	check := func(ctx string) {
		t.Helper()
		if e.Pending() != model {
			t.Fatalf("%s: Pending = %d, model = %d", ctx, e.Pending(), model)
		}
	}
	check("fresh")

	fired := 0
	onFire := func(any) { fired++; model-- }
	// One event per tier.
	ring := e.AtFunc(0, onFire, nil)
	wheelEv := e.AtFunc(Time(5*(1<<wheelShift)), onFire, nil)
	deep := e.AtFunc(Time(100*(1<<(wheelShift+wheelSlotBits))), onFire, nil)
	over := e.AtFunc(Time(uint64(1)<<(wheelShift+wheelLevels*wheelSlotBits))+5, onFire, nil)
	model += 4
	check("scheduled one per tier")

	// Cancel the ring and wheel events; double cancel must not recount.
	ring.Cancel()
	model--
	check("ring cancel")
	ring.Cancel()
	check("ring double cancel")
	wheelEv.Cancel()
	model--
	check("wheel cancel")
	wheelEv.Cancel()
	check("wheel double cancel")

	// Horizon split: fire the deep event, leave the overflow one queued.
	if _, err := e.Run(Time(200 * (1 << (wheelShift + wheelSlotBits)))); err != nil {
		t.Fatal(err)
	}
	check("after horizon split")
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	// A stale handle (fired event, storage recycled) must be inert.
	deep.Cancel()
	check("stale cancel")
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	check("drained")
	if fired != 2 || e.Pending() != 0 {
		t.Fatalf("fired = %d, Pending = %d", fired, e.Pending())
	}
	// Cancel-after-fire on the last handle: still inert.
	over.Cancel()
	check("stale cancel after drain")

	// Randomized churn against the model counter.
	rng := NewRand(99)
	var handles []Event
	for op := 0; op < 2000; op++ {
		switch rng.Intn(3) {
		case 0:
			handles = append(handles, e.AfterFunc(wheelDelta(rng), onFire, nil))
			model++
		case 1:
			if len(handles) > 0 {
				h := handles[rng.Intn(len(handles))]
				if h.Active() {
					model--
				}
				h.Cancel()
			}
		case 2:
			if _, err := e.Run(e.Now() + Time(rng.Intn(1<<(wheelShift+3*wheelSlotBits)))); err != nil {
				t.Fatal(err)
			}
		}
		check("churn")
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	check("final drain")
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after final drain", e.Pending())
	}
}
