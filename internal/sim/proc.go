package sim

import (
	"fmt"
	"runtime/debug"
)

// ProcState describes the lifecycle of a proc.
type ProcState int

// Proc lifecycle states.
const (
	ProcCreated ProcState = iota // spawned, never run
	ProcRunning                  // currently executing
	ProcParked                   // waiting for Ready
	ProcExited                   // function returned
)

func (s ProcState) String() string {
	switch s {
	case ProcCreated:
		return "created"
	case ProcRunning:
		return "running"
	case ProcParked:
		return "parked"
	case ProcExited:
		return "exited"
	}
	return "unknown"
}

// Proc is a simulated activity: a goroutine that runs only when the engine
// hands it control, and that returns control by parking or exiting. All
// simulated threads, interrupt handlers with complex logic, and workload
// drivers are procs.
type Proc struct {
	ID   int
	Name string

	// Data is an upper-layer binding slot (e.g. the kernel thread driving
	// this proc). It replaces side-table map lookups on hot paths; the
	// engine itself never touches it.
	Data any

	eng     *Engine
	resume  chan struct{}
	state   ProcState
	pending bool // a resume event is queued
	killed  bool
}

// killSentinel unwinds a killed proc's goroutine from inside Park.
type killSentinel struct{}

// State returns the proc's lifecycle state.
func (p *Proc) State() ProcState { return p.state }

func (p *Proc) String() string { return fmt.Sprintf("proc %d (%s)", p.ID, p.Name) }

// Spawn creates a proc running fn. The proc does not start until Ready is
// called (typically immediately by the caller, or by a scheduler model when
// it dispatches the underlying thread).
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	e.nextPID++
	p := &Proc{
		ID:   e.nextPID,
		Name: name,
		eng:  e,
		//lint:allow goleak(unbuffered resume channel is the proc half of the engine's strict coroutine handoff)
		resume: make(chan struct{}),
		state:  ProcCreated,
	}
	e.procs = append(e.procs, p)
	e.live++
	// This goroutine and the channel operations below are the engine's
	// coroutine-handoff machinery — the ONE sanctioned use of host
	// concurrency in the deterministic core. The unbuffered
	// resume/back pair enforces strict alternation: exactly one
	// goroutine (the engine or one proc) is ever runnable, so the Go
	// scheduler has no choices to make and no ordering can leak into
	// simulation output. Everything above this layer must use engine
	// events; goleak enforces that.
	//lint:allow goleak(coroutine handoff: proc goroutines run strictly one-at-a-time under engine control)
	go func() {
		//lint:allow goleak(coroutine handoff receive; see Spawn comment)
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if _, isKill := r.(killSentinel); !isKill {
					e.panicVal = fmt.Errorf("sim: panic in %v: %v\n%s", p, r, debug.Stack())
				}
			}
			p.state = ProcExited
			e.live--
			e.cur = nil
			//lint:allow goleak(coroutine handoff send; see Spawn comment)
			e.back <- struct{}{}
		}()
		if p.killed {
			return
		}
		fn(p)
	}()
	return p
}

// dispatchProc is the resume-event callback: a single package-level
// function shared by every Ready call, so readying a proc allocates no
// closure.
func dispatchProc(arg any) {
	p := arg.(*Proc)
	p.eng.dispatch(p)
}

// readyProc is the sleep-expiry callback shared by every Proc.Sleep.
func readyProc(arg any) {
	p := arg.(*Proc)
	p.eng.Ready(p)
}

// Ready schedules p to resume at the current virtual time (after currently
// queued same-time events). Calling Ready on an exited or already-readied
// proc is a no-op. Calling it on the currently running proc is allowed: the
// resume event fires only once the proc has parked (control returns to the
// engine), which lets scheduler models re-dispatch a thread that is mid-way
// through voluntarily going off-CPU.
func (e *Engine) Ready(p *Proc) {
	if p.state == ProcExited || p.pending {
		return
	}
	p.pending = true
	e.AtFunc(e.now, dispatchProc, p)
}

// dispatch transfers control to p and blocks until p parks or exits.
func (e *Engine) dispatch(p *Proc) {
	p.pending = false
	if p.state == ProcExited {
		return
	}
	if p.state == ProcRunning {
		panic(fmt.Sprintf("sim: resume event fired while %v still running", p))
	}
	if e.cur != nil {
		panic(fmt.Sprintf("sim: dispatch of %v while %v is running", p, e.cur))
	}
	e.cur = p
	p.state = ProcRunning
	//lint:allow goleak(coroutine handoff send; see Spawn comment)
	p.resume <- struct{}{}
	//lint:allow goleak(coroutine handoff receive; see Spawn comment)
	<-e.back
}

// Park suspends the calling proc until Ready is invoked on it. It must be
// called from within the proc's own goroutine.
func (p *Proc) Park() {
	e := p.eng
	if e.cur != p {
		panic(fmt.Sprintf("sim: Park called on %v from outside its goroutine", p))
	}
	p.state = ProcParked
	e.cur = nil
	//lint:allow goleak(coroutine handoff send; see Spawn comment)
	e.back <- struct{}{}
	//lint:allow goleak(coroutine handoff receive; see Spawn comment)
	<-p.resume
	if p.killed {
		panic(killSentinel{})
	}
}

// Kill terminates a proc: the next time it would resume, its goroutine
// unwinds (running deferred functions) instead of continuing. Used to
// model process exit tearing down its remaining threads. Killing the
// currently running proc or an exited proc is not allowed / a no-op.
func (e *Engine) Kill(p *Proc) {
	if p.state == ProcExited || p.killed {
		return
	}
	if p.state == ProcRunning {
		panic(fmt.Sprintf("sim: Kill of running %v", p))
	}
	p.killed = true
	e.Ready(p)
}

// KillAll terminates every live proc and drains the resulting unwinding,
// releasing all goroutines. Used to abandon a timed-out experiment without
// leaking goroutines. The event queue may still hold (cancelled or inert)
// timers afterwards; the engine should be discarded.
func (e *Engine) KillAll() {
	for _, p := range e.procs {
		if p.state != ProcExited && p.state != ProcRunning {
			e.Kill(p)
		}
	}
	// Drain only the kill resumes: run until no live procs remain or
	// nothing more fires.
	for e.live > 0 {
		ev := e.peekNext()
		if ev == nil {
			break
		}
		e.fire(ev)
		if e.panicVal != nil {
			panic(e.panicVal)
		}
	}
}

// Current returns the proc currently executing, or nil when the engine
// itself (an event callback) is running.
func (e *Engine) Current() *Proc { return e.cur }

// Sleep parks the calling proc for d of virtual time. This is a low-level
// helper for drivers; simulated threads should sleep via their kernel.
func (p *Proc) Sleep(d Duration) {
	p.eng.AfterFunc(d, readyProc, p)
	p.Park()
}
