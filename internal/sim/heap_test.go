package sim

import (
	"testing"
	"testing/quick"
)

// checkInvariants verifies the heap property, index bookkeeping, the
// sortedness of the immediate ring, the wheel's slot/occupancy/linkage
// invariants, and the O(1) pending counter against a full recount.
func checkInvariants(t *testing.T, e *Engine) {
	t.Helper()
	h := &e.heap
	for i, ev := range h.ev {
		if ev.idx != i {
			t.Fatalf("heap[%d].idx = %d", i, ev.idx)
		}
		if i > 0 {
			parent := (i - 1) / heapArity
			if h.less(i, parent) {
				t.Fatalf("heap property violated at %d: (%d,%d) < parent (%d,%d)",
					i, ev.at, ev.seq, h.ev[parent].at, h.ev[parent].seq)
			}
		}
	}
	immLive := 0
	for i := e.immHead; i < len(e.imm); i++ {
		ev := e.imm[i]
		if ev.idx != idxImm {
			t.Fatalf("imm[%d].idx = %d, want %d", i, ev.idx, idxImm)
		}
		if !ev.dead {
			immLive++
		}
		if i > e.immHead {
			prev := e.imm[i-1]
			if ev.at < prev.at || (ev.at == prev.at && ev.seq < prev.seq) {
				t.Fatalf("imm ring unsorted at %d: (%d,%d) after (%d,%d)",
					i, ev.at, ev.seq, prev.at, prev.seq)
			}
		}
	}
	w := &e.wheel
	wheelTotal := 0
	for lvl := 0; lvl < wheelLevels; lvl++ {
		sh := uint(lvl * wheelSlotBits)
		for s := 0; s < wheelSlots; s++ {
			head := w.slots[lvl][s]
			occupied := w.occ[lvl]&(1<<uint(s)) != 0
			if (head != nil) != occupied {
				t.Fatalf("wheel occ[%d] bit %d = %v but head = %v", lvl, s, occupied, head)
			}
			if head == nil {
				continue
			}
			if head.prev != nil {
				t.Fatalf("wheel slot (%d,%d) head has prev", lvl, s)
			}
			for ev := head; ev != nil; ev = ev.next {
				wheelTotal++
				if want := idxWheelBase - (lvl*wheelSlots + s); ev.idx != want {
					t.Fatalf("wheel event idx = %d, want %d", ev.idx, want)
				}
				if ev.next != nil && ev.next.prev != ev {
					t.Fatalf("wheel slot (%d,%d) list linkage broken", lvl, s)
				}
				tick := uint64(ev.at) >> wheelShift
				if tick < w.pos {
					t.Fatalf("wheel event at tick %d behind cursor %d", tick, w.pos)
				}
				if (tick>>sh)&wheelMask != uint64(s) {
					t.Fatalf("wheel event tick %d in wrong slot (%d,%d)", tick, lvl, s)
				}
				if (tick>>sh)-(w.pos>>sh) >= wheelSlots {
					t.Fatalf("wheel event tick %d beyond level-%d horizon (pos %d)", tick, lvl, w.pos)
				}
			}
		}
	}
	if wheelTotal != w.count {
		t.Fatalf("wheel count = %d, recount = %d", w.count, wheelTotal)
	}
	if want := wheelTotal + h.len() + immLive; e.pending != want {
		t.Fatalf("pending counter = %d, recount = %d (wheel %d, heap %d, imm %d)",
			e.pending, want, wheelTotal, h.len(), immLive)
	}
}

// TestCancelHeavyInterleavings drives a deterministic random mix of
// schedules and cancels — from outside and from inside callbacks, on
// queued, fired, and already-cancelled events — checking heap/ring
// invariants after every mutation and the firing order at the end.
func TestCancelHeavyInterleavings(t *testing.T) {
	rng := NewRand(1234)
	e := NewEngine(1)
	var handles []Event
	var fired []Time
	for round := 0; round < 50; round++ {
		for op := 0; op < 40; op++ {
			switch rng.Intn(4) {
			case 0, 1: // schedule a future or same-time event
				d := Duration(rng.Intn(100))
				handles = append(handles, e.After(d, func() { fired = append(fired, e.Now()) }))
			case 2: // cancel a random handle (may be stale or double-cancel)
				if len(handles) > 0 {
					handles[rng.Intn(len(handles))].Cancel()
				}
			case 3: // schedule an event that cancels another from a callback
				if len(handles) > 0 {
					victim := handles[rng.Intn(len(handles))]
					d := Duration(rng.Intn(100))
					handles = append(handles, e.After(d, func() {
						victim.Cancel()
						fired = append(fired, e.Now())
					}))
				}
			}
			checkInvariants(t, e)
		}
		if _, err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, e)
		if e.Pending() != 0 {
			t.Fatalf("round %d: %d events still pending after RunAll", round, e.Pending())
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				t.Fatalf("events fired out of order: %v after %v", fired[i], fired[i-1])
			}
		}
		fired = fired[:0]
		handles = handles[:0]
	}
}

// TestCancelIsEager verifies the documented O(log n) behaviour: a
// cancelled event leaves the queue immediately instead of lingering
// until popped.
func TestCancelIsEager(t *testing.T) {
	e := NewEngine(1)
	evs := make([]Event, 100)
	for i := range evs {
		evs[i] = e.At(Time(10+i), func() {})
	}
	if got := e.Pending(); got != 100 {
		t.Fatalf("Pending = %d, want 100", got)
	}
	for i, ev := range evs {
		if i%2 == 0 {
			ev.Cancel()
		}
	}
	if got := e.Pending(); got != 50 {
		t.Fatalf("Pending after cancelling half = %d, want 50 (cancel must be eager)", got)
	}
	checkInvariants(t, e)
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
}

// TestCancelAfterFireIsInert exercises the generation counters: once an
// event fires, its storage is recycled, and a stale handle must never
// cancel the event that now occupies the storage.
func TestCancelAfterFireIsInert(t *testing.T) {
	e := NewEngine(1)
	first := e.At(1, func() {})
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if first.Active() {
		t.Fatal("fired event still Active")
	}
	secondFired := false
	second := e.At(2, func() { secondFired = true })
	// The pool almost certainly handed At the recycled storage; the
	// stale handle must be inert regardless.
	first.Cancel()
	if !second.Active() {
		t.Fatal("stale Cancel deactivated a recycled event")
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !secondFired {
		t.Fatal("stale Cancel suppressed a recycled event")
	}
}

// TestCancelOwnFiringEvent checks that a callback cancelling the very
// event that is firing is a harmless no-op.
func TestCancelOwnFiringEvent(t *testing.T) {
	e := NewEngine(1)
	var self Event
	count := 0
	self = e.At(1, func() {
		count++
		self.Cancel()
	})
	e.At(2, func() { count++ })
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

// TestZeroEventInert checks the zero Event handle.
func TestZeroEventInert(t *testing.T) {
	var ev Event
	ev.Cancel() // must not panic
	if ev.Active() {
		t.Fatal("zero Event is Active")
	}
	if ev.When() != -1 {
		t.Fatalf("zero Event When = %v, want -1", ev.When())
	}
}

// TestRunSplitIdentical is the horizon regression: Run(t1); Run(t2) must
// process exactly the same events, in the same order, as a single
// Run(t2) — hitting the horizon must not disturb event identity.
func TestRunSplitIdentical(t *testing.T) {
	build := func() (*Engine, *[]Time) {
		e := NewEngine(9)
		var fired []Time
		rng := NewRand(77)
		for i := 0; i < 200; i++ {
			e.At(Time(rng.Intn(100)), func() { fired = append(fired, e.Now()) })
		}
		// Self-rescheduling chain crossing the split point.
		var chain func()
		chain = func() {
			fired = append(fired, e.Now())
			if e.Now() < 90 {
				e.After(7, chain)
			}
		}
		e.After(3, chain)
		return e, &fired
	}

	a, fa := build()
	if _, err := a.Run(50); err != nil {
		t.Fatal(err)
	}
	if now := a.Now(); now != 50 {
		t.Fatalf("split Run stopped at %v, want 50", now)
	}
	if _, err := a.Run(100); err != nil {
		t.Fatal(err)
	}

	b, fb := build()
	if _, err := b.Run(100); err != nil {
		t.Fatal(err)
	}

	if len(*fa) != len(*fb) {
		t.Fatalf("split fired %d events, single fired %d", len(*fa), len(*fb))
	}
	for i := range *fa {
		if (*fa)[i] != (*fb)[i] {
			t.Fatalf("firing diverged at %d: split %v, single %v", i, (*fa)[i], (*fb)[i])
		}
	}
}

// TestRunHorizonPreservesHandle verifies that an event left behind by a
// horizon return can still be cancelled through its original handle (the
// old pop-and-repush implementation kept identity only by accident; peek
// guarantees it).
func TestRunHorizonPreservesHandle(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(100, func() { fired = true })
	if _, err := e.Run(50); err != nil {
		t.Fatal(err)
	}
	if !ev.Active() {
		t.Fatal("pending event lost its identity across a horizon return")
	}
	if ev.When() != 100 {
		t.Fatalf("When = %v, want 100", ev.When())
	}
	ev.Cancel()
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired after horizon split")
	}
}

// TestAtFuncDelivery checks the closure-free path end to end, including
// cancellation.
func TestAtFuncDelivery(t *testing.T) {
	e := NewEngine(1)
	var got []int
	ping := func(arg any) { got = append(got, arg.(int)) }
	e.AtFunc(20, ping, 2)
	e.AtFunc(10, ping, 1)
	ev := e.AfterFunc(30, ping, 3)
	e.AfterFunc(40, ping, 4)
	ev.Cancel()
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestSteadyStateSchedulingDoesNotAllocate pins down the zero-alloc
// claim outside the benchmark suite: once the pool is warm, a
// schedule/fire cycle on the closure-free path performs no allocations.
func TestSteadyStateSchedulingDoesNotAllocate(t *testing.T) {
	e := NewEngine(1)
	nop := func(any) {}
	// Warm the pool and the ring/heap backing arrays.
	for i := 0; i < 100; i++ {
		e.AfterFunc(Duration(i%7), nop, nil)
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		e.AfterFunc(3, nop, nil)
		if _, err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule/fire allocates %.1f objects per cycle, want 0", allocs)
	}
}

// TestHeapArbitraryRemovalProperty hammers remove() at random positions
// against the ordering property.
func TestHeapArbitraryRemovalProperty(t *testing.T) {
	f := func(times []uint16, cancels []uint8) bool {
		e := NewEngine(7)
		var handles []Event
		for _, tt := range times {
			handles = append(handles, e.At(Time(tt), func() {}))
		}
		for _, c := range cancels {
			if len(handles) == 0 {
				break
			}
			handles[int(c)%len(handles)].Cancel()
		}
		h := &e.heap
		for i := range h.ev {
			if h.ev[i].idx != i {
				return false
			}
			if i > 0 && h.less(i, (i-1)/heapArity) {
				return false
			}
		}
		var last Time = -1
		for {
			ev := e.peekNext()
			if ev == nil {
				break
			}
			if ev.at < last {
				return false
			}
			last = ev.at
			e.fire(ev)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
