package sim

import "testing"

// Differential test: the three-tier queue (wheel/ring/heap) against a
// naive reference engine — an unordered slice scanned for the minimum
// (at, seq) on every fire. Both sides run the same randomized program of
// At/AtFunc/Cancel/Run/RunWindow ops, including events that schedule
// children and cancel victims from inside callbacks; the (id, at) firing
// sequences and the pending counts must match exactly. This catches
// merge bugs between the tiers that the unit tests can't enumerate:
// cascade-order mistakes, cursor/bound off-by-ones, drains racing ring
// heads, stale idx encodings.

// refEvent is one scheduled callback in the reference engine.
type refEvent struct {
	at   Time
	seq  uint64
	id   int
	dead bool
}

// refEngine is the sorted-list reference: O(n) scan per fire, trivially
// correct by construction.
type refEngine struct {
	now Time
	seq uint64
	evs []*refEvent
}

func (r *refEngine) schedule(at Time, id int) *refEvent {
	if at < r.now {
		at = r.now
	}
	r.seq++
	ev := &refEvent{at: at, seq: r.seq, id: id}
	r.evs = append(r.evs, ev)
	return ev
}

func (r *refEngine) pending() int {
	n := 0
	for _, ev := range r.evs {
		if !ev.dead {
			n++
		}
	}
	return n
}

// run mirrors Engine.run: fire events with at <= until in (at, seq)
// order; an event beyond the horizon advances the clock to until, an
// empty queue leaves it (window=true always advances, like RunWindow).
func (r *refEngine) run(until Time, window bool, fire func(id int, at Time)) {
	for {
		var best *refEvent
		for _, ev := range r.evs {
			if ev.dead {
				continue
			}
			if best == nil || ev.at < best.at || (ev.at == best.at && ev.seq < best.seq) {
				best = ev
			}
		}
		if best == nil {
			if window && until > r.now {
				r.now = until
			}
			return
		}
		if best.at > until {
			if until > r.now {
				r.now = until
			}
			return
		}
		best.dead = true
		r.now = best.at
		fire(best.id, best.at)
	}
}

// diffOp is one step of the randomized program, generated once and
// interpreted against both engines.
type diffOp struct {
	kind    int   // 0: schedule, 1: cancel, 2: run, 3: runWindow
	delta   int64 // schedule: delta from now; run: horizon from now
	target  int   // cancel: index into issued ids
	chain   bool  // schedule: the callback schedules a child when it fires
	cancels bool  // schedule: the callback cancels `target` when it fires
}

func genDiffProgram(r *Rand, n int) []diffOp {
	ops := make([]diffOp, n)
	for i := range ops {
		switch k := r.Intn(10); {
		case k < 5:
			ops[i] = diffOp{kind: 0, delta: int64(wheelDelta(r)),
				chain: r.Intn(4) == 0, cancels: r.Intn(6) == 0, target: r.Intn(1 << 16)}
		case k < 7:
			ops[i] = diffOp{kind: 1, target: r.Intn(1 << 16)}
		case k < 9:
			ops[i] = diffOp{kind: 2, delta: int64(wheelDelta(r))}
		default:
			ops[i] = diffOp{kind: 3, delta: int64(wheelDelta(r))}
		}
	}
	return ops
}

// childDelta derives a chained event's delay purely from its parent id,
// so both interpreters compute identical timelines without sharing
// state.
func childDelta(id int) Duration {
	h := uint64(id) * 0x9e3779b97f4a7c15
	return Duration(h % uint64(1<<(wheelShift+3*wheelSlotBits)))
}

type fireRec struct {
	id int
	at Time
}

// runDiffReal interprets the program against the real engine; gateOff
// forces every eligible event through the wheel (the density gate's
// placement choice must be unobservable either way).
func runDiffReal(ops []diffOp, gateOff bool) (fired []fireRec, pendings []int) {
	e := NewEngine(1)
	if gateOff {
		e.wheelGate = 0
	}
	var handles []Event
	nextID := 0
	var scheduleReal func(at Time, chain, cancels bool, target int)
	scheduleReal = func(at Time, chain, cancels bool, target int) {
		id := nextID
		nextID++
		handles = append(handles, e.At(at, func() {
			fired = append(fired, fireRec{id, e.Now()})
			if cancels && len(handles) > 0 {
				handles[target%len(handles)].Cancel()
			}
			if chain {
				scheduleReal(e.Now().Add(childDelta(id)), false, false, 0)
			}
		}))
	}
	for _, op := range ops {
		switch op.kind {
		case 0:
			scheduleReal(e.Now().Add(Duration(op.delta)), op.chain, op.cancels, op.target)
		case 1:
			if len(handles) > 0 {
				handles[op.target%len(handles)].Cancel()
			}
		case 2:
			if _, err := e.Run(e.Now().Add(Duration(op.delta))); err != nil {
				panic(err)
			}
		case 3:
			if _, err := e.RunWindow(e.Now().Add(Duration(op.delta))); err != nil {
				panic(err)
			}
		}
		pendings = append(pendings, e.Pending())
	}
	if _, err := e.RunAll(); err != nil {
		panic(err)
	}
	pendings = append(pendings, e.Pending())
	return fired, pendings
}

// refHandle mirrors Event handle semantics (stale handles inert) for the
// reference: cancel marks dead only if not already fired/cancelled.
func runDiffRef(ops []diffOp) (fired []fireRec, pendings []int) {
	r := &refEngine{}
	var handles []*refEvent
	nextID := 0
	meta := map[int]diffOp{} // id -> its schedule op (chain/cancel behaviour)
	schedule := func(at Time, chain, cancels bool, target int) {
		id := nextID
		nextID++
		meta[id] = diffOp{chain: chain, cancels: cancels, target: target}
		handles = append(handles, r.schedule(at, id))
	}
	onFire := func(id int, at Time) {
		fired = append(fired, fireRec{id, at})
		m := meta[id]
		if m.cancels && len(handles) > 0 {
			handles[m.target%len(handles)].dead = true
		}
		if m.chain {
			schedule(at.Add(childDelta(id)), false, false, 0)
		}
	}
	for _, op := range ops {
		switch op.kind {
		case 0:
			schedule(r.now.Add(Duration(op.delta)), op.chain, op.cancels, op.target)
		case 1:
			if len(handles) > 0 {
				handles[op.target%len(handles)].dead = true
			}
		case 2:
			r.run(r.now.Add(Duration(op.delta)), false, onFire)
		case 3:
			r.run(r.now.Add(Duration(op.delta)), true, onFire)
		}
		pendings = append(pendings, r.pending())
	}
	r.run(Forever, false, onFire)
	pendings = append(pendings, r.pending())
	return fired, pendings
}

// TestDifferentialAgainstReference runs many randomized programs through
// both engines and demands identical firing sequences and pending
// counts.
func TestDifferentialAgainstReference(t *testing.T) {
	rng := NewRand(20260808)
	for prog := 0; prog < 60; prog++ {
		ops := genDiffProgram(rng.Stream("prog"), 300)
		gotF, gotP := runDiffReal(ops, prog%2 == 0)
		wantF, wantP := runDiffRef(ops)
		if len(gotF) != len(wantF) {
			t.Fatalf("program %d: real fired %d events, reference %d", prog, len(gotF), len(wantF))
		}
		for i := range wantF {
			if gotF[i] != wantF[i] {
				t.Fatalf("program %d: firing diverged at %d: real %+v, reference %+v",
					prog, i, gotF[i], wantF[i])
			}
		}
		for i := range wantP {
			if gotP[i] != wantP[i] {
				t.Fatalf("program %d: pending diverged after op %d: real %d, reference %d",
					prog, i, gotP[i], wantP[i])
			}
		}
	}
}
