package sim

// event is the pooled storage behind a scheduled callback. Events are
// owned by the engine: they are allocated from a free list in At/AtFunc,
// returned to it when they fire or are cancelled, and identified across
// reuse by a generation counter. User code never sees *event — it holds
// an Event handle, which pairs the pointer with the generation it was
// issued for, so a stale handle (fired or cancelled) is always inert.
type event struct {
	at  Time
	seq uint64 // insertion order; total tie-break for determinism
	gen uint64 // bumped on release; stale handles compare unequal

	// Exactly one of fn/afn is set. afn+arg is the closure-free path:
	// hot call sites pass a long-lived func and the receiver as arg, so
	// steady-state scheduling allocates nothing.
	fn  func()
	afn func(any)
	arg any

	eng  *Engine
	idx  int  // heap index, or one of the sentinel/wheel encodings below
	dead bool // cancelled while in the immediate ring; dropped at peek

	// prev/next link the event into its timing-wheel slot (a doubly
	// linked list), making wheel cancellation O(1). They are nil whenever
	// the event is not wheel-resident.
	prev, next *event
}

// Sentinel idx values for events outside the heap. A wheel-resident
// event encodes its (level, slot) position as
// idx = idxWheelBase - (level*wheelSlots + slot), so idx <= idxWheelBase
// identifies the wheel and Cancel can find the slot without extra
// fields.
const (
	idxFree      = -1 // not queued (free, fired, or cancelled)
	idxImm       = -2 // queued in the engine's immediate ring
	idxWheelBase = -3 // first wheel encoding; see above
)

// Event is a cancellable handle to a scheduled callback. The zero Event
// is inert: Cancel is a no-op and Active reports false. Handles stay
// safe after the event fires — the underlying storage is recycled, but
// the generation check makes operations on a stale handle no-ops.
type Event struct {
	e   *event
	gen uint64
}

// Active reports whether the event is still queued: not yet fired and
// not cancelled.
func (ev Event) Active() bool {
	return ev.e != nil && ev.e.gen == ev.gen && ev.e.idx != idxFree
}

// When returns the virtual time at which the event is scheduled to fire.
// It is meaningful only while the event is Active; otherwise it returns
// -1.
func (ev Event) When() Time {
	if !ev.Active() {
		return -1
	}
	return ev.e.at
}

// Cancel removes the event from the queue so it never fires. Cancelling
// an already-fired, already-cancelled, or zero Event is a no-op. Cancel
// is O(1) for wheel-resident events (the dominant short-horizon timer
// population: futex timeouts, slice renewals, retry deadlines) and
// O(log n) for heap events; both are eager, so cancel-heavy workloads
// never drag dead events through the queue.
func (ev Event) Cancel() {
	e := ev.e
	if e == nil || e.gen != ev.gen || e.idx == idxFree {
		return
	}
	eng := e.eng
	eng.pending--
	if e.idx == idxImm {
		// Ring entries cannot be unlinked in O(1); mark the event dead
		// (invalidated, so handles and callbacks are gone) and let peek
		// drop the storage when it reaches the head.
		e.dead = true
		eng.invalidate(e)
		return
	}
	if e.idx <= idxWheelBase {
		eng.wheel.remove(e)
	} else {
		eng.heap.remove(e)
	}
	eng.invalidate(e)
	eng.recycle(e)
}

// eventHeap is an indexed 4-ary min-heap ordered by (at, seq). It is
// implemented by hand rather than via container/heap to avoid interface
// boxing on the hot path — the simulator pushes and pops millions of
// events per run — and 4-ary because the shallower tree roughly halves
// the swap chain of a pop at these queue sizes. Events track their index
// so arbitrary removal (Cancel) is O(log n).
type eventHeap struct {
	ev []*event
}

// heapArity is the fan-out of the event heap.
const heapArity = 4

func (h *eventHeap) len() int { return len(h.ev) }

func (h *eventHeap) less(i, j int) bool {
	a, b := h.ev[i], h.ev[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e *event) {
	e.idx = len(h.ev)
	h.ev = append(h.ev, e)
	h.up(e.idx)
}

// peek returns the earliest event without removing it, or nil.
func (h *eventHeap) peek() *event {
	if len(h.ev) == 0 {
		return nil
	}
	return h.ev[0]
}

func (h *eventHeap) pop() *event {
	e := h.ev[0]
	n := len(h.ev) - 1
	last := h.ev[n]
	h.ev[n] = nil
	h.ev = h.ev[:n]
	e.idx = idxFree
	if n > 0 {
		h.ev[0] = last
		last.idx = 0
		h.down(0)
	}
	return e
}

// remove unlinks a queued event from an arbitrary position.
func (h *eventHeap) remove(e *event) {
	i := e.idx
	n := len(h.ev) - 1
	last := h.ev[n]
	h.ev[n] = nil
	h.ev = h.ev[:n]
	e.idx = idxFree
	if i < n {
		h.ev[i] = last
		last.idx = i
		h.down(i)
		h.up(i)
	}
}

func (h *eventHeap) up(i int) {
	e := h.ev[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		p := h.ev[parent]
		if e.at > p.at || (e.at == p.at && e.seq > p.seq) {
			break
		}
		h.ev[i] = p
		p.idx = i
		i = parent
	}
	h.ev[i] = e
	e.idx = i
}

func (h *eventHeap) down(i int) {
	n := len(h.ev)
	e := h.ev[i]
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		end := first + heapArity
		if end > n {
			end = n
		}
		small := first
		s := h.ev[first]
		for c := first + 1; c < end; c++ {
			x := h.ev[c]
			if x.at < s.at || (x.at == s.at && x.seq < s.seq) {
				small, s = c, x
			}
		}
		if e.at < s.at || (e.at == s.at && e.seq < s.seq) {
			break
		}
		h.ev[i] = s
		s.idx = i
		i = small
	}
	h.ev[i] = e
	e.idx = i
}
