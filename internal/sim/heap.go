package sim

// Event is a scheduled callback in virtual time. Events are created through
// Engine.At / Engine.After and may be cancelled before they fire.
type Event struct {
	at       Time
	seq      uint64 // insertion order; total tie-break for determinism
	fn       func()
	idx      int // heap index, -1 when not queued
	canceled bool
}

// When returns the virtual time at which the event is scheduled to fire.
func (e *Event) When() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancel is O(log n).
func (e *Event) Cancel() {
	if e == nil || e.canceled || e.idx < 0 {
		if e != nil {
			e.canceled = true
		}
		return
	}
	e.canceled = true
}

// eventHeap is a binary min-heap ordered by (at, seq). We implement it by
// hand rather than via container/heap to avoid interface boxing on the hot
// path; the simulator pushes and pops millions of events per run.
type eventHeap struct {
	ev []*Event
}

func (h *eventHeap) len() int { return len(h.ev) }

func (h *eventHeap) less(i, j int) bool {
	a, b := h.ev[i], h.ev[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) swap(i, j int) {
	h.ev[i], h.ev[j] = h.ev[j], h.ev[i]
	h.ev[i].idx = i
	h.ev[j].idx = j
}

func (h *eventHeap) push(e *Event) {
	e.idx = len(h.ev)
	h.ev = append(h.ev, e)
	h.up(e.idx)
}

func (h *eventHeap) pop() *Event {
	n := len(h.ev) - 1
	h.swap(0, n)
	e := h.ev[n]
	h.ev[n] = nil
	h.ev = h.ev[:n]
	if n > 0 {
		h.down(0)
	}
	e.idx = -1
	return e
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.ev)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}
