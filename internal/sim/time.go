// Package sim provides a deterministic discrete-event simulation engine.
//
// Simulated activities ("procs") are goroutines driven one at a time by the
// engine, so every run is fully deterministic: exactly one proc executes at
// any moment, and all ordering is derived from the virtual clock plus a
// monotonically increasing sequence number used as a tie-breaker.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration so the usual constants (Microsecond etc.) can be used via
// the conversion helpers below.
type Duration = time.Duration

// Common durations re-exported for convenience.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String formats the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Forever is a time horizon beyond any practical simulation.
const Forever = Time(1<<63 - 1)
