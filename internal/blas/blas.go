// Package blas models OpenBLAS and BLIS: dense kernels (dgemm, dpotrf,
// dtrsm, dsyrk) whose cost comes from a flops model, executed by an
// internal thread team. Two properties matter to the paper and are
// reproduced here:
//
//   - both libraries synchronise their teams with custom busy-wait
//     barriers (not glibc primitives), which melt down under
//     oversubscription unless patched with a one-line sched_yield
//     (§5.2/§5.3 — the Original vs Baseline distinction);
//   - the backend differs: OpenBLAS/BLIS-with-OpenMP reuse runtime
//     threads, while BLIS's raw pthread backend creates and destroys a
//     team per call (§5.4 — what makes glibcv's thread cache worth 4x).
package blas

import (
	"fmt"

	"repro/internal/glibc"
	"repro/internal/kernel"
	"repro/internal/rt/omp"
	"repro/internal/rt/spin"
	"repro/internal/sim"
)

// Impl selects the library implementation.
type Impl int

// Implementations.
const (
	OpenBLAS Impl = iota
	BLIS
)

func (i Impl) String() string {
	if i == OpenBLAS {
		return "openblas"
	}
	return "blis"
}

// Backend selects how the library parallelises internally.
type Backend int

// Backends.
const (
	// BackendOpenMP parallelises kernels with an OpenMP runtime
	// (threads are reused across calls).
	BackendOpenMP Backend = iota
	// BackendPthread creates a fresh pthread team per kernel call and
	// destroys it afterwards (BLIS's raw pthread backend).
	BackendPthread
)

func (b Backend) String() string {
	if b == BackendOpenMP {
		return "openmp"
	}
	return "pthread"
}

// Config describes one process's BLAS library build.
type Config struct {
	Impl    Impl
	Backend Backend
	// Threads is the kernel team width (OPENBLAS_NUM_THREADS /
	// BLIS_NUM_THREADS).
	Threads int
	// OMP is the OpenMP runtime used by BackendOpenMP.
	OMP *omp.Runtime
	// YieldInBarrier applies the paper's one-line sched_yield patch to
	// the internal busy-wait barrier. Off = the "Original" stack.
	YieldInBarrier bool
	// BlockingBarrier replaces the busy-wait barrier with blocking
	// primitives entirely — the "Manual" nOS-V integration of §5.3.
	BlockingBarrier bool
	// Phases is the number of internal panel phases per kernel (each
	// ends at the custom barrier). 2 matches the GotoBLAS structure.
	Phases int
	// Efficiency is the fraction of per-core peak the kernel sustains
	// on large inputs (defaults to 0.85).
	Efficiency float64
	// BWPerThread adds a memory-bandwidth demand (bytes/ns) per team
	// thread, used by bandwidth-bound callers (DeePMD inference).
	BWPerThread float64
	// FootprintPerThread sizes the cache working set per thread for
	// the migration/pollution model. Default 1 MiB.
	FootprintPerThread int64
}

// Lib is a configured BLAS library inside one process.
type Lib struct {
	lib *glibc.Lib
	cfg Config

	Calls int64
}

// New returns a BLAS library instance.
func New(l *glibc.Lib, cfg Config) *Lib {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Phases <= 0 {
		cfg.Phases = 2
	}
	if cfg.Efficiency <= 0 {
		cfg.Efficiency = 0.85
	}
	if cfg.FootprintPerThread <= 0 {
		cfg.FootprintPerThread = 1 << 20
	}
	if cfg.Backend == BackendOpenMP && cfg.OMP == nil {
		cfg.OMP = omp.New(l, omp.Config{NumThreads: cfg.Threads, WaitPolicy: omp.WaitPassive})
	}
	return &Lib{lib: l, cfg: cfg}
}

// Config returns the library configuration.
func (b *Lib) Config() Config { return b.cfg }

// Dgemm multiplies an (m x k) by a (k x n) matrix: 2mnk flops.
func (b *Lib) Dgemm(m, n, k int) {
	b.kernel(2*float64(m)*float64(n)*float64(k), minDim(m, n, k))
}

// Dsyrk computes C = A*Aᵀ updates: n²k flops.
func (b *Lib) Dsyrk(n, k int) {
	b.kernel(float64(n)*float64(n)*float64(k), minDim(n, k, 1<<30))
}

// Dtrsm solves a triangular system with an (m x m) factor against n
// right-hand sides: m²n flops.
func (b *Lib) Dtrsm(m, n int) {
	b.kernel(float64(m)*float64(m)*float64(n), minDim(m, n, 1<<30))
}

// Dpotrf factorises an (n x n) SPD matrix: n³/3 flops.
func (b *Lib) Dpotrf(n int) {
	b.kernel(float64(n)*float64(n)*float64(n)/3, n)
}

// KernelWork executes a synthetic parallel kernel whose total single-core
// compute time is w, with the library's usual team, phase, and barrier
// structure. Calibrated workloads (the inference profiles of §5.5, the
// DeePMD force kernels of §5.6) use this instead of inverting the flops
// model.
func (b *Lib) KernelWork(w sim.Duration) {
	b.Calls++
	threads := b.cfg.Threads
	per := sim.Duration(float64(w) / float64(threads) / float64(b.cfg.Phases))
	b.runTeam(threads, per)
}

func minDim(a, b, c int) int {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

// kernel executes a parallel BLAS kernel of the given flop count.
func (b *Lib) kernel(flops float64, dim int) {
	b.Calls++
	threads := b.cfg.Threads
	if threads > dim {
		threads = dim
		if threads < 1 {
			threads = 1
		}
	}
	b.runTeam(threads, b.perThreadTime(flops, threads, dim))
}

// runTeam executes the library's team structure: each of the threads
// performs Phases rounds of per-phase compute separated by the internal
// barrier, on the configured backend.
func (b *Lib) runTeam(threads int, perPhase sim.Duration) {
	opts := kernel.ComputeOpts{BW: b.cfg.BWPerThread, Footprint: b.cfg.FootprintPerThread}
	if threads <= 1 {
		b.lib.ComputeOpts(perPhase*sim.Duration(b.cfg.Phases), opts)
		return
	}
	var wait func()
	if b.cfg.BlockingBarrier {
		// The "Manual" stack (§5.3): the busy-wait barrier is replaced
		// with direct nOS-V blocking primitives (here: the glibc
		// barrier, which under glibcv is the task-queue barrier).
		gb := b.lib.NewBarrier(threads)
		wait = func() { gb.Wait() }
	} else {
		sb := spin.NewBarrier(b.lib, threads, b.cfg.YieldInBarrier)
		wait = func() { sb.Wait() }
	}
	body := func(tid int) {
		for ph := 0; ph < b.cfg.Phases; ph++ {
			b.lib.ComputeOpts(perPhase, opts)
			wait()
		}
	}
	switch b.cfg.Backend {
	case BackendOpenMP:
		b.cfg.OMP.Parallel(threads, func(tid, nth int) { body(tid) })
	case BackendPthread:
		// A fresh team per call, destroyed afterwards.
		var pts []*glibc.Pthread
		for i := 1; i < threads; i++ {
			i := i
			pts = append(pts, b.lib.PthreadCreate(
				fmt.Sprintf("blis-pth-%d", i), func() { body(i) }))
		}
		body(0)
		for _, pt := range pts {
			b.lib.PthreadJoin(pt)
		}
	}
}

// perThreadTime converts a kernel's flops into per-thread, per-phase
// compute time. Efficiency degrades on small blocks (fine-grained kernels
// pay relatively more overhead, §5.2's granularity discussion).
func (b *Lib) perThreadTime(flops float64, threads, dim int) sim.Duration {
	eff := b.cfg.Efficiency
	switch {
	case dim < 64:
		eff *= 0.25
	case dim < 128:
		eff *= 0.45
	case dim < 256:
		eff *= 0.65
	case dim < 512:
		eff *= 0.85
	}
	gflops := b.lib.K.HW.CoreGFLOPS * eff
	total := flops / gflops // ns at one core
	per := total / float64(threads) / float64(b.cfg.Phases)
	// Parallelisation overhead: partition + pack per phase.
	per += 2000 * float64(threads) / 8
	return sim.Duration(per)
}
