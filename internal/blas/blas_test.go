package blas

import (
	"testing"

	"repro/internal/glibc"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/rt/omp"
	"repro/internal/sim"
)

func runApp(t *testing.T, cores int, usf bool, app func(l *glibc.Lib)) *kernel.Kernel {
	t.Helper()
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = cores
	cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
	eng := sim.NewEngine(1)
	k := kernel.New(eng, cfg, kernel.DefaultSchedParams())
	if _, err := glibc.StartProcess(k, "app", glibc.Options{USF: usf}, app); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestDgemmScalesWithSize(t *testing.T) {
	var t512, t1024 sim.Duration
	runApp(t, 4, false, func(l *glibc.Lib) {
		b := New(l, Config{Impl: OpenBLAS, Threads: 1, YieldInBarrier: true})
		s := l.K.Eng.Now()
		b.Dgemm(512, 512, 512)
		t512 = l.K.Eng.Now().Sub(s)
		s = l.K.Eng.Now()
		b.Dgemm(1024, 1024, 1024)
		t1024 = l.K.Eng.Now().Sub(s)
	})
	ratio := float64(t1024) / float64(t512)
	if ratio < 6 || ratio > 10 {
		t.Fatalf("1024/512 time ratio = %.2f, want ~8 (cubic flops)", ratio)
	}
}

func TestDgemmParallelSpeedup(t *testing.T) {
	var t1, t4 sim.Duration
	runApp(t, 4, false, func(l *glibc.Lib) {
		b1 := New(l, Config{Impl: OpenBLAS, Threads: 1, YieldInBarrier: true})
		s := l.K.Eng.Now()
		b1.Dgemm(1024, 1024, 1024)
		t1 = l.K.Eng.Now().Sub(s)
	})
	runApp(t, 4, false, func(l *glibc.Lib) {
		r := omp.New(l, omp.Config{NumThreads: 4, WaitPolicy: omp.WaitPassive})
		b4 := New(l, Config{Impl: OpenBLAS, Backend: BackendOpenMP, Threads: 4, OMP: r, YieldInBarrier: true})
		s := l.K.Eng.Now()
		b4.Dgemm(1024, 1024, 1024)
		t4 = l.K.Eng.Now().Sub(s)
		r.Shutdown()
	})
	speedup := float64(t1) / float64(t4)
	if speedup < 2.5 {
		t.Fatalf("4-thread dgemm speedup = %.2f, want >2.5", speedup)
	}
}

func TestPthreadBackendCreatesThreadsPerCall(t *testing.T) {
	k := runApp(t, 4, false, func(l *glibc.Lib) {
		b := New(l, Config{Impl: BLIS, Backend: BackendPthread, Threads: 4, YieldInBarrier: true})
		for i := 0; i < 5; i++ {
			b.Dgemm(512, 512, 512)
		}
		if l.Stats.ThreadsCreated != 15 {
			t.Errorf("pthreads created = %d, want 15 (3 per call, 5 calls)", l.Stats.ThreadsCreated)
		}
	})
	if k.Stats.ThreadsCreated < 15 {
		t.Fatalf("kernel threads = %d; pthread backend must churn threads", k.Stats.ThreadsCreated)
	}
}

func TestPthreadBackendWithUSFCacheReusesThreads(t *testing.T) {
	// Under glibcv the same churny pthread backend hits the thread
	// cache: far fewer kernel threads get created (§4.3.1, the 4x
	// effect of Table 2's pth rows).
	k := runApp(t, 4, true, func(l *glibc.Lib) {
		b := New(l, Config{Impl: BLIS, Backend: BackendPthread, Threads: 4, YieldInBarrier: true})
		for i := 0; i < 5; i++ {
			b.Dgemm(512, 512, 512)
		}
		if l.Stats.CacheHits == 0 {
			t.Error("no thread-cache hits under glibcv")
		}
	})
	if k.Stats.ThreadsCreated > 8 {
		t.Fatalf("kernel threads = %d; glibcv cache should reuse (~4)", k.Stats.ThreadsCreated)
	}
}

func TestEfficiencyDropsForSmallBlocks(t *testing.T) {
	runApp(t, 2, false, func(l *glibc.Lib) {
		b := New(l, Config{Impl: OpenBLAS, Threads: 1, YieldInBarrier: true})
		// Time per flop must be worse for 48³ than for 1024³.
		s := l.K.Eng.Now()
		b.Dgemm(48, 48, 48)
		tSmall := float64(l.K.Eng.Now().Sub(s)) / (2 * 48 * 48 * 48)
		s = l.K.Eng.Now()
		b.Dgemm(1024, 1024, 1024)
		tBig := float64(l.K.Eng.Now().Sub(s)) / (2 * 1024 * 1024 * 1024)
		if tSmall < tBig*2 {
			t.Errorf("small-block time/flop %.4g vs large %.4g: granularity penalty missing", tSmall, tBig)
		}
	})
}

func TestOtherKernels(t *testing.T) {
	runApp(t, 2, false, func(l *glibc.Lib) {
		b := New(l, Config{Impl: OpenBLAS, Threads: 2, YieldInBarrier: true})
		s := l.K.Eng.Now()
		b.Dpotrf(512)
		b.Dtrsm(512, 512)
		b.Dsyrk(512, 512)
		if l.K.Eng.Now() == s {
			t.Fatal("kernels consumed no time")
		}
		if b.Calls != 3 {
			t.Fatalf("calls = %d", b.Calls)
		}
	})
}

func TestBandwidthDemandPropagates(t *testing.T) {
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = 2
	cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
	eng := sim.NewEngine(1)
	k := kernel.New(eng, cfg, kernel.DefaultSchedParams())
	var peak float64
	k.BWSample = func(at sim.Time, socket int, used float64) {
		if used > peak {
			peak = used
		}
	}
	if _, err := glibc.StartProcess(k, "app", glibc.Options{}, func(l *glibc.Lib) {
		b := New(l, Config{Impl: OpenBLAS, Threads: 1, YieldInBarrier: true, BWPerThread: 30})
		b.Dgemm(512, 512, 512)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if peak != 30 {
		t.Fatalf("peak bandwidth = %v, want 30", peak)
	}
}
