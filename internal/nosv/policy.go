package nosv

// Policy decides which ready task runs on which core. It is the extension
// point of USF: the instance owns the mechanics (worker parking, core
// slots, the one-runner-per-core invariant) and delegates every choice to
// the policy. Implementations live outside nosv (package usf provides
// SCHED_COOP); a minimal global-FIFO policy is included here for tests and
// as the simplest example.
//
// All methods run inside the single-threaded simulation, so policies need
// no locking, but they must be deterministic.
type Policy interface {
	// Name identifies the policy ("sched_coop", ...).
	Name() string
	// Bind attaches the policy to its instance before first use.
	Bind(in *Instance)
	// Ready offers a ready task. Return a core id to place the task
	// immediately on that idle core, or -1 to keep it queued inside the
	// policy. yield is true when the task comes from nosv_yield (it
	// should requeue behind its siblings rather than get placed back).
	Ready(t *Task, yield bool) int
	// Next picks a task for core (which just went idle), or nil.
	Next(core int) *Task
	// Remove withdraws a queued task (its process is shutting down).
	Remove(t *Task)
}

// YieldAware is an optional Policy extension: when a task yields, the
// instance asks the policy for the next task with the yielder identified,
// so the policy can prefer any other queued work over immediately
// re-running the (probably busy-waiting) yielder. The yielder has already
// been queued via Ready(t, true); if the policy returns a different task
// it must leave the yielder queued, and if it returns the yielder it must
// have popped it.
type YieldAware interface {
	NextAfterYield(core int, yielder *Task) *Task
}

// FIFOPolicy is the trivial built-in policy: one global FIFO, any idle
// core, no affinity, no process quantum. It exists for unit tests and as
// the "hello world" of USF policies.
type FIFOPolicy struct {
	in *Instance
	q  []*Task
}

// NewFIFO returns a FIFOPolicy.
func NewFIFO() *FIFOPolicy { return &FIFOPolicy{} }

// Name implements Policy.
func (p *FIFOPolicy) Name() string { return "fifo" }

// Bind implements Policy.
func (p *FIFOPolicy) Bind(in *Instance) { p.in = in }

// Ready implements Policy: place on the first idle core, else queue.
func (p *FIFOPolicy) Ready(t *Task, yield bool) int {
	if !yield {
		if c := p.in.FirstIdleCore(); c >= 0 {
			return c
		}
	}
	p.q = append(p.q, t)
	return -1
}

// Next implements Policy.
func (p *FIFOPolicy) Next(core int) *Task {
	if len(p.q) == 0 {
		return nil
	}
	t := p.q[0]
	p.q = p.q[1:]
	return t
}

// Remove implements Policy.
func (p *FIFOPolicy) Remove(t *Task) {
	for i, x := range p.q {
		if x == t {
			copy(p.q[i:], p.q[i+1:])
			p.q = p.q[:len(p.q)-1]
			return
		}
	}
}
