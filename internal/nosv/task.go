// Package nosv reproduces the nOS-V threading and tasking library (Álvarez
// et al., IPDPS'24) as used by the paper's glibcv: tasks bound to worker
// threads, a centralized multi-process scheduler fed through a shared
// memory segment, the one-running-worker-per-core invariant, cooperative
// scheduling points (pause/submit/yield/waitfor), and a per-process quantum
// evaluated at those points.
package nosv

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// TaskState tracks a task through its cooperative lifecycle.
type TaskState int

// Task states.
const (
	TaskReady   TaskState = iota // queued in the central scheduler
	TaskRunning                  // its worker occupies a core
	TaskBlocked                  // paused, waiting for a Submit
	TaskDone
)

func (s TaskState) String() string {
	switch s {
	case TaskReady:
		return "ready"
	case TaskRunning:
		return "running"
	case TaskBlocked:
		return "blocked"
	case TaskDone:
		return "done"
	}
	return "unknown"
}

// Task is a nOS-V task. Under glibcv every pthread is permanently bound to
// one task (and vice versa), which is what keeps TLS working: the task can
// only ever resume on its own thread.
type Task struct {
	ID  int
	Pid kernel.Pid

	inst   *Instance
	worker *Worker
	state  TaskState

	// prefCore is the task's preferred core: the one it last ran on.
	prefCore int
	// queuedAt is policy-owned bookkeeping (which queue holds the task).
	queuedAt int
	// waitEv is the pending nosv_waitfor timer; waitFired is how the
	// fired timer reports back to Waitfor without a per-call closure.
	waitEv    sim.Event
	waitFired bool

	// Label annotates traces and debugging output.
	Label string
}

// State returns the task state.
func (t *Task) State() TaskState { return t.state }

// SetQueuedAt lets a policy record which of its queues holds the task.
func (t *Task) SetQueuedAt(q int) { t.queuedAt = q }

// QueuedAt returns the policy queue recorded by SetQueuedAt.
func (t *Task) QueuedAt() int { return t.queuedAt }

// PrefCore returns the task's preferred (= last) core, -1 before first run.
func (t *Task) PrefCore() int { return t.prefCore }

// Worker returns the worker thread the task is bound to.
func (t *Task) Worker() *Worker { return t.worker }

func (t *Task) String() string {
	return fmt.Sprintf("task %d (%s, pid %d)", t.ID, t.Label, t.Pid)
}

// Worker is a worker thread recruited into nOS-V (via nosv_attach). The
// worker parks on its futex whenever its task is off-CPU; the instance
// wakes it pinned to a specific core when the scheduler places the task.
type Worker struct {
	KT   *kernel.Thread
	task *Task

	parkF *kernel.Futex // Word==1 means "stay parked"

	// PendingFn is used by glibcv's thread cache: the function the
	// cached worker should run when its next task gets placed.
	PendingFn func()
	// Shutdown asks a cached worker to exit its loop when next woken.
	Shutdown bool
}

// Task returns the worker's currently bound task.
func (w *Worker) Task() *Task { return w.task }
