package nosv

import (
	"sort"
	"testing"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// recordingPolicy wraps the FIFO policy and logs the order in which
// tasks are withdrawn, so tests can observe whether shutdown paths
// hand the policy a deterministic sequence.
type recordingPolicy struct {
	*FIFOPolicy
	removed []int
}

func (p *recordingPolicy) Remove(t *Task) {
	p.removed = append(p.removed, t.ID)
	p.FIFOPolicy.Remove(t)
}

// TestDisconnectProcessRemovesInTaskIDOrder is the regression test for
// the DisconnectProcess map-iteration fix (the simlint maprange rule,
// and PR 3's omp.Runtime.Shutdown bug before it): withdrawing a dying
// process's queued tasks must reach the policy in ascending task-ID
// order, not in Go's per-run map order. Before the fix this failed
// with probability 1 - 1/8! per run; now the order is exact.
func TestDisconnectProcessRemovesInTaskIDOrder(t *testing.T) {
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = 1
	cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
	eng := sim.NewEngine(1)
	k := kernel.New(eng, cfg, kernel.DefaultSchedParams())
	proc := k.NewProcess("app")
	rec := &recordingPolicy{FIFOPolicy: NewFIFO()}
	in, err := OpenSegment(k, "seg", proc, func() Policy { return rec })
	if err != nil {
		t.Fatal(err)
	}
	p2 := k.NewProcess("doomed")
	if _, err := OpenSegment(k, "seg", p2, func() Policy { return rec }); err != nil {
		t.Fatal(err)
	}

	// The hog occupies the segment's only core slot long enough that
	// every task the doomed process submits stays queued in the policy.
	spawnAttached(k, in, proc, "hog", func(kt *kernel.Thread, task *Task) {
		kt.Compute(40 * sim.Millisecond)
	})

	const n = 8
	k.SpawnThread(p2, "spawner", func(kt *kernel.Thread) {
		w := in.NewWorker(kt)
		for i := 0; i < n; i++ {
			task := in.NewTask(w, p2.PID, "doomed")
			if task.State() != TaskBlocked {
				t.Errorf("task %d state = %v before submit", task.ID, task.State())
			}
			in.Submit(task)
			if task.State() != TaskReady {
				t.Errorf("task %d not queued (state %v); hog should hold the core", task.ID, task.State())
			}
		}
		in.DisconnectProcess(p2.PID)
	})
	mustRun(t, eng)

	if len(rec.removed) != n {
		t.Fatalf("policy saw %d removals, want %d: %v", len(rec.removed), n, rec.removed)
	}
	if !sort.IntsAreSorted(rec.removed) {
		t.Fatalf("DisconnectProcess withdrew tasks in non-deterministic order: %v", rec.removed)
	}
}
