package nosv

import (
	"fmt"
	"sort"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// Stats counts nOS-V scheduling activity.
type Stats struct {
	Attaches    int64
	Detaches    int64
	Submits     int64
	Pauses      int64
	Yields      int64
	Waitfors    int64
	Placements  int64 // task dispatched onto a core slot
	Completions int64
	SelfYields  int64 // yields where the same task was picked again
}

// Instance is one nOS-V shared-memory segment: a centralized scheduler
// shared by every connected process, plus the per-core slots that enforce
// the one-running-worker-per-core invariant.
type Instance struct {
	K      *kernel.Kernel
	Key    string
	policy Policy

	slots     []*Task       // current task per core, nil = idle slot
	coreMasks []kernel.Mask // single-core pin masks, built once per instance
	procs     map[kernel.Pid]*procConn
	nextTask  int

	uid, gid int // credentials of the segment creator

	Stats Stats
}

type procConn struct {
	proc  *kernel.Process
	tasks map[*Task]struct{}
}

const segRegistryKey = "nosv.segments"

// OpenSegment connects proc to the shared segment named key, creating it
// (with the supplied policy) on first open. Mirroring nOS-V's security
// rule, only processes with the creator's uid and gid may connect.
func OpenSegment(k *kernel.Kernel, key string, proc *kernel.Process, mkPolicy func() Policy) (*Instance, error) {
	reg, _ := k.Local[segRegistryKey].(map[string]*Instance)
	if reg == nil {
		reg = make(map[string]*Instance)
		k.Local[segRegistryKey] = reg
	}
	in, ok := reg[key]
	if !ok {
		in = &Instance{
			K:         k,
			Key:       key,
			policy:    mkPolicy(),
			slots:     make([]*Task, k.NumCores()),
			coreMasks: make([]kernel.Mask, k.NumCores()),
			procs:     make(map[kernel.Pid]*procConn),
			uid:       proc.UID,
			gid:       proc.GID,
		}
		for c := range in.coreMasks {
			in.coreMasks[c] = kernel.NewMask(c)
		}
		in.policy.Bind(in)
		reg[key] = in
	}
	if proc.UID != in.uid || proc.GID != in.gid {
		return nil, fmt.Errorf("nosv: process %d (uid %d gid %d) may not join segment %q owned by uid %d gid %d",
			proc.PID, proc.UID, proc.GID, key, in.uid, in.gid)
	}
	if _, ok := in.procs[proc.PID]; !ok {
		in.procs[proc.PID] = &procConn{proc: proc, tasks: make(map[*Task]struct{})}
	}
	return in, nil
}

// Policy returns the scheduling policy driving this instance.
func (in *Instance) Policy() Policy { return in.policy }

// Topo returns the machine topology (for policy placement decisions).
func (in *Instance) Topo() hw.Topology { return in.K.HW.Topo }

// Now returns the current virtual time.
func (in *Instance) Now() sim.Time { return in.K.Eng.Now() }

// NumCores returns the machine width.
func (in *Instance) NumCores() int { return len(in.slots) }

// IsIdle reports whether core's slot is free.
func (in *Instance) IsIdle(core int) bool { return in.slots[core] == nil }

// RunningOn returns the task occupying core, or nil.
func (in *Instance) RunningOn(core int) *Task { return in.slots[core] }

// FirstIdleCore returns the lowest-numbered idle core, or -1.
func (in *Instance) FirstIdleCore() int {
	for c, s := range in.slots {
		if s == nil {
			return c
		}
	}
	return -1
}

// NewWorker recruits a kernel thread as a worker. The worker starts in the
// parked state; its thread must call ParkWorker, which returns once the
// scheduler places a task bound to it.
func (in *Instance) NewWorker(kt *kernel.Thread) *Worker {
	w := &Worker{KT: kt, parkF: in.K.NewFutex()}
	w.parkF.Word = 1
	return w
}

// NewTask creates a task bound to worker w on behalf of process pid.
func (in *Instance) NewTask(w *Worker, pid kernel.Pid, label string) *Task {
	pc := in.procs[pid]
	if pc == nil {
		panic(fmt.Sprintf("nosv: NewTask for unregistered pid %d", pid))
	}
	in.nextTask++
	t := &Task{
		ID:       in.nextTask,
		Pid:      pid,
		inst:     in,
		worker:   w,
		state:    TaskBlocked,
		prefCore: -1,
		Label:    label,
	}
	w.task = t
	pc.tasks[t] = struct{}{}
	return t
}

// Attach implements nosv_attach for the calling thread: it becomes a
// worker with a fresh bound task, the task is submitted, and the call
// blocks until the scheduler places it on a core. On return the caller
// runs under nOS-V control, pinned to its assigned core.
func (in *Instance) Attach(kt *kernel.Thread, pid kernel.Pid, label string) *Task {
	w := in.NewWorker(kt)
	t := in.NewTask(w, pid, label)
	in.Stats.Attaches++
	in.Submit(t)
	in.ParkWorker(w)
	return t
}

// Detach implements nosv_detach: the task is deregistered and the thread
// leaves nOS-V control (its affinity is left as-is; callers usually exit).
func (in *Instance) Detach(t *Task) {
	in.Stats.Detaches++
	if t.state == TaskRunning {
		in.releaseCore(t.prefCore, t)
	}
	if t.state == TaskReady {
		in.policy.Remove(t)
	}
	t.state = TaskDone
	if pc := in.procs[t.Pid]; pc != nil {
		delete(pc.tasks, t)
	}
}

// Submit implements nosv_submit: the task becomes ready. The policy either
// assigns it an idle core immediately or keeps it queued.
func (in *Instance) Submit(t *Task) {
	if t.state == TaskReady || t.state == TaskRunning || t.state == TaskDone {
		return
	}
	t.waitEv.Cancel()
	t.waitEv = sim.Event{}
	in.Stats.Submits++
	t.state = TaskReady
	if core := in.policy.Ready(t, false); core >= 0 {
		in.place(t, core)
	}
}

// Pause implements nosv_pause: the calling task blocks, its core is handed
// to the next scheduled task, and the call returns once somebody Submits
// the task again and the scheduler re-places it.
func (in *Instance) Pause(t *Task) {
	in.checkCaller(t)
	in.Stats.Pauses++
	t.state = TaskBlocked
	w := t.worker
	w.parkF.Word = 1
	in.releaseCore(t.prefCore, t)
	in.ParkWorker(w)
}

// Waitfor implements nosv_waitfor: a timed pause. The task is resubmitted
// automatically when d elapses, or earlier by an explicit Submit. It
// reports whether the wake came early (before the timeout).
func (in *Instance) Waitfor(t *Task, d sim.Duration) (early bool) {
	in.checkCaller(t)
	in.Stats.Waitfors++
	t.state = TaskBlocked
	w := t.worker
	w.parkF.Word = 1
	t.waitFired = false
	t.waitEv = in.K.Eng.AfterFunc(d, waitforExpire, t)
	in.releaseCore(t.prefCore, t)
	in.ParkWorker(w)
	return !t.waitFired
}

// waitforExpire is the nosv_waitfor timeout callback shared by every
// task, so timed pauses (nanosleep, timed condvar waits, poll loops)
// allocate nothing per arm.
func waitforExpire(arg any) {
	t := arg.(*Task)
	t.waitFired = true
	t.waitEv = sim.Event{}
	t.inst.Submit(t)
}

// Yield implements nosv_yield: the task requeues behind its siblings and
// the scheduler picks the next task for the core (possibly the same one).
func (in *Instance) Yield(t *Task) {
	in.checkCaller(t)
	in.Stats.Yields++
	core := t.prefCore
	t.state = TaskReady
	in.slots[core] = nil
	var next *Task
	if ya, ok := in.policy.(YieldAware); ok {
		in.policy.Ready(t, true)
		next = ya.NextAfterYield(core, t)
	} else {
		if c := in.policy.Ready(t, true); c >= 0 {
			// Policy chose to place the yielding task straight back
			// (e.g. on another idle core).
			in.place(t, c)
			if c == core {
				in.Stats.SelfYields++
				return
			}
		}
		next = in.policy.Next(core)
	}
	switch next {
	case nil:
		// Nothing else: continue in place if we were not moved.
		if t.state == TaskReady {
			in.policy.Remove(t)
			in.place(t, core)
			in.Stats.SelfYields++
		}
		return
	case t:
		in.place(t, core)
		in.Stats.SelfYields++
		return
	default:
		in.place(next, core)
	}
	if t.state == TaskReady {
		// We handed the core away; park until rescheduled.
		w := t.worker
		w.parkF.Word = 1
		in.ParkWorker(w)
	}
}

// Complete marks the running task finished and frees its core. The worker
// thread survives (glibcv's thread cache may rebind it to a new task).
func (in *Instance) Complete(t *Task) {
	in.checkCaller(t)
	in.Stats.Completions++
	t.state = TaskDone
	if pc := in.procs[t.Pid]; pc != nil {
		delete(pc.tasks, t)
	}
	w := t.worker
	w.parkF.Word = 1
	in.releaseCore(t.prefCore, t)
}

// ParkWorker blocks the calling worker thread until its task is placed on
// a core (parkF.Word becomes 0) or a shutdown is requested.
func (in *Instance) ParkWorker(w *Worker) {
	for w.parkF.Word == 1 && !w.Shutdown {
		w.parkF.Wait(w.KT, 1, -1)
	}
}

// WakeForShutdown releases a parked worker so its loop can exit.
func (in *Instance) WakeForShutdown(w *Worker) {
	w.Shutdown = true
	w.parkF.Wake(1)
}

// DisconnectProcess implements nosv_shutdown for one process: queued tasks
// are withdrawn. Running tasks are left to finish; glibcv drains its cache
// before calling this.
//
// Withdrawal happens in ascending task-ID order: pc.tasks is a map, and
// handing its random iteration order to policy.Remove would make the
// policy's residual queue state (and any removal-order bookkeeping a
// policy keeps) depend on the run, not the seed — the same class of bug
// as the omp.Runtime.Shutdown map-order teardown fixed in PR 3.
func (in *Instance) DisconnectProcess(pid kernel.Pid) {
	pc := in.procs[pid]
	if pc == nil {
		return
	}
	doomed := make([]*Task, 0, len(pc.tasks))
	for t := range pc.tasks {
		doomed = append(doomed, t)
	}
	sort.Slice(doomed, func(i, j int) bool { return doomed[i].ID < doomed[j].ID })
	for _, t := range doomed {
		if t.state == TaskReady {
			in.policy.Remove(t)
			t.state = TaskDone
		}
	}
	delete(in.procs, pid)
}

// releaseCore clears the slot t occupies and dispatches the next task.
func (in *Instance) releaseCore(core int, t *Task) {
	if core < 0 || in.slots[core] != t {
		return
	}
	in.slots[core] = nil
	if next := in.policy.Next(core); next != nil {
		in.place(next, core)
	}
}

// place dispatches a ready task onto an idle core: the bound worker is
// pinned there and released.
func (in *Instance) place(t *Task, core int) {
	if in.slots[core] != nil {
		panic(fmt.Sprintf("nosv: placing %v on busy core %d (held by %v)", t, core, in.slots[core]))
	}
	if t.state == TaskRunning {
		panic(fmt.Sprintf("nosv: double placement of %v", t))
	}
	in.slots[core] = t
	t.state = TaskRunning
	t.prefCore = core
	in.Stats.Placements++
	w := t.worker
	w.KT.SetAffinity(in.coreMasks[core])
	w.parkF.Word = 0
	w.parkF.Wake(1)
}

// checkCaller panics if t's worker thread is not the one executing.
func (in *Instance) checkCaller(t *Task) {
	if cur := in.K.Current(); cur != t.worker.KT {
		panic(fmt.Sprintf("nosv: %v API called from %v, not its bound worker", t, cur))
	}
}
