package nosv

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/sim"
)

func newTestStack(t *testing.T, cores int) (*sim.Engine, *kernel.Kernel, *kernel.Process, *Instance) {
	t.Helper()
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = cores
	cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
	eng := sim.NewEngine(1)
	k := kernel.New(eng, cfg, kernel.DefaultSchedParams())
	proc := k.NewProcess("app")
	in, err := OpenSegment(k, "test", proc, func() Policy { return NewFIFO() })
	if err != nil {
		t.Fatal(err)
	}
	return eng, k, proc, in
}

// spawnAttached creates a kernel thread that attaches to nOS-V, runs body,
// and completes its task.
func spawnAttached(k *kernel.Kernel, in *Instance, proc *kernel.Process, label string, body func(kt *kernel.Thread, task *Task)) {
	k.SpawnThread(proc, label, func(kt *kernel.Thread) {
		task := in.Attach(kt, proc.PID, label)
		body(kt, task)
		in.Complete(task)
	})
}

func mustRun(t *testing.T, eng *sim.Engine) {
	t.Helper()
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestAttachRunsTask(t *testing.T) {
	eng, k, proc, in := newTestStack(t, 4)
	ran := false
	spawnAttached(k, in, proc, "t", func(kt *kernel.Thread, task *Task) {
		if task.State() != TaskRunning {
			t.Errorf("state after attach = %v", task.State())
		}
		if task.PrefCore() < 0 {
			t.Error("no core assigned")
		}
		kt.Compute(1 * sim.Millisecond)
		ran = true
	})
	mustRun(t, eng)
	if !ran {
		t.Fatal("task body did not run")
	}
	if in.Stats.Attaches != 1 || in.Stats.Completions != 1 {
		t.Fatalf("stats = %+v", in.Stats)
	}
}

func TestOneRunnerPerCoreInvariant(t *testing.T) {
	eng, k, proc, in := newTestStack(t, 2)
	running := 0
	max := 0
	for i := 0; i < 6; i++ {
		spawnAttached(k, in, proc, "t", func(kt *kernel.Thread, task *Task) {
			running++
			if running > max {
				max = running
			}
			kt.Compute(5 * sim.Millisecond)
			running--
		})
	}
	mustRun(t, eng)
	if max > 2 {
		t.Fatalf("up to %d tasks ran concurrently on 2 cores", max)
	}
	if in.Stats.Completions != 6 {
		t.Fatalf("completions = %d", in.Stats.Completions)
	}
}

func TestNoPreemptionBetweenTasks(t *testing.T) {
	// Two long tasks on one core: the second must not start until the
	// first completes (cooperative semantics), unlike the kernel's fair
	// class which would interleave them.
	eng, k, proc, in := newTestStack(t, 1)
	var order []int
	for i := 0; i < 2; i++ {
		i := i
		spawnAttached(k, in, proc, "t", func(kt *kernel.Thread, task *Task) {
			kt.Compute(100 * sim.Millisecond) // far beyond a kernel slice
			order = append(order, i)
		})
	}
	mustRun(t, eng)
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("order = %v, want strict FIFO completion", order)
	}
}

func TestPauseSubmitRoundTrip(t *testing.T) {
	eng, k, proc, in := newTestStack(t, 2)
	var paused *Task
	var resumedAt sim.Time
	spawnAttached(k, in, proc, "sleeper", func(kt *kernel.Thread, task *Task) {
		paused = task
		in.Pause(task)
		resumedAt = eng.Now()
	})
	spawnAttached(k, in, proc, "waker", func(kt *kernel.Thread, task *Task) {
		kt.Compute(10 * sim.Millisecond)
		in.Submit(paused)
	})
	mustRun(t, eng)
	if resumedAt != sim.Time(10*sim.Millisecond) {
		t.Fatalf("resumed at %v, want 10ms", resumedAt)
	}
}

func TestPauseFreesCoreForNextTask(t *testing.T) {
	eng, k, proc, in := newTestStack(t, 1)
	var blocked *Task
	var secondRan sim.Time
	spawnAttached(k, in, proc, "blocker", func(kt *kernel.Thread, task *Task) {
		blocked = task
		kt.Compute(2 * sim.Millisecond)
		in.Pause(task) // hands the single core to the waiter
		kt.Compute(1 * sim.Millisecond)
	})
	spawnAttached(k, in, proc, "waiter", func(kt *kernel.Thread, task *Task) {
		secondRan = eng.Now()
		kt.Compute(3 * sim.Millisecond)
		in.Submit(blocked)
	})
	mustRun(t, eng)
	if secondRan != sim.Time(2*sim.Millisecond) {
		t.Fatalf("waiter started at %v, want 2ms (right after pause)", secondRan)
	}
}

func TestWaitforTimesOutAndResubmits(t *testing.T) {
	eng, k, proc, in := newTestStack(t, 2)
	var early bool
	var at sim.Time
	spawnAttached(k, in, proc, "w", func(kt *kernel.Thread, task *Task) {
		early = in.Waitfor(task, 5*sim.Millisecond)
		at = eng.Now()
	})
	mustRun(t, eng)
	if early {
		t.Fatal("Waitfor reported early wake on a pure timeout")
	}
	if at != sim.Time(5*sim.Millisecond) {
		t.Fatalf("woke at %v, want 5ms", at)
	}
}

func TestWaitforEarlySubmit(t *testing.T) {
	eng, k, proc, in := newTestStack(t, 2)
	var target *Task
	var early bool
	var at sim.Time
	spawnAttached(k, in, proc, "w", func(kt *kernel.Thread, task *Task) {
		target = task
		early = in.Waitfor(task, 50*sim.Millisecond)
		at = eng.Now()
	})
	eng.After(7*sim.Millisecond, func() { in.Submit(target) })
	mustRun(t, eng)
	if !early {
		t.Fatal("expected early wake")
	}
	if at != sim.Time(7*sim.Millisecond) {
		t.Fatalf("woke at %v, want 7ms", at)
	}
}

func TestYieldRotatesReadyTasks(t *testing.T) {
	eng, k, proc, in := newTestStack(t, 1)
	var trace []string
	mk := func(name string) {
		spawnAttached(k, in, proc, name, func(kt *kernel.Thread, task *Task) {
			// Warm-up longer than a kernel slice, so the second
			// thread's raw attach gets CPU before the yields start.
			kt.Compute(15 * sim.Millisecond)
			for i := 0; i < 3; i++ {
				kt.Compute(1 * sim.Millisecond)
				trace = append(trace, name)
				in.Yield(task)
			}
		})
	}
	mk("a")
	mk("b")
	mustRun(t, eng)
	// a and b must alternate on the single core.
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestYieldAloneIsSelfYield(t *testing.T) {
	eng, k, proc, in := newTestStack(t, 2)
	spawnAttached(k, in, proc, "solo", func(kt *kernel.Thread, task *Task) {
		kt.Compute(1 * sim.Millisecond)
		in.Yield(task)
		kt.Compute(1 * sim.Millisecond)
	})
	mustRun(t, eng)
	if in.Stats.SelfYields == 0 {
		t.Fatal("lone yield should be a self-yield")
	}
}

func TestSegmentSharingAndUIDCheck(t *testing.T) {
	eng, k, proc, in := newTestStack(t, 2)
	_ = eng
	p2 := k.NewProcess("friend")
	in2, err := OpenSegment(k, "test", p2, func() Policy { return NewFIFO() })
	if err != nil {
		t.Fatalf("same-uid join failed: %v", err)
	}
	if in2 != in {
		t.Fatal("same key must return the same segment")
	}
	p3 := k.NewProcess("stranger")
	p3.UID = 1000
	if _, err := OpenSegment(k, "test", p3, func() Policy { return NewFIFO() }); err == nil {
		t.Fatal("cross-uid join must be rejected")
	}
	if _, err := OpenSegment(k, "other", p3, func() Policy { return NewFIFO() }); err != nil {
		t.Fatalf("fresh segment for other uid: %v", err)
	}
	_ = proc
}

func TestMultiProcessSharedScheduling(t *testing.T) {
	// Two processes submit tasks into one segment with a single core:
	// the centralized scheduler serialises them all cooperatively.
	eng, k, proc, in := newTestStack(t, 1)
	p2 := k.NewProcess("p2")
	if _, err := OpenSegment(k, "test", p2, func() Policy { return NewFIFO() }); err != nil {
		t.Fatal(err)
	}
	var completions int
	body := func(kt *kernel.Thread, task *Task) {
		kt.Compute(3 * sim.Millisecond)
		completions++
	}
	spawnAttached(k, in, proc, "a1", body)
	spawnAttached(k, in, p2, "b1", body)
	spawnAttached(k, in, proc, "a2", body)
	spawnAttached(k, in, p2, "b2", body)
	mustRun(t, eng)
	if completions != 4 {
		t.Fatalf("completions = %d", completions)
	}
	if in.Stats.Placements < 4 {
		t.Fatalf("placements = %d", in.Stats.Placements)
	}
}

func TestDetachWithdrawsQueuedTask(t *testing.T) {
	eng, k, proc, in := newTestStack(t, 1)
	// Occupy the core, then create a queued task and detach it before
	// it ever runs.
	spawnAttached(k, in, proc, "hog", func(kt *kernel.Thread, task *Task) {
		kt.Compute(10 * sim.Millisecond)
	})
	ran := false
	k.SpawnThread(proc, "victim", func(kt *kernel.Thread) {
		w := in.NewWorker(kt)
		task := in.NewTask(w, proc.PID, "victim")
		in.Submit(task)
		// queued behind hog; withdraw it
		in.Detach(task)
		ran = true
	})
	mustRun(t, eng)
	if !ran {
		t.Fatal("victim thread stuck")
	}
	if in.Stats.Completions != 1 {
		t.Fatalf("completions = %d, want 1 (only hog)", in.Stats.Completions)
	}
}

func TestDisconnectProcessDropsQueuedTasks(t *testing.T) {
	eng, k, proc, in := newTestStack(t, 1)
	p2 := k.NewProcess("p2")
	if _, err := OpenSegment(k, "test", p2, func() Policy { return NewFIFO() }); err != nil {
		t.Fatal(err)
	}
	executed := 0
	// Long enough that the orphan's raw thread attaches (after a kernel
	// slice) while the hog still occupies the nOS-V core slot.
	spawnAttached(k, in, proc, "hog", func(kt *kernel.Thread, task *Task) {
		kt.Compute(40 * sim.Millisecond)
	})
	// p2's task is queued, then its process disconnects: the worker
	// must be releasable via shutdown without the task ever running.
	k.SpawnThread(p2, "orphan", func(kt *kernel.Thread) {
		w := in.NewWorker(kt)
		task := in.NewTask(w, p2.PID, "orphan")
		in.Submit(task)
		in.DisconnectProcess(p2.PID)
		if task.State() == TaskDone {
			executed++ // withdrawn, as expected
			return
		}
		t.Error("queued task not withdrawn at disconnect")
	})
	mustRun(t, eng)
	if executed != 1 {
		t.Fatalf("executed = %d", executed)
	}
}

func TestWorkerShutdownWake(t *testing.T) {
	eng, k, proc, in := newTestStack(t, 2)
	var w *Worker
	reached := false
	k.SpawnThread(proc, "cached", func(kt *kernel.Thread) {
		w = in.NewWorker(kt)
		in.ParkWorker(w) // parks immediately (Word==1)
		if !w.Shutdown {
			t.Error("worker woke without shutdown")
		}
		reached = true
	})
	eng.After(3*sim.Millisecond, func() { in.WakeForShutdown(w) })
	mustRun(t, eng)
	if !reached {
		t.Fatal("worker never exited park loop")
	}
}

func TestCooperativeVsKernelInterleaving(t *testing.T) {
	// The headline behavioural difference (paper §3): under nOS-V CPU
	// hogs on one core run back-to-back instead of being multiplexed.
	// The only kernel preemptions allowed are the brief ones where a
	// freshly created raw thread grabs the core to attach itself; under
	// the raw fair class, 3x200ms on one core would produce dozens.
	eng, k, proc, in := newTestStack(t, 1)
	for i := 0; i < 3; i++ {
		spawnAttached(k, in, proc, "hog", func(kt *kernel.Thread, task *Task) {
			kt.Compute(200 * sim.Millisecond)
		})
	}
	mustRun(t, eng)
	if k.Stats.Preemptions > 3 {
		t.Fatalf("preemptions = %d, want <=3 (attach noise only)", k.Stats.Preemptions)
	}

	// Control: the same load on the raw kernel interleaves heavily.
	eng2 := sim.NewEngine(1)
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = 1
	cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
	k2 := kernel.New(eng2, cfg, kernel.DefaultSchedParams())
	p2 := k2.NewProcess("raw")
	for i := 0; i < 3; i++ {
		k2.SpawnThread(p2, "hog", func(kt *kernel.Thread) {
			kt.Compute(200 * sim.Millisecond)
		})
	}
	if _, err := eng2.RunAll(); err != nil {
		t.Fatal(err)
	}
	if k2.Stats.Preemptions <= 10 {
		t.Fatalf("raw kernel preemptions = %d, expected heavy interleaving", k2.Stats.Preemptions)
	}
}
