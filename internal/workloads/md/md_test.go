package md

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

// smallCfg is a shrunken instance on the 16-core dual-socket machine.
func smallCfg(s Scenario) Config {
	cfg := Config{
		Machine:          hw.DualSocket16(),
		Scenario:         s,
		Ensembles:        2,
		RanksPerEnsemble: 8,
		OMPPerRank:       2,
		Steps:            5,
		Atoms:            4000,
		Regions:          14,
		PerAtomWork:      650 * sim.Microsecond,
		BWPerThread:      2.0,
		InitWork:         500 * sim.Millisecond,
		Horizon:          1200 * sim.Second,
		Seed:             11,
	}
	if s.Colocated() {
		cfg.RanksPerEnsemble = 4
	}
	return cfg
}

func TestAtomDistributionImbalanced(t *testing.T) {
	cfg := smallCfg(Exclusive)
	total, max, min := 0, 0, 1<<30
	for r := 0; r < cfg.RanksPerEnsemble; r++ {
		a := atomsOfRank(cfg, r)
		total += a
		if a > max {
			max = a
		}
		if a < min {
			min = a
		}
	}
	if total < cfg.Atoms*98/100 || total > cfg.Atoms {
		t.Fatalf("total atoms = %d, want ~%d", total, cfg.Atoms)
	}
	if float64(max) < 1.2*float64(min) {
		t.Fatalf("imbalance max=%d min=%d too even; dense/sparse regions missing", max, min)
	}
}

func TestAllScenariosComplete(t *testing.T) {
	for _, s := range []Scenario{
		Exclusive, ColocationNode, ColocationSocket,
		CoexecutionNode, CoexecutionSocket, SchedCoopNode, SchedCoopSocket,
	} {
		res := Run(smallCfg(s))
		if res.TimedOut {
			t.Fatalf("%v timed out", s)
		}
		if len(res.PerEnsemble) != 2 || res.Aggregate <= 0 {
			t.Fatalf("%v: bad result %+v", s, res)
		}
	}
}

func TestExclusiveBestPerEnsembleWorstAggregate(t *testing.T) {
	ex := Run(smallCfg(Exclusive))
	coop := Run(smallCfg(SchedCoopNode))
	if ex.TimedOut || coop.TimedOut {
		t.Fatal("timeout")
	}
	// Per-ensemble rate: exclusive runs alone, so each ensemble beats
	// the co-executed ones (paper: 106 vs <=60 Katom-step/s).
	if ex.PerEnsemble[0] <= coop.PerEnsemble[0] {
		t.Fatalf("exclusive per-ensemble %.1f <= coop %.1f", ex.PerEnsemble[0], coop.PerEnsemble[0])
	}
	// Aggregate: co-execution overlaps init and fills gaps, beating
	// exclusive overall.
	if coop.Aggregate <= ex.Aggregate {
		t.Fatalf("coop aggregate %.1f <= exclusive %.1f", coop.Aggregate, ex.Aggregate)
	}
}

func TestCoopBeatsCoexecution(t *testing.T) {
	co := Run(smallCfg(CoexecutionNode))
	coop := Run(smallCfg(SchedCoopNode))
	if co.TimedOut || coop.TimedOut {
		t.Fatal("timeout")
	}
	if coop.Aggregate < co.Aggregate*0.98 {
		t.Fatalf("coop aggregate %.1f clearly below coexecution %.1f", coop.Aggregate, co.Aggregate)
	}
}

func TestBandwidthTraceRecorded(t *testing.T) {
	res := Run(smallCfg(SchedCoopNode))
	if res.BW.Len() < 10 {
		t.Fatalf("bandwidth series has %d samples", res.BW.Len())
	}
	if res.BW.Max() <= 0 || res.AvgBandwidth <= 0 {
		t.Fatalf("no bandwidth recorded: max=%v avg=%v", res.BW.Max(), res.AvgBandwidth)
	}
	if res.BW.Max() > 2*64 { // two sockets at 64 GB/s each on DualSocket16
		t.Fatalf("bandwidth %v exceeds machine capability", res.BW.Max())
	}
}

func TestColocationUsesFewerRanks(t *testing.T) {
	if DefaultConfig(ColocationNode).RanksPerEnsemble != 28 {
		t.Fatal("colocation must halve ranks")
	}
	if DefaultConfig(CoexecutionNode).RanksPerEnsemble != 56 {
		t.Fatal("coexecution keeps 56 ranks")
	}
}
