// Package md reproduces §5.6: LAMMPS molecular dynamics coupled with
// DeePMD-kit. Two simulation ensembles of hybrid MPI+OpenMP ranks run a
// spatially imbalanced CH4 box (14 interleaved dense/sparse x-regions,
// dense regions hold 90% of the atoms). Each step every rank computes
// bandwidth-heavy DeePMD force inference over its local atoms, exchanges
// halos with its neighbours (busy-polling MPI) and joins an allreduce.
// The seven execution scenarios of Fig. 5 vary co-execution, pinning and
// the scheduler.
package md

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/glibc"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/rt/omp"
	"repro/internal/sim"
	"repro/internal/stack"
)

// Scenario is one of Fig. 5's execution configurations.
type Scenario int

// Scenarios. The paper's naming: "socket" spreads each ensemble over both
// sockets; "node" confines each ensemble to one socket.
const (
	Exclusive Scenario = iota
	ColocationNode
	ColocationSocket
	CoexecutionNode
	CoexecutionSocket
	SchedCoopNode
	SchedCoopSocket
)

func (s Scenario) String() string {
	switch s {
	case Exclusive:
		return "exclusive"
	case ColocationNode:
		return "colocation_node"
	case ColocationSocket:
		return "colocation_socket"
	case CoexecutionNode:
		return "coexecution_node"
	case CoexecutionSocket:
		return "coexecution_socket"
	case SchedCoopNode:
		return "schedcoop_node"
	}
	return "schedcoop_socket"
}

// Coop reports whether the scenario uses SCHED_COOP.
func (s Scenario) Coop() bool { return s == SchedCoopNode || s == SchedCoopSocket }

// Colocated reports whether ranks are halved and pinned disjointly.
func (s Scenario) Colocated() bool { return s == ColocationNode || s == ColocationSocket }

// perSocket reports whether each ensemble is confined to one socket
// (the paper's "node" variants).
func (s Scenario) perSocket() bool {
	return s == ColocationNode || s == CoexecutionNode || s == SchedCoopNode
}

// Config parameterises one MD evaluation.
type Config struct {
	Machine  hw.Config
	Scenario Scenario
	// Ensembles is the ensemble count (paper: 2).
	Ensembles int
	// RanksPerEnsemble (paper: 56; colocation scenarios halve this).
	RanksPerEnsemble int
	// OMPPerRank is the OpenMP width per rank (paper: 2).
	OMPPerRank int
	// Steps per simulation (paper: 100).
	Steps int
	// Atoms per ensemble (paper: 100k, 20k CH4 molecules).
	Atoms int
	// Regions along x (paper: 14, alternating dense/sparse, 90/10).
	Regions int
	// PerAtomWork is the single-core DeePMD force cost per atom-step.
	PerAtomWork sim.Duration
	// BWPerThread is the inference memory-bandwidth demand (bytes/ns).
	BWPerThread float64
	// InitWork is the sequential per-ensemble initialisation cost.
	InitWork sim.Duration
	Horizon  sim.Duration
	Seed     uint64
}

// DefaultConfig returns the paper-shaped configuration on MareNostrum5.
func DefaultConfig(s Scenario) Config {
	cfg := Config{
		Machine:          hw.MareNostrum5(),
		Scenario:         s,
		Ensembles:        2,
		RanksPerEnsemble: 56,
		OMPPerRank:       2,
		Steps:            100,
		Atoms:            100_000,
		Regions:          14,
		PerAtomWork:      650 * sim.Microsecond,
		BWPerThread:      2.0,
		InitWork:         20 * sim.Second,
		Horizon:          3000 * sim.Second,
		Seed:             11,
	}
	if s.Colocated() {
		cfg.RanksPerEnsemble = 28
	}
	return cfg
}

// Result reports one evaluation.
type Result struct {
	// PerEnsemble is each ensemble's Katom-step/s over its own runtime.
	PerEnsemble []float64
	// Aggregate is total atom-steps over total wall time, in Katom/s.
	Aggregate float64
	// BW is the whole-node consumed-bandwidth time series (GB/s).
	BW *metrics.Series
	// AvgBandwidth is the mean of BW over the run (paper's Fig. 5b
	// caption values).
	AvgBandwidth float64
	Elapsed      sim.Duration
	TimedOut     bool
}

// atomsOfRank integrates the dense/sparse density over rank r's x-slab.
func atomsOfRank(cfg Config, r int) int {
	// Density per unit x: regions alternate dense (0.9 of atoms over
	// half the box) and sparse (0.1 over the other half).
	R := cfg.Regions
	denseShare := 0.9 / float64((R+1)/2)
	sparseShare := 0.1 / float64(R/2)
	lo := float64(r) / float64(cfg.RanksPerEnsemble)
	hi := float64(r+1) / float64(cfg.RanksPerEnsemble)
	total := 0.0
	for reg := 0; reg < R; reg++ {
		rLo := float64(reg) / float64(R)
		rHi := float64(reg+1) / float64(R)
		overlap := minF(hi, rHi) - maxF(lo, rLo)
		if overlap <= 0 {
			continue
		}
		share := denseShare
		if reg%2 == 1 {
			share = sparseShare
		}
		total += share * overlap / (rHi - rLo)
	}
	return int(total * float64(cfg.Atoms))
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Run executes one scenario.
func Run(cfg Config) Result {
	sys := stack.New(cfg.Machine, cfg.Seed)
	k := sys.K

	// Bandwidth tracing: per-socket consumption summed into one series.
	bw := &metrics.Series{}
	perSocket := make([]float64, cfg.Machine.Topo.Sockets)
	k.BWSample = func(at sim.Time, socket int, used float64) {
		perSocket[socket] = used
		total := 0.0
		for _, v := range perSocket {
			total += v
		}
		bw.Add(at, total)
	}

	mode := stack.ModeBaseline
	if cfg.Scenario.Coop() {
		mode = stack.ModeCoop
	}

	ensembleDone := make([]sim.Time, cfg.Ensembles)
	ensembleStart := make([]sim.Time, cfg.Ensembles)
	finished := 0

	var launch func(e int)
	launch = func(e int) {
		ensembleStart[e] = sys.Eng.Now()
		world := mpi.NewWorld(cfg.RanksPerEnsemble, true) // MPICH yield patch (§5.2)
		remaining := cfg.RanksPerEnsemble
		for r := 0; r < cfg.RanksPerEnsemble; r++ {
			r := r
			opts := glibc.Options{Affinity: rankMask(cfg, e, r)}
			_, err := sys.Start(fmt.Sprintf("lmp-e%d-r%d", e, r), mode, opts, func(l *glibc.Lib) {
				runRank(cfg, l, world, e, r)
				remaining--
				if remaining == 0 {
					ensembleDone[e] = l.K.Eng.Now()
					finished++
					if cfg.Scenario == Exclusive && e+1 < cfg.Ensembles {
						launch(e + 1)
					}
				}
			})
			if err != nil {
				panic(err)
			}
		}
	}
	if cfg.Scenario == Exclusive {
		launch(0)
	} else {
		for e := 0; e < cfg.Ensembles; e++ {
			launch(e)
		}
	}

	timedOut, err := sys.Run(cfg.Horizon)
	if err != nil {
		panic(err)
	}
	end := sys.Eng.Now()
	res := Result{BW: bw, TimedOut: timedOut || finished < cfg.Ensembles, Elapsed: sim.Duration(end)}
	if res.TimedOut {
		return res
	}
	totalAtomSteps := 0.0
	var last sim.Time
	for e := 0; e < cfg.Ensembles; e++ {
		el := ensembleDone[e].Sub(ensembleStart[e])
		res.PerEnsemble = append(res.PerEnsemble,
			float64(cfg.Atoms)*float64(cfg.Steps)/el.Seconds()/1000)
		totalAtomSteps += float64(cfg.Atoms) * float64(cfg.Steps)
		if ensembleDone[e] > last {
			last = ensembleDone[e]
		}
	}
	res.Aggregate = totalAtomSteps / last.Seconds() / 1000
	res.AvgBandwidth = bw.Mean(0, last)
	res.Elapsed = sim.Duration(last)
	return res
}

// rankMask returns the rank's process cpuset per scenario.
func rankMask(cfg Config, e, r int) kernel.Mask {
	topo := cfg.Machine.Topo
	cores := topo.Cores()
	switch {
	case cfg.Scenario == Exclusive:
		// Disjoint 2-core pins across the whole node.
		base := r * cfg.OMPPerRank % cores
		return kernel.RangeMask(base, base+cfg.OMPPerRank)
	case cfg.Scenario.Colocated():
		// Half ranks, disjoint pins; per the scenario either both
		// ensembles share each socket or each gets its own.
		if cfg.Scenario.perSocket() {
			base := e*topo.CoresPerSocket + r*cfg.OMPPerRank
			return kernel.RangeMask(base, base+cfg.OMPPerRank)
		}
		// spread: ensembles interleave across sockets
		base := (r*cfg.OMPPerRank*2 + e*cfg.OMPPerRank) % cores
		return kernel.RangeMask(base, base+cfg.OMPPerRank)
	case cfg.Scenario.perSocket():
		// Coexecution/coop "node": confine each ensemble to a socket,
		// threads free to migrate within it.
		s := e % topo.Sockets
		return kernel.RangeMask(s*topo.CoresPerSocket, (s+1)*topo.CoresPerSocket)
	default:
		// Spread across the node, no pinning.
		return kernel.Mask{}
	}
}

// runRank is one MPI rank's program.
func runRank(cfg Config, l *glibc.Lib, world *mpi.World, e, r int) {
	rank := world.Register(r, l)
	atoms := atomsOfRank(cfg, r)

	rt := omp.New(l, omp.Config{Flavor: omp.Gomp, NumThreads: cfg.OMPPerRank, WaitPolicy: omp.WaitPassive})
	b := blas.New(l, blas.Config{
		Impl:           blas.OpenBLAS,
		Backend:        blas.BackendOpenMP,
		Threads:        cfg.OMPPerRank,
		OMP:            rt,
		YieldInBarrier: true,
		BWPerThread:    cfg.BWPerThread,
	})

	// Sequential initialisation: rank 0 reads and broadcasts the system
	// (the bandwidth valleys of Fig. 5b); everyone else waits.
	if r == 0 {
		l.Compute(cfg.InitWork)
	}
	rank.Barrier()

	haloBytes := int64(atoms) * 80 / 10 // ~10% boundary atoms, 80B each
	n := world.Size()
	for step := 0; step < cfg.Steps; step++ {
		// Force inference over local atoms (bandwidth-heavy GEMMs).
		b.KernelWork(sim.Duration(atoms) * cfg.PerAtomWork)
		// Halo exchange with x-neighbours.
		if n > 1 {
			left := (r + n - 1) % n
			right := (r + 1) % n
			rank.Send(right, 100+step, haloBytes)
			rank.Send(left, 200+step, haloBytes)
			rank.Recv(left, 100+step)
			rank.Recv(right, 200+step)
		}
		// Global thermodynamic reduction.
		rank.Allreduce(1024)
	}
	rt.Shutdown()
}
