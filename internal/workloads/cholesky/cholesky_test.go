package cholesky

import (
	"testing"

	"repro/internal/blas"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/stack"
)

func smallCfg(mode stack.Mode, outer OuterKind, inner InnerKind, impl blas.Impl, ot, it int) Config {
	return Config{
		Machine:      hw.DualSocket16(),
		Mode:         mode,
		N:            4096,
		TileSize:     512,
		Outer:        outer,
		Inner:        inner,
		Impl:         impl,
		OuterThreads: ot,
		InnerThreads: it,
		Horizon:      5 * sim.Second,
		Seed:         1,
	}
}

func TestAllCompositionsComplete(t *testing.T) {
	combos := []struct {
		outer OuterKind
		inner InnerKind
		impl  blas.Impl
	}{
		{OuterGnu, InnerLlvm, blas.OpenBLAS},
		{OuterTbb, InnerLlvm, blas.OpenBLAS},
		{OuterTbb, InnerGnu, blas.BLIS},
		{OuterTbb, InnerPth, blas.BLIS},
		{OuterGnu, InnerPth, blas.BLIS},
	}
	for _, c := range combos {
		for _, mode := range []stack.Mode{stack.ModeBaseline, stack.ModeCoop} {
			cfg := smallCfg(mode, c.outer, c.inner, c.impl, 4, 4)
			res := Run(cfg)
			if res.TimedOut || res.GFLOPS <= 0 {
				t.Fatalf("%s mode=%v: %+v", cfg.Label(), mode, res)
			}
		}
	}
}

func TestCoopBeatsBaselineOnPthreadBackendOversubscribed(t *testing.T) {
	// Table 2's key row: tbb/pth/blis at high oversubscription, where
	// thread churn plus preemption hurts the baseline most and glibcv's
	// thread cache shines.
	base := Run(smallCfg(stack.ModeBaseline, OuterTbb, InnerPth, blas.BLIS, 8, 8))
	coop := Run(smallCfg(stack.ModeCoop, OuterTbb, InnerPth, blas.BLIS, 8, 8))
	if base.TimedOut || coop.TimedOut {
		t.Fatalf("timeouts: base=%v coop=%v", base.TimedOut, coop.TimedOut)
	}
	if coop.GFLOPS <= base.GFLOPS {
		t.Fatalf("coop %.1f <= baseline %.1f GFLOPS on churny pth backend", coop.GFLOPS, base.GFLOPS)
	}
	if coop.CacheHits == 0 {
		t.Fatal("no thread-cache hits; pth backend must exercise the cache")
	}
}

func TestLabel(t *testing.T) {
	cfg := smallCfg(stack.ModeBaseline, OuterTbb, InnerPth, blas.BLIS, 4, 4)
	if cfg.Label() != "tbb/pth/blis" {
		t.Fatalf("Label = %q", cfg.Label())
	}
	cfg2 := smallCfg(stack.ModeBaseline, OuterGnu, InnerLlvm, blas.OpenBLAS, 4, 4)
	if cfg2.Label() != "gnu/llvm/opb" {
		t.Fatalf("Label = %q", cfg2.Label())
	}
}

func TestMildDegreeNearParity(t *testing.T) {
	// Mild oversubscription (paper: 1.14 threads/core -> ~1.1x):
	// speedup should be modest.
	base := Run(smallCfg(stack.ModeBaseline, OuterTbb, InnerLlvm, blas.OpenBLAS, 4, 4))
	coop := Run(smallCfg(stack.ModeCoop, OuterTbb, InnerLlvm, blas.OpenBLAS, 4, 4))
	if base.TimedOut || coop.TimedOut {
		t.Fatal("timeout")
	}
	ratio := coop.GFLOPS / base.GFLOPS
	if ratio < 0.8 || ratio > 2.5 {
		t.Fatalf("mild-degree speedup = %.2f, want modest (~1.x)", ratio)
	}
}
