// Package cholesky reproduces §5.4: a tiled Cholesky factorisation run
// under multiple runtime compositions — outer task runtime (GNU OpenMP
// tasks or oneTBB) × inner BLAS parallelism (LLVM OpenMP, GNU OpenMP, or a
// raw pthread backend) × BLAS implementation (OpenBLAS or BLIS) — at three
// oversubscription degrees (Table 2).
package cholesky

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/glibc"
	"repro/internal/hw"
	"repro/internal/rt/omp"
	"repro/internal/rt/ompss"
	"repro/internal/rt/tbb"
	"repro/internal/sim"
	"repro/internal/stack"
)

// OuterKind selects the outer task runtime.
type OuterKind int

// Outer runtimes (Table 2's "Out" column).
const (
	// OuterGnu models GNU OpenMP task+depend: a dependency-aware task
	// pool (shared engine with the OmpSs model; gomp-flavoured
	// overheads).
	OuterGnu OuterKind = iota
	// OuterTbb models a oneTBB arena driving wave-synchronised tiles.
	OuterTbb
)

func (o OuterKind) String() string {
	if o == OuterGnu {
		return "gnu"
	}
	return "tbb"
}

// InnerKind selects the BLAS library's internal parallelism.
type InnerKind int

// Inner backends (Table 2's "Inn" column).
const (
	InnerLlvm InnerKind = iota // LLVM OpenMP
	InnerGnu                   // GNU OpenMP
	InnerPth                   // raw pthread backend (BLIS)
)

func (i InnerKind) String() string {
	switch i {
	case InnerLlvm:
		return "llvm"
	case InnerGnu:
		return "gnu"
	}
	return "pth"
}

// Config parameterises one Cholesky run.
type Config struct {
	Machine hw.Config
	Mode    stack.Mode
	// N is the matrix size, TileSize the block (paper: 32768 / 1024).
	N, TileSize int
	Outer       OuterKind
	Inner       InnerKind
	Impl        blas.Impl
	// OuterThreads x InnerThreads sets the oversubscription degree
	// (Mild 8x8, Medium 14x14, High 28x28 on the 112-core node).
	OuterThreads, InnerThreads int
	Horizon                    sim.Duration
	Seed                       uint64
}

// Label renders the composition like the paper's row labels.
func (c Config) Label() string {
	impl := "opb"
	if c.Impl == blas.BLIS {
		impl = "blis"
	}
	return fmt.Sprintf("%s/%s/%s", c.Outer, c.Inner, impl)
}

// Result reports one run.
type Result struct {
	GFLOPS   float64
	Elapsed  sim.Duration
	TimedOut bool
	// CacheHits counts glibcv pthread-cache reuse (the 4x effect on pth
	// backends).
	CacheHits int64
}

// tile identifies a matrix tile for the dependency tracker.
type tile struct{ i, j int }

// Run executes one Cholesky configuration.
func Run(cfg Config) Result {
	sys := stack.New(cfg.Machine, cfg.Seed)
	var elapsed sim.Duration
	var cacheHits int64
	finished := false

	_, err := sys.Start("cholesky", cfg.Mode, glibc.Options{}, func(l *glibc.Lib) {
		nb := cfg.N / cfg.TileSize
		ts := cfg.TileSize
		b := newBLAS(l, cfg)
		start := l.K.Eng.Now()
		switch cfg.Outer {
		case OuterGnu:
			runTaskBased(l, cfg, b, nb, ts)
		case OuterTbb:
			runWaveBased(l, cfg, b, nb, ts)
		}
		elapsed = l.K.Eng.Now().Sub(start)
		cacheHits = l.Stats.CacheHits
		if r := b.Config().OMP; r != nil {
			r.Shutdown()
		}
		finished = true
	})
	if err != nil {
		panic(err)
	}
	timedOut, err := sys.Run(cfg.Horizon)
	if err != nil {
		panic(err)
	}
	res := Result{TimedOut: timedOut || !finished, Elapsed: elapsed, CacheHits: cacheHits}
	if finished && elapsed > 0 {
		n := float64(cfg.N)
		res.GFLOPS = n * n * n / 3 / float64(elapsed)
	}
	return res
}

// newBLAS builds the inner BLAS per the composition.
func newBLAS(l *glibc.Lib, cfg Config) *blas.Lib {
	bc := blas.Config{
		Impl:            cfg.Impl,
		Threads:         cfg.InnerThreads,
		YieldInBarrier:  cfg.Mode.YieldInBarrier(),
		BlockingBarrier: cfg.Mode.BlockingBarrier(),
	}
	switch cfg.Inner {
	case InnerPth:
		bc.Backend = blas.BackendPthread
	case InnerLlvm:
		bc.Backend = blas.BackendOpenMP
		bc.OMP = omp.New(l, omp.Config{Flavor: omp.Libomp, NumThreads: cfg.InnerThreads, WaitPolicy: omp.WaitPassive})
	case InnerGnu:
		bc.Backend = blas.BackendOpenMP
		bc.OMP = omp.New(l, omp.Config{Flavor: omp.Gomp, NumThreads: cfg.InnerThreads, WaitPolicy: omp.WaitPassive})
	}
	if cfg.Impl == blas.BLIS {
		bc.Efficiency = 0.82 // BLIS sustains slightly less than OpenBLAS here
	}
	return blas.New(l, bc)
}

// runTaskBased is the dependency-driven variant (GNU OpenMP task depend,
// modelled on the shared task-dependency engine).
func runTaskBased(l *glibc.Lib, cfg Config, b *blas.Lib, nb, ts int) {
	outer := ompss.New(l, ompss.Config{Workers: cfg.OuterThreads, WaitPolicy: ompss.WaitPassive})
	for k := 0; k < nb; k++ {
		k := k
		outer.Task(ompss.Deps{InOut: []any{tile{k, k}}}, func() { b.Dpotrf(ts) })
		for i := k + 1; i < nb; i++ {
			i := i
			outer.Task(ompss.Deps{
				In:    []any{tile{k, k}},
				InOut: []any{tile{i, k}},
			}, func() { b.Dtrsm(ts, ts) })
		}
		for i := k + 1; i < nb; i++ {
			i := i
			outer.Task(ompss.Deps{
				In:    []any{tile{i, k}},
				InOut: []any{tile{i, i}},
			}, func() { b.Dsyrk(ts, ts) })
			for j := k + 1; j < i; j++ {
				j := j
				outer.Task(ompss.Deps{
					In:    []any{tile{i, k}, tile{j, k}},
					InOut: []any{tile{i, j}},
				}, func() { b.Dgemm(ts, ts, ts) })
			}
		}
	}
	outer.Taskwait()
	outer.Shutdown()
}

// runWaveBased is the TBB variant: per factorisation step, the trailing
// update runs as a synchronised wave in the arena (coarse, barrier-style
// parallelism typical of TBB ports).
func runWaveBased(l *glibc.Lib, cfg Config, b *blas.Lib, nb, ts int) {
	arena := tbb.New(l, tbb.Config{Workers: cfg.OuterThreads})
	for k := 0; k < nb; k++ {
		b.Dpotrf(ts)
		g := arena.NewGroup()
		for i := k + 1; i < nb; i++ {
			g.Run(func() { b.Dtrsm(ts, ts) })
		}
		g.Wait()
		g2 := arena.NewGroup()
		for i := k + 1; i < nb; i++ {
			i := i
			g2.Run(func() { b.Dsyrk(ts, ts) })
			for j := k + 1; j < i; j++ {
				g2.Run(func() { b.Dgemm(ts, ts, ts) })
			}
		}
		g2.Wait()
	}
	arena.Shutdown()
}
