// Package inference reproduces §5.5: a Python-style multi-process AI
// microservice. A Gateway process receives Poisson-distributed client
// requests, simulates planning, fans each request out to three inference
// servers (LLaMA-3.2-1B, GPT-2, RoBERTa-large) and waits for all three
// replies. Each server spawns one handler thread per request; handlers
// alternate GIL-serialised "Python" segments with OpenBLAS/OpenMP
// inference kernels, so concurrent requests oversubscribe the node.
//
// Model compute profiles are calibrated to the paper's isolated strong-
// scaling points: LLaMA 5.4 s at 28 cores, GPT-2 1.8 s at 8, RoBERTa
// 1.2 s at 8.
package inference

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/glibc"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/load"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rt/omp"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/trace"
)

// Scheme is one of Fig. 4's resource-management schemes.
type Scheme int

// Schemes.
const (
	BlNone    Scheme = iota // no partitioning, stock scheduler
	BlEq                    // equal core split between servers
	BlOpt                   // scalability-proportional split (64/21/14%)
	BlNoneSeq               // no partitioning, sequential inference
	Coop                    // SCHED_COOP
)

func (s Scheme) String() string {
	switch s {
	case BlNone:
		return "bl-none"
	case BlEq:
		return "bl-eq"
	case BlOpt:
		return "bl-opt"
	case BlNoneSeq:
		return "bl-none-seq"
	}
	return "sched_coop"
}

// Model is one inference server's profile.
type Model struct {
	Name string
	// Work is the total single-core compute per request.
	Work sim.Duration
	// SerialFrac is the GIL-held Python fraction of Work.
	SerialFrac float64
	// Threads is the tuned inner BLAS width (isolated scalability).
	Threads int
	// OptShare is the bl-opt partition share.
	OptShare float64
}

// PaperModels returns the three servers calibrated to §5.5.
func PaperModels() []Model {
	return []Model{
		{Name: "llama", Work: 57700 * sim.Millisecond, SerialFrac: 0.06, Threads: 28, OptShare: 0.64},
		{Name: "gpt2", Work: 10100 * sim.Millisecond, SerialFrac: 0.06, Threads: 8, OptShare: 0.21},
		{Name: "roberta", Work: 6760 * sim.Millisecond, SerialFrac: 0.06, Threads: 8, OptShare: 0.14},
	}
}

// Config parameterises one benchmark execution.
type Config struct {
	Machine hw.Config
	Scheme  Scheme
	// Rate is the client request rate in requests per second.
	Rate float64
	// Requests is the total client request count (paper: 28).
	Requests int
	// Batches per request (paper: 8).
	Batches int
	// Scale shrinks model works (and proportionally the run) for fast
	// tests/benches; 1.0 reproduces the paper sizing.
	Scale   float64
	Models  []Model
	Horizon sim.Duration
	Seed    uint64
	// GatewayPlanning is the per-request gateway compute.
	GatewayPlanning sim.Duration
	// KernelClass selects the kernel scheduling class every thread runs
	// under ("fair", "rr", "fifo", "batch"); empty keeps the default
	// fair class. Drives the schedcmp kernel-scheduler ablation.
	KernelClass string
	// Arrivals is the client arrival process. Nil keeps the paper's
	// open-loop Poisson client at Rate (scaled by 1/Scale like the model
	// works, so the load factor is preserved); custom sources are used
	// as-is and must account for Scale themselves. Sources are
	// single-use: supply a fresh one per Run.
	Arrivals load.Source
	// SLO is the per-request latency objective the tail meter judges
	// completions against (0 disables SLO accounting).
	SLO sim.Duration
	// MaxInFlight caps concurrently admitted requests at the gateway:
	// excess arrivals queue FIFO in the admission stage and are only
	// handed to the gateway as completions free slots. 0 means no
	// admission control (the paper's setup).
	MaxInFlight int
	// Tracer, when non-nil, records the kernel's scheduling events for
	// Chrome trace-event export (cmd/uschedsim -trace).
	Tracer *trace.Buffer
	// MetricsInterval, when positive, scrapes the run's meter, admission
	// limiter, and kernel scheduler every interval of simulated time into
	// Result.Samples. Zero (the default) disables scraping; the
	// instrumented paths then cost nothing.
	MetricsInterval sim.Duration
}

// RequestTrace records one request's lifecycle (Fig. 4 bottom).
type RequestTrace struct {
	ID        int
	Submitted sim.Time
	Completed sim.Time
}

// Result reports one execution.
type Result struct {
	Latencies []sim.Duration
	Timeline  []RequestTrace
	Stats     metrics.LatencyStats
	// Tail is the streaming meter's view of the run: high percentiles
	// (p95/p99/p99.9), goodput, and SLO-violation accounting.
	Tail load.MeterStats
	// Throughput is completed requests per second of total runtime.
	Throughput float64
	Elapsed    sim.Duration
	TimedOut   bool
	// Kernel counters for interference analysis (schedcmp).
	Preemptions     int64
	ContextSwitches int64
	Migrations      int64
	// Samples holds the simulated-time telemetry rows when
	// Config.MetricsInterval was set (node label "local").
	Samples []obs.Sample
	// Events counts engine events fired over the run — host-side
	// profiling data (events per wall second), not simulation output.
	Events int64
}

type request struct {
	id     int
	sentAt sim.Time
	resp   *glibc.Chan
}

// serveBatches runs one request's inference on a server: Batches
// alternations of a GIL-serialised "Python" segment and a parallel BLAS
// kernel. Shared by the standalone benchmark (Run) and the cluster
// backend (Service).
func serveBatches(l *glibc.Lib, gil *glibc.Mutex, b *blas.Lib, serial, parallel sim.Duration, batches int) {
	for batch := 0; batch < batches; batch++ {
		gil.Lock()
		l.Compute(serial)
		gil.Unlock()
		b.KernelWork(parallel)
	}
}

// gatewayHandle runs one request through the gateway: planning compute,
// fan-out to every server, then reply collection (poll + recv per
// server). Shared by the standalone benchmark (Run) and the cluster
// backend (Service) so the two can never diverge on the reply protocol.
func gatewayHandle(l *glibc.Lib, req *request, serverIn []*glibc.Chan, planning sim.Duration) {
	l.Compute(planning)
	for i := range serverIn {
		serverIn[i].Send(req)
	}
	for replies := 0; replies < len(serverIn); replies++ {
		glibc.Poll(l.K, []*glibc.Chan{req.resp}, -1)
		req.resp.Recv()
	}
}

// serverThreads returns server m's inner BLAS width under the scheme.
func serverThreads(scheme Scheme, m Model, cores int) int {
	threads := m.Threads
	if scheme == BlNoneSeq {
		threads = 1
	}
	if threads > cores {
		threads = cores
	}
	return threads
}

// startServer launches one inference-server process on sys: it builds
// the GIL + OpenMP + BLAS stack, receives requests from recv (which
// returns nil to drain), spawns one handler per request that runs the
// batched inference loop and replies on the request's channel, then
// joins every handler and shuts the OMP runtime down. Shared by the
// standalone benchmark (Run, counted recv) and the cluster backend
// (Service, sentinel recv).
func startServer(sys *stack.System, mode stack.Mode, m Model, opts glibc.Options,
	threads, batches int, scale float64, tracer *trace.Buffer, recv func() *request) error {
	_, err := sys.Start("server-"+m.Name, mode, opts, func(l *glibc.Lib) {
		gil := l.NewMutex()
		var rt *omp.Runtime
		if threads > 1 {
			rt = omp.New(l, omp.Config{Flavor: omp.Gomp, NumThreads: threads, WaitPolicy: omp.WaitPassive})
		}
		b := blas.New(l, blas.Config{
			Impl:           blas.OpenBLAS,
			Backend:        blas.BackendOpenMP,
			Threads:        threads,
			OMP:            rt,
			YieldInBarrier: true,
		})
		serialPerBatch := sim.Duration(m.SerialFrac * float64(m.Work) * scale / float64(batches))
		parallelPerBatch := sim.Duration((1 - m.SerialFrac) * float64(m.Work) * scale / float64(batches))
		var handlers []*glibc.Pthread
		// Per-request handler names are formatted only when the run is
		// traced: thread names surface in trace output and panic
		// messages, and the Sprintf is otherwise pure overhead on the
		// per-request hot path.
		reqName := m.Name + "-req"
		for {
			req := recv()
			if req == nil {
				break
			}
			name := reqName
			if tracer != nil {
				name = fmt.Sprintf("%s-req%d", m.Name, req.id)
			}
			handlers = append(handlers, l.PthreadCreate(
				name, func() {
					serveBatches(l, gil, b, serialPerBatch, parallelPerBatch, batches)
					req.resp.Send(m.Name)
				}))
		}
		for _, h := range handlers {
			l.PthreadJoin(h)
		}
		if rt != nil {
			rt.Shutdown()
		}
	})
	return err
}

// Run executes the microservices benchmark.
func Run(cfg Config) Result {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 28
	}
	if cfg.Batches <= 0 {
		cfg.Batches = 8
	}
	if cfg.Models == nil {
		cfg.Models = PaperModels()
	}
	if cfg.GatewayPlanning == 0 {
		cfg.GatewayPlanning = 50 * sim.Millisecond
	}
	mode := stack.ModeBaseline
	if cfg.Scheme == Coop {
		mode = stack.ModeCoop
	}
	sys := stack.NewWithClass(cfg.Machine, cfg.Seed, cfg.KernelClass)
	k := sys.K
	k.Tracer = cfg.Tracer
	cores := k.NumCores()

	// Channels.
	gwIn := glibc.NewChan(k)
	serverIn := make([]*glibc.Chan, len(cfg.Models))
	for i := range serverIn {
		serverIn[i] = glibc.NewChan(k)
	}

	// Partitioning masks.
	masks := partition(cfg.Scheme, cfg.Models, cores)

	// Arrival process (resolved before the gateway closure captures it).
	src := cfg.Arrivals
	if src == nil {
		src = &load.Poisson{Rate: cfg.Rate / cfg.Scale}
	}

	var traces []RequestTrace
	completed := 0

	// Inference servers: each receives exactly cfg.Requests requests.
	for i, m := range cfg.Models {
		in := serverIn[i]
		opts := glibc.Options{Nice: 20, Affinity: masks[i+1]}
		served := 0
		recv := func() *request {
			if served == cfg.Requests {
				return nil
			}
			served++
			return in.Recv().(*request)
		}
		if err := startServer(sys, mode, m, opts, serverThreads(cfg.Scheme, m, cores),
			cfg.Batches, cfg.Scale, cfg.Tracer, recv); err != nil {
			panic(err)
		}
	}

	// Tail accounting and the optional admission stage in front of the
	// gateway. Both are passive with respect to the engine (no events,
	// no RNG), so enabling neither keeps runs byte-identical.
	meter := load.NewMeter(cfg.SLO)
	admit := load.NewLimiter(cfg.MaxInFlight)

	// Optional simulated-time telemetry. The registry is stopped at the
	// final completion instant; a timed-out run leaves it to the round
	// cap, which cuts at the same virtual instant regardless of host
	// parallelism.
	var reg *obs.Registry
	if cfg.MetricsInterval > 0 {
		reg = obs.New(sys.Eng, "local", cfg.MetricsInterval)
		obs.ObserveMeter(reg, "local", "meter", meter)
		obs.ObserveLimiter(reg, "local", "admit", admit)
		obs.ObserveKernel(reg, "local", k)
		reg.Start()
	}

	// Gateway.
	_, err := sys.Start("gateway", mode, glibc.Options{Nice: 0, Affinity: masks[0]}, func(l *glibc.Lib) {
		var handlers []*glibc.Pthread
		for n := 0; n < cfg.Requests; n++ {
			req := gwIn.Recv().(*request)
			name := "gw-req"
			if cfg.Tracer != nil {
				name = fmt.Sprintf("gw-req%d", req.id)
			}
			handlers = append(handlers, l.PthreadCreate(
				name, func() {
					gatewayHandle(l, req, serverIn, sim.Duration(float64(cfg.GatewayPlanning)*cfg.Scale))
					now := l.K.Eng.Now()
					traces = append(traces, RequestTrace{
						ID: req.id, Submitted: req.sentAt, Completed: now,
					})
					completed++
					meter.Completed(req.id, now)
					admit.Done()
					src.Completed(req.id)
					if reg != nil && completed == cfg.Requests {
						reg.Stop(now)
					}
				}))
		}
		for _, h := range handlers {
			l.PthreadJoin(h)
		}
	})
	if err != nil {
		panic(err)
	}

	// Client: an external, event-driven arrival process on the engine's
	// "client" RNG stream. The default reproduces the paper's open-loop
	// Poisson generator; latency covers admission queueing, so sentAt is
	// the arrival instant, not the dispatch instant.
	src.Start(sys.Eng, sys.Rand("client"), cfg.Requests, func(id int) {
		req := &request{id: id, sentAt: sys.Eng.Now(), resp: glibc.NewChan(k)}
		meter.Submitted(id, req.sentAt)
		admit.Admit(func() { gwIn.Send(req) })
	})

	timedOut, err := sys.Run(cfg.Horizon)
	if err != nil {
		panic(err)
	}
	res := Result{
		Timeline:        traces,
		Tail:            meter.Stats(),
		TimedOut:        timedOut || completed < cfg.Requests,
		Preemptions:     k.Stats.Preemptions,
		ContextSwitches: k.Stats.ContextSwitches,
		Migrations:      k.Stats.Migrations,
		Events:          int64(sys.Eng.Processed()),
	}
	if reg != nil {
		res.Samples = reg.Samples()
	}
	if len(traces) > 0 {
		last := sim.Time(0)
		for _, tr := range traces {
			res.Latencies = append(res.Latencies, tr.Completed.Sub(tr.Submitted))
			if tr.Completed > last {
				last = tr.Completed
			}
		}
		res.Stats = metrics.Summarize(res.Latencies)
		res.Elapsed = sim.Duration(last)
		res.Throughput = float64(len(traces)) / last.Seconds()
	}
	return res
}

// partition returns affinity masks [gateway, server0, server1, server2]
// per the scheme.
func partition(scheme Scheme, models []Model, cores int) []kernel.Mask {
	n := len(models)
	masks := make([]kernel.Mask, n+1)
	switch scheme {
	case BlEq:
		gw := 2
		masks[0] = kernel.RangeMask(0, gw)
		per := (cores - gw) / n
		at := gw
		for i := 0; i < n; i++ {
			hi := at + per
			if i == n-1 {
				hi = cores
			}
			masks[i+1] = kernel.RangeMask(at, hi)
			at = hi
		}
	case BlOpt:
		gw := 2
		masks[0] = kernel.RangeMask(0, gw)
		at := gw
		for i, m := range models {
			share := int(m.OptShare * float64(cores-gw))
			hi := at + share
			if i == n-1 {
				hi = cores
			}
			masks[i+1] = kernel.RangeMask(at, hi)
			at = hi
		}
	}
	return masks
}
