package inference

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/load"
	"repro/internal/sim"
)

// fastCfg returns a heavily scaled-down configuration (1% of paper sizing)
// on the 16-core machine.
func fastCfg(scheme Scheme, rate float64) Config {
	models := []Model{
		{Name: "llama", Work: 5770 * sim.Millisecond, SerialFrac: 0.06, Threads: 8, OptShare: 0.64},
		{Name: "gpt2", Work: 1010 * sim.Millisecond, SerialFrac: 0.06, Threads: 4, OptShare: 0.21},
		{Name: "roberta", Work: 676 * sim.Millisecond, SerialFrac: 0.06, Threads: 4, OptShare: 0.14},
	}
	return Config{
		Machine:  hw.DualSocket16(),
		Scheme:   scheme,
		Rate:     rate,
		Requests: 6,
		Batches:  4,
		Scale:    0.2,
		Models:   models,
		Horizon:  10 * sim.Second * 60,
		Seed:     7,
	}
}

func TestAllSchemesComplete(t *testing.T) {
	for _, s := range []Scheme{BlNone, BlEq, BlOpt, BlNoneSeq, Coop} {
		res := Run(fastCfg(s, 1.0))
		if res.TimedOut {
			t.Fatalf("%v timed out", s)
		}
		if len(res.Latencies) != 6 {
			t.Fatalf("%v: %d requests completed", s, len(res.Latencies))
		}
		if res.Throughput <= 0 || res.Stats.Mean <= 0 {
			t.Fatalf("%v: empty stats %+v", s, res.Stats)
		}
	}
}

func TestTimelineOrdering(t *testing.T) {
	res := Run(fastCfg(Coop, 1.0))
	for _, tr := range res.Timeline {
		if tr.Completed <= tr.Submitted {
			t.Fatalf("request %d completed %v before submission %v", tr.ID, tr.Completed, tr.Submitted)
		}
	}
}

func TestEqualPartitionWorstAtLoad(t *testing.T) {
	// bl-eq starves LLaMA (paper: worst latency of all schemes).
	eq := Run(fastCfg(BlEq, 1.5))
	none := Run(fastCfg(BlNone, 1.5))
	if eq.TimedOut || none.TimedOut {
		t.Fatal("timeout")
	}
	if eq.Stats.Mean < none.Stats.Mean {
		t.Fatalf("bl-eq mean %v < bl-none %v; partition imbalance not visible", eq.Stats.Mean, none.Stats.Mean)
	}
}

func TestCoopAtLeastMatchesBlNoneUnderLoad(t *testing.T) {
	none := Run(fastCfg(BlNone, 2.0))
	coop := Run(fastCfg(Coop, 2.0))
	if none.TimedOut || coop.TimedOut {
		t.Fatal("timeout")
	}
	if float64(coop.Stats.Mean) > float64(none.Stats.Mean)*1.15 {
		t.Fatalf("coop mean %v much worse than bl-none %v", coop.Stats.Mean, none.Stats.Mean)
	}
}

func TestSeqStableButSlowAtLowRate(t *testing.T) {
	// At low request rates bl-none-seq leaves cores idle: its latency
	// must exceed the parallel bl-none.
	seq := Run(fastCfg(BlNoneSeq, 0.2))
	none := Run(fastCfg(BlNone, 0.2))
	if seq.TimedOut || none.TimedOut {
		t.Fatal("timeout")
	}
	if seq.Stats.Mean <= none.Stats.Mean {
		t.Fatalf("seq mean %v <= parallel %v at low rate", seq.Stats.Mean, none.Stats.Mean)
	}
}

func TestTailMeterTracksExactStats(t *testing.T) {
	// The streaming tail meter must agree with the exact post-hoc
	// summary on what it can measure exactly.
	res := Run(fastCfg(Coop, 1.0))
	if res.Tail.Completed != len(res.Latencies) || res.Tail.Offered != len(res.Latencies) {
		t.Fatalf("tail counts %+v vs %d latencies", res.Tail, len(res.Latencies))
	}
	if res.Tail.Max != res.Stats.Max || res.Tail.Min != res.Stats.Min {
		t.Fatalf("tail extrema %v/%v vs exact %v/%v",
			res.Tail.Min, res.Tail.Max, res.Stats.Min, res.Stats.Max)
	}
	// No SLO configured: no violations, goodput == throughput.
	if res.Tail.Violations != 0 || res.Tail.Goodput != res.Tail.Throughput {
		t.Fatalf("SLO accounting active without an SLO: %+v", res.Tail)
	}
}

func TestSLOViolationAccounting(t *testing.T) {
	// A 1ns SLO is violated by every request; a huge SLO by none.
	cfg := fastCfg(Coop, 1.0)
	cfg.SLO = sim.Nanosecond
	res := Run(cfg)
	if res.Tail.ViolationFrac != 1 || res.Tail.Goodput != 0 {
		t.Fatalf("tight SLO: %+v", res.Tail)
	}
	cfg = fastCfg(Coop, 1.0)
	cfg.SLO = 1000 * 3600 * sim.Second
	res = Run(cfg)
	if res.Tail.ViolationFrac != 0 {
		t.Fatalf("loose SLO: %+v", res.Tail)
	}
}

func TestCustomArrivalSourceAndAdmission(t *testing.T) {
	// A replay trace delivering all requests at t=0 through a 1-wide
	// admission stage must serialise the requests: every request still
	// completes, and latencies grow monotonically with arrival order.
	cfg := fastCfg(BlNone, 1.0)
	cfg.Arrivals = &load.Replay{At: make([]sim.Duration, cfg.Requests)}
	cfg.MaxInFlight = 1
	res := Run(cfg)
	if res.TimedOut || len(res.Latencies) != cfg.Requests {
		t.Fatalf("admission-limited run incomplete: %d/%d (timed out %v)",
			len(res.Latencies), cfg.Requests, res.TimedOut)
	}
	for i := 1; i < len(res.Timeline); i++ {
		if res.Timeline[i].Submitted != res.Timeline[0].Submitted {
			t.Fatalf("replay arrivals not simultaneous: %+v", res.Timeline[i])
		}
	}
	// With a 1-wide gate, completions are strictly serialised.
	for i := 1; i < len(res.Timeline); i++ {
		if res.Timeline[i].Completed <= res.Timeline[i-1].Completed {
			t.Fatalf("1-wide admission did not serialise completions: %+v", res.Timeline)
		}
	}
}

func TestRepeatedRunsIdenticalInProcess(t *testing.T) {
	// Regression: repeated in-process runs of the same cell must agree
	// exactly. This trajectory (bl-none, rate 1.0, seed 12345) used to
	// diverge because omp.Runtime.Shutdown tore teams down in Go map
	// iteration order, letting the host runtime perturb the simulated
	// schedule.
	cfg := fastCfg(BlNone, 1.0)
	cfg.Requests = 8
	cfg.Seed = 12345
	cfg.Horizon = 4000 * sim.Second
	first := Run(cfg)
	for i := 0; i < 3; i++ {
		res := Run(cfg)
		if res.Elapsed != first.Elapsed || res.Throughput != first.Throughput {
			t.Fatalf("run %d diverged: elapsed %v vs %v", i+1, res.Elapsed, first.Elapsed)
		}
		if len(res.Latencies) != len(first.Latencies) {
			t.Fatalf("run %d: %d latencies vs %d", i+1, len(res.Latencies), len(first.Latencies))
		}
		for j := range res.Latencies {
			if res.Latencies[j] != first.Latencies[j] {
				t.Fatalf("run %d: latency[%d] %v vs %v", i+1, j, res.Latencies[j], first.Latencies[j])
			}
		}
	}
}

func TestPartitionMasks(t *testing.T) {
	cfg := fastCfg(BlOpt, 1)
	masks := partition(cfg.Scheme, cfg.Models, 16)
	if masks[0].Count() != 2 {
		t.Fatalf("gateway cores = %d, want 2", masks[0].Count())
	}
	total := 0
	for _, m := range masks[1:] {
		total += m.Count()
	}
	if total != 14 {
		t.Fatalf("server cores = %d, want 14", total)
	}
	// bl-none has empty (unrestricted) masks.
	none := fastCfg(BlNone, 1)
	masks = partition(none.Scheme, none.Models, 16)
	for i, m := range masks {
		if !m.IsEmpty() {
			t.Fatalf("bl-none mask %d = %v, want unrestricted", i, m)
		}
	}
}
