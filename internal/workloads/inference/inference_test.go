package inference

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

// fastCfg returns a heavily scaled-down configuration (1% of paper sizing)
// on the 16-core machine.
func fastCfg(scheme Scheme, rate float64) Config {
	models := []Model{
		{Name: "llama", Work: 5770 * sim.Millisecond, SerialFrac: 0.06, Threads: 8, OptShare: 0.64},
		{Name: "gpt2", Work: 1010 * sim.Millisecond, SerialFrac: 0.06, Threads: 4, OptShare: 0.21},
		{Name: "roberta", Work: 676 * sim.Millisecond, SerialFrac: 0.06, Threads: 4, OptShare: 0.14},
	}
	return Config{
		Machine:  hw.DualSocket16(),
		Scheme:   scheme,
		Rate:     rate,
		Requests: 6,
		Batches:  4,
		Scale:    0.2,
		Models:   models,
		Horizon:  10 * sim.Second * 60,
		Seed:     7,
	}
}

func TestAllSchemesComplete(t *testing.T) {
	for _, s := range []Scheme{BlNone, BlEq, BlOpt, BlNoneSeq, Coop} {
		res := Run(fastCfg(s, 1.0))
		if res.TimedOut {
			t.Fatalf("%v timed out", s)
		}
		if len(res.Latencies) != 6 {
			t.Fatalf("%v: %d requests completed", s, len(res.Latencies))
		}
		if res.Throughput <= 0 || res.Stats.Mean <= 0 {
			t.Fatalf("%v: empty stats %+v", s, res.Stats)
		}
	}
}

func TestTimelineOrdering(t *testing.T) {
	res := Run(fastCfg(Coop, 1.0))
	for _, tr := range res.Timeline {
		if tr.Completed <= tr.Submitted {
			t.Fatalf("request %d completed %v before submission %v", tr.ID, tr.Completed, tr.Submitted)
		}
	}
}

func TestEqualPartitionWorstAtLoad(t *testing.T) {
	// bl-eq starves LLaMA (paper: worst latency of all schemes).
	eq := Run(fastCfg(BlEq, 1.5))
	none := Run(fastCfg(BlNone, 1.5))
	if eq.TimedOut || none.TimedOut {
		t.Fatal("timeout")
	}
	if eq.Stats.Mean < none.Stats.Mean {
		t.Fatalf("bl-eq mean %v < bl-none %v; partition imbalance not visible", eq.Stats.Mean, none.Stats.Mean)
	}
}

func TestCoopAtLeastMatchesBlNoneUnderLoad(t *testing.T) {
	none := Run(fastCfg(BlNone, 2.0))
	coop := Run(fastCfg(Coop, 2.0))
	if none.TimedOut || coop.TimedOut {
		t.Fatal("timeout")
	}
	if float64(coop.Stats.Mean) > float64(none.Stats.Mean)*1.15 {
		t.Fatalf("coop mean %v much worse than bl-none %v", coop.Stats.Mean, none.Stats.Mean)
	}
}

func TestSeqStableButSlowAtLowRate(t *testing.T) {
	// At low request rates bl-none-seq leaves cores idle: its latency
	// must exceed the parallel bl-none.
	seq := Run(fastCfg(BlNoneSeq, 0.2))
	none := Run(fastCfg(BlNone, 0.2))
	if seq.TimedOut || none.TimedOut {
		t.Fatal("timeout")
	}
	if seq.Stats.Mean <= none.Stats.Mean {
		t.Fatalf("seq mean %v <= parallel %v at low rate", seq.Stats.Mean, none.Stats.Mean)
	}
}

func TestPartitionMasks(t *testing.T) {
	cfg := fastCfg(BlOpt, 1)
	masks := partition(cfg, 16)
	if masks[0].Count() != 2 {
		t.Fatalf("gateway cores = %d, want 2", masks[0].Count())
	}
	total := 0
	for _, m := range masks[1:] {
		total += m.Count()
	}
	if total != 14 {
		t.Fatalf("server cores = %d, want 14", total)
	}
	// bl-none has empty (unrestricted) masks.
	masks = partition(fastCfg(BlNone, 1), 16)
	for i, m := range masks {
		if !m.IsEmpty() {
			t.Fatalf("bl-none mask %d = %v, want unrestricted", i, m)
		}
	}
}
