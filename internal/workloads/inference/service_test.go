package inference

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/stack"
)

// TestServiceServesAndDrains pushes requests into a resident service
// and checks every one completes, in submission order of completion
// accounting, and that Stop drains all processes off the engine.
func TestServiceServesAndDrains(t *testing.T) {
	sys := stack.New(hw.SmallNode(), 5)
	var completed []int
	svc, err := NewService(sys, ServiceConfig{
		Scheme:  BlNone,
		Batches: 2,
		Scale:   0.02,
		Models:  testModels(),
	}, func(id int) { completed = append(completed, id) })
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	for i := 0; i < n; i++ {
		i := i
		sys.Eng.After(sim.Duration(i)*100*sim.Millisecond, func() { svc.Submit(i) })
	}
	// Stop as soon as the last request completed.
	prev := svc.done
	svc.done = func(id int) {
		prev(id)
		if len(completed) == n {
			svc.Stop()
		}
	}
	if _, err := sys.Eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(completed) != n {
		t.Fatalf("completed %d of %d requests: %v", len(completed), n, completed)
	}
	if sys.Eng.Live() != 0 {
		t.Fatalf("%d procs still live after drain", sys.Eng.Live())
	}
}

// testModels returns tiny model profiles for service tests.
func testModels() []Model {
	return []Model{
		{Name: "llama", Work: 600 * sim.Millisecond, SerialFrac: 0.06, Threads: 4, OptShare: 0.64},
		{Name: "gpt2", Work: 150 * sim.Millisecond, SerialFrac: 0.06, Threads: 2, OptShare: 0.21},
		{Name: "roberta", Work: 100 * sim.Millisecond, SerialFrac: 0.06, Threads: 2, OptShare: 0.14},
	}
}
