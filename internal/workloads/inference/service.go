package inference

import (
	"fmt"

	"repro/internal/glibc"
	"repro/internal/sim"
	"repro/internal/stack"
)

// ServiceConfig parameterises one node's persistent microservice stack
// (the cluster-serving counterpart of Config: no arrival process, no
// request budget — requests are pushed in by Submit until Stop).
type ServiceConfig struct {
	// Scheme selects the resource-management scheme (partitioning masks
	// and the stack mode, exactly like the standalone benchmark).
	Scheme Scheme
	// Batches per request (default 8, as in the paper).
	Batches int
	// Scale shrinks model works, preserving the load factor (default 1).
	Scale float64
	// Models are the inference servers (default PaperModels).
	Models []Model
	// GatewayPlanning is the per-request gateway compute (default 50 ms).
	GatewayPlanning sim.Duration
	// Started, when non-nil, is invoked with the request id at the
	// simulated instant the gateway handler begins serving it — before
	// any planning or fan-out — so span records can separate node-side
	// queueing from service time. Nil (the default) costs nothing.
	Started func(id int)
}

// Service is a running microservice stack on one simulated machine: the
// gateway and the inference servers stay resident, serve every request
// handed in by Submit, and drain cleanly on Stop. It is the node-side
// backend the cluster layer routes into.
//
// Handler pthread handles are retained until the drain (joined at
// Stop), exactly like the counted standalone benchmark, so host memory
// grows O(requests) over a service's lifetime — fine for the bounded
// request trains the scenarios serve; an open-ended service would want
// incremental reaping.
type Service struct {
	sys  *stack.System
	gwIn *glibc.Chan
	done func(id int)
}

// NewService wires a persistent gateway + servers on sys. done(id) is
// invoked — in the gateway handler's thread context, at the simulated
// completion instant — exactly once per submitted request.
func NewService(sys *stack.System, cfg ServiceConfig, done func(id int)) (*Service, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.Batches <= 0 {
		cfg.Batches = 8
	}
	if cfg.Models == nil {
		cfg.Models = PaperModels()
	}
	if cfg.GatewayPlanning == 0 {
		cfg.GatewayPlanning = 50 * sim.Millisecond
	}
	mode := stack.ModeBaseline
	if cfg.Scheme == Coop {
		mode = stack.ModeCoop
	}
	k := sys.K
	cores := k.NumCores()

	s := &Service{sys: sys, gwIn: glibc.NewChan(k), done: done}
	serverIn := make([]*glibc.Chan, len(cfg.Models))
	for i := range serverIn {
		serverIn[i] = glibc.NewChan(k)
	}
	masks := partition(cfg.Scheme, cfg.Models, cores)

	// Inference servers: like the standalone benchmark, but the serve
	// loop is sentinel-terminated instead of counted — a nil message
	// means "drain and exit".
	for i, m := range cfg.Models {
		in := serverIn[i]
		opts := glibc.Options{Nice: 20, Affinity: masks[i+1]}
		recv := func() *request {
			req, _ := in.Recv().(*request)
			return req
		}
		if err := startServer(sys, mode, m, opts, serverThreads(cfg.Scheme, m, cores),
			cfg.Batches, cfg.Scale, k.Tracer, recv); err != nil {
			return nil, err
		}
	}

	// Gateway: receives routed requests, plans, fans out to every
	// server, and reports completion through done. On the stop sentinel
	// it joins its handlers, then forwards the sentinel to the servers.
	_, err := sys.Start("gateway", mode, glibc.Options{Nice: 0, Affinity: masks[0]}, func(l *glibc.Lib) {
		var handlers []*glibc.Pthread
		for {
			req, _ := s.gwIn.Recv().(*request)
			if req == nil {
				break
			}
			name := "gw-req"
			if k.Tracer != nil {
				name = fmt.Sprintf("gw-req%d", req.id)
			}
			handlers = append(handlers, l.PthreadCreate(
				name, func() {
					if cfg.Started != nil {
						cfg.Started(req.id)
					}
					gatewayHandle(l, req, serverIn, sim.Duration(float64(cfg.GatewayPlanning)*cfg.Scale))
					s.done(req.id)
				}))
		}
		for _, h := range handlers {
			l.PthreadJoin(h)
		}
		for i := range serverIn {
			serverIn[i].Send((*request)(nil))
		}
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Submit hands request id to the gateway. It may be called from event
// context (the cluster's network-delivery events) or from a simulated
// thread.
func (s *Service) Submit(id int) {
	s.gwIn.Send(&request{id: id, resp: glibc.NewChan(s.sys.K)})
}

// Stop drains the service: the gateway finishes every in-flight
// request, shuts the servers down, and all service processes exit. Call
// it once, after the last submitted request completed.
func (s *Service) Stop() {
	s.gwIn.Send((*request)(nil))
}
