// Package matmul reproduces the paper's §5.3 nested-runtime matrix
// multiplication (Listing 2): an OmpSs-2 outer runtime creates one task
// per block triple, each task calling a BLIS dgemm parallelised with
// LLVM's OpenMP — the composition whose oversubscription behaviour Fig. 3
// maps out.
package matmul

import (
	"repro/internal/blas"
	"repro/internal/glibc"
	"repro/internal/hw"
	"repro/internal/rt/omp"
	"repro/internal/rt/ompss"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/trace"
	"repro/internal/usf"
)

// Config parameterises one matmul run.
type Config struct {
	Machine hw.Config
	Mode    stack.Mode
	// N is the matrix dimension; TaskSize the block size (paper: N =
	// 32768; the scaled default is 8192).
	N, TaskSize int
	// OMPThreads is the inner (BLIS/OpenMP) team width.
	OMPThreads int
	// OuterWorkers is the Nanos6 pool width (default: all cores).
	OuterWorkers int
	// Reps repeats the whole multiplication (the paper loops >= 60 s).
	Reps int
	// Horizon aborts the run (the paper's 15-minute timeout; white
	// squares in Fig. 3).
	Horizon sim.Duration
	Seed    uint64
	// Coop overrides the SCHED_COOP policy configuration (ablations);
	// nil uses the paper defaults.
	Coop *usf.CoopConfig
	// KernelClass selects the kernel scheduling class every thread runs
	// under ("fair", "rr", "fifo", "batch"); empty keeps the default
	// fair class. Drives the schedcmp kernel-scheduler ablation.
	KernelClass string
	// Tracer, when non-nil, records the kernel's scheduling events for
	// Chrome trace-event export (cmd/uschedsim -trace).
	Tracer *trace.Buffer
}

// Result reports one run.
type Result struct {
	// GFLOPS is the achieved rate (the paper's MOPS/s metric up to a
	// constant; see the scaling note in README.md).
	GFLOPS   float64
	Elapsed  sim.Duration
	TimedOut bool
	// Kernel counters for interference analysis.
	Preemptions     int64
	ContextSwitches int64
	Migrations      int64
}

// regionKey names a matrix block for the dependency tracker.
type regionKey struct {
	m    byte
	i, j int
}

// MaxParallelTasks returns the paper's "max parallel tasks" label value
// for a configuration: (N/TS)².
func (c Config) MaxParallelTasks() int {
	nb := c.N / c.TaskSize
	return nb * nb
}

// Run executes one matmul configuration on a fresh simulated system.
func Run(cfg Config) Result {
	if cfg.Reps <= 0 {
		cfg.Reps = 1
	}
	sys := stack.NewWithClass(cfg.Machine, cfg.Seed, cfg.KernelClass)
	if cfg.Coop != nil {
		sys.CoopConfig = *cfg.Coop
	}
	sys.K.Tracer = cfg.Tracer
	var elapsed sim.Duration
	finished := false

	_, err := sys.Start("matmul", cfg.Mode, glibc.Options{}, func(l *glibc.Lib) {
		nb := cfg.N / cfg.TaskSize
		workers := cfg.OuterWorkers
		if workers <= 0 {
			workers = l.K.NumCores()
		}
		outer := ompss.New(l, ompss.Config{Workers: workers, WaitPolicy: ompss.WaitPassive})
		inner := omp.New(l, omp.Config{
			Flavor:     omp.Libomp,
			NumThreads: cfg.OMPThreads,
			WaitPolicy: omp.WaitPassive,
		})
		b := blas.New(l, blas.Config{
			Impl:            blas.BLIS,
			Backend:         blas.BackendOpenMP,
			OMP:             inner,
			Threads:         cfg.OMPThreads,
			YieldInBarrier:  cfg.Mode.YieldInBarrier(),
			BlockingBarrier: cfg.Mode.BlockingBarrier(),
		})
		start := l.K.Eng.Now()
		ts := cfg.TaskSize
		for rep := 0; rep < cfg.Reps; rep++ {
			for k := 0; k < nb; k++ {
				for i := 0; i < nb; i++ {
					for j := 0; j < nb; j++ {
						outer.Task(ompss.Deps{
							InOut: []any{regionKey{'C', i, j}},
							In:    []any{regionKey{'A', i, k}, regionKey{'B', k, j}},
						}, func() { b.Dgemm(ts, ts, ts) })
					}
				}
			}
			outer.Taskwait()
		}
		elapsed = l.K.Eng.Now().Sub(start)
		outer.Shutdown()
		inner.Shutdown()
		finished = true
	})
	if err != nil {
		panic(err)
	}
	timedOut, err := sys.Run(cfg.Horizon)
	if err != nil {
		panic(err)
	}
	res := Result{
		TimedOut:        timedOut || !finished,
		Elapsed:         elapsed,
		Preemptions:     sys.K.Stats.Preemptions,
		ContextSwitches: sys.K.Stats.ContextSwitches,
		Migrations:      sys.K.Stats.Migrations,
	}
	if finished && elapsed > 0 {
		flops := float64(cfg.Reps) * 2 * float64(cfg.N) * float64(cfg.N) * float64(cfg.N)
		res.GFLOPS = flops / float64(elapsed)
	}
	return res
}
