package matmul

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/stack"
)

// smallCfg returns a fast configuration on the 16-core machine.
func smallCfg(mode stack.Mode, ts, ompThreads int) Config {
	return Config{
		Machine:    hw.DualSocket16(),
		Mode:       mode,
		N:          2048,
		TaskSize:   ts,
		OMPThreads: ompThreads,
		Reps:       1,
		Horizon:    2 * sim.Second,
		Seed:       1,
	}
}

func TestBaselineCompletes(t *testing.T) {
	res := Run(smallCfg(stack.ModeBaseline, 512, 2))
	if res.TimedOut {
		t.Fatal("baseline run timed out")
	}
	if res.GFLOPS <= 0 {
		t.Fatal("no throughput recorded")
	}
}

func TestCoopCompletes(t *testing.T) {
	res := Run(smallCfg(stack.ModeCoop, 512, 2))
	if res.TimedOut {
		t.Fatal("coop run timed out")
	}
	if res.GFLOPS <= 0 {
		t.Fatal("no throughput recorded")
	}
}

func TestManualCompletes(t *testing.T) {
	res := Run(smallCfg(stack.ModeManual, 512, 2))
	if res.TimedOut || res.GFLOPS <= 0 {
		t.Fatalf("manual run failed: %+v", res)
	}
}

func TestCoopReducesPreemptionsUnderOversubscription(t *testing.T) {
	// 16 cores, 4x4 blocks * 8 OMP threads => up to 128 busy threads.
	base := Run(smallCfg(stack.ModeBaseline, 512, 8))
	coop := Run(smallCfg(stack.ModeCoop, 512, 8))
	if base.TimedOut || coop.TimedOut {
		t.Fatalf("timeouts: base=%v coop=%v", base.TimedOut, coop.TimedOut)
	}
	if coop.Preemptions*2 >= base.Preemptions+2 {
		t.Fatalf("preemptions coop=%d baseline=%d; SCHED_COOP must slash them",
			coop.Preemptions, base.Preemptions)
	}
}

func TestOriginalWorstUnderHeavyOversubscription(t *testing.T) {
	// The Original stack (no yield in busy-wait barriers) must be
	// clearly slower than Baseline when oversubscribed (Fig. 3d).
	orig := Run(smallCfg(stack.ModeOriginal, 256, 8))
	base := Run(smallCfg(stack.ModeBaseline, 256, 8))
	if base.TimedOut {
		t.Fatal("baseline timed out")
	}
	if !orig.TimedOut && orig.GFLOPS >= base.GFLOPS {
		t.Fatalf("original %.1f >= baseline %.1f GFLOPS; busy-wait collapse missing",
			orig.GFLOPS, base.GFLOPS)
	}
}

func TestUnderusedRegionInsensitive(t *testing.T) {
	// Lower-left of Fig. 3: fewer threads than cores => all modes are
	// roughly equal (speedup ~1.0).
	base := Run(smallCfg(stack.ModeBaseline, 1024, 2))
	coop := Run(smallCfg(stack.ModeCoop, 1024, 2))
	if base.TimedOut || coop.TimedOut {
		t.Fatal("timeout in underused config")
	}
	ratio := coop.GFLOPS / base.GFLOPS
	if ratio < 0.85 || ratio > 1.2 {
		t.Fatalf("underused speedup = %.2f, want ~1.0", ratio)
	}
}

func TestMaxParallelTasksLabel(t *testing.T) {
	c := Config{N: 32768, TaskSize: 16384}
	if c.MaxParallelTasks() != 4 {
		t.Fatalf("MaxParallelTasks = %d, want 4", c.MaxParallelTasks())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := Run(smallCfg(stack.ModeCoop, 512, 4))
	b := Run(smallCfg(stack.ModeCoop, 512, 4))
	if a.GFLOPS != b.GFLOPS || a.Elapsed != b.Elapsed {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}
