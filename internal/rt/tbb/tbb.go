// Package tbb models a oneTBB-style task arena: a worker pool executing
// submitted tasks newest-first (TBB's locality-driven LIFO order), with
// task groups for fork-join waits. It is one of the outer runtimes in the
// paper's Cholesky composition study (Table 2).
package tbb

import (
	"fmt"

	"repro/internal/glibc"
	"repro/internal/sim"
)

// Config tunes an arena.
type Config struct {
	// Workers is the arena width (default: all cores).
	Workers int
	// SpinBeforeBlock is the workers' active wait before sleeping
	// (TBB spins aggressively by default; the paper configures passive
	// waits — set 0 for fully passive).
	SpinBeforeBlock sim.Duration
}

// Arena is a oneTBB task arena.
type Arena struct {
	lib *glibc.Lib
	cfg Config

	stack   []*job // LIFO
	workers []*worker
	stopped bool

	TasksRun int64
}

type job struct {
	fn    func()
	group *Group
}

type worker struct {
	a       *Arena
	pt      *glibc.Pthread
	sem     *glibc.Sem
	blocked bool
}

// Group tracks a set of tasks for Wait (tbb::task_group).
type Group struct {
	a       *Arena
	pending int
	waiters []*glibc.Sem
}

// New creates an arena and starts its workers.
func New(lib *glibc.Lib, cfg Config) *Arena {
	if cfg.Workers <= 0 {
		cfg.Workers = lib.K.NumCores()
	}
	a := &Arena{lib: lib, cfg: cfg}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{a: a, sem: lib.NewSem(0)}
		w.pt = lib.PthreadCreate(fmt.Sprintf("tbb-w%d", i), w.loop)
		a.workers = append(a.workers, w)
	}
	return a
}

// Workers returns the arena width.
func (a *Arena) Workers() int { return a.cfg.Workers }

// NewGroup creates a task group.
func (a *Arena) NewGroup() *Group { return &Group{a: a} }

// Run submits fn to the group.
func (g *Group) Run(fn func()) {
	g.pending++
	g.a.submit(&job{fn: fn, group: g})
}

// Wait blocks until all of the group's tasks have completed.
func (g *Group) Wait() {
	if g.pending == 0 {
		return
	}
	sem := g.a.lib.NewSem(0)
	g.waiters = append(g.waiters, sem)
	for g.pending > 0 {
		sem.Wait()
	}
}

// ParallelFor partitions [0, n) into one task per worker and waits.
func (a *Arena) ParallelFor(n int, body func(lo, hi int)) {
	g := a.NewGroup()
	w := a.cfg.Workers
	if w > n {
		w = n
	}
	for i := 0; i < w; i++ {
		lo := i * n / w
		hi := (i + 1) * n / w
		if lo < hi {
			g.Run(func() { body(lo, hi) })
		}
	}
	g.Wait()
}

// Shutdown stops and joins the workers.
func (a *Arena) Shutdown() {
	a.stopped = true
	for _, w := range a.workers {
		if w.blocked {
			w.sem.Post()
		}
	}
	for _, w := range a.workers {
		a.lib.PthreadJoin(w.pt)
	}
	a.workers = nil
}

func (a *Arena) submit(j *job) {
	a.stack = append(a.stack, j)
	for _, w := range a.workers {
		if w.blocked {
			w.blocked = false // consumed; the next submit wakes another
			w.sem.Post()
			break
		}
	}
}

func (w *worker) loop() {
	a := w.a
	lib := a.lib
	for {
		if a.stopped {
			return
		}
		if n := len(a.stack); n > 0 {
			j := a.stack[n-1]
			a.stack = a.stack[:n-1]
			a.TasksRun++
			j.fn()
			g := j.group
			g.pending--
			if g.pending == 0 {
				ws := g.waiters
				g.waiters = nil
				for _, sem := range ws {
					sem.Post()
				}
			}
			continue
		}
		if spin := a.cfg.SpinBeforeBlock; spin > 0 {
			start := lib.K.Eng.Now()
			for len(a.stack) == 0 && !a.stopped &&
				lib.K.Eng.Now().Sub(start) < spin {
				lib.Compute(2 * sim.Microsecond)
			}
			if len(a.stack) > 0 || a.stopped {
				continue
			}
		}
		w.blocked = true
		w.sem.Wait()
		w.blocked = false
	}
}
