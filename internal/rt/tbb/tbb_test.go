package tbb

import (
	"testing"

	"repro/internal/glibc"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/sim"
)

func runApp(t *testing.T, cores int, app func(l *glibc.Lib)) {
	t.Helper()
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = cores
	cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
	eng := sim.NewEngine(1)
	k := kernel.New(eng, cfg, kernel.DefaultSchedParams())
	if _, err := glibc.StartProcess(k, "app", glibc.Options{}, app); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestGroupRunWait(t *testing.T) {
	done := 0
	runApp(t, 4, func(l *glibc.Lib) {
		a := New(l, Config{Workers: 4})
		g := a.NewGroup()
		for i := 0; i < 8; i++ {
			g.Run(func() {
				l.Compute(1 * sim.Millisecond)
				done++
			})
		}
		g.Wait()
		if done != 8 {
			t.Errorf("done = %d at Wait return", done)
		}
		a.Shutdown()
	})
}

func TestParallelForCoversAll(t *testing.T) {
	covered := make([]bool, 64)
	runApp(t, 4, func(l *glibc.Lib) {
		a := New(l, Config{Workers: 4})
		a.ParallelFor(64, func(lo, hi int) {
			l.Compute(sim.Duration(hi-lo) * 10 * sim.Microsecond)
			for i := lo; i < hi; i++ {
				covered[i] = true
			}
		})
		a.Shutdown()
	})
	for i, c := range covered {
		if !c {
			t.Fatalf("iteration %d missed", i)
		}
	}
}

func TestLIFOOrderWhenSaturated(t *testing.T) {
	// With 1 worker, queued tasks run newest-first once the queue
	// builds up.
	var order []int
	runApp(t, 2, func(l *glibc.Lib) {
		a := New(l, Config{Workers: 1})
		g := a.NewGroup()
		// Block the single worker with a long task, then queue 3 more.
		g.Run(func() { l.Compute(5 * sim.Millisecond) })
		l.Compute(1 * sim.Millisecond) // let the worker pick it up
		for i := 0; i < 3; i++ {
			i := i
			g.Run(func() { order = append(order, i) })
		}
		g.Wait()
		a.Shutdown()
	})
	if len(order) != 3 || order[0] != 2 || order[2] != 0 {
		t.Fatalf("order = %v, want [2 1 0] (LIFO)", order)
	}
}

func TestGroupsIndependent(t *testing.T) {
	runApp(t, 4, func(l *glibc.Lib) {
		a := New(l, Config{Workers: 4})
		g1, g2 := a.NewGroup(), a.NewGroup()
		slow := false
		g1.Run(func() { l.Compute(100 * sim.Microsecond) })
		g2.Run(func() { l.Compute(20 * sim.Millisecond); slow = true })
		g1.Wait()
		if slow {
			t.Error("g1.Wait also waited for g2's task")
		}
		g2.Wait()
		if !slow {
			t.Error("g2.Wait returned early")
		}
		a.Shutdown()
	})
}
