// Package omp models an OpenMP runtime (fork-join worker teams) with the
// two implementations the paper composes — GNU's gomp and LLVM's libomp —
// and the OMP_WAIT_POLICY spectrum (active / hybrid / passive) whose
// tuning §5.2 shows is decisive under oversubscription.
//
// Teams are cached per master thread, so repeated (possibly nested)
// parallel regions reuse their pthreads, matching the paper's observation
// that OpenMP runtimes "reuse pthreads efficiently" (§5.4).
package omp

import (
	"fmt"

	"repro/internal/glibc"
	"repro/internal/sim"
)

// Flavor selects an OpenMP implementation.
type Flavor int

// Supported flavors.
const (
	Gomp   Flavor = iota // GNU libgomp
	Libomp               // LLVM OpenMP
)

func (f Flavor) String() string {
	if f == Gomp {
		return "gomp"
	}
	return "libomp"
}

// WaitPolicy is OMP_WAIT_POLICY.
type WaitPolicy int

// Wait policies.
const (
	// WaitHybrid spins briefly, then blocks (both runtimes' default).
	WaitHybrid WaitPolicy = iota
	// WaitActive spins indefinitely.
	WaitActive
	// WaitPassive blocks immediately (recommended under
	// oversubscription, used by all the paper's experiments).
	WaitPassive
)

func (w WaitPolicy) String() string {
	switch w {
	case WaitActive:
		return "active"
	case WaitPassive:
		return "passive"
	}
	return "hybrid"
}

// Config tunes a runtime instance.
type Config struct {
	Flavor     Flavor
	NumThreads int // OMP_NUM_THREADS
	WaitPolicy WaitPolicy
	// SpinBeforeBlock is the hybrid policy's active phase. Zero picks
	// the flavor default (gomp ~100µs, libomp ~200µs).
	SpinBeforeBlock sim.Duration
}

// Runtime is one process's OpenMP runtime.
type Runtime struct {
	lib *glibc.Lib
	cfg Config

	teams map[*glibc.Pthread]*team
	// teamOrder holds teams in creation order: Shutdown must stop them
	// deterministically (map iteration order would let the Go runtime
	// perturb the simulated schedule).
	teamOrder []*team

	// Stats
	RegionsRun int64
}

// New creates a runtime over the process's C library.
func New(lib *glibc.Lib, cfg Config) *Runtime {
	if cfg.NumThreads <= 0 {
		cfg.NumThreads = lib.K.NumCores()
	}
	if cfg.SpinBeforeBlock == 0 {
		if cfg.Flavor == Gomp {
			cfg.SpinBeforeBlock = 100 * sim.Microsecond
		} else {
			cfg.SpinBeforeBlock = 200 * sim.Microsecond
		}
	}
	return &Runtime{lib: lib, cfg: cfg, teams: make(map[*glibc.Pthread]*team)}
}

// Config returns the runtime configuration.
func (r *Runtime) Config() Config { return r.cfg }

// NumThreads returns the configured team width.
func (r *Runtime) NumThreads() int { return r.cfg.NumThreads }

// Parallel runs body(tid) on n threads (the calling thread is tid 0) and
// returns when all have finished the region (implicit barrier).
func (r *Runtime) Parallel(n int, body func(tid, nthreads int)) {
	if n <= 0 {
		n = r.cfg.NumThreads
	}
	r.RegionsRun++
	if n == 1 {
		body(0, 1)
		return
	}
	tm := r.teamFor(r.lib.Self(), n)
	tm.run(n, body)
}

// ParallelFor statically partitions [0, total) over the team.
func (r *Runtime) ParallelFor(total int, body func(lo, hi int)) {
	n := r.cfg.NumThreads
	if n > total {
		n = total
	}
	if n <= 1 {
		body(0, total)
		return
	}
	r.Parallel(n, func(tid, nth int) {
		lo := tid * total / nth
		hi := (tid + 1) * total / nth
		if lo < hi {
			body(lo, hi)
		}
	})
}

// Shutdown joins every cached team's workers, in team creation order so
// teardown is deterministic. Call when the process is done with OpenMP.
func (r *Runtime) Shutdown() {
	for _, tm := range r.teamOrder {
		tm.stopWorkers()
	}
	r.teams = make(map[*glibc.Pthread]*team)
	r.teamOrder = nil
}

// teamFor returns (growing as needed) the calling master's cached team.
func (r *Runtime) teamFor(master *glibc.Pthread, n int) *team {
	tm := r.teams[master]
	if tm == nil {
		tm = &team{r: r, master: master}
		r.teams[master] = tm
		r.teamOrder = append(r.teamOrder, tm)
	}
	tm.grow(n)
	return tm
}

// team is a master thread's worker pool. Workers idle between regions
// according to the wait policy.
type team struct {
	r       *Runtime
	master  *glibc.Pthread
	workers []*teamWorker

	regionSeq int
	regionN   int
	body      func(tid, nth int)

	// join barrier state (sense-reversing, policy-aware)
	joinCount int
	joinGen   int
	joinSem   []*glibc.Sem // blocked joiners, one slot per participant
	joinBlk   []bool
}

type teamWorker struct {
	tm      *team
	tid     int
	pt      *glibc.Pthread
	sem     *glibc.Sem
	blocked bool
	lastSeq int
	stop    bool
}

func (tm *team) grow(n int) {
	lib := tm.r.lib
	for len(tm.workers) < n-1 {
		tid := len(tm.workers) + 1
		w := &teamWorker{tm: tm, tid: tid, sem: lib.NewSem(0)}
		w.pt = lib.PthreadCreate(fmt.Sprintf("omp-%s-w%d", tm.r.cfg.Flavor, tid), func() {
			w.loop()
		})
		tm.workers = append(tm.workers, w)
	}
	for len(tm.joinSem) < n {
		tm.joinSem = append(tm.joinSem, lib.NewSem(0))
		tm.joinBlk = append(tm.joinBlk, false)
	}
}

// run launches one parallel region on the calling (master) thread.
func (tm *team) run(n int, body func(tid, nth int)) {
	tm.body = body
	tm.regionN = n
	tm.regionSeq++
	for i := 0; i < n-1; i++ {
		w := tm.workers[i]
		if w.blocked {
			w.sem.Post()
		}
	}
	body(0, n)
	tm.joinBarrier(0, n)
}

// loop is the worker body: wait for a region, run the slice, join.
func (w *teamWorker) loop() {
	for {
		w.waitForRegion()
		if w.stop {
			return
		}
		tm := w.tm
		w.lastSeq = tm.regionSeq
		if w.tid < tm.regionN {
			tm.body(w.tid, tm.regionN)
			tm.joinBarrier(w.tid, tm.regionN)
		}
	}
}

// waitForRegion idles per OMP_WAIT_POLICY until a new region (or stop).
func (w *teamWorker) waitForRegion() {
	tm := w.tm
	lib := tm.r.lib
	cfg := tm.r.cfg
	start := lib.K.Eng.Now()
	for tm.regionSeq == w.lastSeq && !w.stop {
		switch cfg.WaitPolicy {
		case WaitActive:
			lib.Compute(2 * sim.Microsecond)
		case WaitPassive:
			w.blocked = true
			w.sem.Wait()
			w.blocked = false
		default: // hybrid
			if lib.K.Eng.Now().Sub(start) < cfg.SpinBeforeBlock {
				lib.Compute(2 * sim.Microsecond)
			} else {
				w.blocked = true
				w.sem.Wait()
				w.blocked = false
			}
		}
	}
}

// joinBarrier is the implicit end-of-region barrier, honouring the wait
// policy: passive participants block on semaphores; active ones spin.
func (tm *team) joinBarrier(tid, n int) {
	lib := tm.r.lib
	cfg := tm.r.cfg
	gen := tm.joinGen
	tm.joinCount++
	if tm.joinCount == n {
		tm.joinCount = 0
		tm.joinGen++
		for i := 0; i < n; i++ {
			if tm.joinBlk[i] {
				tm.joinBlk[i] = false
				tm.joinSem[i].Post()
			}
		}
		return
	}
	start := lib.K.Eng.Now()
	for tm.joinGen == gen {
		switch cfg.WaitPolicy {
		case WaitActive:
			lib.Compute(2 * sim.Microsecond)
		case WaitPassive:
			tm.joinBlk[tid] = true
			tm.joinSem[tid].Wait()
		default:
			if lib.K.Eng.Now().Sub(start) < cfg.SpinBeforeBlock {
				lib.Compute(2 * sim.Microsecond)
			} else {
				tm.joinBlk[tid] = true
				tm.joinSem[tid].Wait()
			}
		}
	}
}

// stopWorkers terminates and joins the team's threads.
func (tm *team) stopWorkers() {
	for _, w := range tm.workers {
		w.stop = true
		if w.blocked {
			w.sem.Post()
		}
	}
	for _, w := range tm.workers {
		tm.r.lib.PthreadJoin(w.pt)
	}
	tm.workers = nil
}
