package omp

import (
	"testing"

	"repro/internal/glibc"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/sim"
)

func stack(t *testing.T, cores int, usf bool) (*sim.Engine, *kernel.Kernel, glibc.Options) {
	t.Helper()
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = cores
	cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
	eng := sim.NewEngine(1)
	k := kernel.New(eng, cfg, kernel.DefaultSchedParams())
	return eng, k, glibc.Options{USF: usf}
}

func TestParallelRunsAllThreads(t *testing.T) {
	for _, usf := range []bool{false, true} {
		eng, k, opts := stack(t, 4, usf)
		seen := make(map[int]bool)
		_, err := glibc.StartProcess(k, "app", opts, func(l *glibc.Lib) {
			r := New(l, Config{NumThreads: 4, WaitPolicy: WaitPassive})
			r.Parallel(4, func(tid, nth int) {
				l.Compute(1 * sim.Millisecond)
				seen[tid] = true
			})
			r.Shutdown()
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.RunAll(); err != nil {
			t.Fatalf("usf=%v: %v", usf, err)
		}
		for tid := 0; tid < 4; tid++ {
			if !seen[tid] {
				t.Fatalf("usf=%v: tid %d never ran", usf, tid)
			}
		}
	}
}

func TestParallelForCoversRange(t *testing.T) {
	eng, k, opts := stack(t, 4, false)
	covered := make([]bool, 100)
	_, err := glibc.StartProcess(k, "app", opts, func(l *glibc.Lib) {
		r := New(l, Config{NumThreads: 4, WaitPolicy: WaitPassive})
		r.ParallelFor(100, func(lo, hi int) {
			l.Compute(sim.Duration(hi-lo) * sim.Microsecond)
			for i := lo; i < hi; i++ {
				if covered[i] {
					t.Errorf("iteration %d covered twice", i)
				}
				covered[i] = true
			}
		})
		r.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("iteration %d missed", i)
		}
	}
}

func TestTeamReuseAcrossRegions(t *testing.T) {
	eng, k, opts := stack(t, 4, false)
	_, err := glibc.StartProcess(k, "app", opts, func(l *glibc.Lib) {
		r := New(l, Config{NumThreads: 4, WaitPolicy: WaitPassive})
		for i := 0; i < 10; i++ {
			r.Parallel(4, func(tid, nth int) {
				l.Compute(100 * sim.Microsecond)
			})
		}
		if l.Stats.ThreadsCreated > 3 {
			t.Errorf("threads created = %d, want 3 (one team reused)", l.Stats.ThreadsCreated)
		}
		r.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestNestedTeamsPerMaster(t *testing.T) {
	// Outer parallelism: two pthreads each drive their own OpenMP
	// region — the matmul nesting pattern. Each master must get a
	// distinct cached team.
	eng, k, opts := stack(t, 8, false)
	total := 0
	_, err := glibc.StartProcess(k, "app", opts, func(l *glibc.Lib) {
		r := New(l, Config{NumThreads: 2, WaitPolicy: WaitPassive})
		var pts []*glibc.Pthread
		for i := 0; i < 2; i++ {
			pts = append(pts, l.PthreadCreate("outer", func() {
				for j := 0; j < 3; j++ {
					r.Parallel(2, func(tid, nth int) {
						l.Compute(500 * sim.Microsecond)
						total++
					})
				}
			}))
		}
		for _, pt := range pts {
			l.PthreadJoin(pt)
		}
		r.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if total != 12 {
		t.Fatalf("total region-thread executions = %d, want 12", total)
	}
}

func TestPassiveWorkersDontBurnCPU(t *testing.T) {
	// After a region, passive workers block; a long serial phase should
	// accumulate (almost) no CPU on them. Active workers spin the whole
	// time. Compare CPU burnt by the two policies during the serial
	// phase.
	measure := func(p WaitPolicy) sim.Duration {
		eng, k, opts := stack(t, 4, false)
		var busy sim.Duration
		_, err := glibc.StartProcess(k, "app", opts, func(l *glibc.Lib) {
			r := New(l, Config{NumThreads: 4, WaitPolicy: p})
			r.Parallel(4, func(tid, nth int) { l.Compute(100 * sim.Microsecond) })
			l.Compute(20 * sim.Millisecond) // serial phase
			threads := l.Proc.Threads()     // capture before workers exit
			r.Shutdown()
			for _, th := range threads {
				busy += th.CPUTime
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		return busy
	}
	passive := measure(WaitPassive)
	active := measure(WaitActive)
	if active < passive*2 {
		t.Fatalf("active CPU %v vs passive %v: spinning not modelled", active, passive)
	}
}

func TestHybridSpinsThenBlocks(t *testing.T) {
	eng, k, opts := stack(t, 4, false)
	_, err := glibc.StartProcess(k, "app", opts, func(l *glibc.Lib) {
		r := New(l, Config{NumThreads: 4, WaitPolicy: WaitHybrid, SpinBeforeBlock: 50 * sim.Microsecond})
		r.Parallel(4, func(tid, nth int) { l.Compute(10 * sim.Microsecond) })
		// Long serial phase: hybrid workers must end up blocked, so
		// total runnable should drop to 1 (just us).
		l.Compute(5 * sim.Millisecond)
		if k.TotalRunnable() != 1 {
			t.Errorf("runnable = %d during serial phase, want 1 (workers blocked)", k.TotalRunnable())
		}
		r.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestGompLibompDefaults(t *testing.T) {
	_, k, opts := stack(t, 4, false)
	_, err := glibc.StartProcess(k, "app", opts, func(l *glibc.Lib) {
		g := New(l, Config{Flavor: Gomp})
		v := New(l, Config{Flavor: Libomp})
		if g.Config().SpinBeforeBlock >= v.Config().SpinBeforeBlock {
			t.Error("flavor spin defaults should differ (gomp < libomp)")
		}
		if g.Config().NumThreads != k.NumCores() {
			t.Errorf("default NumThreads = %d, want %d", g.Config().NumThreads, k.NumCores())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
