// Package ompss models an OmpSs-2 runtime (Nanos6/NODES): task creation
// with in/out/inout region dependencies, a shared worker pool, and
// taskwait. It is the outer runtime of the paper's matmul and Cholesky
// benchmarks (Listing 2).
package ompss

import (
	"fmt"

	"repro/internal/glibc"
	"repro/internal/sim"
)

// Deps declares a task's data dependencies over opaque region keys.
type Deps struct {
	In    []any
	Out   []any
	InOut []any
}

// WaitPolicy mirrors OmpSs-2's worker wait policy.
type WaitPolicy int

// Wait policies.
const (
	WaitPassive WaitPolicy = iota // block when starved (paper's setting)
	WaitHybrid                    // spin briefly, then block
)

// Config tunes the runtime.
type Config struct {
	// Workers is the pool width (default: all cores).
	Workers int
	// WaitPolicy selects idle behaviour.
	WaitPolicy WaitPolicy
	// SpinBeforeBlock is the hybrid active phase (default 100µs).
	SpinBeforeBlock sim.Duration
}

// Runtime is one process's OmpSs-2 runtime instance.
type Runtime struct {
	lib *glibc.Lib
	cfg Config

	ready   []*task
	regions map[any]*regionState
	pending int

	workers   []*worker
	stopped   bool
	twWaiters []*glibc.Sem
	twSemPool []*glibc.Sem
	TasksRun  int64
	TasksMade int64
}

type task struct {
	fn         func()
	nblocking  int
	dependents []*task
	done       bool
}

type regionState struct {
	lastWriter *task
	readers    []*task
}

type worker struct {
	r       *Runtime
	pt      *glibc.Pthread
	sem     *glibc.Sem
	blocked bool
}

// New creates the runtime and starts its worker pool.
func New(lib *glibc.Lib, cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = lib.K.NumCores()
	}
	if cfg.SpinBeforeBlock == 0 {
		cfg.SpinBeforeBlock = 100 * sim.Microsecond
	}
	r := &Runtime{lib: lib, cfg: cfg, regions: make(map[any]*regionState)}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{r: r, sem: lib.NewSem(0)}
		w.pt = lib.PthreadCreate(fmt.Sprintf("nanos6-w%d", i), w.loop)
		r.workers = append(r.workers, w)
	}
	return r
}

// Workers returns the pool width.
func (r *Runtime) Workers() int { return r.cfg.Workers }

// Task submits fn with the given dependencies ("#pragma oss task").
func (r *Runtime) Task(deps Deps, fn func()) {
	t := &task{fn: fn}
	r.TasksMade++
	r.pending++
	addDep := func(pred *task) {
		if pred == nil || pred.done || pred == t {
			return
		}
		pred.dependents = append(pred.dependents, t)
		t.nblocking++
	}
	for _, key := range deps.In {
		st := r.region(key)
		addDep(st.lastWriter)
		st.readers = append(st.readers, t)
	}
	for _, key := range append(append([]any{}, deps.Out...), deps.InOut...) {
		st := r.region(key)
		addDep(st.lastWriter)
		for _, rd := range st.readers {
			addDep(rd)
		}
		st.lastWriter = t
		st.readers = nil
	}
	if t.nblocking == 0 {
		r.enqueue(t)
	}
}

func (r *Runtime) region(key any) *regionState {
	st := r.regions[key]
	if st == nil {
		st = &regionState{}
		r.regions[key] = st
	}
	return st
}

func (r *Runtime) enqueue(t *task) {
	r.ready = append(r.ready, t)
	for _, w := range r.workers {
		if w.blocked {
			// Consume the flag here: the worker only clears it once it
			// actually runs, and the next enqueue must wake a
			// different worker.
			w.blocked = false
			w.sem.Post()
			break
		}
	}
}

// Taskwait blocks the caller until every submitted task has completed
// ("#pragma oss taskwait").
func (r *Runtime) Taskwait() {
	if r.pending == 0 {
		return
	}
	var sem *glibc.Sem
	if n := len(r.twSemPool); n > 0 {
		sem = r.twSemPool[n-1]
		r.twSemPool = r.twSemPool[:n-1]
	} else {
		sem = r.lib.NewSem(0)
	}
	r.twWaiters = append(r.twWaiters, sem)
	for r.pending > 0 {
		sem.Wait()
	}
	r.twSemPool = append(r.twSemPool, sem)
}

// Shutdown stops and joins the worker pool.
func (r *Runtime) Shutdown() {
	r.Taskwait()
	r.stopped = true
	for _, w := range r.workers {
		if w.blocked {
			w.sem.Post()
		}
	}
	for _, w := range r.workers {
		r.lib.PthreadJoin(w.pt)
	}
	r.workers = nil
}

// complete finishes a task: releases dependents and taskwaiters.
func (r *Runtime) complete(t *task) {
	t.done = true
	r.pending--
	for _, d := range t.dependents {
		d.nblocking--
		if d.nblocking == 0 {
			r.enqueue(d)
		}
	}
	t.dependents = nil
	if r.pending == 0 {
		ws := r.twWaiters
		r.twWaiters = nil
		for _, sem := range ws {
			sem.Post()
		}
	}
}

func (w *worker) loop() {
	r := w.r
	lib := r.lib
	for {
		if r.stopped {
			return
		}
		if n := len(r.ready); n > 0 {
			t := r.ready[0]
			r.ready = r.ready[1:]
			r.TasksRun++
			t.fn()
			r.complete(t)
			continue
		}
		switch r.cfg.WaitPolicy {
		case WaitHybrid:
			start := lib.K.Eng.Now()
			for len(r.ready) == 0 && !r.stopped &&
				lib.K.Eng.Now().Sub(start) < r.cfg.SpinBeforeBlock {
				lib.Compute(2 * sim.Microsecond)
			}
			if len(r.ready) == 0 && !r.stopped {
				w.blocked = true
				w.sem.Wait()
				w.blocked = false
			}
		default:
			w.blocked = true
			w.sem.Wait()
			w.blocked = false
		}
	}
}
