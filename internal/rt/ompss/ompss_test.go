package ompss

import (
	"testing"

	"repro/internal/glibc"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/sim"
)

func runApp(t *testing.T, cores int, usf bool, app func(l *glibc.Lib)) *kernel.Kernel {
	t.Helper()
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = cores
	cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
	eng := sim.NewEngine(1)
	k := kernel.New(eng, cfg, kernel.DefaultSchedParams())
	if _, err := glibc.StartProcess(k, "app", glibc.Options{USF: usf}, app); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestIndependentTasksRunInParallel(t *testing.T) {
	for _, usf := range []bool{false, true} {
		var makespan sim.Time
		k := runApp(t, 4, usf, func(l *glibc.Lib) {
			r := New(l, Config{Workers: 4})
			for i := 0; i < 4; i++ {
				r.Task(Deps{}, func() { l.Compute(10 * sim.Millisecond) })
			}
			r.Taskwait()
			makespan = l.K.Eng.Now()
			r.Shutdown()
		})
		_ = k
		// 4 independent 10ms tasks on 4 cores: makespan near 10ms (some
		// creation overhead allowed).
		if makespan > sim.Time(14*sim.Millisecond) {
			t.Fatalf("usf=%v makespan = %v, want ~10ms (parallel)", usf, makespan)
		}
	}
}

func TestInOutDependencyOrdering(t *testing.T) {
	var order []string
	runApp(t, 4, false, func(l *glibc.Lib) {
		r := New(l, Config{Workers: 4})
		key := "C[0][0]"
		for i := 0; i < 4; i++ {
			name := string(rune('a' + i))
			r.Task(Deps{InOut: []any{key}}, func() {
				l.Compute(1 * sim.Millisecond)
				order = append(order, name)
			})
		}
		r.Taskwait()
		r.Shutdown()
	})
	want := []string{"a", "b", "c", "d"}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("inout chain order = %v, want %v", order, want)
		}
	}
}

func TestReadersRunConcurrentlyWriterWaits(t *testing.T) {
	var events []string
	runApp(t, 4, false, func(l *glibc.Lib) {
		r := New(l, Config{Workers: 4})
		key := "A"
		r.Task(Deps{Out: []any{key}}, func() {
			l.Compute(2 * sim.Millisecond)
			events = append(events, "write1")
		})
		for i := 0; i < 2; i++ {
			r.Task(Deps{In: []any{key}}, func() {
				l.Compute(2 * sim.Millisecond)
				events = append(events, "read")
			})
		}
		r.Task(Deps{InOut: []any{key}}, func() {
			l.Compute(1 * sim.Millisecond)
			events = append(events, "write2")
		})
		r.Taskwait()
		r.Shutdown()
	})
	if len(events) != 4 {
		t.Fatalf("events = %v", events)
	}
	if events[0] != "write1" {
		t.Fatalf("first = %q, want write1", events[0])
	}
	if events[3] != "write2" {
		t.Fatalf("last = %q, want write2 (WAR on both readers)", events[3])
	}
}

func TestTaskwaitBlocksUntilAllDone(t *testing.T) {
	var doneAt, waitedAt sim.Time
	runApp(t, 2, false, func(l *glibc.Lib) {
		r := New(l, Config{Workers: 2})
		r.Task(Deps{}, func() {
			l.Compute(8 * sim.Millisecond)
			doneAt = l.K.Eng.Now()
		})
		r.Taskwait()
		waitedAt = l.K.Eng.Now()
		r.Shutdown()
	})
	if waitedAt < doneAt {
		t.Fatalf("taskwait returned at %v before task done at %v", waitedAt, doneAt)
	}
}

func TestTaskwaitOnEmptyRuntimeReturns(t *testing.T) {
	runApp(t, 2, false, func(l *glibc.Lib) {
		r := New(l, Config{Workers: 2})
		r.Taskwait() // must not block
		r.Shutdown()
	})
}

func TestTasksSubmittingTasks(t *testing.T) {
	// Nested creation: a task spawns more tasks (the matmul pattern has
	// the main thread do this, but workers may too).
	total := 0
	runApp(t, 4, false, func(l *glibc.Lib) {
		r := New(l, Config{Workers: 4})
		r.Task(Deps{}, func() {
			l.Compute(1 * sim.Millisecond)
			for i := 0; i < 3; i++ {
				r.Task(Deps{}, func() {
					l.Compute(1 * sim.Millisecond)
					total++
				})
			}
			total++
		})
		r.Taskwait()
		r.Shutdown()
	})
	if total != 4 {
		t.Fatalf("total = %d, want 4", total)
	}
}

func TestManyTasksDependencyDiamond(t *testing.T) {
	// a -> (b, c) -> d over two regions.
	var order []string
	runApp(t, 4, false, func(l *glibc.Lib) {
		r := New(l, Config{Workers: 4})
		r.Task(Deps{Out: []any{"x", "y"}}, func() {
			l.Compute(1 * sim.Millisecond)
			order = append(order, "a")
		})
		r.Task(Deps{In: []any{"x"}, Out: []any{"bx"}}, func() {
			l.Compute(1 * sim.Millisecond)
			order = append(order, "b")
		})
		r.Task(Deps{In: []any{"y"}, Out: []any{"cy"}}, func() {
			l.Compute(2 * sim.Millisecond)
			order = append(order, "c")
		})
		r.Task(Deps{In: []any{"bx", "cy"}}, func() {
			l.Compute(1 * sim.Millisecond)
			order = append(order, "d")
		})
		r.Taskwait()
		r.Shutdown()
	})
	if len(order) != 4 || order[0] != "a" || order[3] != "d" {
		t.Fatalf("diamond order = %v", order)
	}
}

func TestHybridWaitPolicy(t *testing.T) {
	runApp(t, 4, false, func(l *glibc.Lib) {
		r := New(l, Config{Workers: 2, WaitPolicy: WaitHybrid, SpinBeforeBlock: 20 * sim.Microsecond})
		done := 0
		for i := 0; i < 6; i++ {
			r.Task(Deps{}, func() {
				l.Compute(500 * sim.Microsecond)
				done++
			})
		}
		r.Taskwait()
		if done != 6 {
			t.Errorf("done = %d", done)
		}
		r.Shutdown()
	})
}
