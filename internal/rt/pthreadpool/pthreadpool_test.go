package pthreadpool

import (
	"testing"

	"repro/internal/glibc"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/sim"
)

func runApp(t *testing.T, cores int, usf bool, app func(l *glibc.Lib)) {
	t.Helper()
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = cores
	cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
	eng := sim.NewEngine(1)
	k := kernel.New(eng, cfg, kernel.DefaultSchedParams())
	if _, err := glibc.StartProcess(k, "app", glibc.Options{USF: usf}, app); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelizeCoversRange(t *testing.T) {
	for _, usf := range []bool{false, true} {
		covered := make([]bool, 40)
		runApp(t, 4, usf, func(l *glibc.Lib) {
			p := New(l, 4)
			p.Parallelize(40, func(lo, hi int) {
				l.Compute(sim.Duration(hi-lo) * 50 * sim.Microsecond)
				for i := lo; i < hi; i++ {
					covered[i] = true
				}
			})
			p.Shutdown()
		})
		for i, c := range covered {
			if !c {
				t.Fatalf("usf=%v: item %d missed", usf, i)
			}
		}
	}
}

func TestRepeatedJobsReuseThreads(t *testing.T) {
	runApp(t, 4, false, func(l *glibc.Lib) {
		p := New(l, 4)
		for j := 0; j < 10; j++ {
			p.Parallelize(16, func(lo, hi int) {
				l.Compute(100 * sim.Microsecond)
			})
		}
		if l.Stats.ThreadsCreated != 3 {
			t.Errorf("threads created = %d, want 3 (persistent pool)", l.Stats.ThreadsCreated)
		}
		p.Shutdown()
	})
}

func TestSingleThreadPoolInlines(t *testing.T) {
	runApp(t, 2, false, func(l *glibc.Lib) {
		p := New(l, 1)
		ran := false
		p.Parallelize(5, func(lo, hi int) {
			if lo != 0 || hi != 5 {
				t.Errorf("chunk = [%d,%d), want [0,5)", lo, hi)
			}
			ran = true
		})
		if !ran {
			t.Error("body not run")
		}
		if l.Stats.ThreadsCreated != 0 {
			t.Errorf("threads created = %d, want 0", l.Stats.ThreadsCreated)
		}
		p.Shutdown()
	})
}

func TestParallelSpeedup(t *testing.T) {
	var t4, t1 sim.Time
	runApp(t, 4, false, func(l *glibc.Lib) {
		p := New(l, 4)
		start := l.K.Eng.Now()
		p.Parallelize(4, func(lo, hi int) {
			l.Compute(sim.Duration(hi-lo) * 10 * sim.Millisecond)
		})
		t4 = l.K.Eng.Now() - start
		p.Shutdown()
	})
	runApp(t, 4, false, func(l *glibc.Lib) {
		p := New(l, 1)
		start := l.K.Eng.Now()
		p.Parallelize(4, func(lo, hi int) {
			l.Compute(sim.Duration(hi-lo) * 10 * sim.Millisecond)
		})
		t1 = l.K.Eng.Now() - start
		p.Shutdown()
	})
	if float64(t1)/float64(t4) < 3 {
		t.Fatalf("speedup = %.2f, want ~4 (t1=%v t4=%v)", float64(t1)/float64(t4), t1, t4)
	}
}
