// Package pthreadpool models the fork-join pool PyTorch uses for CPU
// kernels outside BLAS (Maratyszcza's pthreadpool): a persistent set of
// pthreads that spin briefly for work and block otherwise, dispatched via
// parallelize_1d. It appears in the paper's microservices case study
// (§5.5), where each inference server drives it under Python processes.
package pthreadpool

import (
	"fmt"

	"repro/internal/glibc"
	"repro/internal/sim"
)

// Pool is a pthreadpool instance.
type Pool struct {
	lib *glibc.Lib
	n   int

	jobSeq  int
	jobN    int
	body    func(lo, hi int)
	items   int
	done    int
	doneSem *glibc.Sem

	workers []*worker
	stopped bool

	JobsRun int64
}

type worker struct {
	p       *Pool
	tid     int
	pt      *glibc.Pthread
	lastSeq int
	sem     *glibc.Sem
	blocked bool
}

// spinForWork is pthreadpool's brief active wait.
const spinForWork = 50 * sim.Microsecond

// New creates a pool of n threads (including the caller's share: n-1
// pthreads are spawned; the caller participates in Parallelize).
func New(lib *glibc.Lib, n int) *Pool {
	if n <= 0 {
		n = lib.K.NumCores()
	}
	p := &Pool{lib: lib, n: n, doneSem: lib.NewSem(0)}
	for i := 1; i < n; i++ {
		w := &worker{p: p, tid: i, sem: lib.NewSem(0)}
		w.pt = lib.PthreadCreate(fmt.Sprintf("pthreadpool-w%d", i), w.loop)
		p.workers = append(p.workers, w)
	}
	return p
}

// Threads returns the pool width.
func (p *Pool) Threads() int { return p.n }

// Parallelize runs body over [0, items) split across the pool, blocking
// until every chunk completes (pthreadpool_parallelize_1d).
func (p *Pool) Parallelize(items int, body func(lo, hi int)) {
	if items <= 0 {
		return
	}
	p.JobsRun++
	if p.n == 1 || items == 1 {
		body(0, items)
		return
	}
	p.body = body
	p.items = items
	p.jobN = p.n
	if p.jobN > items {
		p.jobN = items
	}
	p.done = 0
	p.jobSeq++
	for _, w := range p.workers {
		if w.blocked {
			w.sem.Post()
		}
	}
	p.runChunk(0)
	// The caller waits for the stragglers (spin-then-block, like the
	// real pool).
	lib := p.lib
	start := lib.K.Eng.Now()
	for p.done < p.jobN {
		if lib.K.Eng.Now().Sub(start) < spinForWork {
			lib.Compute(2 * sim.Microsecond)
			continue
		}
		p.doneSem.Wait()
	}
}

func (p *Pool) runChunk(tid int) {
	if tid >= p.jobN {
		return
	}
	lo := tid * p.items / p.jobN
	hi := (tid + 1) * p.items / p.jobN
	if lo < hi {
		p.body(lo, hi)
	}
	p.done++
	if p.done >= p.jobN {
		p.doneSem.Post()
	}
}

// Shutdown stops and joins the pool threads.
func (p *Pool) Shutdown() {
	p.stopped = true
	for _, w := range p.workers {
		if w.blocked {
			w.sem.Post()
		}
	}
	for _, w := range p.workers {
		p.lib.PthreadJoin(w.pt)
	}
	p.workers = nil
}

func (w *worker) loop() {
	p := w.p
	lib := p.lib
	for {
		if p.stopped {
			return
		}
		if p.jobSeq != w.lastSeq {
			w.lastSeq = p.jobSeq
			p.runChunk(w.tid)
			continue
		}
		start := lib.K.Eng.Now()
		for p.jobSeq == w.lastSeq && !p.stopped &&
			lib.K.Eng.Now().Sub(start) < spinForWork {
			lib.Compute(2 * sim.Microsecond)
		}
		if p.jobSeq == w.lastSeq && !p.stopped {
			w.blocked = true
			w.sem.Wait()
			w.blocked = false
		}
	}
}
