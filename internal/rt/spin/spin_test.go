package spin

import (
	"testing"

	"repro/internal/glibc"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/sim"
)

func runApp(t *testing.T, cores int, app func(l *glibc.Lib)) {
	t.Helper()
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = cores
	cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
	eng := sim.NewEngine(1)
	k := kernel.New(eng, cfg, kernel.DefaultSchedParams())
	if _, err := glibc.StartProcess(k, "app", glibc.Options{}, app); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestChunkBackoffAndCaps(t *testing.T) {
	if chunk(0, false) != baseChunk {
		t.Fatalf("chunk(0) = %v, want %v", chunk(0, false), baseChunk)
	}
	if chunk(1, false) != 2*baseChunk {
		t.Fatalf("chunk(1) = %v, want doubling", chunk(1, false))
	}
	for i := 0; i < 80; i++ {
		y, n := chunk(i, true), chunk(i, false)
		if y <= 0 || y > maxChunkYield {
			t.Fatalf("chunk(%d, yield) = %v out of (0, %v]", i, y, maxChunkYield)
		}
		if n <= 0 || n > maxChunkNoYield {
			t.Fatalf("chunk(%d, noyield) = %v out of (0, %v]", i, n, maxChunkNoYield)
		}
	}
	// Large i overflows the shift; the cap must still hold.
	if chunk(63, false) != maxChunkNoYield || chunk(63, true) != maxChunkYield {
		t.Fatal("overflowed chunk not clamped to max")
	}
}

func TestUntilSpinsUntilPredicate(t *testing.T) {
	for _, yield := range []bool{false, true} {
		var waited sim.Duration
		runApp(t, 2, func(l *glibc.Lib) {
			flag := false
			setter := l.PthreadCreate("setter", func() {
				l.Compute(2 * sim.Millisecond)
				flag = true
			})
			start := l.K.Eng.Now()
			Until(l, func() bool { return flag }, yield)
			waited = l.K.Eng.Now().Sub(start)
			if !flag {
				t.Errorf("yield=%v: Until returned before predicate held", yield)
			}
			l.PthreadJoin(setter)
		})
		// The spinner has its own core, so it observes the setter's 2ms
		// of work (give or take scheduling costs).
		if waited < 1*sim.Millisecond || waited > 20*sim.Millisecond {
			t.Fatalf("yield=%v: waited %v, want ~2ms", yield, waited)
		}
	}
}

func TestBarrierReleasesAllExactlyOneReleaser(t *testing.T) {
	const n = 4
	for _, yield := range []bool{false, true} {
		releasers := 0
		arrived := 0
		runApp(t, n, func(l *glibc.Lib) {
			b := NewBarrier(l, n, yield)
			var pts []*glibc.Pthread
			for i := 0; i < n-1; i++ {
				i := i
				pts = append(pts, l.PthreadCreate("w", func() {
					l.Compute(sim.Duration(i+1) * 100 * sim.Microsecond)
					if b.Wait() {
						releasers++
					}
					arrived++
				}))
			}
			if b.Wait() {
				releasers++
			}
			arrived++
			for _, pt := range pts {
				l.PthreadJoin(pt)
			}
		})
		if arrived != n {
			t.Fatalf("yield=%v: %d/%d participants returned", yield, arrived, n)
		}
		if releasers != 1 {
			t.Fatalf("yield=%v: %d releasers, want exactly 1", yield, releasers)
		}
	}
}

func TestBarrierGenerationsReusable(t *testing.T) {
	const n, rounds = 3, 5
	passes := 0
	var b *Barrier
	runApp(t, n, func(l *glibc.Lib) {
		b = NewBarrier(l, n, true)
		var pts []*glibc.Pthread
		for i := 0; i < n-1; i++ {
			pts = append(pts, l.PthreadCreate("w", func() {
				for r := 0; r < rounds; r++ {
					l.Compute(50 * sim.Microsecond)
					b.Wait()
				}
			}))
		}
		for r := 0; r < rounds; r++ {
			b.Wait()
			passes++
		}
		for _, pt := range pts {
			l.PthreadJoin(pt)
		}
	})
	if passes != rounds {
		t.Fatalf("main passed %d rounds, want %d", passes, rounds)
	}
	if b.gen != rounds {
		t.Fatalf("generation = %d after %d rounds", b.gen, rounds)
	}
}

func TestBarrierYieldCompletesOversubscribed(t *testing.T) {
	// Twice as many spinners as cores: the yield patch must let waiting
	// threads relinquish so the stragglers can arrive (§5.2's hazard).
	const cores, n = 2, 4
	done := 0
	runApp(t, cores, func(l *glibc.Lib) {
		b := NewBarrier(l, n, true)
		var pts []*glibc.Pthread
		for i := 0; i < n; i++ {
			i := i
			pts = append(pts, l.PthreadCreate("w", func() {
				l.Compute(sim.Duration(i+1) * 200 * sim.Microsecond)
				b.Wait()
				done++
			}))
		}
		for _, pt := range pts {
			l.PthreadJoin(pt)
		}
	})
	if done != n {
		t.Fatalf("%d/%d oversubscribed spinners completed", done, n)
	}
}
