// Package spin provides the custom busy-wait synchronisation used inside
// BLAS libraries and MPI progress engines — the constructs §5.2 of the
// paper identifies as the main hazard under oversubscription. A Barrier
// spins on a generation counter; the optional Yield flag is the paper's
// one-line `sched_yield()` patch applied to OpenBLAS, BLIS and MPICH.
//
// Under the standard scheduler, spinning burns time slices and delays the
// releasing thread (Fig. 3d's collapse); with Yield, threads relinquish
// early. Under glibcv, sched_yield becomes a nOS-V yield, giving exact,
// targeted handoffs; without Yield a spinning task can hold its core
// forever (§4.4's documented limitation — experiments then hit their
// timeout horizon, the paper's white squares).
package spin

import (
	"repro/internal/glibc"
	"repro/internal/sim"
)

// baseChunk is the smallest simulated spin burst.
const baseChunk = 500 * sim.Nanosecond

// maxChunkYield caps spin bursts when yielding (to keep yields frequent);
// maxChunkNoYield caps them otherwise (to bound event counts).
const (
	maxChunkYield   = 16 * sim.Microsecond
	maxChunkNoYield = 512 * sim.Microsecond
)

// chunk returns the spin burst for the i-th iteration (exponential
// back-off of the simulation granularity, not of the spinning itself).
func chunk(i int, yield bool) sim.Duration {
	c := baseChunk << uint(i)
	max := maxChunkNoYield
	if yield {
		max = maxChunkYield
	}
	if c > max || c <= 0 {
		return max
	}
	return c
}

// Until busy-waits until pred() holds, charging CPU the whole time. If
// yield is true, a sched_yield is issued every few bursts.
func Until(l *glibc.Lib, pred func() bool, yield bool) {
	spins := 0
	for !pred() {
		l.Compute(chunk(spins, yield))
		spins++
		if yield && spins%2 == 0 {
			l.SchedYield()
		}
	}
}

// Barrier is a centralized sense-reversing busy-wait barrier, the shape
// used by OpenBLAS/BLIS thread teams.
type Barrier struct {
	// Lib is the C library of the participating threads.
	Lib *glibc.Lib
	// N is the participant count.
	N int
	// Yield enables the sched_yield patch.
	Yield bool

	count int
	gen   int
}

// NewBarrier returns a busy-wait barrier for n threads.
func NewBarrier(l *glibc.Lib, n int, yield bool) *Barrier {
	return &Barrier{Lib: l, N: n, Yield: yield}
}

// Wait blocks (spinning) until all N participants arrive. The releasing
// participant returns true.
func (b *Barrier) Wait() bool {
	gen := b.gen
	b.count++
	if b.count == b.N {
		b.count = 0
		b.gen++
		return true
	}
	Until(b.Lib, func() bool { return b.gen != gen }, b.Yield)
	return false
}
