package obs

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/load"
	"repro/internal/sim"
)

// Observers for the load-bearing simulation state: load.Meter,
// load.Limiter, and the kernel scheduler. Each registers the series the
// telemetry spec cares about on a Registry; all per-scrape work reads
// simulation state only, so attaching an observer never perturbs the
// run.

// meterScraper emits a Meter's series, including windowed statistics
// diffed against the previous scrape's snapshot.
type meterScraper struct {
	m      *load.Meter
	node   string
	prefix string
	prev   load.MeterSnapshot
}

// Scrape emits in-flight depth, cumulative completions, windowed
// goodput (SLO-met completions per simulated second since the last
// scrape), and the windowed p99 (quantile of latencies recorded since
// the last scrape, via sketch snapshot diffing).
func (s *meterScraper) Scrape(at sim.Time, emit Emit) {
	snap := s.m.Snapshot(at)
	emit(s.prefix+"/inflight", s.node, float64(snap.InFlight))
	emit(s.prefix+"/completed", s.node, float64(snap.Completed))
	win := at.Sub(s.prev.At).Seconds()
	good := 0.0
	if win > 0 {
		good = float64((snap.Completed-snap.Violations)-(s.prev.Completed-s.prev.Violations)) / win
	}
	emit(s.prefix+"/goodput_win", s.node, good)
	emit(s.prefix+"/p99_win_s", s.node, snap.Sketch.QuantileSince(&s.prev.Sketch, 0.99).Seconds())
	s.prev = snap
}

// ObserveMeter registers a meter's series under prefix ("meter" →
// "meter/inflight", "meter/completed", "meter/goodput_win",
// "meter/p99_win_s"), labelled with node.
func ObserveMeter(reg *Registry, node, prefix string, m *load.Meter) {
	reg.AddScraper(&meterScraper{m: m, node: node, prefix: prefix})
}

// ObserveLimiter registers an admission limiter's series under prefix:
// current in-flight and backlog depth plus the cumulative admitted,
// delayed, and shed counts.
func ObserveLimiter(reg *Registry, node, prefix string, l *load.Limiter) {
	reg.GaugeNode(prefix+"/inflight", node, func() float64 { return float64(l.InFlight()) })
	reg.GaugeNode(prefix+"/queued", node, func() float64 { return float64(l.Queued()) })
	reg.GaugeNode(prefix+"/admitted", node, func() float64 { return float64(l.Admitted()) })
	reg.GaugeNode(prefix+"/delayed", node, func() float64 { return float64(l.Delayed()) })
	reg.GaugeNode(prefix+"/shed", node, func() float64 { return float64(l.Shed()) })
}

// kernelScraper emits a kernel's scheduler series: per-core runqueue
// depth, total runnable threads, and cumulative steals.
type kernelScraper struct {
	k      *kernel.Kernel
	node   string
	series []string // per-core series names, formatted once
}

func (s *kernelScraper) Scrape(at sim.Time, emit Emit) {
	for c, name := range s.series {
		emit(name, s.node, float64(s.k.CoreQueued(c)))
	}
	emit("kernel/runnable", s.node, float64(s.k.TotalRunnable()))
	emit("kernel/steals", s.node, float64(s.k.Stats.Steals))
}

// ObserveKernel registers a kernel's scheduler series labelled with
// node: "kernel/runq/coreNN" per core, "kernel/runnable", and
// "kernel/steals".
func ObserveKernel(reg *Registry, node string, k *kernel.Kernel) {
	s := &kernelScraper{k: k, node: node, series: make([]string, k.NumCores())}
	for c := range s.series {
		s.series[c] = fmt.Sprintf("kernel/runq/core%02d", c)
	}
	reg.AddScraper(s)
}
