package obs

import (
	"testing"

	"repro/internal/sim"
)

func TestRegistryScrapesOnTheVirtualTimeline(t *testing.T) {
	eng := sim.NewEngine(1)
	r := New(eng, "n0", 10*sim.Millisecond)
	v := 0.0
	r.Gauge("g", func() float64 { return v })
	r.Start()
	// A workload event between scrapes changes the observed value; the
	// scrape at each k*interval must see the value current at that
	// instant.
	eng.AfterFunc(15*sim.Millisecond, func(any) { v = 7 }, nil)
	eng.AfterFunc(35*sim.Millisecond, func(any) {
		v = 9
		r.Stop(eng.Now())
	}, nil)
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	ss := r.Samples()
	want := []Sample{
		{Series: "g", Node: "n0", At: sim.Time(10 * sim.Millisecond), Value: 0},
		{Series: "g", Node: "n0", At: sim.Time(20 * sim.Millisecond), Value: 7},
		{Series: "g", Node: "n0", At: sim.Time(30 * sim.Millisecond), Value: 7},
	}
	if len(ss) != len(want) {
		t.Fatalf("samples = %+v", ss)
	}
	for i := range want {
		if ss[i] != want[i] {
			t.Fatalf("sample %d = %+v, want %+v", i, ss[i], want[i])
		}
	}
	// Stop cancelled the pending scrape: the engine ran dry at the stop
	// event, not at some later scrape instant.
	if now := eng.Now(); now != sim.Time(35*sim.Millisecond) {
		t.Fatalf("engine drained at %v", now)
	}
}

func TestRegistryStopTrimsPastCutoff(t *testing.T) {
	// A remote registry is stopped one lookahead AFTER the cutoff: any
	// scrape that fired inside the coordination window must be trimmed
	// so sharded and unsharded runs export identical rows.
	eng := sim.NewEngine(1)
	r := New(eng, "n0", 10*sim.Millisecond)
	r.Gauge("g", func() float64 { return 1 })
	r.Start()
	cutoff := sim.Time(25 * sim.Millisecond)
	eng.AfterFunc(42*sim.Millisecond, func(any) { r.Stop(cutoff) }, nil)
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	ss := r.Samples()
	if len(ss) != 2 {
		t.Fatalf("samples = %+v", ss)
	}
	for _, s := range ss {
		if s.At > cutoff {
			t.Fatalf("sample past cutoff survived: %+v", s)
		}
	}
	// Idempotent.
	r.Stop(cutoff)
	if len(r.Samples()) != 2 {
		t.Fatal("second Stop changed the samples")
	}
}

func TestRegistryRoundCapBoundsTimedOutRuns(t *testing.T) {
	eng := sim.NewEngine(1)
	r := New(eng, "n0", sim.Millisecond)
	r.MaxRounds = 5
	r.Gauge("g", func() float64 { return 1 })
	r.Start()
	// Never stopped: the cap must end the self-rescheduling chain so
	// the engine can run dry.
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(r.Samples()) != 5 {
		t.Fatalf("samples = %d, want 5", len(r.Samples()))
	}
	if now := eng.Now(); now != sim.Time(5*sim.Millisecond) {
		t.Fatalf("engine drained at %v", now)
	}
}

func TestRegistryCounterAndScraper(t *testing.T) {
	eng := sim.NewEngine(1)
	r := New(eng, "n0", 10*sim.Millisecond)
	n := int64(41)
	r.Counter("c", func() int64 { return n })
	r.AddScraper(&gauge{series: "s", node: "other", fn: func() float64 { return 2 }})
	r.Start()
	eng.AfterFunc(10*sim.Millisecond, func(any) { r.Stop(eng.Now()) }, nil)
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	ss := r.Samples()
	if len(ss) != 2 || ss[0].Value != 41 || ss[1].Node != "other" {
		t.Fatalf("samples = %+v", ss)
	}
}

func TestStartPanicsWhenActive(t *testing.T) {
	eng := sim.NewEngine(1)
	r := New(eng, "n0", sim.Millisecond)
	r.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("double Start did not panic")
		}
	}()
	r.Start()
}

func TestNewRejectsNonPositiveInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval did not panic")
		}
	}()
	New(sim.NewEngine(1), "n0", 0)
}

func TestMergeSamplesCanonicalOrder(t *testing.T) {
	a := []Sample{
		{Series: "z", Node: "n1", At: 20},
		{Series: "a", Node: "n1", At: 10},
	}
	b := []Sample{
		{Series: "a", Node: "n0", At: 10},
		{Series: "b", Node: "n1", At: 10},
	}
	got := MergeSamples(a, b)
	want := []Sample{
		{Series: "a", Node: "n0", At: 10},
		{Series: "a", Node: "n1", At: 10},
		{Series: "b", Node: "n1", At: 10},
		{Series: "z", Node: "n1", At: 20},
	}
	if len(got) != len(want) {
		t.Fatalf("merged = %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Inputs are untouched (merge copies).
	if a[0].Series != "z" {
		t.Fatal("MergeSamples mutated its input")
	}
}

func mkSpan(id int, submit, net1, queue, svc, net2 sim.Duration) Span {
	s := Span{ID: id, Node: "n0", Submit: sim.Time(submit)}
	s.Arrive = s.Submit.Add(net1)
	s.Start = s.Arrive.Add(queue)
	s.Done = s.Start.Add(svc)
	s.Reply = s.Done.Add(net2)
	return s
}

func TestSpanHops(t *testing.T) {
	s := mkSpan(0, 5, 10, 20, 30, 40)
	if s.Network() != 50 || s.Queue() != 20 || s.Service() != 30 || s.Total() != 100 {
		t.Fatalf("hops: net=%v queue=%v svc=%v total=%v", s.Network(), s.Queue(), s.Service(), s.Total())
	}
	if !s.Complete() || (Span{ID: 1}).Complete() {
		t.Fatal("completeness marker wrong")
	}
}

func TestBreakTail(t *testing.T) {
	// 9 fast spans dominated by service time, 1 slow span dominated by
	// queueing. At q=1 the tail set is exactly the slow span, so its
	// queue share dominates the breakdown.
	var ss []Span
	for i := 0; i < 9; i++ {
		ss = append(ss, mkSpan(i, sim.Duration(i), 10, 10, 80, 10))
	}
	ss = append(ss, mkSpan(9, 100, 10, 900, 80, 10))
	b := BreakTail(ss, 1)
	if b.N != 1 || b.Threshold != 1000 {
		t.Fatalf("tail set: %+v", b)
	}
	if b.Queue < 0.89 || b.Queue > 0.91 {
		t.Fatalf("queue share = %v, want ~0.9", b.Queue)
	}
	if sum := b.Network + b.Queue + b.Service; sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %v", sum)
	}

	// At q=0.9 the threshold index (floor of q*(n-1)) lands on the tied
	// fast total, so the >=-threshold tail set covers every span.
	if b := BreakTail(ss, 0.9); b.Threshold != 110 || b.N != 10 {
		t.Fatalf("q=0.9 tail set: %+v", b)
	}

	// Quantile 0 covers every complete span.
	all := BreakTail(ss, 0)
	if all.N != 10 {
		t.Fatalf("q=0 tail N = %d", all.N)
	}

	// Incomplete spans are excluded; all-incomplete gives a zero value.
	if z := BreakTail([]Span{{ID: 0}, {ID: 1}}, 0.99); z != (TailBreakdown{}) {
		t.Fatalf("incomplete-only breakdown = %+v", z)
	}
}
