// Package obs is the simulator's deterministic observability layer:
// simulated-time metrics scraping and per-request spans.
//
// A Registry is bound to one engine and samples its registered probes
// on the simulated timeline — a self-rescheduling engine timer fires
// every Interval and appends one Sample per series. Because scrape
// instants are virtual times (k*Interval) and probe values are pure
// functions of simulation state, the collected samples are a pure
// function of the scenario configuration and seed: byte-identical for
// any host parallelism and — when each registry lives on the engine
// its observed state is homed on — for any shard count.
//
// The scrape timer would keep an engine's queue from ever draining, so
// a registry must be stopped explicitly at the workload-defined end of
// measurement (Stop). Stop takes a cutoff instant and discards samples
// beyond it: a sharded fleet stops remote registries one lookahead
// after the final completion (the earliest safe instant), and the
// cutoff trims the straggler samples so sharded and unsharded runs
// export identical rows.
//
// Everything here lives inside the deterministic core (simlint-clean):
// no wall clock, no maps, no global RNG, no goroutines. When no
// registry is attached, instrumented code pays only a nil check — the
// disabled path allocates nothing.
package obs

import (
	"sort"

	"repro/internal/sim"
)

// Sample is one scraped metric point in long format: which series, on
// which node, at which simulated instant, with what value.
type Sample struct {
	// Series names the metric ("meter/inflight", "kernel/steals", ...).
	Series string
	// Node labels the fleet member the value belongs to.
	Node string
	// At is the simulated scrape instant.
	At sim.Time
	// Value is the sampled value.
	Value float64
}

// Emit records one series value during a scrape. Scrapers call it once
// per series they own.
type Emit func(series, node string, v float64)

// Scraper is a probe that emits one or more series per scrape. Prefer
// it over individual gauges when several series share windowed state
// (e.g. a quantile-since-last-scrape), so the window advances exactly
// once per scrape.
type Scraper interface {
	Scrape(at sim.Time, emit Emit)
}

// DefaultMaxRounds bounds how many scrape rounds a registry runs: a
// protective cap so a run that hits its horizon (and is therefore never
// Stopped by its workload) cannot grow samples without bound. Rounds
// are indexed by simulated time (round k fires at k*Interval), so the
// cap cuts at the same virtual instant for any shard count.
const DefaultMaxRounds = 1 << 16

// gauge adapts a plain closure to the Scraper interface.
type gauge struct {
	series, node string
	fn           func() float64
}

func (g *gauge) Scrape(at sim.Time, emit Emit) { emit(g.series, g.node, g.fn()) }

// Registry scrapes a set of probes on one engine's simulated timeline.
type Registry struct {
	eng      *sim.Engine
	node     string
	interval sim.Duration

	scrapers []Scraper
	samples  []Sample

	ev      sim.Event
	emitFn  Emit // bound method value, allocated once at New
	rounds  int
	stopped bool

	// MaxRounds caps scrape rounds (see DefaultMaxRounds). Adjust
	// before Start.
	MaxRounds int
}

// New returns a registry scraping every interval on eng, labelling
// single-series gauges with the given default node name. Register
// probes, then call Start; stop it at the workload's end of measurement
// with Stop.
func New(eng *sim.Engine, node string, interval sim.Duration) *Registry {
	if interval <= 0 {
		panic("obs: scrape interval must be positive")
	}
	r := &Registry{eng: eng, node: node, interval: interval, MaxRounds: DefaultMaxRounds}
	r.emitFn = r.emit
	return r
}

// Node returns the registry's default node label.
func (r *Registry) Node() string { return r.node }

// Engine returns the engine the registry scrapes on.
func (r *Registry) Engine() *sim.Engine { return r.eng }

// Interval returns the scrape interval.
func (r *Registry) Interval() sim.Duration { return r.interval }

// Gauge registers fn as a series sampled every scrape, labelled with
// the registry's default node.
func (r *Registry) Gauge(series string, fn func() float64) {
	r.GaugeNode(series, r.node, fn)
}

// GaugeNode registers fn as a series sampled every scrape, labelled
// with an explicit node (for registries that observe state belonging to
// several fleet members, e.g. the client edge's per-node view).
func (r *Registry) GaugeNode(series, node string, fn func() float64) {
	r.scrapers = append(r.scrapers, &gauge{series: series, node: node, fn: fn})
}

// Counter registers a monotone integer-valued probe. Cumulative
// counters are exported as their current value; consumers diff
// consecutive samples for rates.
func (r *Registry) Counter(series string, fn func() int64) {
	r.Gauge(series, func() float64 { return float64(fn()) })
}

// AddScraper registers a multi-series probe.
func (r *Registry) AddScraper(s Scraper) { r.scrapers = append(r.scrapers, s) }

// Start arms the scrape timer: the first scrape fires one interval from
// now, then every interval until Stop (or the round cap).
func (r *Registry) Start() {
	if r.ev.Active() {
		panic("obs: Start called twice")
	}
	r.stopped = false
	r.ev = r.eng.AfterFunc(r.interval, registryScrape, r)
}

// registryScrape is the timer callback: sample every probe at the
// current virtual instant and reschedule.
func registryScrape(arg any) {
	r := arg.(*Registry)
	r.ev = sim.Event{}
	at := r.eng.Now()
	for _, s := range r.scrapers {
		s.Scrape(at, r.emitFn)
	}
	r.rounds++
	if r.stopped || r.rounds >= r.MaxRounds {
		return
	}
	r.ev = r.eng.AtFunc(at.Add(r.interval), registryScrape, r)
}

func (r *Registry) emit(series, node string, v float64) {
	r.samples = append(r.samples, Sample{Series: series, Node: node, At: r.eng.Now(), Value: v})
}

// Stop ends scraping and discards samples taken after cutoff. The
// cutoff makes sharded runs export the same rows as unsharded ones: a
// remote registry is stopped one lookahead after the workload's final
// completion, and any scrape that fired in that coordination window is
// trimmed here. Stop must run in the registry's engine context (or at a
// barrier). Idempotent.
func (r *Registry) Stop(cutoff sim.Time) {
	r.stopped = true
	r.ev.Cancel()
	r.ev = sim.Event{}
	n := len(r.samples)
	for n > 0 && r.samples[n-1].At > cutoff {
		n--
	}
	r.samples = r.samples[:n]
}

// Samples returns the collected rows in scrape order (ascending At;
// registration order within one instant).
func (r *Registry) Samples() []Sample { return r.samples }

// SortSamples orders rows by (At, Node, Series) — the canonical export
// order. Rows from several registries (one per shard engine) merge into
// one deterministic, shard-count-invariant sequence under it.
func SortSamples(ss []Sample) {
	sort.Sort((*sampleSlice)(&ss))
}

// sampleSlice sorts samples by (At, Node, Series); a named type so the
// deterministic core avoids closure-based sort.Slice on hot paths.
type sampleSlice []Sample

func (s *sampleSlice) Len() int { return len(*s) }
func (s *sampleSlice) Less(i, j int) bool {
	a, b := (*s)[i], (*s)[j]
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.Series < b.Series
}
func (s *sampleSlice) Swap(i, j int) { (*s)[i], (*s)[j] = (*s)[j], (*s)[i] }

// MergeSamples concatenates per-registry rows and sorts them into the
// canonical export order.
func MergeSamples(groups ...[]Sample) []Sample {
	n := 0
	for _, g := range groups {
		n += len(g)
	}
	out := make([]Sample, 0, n)
	for _, g := range groups {
		out = append(out, g...)
	}
	SortSamples(out)
	return out
}
