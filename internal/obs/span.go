package obs

import "repro/internal/sim"

// Span is one request's hop timeline through a cluster: the five
// instants the request path stamps as it crosses the fleet
// (client → router → network → node queue → service → reply). All
// instants are virtual times from the same total (at, seq) event order
// the engines fire in, so spans are byte-identical for any host
// parallelism or shard count.
type Span struct {
	// ID is the request id.
	ID int
	// Node names the node the router picked.
	Node string
	// Submit is the client-edge arrival (submission + routing instant).
	Submit sim.Time
	// Arrive is the request's arrival at the node, after the request
	// network hop.
	Arrive sim.Time
	// Start is the instant the node's service began working on the
	// request — its gateway handler's first action. Start-Arrive is
	// pure node-side queueing.
	Start sim.Time
	// Done is the node-side completion instant.
	Done sim.Time
	// Reply is the reply's arrival back at the client edge. A zero
	// Reply marks an incomplete span (the run timed out first).
	Reply sim.Time
	// Outcome classifies how the request resolved (the Outcome*
	// constants). Empty means the span predates the fault layer or the
	// run recorded plain successes only.
	Outcome string
	// Attempts counts dispatches the request took (0 when the cluster
	// ran without resilience; then every request took exactly one).
	Attempts int
}

// Request outcome labels stamped into Span.Outcome by resilient
// clusters.
const (
	// OutcomeOK marks a request that completed end to end.
	OutcomeOK = "ok"
	// OutcomeFailed marks a request whose final attempt failed hard
	// (node crash or node-side shed) with no retry available.
	OutcomeFailed = "failed"
	// OutcomeTimeout marks a request whose final attempt exceeded its
	// deadline with no retry available.
	OutcomeTimeout = "timeout"
	// OutcomeShed marks a request dropped because the retry budget was
	// empty.
	OutcomeShed = "shed"
	// OutcomeNoNode marks a request that found no live node to route
	// to.
	OutcomeNoNode = "no-node"
	// OutcomeAbandoned marks a request still in flight when the run hit
	// its horizon.
	OutcomeAbandoned = "abandoned"
)

// Complete reports whether the request finished end to end.
func (s Span) Complete() bool { return s.Reply > 0 }

// Network is the time spent on the wire: both hops.
func (s Span) Network() sim.Duration { return s.Arrive.Sub(s.Submit) + s.Reply.Sub(s.Done) }

// Queue is the node-side queueing delay: arrival at the node until the
// service started the request.
func (s Span) Queue() sim.Duration { return s.Start.Sub(s.Arrive) }

// Service is the node-side service time proper.
func (s Span) Service() sim.Duration { return s.Done.Sub(s.Start) }

// Total is the end-to-end latency.
func (s Span) Total() sim.Duration { return s.Reply.Sub(s.Submit) }

// TailBreakdown decomposes where the latency tail lives: across the
// complete spans whose total is at or above the q-quantile of totals,
// the mean share of network, queue, and service time.
type TailBreakdown struct {
	// N counts the tail spans the shares average over.
	N int
	// Threshold is the q-quantile of end-to-end totals that defines
	// the tail set.
	Threshold sim.Duration
	// Network, Queue, and Service are mean shares in [0, 1]; they sum
	// to 1 for any non-empty tail.
	Network, Queue, Service float64
}

// BreakTail computes the tail breakdown at quantile q (e.g. 0.99 for
// "where does p99 live") over the complete spans in ss. Returns a zero
// breakdown when no span completed.
func BreakTail(ss []Span, q float64) TailBreakdown {
	totals := make([]sim.Duration, 0, len(ss))
	for _, s := range ss {
		if s.Complete() {
			totals = append(totals, s.Total())
		}
	}
	if len(totals) == 0 {
		return TailBreakdown{}
	}
	sort := func(ds []sim.Duration) {
		// Insertion sort: span populations are request-train sized and
		// this keeps the deterministic core free of sort closures.
		for i := 1; i < len(ds); i++ {
			for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
				ds[j], ds[j-1] = ds[j-1], ds[j]
			}
		}
	}
	sort(totals)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	thr := totals[int(q*float64(len(totals)-1))]
	b := TailBreakdown{Threshold: thr}
	var net, que, svc float64
	for _, s := range ss {
		if !s.Complete() || s.Total() < thr {
			continue
		}
		tot := float64(s.Total())
		if tot <= 0 {
			continue
		}
		b.N++
		net += float64(s.Network()) / tot
		que += float64(s.Queue()) / tot
		svc += float64(s.Service()) / tot
	}
	if b.N > 0 {
		b.Network = net / float64(b.N)
		b.Queue = que / float64(b.N)
		b.Service = svc / float64(b.N)
	}
	return b
}
