package glibc

import (
	"repro/internal/kernel"
	"repro/internal/nosv"
	"repro/internal/sim"
)

// Chan is a pipe-like message queue shared between threads and processes
// (request queues in the microservices workload). Its blocking receive is
// condvar-shaped — the way Python's queue.Queue or a blocking pipe read
// through a buffered reader behaves — so glibcv intercepts it naturally.
// Poll over several Chans models poll(2)/epoll(7), including glibcv's
// 5 ms nosv_waitfor loop (§4.3.4).
type Chan struct {
	k   *kernel.Kernel
	buf []any

	// standard-backend reader wakeups
	f *kernel.Futex
	// glibcv reader queue
	q []*nosv.Task
	// registered baseline pollers (their private futexes get poked on
	// every send)
	pollers []*kernel.Futex
}

// NewChan creates a message queue. It is not tied to one process: each
// blocking call uses the calling thread's own library backend.
func NewChan(k *kernel.Kernel) *Chan {
	return &Chan{k: k, f: k.NewFutex()}
}

// libOf resolves the calling thread's Lib.
func libOf(k *kernel.Kernel) *Lib {
	kt := k.Current()
	if kt == nil {
		panic("glibc: channel op outside thread context")
	}
	l, _ := kt.Proc.Local["glibc"].(*Lib)
	if l == nil {
		panic("glibc: calling process has no glibc instance")
	}
	return l
}

// Len returns the number of queued messages.
func (ch *Chan) Len() int { return len(ch.buf) }

// Send enqueues v and wakes one blocked reader plus any pollers. Send may
// also be called from event context (external request generators).
func (ch *Chan) Send(v any) {
	ch.buf = append(ch.buf, v)
	ch.f.Word = int32(len(ch.buf))
	if len(ch.q) > 0 {
		t := ch.q[0]
		ch.q = ch.q[1:]
		// The task's owning process instance resubmits it.
		inst := instOfTask(t)
		inst.Submit(t)
	}
	ch.f.Wake(1)
	for _, pf := range ch.pollers {
		pf.Word = 1
		pf.Wake(1)
	}
}

func instOfTask(t *nosv.Task) *nosv.Instance {
	l, _ := t.Worker().KT.Proc.Local["glibc"].(*Lib)
	return l.Inst
}

// Recv blocks until a message is available and returns it.
func (ch *Chan) Recv() any {
	l := libOf(ch.k)
	pt := l.Self()
	for len(ch.buf) == 0 {
		if l.Inst != nil {
			ch.q = append(ch.q, pt.task)
			l.Inst.Pause(pt.task)
			continue
		}
		ch.f.Word = int32(len(ch.buf))
		ch.f.Wait(pt.KT, 0, -1)
	}
	v := ch.buf[0]
	ch.buf = ch.buf[1:]
	ch.f.Word = int32(len(ch.buf))
	return v
}

// TryRecv returns (value, true) if a message was available.
func (ch *Chan) TryRecv() (any, bool) {
	if len(ch.buf) == 0 {
		return nil, false
	}
	v := ch.buf[0]
	ch.buf = ch.buf[1:]
	ch.f.Word = int32(len(ch.buf))
	return v, true
}

// PollInterval is glibcv's nosv_waitfor polling period (§4.3.4).
const PollInterval = 5 * sim.Millisecond

// Poll blocks until one of the channels has a message or timeout expires
// (negative = infinite). It returns the index of a ready channel, or -1 on
// timeout. The standard backend registers wakeups and sleeps on a private
// futex; glibcv loops non-blocking checks with 5 ms timed waits, exactly
// like the paper's timed poll extension.
func Poll(k *kernel.Kernel, chans []*Chan, timeout sim.Duration) int {
	l := libOf(k)
	pt := l.Self()
	ready := func() int {
		for i, ch := range chans {
			if len(ch.buf) > 0 {
				return i
			}
		}
		return -1
	}
	deadline := sim.Forever
	if timeout >= 0 {
		deadline = k.Eng.Now().Add(timeout)
	}
	if l.Inst != nil {
		for {
			if i := ready(); i >= 0 {
				return i
			}
			now := k.Eng.Now()
			if now >= deadline {
				return -1
			}
			wait := PollInterval
			if remaining := deadline.Sub(now); remaining < wait {
				wait = remaining
			}
			l.Inst.Waitfor(pt.task, wait)
		}
	}
	pf := k.NewFutex()
	for _, ch := range chans {
		ch.pollers = append(ch.pollers, pf)
	}
	defer func() {
		for _, ch := range chans {
			for i, x := range ch.pollers {
				if x == pf {
					copy(ch.pollers[i:], ch.pollers[i+1:])
					ch.pollers = ch.pollers[:len(ch.pollers)-1]
					break
				}
			}
		}
	}()
	for {
		if i := ready(); i >= 0 {
			return i
		}
		now := k.Eng.Now()
		if now >= deadline {
			return -1
		}
		wait := sim.Duration(-1)
		if deadline != sim.Forever {
			wait = deadline.Sub(now)
		}
		pf.Word = 0
		pf.Wait(pt.KT, 0, wait)
	}
}
