package glibc

import (
	"repro/internal/kernel"
	"repro/internal/nosv"
	"repro/internal/sim"
)

// Mutex is pthread_mutex_t. The standard backend is the classic futex
// mutex (0 free / 1 locked / 2 contended) with barging — the shape that
// suffers Lock-Waiter Preemption. The glibcv backend is Listing 1: a
// per-mutex FIFO wait queue; unlock transfers ownership to the queue head
// and submits its task.
type Mutex struct {
	lib *Lib

	f     *kernel.Futex
	owner *Pthread

	q []*nosv.Task // glibcv wait queue
}

// NewMutex returns an initialised mutex.
func (l *Lib) NewMutex() *Mutex {
	return &Mutex{lib: l, f: l.K.NewFutex()}
}

// TryLock attempts the lock without blocking.
func (m *Mutex) TryLock() bool {
	pt := m.lib.Self()
	if m.lib.Inst != nil {
		if m.owner == nil {
			m.owner = pt
			return true
		}
		return false
	}
	if m.f.Word == 0 {
		m.f.Word = 1
		m.owner = pt
		return true
	}
	return false
}

// Lock acquires the mutex, blocking as needed.
func (m *Mutex) Lock() {
	pt := m.lib.Self()
	if m.lib.Inst != nil {
		if m.owner == nil {
			m.owner = pt
			return
		}
		// Contended: queue our task and pause; the unlocker hands
		// ownership over before submitting us.
		m.q = append(m.q, pt.task)
		m.lib.Inst.Pause(pt.task)
		return
	}
	kt := pt.KT
	if m.f.Word == 0 {
		m.f.Word = 1
		m.owner = pt
		return
	}
	for {
		if m.f.Word != 0 {
			m.f.Word = 2
			m.f.Wait(kt, 2, -1)
		}
		if m.f.Word == 0 {
			m.f.Word = 2 // we may not be alone; stay conservative
			m.owner = pt
			return
		}
	}
}

// Unlock releases the mutex. Under glibcv, if waiters exist, ownership is
// transferred directly to the first of them (no barging).
func (m *Mutex) Unlock() {
	if m.lib.Inst != nil {
		if len(m.q) > 0 {
			t := m.q[0]
			m.q = m.q[1:]
			m.owner = ptOf(t)
			m.lib.Inst.Submit(t)
			return
		}
		m.owner = nil
		return
	}
	contended := m.f.Word == 2
	m.f.Word = 0
	m.owner = nil
	if contended {
		m.f.Wake(1)
	}
}

// Owner returns the pthread currently holding the mutex (nil if free).
func (m *Mutex) Owner() *Pthread { return m.owner }

func ptOf(t *nosv.Task) *Pthread {
	pt, _ := t.Worker().KT.TLS.(*Pthread)
	return pt
}

// Cond is pthread_cond_t: a sequence-futex under the standard backend, a
// task FIFO under glibcv.
type Cond struct {
	lib *Lib
	seq *kernel.Futex
	q   []*nosv.Task
}

// NewCond returns an initialised condition variable.
func (l *Lib) NewCond() *Cond {
	return &Cond{lib: l, seq: l.K.NewFutex()}
}

// Wait atomically releases m, blocks until signalled, then reacquires m.
func (c *Cond) Wait(m *Mutex) {
	pt := c.lib.Self()
	if c.lib.Inst != nil {
		c.q = append(c.q, pt.task)
		m.Unlock()
		c.lib.Inst.Pause(pt.task)
		m.Lock()
		return
	}
	s := c.seq.Word
	m.Unlock()
	c.seq.Wait(pt.KT, s, -1)
	m.Lock()
}

// TimedWait is Wait with a timeout; it reports true if the wait timed out.
func (c *Cond) TimedWait(m *Mutex, d sim.Duration) (timedOut bool) {
	pt := c.lib.Self()
	if c.lib.Inst != nil {
		c.q = append(c.q, pt.task)
		m.Unlock()
		early := c.lib.Inst.Waitfor(pt.task, d)
		if !early {
			// Timed out: withdraw from the queue if still there.
			for i, t := range c.q {
				if t == pt.task {
					copy(c.q[i:], c.q[i+1:])
					c.q = c.q[:len(c.q)-1]
					break
				}
			}
		}
		m.Lock()
		return !early
	}
	s := c.seq.Word
	m.Unlock()
	res := c.seq.Wait(pt.KT, s, d)
	m.Lock()
	return res == kernel.WaitTimedOut
}

// Signal wakes one waiter.
func (c *Cond) Signal() {
	if c.lib.Inst != nil {
		if len(c.q) > 0 {
			t := c.q[0]
			c.q = c.q[1:]
			c.lib.Inst.Submit(t)
		}
		return
	}
	c.seq.Word++
	c.seq.Wake(1)
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast() {
	if c.lib.Inst != nil {
		q := c.q
		c.q = nil
		for _, t := range q {
			c.lib.Inst.Submit(t)
		}
		return
	}
	c.seq.Word++
	c.seq.Wake(1 << 30)
}

// Barrier is pthread_barrier_t.
type Barrier struct {
	lib   *Lib
	n     int
	count int
	genF  *kernel.Futex
	q     []*nosv.Task
}

// NewBarrier returns a barrier for n participants.
func (l *Lib) NewBarrier(n int) *Barrier {
	return &Barrier{lib: l, n: n, genF: l.K.NewFutex()}
}

// Wait blocks until n threads have arrived; the last arrival gets true
// (PTHREAD_BARRIER_SERIAL_THREAD).
func (b *Barrier) Wait() (serial bool) {
	pt := b.lib.Self()
	b.count++
	if b.count == b.n {
		b.count = 0
		if b.lib.Inst != nil {
			q := b.q
			b.q = nil
			for _, t := range q {
				b.lib.Inst.Submit(t)
			}
		} else {
			b.genF.Word++
			b.genF.Wake(1 << 30)
		}
		return true
	}
	if b.lib.Inst != nil {
		b.q = append(b.q, pt.task)
		b.lib.Inst.Pause(pt.task)
		return false
	}
	gen := b.genF.Word
	for b.genF.Word == gen {
		b.genF.Wait(pt.KT, gen, -1)
	}
	return false
}

// Sem is sem_t.
type Sem struct {
	lib *Lib
	val int
	f   *kernel.Futex
	q   []*nosv.Task
}

// NewSem returns a semaphore with the given initial value.
func (l *Lib) NewSem(initial int) *Sem {
	s := &Sem{lib: l, val: initial, f: l.K.NewFutex()}
	s.f.Word = int32(initial)
	return s
}

// Post increments the semaphore, waking one waiter.
func (s *Sem) Post() {
	s.val++
	s.f.Word = int32(s.val)
	if s.lib.Inst != nil {
		if len(s.q) > 0 {
			t := s.q[0]
			s.q = s.q[1:]
			s.lib.Inst.Submit(t)
		}
		return
	}
	s.f.Wake(1)
}

// Wait decrements the semaphore, blocking while it is zero.
func (s *Sem) Wait() {
	pt := s.lib.Self()
	for s.val == 0 {
		if s.lib.Inst != nil {
			s.q = append(s.q, pt.task)
			s.lib.Inst.Pause(pt.task)
			continue
		}
		s.f.Wait(pt.KT, 0, -1)
	}
	s.val--
	s.f.Word = int32(s.val)
}

// TryWait decrements without blocking; reports whether it succeeded.
func (s *Sem) TryWait() bool {
	if s.val == 0 {
		return false
	}
	s.val--
	s.f.Word = int32(s.val)
	return true
}

// Value returns the current count (sem_getvalue).
func (s *Sem) Value() int { return s.val }
