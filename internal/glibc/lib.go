// Package glibc models the C library layer of the paper's system: the
// pthread API (create/join/exit, mutex, condition variable, barrier,
// semaphore), sleeping, yielding, affinity management, and poll — each
// with two interchangeable backends:
//
//   - standard: futex-based, directly on the simulated kernel (stock
//     glibc behaviour);
//   - USF ("glibcv"): every pthread becomes a nOS-V worker with a bound
//     task; blocking APIs park tasks in per-object FIFO queues and hand
//     the core to the next scheduled task (paper §4.2-4.3, Listing 1).
//
// Whether a process runs glibcv is decided at process start by the
// USF_ENABLE environment variable, exactly like the paper's `chrt -c`.
package glibc

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/nosv"
	"repro/internal/sim"
)

// Stats counts glibc-level activity.
type Stats struct {
	ThreadsCreated int64
	CacheHits      int64 // pthread_create served from the thread cache
	CacheMisses    int64
	Joins          int64
	Yields         int64
}

// Lib is one process's C library instance.
type Lib struct {
	K    *kernel.Kernel
	Proc *kernel.Process
	// Inst is the nOS-V segment; non-nil means the USF backend
	// (glibcv) is active for this process.
	Inst *nosv.Instance
	// CacheEnabled turns the Dice & Kogan thread cache on (§4.3.1).
	CacheEnabled bool
	// TaskAwareIO enables the TASIO extension: BlockingIO releases the
	// nOS-V core during the wait (§7 future work).
	TaskAwareIO bool

	cache    []*Pthread // MRU stack of parked, reusable workers
	shutdown bool

	Stats Stats
}

// Options configures process startup.
type Options struct {
	// USF enables the glibcv backend (the process "enters SCHED_COOP").
	USF bool
	// SegmentKey selects the nOS-V shared-memory segment. Empty means
	// the default system-wide segment.
	SegmentKey string
	// Policy creates the scheduling policy if this process is the first
	// to open the segment. nil falls back to nosv.NewFIFO.
	Policy func() nosv.Policy
	// ThreadCache enables pthread caching and reuse (default on when
	// USF is on; ignored otherwise). Set DisableThreadCache to turn it
	// off for ablations.
	DisableThreadCache bool
	// TaskAwareIO enables the TASIO blocking-I/O extension under USF.
	TaskAwareIO bool
	// Nice is the default nice value for the process's threads.
	Nice int
	// Affinity is the process cpuset (resource-partitioning baselines).
	Affinity kernel.Mask
	// UID/GID are the process credentials (nOS-V segment security).
	UID, GID int
}

// NewLib attaches a C library instance to proc. Most callers should use
// StartProcess instead.
func NewLib(k *kernel.Kernel, proc *kernel.Process, opts Options) (*Lib, error) {
	l := &Lib{K: k, Proc: proc}
	proc.DefaultNice = opts.Nice
	proc.DefaultAffinity = opts.Affinity.Clone()
	proc.UID, proc.GID = opts.UID, opts.GID
	if opts.USF {
		proc.Env["USF_ENABLE"] = "1"
		key := opts.SegmentKey
		if key == "" {
			key = "nosv-default"
		}
		pol := opts.Policy
		if pol == nil {
			pol = func() nosv.Policy { return nosv.NewFIFO() }
		}
		in, err := nosv.OpenSegment(k, key, proc, pol)
		if err != nil {
			return nil, err
		}
		l.Inst = in
		l.CacheEnabled = !opts.DisableThreadCache
		l.TaskAwareIO = opts.TaskAwareIO
	}
	proc.Local["glibc"] = l
	return l, nil
}

// StartProcess creates a process, attaches a Lib, and launches its main
// thread running main. When main returns the library shuts down: cached
// workers are destroyed and the process disconnects from nOS-V.
func StartProcess(k *kernel.Kernel, name string, opts Options, main func(l *Lib)) (*Lib, error) {
	proc := k.NewProcess(name)
	l, err := NewLib(k, proc, opts)
	if err != nil {
		return nil, err
	}
	pt := &Pthread{lib: l, doneF: k.NewFutex()}
	pt.KT = k.SpawnThread(proc, name+"/main", func(kt *kernel.Thread) {
		kt.TLS = pt
		if l.Inst != nil {
			pt.task = l.Inst.Attach(kt, proc.PID, name+"/main")
			pt.worker = pt.task.Worker()
		}
		runUser(pt, func() { main(l) })
		l.Shutdown()
		pt.doneF.Word = 1
		pt.doneF.Wake(1 << 30)
		if l.Inst != nil {
			l.Inst.Complete(pt.task)
			l.Inst.Detach(pt.task)
		}
		// exit(2): tear down any threads the application leaked
		// (runtime pools it never shut down).
		for _, th := range proc.Threads() {
			if th != kt {
				th.Kill()
			}
		}
	})
	return l, nil
}

// USF reports whether the glibcv backend is active.
func (l *Lib) USF() bool { return l.Inst != nil }

// Self returns the calling thread's pthread handle.
func (l *Lib) Self() *Pthread {
	kt := l.K.Current()
	if kt == nil {
		panic("glibc: Self called outside thread context")
	}
	pt, _ := kt.TLS.(*Pthread)
	if pt == nil {
		panic(fmt.Sprintf("glibc: %v has no pthread state", kt))
	}
	return pt
}

// Pthread is a pthread_t: the thread handle plus the paper's extensions
// (the bound nOS-V task and the stored user affinity hint).
type Pthread struct {
	lib    *Lib
	KT     *kernel.Thread
	task   *nosv.Task
	worker *nosv.Worker

	userAffinity    kernel.Mask
	hasUserAffinity bool

	doneF       *kernel.Futex // 0 = running, 1 = finished
	joinWaiters []*nosv.Task  // USF-mode joiners
	retval      any
	detached    bool
}

// Task returns the pthread's bound nOS-V task (nil under the standard
// backend).
func (pt *Pthread) Task() *nosv.Task { return pt.task }

// ptExit is the pthread_exit unwinding sentinel.
type ptExit struct{ val any }

// runUser executes a user thread function, absorbing PthreadExit unwinds.
func runUser(pt *Pthread, fn func()) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(ptExit); ok {
				pt.retval = e.val
				return
			}
			panic(r)
		}
	}()
	fn()
}

// PthreadExit terminates the calling thread, unwinding to its create
// wrapper, with val as the join value.
func (l *Lib) PthreadExit(val any) {
	panic(ptExit{val})
}

// Thread lifecycle costs: a real pthread_create clones a kernel thread and
// maps a stack (~tens of µs); reusing a cached glibcv thread is a task
// rebind plus a futex wake.
const (
	threadCreateCost = 14 * sim.Microsecond
	threadStartCost  = 5 * sim.Microsecond // first-run overhead in the child
	cacheReuseCost   = 1500 * sim.Nanosecond
)

// PthreadCreate starts a new thread running fn. Under glibcv the thread is
// recruited as a nOS-V worker (it cannot run until the scheduler places
// its task), and completed threads are cached and reused (§4.3.1).
func (l *Lib) PthreadCreate(name string, fn func()) *Pthread {
	l.Stats.ThreadsCreated++
	if l.Inst == nil {
		l.Compute(threadCreateCost)
		pt := &Pthread{lib: l, doneF: l.K.NewFutex()}
		pt.KT = l.K.SpawnThread(l.Proc, name, func(kt *kernel.Thread) {
			kt.TLS = pt
			kt.Compute(threadStartCost)
			runUser(pt, fn)
			pt.finish()
		})
		return pt
	}
	// glibcv path.
	if l.CacheEnabled && len(l.cache) > 0 {
		l.Stats.CacheHits++
		old := l.cache[len(l.cache)-1] // most recently cached first
		l.cache = l.cache[:len(l.cache)-1]
		l.Compute(cacheReuseCost)
		pt := &Pthread{lib: l, KT: old.KT, worker: old.worker, doneF: l.K.NewFutex()}
		pt.task = l.Inst.NewTask(pt.worker, l.Proc.PID, name)
		pt.KT.TLS = pt
		pt.worker.PendingFn = fn
		l.Inst.Submit(pt.task)
		return pt
	}
	l.Stats.CacheMisses++
	l.Compute(threadCreateCost)
	pt := &Pthread{lib: l, doneF: l.K.NewFutex()}
	pt.KT = l.K.SpawnThread(l.Proc, name, func(kt *kernel.Thread) {
		kt.Compute(threadStartCost)
		l.workerLoop(kt)
	})
	pt.worker = l.Inst.NewWorker(pt.KT)
	pt.task = l.Inst.NewTask(pt.worker, l.Proc.PID, name)
	pt.KT.TLS = pt
	pt.worker.PendingFn = fn
	l.Inst.Submit(pt.task)
	return pt
}

// workerLoop is the glibcv thread body: park until the bound task is
// placed, run the user function, publish completion, then return to the
// cache (or exit on shutdown). The worker object is stable across cache
// reuse; the Pthread handle is re-read after every wake because each
// pthread_create binds a fresh handle (and task) to the cached worker.
func (l *Lib) workerLoop(kt *kernel.Thread) {
	w := kt.TLS.(*Pthread).worker
	for {
		l.Inst.ParkWorker(w)
		pt := kt.TLS.(*Pthread)
		if w.Shutdown {
			l.Inst.Detach(w.Task())
			return
		}
		fn := w.PendingFn
		w.PendingFn = nil
		runUser(pt, fn)
		pt.finish()
		if l.CacheEnabled && !l.shutdown {
			l.cache = append(l.cache, pt)
			l.Inst.Complete(pt.task)
			continue
		}
		l.Inst.Complete(pt.task)
		l.Inst.Detach(pt.task)
		return
	}
}

// finish publishes thread completion to joiners.
func (pt *Pthread) finish() {
	pt.doneF.Word = 1
	if pt.lib.Inst != nil {
		for _, w := range pt.joinWaiters {
			pt.lib.Inst.Submit(w)
		}
		pt.joinWaiters = nil
		return
	}
	pt.doneF.Wake(1 << 30)
}

// PthreadJoin blocks until pt finishes and returns its exit value.
func (l *Lib) PthreadJoin(pt *Pthread) any {
	l.Stats.Joins++
	self := l.Self()
	if l.Inst != nil {
		for pt.doneF.Word == 0 {
			pt.joinWaiters = append(pt.joinWaiters, self.task)
			l.Inst.Pause(self.task)
		}
		return pt.retval
	}
	for pt.doneF.Word == 0 {
		pt.doneF.Wait(self.KT, 0, -1)
	}
	return pt.retval
}

// PthreadDetach marks the thread detached (no join expected).
func (l *Lib) PthreadDetach(pt *Pthread) { pt.detached = true }

// Shutdown drains the thread cache and disconnects from nOS-V (the tail
// of the paper's process-termination path, §4.3.3).
func (l *Lib) Shutdown() {
	l.shutdown = true
	if l.Inst == nil {
		return
	}
	for _, pt := range l.cache {
		l.Inst.WakeForShutdown(pt.worker)
	}
	l.cache = nil
	l.Inst.DisconnectProcess(l.Proc.PID)
}

// SchedYield implements sched_yield: under glibcv it becomes a nOS-V yield
// (an immediate, targeted switch); otherwise the kernel's lazy yield.
func (l *Lib) SchedYield() {
	l.Stats.Yields++
	self := l.Self()
	if l.Inst != nil {
		l.Inst.Yield(self.task)
		return
	}
	self.KT.Yield()
}

// Sleep blocks the calling thread for d. Under glibcv the core is handed
// over via nosv_waitfor.
func (l *Lib) Sleep(d sim.Duration) {
	self := l.Self()
	if l.Inst != nil {
		l.Inst.Waitfor(self.task, d)
		return
	}
	self.KT.Nanosleep(d)
}

// SetAffinity implements pthread_setaffinity_np. Under USF the mask is
// stored as a hint and not applied (§4.3.2), preserving nOS-V's placement;
// otherwise it is applied to the kernel thread.
func (l *Lib) SetAffinity(pt *Pthread, m kernel.Mask) {
	pt.userAffinity = m.Clone()
	pt.hasUserAffinity = true
	if l.Inst != nil {
		return
	}
	pt.KT.SetAffinity(m)
}

// GetAffinity implements pthread_getaffinity_np: under USF it returns the
// stored hint so applications see what they asked for.
func (l *Lib) GetAffinity(pt *Pthread) kernel.Mask {
	if l.Inst != nil && pt.hasUserAffinity {
		return pt.userAffinity.Clone()
	}
	if l.Inst != nil {
		return kernel.Mask{}
	}
	return pt.KT.Affinity()
}

// Compute is a convenience passthrough so workloads hold one handle.
func (l *Lib) Compute(d sim.Duration) { l.Self().KT.Compute(d) }

// ComputeOpts is Compute with bandwidth/footprint qualifiers.
func (l *Lib) ComputeOpts(d sim.Duration, o kernel.ComputeOpts) {
	l.Self().KT.ComputeOpts(d, o)
}

// CachedThreads reports the current thread-cache depth.
func (l *Lib) CachedThreads() int { return len(l.cache) }
