package glibc

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// ioStack runs two coop tasks on a single core, each doing compute + I/O,
// and returns the makespan. With TASIO the I/O waits overlap the other
// task's compute; without, the core stalls during I/O (§5.6).
func ioStack(t *testing.T, tasio bool) sim.Time {
	t.Helper()
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = 1
	cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
	eng := sim.NewEngine(1)
	k := kernel.New(eng, cfg, kernel.DefaultSchedParams())
	var makespan sim.Time
	mustStart(t, k, "app", Options{USF: true, TaskAwareIO: tasio}, func(l *Lib) {
		var pts []*Pthread
		for i := 0; i < 2; i++ {
			pts = append(pts, l.PthreadCreate("w", func() {
				for j := 0; j < 4; j++ {
					l.Compute(2 * sim.Millisecond)
					l.BlockingIO(2 * sim.Millisecond)
				}
			}))
		}
		for _, pt := range pts {
			l.PthreadJoin(pt)
		}
		makespan = k.Eng.Now()
	})
	mustRun(t, eng)
	return makespan
}

func TestTASIOOverlapsIOWithCompute(t *testing.T) {
	without := ioStack(t, false)
	with := ioStack(t, true)
	// Without TASIO: each task's I/O stalls the single nOS-V slot, so
	// the two tasks fully serialise: ~2*(4*(2+2)) = 32ms.
	// With TASIO: I/O of one task overlaps compute of the other:
	// ~4*(2+2)+2 = ~18ms.
	if with >= without {
		t.Fatalf("TASIO makespan %v >= plain %v; I/O not overlapped", with, without)
	}
	if without < sim.Time(30*sim.Millisecond) {
		t.Fatalf("plain USF makespan %v; I/O stall (core held) not modelled", without)
	}
	if with > sim.Time(24*sim.Millisecond) {
		t.Fatalf("TASIO makespan %v too slow; cores not recycled", with)
	}
}

func TestBlockingIOStandardBackendFreesCore(t *testing.T) {
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = 1
	cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
	eng := sim.NewEngine(1)
	k := kernel.New(eng, cfg, kernel.DefaultSchedParams())
	var makespan sim.Time
	mustStart(t, k, "app", Options{}, func(l *Lib) {
		var pts []*Pthread
		for i := 0; i < 2; i++ {
			pts = append(pts, l.PthreadCreate("w", func() {
				for j := 0; j < 4; j++ {
					l.Compute(2 * sim.Millisecond)
					l.BlockingIO(2 * sim.Millisecond)
				}
			}))
		}
		for _, pt := range pts {
			l.PthreadJoin(pt)
		}
		makespan = k.Eng.Now()
	})
	mustRun(t, eng)
	// The kernel overlaps one thread's sleep with the other's compute.
	if makespan > sim.Time(26*sim.Millisecond) {
		t.Fatalf("standard backend makespan %v; sleep must free the core", makespan)
	}
}

func TestRWLockSharedReaders(t *testing.T) {
	forBothBackends(t, 4, func(t *testing.T, eng *sim.Engine, k *kernel.Kernel, opts Options) {
		var concurrent, maxConcurrent int
		mustStart(t, k, "app", opts, func(l *Lib) {
			rw := l.NewRWLock()
			var pts []*Pthread
			for i := 0; i < 4; i++ {
				pts = append(pts, l.PthreadCreate("r", func() {
					rw.RLock()
					concurrent++
					if concurrent > maxConcurrent {
						maxConcurrent = concurrent
					}
					l.Compute(2 * sim.Millisecond)
					concurrent--
					rw.RUnlock()
				}))
			}
			for _, pt := range pts {
				l.PthreadJoin(pt)
			}
		})
		mustRun(t, eng)
		if maxConcurrent < 2 {
			t.Fatalf("maxConcurrent readers = %d, want >= 2", maxConcurrent)
		}
	})
}

func TestRWLockWriterExclusion(t *testing.T) {
	forBothBackends(t, 4, func(t *testing.T, eng *sim.Engine, k *kernel.Kernel, opts Options) {
		writing, violation := false, false
		mustStart(t, k, "app", opts, func(l *Lib) {
			rw := l.NewRWLock()
			var pts []*Pthread
			for i := 0; i < 2; i++ {
				pts = append(pts, l.PthreadCreate("w", func() {
					for j := 0; j < 3; j++ {
						rw.Lock()
						if writing {
							violation = true
						}
						writing = true
						l.Compute(500 * sim.Microsecond)
						writing = false
						rw.Unlock()
					}
				}))
			}
			for i := 0; i < 3; i++ {
				pts = append(pts, l.PthreadCreate("r", func() {
					for j := 0; j < 3; j++ {
						rw.RLock()
						if writing {
							violation = true
						}
						l.Compute(300 * sim.Microsecond)
						rw.RUnlock()
					}
				}))
			}
			for _, pt := range pts {
				l.PthreadJoin(pt)
			}
		})
		mustRun(t, eng)
		if violation {
			t.Fatal("reader or writer overlapped an active writer")
		}
	})
}

func TestRWLockWriterNotStarved(t *testing.T) {
	forBothBackends(t, 4, func(t *testing.T, eng *sim.Engine, k *kernel.Kernel, opts Options) {
		var writerDone sim.Time
		mustStart(t, k, "app", opts, func(l *Lib) {
			rw := l.NewRWLock()
			var pts []*Pthread
			// A stream of readers...
			for i := 0; i < 4; i++ {
				pts = append(pts, l.PthreadCreate("r", func() {
					for j := 0; j < 10; j++ {
						rw.RLock()
						l.Compute(500 * sim.Microsecond)
						rw.RUnlock()
					}
				}))
			}
			// ...must not starve this writer indefinitely.
			pts = append(pts, l.PthreadCreate("w", func() {
				l.Compute(1 * sim.Millisecond) // arrive amid readers
				rw.Lock()
				writerDone = k.Eng.Now()
				rw.Unlock()
			}))
			for _, pt := range pts {
				l.PthreadJoin(pt)
			}
		})
		mustRun(t, eng)
		if writerDone == 0 || writerDone > sim.Time(10*sim.Millisecond) {
			t.Fatalf("writer acquired at %v; writer preference missing", writerDone)
		}
	})
}
