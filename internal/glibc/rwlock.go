package glibc

import (
	"repro/internal/kernel"
	"repro/internal/nosv"
)

// RWLock is pthread_rwlock_t: shared readers, exclusive writers, with
// writer preference (a waiting writer blocks new readers, the glibc
// PTHREAD_RWLOCK_PREFER_WRITER_NONRECURSIVE_NP shape that avoids writer
// starvation). The standard backend parks on a futex; glibcv parks tasks
// in FIFO queues and hands ownership over directly.
type RWLock struct {
	lib *Lib

	readers  int
	writer   bool
	writersQ int // writers waiting (blocks new readers)
	f        *kernel.Futex
	readQ    []*nosv.Task
	writeQ   []*nosv.Task
}

// NewRWLock returns an initialised rwlock.
func (l *Lib) NewRWLock() *RWLock {
	return &RWLock{lib: l, f: l.K.NewFutex()}
}

// RLock acquires the lock shared.
func (rw *RWLock) RLock() {
	pt := rw.lib.Self()
	for rw.writer || rw.writersQ > 0 {
		if rw.lib.Inst != nil {
			rw.readQ = append(rw.readQ, pt.task)
			rw.lib.Inst.Pause(pt.task)
			continue
		}
		rw.f.Word = 1
		rw.f.Wait(pt.KT, 1, -1)
	}
	rw.readers++
}

// RUnlock releases a shared hold.
func (rw *RWLock) RUnlock() {
	rw.readers--
	if rw.readers == 0 {
		rw.release()
	}
}

// Lock acquires the lock exclusively.
func (rw *RWLock) Lock() {
	pt := rw.lib.Self()
	rw.writersQ++
	for rw.writer || rw.readers > 0 {
		if rw.lib.Inst != nil {
			rw.writeQ = append(rw.writeQ, pt.task)
			rw.lib.Inst.Pause(pt.task)
			continue
		}
		rw.f.Word = 1
		rw.f.Wait(pt.KT, 1, -1)
	}
	rw.writersQ--
	rw.writer = true
}

// Unlock releases an exclusive hold.
func (rw *RWLock) Unlock() {
	rw.writer = false
	rw.release()
}

// release wakes the next holder(s): one writer first, else all readers.
func (rw *RWLock) release() {
	if rw.lib.Inst != nil {
		if len(rw.writeQ) > 0 {
			t := rw.writeQ[0]
			rw.writeQ = rw.writeQ[1:]
			rw.lib.Inst.Submit(t)
			return
		}
		q := rw.readQ
		rw.readQ = nil
		for _, t := range q {
			rw.lib.Inst.Submit(t)
		}
		return
	}
	rw.f.Word = 0
	rw.f.Wake(1 << 30)
}
