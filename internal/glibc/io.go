package glibc

import "repro/internal/sim"

// BlockingIO models a blocking I/O system call (disk read, network
// receive) that completes after d of wall time without consuming CPU.
//
// Under the standard backend the thread simply sleeps in the kernel and
// the core is free. Under glibcv the call exposes the paper's §5.6
// limitation: USF does not intercept I/O syscalls, so the worker blocks
// while still owning its nOS-V core slot and the core stalls for the
// duration. Enabling the TASIO extension (Options.TaskAwareIO — the
// paper's §7 future work, after Roca et al.'s Task-Aware Storage I/O
// library) routes the wait through nosv_waitfor instead: the task
// releases its core, another task runs, and the task is resubmitted when
// the I/O completes.
func (l *Lib) BlockingIO(d sim.Duration) {
	self := l.Self()
	if l.Inst != nil && l.TaskAwareIO {
		l.Inst.Waitfor(self.task, d)
		return
	}
	// Un-intercepted blocking syscall: under glibcv the nOS-V slot stays
	// occupied (the scheduler believes the task is still running).
	self.KT.Nanosleep(d)
}
