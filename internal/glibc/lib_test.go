package glibc

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/trace"
)

// forBothBackends runs a subtest under the standard backend and glibcv.
func forBothBackends(t *testing.T, cores int, body func(t *testing.T, eng *sim.Engine, k *kernel.Kernel, opts Options)) {
	t.Helper()
	for _, mode := range []string{"standard", "usf"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			cfg := hw.SmallNode()
			cfg.Topo.CoresPerSocket = cores
			cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
			eng := sim.NewEngine(1)
			k := kernel.New(eng, cfg, kernel.DefaultSchedParams())
			opts := Options{}
			if mode == "usf" {
				opts.USF = true
			}
			body(t, eng, k, opts)
		})
	}
}

func mustStart(t *testing.T, k *kernel.Kernel, name string, opts Options, main func(l *Lib)) *Lib {
	t.Helper()
	l, err := StartProcess(k, name, opts, main)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func mustRun(t *testing.T, eng *sim.Engine) {
	t.Helper()
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateJoinReturnsValue(t *testing.T) {
	forBothBackends(t, 4, func(t *testing.T, eng *sim.Engine, k *kernel.Kernel, opts Options) {
		var got any
		mustStart(t, k, "app", opts, func(l *Lib) {
			pt := l.PthreadCreate("child", func() {
				l.Compute(2 * sim.Millisecond)
				l.PthreadExit("result")
			})
			got = l.PthreadJoin(pt)
		})
		mustRun(t, eng)
		if got != "result" {
			t.Fatalf("join value = %v, want result", got)
		}
	})
}

func TestManyThreadsAllRun(t *testing.T) {
	forBothBackends(t, 4, func(t *testing.T, eng *sim.Engine, k *kernel.Kernel, opts Options) {
		count := 0
		mustStart(t, k, "app", opts, func(l *Lib) {
			var pts []*Pthread
			for i := 0; i < 16; i++ {
				pts = append(pts, l.PthreadCreate("w", func() {
					l.Compute(1 * sim.Millisecond)
					count++
				}))
			}
			for _, pt := range pts {
				l.PthreadJoin(pt)
			}
		})
		mustRun(t, eng)
		if count != 16 {
			t.Fatalf("count = %d", count)
		}
	})
}

func TestMutexMutualExclusion(t *testing.T) {
	forBothBackends(t, 4, func(t *testing.T, eng *sim.Engine, k *kernel.Kernel, opts Options) {
		inside, maxInside, total := 0, 0, 0
		mustStart(t, k, "app", opts, func(l *Lib) {
			m := l.NewMutex()
			var pts []*Pthread
			for i := 0; i < 8; i++ {
				pts = append(pts, l.PthreadCreate("w", func() {
					for j := 0; j < 5; j++ {
						m.Lock()
						inside++
						if inside > maxInside {
							maxInside = inside
						}
						l.Compute(200 * sim.Microsecond)
						inside--
						total++
						m.Unlock()
						l.Compute(100 * sim.Microsecond)
					}
				}))
			}
			for _, pt := range pts {
				l.PthreadJoin(pt)
			}
		})
		mustRun(t, eng)
		if maxInside != 1 {
			t.Fatalf("maxInside = %d, mutual exclusion violated", maxInside)
		}
		if total != 40 {
			t.Fatalf("total = %d", total)
		}
	})
}

func TestMutexTryLock(t *testing.T) {
	forBothBackends(t, 2, func(t *testing.T, eng *sim.Engine, k *kernel.Kernel, opts Options) {
		mustStart(t, k, "app", opts, func(l *Lib) {
			m := l.NewMutex()
			if !m.TryLock() {
				t.Error("TryLock on free mutex failed")
			}
			if m.TryLock() {
				t.Error("TryLock on held mutex succeeded")
			}
			m.Unlock()
			if !m.TryLock() {
				t.Error("TryLock after unlock failed")
			}
			m.Unlock()
		})
		mustRun(t, eng)
	})
}

func TestCondSignalWakesWaiter(t *testing.T) {
	forBothBackends(t, 4, func(t *testing.T, eng *sim.Engine, k *kernel.Kernel, opts Options) {
		var wokenAt sim.Time
		mustStart(t, k, "app", opts, func(l *Lib) {
			m := l.NewMutex()
			c := l.NewCond()
			flag := false
			waiter := l.PthreadCreate("waiter", func() {
				m.Lock()
				for !flag {
					c.Wait(m)
				}
				m.Unlock()
				wokenAt = k.Eng.Now()
			})
			l.Compute(5 * sim.Millisecond)
			m.Lock()
			flag = true
			c.Signal()
			m.Unlock()
			l.PthreadJoin(waiter)
		})
		mustRun(t, eng)
		if wokenAt < sim.Time(5*sim.Millisecond) {
			t.Fatalf("woken at %v, before signal", wokenAt)
		}
	})
}

func TestCondBroadcastWakesAll(t *testing.T) {
	forBothBackends(t, 4, func(t *testing.T, eng *sim.Engine, k *kernel.Kernel, opts Options) {
		woken := 0
		mustStart(t, k, "app", opts, func(l *Lib) {
			m := l.NewMutex()
			c := l.NewCond()
			flag := false
			var pts []*Pthread
			for i := 0; i < 6; i++ {
				pts = append(pts, l.PthreadCreate("w", func() {
					m.Lock()
					for !flag {
						c.Wait(m)
					}
					m.Unlock()
					woken++
				}))
			}
			l.Compute(3 * sim.Millisecond)
			m.Lock()
			flag = true
			c.Broadcast()
			m.Unlock()
			for _, pt := range pts {
				l.PthreadJoin(pt)
			}
		})
		mustRun(t, eng)
		if woken != 6 {
			t.Fatalf("woken = %d", woken)
		}
	})
}

func TestCondTimedWaitTimesOut(t *testing.T) {
	forBothBackends(t, 2, func(t *testing.T, eng *sim.Engine, k *kernel.Kernel, opts Options) {
		var timedOut bool
		var at sim.Time
		mustStart(t, k, "app", opts, func(l *Lib) {
			m := l.NewMutex()
			c := l.NewCond()
			m.Lock()
			timedOut = c.TimedWait(m, 8*sim.Millisecond)
			m.Unlock()
			at = k.Eng.Now()
		})
		mustRun(t, eng)
		if !timedOut {
			t.Fatal("expected timeout")
		}
		if at != sim.Time(8*sim.Millisecond) {
			t.Fatalf("timed out at %v, want 8ms", at)
		}
	})
}

func TestBarrierReleasesTogether(t *testing.T) {
	forBothBackends(t, 4, func(t *testing.T, eng *sim.Engine, k *kernel.Kernel, opts Options) {
		const n = 4
		arrivals := make([]sim.Time, 0, n)
		departures := make([]sim.Time, 0, n)
		serials := 0
		mustStart(t, k, "app", opts, func(l *Lib) {
			b := l.NewBarrier(n)
			var pts []*Pthread
			for i := 0; i < n; i++ {
				i := i
				pts = append(pts, l.PthreadCreate("w", func() {
					l.Compute(sim.Duration(i+1) * sim.Millisecond)
					arrivals = append(arrivals, k.Eng.Now())
					if b.Wait() {
						serials++
					}
					departures = append(departures, k.Eng.Now())
				}))
			}
			for _, pt := range pts {
				l.PthreadJoin(pt)
			}
		})
		mustRun(t, eng)
		if serials != 1 {
			t.Fatalf("serial threads = %d, want exactly 1", serials)
		}
		lastArrival := arrivals[len(arrivals)-1]
		for _, d := range departures {
			if d < lastArrival {
				t.Fatalf("departure %v before last arrival %v", d, lastArrival)
			}
		}
	})
}

func TestSemaphoreCounts(t *testing.T) {
	forBothBackends(t, 4, func(t *testing.T, eng *sim.Engine, k *kernel.Kernel, opts Options) {
		inside, maxInside := 0, 0
		mustStart(t, k, "app", opts, func(l *Lib) {
			s := l.NewSem(2)
			var pts []*Pthread
			for i := 0; i < 6; i++ {
				pts = append(pts, l.PthreadCreate("w", func() {
					s.Wait()
					inside++
					if inside > maxInside {
						maxInside = inside
					}
					l.Compute(1 * sim.Millisecond)
					inside--
					s.Post()
				}))
			}
			for _, pt := range pts {
				l.PthreadJoin(pt)
			}
		})
		mustRun(t, eng)
		if maxInside != 2 {
			t.Fatalf("maxInside = %d, want 2 (sem value)", maxInside)
		}
	})
}

func TestSemTryWait(t *testing.T) {
	forBothBackends(t, 2, func(t *testing.T, eng *sim.Engine, k *kernel.Kernel, opts Options) {
		mustStart(t, k, "app", opts, func(l *Lib) {
			s := l.NewSem(1)
			if !s.TryWait() {
				t.Error("TryWait on positive sem failed")
			}
			if s.TryWait() {
				t.Error("TryWait on zero sem succeeded")
			}
			s.Post()
			if s.Value() != 1 {
				t.Errorf("Value = %d", s.Value())
			}
		})
		mustRun(t, eng)
	})
}

func TestSleepAndYield(t *testing.T) {
	forBothBackends(t, 2, func(t *testing.T, eng *sim.Engine, k *kernel.Kernel, opts Options) {
		var at sim.Time
		mustStart(t, k, "app", opts, func(l *Lib) {
			l.Sleep(12 * sim.Millisecond)
			l.SchedYield()
			at = k.Eng.Now()
		})
		mustRun(t, eng)
		if at < sim.Time(12*sim.Millisecond) {
			t.Fatalf("resumed at %v, want >= 12ms", at)
		}
	})
}

func TestAffinityHintSemantics(t *testing.T) {
	// Under USF, setaffinity must be recorded but NOT applied; the
	// query must return the stored mask (§4.3.2). Under the standard
	// backend it is applied for real.
	forBothBackends(t, 4, func(t *testing.T, eng *sim.Engine, k *kernel.Kernel, opts Options) {
		usf := opts.USF
		mustStart(t, k, "app", opts, func(l *Lib) {
			self := l.Self()
			want := kernel.NewMask(2)
			l.SetAffinity(self, want)
			got := l.GetAffinity(self)
			if !got.Equal(want) {
				t.Errorf("GetAffinity = %v, want %v", got, want)
			}
			if usf {
				// the real kernel mask must be nOS-V's single-core
				// pin, not the user's mask... unless they coincide;
				// check it was not *changed to* the hint by us:
				// glibcv stores, nOS-V owns the actual affinity.
				real := self.KT.Affinity()
				if real.IsEmpty() {
					t.Error("under USF nOS-V should have pinned the worker")
				}
			} else {
				l.Compute(1 * sim.Millisecond)
				if self.KT.CurrentCore() != 2 {
					t.Errorf("standard backend must apply affinity; on core %d", self.KT.CurrentCore())
				}
			}
		})
		mustRun(t, eng)
	})
}

func TestThreadCacheReuse(t *testing.T) {
	cfg := hw.SmallNode()
	cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
	eng := sim.NewEngine(1)
	k := kernel.New(eng, cfg, kernel.DefaultSchedParams())
	var lib *Lib
	mustStart(t, k, "app", Options{USF: true}, func(l *Lib) {
		lib = l
		// Sequential create+join: after the first, creates must hit
		// the cache and reuse the same kernel thread.
		var kts []*kernel.Thread
		for i := 0; i < 5; i++ {
			pt := l.PthreadCreate("w", func() {
				l.Compute(500 * sim.Microsecond)
			})
			l.PthreadJoin(pt)
			kts = append(kts, pt.KT)
		}
		for i := 2; i < len(kts); i++ {
			if kts[i] != kts[1] {
				t.Errorf("create %d did not reuse cached thread", i)
			}
		}
	})
	mustRun(t, eng)
	if lib.Stats.CacheHits < 3 {
		t.Fatalf("cache hits = %d, want >= 3", lib.Stats.CacheHits)
	}
	if k.Stats.ThreadsCreated > 4 {
		t.Fatalf("kernel threads created = %d; caching should reuse", k.Stats.ThreadsCreated)
	}
}

func TestThreadCacheDisabled(t *testing.T) {
	cfg := hw.SmallNode()
	cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
	eng := sim.NewEngine(1)
	k := kernel.New(eng, cfg, kernel.DefaultSchedParams())
	mustStart(t, k, "app", Options{USF: true, DisableThreadCache: true}, func(l *Lib) {
		for i := 0; i < 3; i++ {
			pt := l.PthreadCreate("w", func() { l.Compute(100 * sim.Microsecond) })
			l.PthreadJoin(pt)
		}
		if l.Stats.CacheHits != 0 {
			t.Errorf("cache hits = %d with cache disabled", l.Stats.CacheHits)
		}
	})
	mustRun(t, eng)
}

func TestChanSendRecv(t *testing.T) {
	forBothBackends(t, 4, func(t *testing.T, eng *sim.Engine, k *kernel.Kernel, opts Options) {
		var got []int
		mustStart(t, k, "app", opts, func(l *Lib) {
			ch := NewChan(k)
			consumer := l.PthreadCreate("consumer", func() {
				for i := 0; i < 3; i++ {
					got = append(got, ch.Recv().(int))
				}
			})
			for i := 0; i < 3; i++ {
				l.Compute(1 * sim.Millisecond)
				ch.Send(i)
			}
			l.PthreadJoin(consumer)
		})
		mustRun(t, eng)
		if len(got) != 3 || got[0] != 0 || got[2] != 2 {
			t.Fatalf("got = %v", got)
		}
	})
}

func TestPollReturnsReadyChannel(t *testing.T) {
	forBothBackends(t, 4, func(t *testing.T, eng *sim.Engine, k *kernel.Kernel, opts Options) {
		var idx int
		mustStart(t, k, "app", opts, func(l *Lib) {
			a, b := NewChan(k), NewChan(k)
			producer := l.PthreadCreate("producer", func() {
				l.Compute(7 * sim.Millisecond)
				b.Send("hello")
			})
			idx = Poll(k, []*Chan{a, b}, -1)
			l.PthreadJoin(producer)
		})
		mustRun(t, eng)
		if idx != 1 {
			t.Fatalf("Poll = %d, want 1", idx)
		}
	})
}

func TestPollTimeout(t *testing.T) {
	forBothBackends(t, 2, func(t *testing.T, eng *sim.Engine, k *kernel.Kernel, opts Options) {
		var idx int
		var at sim.Time
		mustStart(t, k, "app", opts, func(l *Lib) {
			a := NewChan(k)
			idx = Poll(k, []*Chan{a}, 9*sim.Millisecond)
			at = k.Eng.Now()
		})
		mustRun(t, eng)
		if idx != -1 {
			t.Fatalf("Poll = %d, want -1 (timeout)", idx)
		}
		if at < sim.Time(9*sim.Millisecond) || at > sim.Time(15*sim.Millisecond) {
			t.Fatalf("timed out at %v, want ~9ms", at)
		}
	})
}

func TestUSFNoKernelOversubscription(t *testing.T) {
	// 32 compute-bound pthreads on 8 cores: glibcv keeps kernel-level
	// runnable threads at <= cores, so (almost) no preemptions; the
	// standard backend preempts heavily.
	results := map[string]int64{}
	forBothBackends(t, 8, func(t *testing.T, eng *sim.Engine, k *kernel.Kernel, opts Options) {
		mustStart(t, k, "app", opts, func(l *Lib) {
			var pts []*Pthread
			for i := 0; i < 32; i++ {
				pts = append(pts, l.PthreadCreate("w", func() {
					l.Compute(30 * sim.Millisecond)
				}))
			}
			for _, pt := range pts {
				l.PthreadJoin(pt)
			}
		})
		mustRun(t, eng)
		if opts.USF {
			results["usf"] = k.Stats.Preemptions
		} else {
			results["standard"] = k.Stats.Preemptions
		}
	})
	if results["usf"]*10 >= results["standard"]+10 {
		t.Fatalf("preemptions usf=%d standard=%d; USF must virtually eliminate them",
			results["usf"], results["standard"])
	}
}

func TestMultiProcessSegmentSharing(t *testing.T) {
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = 2
	cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
	eng := sim.NewEngine(1)
	k := kernel.New(eng, cfg, kernel.DefaultSchedParams())
	done := 0
	for p := 0; p < 3; p++ {
		mustStart(t, k, "proc", Options{USF: true}, func(l *Lib) {
			var pts []*Pthread
			for i := 0; i < 4; i++ {
				pts = append(pts, l.PthreadCreate("w", func() {
					l.Compute(2 * sim.Millisecond)
				}))
			}
			for _, pt := range pts {
				l.PthreadJoin(pt)
			}
			done++
		})
	}
	mustRun(t, eng)
	if done != 3 {
		t.Fatalf("processes finished = %d", done)
	}
}

func TestKernelEmitsTrace(t *testing.T) {
	cfg := hw.SmallNode()
	cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
	eng := sim.NewEngine(1)
	k := kernel.New(eng, cfg, kernel.DefaultSchedParams())
	k.Tracer = trace.NewBuffer(0)
	mustStart(t, k, "app", Options{}, func(l *Lib) {
		pt := l.PthreadCreate("child", func() {
			l.Compute(1 * sim.Millisecond)
			l.Sleep(1 * sim.Millisecond)
			l.Compute(1 * sim.Millisecond)
		})
		l.PthreadJoin(pt)
	})
	mustRun(t, eng)
	kinds := map[trace.Kind]int{}
	sawChild := false
	for _, e := range k.Tracer.Events() {
		kinds[e.Kind]++
		if strings.Contains(e.Thread, "child") {
			sawChild = true
		}
	}
	if kinds[trace.KindRunStart] == 0 || kinds[trace.KindRunEnd] == 0 || kinds[trace.KindWake] == 0 {
		t.Fatalf("missing event kinds: %v", kinds)
	}
	if kinds[trace.KindRunStart] != kinds[trace.KindRunEnd] {
		t.Fatalf("unbalanced run slices: %v", kinds)
	}
	if !sawChild {
		t.Fatal("child thread never traced")
	}
	var buf bytes.Buffer
	if err := k.Tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty chrome trace")
	}
}
