package cluster

import (
	"errors"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Client-edge resilience: per-attempt deadlines, retries under a
// token-bucket budget, hedged requests, and passive outlier ejection.
// All state here is homed on the client engine and mutated only in its
// event context, so a resilient run is as deterministic as a plain one.
// When Config enables none of it (no retry policy, no fault plan, no
// health config), none of this state exists and the cluster follows its
// original code paths exactly.

// ErrNoLiveNodes is returned (and recorded as a request outcome) when
// every node is crashed or ejected: routing fails fast instead of
// queueing on a dead fleet.
var ErrNoLiveNodes = errors.New("cluster: no live nodes")

// HealthConfig enables passive outlier ejection at the client edge:
// after EjectAfter consecutive failed or timed-out attempts a node is
// ejected from routing for Cooldown, then re-admitted on probation —
// one more failure re-ejects it immediately, one success clears it.
// The zero value disables ejection.
type HealthConfig struct {
	// EjectAfter is the consecutive-failure threshold (0 disables).
	EjectAfter int
	// Cooldown is how long an ejected node stays out of routing.
	Cooldown sim.Duration
	// MaxEjected caps how many nodes may be ejected at once, so a
	// global overload — where every node fails attempts — cannot eject
	// the whole fleet out of routing (an ejection storm). Non-positive
	// means max(1, 10% of the fleet).
	MaxEjected int
}

// Resilience counts the client edge's fault-handling activity over a
// run. All counters are mutated on the client engine only.
type Resilience struct {
	// Retries counts re-dispatched attempts beyond each request's first.
	Retries int
	// Hedges counts hedge attempts issued; HedgeWins counts requests
	// whose winning reply came from the hedge.
	Hedges, HedgeWins int
	// Shed counts requests failed because the retry budget was empty
	// (the retry was dropped, not sent).
	Shed int
	// Timeouts counts attempts abandoned at their deadline.
	Timeouts int
	// Failed counts requests that permanently failed (all policy
	// avenues exhausted, crash with no retry, shed, or no live node).
	Failed int
	// NoLiveNode counts dispatch moments that found every node crashed
	// or ejected.
	NoLiveNode int
	// Ejections and Readmits count outlier-ejection transitions.
	Ejections, Readmits int
	// LateReplies counts replies that arrived for already-resolved
	// attempts (timed-out or hedge-loser work that finished anyway).
	LateReplies int
	// Cancelled counts attempts cancelled after their request resolved
	// elsewhere (hedge losers).
	Cancelled int
	// OrphanDone counts backend completions for unknown attempt ids —
	// cancelled or crashed work finishing on backends that cannot
	// abort.
	OrphanDone int
}

// rstate is one request's resilience state, preallocated per request
// when resilience is on. Client-engine-owned.
type rstate struct {
	// attempts counts dispatches so far; open counts attempts currently
	// in flight (≤ 2: primary + hedge).
	attempts, open int
	// done marks the request resolved (completed or failed).
	done bool
	// hedgeEv is the pending hedge timer for the first attempt.
	hedgeEv sim.Event
	// primary and hedge point at the currently open attempts (at most
	// one of each), so a winner can cancel its sibling.
	primary, hedge *flight
	// last is the most recent failed attempt, for span stamping when
	// the request ultimately fails.
	last *flight
}

// healthState is the client edge's liveness view of one node.
type healthState struct {
	c  *Cluster
	ni int
	// down is set by crash notifications (eager removal).
	down bool
	// ejected, consec, and probation implement passive outlier
	// ejection.
	ejected   bool
	consec    int
	probation bool
}

// resilient reports whether any resilience machinery is configured.
func (cfg Config) resilient() bool {
	return cfg.Retry.Enabled() || cfg.Faults != nil || cfg.Health.EjectAfter > 0
}

// available reports whether node ni is routable from the client edge's
// current view. Always true when resilience is off.
func (c *Cluster) available(ni int) bool {
	if c.hstate == nil {
		return true
	}
	h := &c.hstate[ni]
	return !h.down && !h.ejected
}

// allAvailable reports whether every node is routable — the fast path
// on which routers reproduce their original decisions byte for byte.
func (c *Cluster) allAvailable() bool {
	return c.hstate == nil || c.liveNodes == len(c.nodes)
}

// bumpEpoch advances the liveness epoch (ConsistentHash rebuilds its
// ring lazily when it observes a new epoch) and recounts live nodes.
func (c *Cluster) bumpEpoch() {
	c.healthEpoch++
	c.liveNodes = 0
	for i := range c.hstate {
		if c.available(i) {
			c.liveNodes++
		}
	}
}

// PickNode routes one request through the router's health-aware view.
// It fails fast with ErrNoLiveNodes when every node is crashed or
// ejected. Exposed for tests and custom drivers; the serving path
// reports the same condition per request via Resilience.NoLiveNode.
func (c *Cluster) PickNode(req Request) (int, error) {
	ni := c.router.Pick(req)
	if ni < 0 {
		return -1, ErrNoLiveNodes
	}
	return ni, nil
}

// recordFailure feeds the ejection state machine one failed or
// timed-out attempt on node ni. Client engine only.
func (c *Cluster) recordFailure(ni int) {
	if c.cfg.Health.EjectAfter <= 0 || c.hstate == nil {
		return
	}
	h := &c.hstate[ni]
	h.consec++
	if h.ejected || h.down {
		return
	}
	if h.consec >= c.cfg.Health.EjectAfter || h.probation {
		if c.ejectedCount >= c.maxEjected() || c.liveNodes <= 1 {
			// Ejection-storm guard: keep the node routable rather than
			// take the last of the fleet out of rotation.
			return
		}
		h.ejected = true
		h.probation = false
		c.ejectedCount++
		c.res.Ejections++
		c.bumpEpoch()
		c.Eng.AfterFunc(c.cfg.Health.Cooldown, readmitNode, h)
	}
}

// maxEjected resolves the concurrent-ejection cap.
func (c *Cluster) maxEjected() int {
	if m := c.cfg.Health.MaxEjected; m > 0 {
		return m
	}
	if m := len(c.nodes) / 10; m > 1 {
		return m
	}
	return 1
}

// recordSuccess clears node ni's failure history. Client engine only.
func (c *Cluster) recordSuccess(ni int) {
	if c.hstate == nil {
		return
	}
	h := &c.hstate[ni]
	h.consec = 0
	h.probation = false
}

// readmitNode ends one node's ejection cooldown: it rejoins routing on
// probation.
func readmitNode(arg any) {
	h := arg.(*healthState)
	if !h.ejected {
		return
	}
	h.ejected = false
	h.probation = true
	h.consec = 0
	h.c.ejectedCount--
	h.c.res.Readmits++
	h.c.bumpEpoch()
}

// dispatch issues one attempt of request rid: pick a node, arm the
// deadline and (for a first attempt) the hedge timer, and send the
// request across the link. Client engine only.
func (c *Cluster) dispatch(rid int, hedge bool) {
	now := c.Eng.Now()
	rs := &c.rs[rid]
	ni := c.router.Pick(Request{ID: rid, Session: c.session(rid)})
	if ni < 0 {
		c.res.NoLiveNode++
		if hedge {
			// No node to hedge onto; the primary attempt stands alone.
			return
		}
		c.failRequest(rid, now, obs.OutcomeNoNode)
		return
	}
	n := c.nodes[ni]
	n.dispatched++
	n.outstanding++
	rs.attempts++
	rs.open++
	f := &flight{c: c, rid: rid, aid: c.nextAid, node: ni, hedge: hedge}
	c.nextAid++
	if hedge {
		rs.hedge = f
	} else {
		rs.primary = f
	}
	if c.cfg.Retry.Timeout > 0 {
		f.timeoutEv = c.Eng.AfterFunc(c.cfg.Retry.Timeout, flightTimeout, f)
	}
	if !hedge && rs.attempts == 1 && c.cfg.Retry.HedgeDelay > 0 {
		rs.hedgeEv = c.Eng.AfterFunc(c.cfg.Retry.HedgeDelay, fireHedge, f)
	}
	d := n.reqLink.delay(now, c.cfg.Net.RequestLatency, c.cfg.Net.RequestBytes, c.cfg.Net.LinkBandwidth)
	if n.eng == c.Eng {
		c.Eng.AfterFunc(d, deliverFlight, f)
	} else {
		c.client.Send(n.shard, now.Add(d), deliverFlight, f)
	}
}

// closeAttempt resolves one attempt at the client edge exactly once:
// deadline disarmed, outstanding released. Reports false if the attempt
// was already closed.
func (c *Cluster) closeAttempt(f *flight) bool {
	if f.closed {
		return false
	}
	f.closed = true
	f.timeoutEv.Cancel()
	c.nodes[f.node].outstanding--
	rs := &c.rs[f.rid]
	rs.open--
	if rs.primary == f {
		rs.primary = nil
	} else if rs.hedge == f {
		rs.hedge = nil
	}
	return true
}

// fireHedge issues the hedge attempt if the primary is still pending.
func fireHedge(arg any) {
	f := arg.(*flight) // the primary attempt
	c := f.c
	if f.closed || c.rs[f.rid].done {
		return
	}
	c.res.Hedges++
	c.dispatch(f.rid, true)
}

// flightTimeout abandons an attempt at its deadline: the node is asked
// to cancel the work (best effort), the failure feeds ejection, and the
// request decides between retry and failure.
func flightTimeout(arg any) {
	f := arg.(*flight)
	c := f.c
	if !c.closeAttempt(f) {
		return
	}
	now := c.Eng.Now()
	c.res.Timeouts++
	c.recordFailure(f.node)
	c.cancelAtNodeLater(f, now)
	c.attemptFailed(f, now, obs.OutcomeTimeout)
}

// failFlight is a failure reply (crash or node-side shed) arriving back
// at the client edge. Runs on the client engine.
func failFlight(arg any) {
	f := arg.(*flight)
	c := f.c
	f.returned = true
	if !c.closeAttempt(f) {
		return // already timed out or cancelled locally
	}
	now := c.Eng.Now()
	c.recordFailure(f.node)
	c.attemptFailed(f, now, obs.OutcomeFailed)
}

// attemptFailed routes a failed attempt into the request's policy:
// wait for a sibling attempt, retry under the budget, or fail the
// request. Client engine only.
func (c *Cluster) attemptFailed(f *flight, now sim.Time, outcome string) {
	rs := &c.rs[f.rid]
	if rs.done {
		return
	}
	rs.last = f
	if rs.open > 0 {
		return // a sibling (hedge) attempt is still in flight
	}
	rs.hedgeEv.Cancel()
	p := c.cfg.Retry
	if !p.Enabled() || (p.MaxAttempts > 0 && rs.attempts >= p.MaxAttempts) {
		c.failRequest(f.rid, now, outcome)
		return
	}
	if p.Budget != nil && !p.Budget.Withdraw() {
		c.res.Shed++
		c.failRequest(f.rid, now, obs.OutcomeShed)
		return
	}
	c.res.Retries++
	delay := p.Backoff(rs.attempts, c.retryRNG())
	c.Eng.AfterFunc(delay, redispatch, f)
}

// redispatch fires after a retry backoff.
func redispatch(arg any) {
	f := arg.(*flight)
	if f.c.rs[f.rid].done {
		return
	}
	f.c.dispatch(f.rid, false)
}

// retryRNG returns the labelled client-engine stream backoff jitter
// draws from.
func (c *Cluster) retryRNG() *sim.Rand {
	if c.retryRand == nil {
		c.retryRand = c.Eng.Rand("cluster/retry")
	}
	return c.retryRand
}

// cancelAttempt closes a still-open attempt whose request resolved
// elsewhere (hedge loser) and asks its node to abandon the work.
func (c *Cluster) cancelAttempt(f *flight, now sim.Time) {
	if !c.closeAttempt(f) {
		return
	}
	c.res.Cancelled++
	c.cancelAtNodeLater(f, now)
}

// cancelAtNodeLater sends a best-effort cancellation to the attempt's
// node, one request-latency away. Client engine only.
func (c *Cluster) cancelAtNodeLater(f *flight, now sim.Time) {
	n := c.nodes[f.node]
	if n.eng == c.Eng {
		c.Eng.AfterFunc(c.cfg.Net.RequestLatency, cancelAtNode, f)
	} else {
		c.client.Send(n.shard, now.Add(c.cfg.Net.RequestLatency), cancelAtNode, f)
	}
}

// cancelAtNode abandons one attempt at its node, if the backend can.
// Runs on the node's engine. Backends that cannot abort finish the work
// and reply; the client edge discards the late reply.
func cancelAtNode(arg any) {
	f := arg.(*flight)
	n := f.c.nodes[f.node]
	if n.inflight[f.aid] != f {
		return // already completed, crashed away, or bounced
	}
	if ab, ok := n.backend.(abortable); ok && ab.Abort(f.aid) {
		delete(n.inflight, f.aid)
		n.meter.Failed(f.aid, n.eng.Now())
	}
}

// failRequest resolves request rid as permanently failed. Client engine
// only.
func (c *Cluster) failRequest(rid int, now sim.Time, outcome string) {
	rs := &c.rs[rid]
	if rs.done {
		return
	}
	rs.done = true
	rs.hedgeEv.Cancel()
	c.res.Failed++
	c.failedReqs++
	c.meter.Failed(rid, now)
	if c.spans != nil {
		sp := &c.spans[rid]
		sp.Outcome = outcome
		sp.Attempts = rs.attempts
		if f := rs.last; f != nil {
			sp.Node = c.nodes[f.node].Name
			// Node-side hop stamps are only causally transferred when the
			// node sent the flight back (failure reply); a timed-out
			// attempt's stamps may still be in flux on the node engine.
			if f.returned {
				sp.Arrive, sp.Start, sp.Done = f.arrive, f.start, f.done
			}
		}
	}
	c.src.Completed(rid)
	c.maybeFinish(now)
}

// replyResilient is replyFlight's resilient counterpart: the first
// reply wins the request, siblings are cancelled, late replies are
// discarded. Client engine only.
func (c *Cluster) replyResilient(f *flight, now sim.Time) {
	if f.closed {
		c.res.LateReplies++
		return
	}
	c.closeAttempt(f)
	c.recordSuccess(f.node)
	rs := &c.rs[f.rid]
	if rs.done {
		return
	}
	rs.done = true
	rs.hedgeEv.Cancel()
	c.meter.Completed(f.rid, now)
	c.completed++
	if f.hedge {
		c.res.HedgeWins++
	}
	if c.spans != nil {
		sp := &c.spans[f.rid]
		sp.Node = c.nodes[f.node].Name
		sp.Arrive, sp.Start, sp.Done = f.arrive, f.start, f.done
		sp.Reply = now
		sp.Outcome = obs.OutcomeOK
		sp.Attempts = rs.attempts
	}
	// Cancel any sibling attempt still in flight.
	if g := rs.primary; g != nil {
		c.cancelAttempt(g, now)
	}
	if g := rs.hedge; g != nil {
		c.cancelAttempt(g, now)
	}
	c.src.Completed(f.rid)
	c.maybeFinish(now)
}

// Resilience returns the run's fault-handling counters. Orphaned
// backend completions are summed across nodes; call after Run returns.
func (c *Cluster) Resilience() Resilience {
	r := c.res
	for _, n := range c.nodes {
		r.OrphanDone += n.orphans
	}
	return r
}
