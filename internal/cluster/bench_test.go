package cluster

import (
	"testing"

	"repro/internal/load"
	"repro/internal/sim"
)

// benchBackend completes requests after a fixed per-node service time
// without any simulated processes, so the benchmark isolates the
// cluster dispatch path: router pick, link accounting, network events,
// and the end-to-end/per-node meters.
type benchBackend struct {
	eng     *sim.Engine
	service sim.Duration
	done    func(id int)
}

func (b *benchBackend) Submit(id int) { b.eng.AfterFunc(b.service, b.fire, id) }
func (b *benchBackend) fire(arg any)  { b.done(arg.(int)) }
func (b *benchBackend) Stop()         {}

// benchDispatch routes reqs requests through an 8-node fleet under the
// given router and runs the engine dry.
func benchDispatch(b *testing.B, newRouter func() Router) {
	const nodes, reqs = 8, 2048
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(7)
		c := New(eng, Config{
			Net:      Network{RequestLatency: 50 * sim.Microsecond, ReplyLatency: 50 * sim.Microsecond, RequestBytes: 1 << 10, ReplyBytes: 16 << 10, LinkBandwidth: 10},
			Sessions: 64,
		}, newRouter())
		for n := 0; n < nodes; n++ {
			n := n
			c.AddNode(nodeName(n), nil, func(done func(id int)) Backend {
				return &benchBackend{eng: eng, service: sim.Duration(1+n) * sim.Millisecond, done: done}
			})
		}
		c.Serve(&load.Poisson{Rate: 5000}, reqs)
		if _, err := c.Run(0); err != nil {
			b.Fatal(err)
		}
		if c.Completed() != reqs {
			b.Fatalf("completed %d of %d", c.Completed(), reqs)
		}
	}
}

func BenchmarkClusterDispatchRoundRobin(b *testing.B) {
	benchDispatch(b, func() Router { return NewRoundRobin() })
}

func BenchmarkClusterDispatchLeastOutstanding(b *testing.B) {
	benchDispatch(b, func() Router { return NewLeastOutstanding() })
}

func BenchmarkClusterDispatchConsistentHash(b *testing.B) {
	benchDispatch(b, func() Router { return NewConsistentHash() })
}

// BenchmarkClusterDispatchSharded is the sharded counterpart of the
// dispatch benchmark: the same 8-node fleet over 4 shards, so every
// request pays two cross-shard message hops plus its slice of the
// window barriers. The delta against BenchmarkClusterDispatchRoundRobin
// is the coordination cost sharding must amortise with real per-node
// work (here the backends are free, so this is the worst case).
func BenchmarkClusterDispatchSharded(b *testing.B) {
	const nodes, shards, reqs = 8, 4, 2048
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewSharded(Config{
			Net:      Network{RequestLatency: 50 * sim.Microsecond, ReplyLatency: 50 * sim.Microsecond, RequestBytes: 1 << 10, ReplyBytes: 16 << 10, LinkBandwidth: 10},
			Sessions: 64,
		}, NewRoundRobin(), shards, 7)
		for n := 0; n < nodes; n++ {
			n := n
			c.AddNode(nodeName(n), nil, func(done func(id int)) Backend {
				return &benchBackend{eng: c.NodeEngine(n), service: sim.Duration(1+n) * sim.Millisecond, done: done}
			})
		}
		c.Serve(&load.Poisson{Rate: 5000}, reqs)
		if _, err := c.Run(0); err != nil {
			b.Fatal(err)
		}
		if c.Completed() != reqs {
			b.Fatalf("completed %d of %d", c.Completed(), reqs)
		}
	}
}
