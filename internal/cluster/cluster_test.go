package cluster

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stack"
)

// stubBackend is a single-server queue with a fixed service time,
// driven purely by engine events — no simulated processes — so
// router/network behaviour can be tested in isolation.
type stubBackend struct {
	eng       *sim.Engine
	service   sim.Duration
	done      func(id int)
	started   func(id int) // optional span service-start hook
	served    int
	stopped   bool
	busyUntil sim.Time
}

func (b *stubBackend) Submit(id int) {
	b.served++
	start := b.eng.Now()
	if b.busyUntil > start {
		start = b.busyUntil
	}
	b.busyUntil = start.Add(b.service)
	if b.started != nil {
		b.eng.At(start, func() { b.started(id) })
	}
	b.eng.At(b.busyUntil, func() { b.done(id) })
}

func (b *stubBackend) Stop() { b.stopped = true }

// stubCluster wires n stub nodes with the given service times onto a
// fresh engine.
func stubCluster(t *testing.T, cfg Config, r Router, service []sim.Duration) (*Cluster, []*stubBackend) {
	t.Helper()
	eng := sim.NewEngine(1)
	c := New(eng, cfg, r)
	backends := make([]*stubBackend, len(service))
	for i, s := range service {
		i, s := i, s
		c.AddNode(nodeName(i), nil, func(done func(id int)) Backend {
			backends[i] = &stubBackend{eng: eng, service: s, done: done}
			return backends[i]
		})
	}
	return c, backends
}

func nodeName(i int) string { return string(rune('a'+i)) + "-node" }

// shardedStubCluster mirrors stubCluster over NewSharded: each stub
// backend is built on its node's own engine (NodeEngine), so it works
// for any shard count including 1.
func shardedStubCluster(t *testing.T, cfg Config, r Router, shards int, service []sim.Duration) (*Cluster, []*stubBackend) {
	t.Helper()
	c := NewSharded(cfg, r, shards, 1)
	backends := make([]*stubBackend, len(service))
	for i, s := range service {
		i, s := i, s
		c.AddNode(nodeName(i), nil, func(done func(id int)) Backend {
			backends[i] = &stubBackend{eng: c.NodeEngine(i), service: s, done: done, started: c.StartedFunc(i)}
			return backends[i]
		})
	}
	return c, backends
}

// shardNet is a network with real propagation delays in both directions
// (sharded mode derives its lookahead from them) plus finite link
// bandwidth so serialisation state is exercised across shards too.
var shardNet = Network{
	RequestLatency: 2 * sim.Millisecond,
	ReplyLatency:   3 * sim.Millisecond,
	RequestBytes:   1 << 10,
	ReplyBytes:     16 << 10,
	LinkBandwidth:  10,
}

func TestShardedMatchesSharedEngine(t *testing.T) {
	// The same fleet and workload must produce identical stats for any
	// shard count — including the end-to-end meter, per-node meters,
	// dispatch counts, and merged percentiles — and identical Elapsed.
	service := []sim.Duration{2 * sim.Millisecond, 7 * sim.Millisecond, 3 * sim.Millisecond, 5 * sim.Millisecond}
	run := func(shards int) (Stats, sim.Duration) {
		c, backends := shardedStubCluster(t, Config{Net: shardNet, SLO: 40 * sim.Millisecond, Sessions: 6},
			NewLeastOutstanding(), shards, service)
		c.Serve(&load.Bursty{Base: 200, Burst: 2000, MeanDwell: 10 * sim.Millisecond}, 120)
		if _, err := c.Run(0); err != nil {
			t.Fatal(err)
		}
		if c.Completed() != 120 {
			t.Fatalf("%d shards: completed %d of 120", shards, c.Completed())
		}
		for i, b := range backends {
			if !b.stopped {
				t.Fatalf("%d shards: backend %d not stopped", shards, i)
			}
		}
		return c.Stats(), c.Elapsed()
	}
	ref, refElapsed := run(1)
	for _, shards := range []int{2, 3, 4, 7} {
		got, gotElapsed := run(shards)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("%d shards diverged from shared engine:\n%+v\nvs\n%+v", shards, got, ref)
		}
		if gotElapsed != refElapsed {
			t.Fatalf("%d shards elapsed %v, want %v", shards, gotElapsed, refElapsed)
		}
	}
}

func TestShardedHorizonTimesOut(t *testing.T) {
	c, _ := shardedStubCluster(t, Config{Net: shardNet}, NewRoundRobin(), 3,
		[]sim.Duration{sim.Second, sim.Second, sim.Second})
	c.Serve(&load.Replay{}, 10)
	timedOut, err := c.Run(100 * sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Fatal("horizon not reported")
	}
	if got := c.Stats().EndToEnd.Completed; got != 0 {
		t.Fatalf("completed %d before horizon, want 0", got)
	}
}

func TestShardedNeedsPositiveLatency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-latency sharded cluster accepted")
		}
	}()
	NewSharded(Config{Net: Network{ReplyLatency: sim.Millisecond}}, NewRoundRobin(), 2, 1)
}

func TestShardedOneShardIsSharedEngine(t *testing.T) {
	c := NewSharded(Config{}, NewRoundRobin(), 1, 1)
	if c.group != nil || c.Shards() != 1 {
		t.Fatal("shards=1 did not degenerate to the shared-engine path")
	}
	if c.NodeEngine(3) != c.Eng {
		t.Fatal("NodeEngine != Eng on the shared-engine path")
	}
}

func TestAddNodeRejectsWrongEngine(t *testing.T) {
	// Passed through stack.System's engine check: a node system built on
	// a foreign engine must be rejected before it can race a shard.
	c := NewSharded(Config{Net: shardNet}, NewRoundRobin(), 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("node on wrong engine accepted")
		}
	}()
	wrong := &stack.System{Eng: sim.NewEngine(99)} // node 0 homes on shard 0's engine
	c.AddNode("x-node", wrong, func(done func(id int)) Backend {
		return &stubBackend{}
	})
}

func TestRoundRobinSpreadsEvenly(t *testing.T) {
	c, backends := stubCluster(t, Config{}, NewRoundRobin(),
		[]sim.Duration{sim.Millisecond, sim.Millisecond, sim.Millisecond})
	c.Serve(&load.Replay{}, 9) // all at t=0
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	for i, ns := range st.Nodes {
		if ns.Dispatched != 3 {
			t.Fatalf("node %d dispatched %d, want 3", i, ns.Dispatched)
		}
	}
	if st.Imbalance != 1.0 {
		t.Fatalf("imbalance = %v, want 1.0", st.Imbalance)
	}
	if st.EndToEnd.Completed != 9 || c.Completed() != 9 {
		t.Fatalf("completed %d, want 9", st.EndToEnd.Completed)
	}
	for _, b := range backends {
		if !b.stopped {
			t.Fatal("backend not stopped after final reply")
		}
	}
}

func TestLeastOutstandingAvoidsSlowNode(t *testing.T) {
	// Node 0 is 100x slower; load-aware routing must shift work away
	// from it once its queue builds, while round-robin keeps feeding it.
	service := []sim.Duration{100 * sim.Millisecond, sim.Millisecond, sim.Millisecond}
	run := func(r Router) Stats {
		c, _ := stubCluster(t, Config{}, r, service)
		src := &load.Poisson{Rate: 2000} // 0.5 ms mean gap: queues form on the slow node
		c.Serve(src, 200)
		if _, err := c.Run(0); err != nil {
			t.Fatal(err)
		}
		return c.Stats()
	}
	lo := run(NewLeastOutstanding())
	rr := run(NewRoundRobin())
	if lo.Nodes[0].Dispatched >= rr.Nodes[0].Dispatched {
		t.Fatalf("least-outstanding fed the slow node %d, round-robin %d",
			lo.Nodes[0].Dispatched, rr.Nodes[0].Dispatched)
	}
	if lo.EndToEnd.P99 >= rr.EndToEnd.P99 {
		t.Fatalf("least-outstanding p99 %v >= round-robin %v", lo.EndToEnd.P99, rr.EndToEnd.P99)
	}
}

func TestConsistentHashPinsSessions(t *testing.T) {
	c, _ := stubCluster(t, Config{Sessions: 5}, NewConsistentHash(),
		[]sim.Duration{sim.Millisecond, sim.Millisecond, sim.Millisecond})
	seen := make(map[uint64]int) // session -> node
	// Wrap the router to observe picks.
	ch := c.Router().(*ConsistentHash)
	c.Serve(&load.Poisson{Rate: 100}, 50)
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 50; id++ {
		sess := c.session(id)
		node := ch.Pick(Request{ID: id, Session: sess})
		if prev, ok := seen[sess]; ok && prev != node {
			t.Fatalf("session %d moved between nodes %d and %d", sess, prev, node)
		}
		seen[sess] = node
	}
	if len(seen) != 5 {
		t.Fatalf("sessions seen = %d, want 5", len(seen))
	}
}

func TestNetworkLatencyAndSerialisation(t *testing.T) {
	// One node, one request: end-to-end latency must be request hop +
	// service + reply hop, with serialisation added when bandwidth is
	// finite.
	net := Network{
		RequestLatency: 2 * sim.Millisecond,
		ReplyLatency:   3 * sim.Millisecond,
		RequestBytes:   1000,
		ReplyBytes:     4000,
		LinkBandwidth:  1, // 1 byte/ns: 1 µs and 4 µs serialisation
	}
	c, _ := stubCluster(t, Config{Net: net}, NewRoundRobin(), []sim.Duration{10 * sim.Millisecond})
	c.Serve(&load.Replay{}, 1)
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	want := 2*sim.Millisecond + sim.Microsecond + // request hop
		10*sim.Millisecond + // service
		3*sim.Millisecond + 4*sim.Microsecond // reply hop
	got := c.Stats().EndToEnd.Max
	if got != want {
		t.Fatalf("end-to-end latency = %v, want %v", got, want)
	}
	// Node-internal view excludes the network entirely.
	if ni := c.Stats().Nodes[0].Internal.Max; ni != 10*sim.Millisecond {
		t.Fatalf("node-internal latency = %v, want 10ms", ni)
	}
}

func TestLinkSerialisesBurst(t *testing.T) {
	// Two simultaneous requests through a finite link: the second's
	// transfer queues behind the first. Zero service isolates the link.
	net := Network{RequestBytes: 1000, LinkBandwidth: 1} // 1 µs per transfer
	c, _ := stubCluster(t, Config{Net: net}, NewRoundRobin(), []sim.Duration{0})
	c.Serve(&load.Replay{}, 2) // both at t=0, same node
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	st := c.Stats().EndToEnd
	if st.Max-st.Min != sim.Microsecond {
		t.Fatalf("burst not serialised: min %v max %v", st.Min, st.Max)
	}
}

func TestClusterAggregatedPercentiles(t *testing.T) {
	// Two nodes with very different service times: the aggregated p99
	// must reflect the merged population, not either node alone.
	c, _ := stubCluster(t, Config{}, NewRoundRobin(),
		[]sim.Duration{sim.Millisecond, 100 * sim.Millisecond})
	c.Serve(&load.Poisson{Rate: 10}, 100)
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	fast := st.Nodes[0].Internal.P99
	slow := st.Nodes[1].Internal.P99
	if !(st.NodeP99 > fast && st.NodeP99 <= slow) {
		t.Fatalf("aggregate p99 %v outside (%v, %v]", st.NodeP99, fast, slow)
	}
	// p50 of a 50/50 fast/slow split sits at the boundary between the
	// two populations.
	if st.NodeP50 < fast/2 || st.NodeP50 > slow {
		t.Fatalf("aggregate p50 %v implausible", st.NodeP50)
	}
}

func TestClusterDeterministicAcrossRuns(t *testing.T) {
	run := func() Stats {
		c, _ := stubCluster(t, Config{Sessions: 4}, NewLeastOutstanding(),
			[]sim.Duration{2 * sim.Millisecond, 5 * sim.Millisecond})
		c.Serve(&load.Bursty{Base: 100, Burst: 1000, MeanDwell: 20 * sim.Millisecond}, 150)
		if _, err := c.Run(0); err != nil {
			t.Fatal(err)
		}
		return c.Stats()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("cluster run not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

func TestHorizonTimesOutAndReportsPartial(t *testing.T) {
	c, _ := stubCluster(t, Config{}, NewRoundRobin(), []sim.Duration{sim.Second})
	c.Serve(&load.Replay{}, 10)
	timedOut, err := c.Run(100 * sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Fatal("horizon not reported")
	}
	if got := c.Stats().EndToEnd.Completed; got != 0 {
		t.Fatalf("completed %d before horizon, want 0", got)
	}
}

func TestImbalanceInfWhenNodeStarved(t *testing.T) {
	// Session affinity with one session pins everything to one node.
	c, _ := stubCluster(t, Config{Sessions: 1}, NewConsistentHash(),
		[]sim.Duration{sim.Millisecond, sim.Millisecond})
	c.Serve(&load.Poisson{Rate: 100}, 10)
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); !math.IsInf(st.Imbalance, 1) {
		t.Fatalf("imbalance = %v, want +Inf", st.Imbalance)
	}
}

func TestTelemetryIdenticalAcrossShards(t *testing.T) {
	// Metric samples and request spans carry the same byte-identity
	// contract as Stats: any shard count must export the same rows.
	service := []sim.Duration{2 * sim.Millisecond, 7 * sim.Millisecond, 3 * sim.Millisecond}
	run := func(shards int) ([]obs.Sample, []obs.Span) {
		c, _ := shardedStubCluster(t, Config{
			Net:             shardNet,
			SLO:             40 * sim.Millisecond,
			Sessions:        6,
			MetricsInterval: 5 * sim.Millisecond,
			Spans:           true,
		}, NewLeastOutstanding(), shards, service)
		c.Serve(&load.Bursty{Base: 200, Burst: 2000, MeanDwell: 10 * sim.Millisecond}, 80)
		if _, err := c.Run(0); err != nil {
			t.Fatal(err)
		}
		// Run profiling is shard-DEPENDENT by design (event counts and
		// pdes window stats describe the execution, not the simulation) —
		// it must be populated but is excluded from the identity check.
		if c.Events() <= 0 {
			t.Fatalf("%d shards: Events() = %d", shards, c.Events())
		}
		ws := c.WindowStats()
		if shards == 1 && ws.Windows != 0 {
			t.Fatalf("unsharded run reported %d pdes windows", ws.Windows)
		}
		if shards > 1 && ws.Windows == 0 {
			t.Fatalf("%d shards: no pdes windows recorded", shards)
		}
		return c.Samples(), c.Spans()
	}
	refSamples, refSpans := run(1)
	if len(refSamples) == 0 {
		t.Fatal("no metric samples recorded")
	}
	if len(refSpans) != 80 {
		t.Fatalf("spans = %d, want 80", len(refSpans))
	}
	for _, sp := range refSpans {
		if !sp.Complete() {
			t.Fatalf("incomplete span %+v", sp)
		}
		if !(sp.Submit < sp.Arrive && sp.Arrive <= sp.Start && sp.Start <= sp.Done && sp.Done < sp.Reply) {
			t.Fatalf("span hops out of order: %+v", sp)
		}
		if sp.Network()+sp.Queue()+sp.Service() != sp.Total() {
			t.Fatalf("span hops do not cover total: %+v", sp)
		}
	}
	for _, shards := range []int{2, 3} {
		samples, spans := run(shards)
		if !reflect.DeepEqual(samples, refSamples) {
			t.Fatalf("%d shards: metric samples diverged (got %d rows, ref %d)", shards, len(samples), len(refSamples))
		}
		if !reflect.DeepEqual(spans, refSpans) {
			t.Fatalf("%d shards: spans diverged", shards)
		}
	}
}

func TestSpansRecordHopTimeline(t *testing.T) {
	// One node, pure-latency network, two simultaneous requests: the
	// first flows straight through; the second queues behind it for one
	// full service time. Every stamp is checkable by hand.
	net := Network{RequestLatency: 2 * sim.Millisecond, ReplyLatency: 3 * sim.Millisecond}
	c, _ := shardedStubCluster(t, Config{Net: net, Spans: true}, NewRoundRobin(), 1,
		[]sim.Duration{10 * sim.Millisecond})
	c.Serve(&load.Replay{}, 2) // both at t=0
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	ms := sim.Millisecond
	want := []obs.Span{
		{ID: 0, Node: "a-node", Submit: 0, Arrive: sim.Time(2 * ms), Start: sim.Time(2 * ms),
			Done: sim.Time(12 * ms), Reply: sim.Time(15 * ms)},
		{ID: 1, Node: "a-node", Submit: 0, Arrive: sim.Time(2 * ms), Start: sim.Time(12 * ms),
			Done: sim.Time(22 * ms), Reply: sim.Time(25 * ms)},
	}
	for i := range want {
		if spans[i] != want[i] {
			t.Fatalf("span %d = %+v, want %+v", i, spans[i], want[i])
		}
	}
	if q := spans[1].Queue(); q != 10*ms {
		t.Fatalf("queued span Queue() = %v, want 10ms", q)
	}
	if n := spans[0].Network(); n != 5*ms {
		t.Fatalf("Network() = %v, want 5ms", n)
	}
}

func TestTelemetryDisabledByDefault(t *testing.T) {
	// With telemetry off the cluster must not retain samples or spans —
	// the alloc-free default path.
	c, _ := stubCluster(t, Config{}, NewRoundRobin(), []sim.Duration{sim.Millisecond})
	c.Serve(&load.Replay{}, 3)
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if c.Samples() != nil {
		t.Fatal("Samples() non-nil with metrics disabled")
	}
	if c.Spans() != nil {
		t.Fatal("Spans() non-nil with spans disabled")
	}
}

func TestLeastOutstandingSamplesDistinctCandidates(t *testing.T) {
	// Every Pick with Choices < n must examine exactly Choices DISTINCT
	// nodes: inspect the retained sample directly, and check every node
	// is reachable over many picks.
	const nodes, choices = 6, 4
	c, _ := stubCluster(t, Config{}, &LeastOutstanding{Choices: choices},
		make([]sim.Duration, nodes))
	lo := c.Router().(*LeastOutstanding)
	lo.Bind(c, sim.NewRand(123))
	picked := make(map[int]bool)
	for i := 0; i < 500; i++ {
		picked[lo.Pick(Request{ID: i})] = true
		if len(lo.sample) != choices {
			t.Fatalf("pick %d: sample size %d, want %d", i, len(lo.sample), choices)
		}
		for s := 1; s < len(lo.sample); s++ {
			if lo.sample[s] <= lo.sample[s-1] {
				t.Fatalf("pick %d: sample %v not sorted-distinct", i, lo.sample)
			}
			if lo.sample[s] >= nodes {
				t.Fatalf("pick %d: sample %v out of range", i, lo.sample)
			}
		}
	}
	// With equal outstanding everywhere, ties keep the first draw —
	// which is uniform — so every node must be reachable.
	for n := 0; n < nodes; n++ {
		if !picked[n] {
			t.Fatalf("node %d never picked across 500 samples", n)
		}
	}
}
