package cluster

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/sim"
)

// tq is the shared timeline quantum the faulted-fleet tests keep every
// duration on: the phased source gives each request a unique sub-quantum
// phase, so no two requests' events can ever share a nanosecond and the
// sharded runs reproduce the single-engine timeline byte for byte even
// under retry storms (see the determinism notes in sim/pdes and
// experiments.chaosQuantum).
const tq = sim.Duration(1 << 15)

// faultNet is a pure-latency quantised network for faulted fleets.
var faultNet = Network{RequestLatency: 2 * tq, ReplyLatency: 2 * tq}

// faultFleetConfig enables every resilience feature at once — crash +
// recovery, a silent brownout, per-attempt deadlines, budgeted capped-
// backoff retries, hedging, and outlier ejection — so one run exercises
// all of them together. Fresh per call: the budget and plan are stateful.
func faultFleetConfig() Config {
	return Config{
		Net:             faultNet,
		SLO:             64 * tq,
		Sessions:        16,
		MetricsInterval: 100 * tq,
		Spans:           true,
		Retry: load.RetryPolicy{
			Timeout:     64 * tq,
			MaxAttempts: 4,
			BaseBackoff: 8 * tq,
			MaxBackoff:  64 * tq,
			Budget:      load.NewRetryBudget(0.2, 20),
			HedgeDelay:  32 * tq,
			Quantum:     tq,
		},
		Faults: NewFaultPlan().
			Crash(0, 160*tq).
			Recover(0, 1600*tq).
			Brownout(1, 160*tq, 1440*tq, 4),
		Health: HealthConfig{EjectAfter: 3, Cooldown: 320 * tq},
	}
}

type fleetResult struct {
	Stats     Stats
	Completed int
	Samples   []obs.Sample
	Spans     []obs.Span
}

// runFaultFleet serves an overloading phased train through a 3-node
// SimService fleet under faultFleetConfig, split over the given shard
// count.
func runFaultFleet(t *testing.T, shards int) fleetResult {
	t.Helper()
	c := NewSharded(faultFleetConfig(), NewLeastOutstanding(), shards, 5)
	for i := 0; i < 3; i++ {
		c.AddSimNode(nodeName(i), SimServiceConfig{
			Workers: 2, QueueCap: 8, MeanService: 8 * tq, Quantum: tq,
		})
	}
	c.Serve(&load.PhasedPoisson{Rate: 16000, Quantum: tq}, 800)
	timedOut, err := c.Run(2 * sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if timedOut {
		t.Fatal("faulted fleet hit the horizon")
	}
	return fleetResult{
		Stats: c.Stats(), Completed: c.Completed(),
		Samples: c.Samples(), Spans: c.Spans(),
	}
}

func TestFaultedFleetIdenticalAcrossShards(t *testing.T) {
	ref := runFaultFleet(t, 1)
	// The reference run must actually exercise the machinery whose
	// determinism is under test.
	r := ref.Stats.Resilience
	if r.Retries == 0 || r.Timeouts == 0 || r.Hedges == 0 || r.Shed == 0 || r.Failed == 0 {
		t.Fatalf("resilience machinery under-exercised: %+v", r)
	}
	if ref.Completed == 0 || ref.Completed == 800 {
		t.Fatalf("want a partially failed run, got %d of 800 completed", ref.Completed)
	}
	for _, shards := range []int{2, 3} {
		got := runFaultFleet(t, shards)
		if !reflect.DeepEqual(got.Stats, ref.Stats) {
			t.Fatalf("%d shards: stats diverge:\n%+v\nvs\n%+v", shards, got.Stats, ref.Stats)
		}
		if !reflect.DeepEqual(got.Samples, ref.Samples) {
			t.Fatalf("%d shards: telemetry samples diverge", shards)
		}
		if !reflect.DeepEqual(got.Spans, ref.Spans) {
			t.Fatalf("%d shards: spans diverge", shards)
		}
	}
}

func TestCrashFailsInFlightAndRecoveryRestores(t *testing.T) {
	// One node, no retry policy: the request in flight at the crash fails
	// back to the client, the one arriving during the outage finds no
	// live node, and the one after recovery completes normally.
	cfg := Config{
		Net:   faultNet,
		Spans: true,
		Faults: NewFaultPlan().
			Crash(0, 160*tq).
			Recover(0, 320*tq),
	}
	c := NewSharded(cfg, NewRoundRobin(), 1, 1)
	svc := c.AddSimNode(nodeName(0), SimServiceConfig{
		Workers: 1, MeanService: 64 * tq, Quantum: tq,
	})
	c.Serve(&load.Replay{At: []sim.Duration{
		140 * tq, // in flight (arrives 142tq, service pending) when the crash hits
		240 * tq, // during the outage, after the crash notification
		400 * tq, // after recovery and its notification
	}}, 3)
	if _, err := c.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	spans := c.Spans()
	wantOutcomes := []string{obs.OutcomeFailed, obs.OutcomeNoNode, obs.OutcomeOK}
	for i, want := range wantOutcomes {
		if spans[i].Outcome != want {
			t.Fatalf("request %d outcome %q, want %q (spans %+v)", i, spans[i].Outcome, want, spans)
		}
	}
	r := c.Resilience()
	if r.Failed != 2 || r.NoLiveNode != 1 {
		t.Fatalf("resilience %+v, want Failed=2 NoLiveNode=1", r)
	}
	if c.Completed() != 1 {
		t.Fatalf("completed %d, want 1", c.Completed())
	}
	if svc.QueueLen() != 0 {
		t.Fatalf("service queue %d after run, want empty", svc.QueueLen())
	}
}

func TestAllNodesDeadFailsFast(t *testing.T) {
	// Every node crashed and never recovered: requests fail fast with
	// the typed no-live-nodes error rather than queueing on a dead fleet.
	cfg := Config{
		Net:   faultNet,
		Spans: true,
		Faults: NewFaultPlan().
			Crash(0, 32*tq).Crash(1, 32*tq).Crash(2, 32*tq),
	}
	c := NewSharded(cfg, NewRoundRobin(), 1, 1)
	for i := 0; i < 3; i++ {
		c.AddSimNode(nodeName(i), SimServiceConfig{MeanService: 8 * tq, Quantum: tq})
	}
	c.Serve(&load.Replay{At: []sim.Duration{100 * tq, 110 * tq, 120 * tq}}, 3)
	if _, err := c.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PickNode(Request{}); !errors.Is(err, ErrNoLiveNodes) {
		t.Fatalf("PickNode error %v, want ErrNoLiveNodes", err)
	}
	r := c.Resilience()
	if r.NoLiveNode != 3 || c.Completed() != 0 {
		t.Fatalf("NoLiveNode=%d completed=%d, want 3 and 0", r.NoLiveNode, c.Completed())
	}
	for i, sp := range c.Spans() {
		if sp.Outcome != obs.OutcomeNoNode {
			t.Fatalf("request %d outcome %q, want %q", i, sp.Outcome, obs.OutcomeNoNode)
		}
	}
}

func TestSingleLiveNodeEveryRouter(t *testing.T) {
	// With two of three nodes crashed, each routing policy must steer
	// every request to the sole live node.
	routers := []Router{NewRoundRobin(), NewLeastOutstanding(), NewConsistentHash()}
	for _, r := range routers {
		cfg := Config{
			Net:      faultNet,
			Sessions: 8,
			Spans:    true,
			Faults:   NewFaultPlan().Crash(0, 32*tq).Crash(2, 32*tq),
		}
		c := NewSharded(cfg, r, 1, 1)
		for i := 0; i < 3; i++ {
			c.AddSimNode(nodeName(i), SimServiceConfig{
				Workers: 2, MeanService: 8 * tq, Quantum: tq,
			})
		}
		at := make([]sim.Duration, 40)
		for i := range at {
			at[i] = sim.Duration(100+4*i) * tq // all after the crash notifications
		}
		c.Serve(&load.Replay{At: at}, len(at))
		if _, err := c.Run(sim.Second); err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if c.Completed() != len(at) {
			t.Fatalf("%s: completed %d of %d", r.Name(), c.Completed(), len(at))
		}
		for i, sp := range c.Spans() {
			if sp.Node != nodeName(1) {
				t.Fatalf("%s: request %d served by %q, want sole live node %q",
					r.Name(), i, sp.Node, nodeName(1))
			}
		}
	}
}

func TestConsistentHashRingRestoredAfterReaddition(t *testing.T) {
	// Removing a node and re-adding it must restore the exact original
	// ring (virtual points depend only on node names), so session
	// placement after a recovery is identical to before the crash.
	c, _ := stubCluster(t, Config{}, NewConsistentHash(),
		[]sim.Duration{sim.Millisecond, sim.Millisecond, sim.Millisecond})
	ch := c.Router().(*ConsistentHash)
	ch.Bind(c, nil)
	ring0 := append([]ringPoint(nil), ch.ring...)
	picks0 := make([]int, 256)
	for s := range picks0 {
		picks0[s] = ch.Pick(Request{Session: uint64(s)})
	}
	// Take node 1 down: the ring shrinks and no session lands on it.
	c.hstate = make([]healthState, 3)
	for i := range c.hstate {
		c.hstate[i] = healthState{c: c, ni: i}
	}
	c.hstate[1].down = true
	c.bumpEpoch()
	for s := 0; s < 256; s++ {
		if got := ch.Pick(Request{Session: uint64(s)}); got == 1 {
			t.Fatal("session routed to a down node")
		}
	}
	if len(ch.ring) != 2*len(ring0)/3 {
		t.Fatalf("degraded ring has %d points, want %d", len(ch.ring), 2*len(ring0)/3)
	}
	// Bring it back: the ring and every placement must match the original.
	c.hstate[1].down = false
	c.bumpEpoch()
	for s := range picks0 {
		if got := ch.Pick(Request{Session: uint64(s)}); got != picks0[s] {
			t.Fatalf("session %d moved from %d to %d after re-addition", s, picks0[s], got)
		}
	}
	if !reflect.DeepEqual(ch.ring, ring0) {
		t.Fatal("ring not byte-identical after remove + re-add")
	}
}

func TestEjectionStormGuard(t *testing.T) {
	// The concurrent-ejection cap and the last-live-node guard keep a
	// global overload from ejecting the whole fleet out of routing.
	c, _ := stubCluster(t, Config{Health: HealthConfig{
		EjectAfter: 1, Cooldown: sim.Second, MaxEjected: 1,
	}}, NewRoundRobin(), []sim.Duration{sim.Millisecond, sim.Millisecond, sim.Millisecond})
	c.hstate = make([]healthState, 3)
	for i := range c.hstate {
		c.hstate[i] = healthState{c: c, ni: i}
	}
	c.bumpEpoch()
	c.recordFailure(0)
	if !c.hstate[0].ejected || c.ejectedCount != 1 {
		t.Fatalf("first failure did not eject: %+v", c.hstate[0])
	}
	// Cap reached: node 1 stays routable despite its failure streak.
	c.recordFailure(1)
	if c.hstate[1].ejected {
		t.Fatal("ejection cap exceeded")
	}
	// Raising the cap lets node 1 go — but node 2, now the last live
	// node, must never be ejected.
	c.cfg.Health.MaxEjected = 3
	c.recordFailure(1)
	if !c.hstate[1].ejected || c.liveNodes != 1 {
		t.Fatalf("raised cap did not admit ejection (live=%d)", c.liveNodes)
	}
	c.recordFailure(2)
	if c.hstate[2].ejected {
		t.Fatal("last live node ejected")
	}
	// Cooldowns fire: both nodes are readmitted on probation and the
	// concurrent-ejection count returns to zero.
	if _, err := c.Eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if c.ejectedCount != 0 || c.res.Readmits != 2 {
		t.Fatalf("after cooldowns: ejectedCount=%d readmits=%d, want 0 and 2",
			c.ejectedCount, c.res.Readmits)
	}
	if !c.hstate[0].probation || !c.hstate[1].probation {
		t.Fatal("readmitted nodes not on probation")
	}
}

func TestMaxEjectedDefaultsToTenPercent(t *testing.T) {
	c, _ := stubCluster(t, Config{}, NewRoundRobin(),
		make([]sim.Duration, 3))
	if got := c.maxEjected(); got != 1 {
		t.Fatalf("3-node default cap %d, want 1", got)
	}
	c.nodes = make([]*Node, 40)
	if got := c.maxEjected(); got != 4 {
		t.Fatalf("40-node default cap %d, want 4", got)
	}
	c.cfg.Health.MaxEjected = 7
	if got := c.maxEjected(); got != 7 {
		t.Fatalf("explicit cap %d, want 7", got)
	}
}

func TestHorizonAbandonStampsResilientSpans(t *testing.T) {
	// A resilient run cut off by the horizon must leave no zero-stamped
	// spans: unresolved requests carry the abandoned outcome and their
	// attempt counts, and the timeline stats stay well-defined.
	cfg := faultFleetConfig()
	c := NewSharded(cfg, NewLeastOutstanding(), 2, 5)
	for i := 0; i < 3; i++ {
		c.AddSimNode(nodeName(i), SimServiceConfig{
			Workers: 2, QueueCap: 8, MeanService: 8 * tq, Quantum: tq,
		})
	}
	c.Serve(&load.PhasedPoisson{Rate: 16000, Quantum: tq}, 800)
	timedOut, err := c.Run(300 * tq) // ~10ms: mid-outage, mid-train
	if err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Fatal("run finished under a horizon chosen to cut it off")
	}
	abandoned, submitted := 0, 0
	for i, sp := range c.Spans() {
		if sp.Outcome == "" {
			t.Fatalf("span %d has no outcome after an abandoned run: %+v", i, sp)
		}
		if sp.Outcome == obs.OutcomeAbandoned {
			abandoned++
		}
		if sp.Submit > 0 {
			submitted++
		}
	}
	if abandoned == 0 {
		t.Fatal("no abandoned spans in a cut-off run")
	}
	// The meter accounts for every request the source actually submitted
	// before the cutoff — completed, failed, or failed-at-abandon — and
	// no others.
	st := c.Stats()
	if got := st.EndToEnd.Completed + st.EndToEnd.Failed; got != submitted || submitted == 0 {
		t.Fatalf("meter accounts for %d requests, want the %d submitted", got, submitted)
	}
}

func TestFaultPlanRejectsUnknownNode(t *testing.T) {
	c := NewSharded(Config{
		Net:    faultNet,
		Faults: NewFaultPlan().Crash(5, 10*tq),
	}, NewRoundRobin(), 1, 1)
	c.AddSimNode(nodeName(0), SimServiceConfig{MeanService: tq, Quantum: tq})
	defer func() {
		if recover() == nil {
			t.Fatal("fault plan targeting node 5 of 1 accepted")
		}
	}()
	c.Serve(&load.Replay{At: []sim.Duration{tq}}, 1)
}

func TestBrownoutStretchesLatency(t *testing.T) {
	// A brownout over the whole run must raise mean latency vs the same
	// seeded run without it; after SetSlowdown(1) draws return to nominal.
	run := func(plan *FaultPlan) Stats {
		c := NewSharded(Config{Net: faultNet, Faults: plan},
			NewRoundRobin(), 1, 9)
		c.AddSimNode(nodeName(0), SimServiceConfig{
			Workers: 1, MeanService: 16 * tq, Quantum: tq,
		})
		at := make([]sim.Duration, 50)
		for i := range at {
			at[i] = sim.Duration(1+64*i) * tq // spaced: no queueing
		}
		c.Serve(&load.Replay{At: at}, len(at))
		if _, err := c.Run(sim.Second); err != nil {
			t.Fatal(err)
		}
		return c.Stats()
	}
	slow := run(NewFaultPlan().Brownout(0, 0, 6400*tq, 8))
	fast := run(NewFaultPlan().Brownout(0, 0, 6400*tq, 1))
	if slow.EndToEnd.Mean <= 2*fast.EndToEnd.Mean {
		t.Fatalf("8x brownout mean %v not clearly above nominal %v",
			slow.EndToEnd.Mean, fast.EndToEnd.Mean)
	}
}
