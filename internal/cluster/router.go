package cluster

import (
	"sort"

	"repro/internal/sim"
)

// Request is what a router sees of one arrival: the global request id
// and its session key (stable across a client's requests, the unit of
// affinity).
type Request struct {
	ID      int
	Session uint64
}

// Router decides which node serves each request. Implementations are
// single-use: Bind attaches them to one cluster (and its deterministic
// RNG stream) before the first Pick. Pick runs at the arrival instant,
// in event context, and must be deterministic given the bound RNG
// stream and the cluster's observable state.
//
// Routers consult the cluster's health view: nodes the client edge
// knows to be crashed (eager removal on crash notification) or has
// ejected (passive outlier ejection) are skipped. Pick returns -1 when
// no node is routable — which the serving path converts into a fast
// per-request failure (ErrNoLiveNodes). While every node is routable,
// each policy reproduces its original decisions byte for byte.
type Router interface {
	// Name labels the policy in cell names and tables.
	Name() string
	// Bind attaches the router to its cluster. rng is an independent
	// engine stream reserved for routing decisions.
	Bind(c *Cluster, rng *sim.Rand)
	// Pick returns the index of the node that serves req, or -1 when
	// every node is crashed or ejected.
	Pick(req Request) int
}

// RoundRobin dispatches requests to nodes in rotation, ignoring load —
// the classic stateless baseline. Dead or ejected nodes are skipped in
// rotation order.
type RoundRobin struct {
	c       *Cluster
	n, next int
}

// NewRoundRobin returns a fresh round-robin router.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Router.
func (r *RoundRobin) Name() string { return "round-robin" }

// Bind implements Router.
func (r *RoundRobin) Bind(c *Cluster, _ *sim.Rand) { r.c, r.n = c, len(c.nodes) }

// Pick implements Router.
func (r *RoundRobin) Pick(Request) int {
	for tries := 0; tries < r.n; tries++ {
		i := r.next
		r.next = (r.next + 1) % r.n
		if r.c.available(i) {
			return i
		}
	}
	return -1
}

// LeastOutstanding routes each request to the less-loaded of Choices
// randomly sampled nodes (power-of-two-choices by default), measured by
// outstanding (dispatched but unreplied) requests. Sampling draws from
// the cluster's router RNG stream, so decisions are reproducible.
// Choices >= the routable node count degenerates to exact
// least-outstanding over those nodes. Only live nodes are sampled; on a
// fully live fleet the draw sequence is identical to the health-unaware
// original.
type LeastOutstanding struct {
	// Choices is the sample size (default 2).
	Choices int

	c      *Cluster
	rng    *sim.Rand
	sample []int // distinct candidate positions drawn this pick (reused)
	avail  []int // live node indices (reused when the fleet is degraded)
}

// NewLeastOutstanding returns a power-of-two-choices router.
func NewLeastOutstanding() *LeastOutstanding { return &LeastOutstanding{Choices: 2} }

// Name implements Router.
func (r *LeastOutstanding) Name() string { return "least-outstanding" }

// Bind implements Router.
func (r *LeastOutstanding) Bind(c *Cluster, rng *sim.Rand) {
	if r.Choices <= 0 {
		r.Choices = 2
	}
	r.c, r.rng = c, rng
}

// Pick implements Router.
func (r *LeastOutstanding) Pick(Request) int {
	if r.c.allAvailable() {
		// Fully live fleet: identity function over node indices keeps
		// this the byte-identical original draw sequence.
		return r.pickAmong(len(r.c.nodes), func(i int) int { return i })
	}
	r.avail = r.avail[:0]
	for i := range r.c.nodes {
		if r.c.available(i) {
			r.avail = append(r.avail, i)
		}
	}
	if len(r.avail) == 0 {
		return -1
	}
	return r.pickAmong(len(r.avail), func(i int) int { return r.avail[i] })
}

// pickAmong runs the sampled (or exact) least-outstanding choice over m
// candidates, where node(i) maps candidate position to node index.
func (r *LeastOutstanding) pickAmong(m int, node func(int) int) int {
	if r.Choices >= m {
		// Exact scan; ties break toward the lower position.
		best := 0
		for i := 1; i < m; i++ {
			if r.c.nodes[node(i)].outstanding < r.c.nodes[node(best)].outstanding {
				best = i
			}
		}
		return node(best)
	}
	// Draw Choices distinct positions: the s-th draw samples [0, m-s)
	// and is shifted past the already-drawn positions, so exactly
	// Choices RNG draws happen per pick (stream alignment is
	// queue-independent) and the sample really covers Choices distinct
	// candidates.
	r.sample = r.sample[:0]
	best := -1
	for s := 0; s < r.Choices; s++ {
		i := r.rng.Intn(m - s)
		for _, seen := range r.sample {
			if i >= seen {
				i++
			}
		}
		// Keep the sample sorted so the shift above stays correct.
		r.sample = append(r.sample, i)
		for at := len(r.sample) - 1; at > 0 && r.sample[at] < r.sample[at-1]; at-- {
			r.sample[at], r.sample[at-1] = r.sample[at-1], r.sample[at]
		}
		if best == -1 {
			best = i
			continue
		}
		// Ties keep the earlier draw (canonical power-of-N-choices):
		// the first draw is uniform, so idle-fleet traffic spreads
		// instead of herding onto low-indexed nodes.
		if r.c.nodes[node(i)].outstanding < r.c.nodes[node(best)].outstanding {
			best = i
		}
	}
	return node(best)
}

// ConsistentHash pins each session to a node with a consistent-hash
// ring (session affinity): the same session always lands on the same
// node, and adding or removing a node only remaps the sessions on the
// affected arc. Replicas virtual points per node smooth the split. The
// ring is rebuilt — excluding crashed and ejected nodes — whenever the
// cluster's liveness epoch advances; because each node's virtual points
// depend only on its name, removing and re-adding a node restores the
// exact original ring.
type ConsistentHash struct {
	// Replicas is the number of virtual ring points per node
	// (default 64).
	Replicas int

	c     *Cluster
	ring  []ringPoint
	epoch uint64
}

// ringPoint is one virtual node position on the hash ring.
type ringPoint struct {
	hash uint64
	node int
}

// NewConsistentHash returns a session-affinity router.
func NewConsistentHash() *ConsistentHash { return &ConsistentHash{Replicas: 64} }

// Name implements Router.
func (r *ConsistentHash) Name() string { return "consistent-hash" }

// mix64 finalises a session key into a ring position (splitmix64
// finaliser, so nearby keys spread over the whole ring).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Bind implements Router: it builds the ring from the nodes' names, so
// ring layout depends only on the cluster's composition (and, as the
// run proceeds, its live subset).
func (r *ConsistentHash) Bind(c *Cluster, _ *sim.Rand) {
	if r.Replicas <= 0 {
		r.Replicas = 64
	}
	r.c = c
	r.epoch = c.healthEpoch
	r.rebuild()
}

// rebuild reconstructs the ring over the currently routable nodes.
func (r *ConsistentHash) rebuild() {
	r.ring = r.ring[:0]
	for i, n := range r.c.nodes {
		if !r.c.available(i) {
			continue
		}
		base := sim.Hash64(n.Name)
		for v := 0; v < r.Replicas; v++ {
			r.ring = append(r.ring, ringPoint{
				hash: mix64(base + uint64(v)*0x9e3779b97f4a7c15),
				node: i,
			})
		}
	}
	sort.Slice(r.ring, func(a, b int) bool {
		if r.ring[a].hash != r.ring[b].hash {
			return r.ring[a].hash < r.ring[b].hash
		}
		return r.ring[a].node < r.ring[b].node
	})
}

// Pick implements Router.
func (r *ConsistentHash) Pick(req Request) int {
	if r.epoch != r.c.healthEpoch {
		r.epoch = r.c.healthEpoch
		r.rebuild()
	}
	if len(r.ring) == 0 {
		return -1
	}
	h := mix64(req.Session)
	i := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= h })
	if i == len(r.ring) {
		i = 0
	}
	return r.ring[i].node
}
