// Package cluster turns the simulator from one machine into a fleet: a
// Cluster owns several named Nodes — each a complete simulated system
// (stack.System) with its own kernel, glibc, and USF state — on ONE
// shared discrete-event engine, so a whole multi-node serving estate
// runs in a single deterministic virtual timeline.
//
// Arrivals come from a load.Source, a Router picks the serving node per
// request, and a Network cost model charges per-hop latency plus
// optional per-link serialisation. Latency is metered end to end
// (network + queue + service) on a cluster meter and per node on
// node-internal meters; node populations aggregate into cluster-wide
// percentiles by merging their fixed-memory sketches.
//
// Determinism: nodes share the engine but not RNG namespaces — each
// stack.System draws from its own seed (stack.NewOnEngine), routing
// draws from the engine's "cluster/router" stream, and arrivals from
// "cluster/client" — so any cluster run is byte-reproducible for any
// host parallelism.
//
// # Sharded fleets
//
// NewSharded spreads the fleet over several engines advanced by a
// conservative-parallel coordinator (sim/pdes): the client, router, and
// end-to-end meter live on shard 0, node i on shard i%N, and every
// router→node dispatch and node→client reply crosses shards as a
// timestamped pdes message. The network's per-hop propagation delay is
// the lookahead — every cross-shard interaction pays at least one hop —
// so safe windows need no machinery beyond the barrier. All timestamps
// (arrival at the node, completion, reply arrival) are the same virtual
// instants the single shared engine produces, so tables are
// byte-identical for any shard count, and shards=1 IS the shared-engine
// path. Each piece of cluster state has a home shard: routing state,
// flights, request links, and the end-to-end meter on shard 0; each
// node's meter, reply link, and in-flight set on its own shard.
package cluster

import (
	"fmt"
	"math"

	"repro/internal/load"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/sim/pdes"
	"repro/internal/stack"
)

// Backend is a node's serving workload: a resident service (e.g.
// inference.Service) that accepts routed requests and reports each
// completion through the callback it was constructed with. Stop drains
// it after the last completion so the shared engine can run dry.
type Backend interface {
	// Submit delivers request id to the node. Called in event context at
	// the simulated instant the request reaches the node.
	Submit(id int)
	// Stop drains the backend: all resident service processes exit once
	// in-flight work finishes.
	Stop()
}

// Node is one named machine of the fleet.
type Node struct {
	// Name identifies the node (tables, consistent-hash ring).
	Name string
	// Sys is the node's fully wired simulated system.
	Sys *stack.System

	backend Backend
	// meter measures node-internal latency: arrival at the node to
	// completion at the node, excluding the network.
	meter            *load.Meter
	reqLink, repLink link
	outstanding      int
	dispatched       int

	// eng is the engine the node's state is homed on: the cluster's
	// shared engine, or the node's shard engine when sharded. The
	// backend, node meter, reply link, and inflight set are touched only
	// in this engine's event context.
	eng   *sim.Engine
	shard *pdes.Shard // nil when the cluster is unsharded
	// reg scrapes the node-homed telemetry (node meter, kernel) on the
	// node's own engine; nil when metrics are off.
	reg *obs.Registry
	// inflight tracks attempts between arrival at the node and
	// completion, keyed by attempt id.
	inflight map[int]*flight
	// dead marks the node crashed (fault layer); node-engine-owned.
	// Arrivals at a dead node bounce straight back as failures.
	dead bool
	// orphans counts backend completions for unknown attempt ids
	// (cancelled or crashed work finishing on backends that cannot
	// abort); node-engine-owned, summed at Stats time.
	orphans int
}

// Outstanding returns the node's dispatched-but-unreplied request count
// (the signal load-aware routers balance on).
func (n *Node) Outstanding() int { return n.outstanding }

// Dispatched returns how many requests the router sent to this node.
func (n *Node) Dispatched() int { return n.dispatched }

// Meter returns the node-internal latency meter.
func (n *Node) Meter() *load.Meter { return n.meter }

// Config parameterises a cluster.
type Config struct {
	// Net is the communication cost model.
	Net Network
	// SLO is the end-to-end latency objective; node meters judge their
	// node-internal latencies against it too. Zero disables SLO
	// accounting.
	SLO sim.Duration
	// Sessions is the number of distinct session keys arrivals cycle
	// through (request id modulo Sessions), the affinity unit for
	// session-aware routing. Non-positive gives every request its own
	// session.
	Sessions int
	// MetricsInterval, when positive, attaches a deterministic obs
	// scraper to every engine: per-node meter and kernel series on each
	// node's engine, the end-to-end meter plus per-node outstanding and
	// router-pick counts on the client engine. Samples are keyed by
	// simulated time, so the export is byte-identical for any host
	// parallelism or shard count. Zero (the default) disables scraping
	// entirely; the instrumented paths then cost nothing.
	MetricsInterval sim.Duration
	// Spans, when true, records one obs.Span per request — the five
	// hop instants of the client → node → reply path — retrievable via
	// Spans after the run. Off by default; disabled span stamping is a
	// nil check.
	Spans bool
	// Retry is the client edge's resilience policy: per-attempt
	// deadlines, capped-backoff retries under an optional token-bucket
	// budget, and optional hedging. The zero value disables all of it.
	Retry load.RetryPolicy
	// Faults, when non-nil, is the deterministic fault schedule
	// installed at Serve (see FaultPlan).
	Faults *FaultPlan
	// Health enables passive outlier ejection at the client edge. The
	// zero value disables it.
	Health HealthConfig
}

// flight is one attempt's routing state, reused across its network
// hops. Without resilience a request is exactly one attempt and
// aid == rid. Field ownership is disciplined for sharded runs: rid,
// aid, node, hedge, and c are immutable after dispatch; closed and
// timeoutEv are touched only on the client engine; arrive, start, and
// done only on the node engine until the reply (or failure) message
// hands the flight back to the client, which is a causal transfer.
type flight struct {
	c *Cluster
	// rid is the request id (client meter, spans, sources).
	rid int
	// aid is the attempt id (node in-flight map and node meter key).
	aid  int
	node int
	// hedge marks the attempt as the hedged second copy.
	hedge bool
	// closed marks the attempt resolved at the client edge (reply seen,
	// failed, timed out, or cancelled); set exactly once.
	closed bool
	// returned marks that the node handed the flight back to the client
	// in a reply or failure message — only then are the node-side hop
	// stamps below causally transferred and safe to read at the client.
	// A timed-out attempt is never returned: its stamps may still be
	// being written on the node engine at the timeout instant, so span
	// stamping must skip them to stay deterministic under sharding.
	returned bool
	// timeoutEv is the pending per-attempt deadline timer.
	timeoutEv sim.Event
	// arrive, start, and done buffer the node-side hop instants; the
	// winning attempt's values are copied into the request's span.
	arrive, start, done sim.Time
}

// Cluster is a fleet of nodes behind a router on one shared engine, or
// — when built with NewSharded — spread over several engines advanced
// in conservative lockstep by a pdes.Group.
type Cluster struct {
	// Eng is the client-edge engine: arrivals, routing, and end-to-end
	// metering run here. Unsharded clusters put everything on it;
	// sharded clusters make it shard 0's engine.
	Eng *sim.Engine

	cfg    Config
	router Router
	nodes  []*Node
	meter  *load.Meter // end-to-end: submission to reply arrival

	group  *pdes.Group // nil when unsharded
	shards []*pdes.Shard
	client *pdes.Shard // shard 0: the client edge's home

	src       load.Source
	total     int
	completed int
	doneAt    sim.Time // instant the final reply arrived
	served    bool
	// finished marks the teardown done (all requests resolved).
	finished bool

	// look is the one-hop network lookahead — min(request, reply
	// latency) — used for liveness notifications in both sharded and
	// unsharded mode, so their instants agree.
	look sim.Duration

	// Resilience state; all nil/zero when Config enables none of it.
	// rs is per-request state (indexed by rid), hstate the client
	// edge's per-node liveness view. Client-engine-owned.
	rs         []rstate
	hstate     []healthState
	res        Resilience
	nextAid    int
	failedReqs int
	// healthEpoch advances on every liveness change; liveNodes counts
	// currently routable nodes.
	healthEpoch uint64
	liveNodes   int
	// ejectedCount tracks concurrently ejected nodes against the
	// HealthConfig.MaxEjected storm guard.
	ejectedCount int
	retryRand    *sim.Rand

	// clientReg scrapes client-edge telemetry (end-to-end meter,
	// per-node outstanding/picks); nil when metrics are off.
	clientReg *obs.Registry
	// spans holds one Span per request id when Config.Spans is set;
	// nil otherwise. The slice is preallocated at Serve and each field
	// is written exactly once, on the engine the corresponding path
	// stage is homed on — causally ordered by the request itself, so
	// the writes are race-free under sharding too.
	spans []obs.Span
}

// New builds an empty cluster on eng. Add nodes, then call Serve.
func New(eng *sim.Engine, cfg Config, r Router) *Cluster {
	look := cfg.Net.RequestLatency
	if cfg.Net.ReplyLatency < look {
		look = cfg.Net.ReplyLatency
	}
	if look < 0 {
		look = 0
	}
	return &Cluster{
		Eng:    eng,
		cfg:    cfg,
		router: r,
		meter:  load.NewMeter(cfg.SLO),
		look:   look,
	}
}

// NewSharded builds a cluster spread over `shards` engines advanced in
// conservative lockstep (see the package comment): the client edge on
// shard 0, node i on shard i%shards. Build each node's stack.System on
// NodeEngine(i), not on Eng. Every shard engine derives from the same
// seed — only the client shard consumes engine RNG streams, and node
// systems root their streams at their own seeds — so the simulated
// timeline is byte-identical for any shard count.
//
// shards <= 1 returns exactly New(sim.NewEngine(seed), cfg, r): the
// shared-engine path with no coordinator.
//
// The cross-shard lookahead is min(RequestLatency, ReplyLatency) —
// every cross-shard interaction is a network hop — so sharded clusters
// need a positive propagation delay in both directions.
func NewSharded(cfg Config, r Router, shards int, seed uint64) *Cluster {
	if shards <= 1 {
		return New(sim.NewEngine(seed), cfg, r)
	}
	look := cfg.Net.RequestLatency
	if cfg.Net.ReplyLatency < look {
		look = cfg.Net.ReplyLatency
	}
	if look <= 0 {
		panic("cluster: sharded mode needs positive request and reply latencies (they bound the lookahead)")
	}
	g := pdes.New(look)
	ss := make([]*pdes.Shard, shards)
	for i := range ss {
		ss[i] = g.AddShard(sim.NewEngine(seed))
	}
	c := New(ss[0].Engine(), cfg, r)
	c.group = g
	c.shards = ss
	c.client = ss[0]
	return c
}

// NodeEngine returns the engine node index i will live on: the shared
// engine, or shard i%shards when sharded. Build node i's stack.System
// on this engine before AddNode.
func (c *Cluster) NodeEngine(i int) *sim.Engine {
	if c.group == nil {
		return c.Eng
	}
	return c.shards[i%len(c.shards)].Engine()
}

// Shards reports the shard count (1 when unsharded).
func (c *Cluster) Shards() int {
	if c.group == nil {
		return 1
	}
	return len(c.shards)
}

// Now returns the cluster's current virtual time: the shared engine's
// clock, or the latest shard clock when sharded.
func (c *Cluster) Now() sim.Time {
	if c.group == nil {
		return c.Eng.Now()
	}
	return c.group.Now()
}

// Elapsed returns the run's virtual duration for reporting. Unsharded
// clusters report the engine's final clock — the historical value,
// preserved byte-for-byte. Sharded completed runs report the instant
// the final reply reached the client: teardown drains remote shards one
// lookahead later, which is coordination bookkeeping rather than
// workload, so the reply instant is the value that is invariant across
// shard counts (and equals the unsharded clock up to the same-instant
// drain events).
func (c *Cluster) Elapsed() sim.Duration {
	if c.group == nil {
		return sim.Duration(c.Eng.Now())
	}
	if c.served && c.finished {
		return sim.Duration(c.doneAt)
	}
	return sim.Duration(c.group.Now())
}

// Router returns the cluster's routing policy.
func (c *Cluster) Router() Router { return c.router }

// Nodes returns the fleet in registration order.
func (c *Cluster) Nodes() []*Node { return append([]*Node(nil), c.nodes...) }

// Meter returns the cluster's end-to-end meter.
func (c *Cluster) Meter() *load.Meter { return c.meter }

// AddNode registers a node and builds its backend. newBackend receives
// the completion callback the backend must invoke exactly once per
// submitted request (at the completion instant, in any context).
func (c *Cluster) AddNode(name string, sys *stack.System, newBackend func(done func(id int)) Backend) *Node {
	if c.served {
		panic("cluster: AddNode after Serve")
	}
	for _, n := range c.nodes {
		if n.Name == name {
			// Names seed the consistent-hash ring; a duplicate would
			// silently collapse both nodes onto one arc.
			panic("cluster: duplicate node name " + name)
		}
	}
	ni := len(c.nodes)
	n := &Node{
		Name: name, Sys: sys, meter: load.NewMeter(c.cfg.SLO),
		eng:      c.NodeEngine(ni),
		inflight: make(map[int]*flight),
	}
	if c.group != nil {
		n.shard = c.shards[ni%len(c.shards)]
	}
	if sys != nil && sys.Eng != n.eng {
		// A node system built on the wrong engine would run on a foreign
		// shard's timeline — events would fire under another shard's
		// clock and race its worker.
		panic("cluster: node " + name + " system not built on NodeEngine(" + fmt.Sprint(ni) + ")")
	}
	c.nodes = append(c.nodes, n)
	n.backend = newBackend(func(id int) { c.nodeDone(ni, id) })
	return n
}

// StartedFunc returns the service-start span hook for node index ni:
// the node's backend should call it (if non-nil) with the request id at
// the instant service begins, in the node engine's event context. Nil
// when spans are off, so backends pay only a nil check. Valid once the
// node has been added.
func (c *Cluster) StartedFunc(ni int) func(id int) {
	if !c.cfg.Spans {
		return nil
	}
	n := c.nodes[ni]
	return func(id int) {
		f := n.inflight[id]
		if f == nil {
			return
		}
		if c.rs != nil {
			f.start = n.eng.Now()
		} else {
			c.spans[f.rid].Start = n.eng.Now()
		}
	}
}

// session maps a request id to its session key.
func (c *Cluster) session(id int) uint64 {
	if c.cfg.Sessions > 0 {
		return uint64(id % c.cfg.Sessions)
	}
	return uint64(id)
}

// Serve starts the arrival process: n requests from src are routed into
// the fleet. Call once, after every AddNode; then drive the engine with
// Run.
func (c *Cluster) Serve(src load.Source, n int) {
	if c.served {
		panic("cluster: Serve called twice")
	}
	if len(c.nodes) == 0 {
		panic("cluster: Serve with no nodes")
	}
	c.served = true
	c.src = src
	c.total = n
	if c.cfg.Spans {
		c.spans = make([]obs.Span, n)
		for i := range c.spans {
			c.spans[i].ID = i
		}
	}
	if c.cfg.resilient() {
		c.rs = make([]rstate, n)
		c.hstate = make([]healthState, len(c.nodes))
		for i := range c.hstate {
			c.hstate[i] = healthState{c: c, ni: i}
		}
		c.liveNodes = len(c.nodes)
	}
	if c.cfg.Faults != nil {
		c.cfg.Faults.install(c)
	}
	if c.cfg.MetricsInterval > 0 {
		c.startObs()
	}
	c.router.Bind(c, c.Eng.Rand("cluster/router"))
	src.Start(c.Eng, c.Eng.Rand("cluster/client"), n, c.submit)
}

// startObs builds and starts the scrape registries: one on the client
// engine for client-homed state, one per node on the node's engine.
// Every series lives on the engine that mutates it, so sampled values
// at any instant are identical for any shard count.
func (c *Cluster) startObs() {
	c.clientReg = obs.New(c.Eng, "client", c.cfg.MetricsInterval)
	obs.ObserveMeter(c.clientReg, "client", "e2e", c.meter)
	for _, n := range c.nodes {
		n := n
		c.clientReg.GaugeNode("router/outstanding", n.Name, func() float64 { return float64(n.outstanding) })
		c.clientReg.GaugeNode("router/picks", n.Name, func() float64 { return float64(n.dispatched) })
	}
	c.clientReg.Start()
	for _, n := range c.nodes {
		n.reg = obs.New(n.eng, n.Name, c.cfg.MetricsInterval)
		obs.ObserveMeter(n.reg, n.Name, "meter", n.meter)
		if n.Sys != nil {
			obs.ObserveKernel(n.reg, n.Name, n.Sys.K)
		}
		n.reg.Start()
	}
}

// regStop carries a remote registry-stop: stop scraping, trim samples
// past the shard-invariant cutoff (the final-completion instant).
type regStop struct {
	reg    *obs.Registry
	cutoff sim.Time
}

func stopReg(arg any) {
	rs := arg.(*regStop)
	rs.reg.Stop(rs.cutoff)
}

// stopObs ends scraping after the final reply: local registries stop at
// the completion instant; remote ones one lookahead later (the earliest
// safe instant), with the completion instant as the sample cutoff so
// the exported rows are identical either way.
func (c *Cluster) stopObs(now sim.Time) {
	if c.clientReg == nil {
		return
	}
	c.clientReg.Stop(now)
	for _, n := range c.nodes {
		if n.eng == c.Eng {
			n.reg.Stop(now)
		} else {
			c.client.Send(n.shard, now.Add(c.group.Lookahead()), stopReg, &regStop{reg: n.reg, cutoff: now})
		}
	}
}

// submit routes one arrival: meter it, pick the node, and send the
// request across the node's link. Runs on the client engine; a node on
// another shard receives the request as a cross-shard message delivered
// at the same virtual instant the shared engine would have used.
func (c *Cluster) submit(id int) {
	now := c.Eng.Now()
	c.meter.Submitted(id, now)
	if c.rs != nil {
		// Resilient path: every original request feeds the retry
		// budget, and dispatch owns routing, deadlines, and hedging.
		if c.cfg.Retry.Budget != nil {
			c.cfg.Retry.Budget.Deposit()
		}
		if c.spans != nil {
			c.spans[id].Submit = now
		}
		c.dispatch(id, false)
		return
	}
	ni := c.router.Pick(Request{ID: id, Session: c.session(id)})
	if ni < 0 || ni >= len(c.nodes) {
		panic(fmt.Sprintf("cluster: router %s picked node %d of %d", c.router.Name(), ni, len(c.nodes)))
	}
	n := c.nodes[ni]
	n.dispatched++
	n.outstanding++
	if c.spans != nil {
		sp := &c.spans[id]
		sp.Node = n.Name
		sp.Submit = now
	}
	f := &flight{c: c, rid: id, aid: id, node: ni}
	d := n.reqLink.delay(now, c.cfg.Net.RequestLatency, c.cfg.Net.RequestBytes, c.cfg.Net.LinkBandwidth)
	if n.eng == c.Eng {
		c.Eng.AfterFunc(d, deliverFlight, f)
	} else {
		// d >= RequestLatency >= lookahead: every hop delay satisfies
		// the conservative bound by construction.
		c.client.Send(n.shard, now.Add(d), deliverFlight, f)
	}
}

// deliverFlight is the attempt's arrival at its node. Runs on the
// node's engine. Arrivals at a crashed node bounce straight back as
// failure replies.
func deliverFlight(arg any) {
	f := arg.(*flight)
	c := f.c
	n := c.nodes[f.node]
	now := n.eng.Now()
	if n.dead {
		c.sendFail(n, f, now)
		return
	}
	n.inflight[f.aid] = f
	n.meter.Submitted(f.aid, now)
	if c.spans != nil {
		if c.rs != nil {
			f.arrive = now
		} else {
			c.spans[f.rid].Arrive = now
		}
	}
	n.backend.Submit(f.aid)
}

// nodeDone is the backend completion callback: meter the node-internal
// latency and send the reply back across the link. Runs on the node's
// engine. With the fault layer active an unknown attempt id is counted
// and discarded — it is cancelled or crashed-away work finishing on a
// backend that cannot abort — instead of the hard panic the plain path
// keeps for catching real bookkeeping bugs.
func (c *Cluster) nodeDone(ni, id int) {
	n := c.nodes[ni]
	now := n.eng.Now()
	f := n.inflight[id]
	if f == nil || f.node != ni {
		if c.rs != nil {
			n.orphans++
			return
		}
		panic(fmt.Sprintf("cluster: node %d completed unknown request %d", ni, id))
	}
	n.meter.Completed(id, now)
	if c.spans != nil {
		if c.rs != nil {
			f.done = now
		} else {
			c.spans[f.rid].Done = now
		}
	}
	delete(n.inflight, id)
	d := n.repLink.delay(now, c.cfg.Net.ReplyLatency, c.cfg.Net.ReplyBytes, c.cfg.Net.LinkBandwidth)
	if n.eng == c.Eng {
		c.Eng.AfterFunc(d, replyFlight, f)
	} else {
		n.shard.Send(c.client, now.Add(d), replyFlight, f)
	}
}

// replyFlight is the reply's arrival back at the client edge: close the
// end-to-end measurement and, after the final reply, drain the fleet.
// Runs on the client engine; remote nodes receive the stop one
// lookahead later (the earliest safe instant), after all metered work
// is already done.
func replyFlight(arg any) {
	f := arg.(*flight)
	c := f.c
	now := c.Eng.Now()
	if c.rs != nil {
		c.replyResilient(f, now)
		return
	}
	c.meter.Completed(f.rid, now)
	c.nodes[f.node].outstanding--
	c.completed++
	if c.spans != nil {
		c.spans[f.rid].Reply = now
	}
	c.src.Completed(f.rid)
	c.maybeFinish(now)
}

// maybeFinish tears the fleet down once every request has resolved —
// completed end to end or permanently failed: backends stop (remote
// ones a lookahead later) and scraping ends at the resolution instant.
func (c *Cluster) maybeFinish(now sim.Time) {
	if c.finished || c.completed+c.failedReqs != c.total {
		return
	}
	c.finished = true
	c.doneAt = now
	for _, n := range c.nodes {
		if n.eng == c.Eng {
			n.backend.Stop()
		} else {
			c.client.Send(n.shard, now.Add(c.group.Lookahead()), stopNode, n)
		}
	}
	c.stopObs(now)
}

// stopNode drains one remote node's backend, in its own shard context.
func stopNode(arg any) { arg.(*Node).backend.Stop() }

// Completed reports how many requests finished end to end.
func (c *Cluster) Completed() int { return c.completed }

// Run drives the fleet to completion with a horizon (zero means none);
// it reports whether the horizon was hit and tears the whole fleet down
// in that case, exactly like stack.System.Run does for one machine.
// Sharded clusters advance all shards in lockstep windows; the caller
// still sees one blocking call with the same contract.
func (c *Cluster) Run(horizon sim.Duration) (timedOut bool, err error) {
	var hit bool
	if c.group == nil {
		_, hit, err = c.Eng.RunHorizon(horizon)
	} else {
		_, hit, err = c.group.RunHorizon(horizon)
	}
	if err != nil {
		return false, err
	}
	if hit && (c.completed+c.failedReqs < c.total || c.live() > 0) {
		c.killAll()
		if c.served && !c.finished {
			c.abandon(horizon)
		}
		return true, nil
	}
	if c.served && c.completed+c.failedReqs < c.total {
		// The engines ran dry before the horizon with requests missing:
		// a backend lost a request (done not called) — surface it
		// rather than letting partial stats pass as a clean run.
		return false, fmt.Errorf("cluster: engine ran dry with %d of %d requests completed (%d failed)",
			c.completed, c.total, c.failedReqs)
	}
	return false, nil
}

// abandon cleans up a horizon-abandoned run so its telemetry ends in a
// well-defined state: scraping stops at the horizon instant (the same
// shard-invariant cutoff for any shard count), metered in-flight work
// is recorded as failed, and unresolved spans are stamped with the
// abandoned outcome instead of being left as zero rows. Runs from host
// context after KillAll: every engine is quiescent.
func (c *Cluster) abandon(horizon sim.Duration) {
	cutoff := sim.Time(0).Add(horizon)
	if c.clientReg != nil {
		c.clientReg.Stop(cutoff)
		for _, n := range c.nodes {
			n.reg.Stop(cutoff)
		}
	}
	c.meter.FailAll(cutoff)
	for _, n := range c.nodes {
		n.meter.FailAll(cutoff)
	}
	if c.spans != nil {
		for i := range c.spans {
			sp := &c.spans[i]
			if sp.Reply > 0 || sp.Outcome != "" {
				continue
			}
			sp.Outcome = obs.OutcomeAbandoned
			if c.rs != nil {
				rs := &c.rs[i]
				sp.Attempts = rs.attempts
				if f := rs.primary; f != nil {
					sp.Node = c.nodes[f.node].Name
					sp.Arrive, sp.Start, sp.Done = f.arrive, f.start, f.done
				}
			}
		}
	}
}

// live counts live procs across the fleet's engines.
func (c *Cluster) live() int {
	if c.group == nil {
		return c.Eng.Live()
	}
	return c.group.Live()
}

// killAll tears down every live proc on every engine.
func (c *Cluster) killAll() {
	if c.group == nil {
		c.Eng.KillAll()
		return
	}
	c.group.KillAll()
}

// Samples returns the scraped telemetry rows merged across every
// registry (client edge plus one per node) in canonical (At, Node,
// Series) order. Empty when Config.MetricsInterval was zero. Call after
// Run returns — at a barrier, so remote registries are quiescent.
func (c *Cluster) Samples() []obs.Sample {
	if c.clientReg == nil {
		return nil
	}
	groups := make([][]obs.Sample, 0, len(c.nodes)+1)
	groups = append(groups, c.clientReg.Samples())
	for _, n := range c.nodes {
		groups = append(groups, n.reg.Samples())
	}
	return obs.MergeSamples(groups...)
}

// Spans returns the per-request hop timelines in request-id order, or
// nil when Config.Spans was false. Call after Run returns.
func (c *Cluster) Spans() []obs.Span { return c.spans }

// Events reports the total events fired across the fleet's engines, for
// run profiling. Host-side bookkeeping: the count depends on shard
// count (coordination events), so it belongs in profiling reports, not
// in shard-invariant metric exports.
func (c *Cluster) Events() int64 {
	if c.group == nil {
		return int64(c.Eng.Processed())
	}
	var total int64
	for _, s := range c.shards {
		total += int64(s.Engine().Processed())
	}
	return total
}

// WindowStats reports the conservative-window profile of a sharded run
// (zero when unsharded). Like Events, this is profiling data — windows
// only exist when sharded.
func (c *Cluster) WindowStats() pdes.WindowStats {
	if c.group == nil {
		return pdes.WindowStats{}
	}
	return c.group.WindowStats()
}

// NodeStats is one node's slice of a cluster run.
type NodeStats struct {
	Name string
	// Dispatched counts requests the router sent here.
	Dispatched int
	// Internal is the node-internal view: arrival at the node to
	// completion at the node, network excluded.
	Internal load.MeterStats
}

// Stats is a snapshot of a cluster run.
type Stats struct {
	// EndToEnd covers submission to reply arrival: network + queueing +
	// service.
	EndToEnd load.MeterStats
	// Resilience counts the run's fault-handling activity (all zero
	// when no retry policy, fault plan, or health config was set).
	Resilience Resilience
	// Nodes holds per-node views in registration order.
	Nodes []NodeStats
	// NodeP50/P95/P99/P999 are the cluster-aggregated node-internal
	// percentiles: every node's latency population merged into one
	// sketch (metrics.Sketch.Merge), NOT an average of per-node
	// percentiles.
	NodeP50, NodeP95, NodeP99, NodeP999 sim.Duration
	// Imbalance is max/min requests dispatched across nodes (1.0 is a
	// perfect split; +Inf when a node got nothing).
	Imbalance float64
}

// Stats snapshots the cluster's meters.
func (c *Cluster) Stats() Stats {
	st := Stats{EndToEnd: c.meter.Stats(), Resilience: c.Resilience()}
	var agg metrics.Sketch
	minD, maxD := -1, 0
	for _, n := range c.nodes {
		st.Nodes = append(st.Nodes, NodeStats{
			Name:       n.Name,
			Dispatched: n.dispatched,
			Internal:   n.meter.Stats(),
		})
		n.meter.MergeInto(&agg)
		if minD < 0 || n.dispatched < minD {
			minD = n.dispatched
		}
		if n.dispatched > maxD {
			maxD = n.dispatched
		}
	}
	st.NodeP50 = agg.Quantile(0.50)
	st.NodeP95 = agg.Quantile(0.95)
	st.NodeP99 = agg.Quantile(0.99)
	st.NodeP999 = agg.Quantile(0.999)
	if maxD > 0 {
		if minD > 0 {
			st.Imbalance = float64(maxD) / float64(minD)
		} else {
			st.Imbalance = math.Inf(1)
		}
	}
	return st
}
