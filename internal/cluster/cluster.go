// Package cluster turns the simulator from one machine into a fleet: a
// Cluster owns several named Nodes — each a complete simulated system
// (stack.System) with its own kernel, glibc, and USF state — on ONE
// shared discrete-event engine, so a whole multi-node serving estate
// runs in a single deterministic virtual timeline.
//
// Arrivals come from a load.Source, a Router picks the serving node per
// request, and a Network cost model charges per-hop latency plus
// optional per-link serialisation. Latency is metered end to end
// (network + queue + service) on a cluster meter and per node on
// node-internal meters; node populations aggregate into cluster-wide
// percentiles by merging their fixed-memory sketches.
//
// Determinism: nodes share the engine but not RNG namespaces — each
// stack.System draws from its own seed (stack.NewOnEngine), routing
// draws from the engine's "cluster/router" stream, and arrivals from
// "cluster/client" — so any cluster run is byte-reproducible for any
// host parallelism.
package cluster

import (
	"fmt"
	"math"

	"repro/internal/load"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stack"
)

// Backend is a node's serving workload: a resident service (e.g.
// inference.Service) that accepts routed requests and reports each
// completion through the callback it was constructed with. Stop drains
// it after the last completion so the shared engine can run dry.
type Backend interface {
	// Submit delivers request id to the node. Called in event context at
	// the simulated instant the request reaches the node.
	Submit(id int)
	// Stop drains the backend: all resident service processes exit once
	// in-flight work finishes.
	Stop()
}

// Node is one named machine of the fleet.
type Node struct {
	// Name identifies the node (tables, consistent-hash ring).
	Name string
	// Sys is the node's fully wired simulated system.
	Sys *stack.System

	backend Backend
	// meter measures node-internal latency: arrival at the node to
	// completion at the node, excluding the network.
	meter            *load.Meter
	reqLink, repLink link
	outstanding      int
	dispatched       int
}

// Outstanding returns the node's dispatched-but-unreplied request count
// (the signal load-aware routers balance on).
func (n *Node) Outstanding() int { return n.outstanding }

// Dispatched returns how many requests the router sent to this node.
func (n *Node) Dispatched() int { return n.dispatched }

// Meter returns the node-internal latency meter.
func (n *Node) Meter() *load.Meter { return n.meter }

// Config parameterises a cluster.
type Config struct {
	// Net is the communication cost model.
	Net Network
	// SLO is the end-to-end latency objective; node meters judge their
	// node-internal latencies against it too. Zero disables SLO
	// accounting.
	SLO sim.Duration
	// Sessions is the number of distinct session keys arrivals cycle
	// through (request id modulo Sessions), the affinity unit for
	// session-aware routing. Non-positive gives every request its own
	// session.
	Sessions int
}

// flight is one request's routing state, reused across its network hops.
type flight struct {
	c    *Cluster
	id   int
	node int
}

// Cluster is a fleet of nodes behind a router on one shared engine.
type Cluster struct {
	Eng *sim.Engine

	cfg    Config
	router Router
	nodes  []*Node
	meter  *load.Meter // end-to-end: submission to reply arrival
	flight map[int]*flight

	src       load.Source
	total     int
	completed int
	served    bool
}

// New builds an empty cluster on eng. Add nodes, then call Serve.
func New(eng *sim.Engine, cfg Config, r Router) *Cluster {
	return &Cluster{
		Eng:    eng,
		cfg:    cfg,
		router: r,
		meter:  load.NewMeter(cfg.SLO),
		flight: make(map[int]*flight),
	}
}

// Router returns the cluster's routing policy.
func (c *Cluster) Router() Router { return c.router }

// Nodes returns the fleet in registration order.
func (c *Cluster) Nodes() []*Node { return append([]*Node(nil), c.nodes...) }

// Meter returns the cluster's end-to-end meter.
func (c *Cluster) Meter() *load.Meter { return c.meter }

// AddNode registers a node and builds its backend. newBackend receives
// the completion callback the backend must invoke exactly once per
// submitted request (at the completion instant, in any context).
func (c *Cluster) AddNode(name string, sys *stack.System, newBackend func(done func(id int)) Backend) *Node {
	if c.served {
		panic("cluster: AddNode after Serve")
	}
	for _, n := range c.nodes {
		if n.Name == name {
			// Names seed the consistent-hash ring; a duplicate would
			// silently collapse both nodes onto one arc.
			panic("cluster: duplicate node name " + name)
		}
	}
	ni := len(c.nodes)
	n := &Node{Name: name, Sys: sys, meter: load.NewMeter(c.cfg.SLO)}
	c.nodes = append(c.nodes, n)
	n.backend = newBackend(func(id int) { c.nodeDone(ni, id) })
	return n
}

// session maps a request id to its session key.
func (c *Cluster) session(id int) uint64 {
	if c.cfg.Sessions > 0 {
		return uint64(id % c.cfg.Sessions)
	}
	return uint64(id)
}

// Serve starts the arrival process: n requests from src are routed into
// the fleet. Call once, after every AddNode; then drive the engine with
// Run.
func (c *Cluster) Serve(src load.Source, n int) {
	if c.served {
		panic("cluster: Serve called twice")
	}
	if len(c.nodes) == 0 {
		panic("cluster: Serve with no nodes")
	}
	c.served = true
	c.src = src
	c.total = n
	c.router.Bind(c, c.Eng.Rand("cluster/router"))
	src.Start(c.Eng, c.Eng.Rand("cluster/client"), n, c.submit)
}

// submit routes one arrival: meter it, pick the node, and send the
// request across the node's link.
func (c *Cluster) submit(id int) {
	now := c.Eng.Now()
	c.meter.Submitted(id, now)
	ni := c.router.Pick(Request{ID: id, Session: c.session(id)})
	if ni < 0 || ni >= len(c.nodes) {
		panic(fmt.Sprintf("cluster: router %s picked node %d of %d", c.router.Name(), ni, len(c.nodes)))
	}
	n := c.nodes[ni]
	n.dispatched++
	n.outstanding++
	f := &flight{c: c, id: id, node: ni}
	c.flight[id] = f
	d := n.reqLink.delay(now, c.cfg.Net.RequestLatency, c.cfg.Net.RequestBytes, c.cfg.Net.LinkBandwidth)
	c.Eng.AfterFunc(d, deliverFlight, f)
}

// deliverFlight is the request's arrival at its node.
func deliverFlight(arg any) {
	f := arg.(*flight)
	n := f.c.nodes[f.node]
	n.meter.Submitted(f.id, f.c.Eng.Now())
	n.backend.Submit(f.id)
}

// nodeDone is the backend completion callback: meter the node-internal
// latency and send the reply back across the link.
func (c *Cluster) nodeDone(ni, id int) {
	now := c.Eng.Now()
	n := c.nodes[ni]
	n.meter.Completed(id, now)
	f := c.flight[id]
	if f == nil || f.node != ni {
		panic(fmt.Sprintf("cluster: node %d completed unknown request %d", ni, id))
	}
	d := n.repLink.delay(now, c.cfg.Net.ReplyLatency, c.cfg.Net.ReplyBytes, c.cfg.Net.LinkBandwidth)
	c.Eng.AfterFunc(d, replyFlight, f)
}

// replyFlight is the reply's arrival back at the client edge: close the
// end-to-end measurement and, after the final reply, drain the fleet.
func replyFlight(arg any) {
	f := arg.(*flight)
	c := f.c
	now := c.Eng.Now()
	c.meter.Completed(f.id, now)
	delete(c.flight, f.id)
	c.nodes[f.node].outstanding--
	c.completed++
	c.src.Completed(f.id)
	if c.completed == c.total {
		for _, n := range c.nodes {
			n.backend.Stop()
		}
	}
}

// Completed reports how many requests finished end to end.
func (c *Cluster) Completed() int { return c.completed }

// Run drives the shared engine to completion with a horizon (zero means
// none); it reports whether the horizon was hit and tears the whole
// fleet down in that case, exactly like stack.System.Run does for one
// machine.
func (c *Cluster) Run(horizon sim.Duration) (timedOut bool, err error) {
	_, hit, err := c.Eng.RunHorizon(horizon)
	if err != nil {
		return false, err
	}
	if hit && (c.completed < c.total || c.Eng.Live() > 0) {
		c.Eng.KillAll()
		return true, nil
	}
	if c.served && c.completed < c.total {
		// The engine ran dry before the horizon with requests missing:
		// a backend lost a request (done not called) — surface it
		// rather than letting partial stats pass as a clean run.
		return false, fmt.Errorf("cluster: engine ran dry with %d of %d requests completed",
			c.completed, c.total)
	}
	return false, nil
}

// NodeStats is one node's slice of a cluster run.
type NodeStats struct {
	Name string
	// Dispatched counts requests the router sent here.
	Dispatched int
	// Internal is the node-internal view: arrival at the node to
	// completion at the node, network excluded.
	Internal load.MeterStats
}

// Stats is a snapshot of a cluster run.
type Stats struct {
	// EndToEnd covers submission to reply arrival: network + queueing +
	// service.
	EndToEnd load.MeterStats
	// Nodes holds per-node views in registration order.
	Nodes []NodeStats
	// NodeP50/P95/P99/P999 are the cluster-aggregated node-internal
	// percentiles: every node's latency population merged into one
	// sketch (metrics.Sketch.Merge), NOT an average of per-node
	// percentiles.
	NodeP50, NodeP95, NodeP99, NodeP999 sim.Duration
	// Imbalance is max/min requests dispatched across nodes (1.0 is a
	// perfect split; +Inf when a node got nothing).
	Imbalance float64
}

// Stats snapshots the cluster's meters.
func (c *Cluster) Stats() Stats {
	st := Stats{EndToEnd: c.meter.Stats()}
	var agg metrics.Sketch
	minD, maxD := -1, 0
	for _, n := range c.nodes {
		st.Nodes = append(st.Nodes, NodeStats{
			Name:       n.Name,
			Dispatched: n.dispatched,
			Internal:   n.meter.Stats(),
		})
		n.meter.MergeInto(&agg)
		if minD < 0 || n.dispatched < minD {
			minD = n.dispatched
		}
		if n.dispatched > maxD {
			maxD = n.dispatched
		}
	}
	st.NodeP50 = agg.Quantile(0.50)
	st.NodeP95 = agg.Quantile(0.95)
	st.NodeP99 = agg.Quantile(0.99)
	st.NodeP999 = agg.Quantile(0.999)
	if maxD > 0 {
		if minD > 0 {
			st.Imbalance = float64(maxD) / float64(minD)
		} else {
			st.Imbalance = math.Inf(1)
		}
	}
	return st
}
