package cluster

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Deterministic fault injection: a FaultPlan is a declarative schedule
// of node-lifecycle events — crashes, recoveries, brownouts — installed
// as ordinary engine timers on each node's home engine at Serve. Every
// fault therefore fires at a fixed virtual instant in the node's own
// event order, and its client-visible effects travel as network-delayed
// events (failure replies at the reply latency, liveness notices at the
// cross-shard lookahead), so a faulted run is byte-identical for any
// -par or -shards value. A nil plan costs nothing: no timers, no state,
// no branches beyond a nil check at Serve.

// FaultAware is the optional backend extension the fault layer drives.
// Backends that implement it participate fully in crashes and
// brownouts (SimService does); backends that don't (e.g. the full
// inference stack) still have their in-flight requests failed back to
// the client on a crash, but keep computing as zombies — their late
// completions are discarded and counted (Resilience.OrphanDone).
type FaultAware interface {
	// Crash drops all internal state: queued and in-service work is
	// abandoned without completion callbacks (the cluster has already
	// failed those attempts back to the client).
	Crash()
	// Recover returns the backend to service with empty queues.
	Recover()
	// SetSlowdown scales subsequent service times by factor (1 restores
	// nominal speed). Work already in service keeps its old deadline.
	SetSlowdown(factor float64)
}

// abortable is the optional backend extension cancellation uses: Abort
// abandons one submitted attempt (queued or in service) and reports
// whether it was found. Attempts a backend cannot abort simply finish;
// the client edge discards the late reply.
type abortable interface {
	Abort(id int) bool
}

// faultKind discriminates scheduled fault events.
type faultKind uint8

const (
	faultCrash faultKind = iota
	faultRecover
	faultSlowdown
)

// faultEvent is one scheduled fault.
type faultEvent struct {
	node     int
	at       sim.Duration
	kind     faultKind
	slowdown float64
}

// FaultPlan is a declarative, chainable schedule of node faults. Build
// one with NewFaultPlan, add events, and set it as Config.Faults before
// AddNode/Serve. Times are offsets from the start of the run.
type FaultPlan struct {
	events []faultEvent
}

// NewFaultPlan returns an empty schedule.
func NewFaultPlan() *FaultPlan { return &FaultPlan{} }

// Crash schedules node (by registration index) to fail at `at`: its
// in-flight requests fail back to the client path, arrivals bounce
// until recovery, and the router is notified one network lookahead
// later.
func (p *FaultPlan) Crash(node int, at sim.Duration) *FaultPlan {
	p.events = append(p.events, faultEvent{node: node, at: at, kind: faultCrash})
	return p
}

// Recover schedules node to return to service at `at` with empty
// queues; the router re-admits it one network lookahead later.
func (p *FaultPlan) Recover(node int, at sim.Duration) *FaultPlan {
	p.events = append(p.events, faultEvent{node: node, at: at, kind: faultRecover})
	return p
}

// Brownout degrades node between at and at+dur: service times are
// multiplied by slowdown (>1 is slower), then restored. Brownouts are
// silent — no notification is sent; only passive outlier ejection can
// route around them. Backends that are not FaultAware ignore brownouts.
func (p *FaultPlan) Brownout(node int, at, dur sim.Duration, slowdown float64) *FaultPlan {
	p.events = append(p.events,
		faultEvent{node: node, at: at, kind: faultSlowdown, slowdown: slowdown},
		faultEvent{node: node, at: at + dur, kind: faultSlowdown, slowdown: 1})
	return p
}

// Crashes counts scheduled crash events (reporting convenience).
func (p *FaultPlan) Crashes() int {
	n := 0
	for _, ev := range p.events {
		if ev.kind == faultCrash {
			n++
		}
	}
	return n
}

// faultFire carries one scheduled fault to its node-engine timer.
type faultFire struct {
	c  *Cluster
	ev faultEvent
}

// install schedules the plan's events on each target node's home
// engine. Called from Serve, before the run starts.
func (p *FaultPlan) install(c *Cluster) {
	for _, ev := range p.events {
		if ev.node < 0 || ev.node >= len(c.nodes) {
			panic(fmt.Sprintf("cluster: fault plan targets node %d of %d", ev.node, len(c.nodes)))
		}
		n := c.nodes[ev.node]
		n.eng.AtFunc(sim.Time(0).Add(ev.at), fireFault, &faultFire{c: c, ev: ev})
	}
}

// fireFault runs one scheduled fault in its node's engine context.
func fireFault(arg any) {
	ff := arg.(*faultFire)
	c, ev := ff.c, ff.ev
	n := c.nodes[ev.node]
	switch ev.kind {
	case faultCrash:
		c.crashNode(ev.node)
	case faultRecover:
		if !n.dead {
			return
		}
		n.dead = false
		if fa, ok := n.backend.(FaultAware); ok {
			fa.Recover()
		}
		c.notifyHealth(n, ev.node, n.eng.Now(), false)
	case faultSlowdown:
		if fa, ok := n.backend.(FaultAware); ok {
			fa.SetSlowdown(ev.slowdown)
		}
	}
}

// crashNode kills node ni at the current instant of its home engine:
// the backend drops its internal state, every in-flight attempt fails
// back to the client a reply-latency later, and the client edge learns
// of the death one lookahead later (eager removal from routing).
func (c *Cluster) crashNode(ni int) {
	n := c.nodes[ni]
	if n.dead {
		return
	}
	n.dead = true
	if fa, ok := n.backend.(FaultAware); ok {
		fa.Crash()
	}
	now := n.eng.Now()
	// Fail the in-flight attempts in ascending attempt-id order so the
	// failure replies are issued — and therefore delivered — in the
	// same deterministic order for any shard count.
	aids := make([]int, 0, len(n.inflight))
	for aid := range n.inflight { //lint:allow maprange(keys sorted below before any effect escapes)
		aids = append(aids, aid)
	}
	sort.Ints(aids)
	for _, aid := range aids {
		f := n.inflight[aid]
		delete(n.inflight, aid)
		n.meter.Failed(aid, now)
		c.sendFail(n, f, now)
	}
	c.notifyHealth(n, ni, now, true)
}

// sendFail bounces one attempt back to the client edge as a failure
// reply, one reply-latency away (control messages skip link
// serialisation). Runs on the node's engine.
func (c *Cluster) sendFail(n *Node, f *flight, now sim.Time) {
	if n.eng == c.Eng {
		c.Eng.AfterFunc(c.cfg.Net.ReplyLatency, failFlight, f)
	} else {
		n.shard.Send(c.client, now.Add(c.cfg.Net.ReplyLatency), failFlight, f)
	}
}

// healthNote is a node-liveness notification in flight to the client
// edge.
type healthNote struct {
	c    *Cluster
	node int
	down bool
}

// notifyHealth tells the client edge about a liveness change, one
// network lookahead later — the same bound PR 7's stop broadcast rides,
// and the minimum credible detection delay. Runs on the node's engine.
func (c *Cluster) notifyHealth(n *Node, ni int, now sim.Time, down bool) {
	note := &healthNote{c: c, node: ni, down: down}
	if n.eng == c.Eng {
		c.Eng.AfterFunc(c.look, applyHealthNote, note)
	} else {
		n.shard.Send(c.client, now.Add(c.look), applyHealthNote, note)
	}
}

// applyHealthNote updates the client edge's liveness view. Runs on the
// client engine.
func applyHealthNote(arg any) {
	hn := arg.(*healthNote)
	c := hn.c
	if c.hstate == nil {
		return
	}
	h := &c.hstate[hn.node]
	if h.down == hn.down {
		return
	}
	h.down = hn.down
	if !hn.down {
		// A recovered node starts with a clean failure history.
		h.consec = 0
		h.probation = false
	}
	c.bumpEpoch()
}
