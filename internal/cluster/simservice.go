package cluster

import (
	"sort"

	"repro/internal/sim"
)

// SimService is a lightweight queue-model backend: Workers parallel
// servers drain a bounded FIFO queue, and each request's service time
// is an exponential draw around MeanService (scaled by the current
// brownout slowdown). It exists so fault-and-resilience experiments can
// run thousand-request fleets in milliseconds without simulating a full
// kernel per node — and, unlike the full stack, it is FaultAware and
// abortable: crashes drop its state instantly, brownouts stretch its
// service times, and cancelled attempts stop occupying a worker.
//
// Determinism: service times are drawn from a labelled stream of the
// node's home engine, consumed only in that engine's event order, so a
// SimService fleet is byte-identical for any -par or -shards value.
type SimServiceConfig struct {
	// Workers is the number of parallel servers (default 1).
	Workers int
	// QueueCap bounds the wait queue; an arrival beyond it is shed —
	// failed straight back to the client (admission control at the
	// node). Non-positive means unbounded.
	QueueCap int
	// MeanService is the mean of the exponential service-time draw.
	MeanService sim.Duration
	// Quantum, when positive, rounds every service draw up to a positive
	// multiple of it, keeping completions on the simulation's shared
	// quantum grid (tie-free timelines; see sim/pdes). Zero keeps the
	// continuous draw.
	Quantum sim.Duration
}

// SimService implements Backend, FaultAware, and abortable. Build one
// per node with Cluster.AddSimNode. All state is homed on the node's
// engine.
type SimService struct {
	eng  *sim.Engine
	rng  *sim.Rand
	cfg  SimServiceConfig
	done func(id int)
	fail func(id int)
	// started is the cluster's span hook (nil when spans are off).
	started func(id int)

	busy     int
	queue    []int
	slowdown float64
	dead     bool
	// timers holds the completion timer per in-service attempt so
	// crashes and aborts can cancel the work.
	timers map[int]sim.Event
	// shedCount and aborted count queue-full refusals and cancelled
	// attempts.
	shedCount int
	aborted   int
}

// newSimService wires a SimService on eng; the cluster supplies the
// completion and failure callbacks.
func newSimService(eng *sim.Engine, name string, cfg SimServiceConfig, done, fail func(id int)) *SimService {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MeanService <= 0 {
		cfg.MeanService = sim.Millisecond
	}
	return &SimService{
		eng:      eng,
		rng:      eng.Rand("cluster/simsvc/" + name),
		cfg:      cfg,
		done:     done,
		fail:     fail,
		slowdown: 1,
		timers:   make(map[int]sim.Event),
	}
}

// svcDone carries one completion timer's target.
type svcDone struct {
	s  *SimService
	id int
}

// Submit implements Backend: start service if a worker is free, queue
// otherwise, shed if the queue is full.
func (s *SimService) Submit(id int) {
	if s.dead {
		// The cluster bounces arrivals at dead nodes before Submit;
		// reaching here means a stale queue dispatch — drop it.
		return
	}
	if s.busy < s.cfg.Workers {
		s.start(id)
		return
	}
	if s.cfg.QueueCap > 0 && len(s.queue) >= s.cfg.QueueCap {
		s.shedCount++
		s.fail(id)
		return
	}
	s.queue = append(s.queue, id)
}

// start begins service on id: one exponential service-time draw,
// stretched by the current slowdown.
func (s *SimService) start(id int) {
	s.busy++
	if s.started != nil {
		s.started(id)
	}
	d := sim.Duration(float64(s.cfg.MeanService) * s.slowdown * s.rng.ExpFloat64())
	if q := s.cfg.Quantum; q > 0 {
		d = d/q*q + q
	} else {
		d++
	}
	s.timers[id] = s.eng.AfterFunc(d, fireSvcDone, &svcDone{s: s, id: id})
}

// fireSvcDone completes one in-service attempt.
func fireSvcDone(arg any) {
	sd := arg.(*svcDone)
	s := sd.s
	delete(s.timers, sd.id)
	s.busy--
	s.done(sd.id)
	s.next()
}

// next dispatches the oldest queued attempt if a worker is free.
func (s *SimService) next() {
	if s.dead || s.busy >= s.cfg.Workers || len(s.queue) == 0 {
		return
	}
	id := s.queue[0]
	s.queue = s.queue[1:]
	s.start(id)
}

// Stop implements Backend: discard remaining internal state so the
// engine can run dry. Outstanding work is abandoned (its requests have
// already resolved or been failed by the cluster).
func (s *SimService) Stop() {
	s.cancelAllTimers()
	s.queue = nil
	s.busy = 0
}

// Crash implements FaultAware: all queued and in-service work vanishes.
// The cluster fails the node's in-flight attempts back to the client;
// SimService only drops its internal state.
func (s *SimService) Crash() {
	s.dead = true
	s.cancelAllTimers()
	s.queue = s.queue[:0]
	s.busy = 0
}

// Recover implements FaultAware.
func (s *SimService) Recover() {
	s.dead = false
}

// SetSlowdown implements FaultAware: future service draws are scaled by
// factor. Work already in service keeps its original deadline.
func (s *SimService) SetSlowdown(factor float64) {
	if factor <= 0 {
		factor = 1
	}
	s.slowdown = factor
}

// Abort implements abortable: drop one attempt, wherever it is.
func (s *SimService) Abort(id int) bool {
	if ev, ok := s.timers[id]; ok {
		ev.Cancel()
		delete(s.timers, id)
		s.busy--
		s.aborted++
		s.next()
		return true
	}
	for i, q := range s.queue {
		if q == id {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.aborted++
			return true
		}
	}
	return false
}

// cancelAllTimers cancels every in-service completion timer, in id
// order so cancellation order is deterministic.
func (s *SimService) cancelAllTimers() {
	if len(s.timers) == 0 {
		return
	}
	ids := make([]int, 0, len(s.timers))
	for id := range s.timers { //lint:allow maprange(keys sorted below before any effect escapes)
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		s.timers[id].Cancel()
		delete(s.timers, id)
	}
}

// Shed counts arrivals refused because the queue was full.
func (s *SimService) Shed() int { return s.shedCount }

// Aborted counts attempts cancelled mid-queue or mid-service.
func (s *SimService) Aborted() int { return s.aborted }

// QueueLen returns the current wait-queue depth.
func (s *SimService) QueueLen() int { return len(s.queue) }

// AddSimNode registers a SimService-backed node (no stack.System): the
// fast path for fault-injection fleets. The returned service backs the
// node and participates in crashes, brownouts, and cancellation.
func (c *Cluster) AddSimNode(name string, scfg SimServiceConfig) *SimService {
	ni := len(c.nodes)
	var svc *SimService
	c.AddNode(name, nil, func(done func(id int)) Backend {
		svc = newSimService(c.NodeEngine(ni), name, scfg, done,
			func(id int) { c.nodeFail(ni, id) })
		return svc
	})
	svc.started = c.StartedFunc(ni)
	return svc
}

// nodeFail is the node-side failure callback (queue shed): the attempt
// leaves the node and a failure reply heads back to the client. Runs on
// the node's engine.
func (c *Cluster) nodeFail(ni, aid int) {
	n := c.nodes[ni]
	f := n.inflight[aid]
	if f == nil {
		return
	}
	delete(n.inflight, aid)
	now := n.eng.Now()
	n.meter.Failed(aid, now)
	c.sendFail(n, f, now)
}
