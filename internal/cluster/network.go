package cluster

import "repro/internal/sim"

// Network is the cluster's communication cost model. Every request
// crosses one client→node hop and every reply one node→client hop; each
// hop pays a fixed propagation latency plus, when LinkBandwidth is set,
// a store-and-forward serialisation delay on the node's private link.
// Links are full duplex: requests and replies queue independently.
//
// The model is deliberately deterministic and allocation-free: link
// occupancy is a single next-free instant per direction, so a burst of
// routed requests to one node serialises on its link exactly like
// back-to-back frames on a NIC.
type Network struct {
	// RequestLatency is the one-way client→node propagation delay.
	RequestLatency sim.Duration
	// ReplyLatency is the one-way node→client propagation delay.
	ReplyLatency sim.Duration
	// RequestBytes and ReplyBytes are the per-message payload sizes used
	// for serialisation when LinkBandwidth is non-zero.
	RequestBytes, ReplyBytes int64
	// LinkBandwidth is each node link's bandwidth in bytes per virtual
	// nanosecond (i.e. GB/s), per direction. Zero means infinite
	// bandwidth: hops cost only propagation.
	LinkBandwidth float64
}

// link tracks one direction of one node's access link.
type link struct {
	nextFree sim.Time
}

// delay returns the total hop delay for a message of size bytes sent at
// now, and advances the link clock: queue behind earlier transfers,
// serialise at bw, then propagate.
func (l *link) delay(now sim.Time, prop sim.Duration, bytes int64, bw float64) sim.Duration {
	if bw <= 0 || bytes <= 0 {
		return prop
	}
	start := now
	if l.nextFree > start {
		start = l.nextFree
	}
	ser := sim.Duration(float64(bytes) / bw)
	l.nextFree = start.Add(ser)
	return start.Sub(now) + ser + prop
}
