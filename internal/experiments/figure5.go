package experiments

import (
	"fmt"
	"strings"

	"repro/internal/harness"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/workloads/md"
)

// Figure5Config parameterises the §5.6 LAMMPS+DeePMD study.
type Figure5Config struct {
	Scenarios []md.Scenario
	// Base is the template configuration; the scenario field is
	// overridden per run (and ranks halved for colocation).
	Base md.Config
}

// AllScenarios lists Fig. 5a's seven bars.
func AllScenarios() []md.Scenario {
	return []md.Scenario{
		md.Exclusive,
		md.ColocationNode, md.ColocationSocket,
		md.CoexecutionNode, md.CoexecutionSocket,
		md.SchedCoopNode, md.SchedCoopSocket,
	}
}

// DefaultFigure5 returns the paper-shaped configuration (shortened to 20
// steps to keep full runs tractable; shapes are step-count invariant).
func DefaultFigure5() Figure5Config {
	base := md.DefaultConfig(md.Exclusive)
	base.Steps = 20
	base.InitWork = 8 * sim.Second
	return Figure5Config{Scenarios: AllScenarios(), Base: base}
}

// QuickFigure5 is a fast, small variant.
func QuickFigure5() Figure5Config {
	return Figure5Config{
		Scenarios: AllScenarios(),
		Base: md.Config{
			Machine:          hw.DualSocket16(),
			Ensembles:        2,
			RanksPerEnsemble: 8,
			OMPPerRank:       2,
			Steps:            5,
			Atoms:            4000,
			Regions:          14,
			PerAtomWork:      650 * sim.Microsecond,
			BWPerThread:      2.0,
			InitWork:         500 * sim.Millisecond,
			Horizon:          1200 * sim.Second,
			Seed:             11,
		},
	}
}

// Figure5Entry is one scenario's result.
type Figure5Entry struct {
	Scenario md.Scenario
	md.Result
}

// Figure5Result holds all scenarios.
type Figure5Result struct {
	Config  Figure5Config
	Entries []Figure5Entry
}

// Figure5Jobs expands the study into one job per MD scenario, in the
// order AssembleFigure5 expects.
func Figure5Jobs(cfg Figure5Config) []harness.Job {
	var jobs []harness.Job
	for _, s := range cfg.Scenarios {
		s := s
		c := cfg.Base
		c.Scenario = s
		if s.Colocated() {
			c.RanksPerEnsemble = cfg.Base.RanksPerEnsemble / 2
		}
		jobs = append(jobs, harness.Job{
			Name: s.String(),
			Run: func() harness.Output {
				res := md.Run(c)
				return harness.Output{
					Value:    Figure5Entry{Scenario: s, Result: res},
					SimTime:  res.Elapsed,
					TimedOut: res.TimedOut,
				}
			},
		})
	}
	return jobs
}

// AssembleFigure5 collects ordered scenario results.
func AssembleFigure5(cfg Figure5Config, results []harness.Result) *Figure5Result {
	out := &Figure5Result{Config: cfg}
	for _, r := range results {
		out.Entries = append(out.Entries, r.Value.(Figure5Entry))
	}
	return out
}

// RunFigure5 executes all scenarios serially.
func RunFigure5(cfg Figure5Config) *Figure5Result {
	return AssembleFigure5(cfg, harness.Run(Figure5Jobs(cfg), 1))
}

// Entry returns the result for a scenario, or nil.
func (r *Figure5Result) Entry(s md.Scenario) *Figure5Entry {
	for i := range r.Entries {
		if r.Entries[i].Scenario == s {
			return &r.Entries[i]
		}
	}
	return nil
}

// Render prints Fig. 5a's bars and 5b's bandwidth summary.
func (r *Figure5Result) Render() string {
	var sb strings.Builder
	sb.WriteString("\na) Performance (Katom-step/s per ensemble; aggregate)\n")
	for _, e := range r.Entries {
		if e.TimedOut {
			fmt.Fprintf(&sb, "%22s  timeout\n", e.Scenario)
			continue
		}
		fmt.Fprintf(&sb, "%22s  ", e.Scenario)
		for _, v := range e.PerEnsemble {
			fmt.Fprintf(&sb, "%7.1f", v)
		}
		fmt.Fprintf(&sb, "   agg %7.1f\n", e.Aggregate)
	}
	sb.WriteString("\nb) Average total memory bandwidth (GB/s)\n")
	for _, e := range r.Entries {
		if e.TimedOut {
			continue
		}
		fmt.Fprintf(&sb, "%22s  %7.2f (peak %7.2f)\n", e.Scenario, e.AvgBandwidth, e.BW.Max())
	}
	return sb.String()
}

// RenderBWTrace prints an ASCII bandwidth-over-time trace for a scenario
// (Fig. 5b's curve), resampled to n points.
func (r *Figure5Result) RenderBWTrace(s md.Scenario, n int) string {
	e := r.Entry(s)
	if e == nil || e.BW.Len() == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "\n%s bandwidth trace (GB/s)\n", s)
	ts, vs := e.BW.Resample(0, sim.Time(e.Elapsed), n)
	max := e.BW.Max()
	for i := range ts {
		bars := 0
		if max > 0 {
			bars = int(vs[i] / max * 60)
		}
		fmt.Fprintf(&sb, "%8.1fs %7.1f %s\n", ts[i].Seconds(), vs[i], strings.Repeat("#", bars))
	}
	return sb.String()
}
