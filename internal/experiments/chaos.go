package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/harness"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/sim"
)

// The chaos scenario asks the production-scale question the static
// fleet cannot: when a node dies (or browns out) under load, does the
// serving stack degrade gracefully or collapse into a retry storm? A
// SimService fleet (lightweight queue-model nodes, so thousands of
// requests simulate in milliseconds) is driven by an open-loop Poisson
// source while a deterministic FaultPlan kills and recovers — or
// browns out — one node mid-run. The sweep crosses fault leg × retry
// policy × router and reports goodput, tails, failure/retry/hedge/shed
// counts, and a time-to-recover metric. The headline is the classic
// metastable-failure result: naive unlimited retries amplify the
// outage past the fleet's knee and hold goodput down long after the
// node returns, while a token-bucket retry budget (plus bounded node
// queues shedding excess work) converts the overload into fast
// failures and recovers promptly.

// chaosQuantum is the sweep's timeline grid: every configured duration
// is a multiple of it, every random duration (service times, backoffs)
// is rounded up to a multiple of it, and PhasedPoisson gives request id
// the unique sub-quantum phase id+1. Events of different requests can
// then never share an exact nanosecond — the one tie the sharded
// runtime's determinism contract excludes (see sim/pdes) and which a
// retry storm's event density would otherwise produce by birthday
// paradox. 2^15 ns of phase space bounds Requests at 32767.
const chaosQuantum = 32768 * sim.Nanosecond

// chaosAlign snaps a human-readable duration down onto the grid.
func chaosAlign(d sim.Duration) sim.Duration { return d - d%chaosQuantum }

// ChaosPolicy names one client-side retry policy and builds fresh
// single-use instances (the retry budget is stateful).
type ChaosPolicy struct {
	// Name labels the policy in rows ("none", "unlimited", ...).
	Name string
	// New builds the policy for one cell.
	New func(cfg ChaosConfig) load.RetryPolicy
}

// ChaosFault names one fault leg and builds its schedule.
type ChaosFault struct {
	// Name labels the leg ("kill", "brownout").
	Name string
	// Plan builds the fault schedule for one cell.
	Plan func(cfg ChaosConfig) *cluster.FaultPlan
	// ClearAt is the instant the fault is gone (recovery applied,
	// brownout over) — the baseline the time-to-recover metric measures
	// from.
	ClearAt sim.Duration
}

// ChaosConfig parameterises the fault-injection sweep.
type ChaosConfig struct {
	// Nodes is the fleet size; Workers, QueueCap, and MeanService
	// parameterise each node's SimService backend.
	Nodes       int
	Workers     int
	QueueCap    int
	MeanService sim.Duration

	Net      cluster.Network
	Sessions int

	// Rate is the offered load (req/s); Requests the train length.
	Rate     float64
	Requests int

	// FaultAt and ClearAt time the fault legs: the kill leg crashes a
	// node at FaultAt and recovers it at ClearAt; the brownout leg
	// degrades it over the same window.
	FaultAt sim.Duration
	ClearAt sim.Duration
	// BrownoutSlowdown is the brownout leg's service-time multiplier.
	BrownoutSlowdown float64

	// Timeout, Backoff, MaxBackoff, BudgetRatio, BudgetBurst, and
	// HedgeDelay parameterise the retry policies.
	Timeout     sim.Duration
	Backoff     sim.Duration
	MaxBackoff  sim.Duration
	BudgetRatio float64
	BudgetBurst float64
	HedgeDelay  sim.Duration

	// Health is the passive outlier-ejection config applied to every
	// cell.
	Health cluster.HealthConfig

	// SLO judges goodput; SLOBudget is unused here but kept for
	// symmetry with the other fleet sweeps.
	SLO sim.Duration

	Faults   []ChaosFault
	Policies []ChaosPolicy
	Routers  []ClusterRouter

	Horizon sim.Duration
	Seed    uint64
	Shards  int

	// MetricsInterval and Spans export telemetry like the cluster
	// sweep. Spans are always recorded internally (the time-to-recover
	// metric needs reply instants); the flag only controls export.
	MetricsInterval sim.Duration
	Spans           bool

	// RecoverWindow and RecoverFrac define recovery: the first window
	// after ClearAt in which SLO-met completions arrive at ≥
	// RecoverFrac × Rate, sustained for two consecutive windows.
	RecoverWindow sim.Duration
	RecoverFrac   float64
}

// ChaosPolicies returns the compared retry policies: no retries at
// all, naive unlimited retries (the metastable-collapse fuel), retries
// under a token-bucket budget, and budgeted retries with hedging.
func ChaosPolicies() []ChaosPolicy {
	return []ChaosPolicy{
		{Name: "none", New: func(ChaosConfig) load.RetryPolicy {
			return load.RetryPolicy{}
		}},
		{Name: "unlimited", New: func(cfg ChaosConfig) load.RetryPolicy {
			return load.RetryPolicy{
				Timeout:     cfg.Timeout,
				MaxAttempts: 0, // retry forever
				BaseBackoff: cfg.Backoff,
				MaxBackoff:  cfg.MaxBackoff,
				Quantum:     chaosQuantum,
			}
		}},
		{Name: "budgeted", New: func(cfg ChaosConfig) load.RetryPolicy {
			return load.RetryPolicy{
				Timeout:     cfg.Timeout,
				MaxAttempts: 4,
				BaseBackoff: cfg.Backoff,
				MaxBackoff:  cfg.MaxBackoff,
				Budget:      load.NewRetryBudget(cfg.BudgetRatio, cfg.BudgetBurst),
				Quantum:     chaosQuantum,
			}
		}},
		{Name: "hedged", New: func(cfg ChaosConfig) load.RetryPolicy {
			return load.RetryPolicy{
				Timeout:     cfg.Timeout,
				MaxAttempts: 4,
				BaseBackoff: cfg.Backoff,
				MaxBackoff:  cfg.MaxBackoff,
				Budget:      load.NewRetryBudget(cfg.BudgetRatio, cfg.BudgetBurst),
				HedgeDelay:  cfg.HedgeDelay,
				Quantum:     chaosQuantum,
			}
		}},
	}
}

// ChaosFaults returns the fault legs: kill-under-load (crash at
// FaultAt, recover at ClearAt) and a brownout over the same window.
func ChaosFaults(cfg ChaosConfig) []ChaosFault {
	return []ChaosFault{
		{Name: "kill", ClearAt: cfg.ClearAt, Plan: func(cfg ChaosConfig) *cluster.FaultPlan {
			return cluster.NewFaultPlan().
				Crash(0, cfg.FaultAt).
				Recover(0, cfg.ClearAt)
		}},
		{Name: "brownout", ClearAt: cfg.ClearAt, Plan: func(cfg ChaosConfig) *cluster.FaultPlan {
			return cluster.NewFaultPlan().
				Brownout(0, cfg.FaultAt, cfg.ClearAt-cfg.FaultAt, cfg.BrownoutSlowdown)
		}},
	}
}

// DefaultChaos returns the full sweep: a four-node fleet near 70%
// utilisation, a six-second outage, and all three routers.
func DefaultChaos() ChaosConfig {
	cfg := ChaosConfig{
		Nodes:       4,
		Workers:     8,
		QueueCap:    64,
		MeanService: 25 * sim.Millisecond,
		// Pure-latency network (no serialisation quantum), with hop
		// latencies on the chaosQuantum grid like every other configured
		// duration, so request phases survive every hop.
		Net: cluster.Network{
			RequestLatency: 8 * chaosQuantum, // ≈262µs
			ReplyLatency:   8 * chaosQuantum,
		},
		Sessions:         64,
		Rate:             1050,
		Requests:         18000,
		FaultAt:          chaosAlign(3 * sim.Second),
		ClearAt:          chaosAlign(9 * sim.Second),
		BrownoutSlowdown: 4,
		Timeout:          chaosAlign(150 * sim.Millisecond),
		Backoff:          chaosAlign(10 * sim.Millisecond),
		MaxBackoff:       chaosAlign(80 * sim.Millisecond),
		BudgetRatio:      0.15,
		BudgetBurst:      50,
		HedgeDelay:       chaosAlign(75 * sim.Millisecond),
		Health: cluster.HealthConfig{
			EjectAfter: 5,
			Cooldown:   chaosAlign(sim.Second),
		},
		SLO:           250 * sim.Millisecond,
		Policies:      ChaosPolicies(),
		Routers:       ClusterRouters(),
		Horizon:       300 * sim.Second,
		Seed:          47,
		RecoverWindow: 500 * sim.Millisecond,
		RecoverFrac:   0.5,
	}
	cfg.Faults = ChaosFaults(cfg)
	return cfg
}

// QuickChaos returns the small fast sweep: three nodes, a four-second
// outage, round-robin and least-outstanding routing.
func QuickChaos() ChaosConfig {
	cfg := DefaultChaos()
	cfg.Nodes = 3
	cfg.Workers = 4
	cfg.MeanService = 20 * sim.Millisecond
	cfg.Rate = 480
	cfg.Requests = 6000
	cfg.FaultAt = chaosAlign(2 * sim.Second)
	cfg.ClearAt = chaosAlign(6 * sim.Second)
	cfg.Sessions = 24
	cfg.Routers = ClusterRouters()[:2] // rr, p2c
	cfg.Horizon = 120 * sim.Second
	cfg.Faults = ChaosFaults(cfg)
	return cfg
}

// ChaosCell is one (fault, policy, router) measurement.
type ChaosCell struct {
	Fault, Policy, Router string
	Stats                 cluster.Stats
	Elapsed               sim.Duration
	TimedOut              bool
	// TTR is the time-to-recover: how long after the fault cleared the
	// fleet sustained SLO-met goodput at RecoverFrac of the offered
	// rate again. Negative means it never recovered within the run.
	TTR sim.Duration
	// NodeShed counts arrivals the nodes' bounded queues refused.
	NodeShed int
	Samples  []obs.Sample
	Spans    []obs.Span
	Events   int64
	Windows  int64
	// WindowWidthSum profiles sharded cells' conservative windows.
	WindowWidthSum sim.Duration
}

// runChaosCell builds the faulted fleet and serves the request train
// through it.
func runChaosCell(cfg ChaosConfig, fault ChaosFault, policy ChaosPolicy, router ClusterRouter) ChaosCell {
	cl := cluster.NewSharded(cluster.Config{
		Net:             cfg.Net,
		SLO:             cfg.SLO,
		Sessions:        cfg.Sessions,
		MetricsInterval: cfg.MetricsInterval,
		Spans:           true, // TTR needs reply instants; export is gated below
		Retry:           policy.New(cfg),
		Faults:          fault.Plan(cfg),
		Health:          cfg.Health,
	}, router.New(), cfg.Shards, cfg.Seed)
	var svcs []*cluster.SimService
	for i := 0; i < cfg.Nodes; i++ {
		svcs = append(svcs, cl.AddSimNode(fmt.Sprintf("sim%d", i), cluster.SimServiceConfig{
			Workers:     cfg.Workers,
			QueueCap:    cfg.QueueCap,
			MeanService: cfg.MeanService,
			Quantum:     chaosQuantum,
		}))
	}
	cl.Serve(&load.PhasedPoisson{Rate: cfg.Rate, Quantum: chaosQuantum}, cfg.Requests)
	timedOut, err := cl.Run(cfg.Horizon)
	if err != nil {
		panic(err)
	}
	ws := cl.WindowStats()
	cell := ChaosCell{
		Fault: fault.Name, Policy: policy.Name, Router: router.Name,
		Stats:          cl.Stats(),
		Elapsed:        cl.Elapsed(),
		TimedOut:       timedOut,
		TTR:            timeToRecover(cfg, fault, cl.Spans()),
		Samples:        cl.Samples(),
		Events:         cl.Events(),
		Windows:        ws.Windows,
		WindowWidthSum: ws.WidthSum,
	}
	for _, s := range svcs {
		cell.NodeShed += s.Shed()
	}
	if cfg.Spans {
		cell.Spans = cl.Spans()
	}
	return cell
}

// timeToRecover scans SLO-met completions in reply order and returns
// how long after the fault cleared the fleet first sustained goodput at
// RecoverFrac × Rate for two consecutive windows. Negative means never.
func timeToRecover(cfg ChaosConfig, fault ChaosFault, spans []obs.Span) sim.Duration {
	w := cfg.RecoverWindow
	if w <= 0 {
		w = 500 * sim.Millisecond
	}
	// Bin SLO-met replies into fixed windows from run start.
	var replies []sim.Time
	lastSubmit := sim.Time(0)
	for _, s := range spans {
		if s.Submit > lastSubmit {
			lastSubmit = s.Submit
		}
		if s.Complete() && s.Total() <= cfg.SLO {
			replies = append(replies, s.Reply)
		}
	}
	sort.Slice(replies, func(a, b int) bool { return replies[a] < replies[b] })
	need := cfg.RecoverFrac * cfg.Rate * w.Seconds()
	clear := sim.Time(0).Add(fault.ClearAt)
	// First bin that starts at or after the clear instant, so the
	// returned delay is never negative.
	firstBin := int((int64(clear) + int64(w) - 1) / int64(w))
	// Only scan bins while arrivals are still flowing: after the train
	// ends the offered-rate baseline is meaningless.
	lastBin := int(int64(lastSubmit) / int64(w))
	count := make(map[int]int)
	for _, r := range replies {
		count[int(int64(r)/int64(w))]++
	}
	for b := firstBin; b+1 <= lastBin; b++ {
		if float64(count[b]) >= need && float64(count[b+1]) >= need {
			return sim.Duration(int64(b)*int64(w)) - fault.ClearAt
		}
	}
	return -1
}

// ChaosResult holds cells indexed [fault][policy][router] in config
// order.
type ChaosResult struct {
	Config ChaosConfig
	Cells  [][][]ChaosCell
}

// ChaosJobs expands the sweep fault-major, then policy, then router, as
// AssembleChaos expects.
func ChaosJobs(cfg ChaosConfig) []harness.Job {
	var jobs []harness.Job
	for _, fault := range cfg.Faults {
		for _, policy := range cfg.Policies {
			for _, router := range cfg.Routers {
				fault, policy, router := fault, policy, router
				jobs = append(jobs, harness.Job{
					Name: fmt.Sprintf("%s/%s/%s", fault.Name, policy.Name, router.Name),
					Run: func() harness.Output {
						cell := runChaosCell(cfg, fault, policy, router)
						return harness.Output{
							Value:          cell,
							SimTime:        cell.Elapsed,
							TimedOut:       cell.TimedOut,
							Events:         cell.Events,
							Windows:        cell.Windows,
							WindowWidthSum: cell.WindowWidthSum,
							Samples:        cell.Samples,
							Spans:          cell.Spans,
						}
					},
				})
			}
		}
	}
	return jobs
}

// AssembleChaos rebuilds the 3-D grid from ordered cell results.
func AssembleChaos(cfg ChaosConfig, results []harness.Result) *ChaosResult {
	out := &ChaosResult{Config: cfg}
	i := 0
	for range cfg.Faults {
		byPolicy := make([][]ChaosCell, len(cfg.Policies))
		for pi := range cfg.Policies {
			row := make([]ChaosCell, len(cfg.Routers))
			for ri := range cfg.Routers {
				row[ri] = results[i].Value.(ChaosCell)
				i++
			}
			byPolicy[pi] = row
		}
		out.Cells = append(out.Cells, byPolicy)
	}
	return out
}

// RunChaos executes the sweep serially.
func RunChaos(cfg ChaosConfig) *ChaosResult {
	return AssembleChaos(cfg, harness.Run(ChaosJobs(cfg), 1))
}

// Cell returns the measurement at (fault, policy, router) indices.
func (r *ChaosResult) Cell(fi, pi, ri int) *ChaosCell {
	return &r.Cells[fi][pi][ri]
}

// Render prints one table per fault leg: goodput, p99, outcome and
// resilience counts, and time-to-recover per (router, policy) row.
func (r *ChaosResult) Render() string {
	cfg := r.Config
	var sb strings.Builder
	fmt.Fprintf(&sb, "chaos: %d nodes x %d workers, %.0f req/s offered, SLO %.0fms\n",
		cfg.Nodes, cfg.Workers, cfg.Rate, float64(cfg.SLO.Milliseconds()))
	fmt.Fprintf(&sb, "fault at %.1fs, cleared at %.1fs; * marks runs that hit the horizon\n",
		cfg.FaultAt.Seconds(), cfg.ClearAt.Seconds())
	for fi, fault := range cfg.Faults {
		fmt.Fprintf(&sb, "\n--- fault: %s ---\n", fault.Name)
		fmt.Fprintf(&sb, "%22s%9s%9s%7s%7s%8s%8s%7s%7s%9s\n",
			"router/policy", "goodput", "p99_ms", "ok", "fail", "retry", "hedge", "shed", "tmout", "ttr_s")
		for ri := range cfg.Routers {
			for pi := range cfg.Policies {
				c := r.Cell(fi, pi, ri)
				st := c.Stats.EndToEnd
				res := c.Stats.Resilience
				label := fmt.Sprintf("%s/%s", cfg.Routers[ri].Name, cfg.Policies[pi].Name)
				if c.TimedOut {
					label += "*"
				}
				ttr := "never"
				if c.TTR >= 0 {
					ttr = fmt.Sprintf("%.2f", c.TTR.Seconds())
				}
				fmt.Fprintf(&sb, "%22s%9.1f%9.1f%7d%7d%8d%8d%7d%7d%9s\n",
					label,
					st.Goodput,
					float64(st.P99.Milliseconds()),
					st.Completed,
					res.Failed,
					res.Retries,
					res.Hedges,
					res.Shed+c.NodeShed,
					res.Timeouts,
					ttr)
			}
		}
	}
	return sb.String()
}
