package experiments

import (
	"fmt"
	"strings"

	"repro/internal/harness"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/workloads/inference"
)

// Figure4Config parameterises the §5.5 microservices sweep.
type Figure4Config struct {
	Machine  hw.Config
	Rates    []float64
	Schemes  []inference.Scheme
	Requests int
	Batches  int
	Scale    float64
	Models   []inference.Model
	// TimelineRate is the rate whose per-request timeline is recorded
	// (paper: 0.33).
	TimelineRate float64
	Horizon      sim.Duration
	Seed         uint64
}

// PaperRates are Fig. 4's x-axis request rates.
func PaperRates() []float64 {
	return []float64{0.11, 0.12, 0.14, 0.17, 0.2, 0.25, 0.33, 0.5, 1.0}
}

// AllSchemes lists Fig. 4's five schemes.
func AllSchemes() []inference.Scheme {
	return []inference.Scheme{
		inference.BlEq, inference.BlOpt, inference.BlNone,
		inference.BlNoneSeq, inference.Coop,
	}
}

// DefaultFigure4 returns the paper-shaped configuration at 20% scale
// (works and rates scaled together, preserving the load factor).
func DefaultFigure4() Figure4Config {
	return Figure4Config{
		Machine:      hw.MareNostrum5(),
		Rates:        PaperRates(),
		Schemes:      AllSchemes(),
		Requests:     28,
		Batches:      8,
		Scale:        0.2,
		TimelineRate: 0.33,
		Horizon:      4000 * sim.Second,
		Seed:         9,
	}
}

// quickModels returns the 10%-work model profiles shared by the quick
// microservices configurations (Figure 4 and schedcmp).
func quickModels() []inference.Model {
	return []inference.Model{
		{Name: "llama", Work: 5770 * sim.Millisecond, SerialFrac: 0.06, Threads: 8, OptShare: 0.64},
		{Name: "gpt2", Work: 1010 * sim.Millisecond, SerialFrac: 0.06, Threads: 4, OptShare: 0.21},
		{Name: "roberta", Work: 676 * sim.Millisecond, SerialFrac: 0.06, Threads: 4, OptShare: 0.14},
	}
}

// QuickFigure4 is a fast, small variant.
func QuickFigure4() Figure4Config {
	models := quickModels()
	return Figure4Config{
		Machine:      hw.DualSocket16(),
		Rates:        []float64{0.33, 1.0},
		Schemes:      AllSchemes(),
		Requests:     8,
		Batches:      4,
		Scale:        0.2,
		Models:       models,
		TimelineRate: 0.33,
		Horizon:      4000 * sim.Second,
		Seed:         9,
	}
}

// Figure4Point is one (scheme, rate) measurement.
type Figure4Point struct {
	Scheme inference.Scheme
	Rate   float64
	inference.Result
}

// Figure4Result holds the sweep plus the rate-0.33 timelines.
type Figure4Result struct {
	Config Figure4Config
	Points []Figure4Point
	// Timelines maps scheme -> per-request trace at TimelineRate.
	Timelines map[inference.Scheme][]inference.RequestTrace
}

// Figure4Jobs expands the sweep into one job per (scheme, rate) point,
// scheme-major as AssembleFigure4 expects.
func Figure4Jobs(cfg Figure4Config) []harness.Job {
	var jobs []harness.Job
	for _, scheme := range cfg.Schemes {
		for _, rate := range cfg.Rates {
			scheme, rate := scheme, rate
			jobs = append(jobs, harness.Job{
				Name: fmt.Sprintf("%s/rate%.2f", scheme, rate),
				Run: func() harness.Output {
					res := inference.Run(inference.Config{
						Machine:  cfg.Machine,
						Scheme:   scheme,
						Rate:     rate,
						Requests: cfg.Requests,
						Batches:  cfg.Batches,
						Scale:    cfg.Scale,
						Models:   cfg.Models,
						Horizon:  cfg.Horizon,
						Seed:     cfg.Seed,
					})
					return harness.Output{
						Value:    Figure4Point{Scheme: scheme, Rate: rate, Result: res},
						SimTime:  res.Elapsed,
						TimedOut: res.TimedOut,
						Events:   res.Events,
					}
				},
			})
		}
	}
	return jobs
}

// AssembleFigure4 rebuilds the point list and TimelineRate traces from
// ordered cell results.
func AssembleFigure4(cfg Figure4Config, results []harness.Result) *Figure4Result {
	out := &Figure4Result{Config: cfg, Timelines: make(map[inference.Scheme][]inference.RequestTrace)}
	for _, r := range results {
		p := r.Value.(Figure4Point)
		out.Points = append(out.Points, p)
		if p.Rate == cfg.TimelineRate {
			out.Timelines[p.Scheme] = p.Timeline
		}
	}
	return out
}

// RunFigure4 executes the sweep serially.
func RunFigure4(cfg Figure4Config) *Figure4Result {
	return AssembleFigure4(cfg, harness.Run(Figure4Jobs(cfg), 1))
}

// Point returns the measurement for (scheme, rate), or nil.
func (r *Figure4Result) Point(s inference.Scheme, rate float64) *Figure4Point {
	for i := range r.Points {
		if r.Points[i].Scheme == s && r.Points[i].Rate == rate {
			return &r.Points[i]
		}
	}
	return nil
}

// Render prints latency and throughput tables in Fig. 4's shape.
func (r *Figure4Result) Render() string {
	var sb strings.Builder
	write := func(title string, val func(p *Figure4Point) string) {
		fmt.Fprintf(&sb, "\n%s\n%14s", title, "scheme\\rate")
		for _, rate := range r.Config.Rates {
			fmt.Fprintf(&sb, "%9.2f", rate)
		}
		sb.WriteByte('\n')
		for _, s := range r.Config.Schemes {
			fmt.Fprintf(&sb, "%14s", s)
			for _, rate := range r.Config.Rates {
				p := r.Point(s, rate)
				if p == nil || p.TimedOut {
					fmt.Fprintf(&sb, "%9s", "—")
				} else {
					fmt.Fprintf(&sb, "%9s", val(p))
				}
			}
			sb.WriteByte('\n')
		}
	}
	write("Mean latency (s)", func(p *Figure4Point) string {
		return fmt.Sprintf("%.1f", p.Stats.Mean.Seconds())
	})
	write("Throughput (req/s)", func(p *Figure4Point) string {
		return fmt.Sprintf("%.3f", p.Throughput)
	})
	if tl, ok := r.Timelines[inferenceCoop()]; ok && len(tl) > 0 {
		fmt.Fprintf(&sb, "\nPer-request timeline at rate %.2f (sched_coop): submit -> complete (s)\n", r.Config.TimelineRate)
		for _, tr := range tl {
			fmt.Fprintf(&sb, "  req %2d: %8.1f -> %8.1f\n", tr.ID, tr.Submitted.Seconds(), tr.Completed.Seconds())
		}
	}
	return sb.String()
}

func inferenceCoop() inference.Scheme { return inference.Coop }
