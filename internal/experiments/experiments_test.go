package experiments

import (
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/workloads/inference"
	"repro/internal/workloads/md"
)

func TestFigure3QuickSweep(t *testing.T) {
	cfg := QuickFigure3()
	cfg.TaskSizes = []int{1024, 512}
	cfg.OMPThreads = []int{2, 8}
	res := RunFigure3(cfg)
	for _, mode := range cfg.Modes {
		grid := res.Cells[mode]
		if len(grid) != 2 || len(grid[0]) != 2 {
			t.Fatalf("%v grid shape wrong", mode)
		}
	}
	// Baseline cells must carry real throughput.
	for _, row := range res.Cells[stack.ModeBaseline] {
		for _, c := range row {
			if !c.TimedOut && c.GFLOPS <= 0 {
				t.Fatalf("empty baseline cell %+v", c)
			}
		}
	}
	out := res.Render()
	for _, want := range []string{"Baseline performance", "sched_coop speedup", "manual speedup", "original speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigure3SpeedupShape(t *testing.T) {
	// The oversubscribed corner must favour SCHED_COOP; the underused
	// corner must be near 1.0 (Fig. 3's gradient).
	cfg := QuickFigure3()
	cfg.TaskSizes = []int{1024, 512}
	cfg.OMPThreads = []int{1, 8}
	res := RunFigure3(cfg)
	under := res.Speedup(stack.ModeCoop, 0, 0) // 4 tasks x 1 thread on 16 cores
	over := res.Speedup(stack.ModeCoop, 1, 1)  // 16 tasks x 8 threads
	if under < 0.8 || under > 1.25 {
		t.Fatalf("underused speedup = %.2f, want ~1.0", under)
	}
	if over <= under {
		t.Fatalf("oversubscribed speedup %.2f <= underused %.2f; gradient missing", over, under)
	}
}

func TestTable2QuickSweep(t *testing.T) {
	cfg := QuickTable2()
	res := RunTable2(cfg)
	if len(res.Entries) != len(cfg.Combos)*len(cfg.Degrees) {
		t.Fatalf("entries = %d", len(res.Entries))
	}
	for _, e := range res.Entries {
		if e.Baseline.TimedOut || e.Coop.TimedOut {
			t.Fatalf("%v/%v %s timed out", e.Combo.Outer, e.Combo.Inner, e.Degree.Name)
		}
		if e.Speedup() <= 0 {
			t.Fatalf("no speedup computed for %+v", e.Combo)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "tbb") || !strings.Contains(out, "blis") {
		t.Fatalf("render missing rows:\n%s", out)
	}
}

func TestTable2PthRowsGainMost(t *testing.T) {
	// Table 2's pattern: the pth-backend rows gain more from
	// SCHED_COOP than the OpenMP-backend rows at the same high degree.
	cfg := QuickTable2()
	res := RunTable2(cfg)
	high := func(e Table2Entry) bool { return e.Degree.Name == "High" }
	var ompGain, pthGain float64
	var nOmp, nPth int
	for _, e := range res.Entries {
		if !high(e) {
			continue
		}
		if e.Combo.Inner == 2 { // InnerPth
			pthGain += e.Speedup()
			nPth++
		} else {
			ompGain += e.Speedup()
			nOmp++
		}
	}
	ompGain /= float64(nOmp)
	pthGain /= float64(nPth)
	if pthGain <= ompGain {
		t.Fatalf("pth mean speedup %.2f <= omp %.2f; thread-churn advantage missing", pthGain, ompGain)
	}
}

func TestFigure4QuickSweep(t *testing.T) {
	cfg := QuickFigure4()
	res := RunFigure4(cfg)
	if len(res.Points) != len(cfg.Schemes)*len(cfg.Rates) {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.TimedOut {
			t.Fatalf("%v@%.2f timed out", p.Scheme, p.Rate)
		}
	}
	if len(res.Timelines[inference.Coop]) == 0 {
		t.Fatal("no coop timeline recorded")
	}
	out := res.Render()
	if !strings.Contains(out, "Mean latency") || !strings.Contains(out, "Throughput") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

func TestFigure5QuickSweep(t *testing.T) {
	cfg := QuickFigure5()
	res := RunFigure5(cfg)
	if len(res.Entries) != 7 {
		t.Fatalf("entries = %d, want 7 scenarios", len(res.Entries))
	}
	for _, e := range res.Entries {
		if e.TimedOut {
			t.Fatalf("%v timed out", e.Scenario)
		}
	}
	// Exclusive achieves the best per-ensemble rate (Fig. 5a).
	ex := res.Entry(md.Exclusive)
	for _, e := range res.Entries {
		if e.Scenario == md.Exclusive {
			continue
		}
		if e.PerEnsemble[0] > ex.PerEnsemble[0]*1.05 {
			t.Fatalf("%v per-ensemble %.1f beats exclusive %.1f", e.Scenario, e.PerEnsemble[0], ex.PerEnsemble[0])
		}
	}
	out := res.Render()
	if !strings.Contains(out, "exclusive") || !strings.Contains(out, "schedcoop_node") {
		t.Fatalf("render incomplete:\n%s", out)
	}
	if res.RenderBWTrace(md.SchedCoopNode, 20) == "" {
		t.Fatal("bandwidth trace empty")
	}
}

func TestSchedCmpQuickSweep(t *testing.T) {
	cfg := QuickSchedCmp()
	cfg.Classes = []string{"fair", "fifo"}
	cfg.Oversub = []int{1, 4}
	res := RunSchedCmp(cfg)
	if len(res.Matmul) != 2 || len(res.Matmul[0]) != 2 ||
		len(res.Services) != 2 || len(res.Services[0]) != 2 {
		t.Fatalf("grid shape wrong: %d×%d matmul, %d×%d services",
			len(res.Matmul), len(res.Matmul[0]), len(res.Services), len(res.Services[0]))
	}
	for ri, class := range cfg.Classes {
		for ci := range cfg.Oversub {
			m := res.Matmul[ri][ci]
			if m.Class != class || (!m.TimedOut && m.GFLOPS <= 0) {
				t.Fatalf("bad matmul cell %+v", m)
			}
			s := res.Services[ri][ci]
			if s.Class != class || (!s.TimedOut && s.Stats.P99 <= 0) {
				t.Fatalf("bad services cell %+v", s)
			}
		}
	}
	// FIFO must schedule visibly differently from fair: CPU hogs are
	// never slice-preempted.
	fairPre := res.Matmul[0][1].Preemptions
	fifoPre := res.Matmul[1][1].Preemptions
	if fifoPre >= fairPre {
		t.Fatalf("fifo preemptions %d >= fair %d under oversubscription", fifoPre, fairPre)
	}
	out := res.Render()
	for _, want := range []string{"nested matmul GFLOP/s", "speedup vs fair", "p99 latency", "preemptions", "fifo"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSchedCmpParallelMatchesSerial(t *testing.T) {
	cfg := QuickSchedCmp()
	cfg.Classes = []string{"fair", "batch"}
	cfg.Oversub = []int{1, 2}
	serial := AssembleSchedCmp(cfg, harness.Run(SchedCmpJobs(cfg), 1)).Render()
	parallel := AssembleSchedCmp(cfg, harness.Run(SchedCmpJobs(cfg), 4)).Render()
	if serial != parallel {
		t.Fatalf("schedcmp tables differ between par 1 and par 4:\n%s\n---\n%s", serial, parallel)
	}
}

func TestTailLoadQuickSweep(t *testing.T) {
	// A trimmed grid keeps the test fast while exercising assembly,
	// rendering, and knee detection end to end.
	cfg := QuickTailLoad()
	cfg.Shapes = cfg.Shapes[:2] // poisson, bursty
	cfg.Schemes = []TailScheme{
		{Name: "sched_coop", Scheme: inference.Coop},
		{Name: "fair", Scheme: inference.BlNone, KernelClass: "fair"},
	}
	cfg.Loads = []float64{0.5, 8.0}
	res := RunTailLoad(cfg)
	if len(res.Cells) != 2 || len(res.Cells[0]) != 2 || len(res.Cells[0][0]) != 2 {
		t.Fatalf("grid shape wrong: %d shapes", len(res.Cells))
	}
	for shi := range cfg.Shapes {
		for si := range cfg.Schemes {
			for li := range cfg.Loads {
				c := res.Cells[shi][si][li]
				if c.TimedOut {
					t.Fatalf("%s/%s@%.2f timed out", c.Shape, c.Scheme, c.Load)
				}
				if c.Tail.Completed != cfg.Requests || c.Tail.P99 <= 0 {
					t.Fatalf("%s/%s@%.2f: empty tail stats %+v", c.Shape, c.Scheme, c.Load, c.Tail)
				}
			}
		}
	}
	// The low load must sustain the SLO; saturation at load 8.0 must
	// violate it, so the knee sits at 0.5 for every (shape, scheme).
	for shi := range cfg.Shapes {
		for si := range cfg.Schemes {
			knee, ok := res.Knee(shi, si)
			if !ok || knee != 0.5 {
				t.Fatalf("knee[%d][%d] = %v (ok %v), want 0.5", shi, si, knee, ok)
			}
		}
	}
	out := res.Render()
	for _, want := range []string{"arrivals: poisson", "arrivals: bursty",
		"p99 latency", "goodput", "SLO violation fraction", "Max sustainable load"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTailLoadShapesCoverAllSources(t *testing.T) {
	// Every arrival shape must drive the inference stack to completion
	// under SCHED_COOP at a moderate load.
	cfg := QuickTailLoad()
	for _, shape := range TailShapes() {
		res := inference.Run(inference.Config{
			Machine:  cfg.Machine,
			Scheme:   inference.Coop,
			Rate:     2.0,
			Requests: 6,
			Batches:  cfg.Batches,
			Scale:    cfg.Scale,
			Models:   cfg.Models,
			Horizon:  cfg.Horizon,
			Seed:     cfg.Seed,
			Arrivals: shape.New(2.0, cfg.Scale, 6),
			SLO:      cfg.SLO,
		})
		if res.TimedOut || res.Tail.Completed != 6 {
			t.Fatalf("shape %s: %d/6 completed (timed out %v)",
				shape.Name, res.Tail.Completed, res.TimedOut)
		}
	}
}

func TestClusterQuickSweep(t *testing.T) {
	// A trimmed grid (bursty only, two loads) exercises fleet assembly,
	// rendering, knee detection, and the two separations the scenario
	// exists to demonstrate.
	cfg := QuickCluster()
	cfg.Shapes = TailShapes()[1:2] // bursty
	cfg.Loads = []float64{1.0, 2.0}
	res := RunCluster(cfg)
	if len(res.Cells) != 1 || len(res.Cells[0]) != len(cfg.Schemes) ||
		len(res.Cells[0][0]) != len(cfg.Routers) || len(res.Cells[0][0][0]) != 2 {
		t.Fatal("grid shape wrong")
	}
	for si := range cfg.Schemes {
		for ri := range cfg.Routers {
			for li := range cfg.Loads {
				c := res.Cell(0, si, ri, li)
				if c.TimedOut {
					t.Fatalf("%s/%s@%.2f timed out", c.Scheme, c.Router, c.Load)
				}
				if c.Stats.EndToEnd.Completed != cfg.Requests {
					t.Fatalf("%s/%s@%.2f: completed %d of %d", c.Scheme, c.Router,
						c.Load, c.Stats.EndToEnd.Completed, cfg.Requests)
				}
				if c.Stats.NodeP99 <= 0 || len(c.Stats.Nodes) != cfg.Nodes {
					t.Fatalf("%s/%s@%.2f: bad node stats %+v", c.Scheme, c.Router, c.Load, c.Stats)
				}
				// End-to-end latency includes the network: the slowest
				// node-internal request's end-to-end time strictly
				// dominates its internal time, so the maxima must too.
				maxInternal := sim.Duration(0)
				for _, ns := range c.Stats.Nodes {
					if ns.Internal.Max > maxInternal {
						maxInternal = ns.Internal.Max
					}
				}
				if c.Stats.EndToEnd.Max <= maxInternal {
					t.Fatalf("%s/%s@%.2f: end-to-end max %v <= node-internal max %v",
						c.Scheme, c.Router, c.Load, c.Stats.EndToEnd.Max, maxInternal)
				}
			}
		}
	}
	// The acceptance separations: on the heterogeneous fleet under
	// bursty arrivals, load-aware p2c routing must beat round-robin on
	// p99 (scheme-for-scheme at the low load), and the two schemes must
	// be distinguishable at the same router.
	rrIdx, p2cIdx := 0, 1
	for si, scheme := range cfg.Schemes {
		rr := res.Cell(0, si, rrIdx, 0)
		p2c := res.Cell(0, si, p2cIdx, 0)
		if p2c.Stats.EndToEnd.P99 >= rr.Stats.EndToEnd.P99 {
			t.Fatalf("%s: p2c p99 %v >= rr p99 %v under bursty arrivals",
				scheme.Name, p2c.Stats.EndToEnd.P99, rr.Stats.EndToEnd.P99)
		}
	}
	sep := false
	for ri := range cfg.Routers {
		for li := range cfg.Loads {
			a := res.Cell(0, 0, ri, li).Stats.EndToEnd.P99
			b := res.Cell(0, 1, ri, li).Stats.EndToEnd.P99
			if a != b {
				sep = true
			}
		}
	}
	if !sep {
		t.Fatal("sched_coop and baseline indistinguishable in every cell")
	}
	out := res.Render()
	for _, want := range []string{"arrivals: bursty", "end-to-end p99", "goodput",
		"node-internal p99, cluster-aggregated", "dispatch imbalance",
		"Max sustainable cluster load", "p2c/sched_coop"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestClusterParallelMatchesSerial(t *testing.T) {
	cfg := QuickCluster()
	cfg.Shapes = TailShapes()[:1] // poisson
	cfg.Loads = []float64{1.0}
	serial := AssembleCluster(cfg, harness.Run(ClusterJobs(cfg), 1)).Render()
	parallel := AssembleCluster(cfg, harness.Run(ClusterJobs(cfg), 4)).Render()
	if serial != parallel {
		t.Fatalf("cluster tables differ between par 1 and par 4:\n%s\n---\n%s", serial, parallel)
	}
}

func TestClusterShardsMatchSharedEngine(t *testing.T) {
	// The sharded-fleet contract at the scenario level: running the real
	// cluster cells (full per-node stacks, kernels, inference services)
	// over conservative-parallel shards must render byte-identical
	// tables for any shard count — shard 1 IS the shared-engine path.
	cfg := QuickCluster()
	cfg.Shapes = TailShapes()[:1] // poisson
	cfg.Loads = []float64{2.0}
	cfg.Routers = ClusterRouters()[:2] // rr, p2c
	run := func(shards int) string {
		c := cfg
		c.Shards = shards
		return AssembleCluster(c, harness.Run(ClusterJobs(c), 1)).Render()
	}
	ref := run(1)
	for _, shards := range []int{2, 4} {
		if got := run(shards); got != ref {
			t.Fatalf("cluster tables differ between 1 and %d shards:\n%s\n---\n%s", shards, ref, got)
		}
	}
}
