package experiments

import (
	"fmt"
	"strings"

	"repro/internal/harness"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/workloads/inference"
	"repro/internal/workloads/matmul"
)

// SchedCmpConfig parameterises the kernel-scheduler ablation: the same
// Baseline-mode workloads (no USF) swept across kernel scheduling
// classes × oversubscription factors, asking the question the paper's
// fixed-kernel evaluation cannot — against *which* kernel scheduler does
// user-space coordination win?
type SchedCmpConfig struct {
	Machine hw.Config
	// Classes are the kernel scheduling classes to compare (the rows).
	Classes []string
	// Oversub are the oversubscription factors (the columns). For the
	// matmul leg a factor f widens each task's inner OpenMP team to f
	// threads (≈ f runnable threads per core with a full outer pool);
	// for the microservices leg it multiplies the base request rate.
	Oversub []int

	// Matmul leg (§5.3 shape).
	N, TaskSize int
	Reps        int

	// Microservices leg (§5.5 shape, bl-none scheme: the raw kernel
	// scheduler with no partitioning).
	Rate     float64
	Requests int
	Batches  int
	Scale    float64
	Models   []inference.Model

	Horizon sim.Duration
	Seed    uint64
}

// DefaultSchedCmp returns the scaled ablation on the full 112-core
// machine.
func DefaultSchedCmp() SchedCmpConfig {
	return SchedCmpConfig{
		Machine:  hw.MareNostrum5(),
		Classes:  kernel.ClassNames(),
		Oversub:  []int{1, 2, 4, 8},
		N:        4096,
		TaskSize: 1024,
		Reps:     1,
		Rate:     0.33,
		Requests: 16,
		Batches:  8,
		Scale:    0.2,
		Horizon:  4000 * sim.Second,
		Seed:     17,
	}
}

// QuickSchedCmp returns a small fast ablation for tests and benches.
func QuickSchedCmp() SchedCmpConfig {
	return SchedCmpConfig{
		Machine:  hw.DualSocket16(),
		Classes:  kernel.ClassNames(),
		Oversub:  []int{1, 2, 4},
		N:        1024,
		TaskSize: 256,
		Reps:     1,
		Rate:     0.33,
		Requests: 6,
		Batches:  4,
		Scale:    0.2,
		Models:   quickModels(),
		Horizon:  4000 * sim.Second,
		Seed:     17,
	}
}

// SchedCmpMatmulCell is one (class, factor) matmul measurement.
type SchedCmpMatmulCell struct {
	Class  string
	Factor int
	matmul.Result
}

// SchedCmpServiceCell is one (class, factor) microservices measurement.
type SchedCmpServiceCell struct {
	Class  string
	Factor int
	inference.Result
}

// SchedCmpResult holds both legs: cells indexed [class][factor] in
// config order.
type SchedCmpResult struct {
	Config   SchedCmpConfig
	Matmul   [][]SchedCmpMatmulCell
	Services [][]SchedCmpServiceCell
}

// SchedCmpJobs expands the ablation into one job per cell: the matmul
// leg first, then the microservices leg, class-major within each as
// AssembleSchedCmp expects.
func SchedCmpJobs(cfg SchedCmpConfig) []harness.Job {
	var jobs []harness.Job
	for _, class := range cfg.Classes {
		for _, f := range cfg.Oversub {
			class, f := class, f
			jobs = append(jobs, harness.Job{
				Name: fmt.Sprintf("matmul/%s/oversub%d", class, f),
				Run: func() harness.Output {
					res := matmul.Run(matmul.Config{
						Machine:     cfg.Machine,
						Mode:        stack.ModeBaseline,
						N:           cfg.N,
						TaskSize:    cfg.TaskSize,
						OMPThreads:  f,
						Reps:        cfg.Reps,
						Horizon:     cfg.Horizon,
						Seed:        cfg.Seed,
						KernelClass: class,
					})
					return harness.Output{
						Value:    SchedCmpMatmulCell{Class: class, Factor: f, Result: res},
						SimTime:  res.Elapsed,
						TimedOut: res.TimedOut,
					}
				},
			})
		}
	}
	for _, class := range cfg.Classes {
		for _, f := range cfg.Oversub {
			class, f := class, f
			jobs = append(jobs, harness.Job{
				Name: fmt.Sprintf("services/%s/oversub%d", class, f),
				Run: func() harness.Output {
					res := inference.Run(inference.Config{
						Machine:     cfg.Machine,
						Scheme:      inference.BlNone,
						Rate:        cfg.Rate * float64(f),
						Requests:    cfg.Requests,
						Batches:     cfg.Batches,
						Scale:       cfg.Scale,
						Models:      cfg.Models,
						Horizon:     cfg.Horizon,
						Seed:        cfg.Seed,
						KernelClass: class,
					})
					return harness.Output{
						Value:    SchedCmpServiceCell{Class: class, Factor: f, Result: res},
						SimTime:  res.Elapsed,
						TimedOut: res.TimedOut,
					}
				},
			})
		}
	}
	return jobs
}

// AssembleSchedCmp rebuilds the class × factor grids from cell results
// ordered as SchedCmpJobs declared them.
func AssembleSchedCmp(cfg SchedCmpConfig, results []harness.Result) *SchedCmpResult {
	out := &SchedCmpResult{Config: cfg}
	i := 0
	for range cfg.Classes {
		row := make([]SchedCmpMatmulCell, len(cfg.Oversub))
		for ci := range cfg.Oversub {
			row[ci] = results[i].Value.(SchedCmpMatmulCell)
			i++
		}
		out.Matmul = append(out.Matmul, row)
	}
	for range cfg.Classes {
		row := make([]SchedCmpServiceCell, len(cfg.Oversub))
		for ci := range cfg.Oversub {
			row[ci] = results[i].Value.(SchedCmpServiceCell)
			i++
		}
		out.Services = append(out.Services, row)
	}
	return out
}

// RunSchedCmp executes the ablation serially.
func RunSchedCmp(cfg SchedCmpConfig) *SchedCmpResult {
	return AssembleSchedCmp(cfg, harness.Run(SchedCmpJobs(cfg), 1))
}

// Render prints the two legs as class × oversubscription tables:
// absolute numbers plus each class's ratio to the fair row ("—" marks
// timeouts).
func (r *SchedCmpResult) Render() string {
	cfg := r.Config
	var sb strings.Builder
	header := func(title string) {
		fmt.Fprintf(&sb, "\n%s\n%14s", title, "class\\oversub")
		for _, f := range cfg.Oversub {
			fmt.Fprintf(&sb, "%9s", fmt.Sprintf("x%d", f))
		}
		sb.WriteByte('\n')
	}
	fairRow := -1
	for ri, class := range cfg.Classes {
		if class == "fair" {
			fairRow = ri
		}
	}

	header(fmt.Sprintf("a) nested matmul GFLOP/s (N=%d, ts=%d, baseline stack)", cfg.N, cfg.TaskSize))
	for ri, class := range cfg.Classes {
		fmt.Fprintf(&sb, "%14s", class)
		for ci := range cfg.Oversub {
			c := r.Matmul[ri][ci]
			if c.TimedOut {
				fmt.Fprintf(&sb, "%9s", "—")
			} else {
				fmt.Fprintf(&sb, "%9.0f", c.GFLOPS)
			}
		}
		sb.WriteByte('\n')
	}
	if fairRow >= 0 {
		header("b) matmul speedup vs fair")
		for ri, class := range cfg.Classes {
			fmt.Fprintf(&sb, "%14s", class)
			for ci := range cfg.Oversub {
				c, base := r.Matmul[ri][ci], r.Matmul[fairRow][ci]
				if c.TimedOut || base.TimedOut || base.GFLOPS == 0 {
					fmt.Fprintf(&sb, "%9s", "—")
				} else {
					fmt.Fprintf(&sb, "%9.2f", c.GFLOPS/base.GFLOPS)
				}
			}
			sb.WriteByte('\n')
		}
	}

	header("c) microservices p99 latency (s, bl-none scheme)")
	for ri, class := range cfg.Classes {
		fmt.Fprintf(&sb, "%14s", class)
		for ci := range cfg.Oversub {
			c := r.Services[ri][ci]
			if c.TimedOut {
				fmt.Fprintf(&sb, "%9s", "—")
			} else {
				fmt.Fprintf(&sb, "%9.1f", c.Stats.P99.Seconds())
			}
		}
		sb.WriteByte('\n')
	}
	header("d) microservices preemptions")
	for ri, class := range cfg.Classes {
		fmt.Fprintf(&sb, "%14s", class)
		for ci := range cfg.Oversub {
			s := r.Services[ri][ci]
			if s.TimedOut {
				fmt.Fprintf(&sb, "%9s", "—")
			} else {
				fmt.Fprintf(&sb, "%9d", s.Preemptions)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
