// Package experiments drives the paper's tables and figures. Each
// artefact exposes three layers: a *Jobs function expanding its config
// into independent harness cells (one fresh sim.Engine per cell), an
// Assemble* function rebuilding the typed result from ordered cell
// outputs, and a serial Run* convenience wrapper. cmd/uschedsim runs
// the same jobs through the parallel harness via the scenario registry
// (see scenarios.go); bench_test.go regenerates the artefacts directly.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/harness"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/workloads/matmul"
)

// Figure3Config parameterises the §5.3 matmul heatmap sweep.
type Figure3Config struct {
	Machine hw.Config
	// N is the matrix dimension (paper 32768; scaled default 8192).
	N int
	// TaskSizes are the heatmap rows (largest first, like the paper).
	TaskSizes []int
	// OMPThreads are the heatmap columns.
	OMPThreads []int
	// Modes to evaluate (paper: Baseline, Manual, SCHED_COOP, Original).
	Modes   []stack.Mode
	Reps    int
	Horizon sim.Duration
	Seed    uint64
}

// DefaultFigure3 returns the scaled sweep: N=8192 on the full 112-core
// machine, rows/columns matching the paper's shape.
func DefaultFigure3() Figure3Config {
	return Figure3Config{
		Machine:    hw.MareNostrum5(),
		N:          8192,
		TaskSizes:  []int{8192, 4096, 2048, 1024, 512},
		OMPThreads: []int{1, 2, 4, 8, 14, 28, 56},
		Modes:      []stack.Mode{stack.ModeBaseline, stack.ModeManual, stack.ModeCoop, stack.ModeOriginal},
		Reps:       1,
		Horizon:    120 * sim.Second,
		Seed:       3,
	}
}

// QuickFigure3 returns a small sweep for tests and benches.
func QuickFigure3() Figure3Config {
	return Figure3Config{
		Machine:    hw.DualSocket16(),
		N:          2048,
		TaskSizes:  []int{2048, 1024, 512},
		OMPThreads: []int{1, 2, 4, 8},
		Modes:      []stack.Mode{stack.ModeBaseline, stack.ModeManual, stack.ModeCoop, stack.ModeOriginal},
		Reps:       1,
		Horizon:    5 * sim.Second,
		Seed:       3,
	}
}

// Figure3Cell is one heatmap entry.
type Figure3Cell struct {
	TaskSize   int
	OMPThreads int
	matmul.Result
}

// Figure3Result holds the full sweep: Cells[mode][row][col].
type Figure3Result struct {
	Config Figure3Config
	Cells  map[stack.Mode][][]Figure3Cell
}

// Figure3Jobs expands the sweep into one job per heatmap cell, in the
// mode-major order AssembleFigure3 expects.
func Figure3Jobs(cfg Figure3Config) []harness.Job {
	var jobs []harness.Job
	for _, mode := range cfg.Modes {
		for _, ts := range cfg.TaskSizes {
			for _, th := range cfg.OMPThreads {
				mode, ts, th := mode, ts, th
				jobs = append(jobs, harness.Job{
					Name: fmt.Sprintf("%s/tasks%d/omp%d", mode, ts, th),
					Run: func() harness.Output {
						res := matmul.Run(matmul.Config{
							Machine:    cfg.Machine,
							Mode:       mode,
							N:          cfg.N,
							TaskSize:   ts,
							OMPThreads: th,
							Reps:       cfg.Reps,
							Horizon:    cfg.Horizon,
							Seed:       cfg.Seed,
						})
						return harness.Output{
							Value:    Figure3Cell{TaskSize: ts, OMPThreads: th, Result: res},
							SimTime:  res.Elapsed,
							TimedOut: res.TimedOut,
						}
					},
				})
			}
		}
	}
	return jobs
}

// AssembleFigure3 rebuilds the heatmap grids from cell results ordered
// as Figure3Jobs declared them.
func AssembleFigure3(cfg Figure3Config, results []harness.Result) *Figure3Result {
	out := &Figure3Result{Config: cfg, Cells: make(map[stack.Mode][][]Figure3Cell)}
	i := 0
	for _, mode := range cfg.Modes {
		grid := make([][]Figure3Cell, len(cfg.TaskSizes))
		for ri := range cfg.TaskSizes {
			row := make([]Figure3Cell, len(cfg.OMPThreads))
			for ci := range cfg.OMPThreads {
				row[ci] = results[i].Value.(Figure3Cell)
				i++
			}
			grid[ri] = row
		}
		out.Cells[mode] = grid
	}
	return out
}

// RunFigure3 executes the sweep serially (tests and benches run it
// directly; cmd/uschedsim runs the same jobs through the parallel
// harness).
func RunFigure3(cfg Figure3Config) *Figure3Result {
	return AssembleFigure3(cfg, harness.Run(Figure3Jobs(cfg), 1))
}

// Speedup returns cell-wise mode/baseline GFLOPS ratio (0 where either
// timed out).
func (r *Figure3Result) Speedup(mode stack.Mode, row, col int) float64 {
	base := r.Cells[stack.ModeBaseline][row][col]
	m := r.Cells[mode][row][col]
	if base.TimedOut || m.TimedOut || base.GFLOPS == 0 {
		return 0
	}
	return m.GFLOPS / base.GFLOPS
}

// Render prints the four heatmaps in the paper's layout (performance for
// Baseline, element-wise speedups for the rest; "—" marks timeouts).
func (r *Figure3Result) Render() string {
	var sb strings.Builder
	cfg := r.Config
	header := func(title string) {
		fmt.Fprintf(&sb, "\n%s\n%17s", title, "tasks\\omp")
		for _, thr := range cfg.OMPThreads {
			fmt.Fprintf(&sb, "%9d", thr)
		}
		sb.WriteByte('\n')
	}
	rowLabel := func(ts int) string {
		nb := cfg.N / ts
		return fmt.Sprintf("%d-%d", nb*nb, ts)
	}
	header("a) Baseline performance (GFLOP/s)")
	for ri, ts := range cfg.TaskSizes {
		fmt.Fprintf(&sb, "%17s", rowLabel(ts))
		for ci := range cfg.OMPThreads {
			c := r.Cells[stack.ModeBaseline][ri][ci]
			if c.TimedOut {
				sb.WriteString(fmt.Sprintf("%9s", "—"))
			} else {
				fmt.Fprintf(&sb, "%9.0f", c.GFLOPS)
			}
		}
		sb.WriteByte('\n')
	}
	for _, mode := range cfg.Modes {
		if mode == stack.ModeBaseline {
			continue
		}
		header(fmt.Sprintf("%s speedup vs baseline", mode))
		for ri, ts := range cfg.TaskSizes {
			fmt.Fprintf(&sb, "%17s", rowLabel(ts))
			for ci := range cfg.OMPThreads {
				s := r.Speedup(mode, ri, ci)
				if s == 0 {
					sb.WriteString(fmt.Sprintf("%9s", "—"))
				} else {
					fmt.Fprintf(&sb, "%9.2f", s)
				}
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
