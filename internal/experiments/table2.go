package experiments

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/harness"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/workloads/cholesky"
)

// Table2Degree is one oversubscription level (outer x inner threads).
type Table2Degree struct {
	Name         string
	OuterThreads int
	InnerThreads int
}

// Table2Combo is one runtime composition row.
type Table2Combo struct {
	Outer cholesky.OuterKind
	Inner cholesky.InnerKind
	Impl  blas.Impl
}

// Table2Config parameterises the §5.4 composition study.
type Table2Config struct {
	Machine hw.Config
	N, Tile int
	Combos  []Table2Combo
	Degrees []Table2Degree
	Horizon sim.Duration
	Seed    uint64
}

// DefaultTable2 is the scaled paper configuration (paper: N=32768,
// TS=1024, degrees 8x8 / 14x14 / 28x28 on 112 cores).
func DefaultTable2() Table2Config {
	return Table2Config{
		Machine: hw.MareNostrum5(),
		N:       8192,
		Tile:    1024,
		Combos:  PaperCombos(),
		Degrees: []Table2Degree{
			{Name: "Mild", OuterThreads: 8, InnerThreads: 8},
			{Name: "Medium", OuterThreads: 14, InnerThreads: 14},
			{Name: "High", OuterThreads: 28, InnerThreads: 28},
		},
		Horizon: 600 * sim.Second,
		Seed:    5,
	}
}

// QuickTable2 is a fast, small variant.
func QuickTable2() Table2Config {
	return Table2Config{
		Machine: hw.DualSocket16(),
		N:       4096,
		Tile:    512,
		Combos:  PaperCombos(),
		Degrees: []Table2Degree{
			{Name: "Mild", OuterThreads: 4, InnerThreads: 4},
			{Name: "High", OuterThreads: 8, InnerThreads: 8},
		},
		Horizon: 60 * sim.Second,
		Seed:    5,
	}
}

// PaperCombos returns Table 2's five composition rows.
func PaperCombos() []Table2Combo {
	return []Table2Combo{
		{cholesky.OuterGnu, cholesky.InnerLlvm, blas.OpenBLAS},
		{cholesky.OuterTbb, cholesky.InnerLlvm, blas.OpenBLAS},
		{cholesky.OuterTbb, cholesky.InnerGnu, blas.BLIS},
		{cholesky.OuterTbb, cholesky.InnerPth, blas.BLIS},
		{cholesky.OuterGnu, cholesky.InnerPth, blas.BLIS},
	}
}

// Table2Entry is one (combo, degree) measurement pair.
type Table2Entry struct {
	Combo    Table2Combo
	Degree   Table2Degree
	Baseline cholesky.Result
	Coop     cholesky.Result
}

// Speedup returns the SCHED_COOP speedup over baseline.
func (e Table2Entry) Speedup() float64 {
	if e.Baseline.GFLOPS == 0 || e.Baseline.TimedOut || e.Coop.TimedOut {
		return 0
	}
	return e.Coop.GFLOPS / e.Baseline.GFLOPS
}

// Table2Result holds the sweep.
type Table2Result struct {
	Config  Table2Config
	Entries []Table2Entry
}

// implName abbreviates a BLAS implementation the way Table 2 does.
func implName(impl blas.Impl) string {
	if impl == blas.BLIS {
		return "blis"
	}
	return "opb"
}

// Table2Jobs expands the study into one job per (combo, degree, mode)
// simulation, in the order AssembleTable2 expects: combo-major, then
// degree, then baseline before SCHED_COOP.
func Table2Jobs(cfg Table2Config) []harness.Job {
	var jobs []harness.Job
	for _, combo := range cfg.Combos {
		for _, deg := range cfg.Degrees {
			for _, mode := range []stack.Mode{stack.ModeBaseline, stack.ModeCoop} {
				combo, deg, mode := combo, deg, mode
				jobs = append(jobs, harness.Job{
					Name: fmt.Sprintf("%s-%s-%s/%s/%s", combo.Outer, combo.Inner, implName(combo.Impl), deg.Name, mode),
					Run: func() harness.Output {
						res := cholesky.Run(cholesky.Config{
							Machine:      cfg.Machine,
							Mode:         mode,
							N:            cfg.N,
							TileSize:     cfg.Tile,
							Outer:        combo.Outer,
							Inner:        combo.Inner,
							Impl:         combo.Impl,
							OuterThreads: deg.OuterThreads,
							InnerThreads: deg.InnerThreads,
							Horizon:      cfg.Horizon,
							Seed:         cfg.Seed,
						})
						return harness.Output{Value: res, SimTime: res.Elapsed, TimedOut: res.TimedOut}
					},
				})
			}
		}
	}
	return jobs
}

// AssembleTable2 pairs ordered (baseline, coop) cell results back into
// Table2Entry rows.
func AssembleTable2(cfg Table2Config, results []harness.Result) *Table2Result {
	out := &Table2Result{Config: cfg}
	i := 0
	for _, combo := range cfg.Combos {
		for _, deg := range cfg.Degrees {
			base := results[i].Value.(cholesky.Result)
			coop := results[i+1].Value.(cholesky.Result)
			i += 2
			out.Entries = append(out.Entries, Table2Entry{
				Combo:    combo,
				Degree:   deg,
				Baseline: base,
				Coop:     coop,
			})
		}
	}
	return out
}

// RunTable2 executes the composition study serially.
func RunTable2(cfg Table2Config) *Table2Result {
	return AssembleTable2(cfg, harness.Run(Table2Jobs(cfg), 1))
}

// Render prints Table 2's layout: per combo, baseline GFLOP/s and
// SCHED_COOP speedup for each degree.
func (r *Table2Result) Render() string {
	t := &metrics.Table{Header: []string{"Out", "Inn", "BLAS"}}
	for _, d := range r.Config.Degrees {
		t.Header = append(t.Header, d.Name)
	}
	byCombo := map[Table2Combo][]Table2Entry{}
	for _, e := range r.Entries {
		byCombo[e.Combo] = append(byCombo[e.Combo], e)
	}
	for _, combo := range r.Config.Combos {
		row := []string{combo.Outer.String(), combo.Inner.String(), implName(combo.Impl)}
		for _, e := range byCombo[combo] {
			cell := "timeout"
			if !e.Baseline.TimedOut {
				cell = fmt.Sprintf("%.0f, %.2fx", e.Baseline.GFLOPS, e.Speedup())
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t.String()
}
