package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/cluster"
	"repro/internal/harness"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/trace"
	"repro/internal/workloads/inference"
)

// The cluster scenario lifts the paper's single-node §5.5 evaluation to
// fleet scale: N simulated machines — each running the full
// microservices stack under SCHED_COOP or the kernel baseline — share
// one deterministic engine behind a cluster router, and the sweep
// crosses arrival shape × scheme × router policy × offered load. Tables
// report end-to-end tails (network + queue + service), cluster-
// aggregated node-internal percentiles, routing balance, and the max
// sustainable load knee per (router, scheme).

// ClusterRouter names one routing policy and builds fresh single-use
// instances of it per cell.
type ClusterRouter struct {
	// Name labels the policy in rows ("rr", "p2c", "hash").
	Name string
	// New builds a fresh router; routers are single-use per cluster.
	New func() cluster.Router
}

// ClusterRouters returns the swept policies: round-robin,
// least-outstanding with power-of-two-choices sampling, and
// consistent-hash session affinity.
func ClusterRouters() []ClusterRouter {
	return []ClusterRouter{
		{Name: "rr", New: func() cluster.Router { return cluster.NewRoundRobin() }},
		{Name: "p2c", New: func() cluster.Router { return cluster.NewLeastOutstanding() }},
		{Name: "hash", New: func() cluster.Router { return cluster.NewConsistentHash() }},
	}
}

// ClusterConfig parameterises the fleet sweep.
type ClusterConfig struct {
	// NodeMachine is every node's hardware; NodeMachines, when
	// non-empty, overrides it per node (heterogeneous fleets; cycled
	// when shorter than Nodes).
	NodeMachine  hw.Config
	NodeMachines []hw.Config
	// Nodes is the fleet size.
	Nodes int
	// Net is the cluster communication cost model.
	Net cluster.Network
	// Sessions is the number of distinct client sessions (the affinity
	// unit for hash routing).
	Sessions int

	Shapes  []TailShape
	Schemes []TailScheme
	Routers []ClusterRouter
	// Loads are cluster-wide offered rates (req/s of unscaled paper
	// time), increasing.
	Loads []float64

	// SLO is the end-to-end objective; SLOBudget the tolerated
	// violation fraction for the knee.
	SLO       sim.Duration
	SLOBudget float64

	// Requests is the total request count across the fleet.
	Requests int
	Batches  int
	Scale    float64
	Models   []inference.Model
	Horizon  sim.Duration
	Seed     uint64

	// Shards spreads each cell's fleet over this many engines advanced
	// by the conservative-parallel coordinator (cluster.NewSharded);
	// tables are byte-identical for any value. 0 or 1 runs the classic
	// single shared engine.
	Shards int

	// MetricsInterval, when positive, scrapes simulated-time telemetry
	// from every cell's fleet (cluster.Config.MetricsInterval). Exports
	// are byte-identical for any -par or -shards value.
	MetricsInterval sim.Duration
	// Spans records per-request hop timelines and the p99 tail
	// breakdown in every cell. Same determinism guarantee.
	Spans bool
}

// DefaultCluster returns the scaled full sweep: a heterogeneous fleet
// of three full 112-core nodes plus one quarter-size straggler (28
// cores — a single request already oversubscribes it) behind the
// router, the realistic shape where load-aware routing has something
// to balance.
func DefaultCluster() ClusterConfig {
	full := hw.MareNostrum5()
	half := hw.MareNostrum5()
	half.Name = "MareNostrum5-quarter"
	half.Topo.Sockets = 1
	half.Topo.CoresPerSocket = 28
	return ClusterConfig{
		NodeMachine:  full,
		NodeMachines: []hw.Config{full, full, full, half},
		Nodes:        4,
		Net: cluster.Network{
			RequestLatency: 200 * sim.Microsecond,
			ReplyLatency:   200 * sim.Microsecond,
			RequestBytes:   16 << 10,
			ReplyBytes:     64 << 10,
			LinkBandwidth:  10,
		},
		Sessions:  8,
		Shapes:    TailShapes()[:2], // poisson, bursty
		Schemes:   ClusterSchemes(),
		Routers:   ClusterRouters(),
		Loads:     []float64{1.33, 2.67, 4.0, 5.33},
		SLO:       8 * sim.Second,
		SLOBudget: 0.1,
		Requests:  48,
		Batches:   8,
		Scale:     0.2,
		Horizon:   4000 * sim.Second,
		Seed:      31,
	}
}

// QuickCluster returns a small fast sweep: a heterogeneous fleet of
// two 8-core nodes and one 4-core straggler — the shape that separates
// load-aware routing from stateless policies.
func QuickCluster() ClusterConfig {
	small := hw.SmallNode()
	weak := hw.SmallNode()
	weak.Name = "WeakNode"
	weak.Topo.CoresPerSocket = 4
	return ClusterConfig{
		NodeMachine:  small,
		NodeMachines: []hw.Config{small, small, weak},
		Nodes:        3,
		Net: cluster.Network{
			RequestLatency: 200 * sim.Microsecond,
			ReplyLatency:   200 * sim.Microsecond,
			RequestBytes:   16 << 10,
			ReplyBytes:     64 << 10,
			LinkBandwidth:  10,
		},
		Sessions:  6,
		Shapes:    TailShapes()[:2], // poisson, bursty
		Schemes:   ClusterSchemes(),
		Routers:   ClusterRouters(),
		Loads:     []float64{1.0, 2.0, 3.0},
		SLO:       600 * sim.Millisecond,
		SLOBudget: 0.15,
		Requests:  18,
		Batches:   4,
		Scale:     0.2,
		Models:    quickModels(),
		Horizon:   4000 * sim.Second,
		Seed:      31,
	}
}

// ClusterSchemes returns the fleet-level scheme comparison: SCHED_COOP
// versus the stock fair-class kernel baseline on every node.
func ClusterSchemes() []TailScheme {
	return []TailScheme{
		{Name: "sched_coop", Scheme: inference.Coop},
		{Name: "baseline", Scheme: inference.BlNone, KernelClass: "fair"},
	}
}

// nodeMachine returns node i's hardware.
func (cfg ClusterConfig) nodeMachine(i int) hw.Config {
	if len(cfg.NodeMachines) > 0 {
		return cfg.NodeMachines[i%len(cfg.NodeMachines)]
	}
	return cfg.NodeMachine
}

// ClusterCell is one (shape, scheme, router, load) measurement.
type ClusterCell struct {
	Shape, Scheme, Router string
	Load                  float64
	Stats                 cluster.Stats
	Elapsed               sim.Duration
	TimedOut              bool
	// Samples and Spans hold the cell's telemetry when the sweep
	// enabled it (ClusterConfig.MetricsInterval / Spans).
	Samples []obs.Sample
	Spans   []obs.Span
	// Tail decomposes where the cell's p99 lives (network vs. queue vs.
	// service); zero when spans were off.
	Tail obs.TailBreakdown
	// Events, Windows, and WindowWidthSum profile the cell's host-side
	// cost (events fired; conservative windows when sharded).
	Events         int64
	Windows        int64
	WindowWidthSum sim.Duration
}

// runClusterCell builds the fleet — on one shared engine, or over
// cfg.Shards conservative-parallel shards — and serves the whole
// request train through the router. tracer, when non-nil, records node
// 0's kernel events.
func runClusterCell(cfg ClusterConfig, shape TailShape, scheme TailScheme, router ClusterRouter, rate float64, tracer *trace.Buffer) ClusterCell {
	cl := cluster.NewSharded(cluster.Config{
		Net:             cfg.Net,
		SLO:             cfg.SLO,
		Sessions:        cfg.Sessions,
		MetricsInterval: cfg.MetricsInterval,
		Spans:           cfg.Spans,
	}, router.New(), cfg.Shards, cfg.Seed)
	params := kernel.DefaultSchedParams()
	if scheme.KernelClass != "" {
		params.DefaultClass = scheme.KernelClass
	}
	for i := 0; i < cfg.Nodes; i++ {
		// Each node lives on its home shard's engine and owns a private
		// RNG namespace rooted at a distinct seed, so fleets are
		// deterministic — and identical — for any shard count.
		sys := stack.NewOnEngine(cl.NodeEngine(i), cfg.nodeMachine(i), cfg.Seed+uint64(i+1)*1000003, params)
		if tracer != nil && i == 0 {
			sys.K.Tracer = tracer
		}
		i := i
		cl.AddNode(fmt.Sprintf("node%d", i), sys, func(done func(id int)) cluster.Backend {
			svc, err := inference.NewService(sys, inference.ServiceConfig{
				Scheme:  scheme.Scheme,
				Batches: cfg.Batches,
				Scale:   cfg.Scale,
				Models:  cfg.Models,
				Started: cl.StartedFunc(i),
			}, done)
			if err != nil {
				panic(err)
			}
			return svc
		})
	}
	cl.Serve(shape.New(rate, cfg.Scale, cfg.Requests), cfg.Requests)
	timedOut, err := cl.Run(cfg.Horizon)
	if err != nil {
		panic(err)
	}
	ws := cl.WindowStats()
	cell := ClusterCell{
		Shape: shape.Name, Scheme: scheme.Name, Router: router.Name, Load: rate,
		Stats:          cl.Stats(),
		Elapsed:        cl.Elapsed(),
		TimedOut:       timedOut || cl.Completed() < cfg.Requests,
		Samples:        cl.Samples(),
		Spans:          cl.Spans(),
		Events:         cl.Events(),
		Windows:        ws.Windows,
		WindowWidthSum: ws.WidthSum,
	}
	if cell.Spans != nil {
		cell.Tail = obs.BreakTail(cell.Spans, 0.99)
	}
	return cell
}

// ClusterResult holds cells indexed [shape][scheme][router][load] in
// config order.
type ClusterResult struct {
	Config ClusterConfig
	Cells  [][][][]ClusterCell
}

// ClusterJobs expands the sweep shape-major, then scheme, then router,
// then load, as AssembleCluster expects.
func ClusterJobs(cfg ClusterConfig) []harness.Job {
	var jobs []harness.Job
	for _, shape := range cfg.Shapes {
		for _, scheme := range cfg.Schemes {
			for _, router := range cfg.Routers {
				for _, rate := range cfg.Loads {
					shape, scheme, router, rate := shape, scheme, router, rate
					jobs = append(jobs, harness.Job{
						Name: fmt.Sprintf("%s/%s/%s/load%.2f", shape.Name, scheme.Name, router.Name, rate),
						Run: func() harness.Output {
							cell := runClusterCell(cfg, shape, scheme, router, rate, nil)
							return harness.Output{
								Value:          cell,
								SimTime:        cell.Elapsed,
								TimedOut:       cell.TimedOut,
								Events:         cell.Events,
								Windows:        cell.Windows,
								WindowWidthSum: cell.WindowWidthSum,
								Samples:        cell.Samples,
								Spans:          cell.Spans,
							}
						},
					})
				}
			}
		}
	}
	return jobs
}

// AssembleCluster rebuilds the 4-D grid from ordered cell results.
func AssembleCluster(cfg ClusterConfig, results []harness.Result) *ClusterResult {
	out := &ClusterResult{Config: cfg}
	i := 0
	for range cfg.Shapes {
		byScheme := make([][][]ClusterCell, len(cfg.Schemes))
		for si := range cfg.Schemes {
			byRouter := make([][]ClusterCell, len(cfg.Routers))
			for ri := range cfg.Routers {
				row := make([]ClusterCell, len(cfg.Loads))
				for li := range cfg.Loads {
					row[li] = results[i].Value.(ClusterCell)
					i++
				}
				byRouter[ri] = row
			}
			byScheme[si] = byRouter
		}
		out.Cells = append(out.Cells, byScheme)
	}
	return out
}

// RunCluster executes the sweep serially.
func RunCluster(cfg ClusterConfig) *ClusterResult {
	return AssembleCluster(cfg, harness.Run(ClusterJobs(cfg), 1))
}

// Cell returns the measurement at (shape, scheme, router, load)
// indices.
func (r *ClusterResult) Cell(shi, si, ri, li int) *ClusterCell {
	return &r.Cells[shi][si][ri][li]
}

// Knee returns the max sustainable cluster load for (shape, scheme,
// router), and whether any swept load sustained the SLO.
func (r *ClusterResult) Knee(shi, si, ri int) (float64, bool) {
	var pts []load.LoadPoint
	for _, c := range r.Cells[shi][si][ri] {
		pts = append(pts, load.LoadPoint{
			Load: c.Load, Stats: c.Stats.EndToEnd, TimedOut: c.TimedOut,
		})
	}
	return load.MaxSustainable(pts, r.Config.SLOBudget)
}

// Render prints, per arrival shape, end-to-end tail tables over
// (router, scheme) rows, the cluster-aggregated node-internal p99, the
// routing balance, and finally the max-sustainable-load knee per
// (router, scheme).
func (r *ClusterResult) Render() string {
	cfg := r.Config
	var sb strings.Builder
	rowLabel := func(ri, si int) string {
		return fmt.Sprintf("%s/%s", cfg.Routers[ri].Name, cfg.Schemes[si].Name)
	}
	header := func(title string) {
		fmt.Fprintf(&sb, "\n%s\n%16s", title, "router/scheme")
		for _, l := range cfg.Loads {
			fmt.Fprintf(&sb, "%9.2f", l)
		}
		sb.WriteByte('\n')
	}
	cellTable := func(shi int, title string, val func(c *ClusterCell) string) {
		header(title)
		for ri := range cfg.Routers {
			for si := range cfg.Schemes {
				fmt.Fprintf(&sb, "%16s", rowLabel(ri, si))
				for li := range cfg.Loads {
					c := r.Cell(shi, si, ri, li)
					if c.TimedOut {
						fmt.Fprintf(&sb, "%9s", "—")
					} else {
						fmt.Fprintf(&sb, "%9s", val(c))
					}
				}
				sb.WriteByte('\n')
			}
		}
	}
	for shi, shape := range cfg.Shapes {
		fmt.Fprintf(&sb, "\n--- arrivals: %s (%d nodes) ---\n", shape.Name, cfg.Nodes)
		cellTable(shi, fmt.Sprintf("end-to-end p99 (s, SLO %.1fs)", cfg.SLO.Seconds()),
			func(c *ClusterCell) string {
				return fmt.Sprintf("%.2f", c.Stats.EndToEnd.P99.Seconds())
			})
		cellTable(shi, "goodput (SLO-met req/s)", func(c *ClusterCell) string {
			return fmt.Sprintf("%.3f", c.Stats.EndToEnd.Goodput)
		})
		cellTable(shi, "SLO violation fraction", func(c *ClusterCell) string {
			return fmt.Sprintf("%.2f", c.Stats.EndToEnd.ViolationFrac)
		})
		cellTable(shi, "node-internal p99, cluster-aggregated (s)", func(c *ClusterCell) string {
			return fmt.Sprintf("%.2f", c.Stats.NodeP99.Seconds())
		})
		cellTable(shi, "dispatch imbalance (max/min node requests)", func(c *ClusterCell) string {
			if math.IsInf(c.Stats.Imbalance, 1) {
				return "inf"
			}
			return fmt.Sprintf("%.2f", c.Stats.Imbalance)
		})
		if cfg.Spans {
			cellTable(shi, "where does p99 live (net/queue/service % of tail latency)",
				func(c *ClusterCell) string {
					t := c.Tail
					if t.N == 0 {
						return "—"
					}
					return fmt.Sprintf("%.0f/%.0f/%.0f",
						t.Network*100, t.Queue*100, t.Service*100)
				})
		}
	}
	fmt.Fprintf(&sb, "\nMax sustainable cluster load (req/s, violation fraction <= %.2f)\n%16s",
		cfg.SLOBudget, "router/scheme")
	for _, shape := range cfg.Shapes {
		fmt.Fprintf(&sb, "%9s", shape.Name)
	}
	sb.WriteByte('\n')
	for ri := range cfg.Routers {
		for si := range cfg.Schemes {
			fmt.Fprintf(&sb, "%16s", rowLabel(ri, si))
			for shi := range cfg.Shapes {
				if knee, ok := r.Knee(shi, si, ri); ok {
					fmt.Fprintf(&sb, "%9.2f", knee)
				} else {
					fmt.Fprintf(&sb, "%9s", "—")
				}
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
