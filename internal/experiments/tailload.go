package experiments

import (
	"fmt"
	"strings"

	"repro/internal/harness"
	"repro/internal/hw"
	"repro/internal/load"
	"repro/internal/sim"
	"repro/internal/workloads/inference"
)

// The tailload scenario generalises §5.5 beyond its single fixed
// Poisson workload: the microservices stack is driven at a sweep of
// offered loads under several arrival shapes (internal/load sources),
// and each scheme — SCHED_COOP against the raw kernel scheduling
// classes — is judged by tail latency against an SLO. The rendered
// knee table reports the max sustainable load per (scheme, shape): the
// highest offered load whose SLO-violation fraction stays within
// budget.

// TailScheme names one resource-management scheme under test: either a
// user-space coordination scheme or a bare kernel scheduling class.
type TailScheme struct {
	// Name labels the scheme row ("sched_coop", "fair", "rr", ...).
	Name string
	// Scheme is the inference-benchmark scheme to run.
	Scheme inference.Scheme
	// KernelClass is the kernel scheduling class ("" keeps the default
	// fair class).
	KernelClass string
}

// TailSchemes returns the compared schemes: SCHED_COOP plus the four
// kernel scheduling classes under the unpartitioned baseline stack.
func TailSchemes() []TailScheme {
	return []TailScheme{
		{Name: "sched_coop", Scheme: inference.Coop},
		{Name: "fair", Scheme: inference.BlNone, KernelClass: "fair"},
		{Name: "rr", Scheme: inference.BlNone, KernelClass: "rr"},
		{Name: "fifo", Scheme: inference.BlNone, KernelClass: "fifo"},
		{Name: "batch", Scheme: inference.BlNone, KernelClass: "batch"},
	}
}

// TailShape names one arrival shape and builds fresh single-use sources
// for it at a given offered load.
type TailShape struct {
	// Name labels the shape ("poisson", "bursty", ...).
	Name string
	// New builds a source offering (on average) rate requests per
	// second of unscaled paper time, for a run whose works are scaled
	// by scale. Sources are single-use; New is called once per cell.
	New func(rate, scale float64, requests int) load.Source
}

// TailShapes returns the swept arrival shapes. All five load.Source
// kinds are represented: open-loop Poisson, MMPP-style bursty, diurnal
// ramp, closed-loop clients with think time, and a deterministic
// uniform trace replay.
func TailShapes() []TailShape {
	return []TailShape{
		{Name: "poisson", New: func(rate, scale float64, _ int) load.Source {
			return &load.Poisson{Rate: rate / scale}
		}},
		// 40%/160% two-state modulation averaging the target rate, with
		// mean dwells of four mean inter-arrival times.
		{Name: "bursty", New: func(rate, scale float64, _ int) load.Source {
			return &load.Bursty{
				Base:      0.4 * rate / scale,
				Burst:     1.6 * rate / scale,
				MeanDwell: sim.Duration(4 / rate * scale * 1e9),
			}
		}},
		// Sinusoid between 40% and 160% of the target, two full cycles
		// across the request train.
		{Name: "ramp", New: func(rate, scale float64, requests int) load.Source {
			return &load.Ramp{
				Low:    0.4 * rate / scale,
				High:   1.6 * rate / scale,
				Period: sim.Duration(float64(requests) / rate / 2 * scale * 1e9),
			}
		}},
		// Four clients whose think time sets the offered load; the loop
		// closes over service latency, so overload self-throttles.
		{Name: "closed", New: func(rate, scale float64, _ int) load.Source {
			return &load.Closed{
				Clients: 4,
				Think:   sim.Duration(4 / rate * scale * 1e9),
			}
		}},
		// Deterministic uniform trace at exactly the target rate.
		{Name: "replay", New: func(rate, scale float64, requests int) load.Source {
			at := make([]sim.Duration, requests)
			for i := range at {
				at[i] = sim.Duration(float64(i) / rate * scale * 1e9)
			}
			return &load.Replay{At: at}
		}},
	}
}

// TailLoadConfig parameterises the sweep.
type TailLoadConfig struct {
	Machine hw.Config
	Shapes  []TailShape
	Schemes []TailScheme
	// Loads are offered request rates (req/s of unscaled paper time),
	// in increasing order.
	Loads []float64
	// SLO is the per-request latency objective; SLOBudget is the
	// tolerated violation fraction when locating the knee.
	SLO       sim.Duration
	SLOBudget float64
	// MaxInFlight, when non-zero, puts the admission stage in front of
	// the gateway in every cell.
	MaxInFlight int
	Requests    int
	Batches     int
	Scale       float64
	Models      []inference.Model
	Horizon     sim.Duration
	Seed        uint64
	// MetricsInterval, when positive, scrapes simulated-time telemetry
	// in every cell (inference.Config.MetricsInterval).
	MetricsInterval sim.Duration
}

// DefaultTailLoad returns the scaled sweep on the full 112-core
// machine.
func DefaultTailLoad() TailLoadConfig {
	return TailLoadConfig{
		Machine:   hw.MareNostrum5(),
		Shapes:    TailShapes(),
		Schemes:   TailSchemes(),
		Loads:     []float64{0.11, 0.2, 0.33, 0.67},
		SLO:       90 * sim.Second,
		SLOBudget: 0.1,
		Requests:  16,
		Batches:   8,
		Scale:     0.2,
		Horizon:   4000 * sim.Second,
		Seed:      23,
	}
}

// QuickTailLoad returns a small fast sweep for tests and benches.
func QuickTailLoad() TailLoadConfig {
	return TailLoadConfig{
		Machine:   hw.DualSocket16(),
		Shapes:    TailShapes()[:2], // poisson, bursty
		Schemes:   TailSchemes(),
		Loads:     []float64{0.5, 2.0, 3.0, 8.0},
		SLO:       600 * sim.Millisecond,
		SLOBudget: 0.15,
		Requests:  8,
		Batches:   4,
		Scale:     0.2,
		Models:    quickModels(),
		Horizon:   4000 * sim.Second,
		Seed:      23,
	}
}

// TailLoadCell is one (shape, scheme, load) measurement.
type TailLoadCell struct {
	Shape  string
	Scheme string
	Load   float64
	inference.Result
}

// TailLoadResult holds cells indexed [shape][scheme][load] in config
// order.
type TailLoadResult struct {
	Config TailLoadConfig
	Cells  [][][]TailLoadCell
}

// TailLoadJobs expands the sweep shape-major, then scheme, then load,
// as AssembleTailLoad expects.
func TailLoadJobs(cfg TailLoadConfig) []harness.Job {
	var jobs []harness.Job
	for _, shape := range cfg.Shapes {
		for _, scheme := range cfg.Schemes {
			for _, rate := range cfg.Loads {
				shape, scheme, rate := shape, scheme, rate
				jobs = append(jobs, harness.Job{
					Name: fmt.Sprintf("%s/%s/load%.2f", shape.Name, scheme.Name, rate),
					Run: func() harness.Output {
						res := inference.Run(inference.Config{
							Machine:         cfg.Machine,
							Scheme:          scheme.Scheme,
							KernelClass:     scheme.KernelClass,
							Rate:            rate,
							Requests:        cfg.Requests,
							Batches:         cfg.Batches,
							Scale:           cfg.Scale,
							Models:          cfg.Models,
							Horizon:         cfg.Horizon,
							Seed:            cfg.Seed,
							Arrivals:        shape.New(rate, cfg.Scale, cfg.Requests),
							SLO:             cfg.SLO,
							MaxInFlight:     cfg.MaxInFlight,
							MetricsInterval: cfg.MetricsInterval,
						})
						return harness.Output{
							Value: TailLoadCell{
								Shape: shape.Name, Scheme: scheme.Name,
								Load: rate, Result: res,
							},
							SimTime:  res.Elapsed,
							TimedOut: res.TimedOut,
							Events:   res.Events,
							Samples:  res.Samples,
						}
					},
				})
			}
		}
	}
	return jobs
}

// AssembleTailLoad rebuilds the shape × scheme × load grid from ordered
// cell results.
func AssembleTailLoad(cfg TailLoadConfig, results []harness.Result) *TailLoadResult {
	out := &TailLoadResult{Config: cfg}
	i := 0
	for range cfg.Shapes {
		grid := make([][]TailLoadCell, len(cfg.Schemes))
		for si := range cfg.Schemes {
			row := make([]TailLoadCell, len(cfg.Loads))
			for li := range cfg.Loads {
				row[li] = results[i].Value.(TailLoadCell)
				i++
			}
			grid[si] = row
		}
		out.Cells = append(out.Cells, grid)
	}
	return out
}

// RunTailLoad executes the sweep serially.
func RunTailLoad(cfg TailLoadConfig) *TailLoadResult {
	return AssembleTailLoad(cfg, harness.Run(TailLoadJobs(cfg), 1))
}

// Knee returns the max sustainable load for (shape, scheme) row, and
// whether any swept load sustained the SLO.
func (r *TailLoadResult) Knee(shapeIdx, schemeIdx int) (float64, bool) {
	var pts []load.LoadPoint
	for _, c := range r.Cells[shapeIdx][schemeIdx] {
		pts = append(pts, load.LoadPoint{
			Load: c.Load, Stats: c.Tail, TimedOut: c.TimedOut,
		})
	}
	return load.MaxSustainable(pts, r.Config.SLOBudget)
}

// Render prints, per arrival shape, throughput-vs-tail-latency tables
// (p99 latency, goodput, SLO-violation fraction), then the knee table:
// the max sustainable load per (scheme, shape).
func (r *TailLoadResult) Render() string {
	cfg := r.Config
	var sb strings.Builder
	header := func(title string) {
		fmt.Fprintf(&sb, "\n%s\n%14s", title, "scheme\\load")
		for _, l := range cfg.Loads {
			fmt.Fprintf(&sb, "%9.2f", l)
		}
		sb.WriteByte('\n')
	}
	cellTable := func(shapeIdx int, title string, val func(c *TailLoadCell) string) {
		header(title)
		for si, scheme := range cfg.Schemes {
			fmt.Fprintf(&sb, "%14s", scheme.Name)
			for li := range cfg.Loads {
				c := &r.Cells[shapeIdx][si][li]
				if c.TimedOut {
					fmt.Fprintf(&sb, "%9s", "—")
				} else {
					fmt.Fprintf(&sb, "%9s", val(c))
				}
			}
			sb.WriteByte('\n')
		}
	}
	for shi, shape := range cfg.Shapes {
		fmt.Fprintf(&sb, "\n--- arrivals: %s ---\n", shape.Name)
		cellTable(shi, fmt.Sprintf("p99 latency (s, SLO %.1fs)", cfg.SLO.Seconds()),
			func(c *TailLoadCell) string {
				return fmt.Sprintf("%.2f", c.Tail.P99.Seconds())
			})
		cellTable(shi, "goodput (SLO-met req/s)", func(c *TailLoadCell) string {
			return fmt.Sprintf("%.3f", c.Tail.Goodput)
		})
		cellTable(shi, "SLO violation fraction", func(c *TailLoadCell) string {
			return fmt.Sprintf("%.2f", c.Tail.ViolationFrac)
		})
	}
	fmt.Fprintf(&sb, "\nMax sustainable load (req/s, violation fraction <= %.2f)\n%14s",
		cfg.SLOBudget, "scheme\\shape")
	for _, shape := range cfg.Shapes {
		fmt.Fprintf(&sb, "%9s", shape.Name)
	}
	sb.WriteByte('\n')
	for si, scheme := range cfg.Schemes {
		fmt.Fprintf(&sb, "%14s", scheme.Name)
		for shi := range cfg.Shapes {
			if knee, ok := r.Knee(shi, si); ok {
				fmt.Fprintf(&sb, "%9.2f", knee)
			} else {
				fmt.Fprintf(&sb, "%9s", "—")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
