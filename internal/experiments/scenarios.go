package experiments

import (
	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/trace"
	"repro/internal/workloads/inference"
	"repro/internal/workloads/matmul"
	"repro/internal/workloads/md"
)

// Scenario registry wiring: each paper artefact registers its cell
// expansion and renderer with the harness, so cmd/uschedsim resolves
// subcommands against the registry and `all` sweeps every cell through
// one worker pool.

func figure3Config(opt harness.Opts) Figure3Config {
	cfg := DefaultFigure3()
	if opt.Quick {
		cfg = QuickFigure3()
	}
	cfg.Seed = opt.ApplySeed(cfg.Seed)
	return cfg
}

func table2Config(opt harness.Opts) Table2Config {
	cfg := DefaultTable2()
	if opt.Quick {
		cfg = QuickTable2()
	}
	cfg.Seed = opt.ApplySeed(cfg.Seed)
	return cfg
}

func figure4Config(opt harness.Opts) Figure4Config {
	cfg := DefaultFigure4()
	if opt.Quick {
		cfg = QuickFigure4()
	}
	cfg.Seed = opt.ApplySeed(cfg.Seed)
	return cfg
}

func figure5Config(opt harness.Opts) Figure5Config {
	cfg := DefaultFigure5()
	if opt.Quick {
		cfg = QuickFigure5()
	}
	cfg.Base.Seed = opt.ApplySeed(cfg.Base.Seed)
	return cfg
}

func schedCmpConfig(opt harness.Opts) SchedCmpConfig {
	cfg := DefaultSchedCmp()
	if opt.Quick {
		cfg = QuickSchedCmp()
	}
	cfg.Seed = opt.ApplySeed(cfg.Seed)
	return cfg
}

// traceCap bounds -trace recordings: a flight-recorder ring holding the
// last million scheduling events.
const traceCap = 1 << 20

// traceMatmul runs one representative matmul cell (Baseline mode, the
// config's smallest task size and widest inner team — the most
// oversubscribed corner) with tracing enabled.
func traceMatmul(cfg Figure3Config) *trace.Buffer {
	buf := trace.NewBuffer(traceCap)
	matmul.Run(matmul.Config{
		Machine:    cfg.Machine,
		Mode:       stack.ModeBaseline,
		N:          cfg.N,
		TaskSize:   cfg.TaskSizes[len(cfg.TaskSizes)-1],
		OMPThreads: cfg.OMPThreads[len(cfg.OMPThreads)-1],
		Reps:       cfg.Reps,
		Horizon:    cfg.Horizon,
		Seed:       cfg.Seed,
		Tracer:     buf,
	})
	return buf
}

// traceMicroservices runs one representative microservices cell (the
// bl-none scheme at the timeline rate) with tracing enabled.
func traceMicroservices(cfg Figure4Config) *trace.Buffer {
	buf := trace.NewBuffer(traceCap)
	inference.Run(inference.Config{
		Machine:  cfg.Machine,
		Scheme:   inference.BlNone,
		Rate:     cfg.TimelineRate,
		Requests: cfg.Requests,
		Batches:  cfg.Batches,
		Scale:    cfg.Scale,
		Models:   cfg.Models,
		Horizon:  cfg.Horizon,
		Seed:     cfg.Seed,
		Tracer:   buf,
	})
	return buf
}

// traceSchedCmp traces the matmul leg's most oversubscribed cell under
// the last configured (non-fair, if any) kernel class, so the class tag
// in the trace is visibly exercised.
func traceSchedCmp(cfg SchedCmpConfig) *trace.Buffer {
	buf := trace.NewBuffer(traceCap)
	class := cfg.Classes[len(cfg.Classes)-1]
	matmul.Run(matmul.Config{
		Machine:     cfg.Machine,
		Mode:        stack.ModeBaseline,
		N:           cfg.N,
		TaskSize:    cfg.TaskSize,
		OMPThreads:  cfg.Oversub[len(cfg.Oversub)-1],
		Reps:        cfg.Reps,
		Horizon:     cfg.Horizon,
		Seed:        cfg.Seed,
		KernelClass: class,
		Tracer:      buf,
	})
	return buf
}

func tailLoadConfig(opt harness.Opts) TailLoadConfig {
	cfg := DefaultTailLoad()
	if opt.Quick {
		cfg = QuickTailLoad()
	}
	cfg.Seed = opt.ApplySeed(cfg.Seed)
	if opt.Metrics {
		cfg.MetricsInterval = metricsInterval(opt)
	}
	return cfg
}

// metricsInterval is the scrape cadence -metrics enables: coarse on the
// scaled paper sweeps, finer on the quick test-sized configurations
// whose runs are only seconds of virtual time.
func metricsInterval(opt harness.Opts) sim.Duration {
	if opt.Quick {
		return 250 * sim.Millisecond
	}
	return 5 * sim.Second
}

// traceTailLoad traces the most loaded bursty cell under the last
// configured scheme, so the trace shows tail-latency formation under
// bursty arrivals.
func traceTailLoad(cfg TailLoadConfig) *trace.Buffer {
	buf := trace.NewBuffer(traceCap)
	shape := cfg.Shapes[0]
	for _, s := range cfg.Shapes {
		if s.Name == "bursty" {
			shape = s
		}
	}
	scheme := cfg.Schemes[len(cfg.Schemes)-1]
	rate := cfg.Loads[len(cfg.Loads)-1]
	inference.Run(inference.Config{
		Machine:     cfg.Machine,
		Scheme:      scheme.Scheme,
		KernelClass: scheme.KernelClass,
		Rate:        rate,
		Requests:    cfg.Requests,
		Batches:     cfg.Batches,
		Scale:       cfg.Scale,
		Models:      cfg.Models,
		Horizon:     cfg.Horizon,
		Seed:        cfg.Seed,
		Arrivals:    shape.New(rate, cfg.Scale, cfg.Requests),
		SLO:         cfg.SLO,
		MaxInFlight: cfg.MaxInFlight,
		Tracer:      buf,
	})
	return buf
}

func clusterConfig(opt harness.Opts) ClusterConfig {
	cfg := DefaultCluster()
	if opt.Quick {
		cfg = QuickCluster()
	}
	cfg.Seed = opt.ApplySeed(cfg.Seed)
	if opt.Shards > 0 {
		cfg.Shards = opt.Shards
	}
	if opt.Metrics {
		cfg.MetricsInterval = metricsInterval(opt)
	}
	cfg.Spans = opt.SpanRecords
	return cfg
}

// traceCluster traces node 0 of the most loaded bursty cell under
// least-outstanding routing and SCHED_COOP, so the trace shows one
// fleet member absorbing its routed share of a burst.
func traceCluster(cfg ClusterConfig) *trace.Buffer {
	buf := trace.NewBuffer(traceCap)
	shape := cfg.Shapes[0]
	for _, s := range cfg.Shapes {
		if s.Name == "bursty" {
			shape = s
		}
	}
	router := cfg.Routers[0]
	for _, r := range cfg.Routers {
		if r.Name == "p2c" {
			router = r
		}
	}
	runClusterCell(cfg, shape, cfg.Schemes[0], router, cfg.Loads[len(cfg.Loads)-1], buf)
	return buf
}

func chaosConfig(opt harness.Opts) ChaosConfig {
	cfg := DefaultChaos()
	if opt.Quick {
		cfg = QuickChaos()
	}
	cfg.Seed = opt.ApplySeed(cfg.Seed)
	if opt.Shards > 0 {
		cfg.Shards = opt.Shards
	}
	if opt.Metrics {
		// Scrape ticks must live on the chaos quantum grid (phase 0)
		// like every other non-request instant; see chaosQuantum.
		cfg.MetricsInterval = chaosAlign(metricsInterval(opt))
	}
	cfg.Spans = opt.SpanRecords
	return cfg
}

func init() {
	harness.Register(&harness.Scenario{
		Name:  "matmul",
		Title: "Figure 3: nested-runtime matmul heatmaps",
		Jobs: func(opt harness.Opts) []harness.Job {
			return Figure3Jobs(figure3Config(opt))
		},
		Render: func(opt harness.Opts, results []harness.Result) string {
			return AssembleFigure3(figure3Config(opt), results).Render()
		},
		Trace: func(opt harness.Opts) *trace.Buffer {
			return traceMatmul(figure3Config(opt))
		},
	})
	harness.Register(&harness.Scenario{
		Name:  "cholesky",
		Title: "Table 2: Cholesky runtime compositions",
		Jobs: func(opt harness.Opts) []harness.Job {
			return Table2Jobs(table2Config(opt))
		},
		Render: func(opt harness.Opts, results []harness.Result) string {
			return AssembleTable2(table2Config(opt), results).Render()
		},
	})
	harness.Register(&harness.Scenario{
		Name:  "microservices",
		Title: "Figure 4: AI microservices",
		Jobs: func(opt harness.Opts) []harness.Job {
			return Figure4Jobs(figure4Config(opt))
		},
		Render: func(opt harness.Opts, results []harness.Result) string {
			return AssembleFigure4(figure4Config(opt), results).Render()
		},
		Trace: func(opt harness.Opts) *trace.Buffer {
			return traceMicroservices(figure4Config(opt))
		},
	})
	harness.Register(&harness.Scenario{
		Name:  "lammps",
		Title: "Figure 5: LAMMPS + DeePMD-kit ensembles",
		Jobs: func(opt harness.Opts) []harness.Job {
			return Figure5Jobs(figure5Config(opt))
		},
		Render: func(opt harness.Opts, results []harness.Result) string {
			res := AssembleFigure5(figure5Config(opt), results)
			return res.Render() + res.RenderBWTrace(md.SchedCoopNode, 30)
		},
	})
	harness.Register(&harness.Scenario{
		Name:  "schedcmp",
		Title: "Kernel-scheduler ablation: scheduling classes × oversubscription",
		Jobs: func(opt harness.Opts) []harness.Job {
			return SchedCmpJobs(schedCmpConfig(opt))
		},
		Render: func(opt harness.Opts, results []harness.Result) string {
			return AssembleSchedCmp(schedCmpConfig(opt), results).Render()
		},
		Trace: func(opt harness.Opts) *trace.Buffer {
			return traceSchedCmp(schedCmpConfig(opt))
		},
	})
	harness.Register(&harness.Scenario{
		Name:  "tailload",
		Title: "Tail latency under load: arrival shapes × schemes × offered load",
		Jobs: func(opt harness.Opts) []harness.Job {
			return TailLoadJobs(tailLoadConfig(opt))
		},
		Render: func(opt harness.Opts, results []harness.Result) string {
			return AssembleTailLoad(tailLoadConfig(opt), results).Render()
		},
		Trace: func(opt harness.Opts) *trace.Buffer {
			return traceTailLoad(tailLoadConfig(opt))
		},
	})
	harness.Register(&harness.Scenario{
		Name:  "cluster",
		Title: "Multi-node fleet: routers × schemes × arrival shapes × offered load",
		Jobs: func(opt harness.Opts) []harness.Job {
			return ClusterJobs(clusterConfig(opt))
		},
		Render: func(opt harness.Opts, results []harness.Result) string {
			return AssembleCluster(clusterConfig(opt), results).Render()
		},
		Trace: func(opt harness.Opts) *trace.Buffer {
			return traceCluster(clusterConfig(opt))
		},
	})
	harness.Register(&harness.Scenario{
		Name:  "chaos",
		Title: "Fault injection: node kill & brownout × retry policies × routers",
		Jobs: func(opt harness.Opts) []harness.Job {
			return ChaosJobs(chaosConfig(opt))
		},
		Render: func(opt harness.Opts, results []harness.Result) string {
			return AssembleChaos(chaosConfig(opt), results).Render()
		},
	})
}
