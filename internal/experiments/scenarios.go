package experiments

import (
	"repro/internal/harness"
	"repro/internal/stack"
	"repro/internal/trace"
	"repro/internal/workloads/inference"
	"repro/internal/workloads/matmul"
	"repro/internal/workloads/md"
)

// Scenario registry wiring: each paper artefact registers its cell
// expansion and renderer with the harness, so cmd/uschedsim resolves
// subcommands against the registry and `all` sweeps every cell through
// one worker pool.

func figure3Config(quick bool) Figure3Config {
	if quick {
		return QuickFigure3()
	}
	return DefaultFigure3()
}

func table2Config(quick bool) Table2Config {
	if quick {
		return QuickTable2()
	}
	return DefaultTable2()
}

func figure4Config(quick bool) Figure4Config {
	if quick {
		return QuickFigure4()
	}
	return DefaultFigure4()
}

func figure5Config(quick bool) Figure5Config {
	if quick {
		return QuickFigure5()
	}
	return DefaultFigure5()
}

func schedCmpConfig(quick bool) SchedCmpConfig {
	if quick {
		return QuickSchedCmp()
	}
	return DefaultSchedCmp()
}

// traceCap bounds -trace recordings: a flight-recorder ring holding the
// last million scheduling events.
const traceCap = 1 << 20

// traceMatmul runs one representative matmul cell (Baseline mode, the
// config's smallest task size and widest inner team — the most
// oversubscribed corner) with tracing enabled.
func traceMatmul(cfg Figure3Config) *trace.Buffer {
	buf := trace.NewBuffer(traceCap)
	matmul.Run(matmul.Config{
		Machine:    cfg.Machine,
		Mode:       stack.ModeBaseline,
		N:          cfg.N,
		TaskSize:   cfg.TaskSizes[len(cfg.TaskSizes)-1],
		OMPThreads: cfg.OMPThreads[len(cfg.OMPThreads)-1],
		Reps:       cfg.Reps,
		Horizon:    cfg.Horizon,
		Seed:       cfg.Seed,
		Tracer:     buf,
	})
	return buf
}

// traceMicroservices runs one representative microservices cell (the
// bl-none scheme at the timeline rate) with tracing enabled.
func traceMicroservices(cfg Figure4Config) *trace.Buffer {
	buf := trace.NewBuffer(traceCap)
	inference.Run(inference.Config{
		Machine:  cfg.Machine,
		Scheme:   inference.BlNone,
		Rate:     cfg.TimelineRate,
		Requests: cfg.Requests,
		Batches:  cfg.Batches,
		Scale:    cfg.Scale,
		Models:   cfg.Models,
		Horizon:  cfg.Horizon,
		Seed:     cfg.Seed,
		Tracer:   buf,
	})
	return buf
}

// traceSchedCmp traces the matmul leg's most oversubscribed cell under
// the last configured (non-fair, if any) kernel class, so the class tag
// in the trace is visibly exercised.
func traceSchedCmp(cfg SchedCmpConfig) *trace.Buffer {
	buf := trace.NewBuffer(traceCap)
	class := cfg.Classes[len(cfg.Classes)-1]
	matmul.Run(matmul.Config{
		Machine:     cfg.Machine,
		Mode:        stack.ModeBaseline,
		N:           cfg.N,
		TaskSize:    cfg.TaskSize,
		OMPThreads:  cfg.Oversub[len(cfg.Oversub)-1],
		Reps:        cfg.Reps,
		Horizon:     cfg.Horizon,
		Seed:        cfg.Seed,
		KernelClass: class,
		Tracer:      buf,
	})
	return buf
}

func init() {
	harness.Register(&harness.Scenario{
		Name:  "matmul",
		Title: "Figure 3: nested-runtime matmul heatmaps",
		Jobs: func(quick bool) []harness.Job {
			return Figure3Jobs(figure3Config(quick))
		},
		Render: func(quick bool, results []harness.Result) string {
			return AssembleFigure3(figure3Config(quick), results).Render()
		},
		Trace: func(quick bool) *trace.Buffer {
			return traceMatmul(figure3Config(quick))
		},
	})
	harness.Register(&harness.Scenario{
		Name:  "cholesky",
		Title: "Table 2: Cholesky runtime compositions",
		Jobs: func(quick bool) []harness.Job {
			return Table2Jobs(table2Config(quick))
		},
		Render: func(quick bool, results []harness.Result) string {
			return AssembleTable2(table2Config(quick), results).Render()
		},
	})
	harness.Register(&harness.Scenario{
		Name:  "microservices",
		Title: "Figure 4: AI microservices",
		Jobs: func(quick bool) []harness.Job {
			return Figure4Jobs(figure4Config(quick))
		},
		Render: func(quick bool, results []harness.Result) string {
			return AssembleFigure4(figure4Config(quick), results).Render()
		},
		Trace: func(quick bool) *trace.Buffer {
			return traceMicroservices(figure4Config(quick))
		},
	})
	harness.Register(&harness.Scenario{
		Name:  "lammps",
		Title: "Figure 5: LAMMPS + DeePMD-kit ensembles",
		Jobs: func(quick bool) []harness.Job {
			return Figure5Jobs(figure5Config(quick))
		},
		Render: func(quick bool, results []harness.Result) string {
			res := AssembleFigure5(figure5Config(quick), results)
			return res.Render() + res.RenderBWTrace(md.SchedCoopNode, 30)
		},
	})
	harness.Register(&harness.Scenario{
		Name:  "schedcmp",
		Title: "Kernel-scheduler ablation: scheduling classes × oversubscription",
		Jobs: func(quick bool) []harness.Job {
			return SchedCmpJobs(schedCmpConfig(quick))
		},
		Render: func(quick bool, results []harness.Result) string {
			return AssembleSchedCmp(schedCmpConfig(quick), results).Render()
		},
		Trace: func(quick bool) *trace.Buffer {
			return traceSchedCmp(schedCmpConfig(quick))
		},
	})
}
