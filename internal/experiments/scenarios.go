package experiments

import (
	"repro/internal/harness"
	"repro/internal/workloads/md"
)

// Scenario registry wiring: each paper artefact registers its cell
// expansion and renderer with the harness, so cmd/uschedsim resolves
// subcommands against the registry and `all` sweeps every cell through
// one worker pool.

func figure3Config(quick bool) Figure3Config {
	if quick {
		return QuickFigure3()
	}
	return DefaultFigure3()
}

func table2Config(quick bool) Table2Config {
	if quick {
		return QuickTable2()
	}
	return DefaultTable2()
}

func figure4Config(quick bool) Figure4Config {
	if quick {
		return QuickFigure4()
	}
	return DefaultFigure4()
}

func figure5Config(quick bool) Figure5Config {
	if quick {
		return QuickFigure5()
	}
	return DefaultFigure5()
}

func init() {
	harness.Register(&harness.Scenario{
		Name:  "matmul",
		Title: "Figure 3: nested-runtime matmul heatmaps",
		Jobs: func(quick bool) []harness.Job {
			return Figure3Jobs(figure3Config(quick))
		},
		Render: func(quick bool, results []harness.Result) string {
			return AssembleFigure3(figure3Config(quick), results).Render()
		},
	})
	harness.Register(&harness.Scenario{
		Name:  "cholesky",
		Title: "Table 2: Cholesky runtime compositions",
		Jobs: func(quick bool) []harness.Job {
			return Table2Jobs(table2Config(quick))
		},
		Render: func(quick bool, results []harness.Result) string {
			return AssembleTable2(table2Config(quick), results).Render()
		},
	})
	harness.Register(&harness.Scenario{
		Name:  "microservices",
		Title: "Figure 4: AI microservices",
		Jobs: func(quick bool) []harness.Job {
			return Figure4Jobs(figure4Config(quick))
		},
		Render: func(quick bool, results []harness.Result) string {
			return AssembleFigure4(figure4Config(quick), results).Render()
		},
	})
	harness.Register(&harness.Scenario{
		Name:  "lammps",
		Title: "Figure 5: LAMMPS + DeePMD-kit ensembles",
		Jobs: func(quick bool) []harness.Job {
			return Figure5Jobs(figure5Config(quick))
		},
		Render: func(quick bool, results []harness.Result) string {
			res := AssembleFigure5(figure5Config(quick), results)
			return res.Render() + res.RenderBWTrace(md.SchedCoopNode, 30)
		},
	})
}
