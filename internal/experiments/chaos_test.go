package experiments

import (
	"strings"
	"testing"

	"repro/internal/harness"
)

func TestChaosQuickSweep(t *testing.T) {
	cfg := QuickChaos()
	res := RunChaos(cfg)
	if len(res.Cells) != len(cfg.Faults) ||
		len(res.Cells[0]) != len(cfg.Policies) ||
		len(res.Cells[0][0]) != len(cfg.Routers) {
		t.Fatal("grid shape wrong")
	}
	var pol = map[string]int{}
	for pi, p := range cfg.Policies {
		pol[p.Name] = pi
	}
	for fi, fault := range cfg.Faults {
		for ri, router := range cfg.Routers {
			for pi := range cfg.Policies {
				c := res.Cell(fi, pi, ri)
				if c.TimedOut {
					t.Fatalf("%s/%s/%s hit the horizon", fault.Name, c.Policy, router.Name)
				}
				st := c.Stats.EndToEnd
				if st.Completed+st.Failed != cfg.Requests {
					t.Fatalf("%s/%s/%s resolves %d+%d of %d requests",
						fault.Name, c.Policy, router.Name, st.Completed, st.Failed, cfg.Requests)
				}
			}
			// The scenario's headline: unlimited retries after a fault
			// collapse goodput below what a budgeted policy sustains, and
			// on the kill leg the collapsed fleet never recovers while the
			// budgeted one does.
			unlimited := res.Cell(fi, pol["unlimited"], ri)
			budgeted := res.Cell(fi, pol["budgeted"], ri)
			gU := unlimited.Stats.EndToEnd.Goodput
			gB := budgeted.Stats.EndToEnd.Goodput
			if gU >= 0.75*gB {
				t.Fatalf("%s/%s: unlimited goodput %.1f not collapsed vs budgeted %.1f",
					fault.Name, router.Name, gU, gB)
			}
			if unlimited.Stats.Resilience.Retries <= 10*budgeted.Stats.Resilience.Retries {
				t.Fatalf("%s/%s: no retry storm: %d vs %d retries", fault.Name, router.Name,
					unlimited.Stats.Resilience.Retries, budgeted.Stats.Resilience.Retries)
			}
			if fault.Name == "kill" {
				if unlimited.TTR >= 0 {
					t.Fatalf("%s/%s: collapsed fleet reports recovery at %v",
						fault.Name, router.Name, unlimited.TTR)
				}
				if budgeted.TTR < 0 {
					t.Fatalf("%s/%s: budgeted fleet never recovers", fault.Name, router.Name)
				}
			}
			// Hedging must actually hedge, and budgets must actually shed.
			hedged := res.Cell(fi, pol["hedged"], ri)
			if hedged.Stats.Resilience.Hedges == 0 {
				t.Fatalf("%s/%s: hedged policy issued no hedges", fault.Name, router.Name)
			}
			if budgeted.Stats.Resilience.Shed == 0 {
				t.Fatalf("%s/%s: budget never sheds", fault.Name, router.Name)
			}
		}
	}
	out := res.Render()
	for _, want := range []string{"fault: kill", "fault: brownout", "goodput",
		"ttr_s", "never", "rr/unlimited", "p2c/budgeted"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestChaosParallelAndShardsIdentical(t *testing.T) {
	// The determinism acceptance at the scenario level: the chaos tables
	// must be byte-identical for any worker parallelism and shard count,
	// retry storms included.
	cfg := QuickChaos()
	ref := AssembleChaos(cfg, harness.Run(ChaosJobs(cfg), 1)).Render()
	if got := AssembleChaos(cfg, harness.Run(ChaosJobs(cfg), 4)).Render(); got != ref {
		t.Fatalf("chaos tables differ between par 1 and par 4:\n%s\n---\n%s", ref, got)
	}
	for _, shards := range []int{2, 3} {
		c := cfg
		c.Shards = shards
		if got := AssembleChaos(c, harness.Run(ChaosJobs(c), 1)).Render(); got != ref {
			t.Fatalf("chaos tables differ between 1 and %d shards:\n%s\n---\n%s", shards, ref, got)
		}
	}
}
