package mpi

import (
	"testing"

	"repro/internal/glibc"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// launchRanks builds a world of n single-threaded rank processes running
// body and drives the simulation to completion.
func launchRanks(t *testing.T, cores, n int, yield bool, body func(r *Rank, l *glibc.Lib)) *kernel.Kernel {
	t.Helper()
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = cores
	cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
	eng := sim.NewEngine(1)
	k := kernel.New(eng, cfg, kernel.DefaultSchedParams())
	w := NewWorld(n, yield)
	for i := 0; i < n; i++ {
		i := i
		if _, err := glibc.StartProcess(k, "rank", glibc.Options{}, func(l *glibc.Lib) {
			r := w.Register(i, l)
			body(r, l)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Run(sim.Time(10 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestSendRecvDelivers(t *testing.T) {
	var got int64
	launchRanks(t, 4, 2, true, func(r *Rank, l *glibc.Lib) {
		if r.RankID() == 0 {
			l.Compute(1 * sim.Millisecond)
			r.Send(1, 7, 4096)
		} else {
			got = r.Recv(0, 7)
		}
	})
	if got != 4096 {
		t.Fatalf("received %d bytes, want 4096", got)
	}
}

func TestRecvMatchesTag(t *testing.T) {
	var first int64
	launchRanks(t, 4, 2, true, func(r *Rank, l *glibc.Lib) {
		if r.RankID() == 0 {
			r.Send(1, 1, 100)
			r.Send(1, 2, 200)
		} else {
			first = r.Recv(0, 2) // must skip the tag-1 message
			r.Recv(0, 1)
		}
	})
	if first != 200 {
		t.Fatalf("tag-2 recv got %d bytes, want 200", first)
	}
}

func TestBarrierSynchronises(t *testing.T) {
	var minAfter, maxBefore sim.Time
	minAfter = sim.Forever
	launchRanks(t, 4, 4, true, func(r *Rank, l *glibc.Lib) {
		l.Compute(sim.Duration(r.RankID()+1) * sim.Millisecond)
		now := l.K.Eng.Now()
		if now > maxBefore {
			maxBefore = now
		}
		r.Barrier()
		now = l.K.Eng.Now()
		if now < minAfter {
			minAfter = now
		}
	})
	if minAfter < maxBefore {
		t.Fatalf("a rank left the barrier at %v before the last arrived at %v", minAfter, maxBefore)
	}
}

func TestAllreduceCompletes(t *testing.T) {
	done := 0
	launchRanks(t, 4, 4, true, func(r *Rank, l *glibc.Lib) {
		r.Allreduce(8192)
		done++
	})
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
}

func TestBusyWaitRecvBurnsCPUWithoutYield(t *testing.T) {
	// 3 ranks on 1 core: rank 1 waits for rank 0's message while rank 2
	// computes. Without yield, the waiting rank burns whole slices; with
	// the patch it gives the CPU back. Total makespan must be clearly
	// worse without yield.
	measure := func(yield bool) sim.Time {
		cfg := hw.SmallNode()
		cfg.Topo.CoresPerSocket = 1
		cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
		eng := sim.NewEngine(1)
		k := kernel.New(eng, cfg, kernel.DefaultSchedParams())
		w := NewWorld(2, yield)
		var doneAt sim.Time
		for i := 0; i < 2; i++ {
			i := i
			if _, err := glibc.StartProcess(k, "rank", glibc.Options{}, func(l *glibc.Lib) {
				r := w.Register(i, l)
				if i == 0 {
					l.Compute(30 * sim.Millisecond)
					r.Send(1, 0, 64)
				} else {
					r.Recv(0, 0)
					doneAt = l.K.Eng.Now()
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := eng.Run(sim.Time(10 * sim.Second)); err != nil {
			t.Fatal(err)
		}
		return doneAt
	}
	withYield := measure(true)
	without := measure(false)
	if without <= withYield {
		t.Fatalf("yield=%v no-yield=%v: busy-wait interference not modelled", withYield, without)
	}
}

func TestHaloExchangeRing(t *testing.T) {
	// 4 ranks exchange halos with both neighbours in a ring.
	sums := make([]int64, 4)
	launchRanks(t, 4, 4, true, func(r *Rank, l *glibc.Lib) {
		me := r.RankID()
		left := (me + 3) % 4
		right := (me + 1) % 4
		r.Send(right, 10+me, 1000)
		r.Send(left, 20+me, 1000)
		sums[me] += r.Recv(left, 10+left)
		sums[me] += r.Recv(right, 20+right)
	})
	for i, s := range sums {
		if s != 2000 {
			t.Fatalf("rank %d halo bytes = %d, want 2000", i, s)
		}
	}
}
