// Package mpi models an MPICH-like on-node MPI over shared memory: eager
// buffered sends, receives that busy-poll the progress engine (the
// behaviour that interferes under oversubscription, §5.2), and central
// counter collectives. The paper's one-line sched_yield patch to MPICH's
// busy-wait is the Yield flag.
package mpi

import (
	"fmt"

	"repro/internal/glibc"
	"repro/internal/rt/spin"
	"repro/internal/sim"
)

// message is an in-flight eager message.
type message struct {
	src, tag int
	bytes    int64
}

// World is one MPI communicator across simulated processes on the node.
type World struct {
	size  int
	ranks []*Rank
	// Yield applies the sched_yield patch to all busy-wait loops.
	Yield bool

	barCount int
	barGen   int
}

// NewWorld creates a communicator expecting size ranks.
func NewWorld(size int, yield bool) *World {
	return &World{size: size, ranks: make([]*Rank, size), Yield: yield}
}

// Size returns the communicator size.
func (w *World) Size() int { return w.size }

// Rank is one process's endpoint.
type Rank struct {
	w    *World
	rank int
	lib  *glibc.Lib
	// inbox[src] holds messages from that source, FIFO.
	inbox [][]message
}

// Register attaches the calling process (rank id) to the world.
func (w *World) Register(rank int, lib *glibc.Lib) *Rank {
	if w.ranks[rank] != nil {
		panic(fmt.Sprintf("mpi: rank %d registered twice", rank))
	}
	r := &Rank{w: w, rank: rank, lib: lib, inbox: make([][]message, w.size)}
	w.ranks[rank] = r
	return r
}

// Rank returns this endpoint's rank id.
func (r *Rank) RankID() int { return r.rank }

// protocol cost constants (on-node shared-memory transport).
const (
	sendOverhead = 400 * sim.Nanosecond
	recvOverhead = 600 * sim.Nanosecond
	// copyBytesPerNs is the shared-memory copy rate (~12 GB/s).
	copyBytesPerNs = 12.0
)

// Send performs an eager buffered send: the payload is copied into the
// destination mailbox and the call returns.
func (r *Rank) Send(dst, tag int, bytes int64) {
	r.lib.Compute(sendOverhead + sim.Duration(float64(bytes)/copyBytesPerNs))
	d := r.w.ranks[dst]
	d.inbox[r.rank] = append(d.inbox[r.rank], message{src: r.rank, tag: tag, bytes: bytes})
}

// Recv blocks (busy-polling, like MPICH's progress engine) until a message
// with the given source and tag arrives, then consumes it.
func (r *Rank) Recv(src, tag int) int64 {
	var got message
	spin.Until(r.lib, func() bool {
		q := r.inbox[src]
		for i, m := range q {
			if m.tag == tag {
				got = m
				copy(q[i:], q[i+1:])
				r.inbox[src] = q[:len(q)-1]
				return true
			}
		}
		return false
	}, r.w.Yield)
	r.lib.Compute(recvOverhead + sim.Duration(float64(got.bytes)/copyBytesPerNs))
	return got.bytes
}

// Sendrecv exchanges messages with two peers (the LAMMPS halo pattern).
func (r *Rank) Sendrecv(dst int, sendBytes int64, src, tag int) int64 {
	r.Send(dst, tag, sendBytes)
	return r.Recv(src, tag)
}

// Barrier blocks until all ranks arrive, busy-polling a central counter.
func (r *Rank) Barrier() {
	w := r.w
	gen := w.barGen
	w.barCount++
	if w.barCount == w.size {
		w.barCount = 0
		w.barGen++
		return
	}
	spin.Until(r.lib, func() bool { return w.barGen != gen }, w.Yield)
}

// Allreduce models a flat reduce+broadcast of the given payload: a
// barrier-synchronised exchange plus the bandwidth/latency cost of moving
// the data up and down.
func (r *Rank) Allreduce(bytes int64) {
	r.lib.Compute(sim.Duration(2 * float64(bytes) / copyBytesPerNs))
	r.Barrier()
	log2 := 0
	for n := 1; n < r.w.size; n <<= 1 {
		log2++
	}
	r.lib.Compute(sim.Duration(log2) * 2 * sim.Microsecond)
	r.Barrier()
}
