package stack

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/glibc"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/sim"
)

func TestModeProperties(t *testing.T) {
	cases := []struct {
		mode     Mode
		usf      bool
		yield    bool
		blocking bool
		name     string
	}{
		{ModeOriginal, false, false, false, "original"},
		{ModeBaseline, false, true, false, "baseline"},
		{ModeManual, true, true, true, "manual"},
		{ModeCoop, true, true, false, "sched_coop"},
	}
	for _, c := range cases {
		if c.mode.UsesUSF() != c.usf || c.mode.YieldInBarrier() != c.yield ||
			c.mode.BlockingBarrier() != c.blocking || c.mode.String() != c.name {
			t.Fatalf("mode %v properties wrong", c.mode)
		}
	}
}

func TestStartWiresCoopPolicy(t *testing.T) {
	sys := New(hw.SmallNode(), 1)
	_, err := sys.Start("app", ModeCoop, glibc.Options{}, func(l *glibc.Lib) {
		l.Compute(1 * sim.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Coop == nil {
		t.Fatal("SCHED_COOP policy not created for USF process")
	}
	if _, err := sys.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestRunHorizonTimesOutAndTearsDown(t *testing.T) {
	sys := New(hw.SmallNode(), 1)
	_, err := sys.Start("app", ModeBaseline, glibc.Options{}, func(l *glibc.Lib) {
		for {
			l.Compute(10 * sim.Millisecond) // never finishes
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	timedOut, err := sys.Run(50 * sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Fatal("horizon not reported")
	}
	if sys.Eng.Live() != 0 {
		t.Fatalf("live procs after teardown: %d", sys.Eng.Live())
	}
}

func TestRunCompletesBeforeHorizon(t *testing.T) {
	sys := New(hw.SmallNode(), 1)
	_, err := sys.Start("app", ModeBaseline, glibc.Options{}, func(l *glibc.Lib) {
		l.Compute(5 * sim.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	timedOut, err := sys.Run(10 * sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if timedOut {
		t.Fatal("spurious timeout")
	}
}

func TestNewWithParamsRejectsInvalidMachine(t *testing.T) {
	bad := hw.SmallNode()
	bad.Topo.CoresPerSocket = 0 // invalid topology
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("invalid machine did not panic")
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("panic value %T is not an error: %v", r, r)
		}
		if msg := err.Error(); !strings.HasPrefix(msg, "stack: invalid machine") {
			t.Fatalf("unclear validation error: %q", msg)
		}
	}()
	NewWithParams(bad, 1, kernel.DefaultSchedParams())
}

// contendResult captures everything observable about one system's run:
// per-thread completion instants, the RNG-dependent work layout, and the
// kernel's scheduling counters.
type contendResult struct {
	doneAt []sim.Time
	works  []sim.Duration
	stats  kernel.Counters
}

// runContend starts an oversubscribed, mutex-contending workload on sys
// (drawing per-thread work from the system's own RNG namespace) and
// returns a closure that snapshots the result after the engine ran.
func runContend(t *testing.T, sys *System, mode Mode) func() contendResult {
	t.Helper()
	const threads = 12
	res := contendResult{
		doneAt: make([]sim.Time, threads),
		works:  make([]sim.Duration, threads),
	}
	rng := sys.Rand("contend")
	for i := range res.works {
		res.works[i] = sim.Duration(1+rng.Intn(5)) * sim.Millisecond
	}
	_, err := sys.Start("app", mode, glibc.Options{}, func(l *glibc.Lib) {
		mu := l.NewMutex()
		var pts []*glibc.Pthread
		for i := 0; i < threads; i++ {
			i := i
			pts = append(pts, l.PthreadCreate("w", func() {
				for rep := 0; rep < 3; rep++ {
					mu.Lock()
					l.Compute(res.works[i] / 4)
					mu.Unlock()
					l.Compute(res.works[i])
				}
				res.doneAt[i] = l.K.Eng.Now()
			}))
		}
		for _, pt := range pts {
			l.PthreadJoin(pt)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return func() contendResult {
		res.stats = sys.K.Stats
		return res
	}
}

// TestSharedEngineMatchesSequentialRuns locks in the engine-sharing
// contract: two kernels on one engine produce byte-identical results to
// two sequential single-kernel runs with the same seeds. This is the
// cluster layer's determinism foundation (and pins the PR 1
// threadOfProc fix at the NewOnEngine abstraction level).
func TestSharedEngineMatchesSequentialRuns(t *testing.T) {
	const seedA, seedB = 7, 42
	solo := func(seed uint64, mode Mode) contendResult {
		sys := New(hw.SmallNode(), seed)
		snap := runContend(t, sys, mode)
		if _, err := sys.Run(0); err != nil {
			t.Fatal(err)
		}
		return snap()
	}
	wantA := solo(seedA, ModeBaseline)
	wantB := solo(seedB, ModeCoop)

	eng := sim.NewEngine(1) // engine seed deliberately differs from both
	params := kernel.DefaultSchedParams()
	a := NewOnEngine(eng, hw.SmallNode(), seedA, params)
	b := NewOnEngine(eng, hw.SmallNode(), seedB, params)
	snapA := runContend(t, a, ModeBaseline)
	snapB := runContend(t, b, ModeCoop)
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	gotA, gotB := snapA(), snapB()

	check := func(name string, got, want contendResult) {
		t.Helper()
		if !reflect.DeepEqual(got.works, want.works) {
			t.Fatalf("%s: RNG namespace diverged:\n got %v\nwant %v", name, got.works, want.works)
		}
		if !reflect.DeepEqual(got.doneAt, want.doneAt) {
			t.Fatalf("%s: completion times diverged:\n got %v\nwant %v", name, got.doneAt, want.doneAt)
		}
		if got.stats != want.stats {
			t.Fatalf("%s: kernel counters diverged:\n got %+v\nwant %+v", name, got.stats, want.stats)
		}
	}
	check("node A", gotA, wantA)
	check("node B", gotB, wantB)
}

func TestNewWithClassSetsDefaultClass(t *testing.T) {
	sys := NewWithClass(hw.SmallNode(), 1, "fifo")
	if got := sys.K.DefaultClass().Name(); got != "fifo" {
		t.Fatalf("default class = %s, want fifo", got)
	}
	// Empty name keeps the fair default.
	sys = NewWithClass(hw.SmallNode(), 1, "")
	if got := sys.K.DefaultClass().Name(); got != "fair" {
		t.Fatalf("default class = %s, want fair", got)
	}
}
