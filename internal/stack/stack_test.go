package stack

import (
	"testing"

	"repro/internal/glibc"
	"repro/internal/hw"
	"repro/internal/sim"
)

func TestModeProperties(t *testing.T) {
	cases := []struct {
		mode     Mode
		usf      bool
		yield    bool
		blocking bool
		name     string
	}{
		{ModeOriginal, false, false, false, "original"},
		{ModeBaseline, false, true, false, "baseline"},
		{ModeManual, true, true, true, "manual"},
		{ModeCoop, true, true, false, "sched_coop"},
	}
	for _, c := range cases {
		if c.mode.UsesUSF() != c.usf || c.mode.YieldInBarrier() != c.yield ||
			c.mode.BlockingBarrier() != c.blocking || c.mode.String() != c.name {
			t.Fatalf("mode %v properties wrong", c.mode)
		}
	}
}

func TestStartWiresCoopPolicy(t *testing.T) {
	sys := New(hw.SmallNode(), 1)
	_, err := sys.Start("app", ModeCoop, glibc.Options{}, func(l *glibc.Lib) {
		l.Compute(1 * sim.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Coop == nil {
		t.Fatal("SCHED_COOP policy not created for USF process")
	}
	if _, err := sys.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestRunHorizonTimesOutAndTearsDown(t *testing.T) {
	sys := New(hw.SmallNode(), 1)
	_, err := sys.Start("app", ModeBaseline, glibc.Options{}, func(l *glibc.Lib) {
		for {
			l.Compute(10 * sim.Millisecond) // never finishes
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	timedOut, err := sys.Run(50 * sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Fatal("horizon not reported")
	}
	if sys.Eng.Live() != 0 {
		t.Fatalf("live procs after teardown: %d", sys.Eng.Live())
	}
}

func TestRunCompletesBeforeHorizon(t *testing.T) {
	sys := New(hw.SmallNode(), 1)
	_, err := sys.Start("app", ModeBaseline, glibc.Options{}, func(l *glibc.Lib) {
		l.Compute(5 * sim.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	timedOut, err := sys.Run(10 * sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if timedOut {
		t.Fatal("spurious timeout")
	}
}

func TestNewWithClassSetsDefaultClass(t *testing.T) {
	sys := NewWithClass(hw.SmallNode(), 1, "fifo")
	if got := sys.K.DefaultClass().Name(); got != "fifo" {
		t.Fatalf("default class = %s, want fifo", got)
	}
	// Empty name keeps the fair default.
	sys = NewWithClass(hw.SmallNode(), 1, "")
	if got := sys.K.DefaultClass().Name(); got != "fair" {
		t.Fatalf("default class = %s, want fair", got)
	}
}
