// Package stack wires complete simulated systems for the paper's four
// software stacks (Fig. 2): Original, Baseline, Manual, and SCHED_COOP.
// Experiment drivers build a System, start processes in a chosen mode, and
// run the engine.
package stack

import (
	"fmt"

	"repro/internal/glibc"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/nosv"
	"repro/internal/sim"
	"repro/internal/usf"
)

// Mode selects one of the paper's evaluated stacks (Fig. 2).
type Mode int

// Stack modes.
const (
	// ModeOriginal: stock glibc, unpatched busy-wait barriers.
	ModeOriginal Mode = iota
	// ModeBaseline: stock glibc, sched_yield patch in busy-wait
	// barriers (the paper's reference point).
	ModeBaseline
	// ModeManual: glibcv/nOS-V with hand-tuned integration (blocking
	// primitives replace busy-wait inside the libraries).
	ModeManual
	// ModeCoop: glibcv with SCHED_COOP, fully transparent.
	ModeCoop
)

func (m Mode) String() string {
	switch m {
	case ModeOriginal:
		return "original"
	case ModeBaseline:
		return "baseline"
	case ModeManual:
		return "manual"
	}
	return "sched_coop"
}

// UsesUSF reports whether the mode runs processes under glibcv.
func (m Mode) UsesUSF() bool { return m == ModeManual || m == ModeCoop }

// YieldInBarrier reports whether busy-wait barriers carry the sched_yield
// patch in this mode (everything except Original).
func (m Mode) YieldInBarrier() bool { return m != ModeOriginal }

// BlockingBarrier reports whether libraries use blocking primitives
// instead of busy-wait (the Manual integration).
func (m Mode) BlockingBarrier() bool { return m == ModeManual }

// System is a fully wired simulated machine.
type System struct {
	Eng *sim.Engine
	K   *kernel.Kernel
	// Coop is the SCHED_COOP policy instance (nil until the first USF
	// process starts).
	Coop *usf.SchedCoop
	// CoopConfig configures the policy created for USF processes.
	CoopConfig usf.CoopConfig

	// rng is the machine's own RNG-stream root, seeded independently of
	// the engine so several systems can share one engine while each keeps
	// the exact stream namespace it would have had on a private engine.
	rng *sim.Rand
}

// New builds a system on the given machine.
func New(machine hw.Config, seed uint64) *System {
	return NewWithParams(machine, seed, kernel.DefaultSchedParams())
}

// NewWithParams builds a system on a private engine with explicit kernel
// scheduler parameters.
func NewWithParams(machine hw.Config, seed uint64, params kernel.SchedParams) *System {
	return NewOnEngine(sim.NewEngine(seed), machine, seed, params)
}

// NewOnEngine builds a system over an existing engine, so N fully
// independent simulated machines can share one deterministic event loop
// (the multi-node cluster layer). All kernel, glibc, nOS-V, and USF
// state is per-system — the kernel owns its cores, stats, tracer, and
// the nOS-V segment registry (kernel.Local) — so systems on one engine
// never observe each other except through virtual time.
//
// seed roots the system's private RNG-stream namespace (see Rand): a
// system built on a shared engine draws exactly the streams it would
// have drawn on a private engine seeded the same way. A system that
// shares its engine must not use System.Run — the horizon and teardown
// there apply to the whole engine; the owner of the engine (e.g.
// cluster.Cluster) drives the run instead.
func NewOnEngine(eng *sim.Engine, machine hw.Config, seed uint64, params kernel.SchedParams) *System {
	if err := machine.Validate(); err != nil {
		panic(fmt.Errorf("stack: invalid machine %q: %w", machine.Name, err))
	}
	k := kernel.New(eng, machine, params)
	return &System{Eng: eng, K: k, CoopConfig: usf.DefaultCoopConfig(), rng: sim.NewRand(seed)}
}

// Rand returns an independent RNG stream for the given label, rooted at
// the system's own seed. On a private engine (New/NewWithParams) it is
// identical to Eng.Rand; on a shared engine it keeps each system's
// streams independent of its neighbours'.
func (s *System) Rand(label string) *sim.Rand { return s.rng.Stream(label) }

// NewWithClass builds a system whose kernel runs every thread under the
// named scheduling class ("fair", "rr", "fifo", "batch") — the knob the
// kernel-scheduler ablation sweeps. An empty name keeps the default fair
// class.
func NewWithClass(machine hw.Config, seed uint64, class string) *System {
	params := kernel.DefaultSchedParams()
	if class != "" {
		params.DefaultClass = class
	}
	return NewWithParams(machine, seed, params)
}

// Start launches a process under the given mode. Affinity/nice and other
// per-process options come via opts (USF/Policy fields are overridden by
// the mode).
func (s *System) Start(name string, mode Mode, opts glibc.Options, main func(l *glibc.Lib)) (*glibc.Lib, error) {
	opts.USF = mode.UsesUSF()
	if opts.USF {
		opts.Policy = func() nosv.Policy {
			s.Coop = usf.NewSchedCoop(s.CoopConfig)
			return s.Coop
		}
	}
	return glibc.StartProcess(s.K, name, opts, main)
}

// Run drives the simulation to completion with a horizon; it reports
// whether the horizon was hit (the paper's timed-out white squares) and
// tears the system down in that case.
func (s *System) Run(horizon sim.Duration) (timedOut bool, err error) {
	_, hit, err := s.Eng.RunHorizon(horizon)
	if err != nil {
		return false, err
	}
	if hit && s.Eng.Live() > 0 {
		s.Eng.KillAll()
		return true, nil
	}
	return false, nil
}
