package kernel

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

// testKernel builds a kernel on a small machine with zeroed scheduling
// costs so timing assertions are exact unless a test opts in to costs.
func testKernel(t *testing.T, cfg hw.Config, withCosts bool) (*sim.Engine, *Kernel) {
	t.Helper()
	if !withCosts {
		cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
	}
	eng := sim.NewEngine(1)
	k := New(eng, cfg, DefaultSchedParams())
	return eng, k
}

func run(t *testing.T, eng *sim.Engine) sim.Time {
	t.Helper()
	end, err := eng.RunAll()
	if err != nil {
		t.Fatalf("simulation error: %v", err)
	}
	return end
}

func TestSingleThreadCompute(t *testing.T) {
	eng, k := testKernel(t, hw.SmallNode(), false)
	p := k.NewProcess("app")
	var done sim.Time
	k.SpawnThread(p, "worker", func(th *Thread) {
		th.Compute(5 * sim.Millisecond)
		done = eng.Now()
	})
	run(t, eng)
	if done != sim.Time(5*sim.Millisecond) {
		t.Fatalf("compute finished at %v, want 5ms", done)
	}
}

func TestSequentialComputesAccumulate(t *testing.T) {
	eng, k := testKernel(t, hw.SmallNode(), false)
	p := k.NewProcess("app")
	var done sim.Time
	k.SpawnThread(p, "worker", func(th *Thread) {
		for i := 0; i < 10; i++ {
			th.Compute(1 * sim.Millisecond)
		}
		done = eng.Now()
	})
	run(t, eng)
	if done != sim.Time(10*sim.Millisecond) {
		t.Fatalf("done at %v, want 10ms", done)
	}
}

func TestParallelThreadsUseAllCores(t *testing.T) {
	eng, k := testKernel(t, hw.SmallNode(), false) // 8 cores
	p := k.NewProcess("app")
	var last sim.Time
	for i := 0; i < 8; i++ {
		k.SpawnThread(p, "w", func(th *Thread) {
			th.Compute(10 * sim.Millisecond)
			if eng.Now() > last {
				last = eng.Now()
			}
		})
	}
	run(t, eng)
	if last != sim.Time(10*sim.Millisecond) {
		t.Fatalf("8 threads on 8 cores finished at %v, want 10ms (perfect parallelism)", last)
	}
}

func TestOversubscriptionFairSharing(t *testing.T) {
	// 2 threads on a 1-core machine; each needs 100ms of work (several
	// slices), so both make interleaved progress and finish around
	// 200ms, with slice-expiry preemptions observed.
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = 1
	eng, k := testKernel(t, cfg, false)
	p := k.NewProcess("app")
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		k.SpawnThread(p, "w", func(th *Thread) {
			th.Compute(100 * sim.Millisecond)
			ends = append(ends, eng.Now())
		})
	}
	run(t, eng)
	if len(ends) != 2 {
		t.Fatalf("got %d completions", len(ends))
	}
	if ends[1] != sim.Time(200*sim.Millisecond) {
		t.Fatalf("second finisher at %v, want 200ms", ends[1])
	}
	if ends[0] <= sim.Time(100*sim.Millisecond) || ends[0] >= sim.Time(200*sim.Millisecond) {
		t.Fatalf("first finisher at %v: threads did not time-share", ends[0])
	}
	if k.Stats.Preemptions == 0 {
		t.Fatal("expected slice-expiry preemptions under oversubscription")
	}
}

func TestNiceWeightsBiasCPUShare(t *testing.T) {
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = 1
	eng, k := testKernel(t, cfg, false)
	p := k.NewProcess("app")
	var hi, lo *Thread
	hi = k.SpawnThread(p, "hi", func(th *Thread) {
		th.SetNice(0)
		th.Compute(400 * sim.Millisecond)
	})
	lo = k.SpawnThread(p, "lo", func(th *Thread) {
		th.SetNice(10)
		th.Compute(400 * sim.Millisecond)
	})
	eng.Run(sim.Time(300 * sim.Millisecond))
	// nice 0 vs nice 10 is a ~10:1 weight ratio.
	ratio := float64(hi.CPUTime) / float64(lo.CPUTime+1)
	if ratio < 5 {
		t.Fatalf("CPU ratio hi/lo = %.2f, want >5 (weight ratio ~10)", ratio)
	}
	_ = eng
}

func TestFutexWaitWake(t *testing.T) {
	eng, k := testKernel(t, hw.SmallNode(), false)
	p := k.NewProcess("app")
	f := k.NewFutex()
	var wokenAt sim.Time
	k.SpawnThread(p, "waiter", func(th *Thread) {
		f.Word = 1
		res := f.Wait(th, 1, -1)
		if res != WaitWoken {
			t.Errorf("Wait = %v, want WaitWoken", res)
		}
		wokenAt = eng.Now()
	})
	k.SpawnThread(p, "waker", func(th *Thread) {
		th.Compute(3 * sim.Millisecond)
		f.Word = 0
		f.Wake(1)
	})
	run(t, eng)
	if wokenAt != sim.Time(3*sim.Millisecond) {
		t.Fatalf("woken at %v, want 3ms", wokenAt)
	}
}

func TestFutexEAGAIN(t *testing.T) {
	eng, k := testKernel(t, hw.SmallNode(), false)
	p := k.NewProcess("app")
	f := k.NewFutex()
	k.SpawnThread(p, "w", func(th *Thread) {
		f.Word = 5
		if res := f.Wait(th, 4, -1); res != WaitEAGAIN {
			t.Errorf("Wait with stale expect = %v, want EAGAIN", res)
		}
	})
	run(t, eng)
}

func TestFutexTimeout(t *testing.T) {
	eng, k := testKernel(t, hw.SmallNode(), false)
	p := k.NewProcess("app")
	f := k.NewFutex()
	var res WaitResult
	var at sim.Time
	k.SpawnThread(p, "w", func(th *Thread) {
		f.Word = 1
		res = f.Wait(th, 1, 7*sim.Millisecond)
		at = eng.Now()
	})
	run(t, eng)
	if res != WaitTimedOut {
		t.Fatalf("res = %v, want timeout", res)
	}
	if at != sim.Time(7*sim.Millisecond) {
		t.Fatalf("timed out at %v, want 7ms", at)
	}
	if f.Waiters() != 0 {
		t.Fatal("timed-out waiter still queued")
	}
}

func TestFutexWakeFIFO(t *testing.T) {
	eng, k := testKernel(t, hw.SmallNode(), false)
	p := k.NewProcess("app")
	f := k.NewFutex()
	f.Word = 1
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		k.SpawnThread(p, "w", func(th *Thread) {
			th.Compute(sim.Duration(i+1) * sim.Microsecond) // stagger arrival
			f.Wait(th, 1, -1)
			order = append(order, i)
		})
	}
	k.SpawnThread(p, "waker", func(th *Thread) {
		th.Compute(1 * sim.Millisecond)
		f.Wake(3)
	})
	run(t, eng)
	for i := range order {
		if order[i] != i {
			t.Fatalf("wake order = %v, want FIFO", order)
		}
	}
}

func TestNanosleep(t *testing.T) {
	eng, k := testKernel(t, hw.SmallNode(), false)
	p := k.NewProcess("app")
	var at sim.Time
	k.SpawnThread(p, "s", func(th *Thread) {
		th.Nanosleep(42 * sim.Millisecond)
		at = eng.Now()
	})
	run(t, eng)
	if at != sim.Time(42*sim.Millisecond) {
		t.Fatalf("woke at %v, want 42ms", at)
	}
	if k.Stats.Sleeps != 1 {
		t.Fatalf("Sleeps = %d", k.Stats.Sleeps)
	}
}

func TestAffinityPinsThread(t *testing.T) {
	eng, k := testKernel(t, hw.SmallNode(), false)
	p := k.NewProcess("app")
	k.SpawnThread(p, "pinned", func(th *Thread) {
		th.SetAffinity(NewMask(3))
		for i := 0; i < 5; i++ {
			th.Compute(1 * sim.Millisecond)
			if th.CurrentCore() != 3 {
				t.Errorf("running on core %d, want 3", th.CurrentCore())
			}
		}
	})
	run(t, eng)
}

func TestAffinityMigratesRunningThread(t *testing.T) {
	eng, k := testKernel(t, hw.SmallNode(), false)
	p := k.NewProcess("app")
	k.SpawnThread(p, "m", func(th *Thread) {
		th.Compute(1 * sim.Millisecond)
		was := th.CurrentCore()
		th.SetAffinity(NewMask((was + 1) % 8))
		th.Compute(1 * sim.Millisecond)
		if th.CurrentCore() == was {
			t.Errorf("thread did not migrate off core %d", was)
		}
	})
	run(t, eng)
	if k.Stats.Migrations == 0 {
		t.Fatal("expected a migration")
	}
}

func TestYieldLazyMode(t *testing.T) {
	// The default (paper's Linux 5.14) yield does not switch
	// immediately: a thread yielding between short computes keeps its
	// core until the next scheduler tick.
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = 1
	eng, k := testKernel(t, cfg, false)
	p := k.NewProcess("app")
	var order []string
	mk := func(name string) {
		k.SpawnThread(p, name, func(th *Thread) {
			for i := 0; i < 3; i++ {
				th.Compute(10 * sim.Microsecond)
				order = append(order, name)
				th.Yield()
			}
		})
	}
	mk("a")
	mk("b")
	run(t, eng)
	want := []string{"a", "a", "a", "b", "b", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (lazy yield)", order, want)
		}
	}
}

func TestYieldRotatesThreads(t *testing.T) {
	// With the YieldImmediate ablation, yields switch right away.
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = 1
	cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
	eng := sim.NewEngine(1)
	params := DefaultSchedParams()
	params.YieldImmediate = true
	k := New(eng, cfg, params)
	p := k.NewProcess("app")
	var order []string
	mk := func(name string) {
		k.SpawnThread(p, name, func(th *Thread) {
			for i := 0; i < 3; i++ {
				th.Compute(10 * sim.Microsecond)
				order = append(order, name)
				th.Yield()
			}
		})
	}
	mk("a")
	mk("b")
	run(t, eng)
	// With immediate yield both threads must alternate rather than one
	// finishing all three rounds first.
	if order[0] == order[1] && order[1] == order[2] {
		t.Fatalf("yield did not rotate: %v", order)
	}
	if k.Stats.Yields == 0 {
		t.Fatal("yields not counted")
	}
}

func TestRRPreemptsFair(t *testing.T) {
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = 1
	eng, k := testKernel(t, cfg, false)
	p := k.NewProcess("app")
	var rtDone, fairDone sim.Time
	k.SpawnThread(p, "rt", func(th *Thread) {
		th.SetRR(10)
		th.Nanosleep(10 * sim.Millisecond) // wake mid-fair-compute
		th.Compute(5 * sim.Millisecond)
		rtDone = eng.Now()
	})
	k.SpawnThread(p, "fair", func(th *Thread) {
		th.Compute(50 * sim.Millisecond)
		fairDone = eng.Now()
	})
	run(t, eng)
	if rtDone != sim.Time(15*sim.Millisecond) {
		t.Fatalf("RT finished at %v, want 15ms (immediate preemption)", rtDone)
	}
	if fairDone != sim.Time(55*sim.Millisecond) {
		t.Fatalf("fair finished at %v, want 55ms", fairDone)
	}
}

func TestIdleStealBalancesLoad(t *testing.T) {
	// 4 threads spawned while only core selection at t=0; all land
	// spread across the 8-core box by placement or stealing, so total
	// runtime equals single-thread runtime.
	eng, k := testKernel(t, hw.SmallNode(), false)
	p := k.NewProcess("app")
	var latest sim.Time
	for i := 0; i < 8; i++ {
		k.SpawnThread(p, "w", func(th *Thread) {
			th.Compute(20 * sim.Millisecond)
			if eng.Now() > latest {
				latest = eng.Now()
			}
		})
	}
	run(t, eng)
	if latest != sim.Time(20*sim.Millisecond) {
		t.Fatalf("makespan %v, want 20ms", latest)
	}
}

func TestPeriodicBalanceSpreadsLateLoad(t *testing.T) {
	// Pin 4 threads to core 0 initially, then release affinity: the
	// balancer should spread them out so they finish well before the
	// fully-serialised bound.
	eng, k := testKernel(t, hw.SmallNode(), false)
	p := k.NewProcess("app")
	var latest sim.Time
	for i := 0; i < 4; i++ {
		k.SpawnThread(p, "w", func(th *Thread) {
			th.SetAffinity(NewMask(0))
			th.Compute(1 * sim.Millisecond)
			th.SetAffinity(Mask{}) // unrestricted
			th.Compute(40 * sim.Millisecond)
			if eng.Now() > latest {
				latest = eng.Now()
			}
		})
	}
	run(t, eng)
	serialised := sim.Time(4 * (41 * sim.Millisecond))
	if latest >= serialised/2 {
		t.Fatalf("makespan %v suggests no load balancing (serial bound %v)", latest, serialised)
	}
}

func TestBandwidthSaturationSlowsSegments(t *testing.T) {
	cfg := hw.SmallNode() // 64 GB/s socket
	eng, k := testKernel(t, cfg, false)
	p := k.NewProcess("app")
	var ends []sim.Time
	// Two segments each demanding 48 GB/s on a 64 GB/s socket:
	// demand 96 > cap 64, so both run at 2/3 speed: 10ms -> 15ms.
	for i := 0; i < 2; i++ {
		k.SpawnThread(p, "bw", func(th *Thread) {
			th.ComputeOpts(10*sim.Millisecond, ComputeOpts{BW: 48})
			ends = append(ends, eng.Now())
		})
	}
	run(t, eng)
	want := sim.Time(15 * sim.Millisecond)
	for _, e := range ends {
		if e != want {
			t.Fatalf("bandwidth-bound segment finished at %v, want %v", e, want)
		}
	}
}

func TestBandwidthBelowCapRunsFullSpeed(t *testing.T) {
	eng, k := testKernel(t, hw.SmallNode(), false)
	p := k.NewProcess("app")
	var end sim.Time
	k.SpawnThread(p, "bw", func(th *Thread) {
		th.ComputeOpts(10*sim.Millisecond, ComputeOpts{BW: 20})
		end = eng.Now()
	})
	run(t, eng)
	if end != sim.Time(10*sim.Millisecond) {
		t.Fatalf("finished at %v, want 10ms", end)
	}
}

func TestBWSampleCallback(t *testing.T) {
	eng, k := testKernel(t, hw.SmallNode(), false)
	var samples []float64
	k.BWSample = func(at sim.Time, socket int, used float64) {
		samples = append(samples, used)
	}
	p := k.NewProcess("app")
	k.SpawnThread(p, "bw", func(th *Thread) {
		th.ComputeOpts(1*sim.Millisecond, ComputeOpts{BW: 30})
	})
	run(t, eng)
	if len(samples) < 2 {
		t.Fatalf("expected at least start+end samples, got %v", samples)
	}
	if samples[0] != 30 || samples[len(samples)-1] != 0 {
		t.Fatalf("samples = %v, want rise to 30 and fall to 0", samples)
	}
}

func TestContextSwitchCostsCharged(t *testing.T) {
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = 1
	eng, k := testKernel(t, cfg, true) // real costs
	p := k.NewProcess("app")
	var end sim.Time
	for i := 0; i < 2; i++ {
		k.SpawnThread(p, "w", func(th *Thread) {
			th.Compute(30 * sim.Millisecond)
			if eng.Now() > end {
				end = eng.Now()
			}
		})
	}
	run(t, eng)
	if end <= sim.Time(60*sim.Millisecond) {
		t.Fatalf("makespan %v should exceed 60ms due to switch costs", end)
	}
	if end > sim.Time(62*sim.Millisecond) {
		t.Fatalf("makespan %v: overhead looks implausibly large", end)
	}
}

func TestThreadExitFreesCore(t *testing.T) {
	eng, k := testKernel(t, hw.SmallNode(), false)
	p := k.NewProcess("app")
	var secondDone sim.Time
	cfg1 := NewMask(0)
	k.SpawnThread(p, "first", func(th *Thread) {
		th.SetAffinity(cfg1)
		th.Compute(5 * sim.Millisecond)
	})
	k.SpawnThread(p, "second", func(th *Thread) {
		th.SetAffinity(cfg1)
		th.Compute(5 * sim.Millisecond)
		secondDone = eng.Now()
	})
	run(t, eng)
	if k.Stats.ThreadsExited != 2 {
		t.Fatalf("ThreadsExited = %d", k.Stats.ThreadsExited)
	}
	if secondDone > sim.Time(11*sim.Millisecond) {
		t.Fatalf("second thread done at %v; core not freed promptly?", secondDone)
	}
}

func TestDeterministicReplay(t *testing.T) {
	runOnce := func() (sim.Time, Counters) {
		eng := sim.NewEngine(7)
		cfg := hw.SmallNode()
		k := New(eng, cfg, DefaultSchedParams())
		p := k.NewProcess("app")
		f := k.NewFutex()
		f.Word = 1
		for i := 0; i < 20; i++ {
			i := i
			k.SpawnThread(p, "w", func(th *Thread) {
				r := eng.Rand("w").Stream(string(rune('a' + i)))
				for j := 0; j < 10; j++ {
					th.Compute(sim.Duration(r.Intn(2_000_000) + 1000))
					if r.Intn(3) == 0 {
						th.Yield()
					}
				}
			})
		}
		end, err := eng.RunAll()
		if err != nil {
			t.Fatal(err)
		}
		return end, k.Stats
	}
	e1, s1 := runOnce()
	e2, s2 := runOnce()
	if e1 != e2 || s1 != s2 {
		t.Fatalf("non-deterministic: %v/%v vs %v/%v", e1, s1, e2, s2)
	}
}

func TestMaskOps(t *testing.T) {
	m := NewMask(0, 1, 2, 3, 8)
	if m.String() != "0-3,8" {
		t.Fatalf("String = %q", m.String())
	}
	if m.Count() != 5 {
		t.Fatalf("Count = %d", m.Count())
	}
	m.Clear(8)
	if m.Has(8) || !m.Has(2) {
		t.Fatal("Clear/Has wrong")
	}
	var empty Mask
	if !empty.Has(77) {
		t.Fatal("empty mask must match all cores")
	}
	if !RangeMask(2, 5).Equal(NewMask(2, 3, 4)) {
		t.Fatal("RangeMask/Equal wrong")
	}
	if FullMask(3).Count() != 3 {
		t.Fatal("FullMask wrong")
	}
}

func TestLHPConvoyUnderPreemption(t *testing.T) {
	// Lock-holder preemption: many threads on one core contend a futex
	// "lock"; when the holder gets preempted, waiters burn time. The
	// test asserts the hold pattern still completes and preemptions
	// occurred while the lock was held — the raw phenomenon that
	// SCHED_COOP later removes.
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = 2
	eng, k := testKernel(t, cfg, false)
	p := k.NewProcess("app")
	lock := k.NewFutex()
	acquired := 0
	release := func() {
		lock.Word = 0
		lock.Wake(1)
	}
	acquire := func(th *Thread) {
		for lock.Word == 1 {
			lock.Wait(th, 1, -1)
		}
		lock.Word = 1
	}
	for i := 0; i < 6; i++ {
		k.SpawnThread(p, "locker", func(th *Thread) {
			for j := 0; j < 5; j++ {
				acquire(th)
				acquired++
				th.Compute(8 * sim.Millisecond) // critical section
				release()
				th.Compute(4 * sim.Millisecond)
			}
		})
	}
	// CPU hogs that steal the core from lock holders mid critical
	// section: the raw ingredient of lock-holder preemption.
	for i := 0; i < 2; i++ {
		k.SpawnThread(p, "hog", func(th *Thread) {
			th.Compute(150 * sim.Millisecond)
		})
	}
	run(t, eng)
	if acquired != 30 {
		t.Fatalf("acquired = %d, want 30", acquired)
	}
	if k.Stats.Preemptions == 0 {
		t.Fatal("expected preemptions (8 threads on 2 cores)")
	}
	if k.Stats.FutexWaits == 0 {
		t.Fatal("expected futex contention")
	}
}
