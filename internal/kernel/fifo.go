package kernel

import "repro/internal/sim"

// fifoClass is SCHED_FIFO: priority-ordered run-to-block scheduling with
// no time slice at all. A FIFO thread keeps its core until it blocks,
// yields, or a higher class wakes — the pathological partner for
// busy-wait synchronisation under oversubscription, which is exactly why
// the schedcmp ablation includes it. Unlike RR, queued FIFO threads may
// be pulled by idle cores (modelling the rt pull balancer), since with no
// slice expiry a mis-placed thread would otherwise wait out an entire
// run-to-block episode.
type fifoClass struct{ ClassBase }

func (f *fifoClass) Name() string       { return "fifo" }
func (f *fifoClass) Rank() int          { return rankFIFO }
func (f *fifoClass) NewQueue() RunQueue { return &rtQueue{} }

// Slice is non-positive: FIFO threads run until they block.
func (f *fifoClass) Slice(c *Core, t *Thread) sim.Duration { return 0 }

func (f *fifoClass) SliceShrinks() bool                           { return false }
func (f *fifoClass) ExpirePreempts(c *Core, t *Thread) bool       { return false }
func (f *fifoClass) WakeupPreempts(c *Core, t, curr *Thread) bool { return false }
func (f *fifoClass) OnWake(c *Core, t *Thread)                    {}
func (f *fifoClass) OnDispatch(c *Core, t *Thread)                {}
func (f *fifoClass) Charge(c *Core, t *Thread, wall sim.Duration) {}
func (f *fifoClass) Stealable() bool                              { return true }
