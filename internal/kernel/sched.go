package kernel

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// fairQueue is a min-heap of fair-class threads ordered by (vruntime,
// rqSeq). Threads track their heap index so arbitrary removal (steals,
// affinity changes, exits) stays O(log n).
type fairQueue struct {
	ts []*Thread
}

func (q *fairQueue) len() int { return len(q.ts) }

func (q *fairQueue) less(i, j int) bool {
	a, b := q.ts[i], q.ts[j]
	if a.vruntime != b.vruntime {
		return a.vruntime < b.vruntime
	}
	return a.rqSeq < b.rqSeq
}

func (q *fairQueue) swap(i, j int) {
	q.ts[i], q.ts[j] = q.ts[j], q.ts[i]
	q.ts[i].rqIdx = i
	q.ts[j].rqIdx = j
}

func (q *fairQueue) push(t *Thread) {
	t.rqIdx = len(q.ts)
	q.ts = append(q.ts, t)
	q.up(t.rqIdx)
}

func (q *fairQueue) peek() *Thread {
	if len(q.ts) == 0 {
		return nil
	}
	return q.ts[0]
}

func (q *fairQueue) pop() *Thread {
	if len(q.ts) == 0 {
		return nil
	}
	t := q.ts[0]
	q.removeAt(0)
	return t
}

func (q *fairQueue) remove(t *Thread) {
	if t.rqIdx >= 0 && t.rqIdx < len(q.ts) && q.ts[t.rqIdx] == t {
		q.removeAt(t.rqIdx)
	}
}

func (q *fairQueue) removeAt(i int) {
	n := len(q.ts) - 1
	q.swap(i, n)
	t := q.ts[n]
	q.ts[n] = nil
	q.ts = q.ts[:n]
	t.rqIdx = -1
	if i < n {
		q.down(i)
		q.up(i)
	}
}

func (q *fairQueue) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q.swap(i, p)
		i = p
	}
}

func (q *fairQueue) down(i int) {
	n := len(q.ts)
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && q.less(l, s) {
			s = l
		}
		if r < n && q.less(r, s) {
			s = r
		}
		if s == i {
			return
		}
		q.swap(i, s)
		i = s
	}
}

// rtQueue holds SCHED_RR threads, highest priority first, FIFO within a
// priority level.
type rtQueue struct {
	ts []*Thread
}

func (q *rtQueue) len() int { return len(q.ts) }

func (q *rtQueue) push(t *Thread) {
	// Insert after the last thread with priority >= t's.
	i := len(q.ts)
	for i > 0 && q.ts[i-1].rtPrio < t.rtPrio {
		i--
	}
	q.ts = append(q.ts, nil)
	copy(q.ts[i+1:], q.ts[i:])
	q.ts[i] = t
}

func (q *rtQueue) pop() *Thread {
	if len(q.ts) == 0 {
		return nil
	}
	t := q.ts[0]
	copy(q.ts, q.ts[1:])
	q.ts = q.ts[:len(q.ts)-1]
	return t
}

func (q *rtQueue) remove(t *Thread) {
	for i, x := range q.ts {
		if x == t {
			copy(q.ts[i:], q.ts[i+1:])
			q.ts = q.ts[:len(q.ts)-1]
			return
		}
	}
}

// core is one simulated CPU.
type core struct {
	k  *Kernel
	id int

	curr *Thread
	rq   fairQueue
	rt   rtQueue

	minVruntime int64
	sliceEnd    sim.Time
	preemptEv   *sim.Event
	pendingIRQ  sim.Duration // timer-tick overhead charged to the next dispatch

	lastTid   Tid
	isIdle    bool
	idleSince sim.Time
	idleAccum sim.Duration
	busyAccum sim.Duration
}

func newCore(k *Kernel, id int) *core {
	return &core{k: k, id: id, isIdle: true}
}

func (c *core) now() sim.Time { return c.k.Eng.Now() }

func (c *core) hasCompetitor(t *Thread) bool {
	return c.rq.len() > 0 || c.rt.len() > 0
}

// slice returns the fair-class time slice for the current load.
func (c *core) slice(t *Thread) sim.Duration {
	if t.class == ClassRR {
		return c.k.Params.RRQuantum
	}
	nr := c.rq.len() + 1
	s := c.k.Params.TargetLatency / sim.Duration(nr)
	if s < c.k.Params.MinGranularity {
		s = c.k.Params.MinGranularity
	}
	return s
}

// enqueue puts a runnable thread on this core's queue and arms preemption
// machinery as needed.
func (c *core) enqueue(t *Thread) {
	t.state = ThreadRunnable
	t.queuedOn = c.id
	c.k.rrSeq++
	t.rqSeq = c.k.rrSeq
	if t.class == ClassRR {
		c.rt.push(t)
	} else {
		c.rq.push(t)
	}
	c.armPreempt()
}

// removeQueued pulls a runnable thread out of its queue (exit, affinity
// change, steal).
func (c *core) removeQueued(t *Thread) {
	if t.class == ClassRR {
		c.rt.remove(t)
	} else {
		c.rq.remove(t)
	}
}

// armPreempt ensures a slice-expiry timer is pending while the current
// thread has competitors. The slice is recomputed from the present queue
// depth, so a thread's slice shrinks as a core gets crowded (as in CFS).
func (c *core) armPreempt() {
	t := c.curr
	if t == nil || !c.hasCompetitor(t) {
		return
	}
	end := t.dispatchedAt + sim.Time(c.slice(t))
	if end < c.now() {
		end = c.now()
	}
	c.sliceEnd = end
	if c.preemptEv != nil {
		if c.preemptEv.When() <= end {
			return // existing timer fires at or before the new end
		}
		c.preemptEv.Cancel()
	}
	c.preemptEv = c.k.Eng.At(end, c.onPreemptTimer)
}

func (c *core) onPreemptTimer() {
	c.preemptEv = nil
	t := c.curr
	if t == nil || !c.hasCompetitor(t) {
		return
	}
	if c.now() < c.sliceEnd {
		c.armPreempt()
		return
	}
	// RT threads only round-robin among equal-or-higher priority.
	if t.class == ClassRR {
		next := c.rt.len() > 0 && c.rt.ts[0].rtPrio >= t.rtPrio
		if !next {
			c.sliceEnd = c.now() + sim.Time(c.k.Params.RRQuantum)
			c.armPreempt()
			return
		}
	}
	if t.seg == nil || !t.seg.running {
		// The thread sits at a zero-time call boundary; make it
		// self-preempt at its next scheduling point.
		t.needResched = true
		return
	}
	c.k.Stats.Preemptions++
	c.pendingIRQ += c.k.HW.Costs.TimerTick
	c.stopCurrent()
	c.enqueue(t)
	c.scheduleNext()
}

// preemptCurrent forcibly removes the current thread (event context) and
// requeues it according to its affinity.
func (c *core) preemptCurrent(reason string) {
	t := c.curr
	if t == nil {
		return
	}
	c.k.Stats.Preemptions++
	c.stopCurrent()
	if t.affinity.Has(c.id) {
		c.enqueue(t)
	} else {
		c.k.wakePlace(t)
	}
	c.scheduleNext()
}

// preemptCurrentVoluntary is the self-initiated variant (yield, expired
// slice honoured at a Compute boundary, affinity move). The caller must
// park the proc afterwards.
func (c *core) preemptCurrentVoluntary(reason string) {
	t := c.curr
	if t == nil {
		return
	}
	c.stopCurrent()
	if t.affinity.Has(c.id) {
		c.enqueue(t)
	} else {
		c.k.wakePlace(t)
	}
	c.scheduleNext()
}

// stopCurrent detaches the current thread, folding segment progress and
// vruntime accounting. The thread is left in Runnable state with no queue.
func (c *core) stopCurrent() {
	t := c.curr
	now := c.now()
	if t.seg != nil && t.seg.running {
		t.seg.advance(now)
		c.k.bw.deregister(c, t)
		if t.seg.endEv != nil {
			t.seg.endEv.Cancel()
			t.seg.endEv = nil
		}
		t.seg.running = false
	}
	c.accountOff(t)
	t.state = ThreadRunnable
	t.curCore = -1
	t.needResched = false
	c.curr = nil
	if c.preemptEv != nil {
		c.preemptEv.Cancel()
		c.preemptEv = nil
	}
}

// undispatch is stopCurrent for threads leaving the runnable set (block,
// exit).
func (c *core) undispatch(t *Thread) {
	c.stopCurrent()
}

// accountOff charges wall time to vruntime and usage counters.
func (c *core) accountOff(t *Thread) {
	now := c.now()
	wall := now.Sub(t.dispatchedAt)
	if wall > 0 {
		t.CPUTime += wall
		c.busyAccum += wall
		if t.class == ClassFair {
			t.vruntime += int64(wall) * 1024 / t.weight
			if t.vruntime > c.minVruntime {
				c.minVruntime = t.vruntime
			}
		}
	}
	t.lastCore = c.id
	c.lastTid = t.TID
	c.k.trace(trace.KindRunEnd, c.id, t)
}

// popNext removes and returns the core's next queued thread (RT first,
// then fair min-vruntime), or nil. Used by the yield path to implement
// skip-buddy picking.
func (c *core) popNext() *Thread {
	if c.rt.len() > 0 {
		return c.rt.pop()
	}
	if c.rq.len() > 0 {
		return c.rq.pop()
	}
	return nil
}

// scheduleNext picks and dispatches the next thread for this core, stealing
// from a loaded peer when the local queues are empty.
func (c *core) scheduleNext() {
	if c.curr != nil {
		return
	}
	var next *Thread
	if c.rt.len() > 0 {
		next = c.rt.pop()
	} else if c.rq.len() > 0 {
		next = c.rq.pop()
	} else {
		next = c.k.stealFor(c)
	}
	if next == nil {
		c.isIdle = true
		c.idleSince = c.now()
		return
	}
	c.dispatch(next)
}

// dispatch makes t current on this core.
func (c *core) dispatch(t *Thread) {
	if c.curr != nil {
		panic(fmt.Sprintf("kernel: dispatch on busy core %d", c.id))
	}
	k := c.k
	now := c.now()
	if c.isIdle {
		c.idleAccum += now.Sub(c.idleSince)
		c.isIdle = false
	}
	k.armBalance()

	var penalty sim.Duration
	if c.lastTid != t.TID {
		penalty += k.HW.Costs.ContextSwitch
		k.Stats.ContextSwitches++
	}
	if t.lastCore >= 0 && t.lastCore != c.id {
		k.Stats.Migrations++
		topo := k.HW.Topo
		switch {
		case !topo.SameSocket(t.lastCore, c.id):
			penalty += k.HW.Costs.MigrationCrossSocket
			k.Stats.CrossSocket++
		case !topo.SameNUMA(t.lastCore, c.id):
			penalty += k.HW.Costs.MigrationCrossNUMA
		default:
			penalty += k.HW.Costs.MigrationSameNUMA
		}
	}
	// Cache re-pollution: our lines were evicted if someone else ran
	// here, or we arrive from elsewhere.
	if t.seg != nil && t.seg.footprint > 0 && (c.lastTid != t.TID || t.lastCore != c.id) {
		fp := t.seg.footprint
		if fp > k.HW.Costs.L2Bytes {
			fp = k.HW.Costs.L2Bytes
		}
		penalty += sim.Duration(float64(fp) / k.HW.Costs.CacheRefillBytesPerNs)
	}
	penalty += c.pendingIRQ
	c.pendingIRQ = 0

	c.curr = t
	t.state = ThreadRunning
	t.curCore = c.id
	t.queuedOn = -1
	t.dispatchedAt = now
	c.sliceEnd = now + sim.Time(c.slice(t))
	if t.class == ClassFair && t.vruntime > c.minVruntime {
		c.minVruntime = t.vruntime
	}
	c.armPreempt()
	k.trace(trace.KindRunStart, c.id, t)

	if t.seg != nil {
		t.seg.penalty += float64(penalty)
		c.startSegment(t)
	} else {
		t.pendingPenalty += penalty
		k.Eng.Ready(t.proc)
	}
}

// startSegment begins (or resumes) the current thread's compute segment.
func (c *core) startSegment(t *Thread) {
	seg := t.seg
	seg.running = true
	seg.lastUpdate = c.now()
	c.k.bw.register(c, t)
}

// onSegmentEnd completes the current compute request and resumes the
// thread's code.
func (c *core) onSegmentEnd(t *Thread) {
	if t.seg == nil || c.curr != t {
		return
	}
	t.seg.advance(c.now())
	c.k.bw.deregister(c, t)
	t.seg.running = false
	t.seg.endEv = nil
	t.seg = nil
	c.k.Eng.Ready(t.proc)
}

// blockCurrent transitions the calling thread to Blocked and frees its
// core. The caller parks the proc afterwards.
func (k *Kernel) blockCurrent(t *Thread) {
	switch t.state {
	case ThreadRunning:
		c := k.cores[t.curCore]
		c.undispatch(t)
		t.state = ThreadBlocked
		c.scheduleNext()
	case ThreadRunnable:
		// Preempted at the call boundary and now blocking.
		k.cores[t.queuedOn].removeQueued(t)
		t.state = ThreadBlocked
	default:
		panic(fmt.Sprintf("kernel: blockCurrent on %v in state %v", t, t.state))
	}
}

// trace records a scheduling event when tracing is enabled.
func (k *Kernel) trace(kind trace.Kind, core int, t *Thread) {
	if k.Tracer == nil {
		return
	}
	k.Tracer.Add(trace.Event{
		At:     k.Eng.Now(),
		Kind:   kind,
		Core:   core,
		Thread: t.Name,
		TID:    int(t.TID),
	})
}

// wake makes a blocked thread runnable, with CFS-style sleeper placement.
func (k *Kernel) wake(t *Thread, sleeper bool) {
	if t.state != ThreadBlocked {
		return
	}
	k.Stats.Wakeups++
	t.sleeperWake = sleeper
	k.trace(trace.KindWake, t.lastCore, t)
	k.wakePlace(t)
}

// wakePlace selects a core for a runnable thread and either dispatches it
// (idle core) or enqueues it (possibly preempting the current thread).
func (k *Kernel) wakePlace(t *Thread) {
	c := k.selectCore(t)
	if t.class == ClassFair {
		base := c.minVruntime
		if t.sleeperWake {
			base -= int64(k.Params.SleeperBonus)
		}
		if t.vruntime < base {
			t.vruntime = base
		}
		t.sleeperWake = false
	}
	if c.curr == nil && c.rt.len() == 0 && c.rq.len() == 0 {
		t.state = ThreadRunnable
		c.dispatch(t)
		return
	}
	c.enqueue(t)
	k.maybeWakeupPreempt(c, t)
}

// maybeWakeupPreempt applies wake-up preemption rules.
func (k *Kernel) maybeWakeupPreempt(c *core, t *Thread) {
	curr := c.curr
	if curr == nil {
		c.scheduleNext()
		return
	}
	now := k.Eng.Now()
	if t.class == ClassRR && curr.class == ClassFair {
		if curr.seg != nil && curr.seg.running {
			c.preemptCurrent("rt-wakeup")
		} else {
			curr.needResched = true
		}
		return
	}
	if t.class != ClassFair || curr.class != ClassFair {
		return
	}
	ran := now.Sub(curr.dispatchedAt)
	if ran < k.Params.MinGranularity {
		return
	}
	currVNow := curr.vruntime + int64(ran)*1024/curr.weight
	if t.vruntime+int64(k.Params.WakeupGranularity) < currVNow {
		if curr.seg != nil && curr.seg.running {
			c.preemptCurrent("wakeup")
		} else {
			curr.needResched = true
		}
	}
}

// selectCore implements wake-up placement: last core if idle, then an idle
// core in the same NUMA node, then any idle core, then the least loaded
// core, always respecting affinity.
func (k *Kernel) selectCore(t *Thread) *core {
	topo := k.HW.Topo
	idle := func(c *core) bool { return c.curr == nil && c.rq.len() == 0 && c.rt.len() == 0 }

	if t.lastCore >= 0 && t.affinity.Has(t.lastCore) && idle(k.cores[t.lastCore]) {
		return k.cores[t.lastCore]
	}
	if t.lastCore >= 0 {
		for _, c := range k.cores {
			if c.id != t.lastCore && topo.SameNUMA(c.id, t.lastCore) && t.affinity.Has(c.id) && idle(c) {
				return c
			}
		}
	}
	var best *core
	bestLoad := 1 << 30
	for _, c := range k.cores {
		if !t.affinity.Has(c.id) {
			continue
		}
		if idle(c) {
			return c
		}
		load := c.rq.len() + c.rt.len()
		if c.curr != nil {
			load++
		}
		if load < bestLoad {
			bestLoad = load
			best = c
		}
	}
	if best == nil {
		panic(fmt.Sprintf("kernel: thread %v has empty effective affinity %v", t, t.affinity))
	}
	return best
}

// stealFor pulls a runnable fair thread from the most loaded core whose
// queued work may run on c (idle balancing).
func (k *Kernel) stealFor(c *core) *Thread {
	var busiest *core
	load := 0 // any queued (non-running) thread is worth pulling
	for _, o := range k.cores {
		if o == c {
			continue
		}
		l := o.rq.len()
		if l > load {
			load = l
			busiest = o
		}
	}
	if busiest == nil {
		return nil
	}
	for _, t := range busiest.rq.ts {
		if t != nil && t.affinity.Has(c.id) {
			busiest.rq.remove(t)
			k.Stats.Steals++
			return t
		}
	}
	return nil
}

// armBalance schedules a periodic balance pass if one is not pending. It is
// invoked from dispatch, so the balancer runs only while the machine has
// work; otherwise the event queue can drain and the simulation terminate.
func (k *Kernel) armBalance() {
	if k.Params.BalanceInterval <= 0 || k.balanceEv != nil {
		return
	}
	k.balanceEv = k.Eng.After(k.Params.BalanceInterval, k.periodicBalance)
}

// periodicBalance is the simplified periodic load balancer: it moves queued
// fair threads from the most to the least loaded cores.
func (k *Kernel) periodicBalance() {
	k.balanceEv = nil
	if k.TotalRunnable() > 0 {
		k.armBalance()
	}
	const maxMoves = 8
	for move := 0; move < maxMoves; move++ {
		var src, dst *core
		srcLoad, dstLoad := -1, 1<<30
		for _, c := range k.cores {
			l := c.rq.len()
			if c.curr != nil {
				l++
			}
			if l > srcLoad {
				srcLoad = l
				src = c
			}
			if l < dstLoad {
				dstLoad = l
				dst = c
			}
		}
		if src == nil || dst == nil || srcLoad-dstLoad <= 1 || src.rq.len() == 0 {
			return
		}
		var victim *Thread
		for _, t := range src.rq.ts {
			if t != nil && t.affinity.Has(dst.id) {
				victim = t
				break
			}
		}
		if victim == nil {
			return
		}
		src.rq.remove(victim)
		k.Stats.BalanceMoves++
		if dst.curr == nil && dst.rq.len() == 0 && dst.rt.len() == 0 {
			dst.dispatch(victim)
		} else {
			dst.enqueue(victim)
		}
	}
}
