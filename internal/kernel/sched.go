package kernel

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Core is one simulated CPU. Dispatch, preemption, stealing, and
// balancing here are scheduling-class-agnostic: every class-specific
// decision is delegated to the Class interface, and each class owns one
// RunQueue per core (qs is indexed by class slot, ascending rank).
type Core struct {
	k  *Kernel
	id int

	curr *Thread
	qs   []RunQueue
	// qlen mirrors qs[i].Len(), and nq/nsteal the total and stealable
	// queued counts, so pick/steal/preempt decisions read counters
	// instead of rescanning every class queue. Every queue mutation goes
	// through noteAdded/noteRemoved.
	qlen   []int
	nq     int
	nsteal int

	minVruntime int64
	sliceEnd    sim.Time
	preemptEv   sim.Event
	pendingIRQ  sim.Duration // timer-tick overhead charged to the next dispatch

	lastTid   Tid
	isIdle    bool
	idleSince sim.Time
	idleAccum sim.Duration
	busyAccum sim.Duration
}

func newCore(k *Kernel, id int) *Core {
	c := &Core{k: k, id: id, isIdle: true}
	c.qs = make([]RunQueue, len(k.classes))
	c.qlen = make([]int, len(k.classes))
	for i, cl := range k.classes {
		c.qs[i] = cl.NewQueue()
	}
	return c
}

// noteAdded records that a thread entered the queue of the given class
// slot.
func (c *Core) noteAdded(slot int) {
	c.qlen[slot]++
	c.nq++
	if c.k.stealableSlot[slot] {
		c.nsteal++
	}
}

// noteRemoved records that a thread left the queue of the given class
// slot.
func (c *Core) noteRemoved(slot int) {
	c.qlen[slot]--
	c.nq--
	if c.k.stealableSlot[slot] {
		c.nsteal--
	}
}

// ID returns the core's index.
func (c *Core) ID() int { return c.id }

// Kernel returns the owning kernel.
func (c *Core) Kernel() *Kernel { return c.k }

// Current returns the thread currently running on the core, or nil.
func (c *Core) Current() *Thread { return c.curr }

// Queue returns the core's runqueue for the given class.
func (c *Core) Queue(cl Class) RunQueue { return c.qs[cl.slot()] }

// MinVruntime returns the core's fair-clock floor (shared by the
// weighted-fair classes).
func (c *Core) MinVruntime() int64 { return c.minVruntime }

func (c *Core) now() sim.Time { return c.k.Eng.Now() }

// queued returns the number of threads waiting across all class queues.
func (c *Core) queued() int { return c.nq }

// stealableQueued returns the number of queued threads that load
// balancing may migrate.
func (c *Core) stealableQueued() int { return c.nsteal }

// hasCompetitor reports whether any queued thread could actually
// displace t at a pick: threads in classes ranked at or above t's
// (cores pick in ascending rank order, so a lower-ranked queue never
// wins while t's class has work). Without the rank filter a fair thread
// with only batch threads queued would self-preempt every slice —
// burning timer IRQs and inflating the preemption counters — only to be
// re-picked immediately.
func (c *Core) hasCompetitor(t *Thread) bool {
	if c.nq == 0 {
		return false
	}
	rank := t.class.Rank()
	for i, n := range c.qlen {
		if n > 0 && c.k.classRank[i] <= rank {
			return true
		}
	}
	return false
}

// enqueue puts a runnable thread on its class's queue on this core and
// arms preemption machinery as needed.
func (c *Core) enqueue(t *Thread) {
	t.state = ThreadRunnable
	t.queuedOn = c.id
	c.k.rrSeq++
	t.rqSeq = c.k.rrSeq
	slot := t.class.slot()
	c.qs[slot].Enqueue(t)
	c.noteAdded(slot)
	c.armPreempt()
}

// removeQueued pulls a runnable thread out of its queue (exit, affinity
// change, steal). The counters track only removals that actually
// happened — Dequeue of an absent thread must not desync them.
func (c *Core) removeQueued(t *Thread) {
	slot := t.class.slot()
	if c.qs[slot].Dequeue(t) {
		c.noteRemoved(slot)
	}
}

// armPreempt ensures a slice-expiry timer is pending while the current
// thread has competitors and its class time-slices at all. Classes whose
// slice shrinks with queue depth (fair) recompute the expiry from the
// present crowd; quantum classes (RR) keep the granted slice end.
func (c *Core) armPreempt() {
	t := c.curr
	if t == nil || !c.hasCompetitor(t) {
		return
	}
	s := t.class.Slice(c, t)
	if s <= 0 {
		return // run-to-block class: no slice preemption
	}
	end := c.sliceEnd
	if t.class.SliceShrinks() || end < t.dispatchedAt {
		end = t.dispatchedAt + sim.Time(s)
	}
	if end < c.now() {
		end = c.now()
	}
	c.sliceEnd = end
	if c.preemptEv.Active() {
		if c.preemptEv.When() <= end {
			return // existing timer fires at or before the new end
		}
		c.preemptEv.Cancel()
	}
	c.preemptEv = c.k.Eng.AtFunc(end, corePreemptTimer, c)
}

// corePreemptTimer is the slice-expiry callback shared by every core, so
// arming a preemption timer allocates nothing.
func corePreemptTimer(arg any) { arg.(*Core).onPreemptTimer() }

func (c *Core) onPreemptTimer() {
	c.preemptEv = sim.Event{}
	t := c.curr
	if t == nil || !c.hasCompetitor(t) {
		return
	}
	if c.now() < c.sliceEnd {
		c.armPreempt()
		return
	}
	if !t.class.ExpirePreempts(c, t) {
		// Renew the slice in place (RR with no equal-or-higher
		// priority waiter).
		c.sliceEnd = c.now() + sim.Time(t.class.Slice(c, t))
		c.armPreempt()
		return
	}
	if t.seg == nil || !t.seg.running {
		// The thread sits at a zero-time call boundary; make it
		// self-preempt at its next scheduling point.
		t.needResched = true
		return
	}
	c.k.Stats.Preemptions++
	c.pendingIRQ += c.k.HW.Costs.TimerTick
	c.stopCurrent()
	c.enqueue(t)
	c.scheduleNext()
}

// preemptCurrent forcibly removes the current thread (event context) and
// requeues it according to its affinity.
func (c *Core) preemptCurrent(reason string) {
	t := c.curr
	if t == nil {
		return
	}
	c.k.Stats.Preemptions++
	c.stopCurrent()
	if t.affinity.Has(c.id) {
		c.enqueue(t)
	} else {
		c.k.wakePlace(t)
	}
	c.scheduleNext()
}

// preemptCurrentVoluntary is the self-initiated variant (yield, expired
// slice honoured at a Compute boundary, affinity move). The caller must
// park the proc afterwards.
func (c *Core) preemptCurrentVoluntary(reason string) {
	t := c.curr
	if t == nil {
		return
	}
	c.stopCurrent()
	if t.affinity.Has(c.id) {
		c.enqueue(t)
	} else {
		c.k.wakePlace(t)
	}
	c.scheduleNext()
}

// kickCurrent preempts the current thread at the next safe point: right
// away when it is inside a compute segment, else at its next scheduling
// point (wake-up preemption).
func (c *Core) kickCurrent(reason string) {
	curr := c.curr
	if curr == nil {
		return
	}
	if curr.seg != nil && curr.seg.running {
		c.preemptCurrent(reason)
	} else {
		curr.needResched = true
	}
}

// stopCurrent detaches the current thread, folding segment progress and
// runtime accounting. The thread is left in Runnable state with no queue.
func (c *Core) stopCurrent() {
	t := c.curr
	now := c.now()
	if t.seg != nil && t.seg.running {
		t.seg.advance(now)
		c.k.bw.deregister(c, t)
		t.seg.endEv.Cancel()
		t.seg.endEv = sim.Event{}
		t.seg.running = false
	}
	c.accountOff(t)
	t.state = ThreadRunnable
	t.curCore = -1
	t.needResched = false
	c.curr = nil
	c.preemptEv.Cancel()
	c.preemptEv = sim.Event{}
}

// undispatch is stopCurrent for threads leaving the runnable set (block,
// exit).
func (c *Core) undispatch(t *Thread) {
	c.stopCurrent()
}

// accountOff charges wall time to the class's runtime accounting and the
// usage counters.
func (c *Core) accountOff(t *Thread) {
	now := c.now()
	wall := now.Sub(t.dispatchedAt)
	if wall > 0 {
		t.CPUTime += wall
		c.busyAccum += wall
		t.class.Charge(c, t, wall)
	}
	t.lastCore = c.id
	c.lastTid = t.TID
	c.k.trace(trace.KindRunEnd, c.id, t)
}

// popNext removes and returns the core's next queued thread, scanning
// class queues in rank order, or nil. Used by the yield path to
// implement skip-buddy picking.
func (c *Core) popNext() *Thread {
	if c.nq == 0 {
		return nil
	}
	for i, q := range c.qs {
		if c.qlen[i] == 0 {
			continue
		}
		if t := q.Pick(); t != nil {
			c.noteRemoved(i)
			return t
		}
	}
	return nil
}

// scheduleNext picks and dispatches the next thread for this core,
// stealing from a loaded peer when the local queues are empty.
func (c *Core) scheduleNext() {
	if c.curr != nil {
		return
	}
	next := c.popNext()
	if next == nil {
		next = c.k.stealFor(c)
	}
	if next == nil {
		c.isIdle = true
		c.idleSince = c.now()
		return
	}
	c.dispatch(next)
}

// dispatch makes t current on this core.
func (c *Core) dispatch(t *Thread) {
	if c.curr != nil {
		panic(fmt.Sprintf("kernel: dispatch on busy core %d", c.id))
	}
	k := c.k
	now := c.now()
	if c.isIdle {
		c.idleAccum += now.Sub(c.idleSince)
		c.isIdle = false
	}
	k.armBalance()

	var penalty sim.Duration
	if c.lastTid != t.TID {
		penalty += k.HW.Costs.ContextSwitch
		k.Stats.ContextSwitches++
	}
	if t.lastCore >= 0 && t.lastCore != c.id {
		k.Stats.Migrations++
		topo := k.HW.Topo
		switch {
		case !topo.SameSocket(t.lastCore, c.id):
			penalty += k.HW.Costs.MigrationCrossSocket
			k.Stats.CrossSocket++
		case !topo.SameNUMA(t.lastCore, c.id):
			penalty += k.HW.Costs.MigrationCrossNUMA
		default:
			penalty += k.HW.Costs.MigrationSameNUMA
		}
	}
	// Cache re-pollution: our lines were evicted if someone else ran
	// here, or we arrive from elsewhere.
	if t.seg != nil && t.seg.footprint > 0 && (c.lastTid != t.TID || t.lastCore != c.id) {
		fp := t.seg.footprint
		if fp > k.HW.Costs.L2Bytes {
			fp = k.HW.Costs.L2Bytes
		}
		penalty += sim.Duration(float64(fp) / k.HW.Costs.CacheRefillBytesPerNs)
	}
	penalty += c.pendingIRQ
	c.pendingIRQ = 0

	c.curr = t
	t.state = ThreadRunning
	t.curCore = c.id
	t.queuedOn = -1
	t.dispatchedAt = now
	if s := t.class.Slice(c, t); s > 0 {
		c.sliceEnd = now + sim.Time(s)
	} else {
		c.sliceEnd = now
	}
	t.class.OnDispatch(c, t)
	c.armPreempt()
	k.trace(trace.KindRunStart, c.id, t)

	if t.seg != nil {
		t.seg.penalty += float64(penalty)
		c.startSegment(t)
	} else {
		t.pendingPenalty += penalty
		k.Eng.Ready(t.proc)
	}
}

// startSegment begins (or resumes) the current thread's compute segment.
func (c *Core) startSegment(t *Thread) {
	seg := t.seg
	seg.running = true
	seg.lastUpdate = c.now()
	c.k.bw.register(c, t)
}

// onSegmentEnd completes the current compute request and resumes the
// thread's code.
func (c *Core) onSegmentEnd(t *Thread) {
	if t.seg == nil || c.curr != t {
		return
	}
	t.seg.advance(c.now())
	c.k.bw.deregister(c, t)
	t.seg.running = false
	t.seg.endEv = sim.Event{}
	t.seg = nil
	c.k.Eng.Ready(t.proc)
}

// blockCurrent transitions the calling thread to Blocked and frees its
// core. The caller parks the proc afterwards.
func (k *Kernel) blockCurrent(t *Thread) {
	switch t.state {
	case ThreadRunning:
		c := k.cores[t.curCore]
		c.undispatch(t)
		t.state = ThreadBlocked
		c.scheduleNext()
	case ThreadRunnable:
		// Preempted at the call boundary and now blocking.
		k.cores[t.queuedOn].removeQueued(t)
		t.state = ThreadBlocked
	default:
		panic(fmt.Sprintf("kernel: blockCurrent on %v in state %v", t, t.state))
	}
}

// trace records a scheduling event when tracing is enabled.
func (k *Kernel) trace(kind trace.Kind, core int, t *Thread) {
	if k.Tracer == nil {
		return
	}
	k.Tracer.Add(trace.Event{
		At:     k.Eng.Now(),
		Kind:   kind,
		Core:   core,
		Thread: t.Name,
		TID:    int(t.TID),
		Class:  t.class.Name(),
	})
}

// wake makes a blocked thread runnable, with class-specific placement.
func (k *Kernel) wake(t *Thread, sleeper bool) {
	if t.state != ThreadBlocked {
		return
	}
	k.Stats.Wakeups++
	t.sleeperWake = sleeper
	k.trace(trace.KindWake, t.lastCore, t)
	k.wakePlace(t)
}

// wakePlace selects a core for a runnable thread and either dispatches it
// (idle core) or enqueues it (possibly preempting the current thread).
func (k *Kernel) wakePlace(t *Thread) {
	c := k.selectCore(t)
	t.class.OnWake(c, t)
	t.sleeperWake = false
	if c.curr == nil && c.queued() == 0 {
		t.state = ThreadRunnable
		c.dispatch(t)
		return
	}
	c.enqueue(t)
	k.maybeWakeupPreempt(c, t)
}

// maybeWakeupPreempt applies wake-up preemption rules: a lower-ranked
// (higher) class always preempts, and within a class the class decides.
func (k *Kernel) maybeWakeupPreempt(c *Core, t *Thread) {
	curr := c.curr
	if curr == nil {
		c.scheduleNext()
		return
	}
	switch {
	case t.class.Rank() < curr.class.Rank():
		c.kickCurrent("class-wakeup")
	case t.class == curr.class && t.class.WakeupPreempts(c, t, curr):
		c.kickCurrent("wakeup")
	}
}

// selectCore implements wake-up placement: last core if idle, then an idle
// core in the same NUMA node, then any idle core, then the least loaded
// core, always respecting affinity.
func (k *Kernel) selectCore(t *Thread) *Core {
	topo := k.HW.Topo
	idle := func(c *Core) bool { return c.curr == nil && c.queued() == 0 }

	if t.lastCore >= 0 && t.affinity.Has(t.lastCore) && idle(k.cores[t.lastCore]) {
		return k.cores[t.lastCore]
	}
	if t.lastCore >= 0 {
		for _, c := range k.cores {
			if c.id != t.lastCore && topo.SameNUMA(c.id, t.lastCore) && t.affinity.Has(c.id) && idle(c) {
				return c
			}
		}
	}
	var best *Core
	bestLoad := 1 << 30
	for _, c := range k.cores {
		if !t.affinity.Has(c.id) {
			continue
		}
		if idle(c) {
			return c
		}
		load := c.queued()
		if c.curr != nil {
			load++
		}
		if load < bestLoad {
			bestLoad = load
			best = c
		}
	}
	if best == nil {
		panic(fmt.Sprintf("kernel: thread %v has empty effective affinity %v", t, t.affinity))
	}
	return best
}

// stealFor pulls a runnable thread of a stealable class from the most
// loaded core whose queued work may run on c (idle balancing).
func (k *Kernel) stealFor(c *Core) *Thread {
	var busiest *Core
	load := 0 // any queued (non-running) stealable thread is worth pulling
	for _, o := range k.cores {
		if o == c {
			continue
		}
		l := o.stealableQueued()
		if l > load {
			load = l
			busiest = o
		}
	}
	if busiest == nil {
		return nil
	}
	for i, q := range busiest.qs {
		if !k.stealableSlot[i] || busiest.qlen[i] == 0 {
			continue
		}
		if t := q.Steal(c.id); t != nil {
			busiest.noteRemoved(i)
			k.Stats.Steals++
			return t
		}
	}
	return nil
}

// armBalance schedules a periodic balance pass if one is not pending. It is
// invoked from dispatch, so the balancer runs only while the machine has
// work; otherwise the event queue can drain and the simulation terminate.
func (k *Kernel) armBalance() {
	if k.Params.BalanceInterval <= 0 || k.balanceEv.Active() {
		return
	}
	k.balanceEv = k.Eng.AfterFunc(k.Params.BalanceInterval, kernelBalance, k)
}

// kernelBalance is the periodic-balance callback shared by every kernel,
// so arming the balancer allocates nothing.
func kernelBalance(arg any) { arg.(*Kernel).periodicBalance() }

// periodicBalance is the simplified periodic load balancer: it moves
// queued threads of stealable classes from the most to the least loaded
// cores.
func (k *Kernel) periodicBalance() {
	k.balanceEv = sim.Event{}
	if k.TotalRunnable() > 0 {
		k.armBalance()
	}
	const maxMoves = 8
	for move := 0; move < maxMoves; move++ {
		var src, dst *Core
		srcLoad, dstLoad := -1, 1<<30
		for _, c := range k.cores {
			l := c.stealableQueued()
			if c.curr != nil {
				l++
			}
			if l > srcLoad {
				srcLoad = l
				src = c
			}
			if l < dstLoad {
				dstLoad = l
				dst = c
			}
		}
		if src == nil || dst == nil || srcLoad-dstLoad <= 1 || src.stealableQueued() == 0 {
			return
		}
		var victim *Thread
		for i, q := range src.qs {
			if !k.stealableSlot[i] || src.qlen[i] == 0 {
				continue
			}
			if t := q.Steal(dst.id); t != nil {
				src.noteRemoved(i)
				victim = t
				break
			}
		}
		if victim == nil {
			return
		}
		k.Stats.BalanceMoves++
		if dst.curr == nil && dst.queued() == 0 {
			dst.dispatch(victim)
		} else {
			dst.enqueue(victim)
		}
	}
}
