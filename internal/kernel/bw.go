package kernel

import "repro/internal/sim"

// bwManager models the shared per-socket memory bandwidth. Running compute
// segments register their demand; when a socket's aggregate demand exceeds
// its sustainable bandwidth, every demanding segment on that socket slows
// down proportionally. This is the first-order effect behind Fig. 5 of the
// paper (co-executed MD ensembles are bandwidth-bound).
type bwManager struct {
	k       *Kernel
	sockets []*socketBW
}

type socketBW struct {
	id     int
	demand float64           // sum of registered demands, bytes/ns
	segs   map[*Thread]*Core // running bandwidth-consuming segments
}

func newBWManager(k *Kernel) *bwManager {
	m := &bwManager{k: k}
	for s := 0; s < k.HW.Topo.Sockets; s++ {
		m.sockets = append(m.sockets, &socketBW{id: s, segs: make(map[*Thread]*Core)})
	}
	return m
}

func (m *bwManager) scale(s *socketBW) float64 {
	cap := m.k.HW.Mem.SocketBandwidth
	if s.demand <= cap || s.demand == 0 {
		return 1
	}
	return cap / s.demand
}

// register starts accounting for t's current segment on c's socket, sets
// the segment speed, and (re)schedules completion events for every segment
// sharing the socket.
func (m *bwManager) register(c *Core, t *Thread) {
	s := m.sockets[m.k.HW.Topo.SocketOf(c.id)]
	if t.seg.bw > 0 {
		s.demand += t.seg.bw
		s.segs[t] = c
		m.retimeSocket(s)
		m.sample(s)
		return
	}
	// CPU-bound segment: unaffected by the socket, time it directly.
	t.seg.speed = 1
	m.retime(c, t)
}

// deregister stops accounting for t's segment.
func (m *bwManager) deregister(c *Core, t *Thread) {
	if t.seg == nil || t.seg.bw <= 0 {
		return
	}
	s := m.sockets[m.k.HW.Topo.SocketOf(c.id)]
	if _, ok := s.segs[t]; !ok {
		return
	}
	delete(s.segs, t)
	s.demand -= t.seg.bw
	if s.demand < 0 {
		s.demand = 0
	}
	m.retimeSocket(s)
	m.sample(s)
}

// retimeSocket folds progress and recomputes speeds and completion events
// for all bandwidth-consuming segments on the socket. Iteration is ordered
// by tid so event scheduling stays deterministic.
func (m *bwManager) retimeSocket(s *socketBW) {
	sc := m.scale(s)
	order := make([]*Thread, 0, len(s.segs))
	for t := range s.segs { //lint:allow maprange(keys are insertion-sorted by TID immediately below)
		order = append(order, t)
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].TID < order[j-1].TID; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, t := range order {
		t.seg.advance(m.k.Eng.Now())
		t.seg.speed = sc
		m.retime(s.segs[t], t)
	}
}

// retime (re)schedules the completion event for t's running segment.
func (m *bwManager) retime(c *Core, t *Thread) {
	seg := t.seg
	seg.endEv.Cancel()
	seg.endEv = sim.Event{}
	if !seg.running {
		return
	}
	d := sim.Duration(seg.total() / seg.speed)
	seg.endEv = m.k.Eng.AfterFunc(d, segmentEnd, t)
}

// segmentEnd is the segment-completion callback shared by every thread.
// The event is cancelled whenever the segment stops running, so when it
// fires the thread is still current on the core that scheduled it.
func segmentEnd(arg any) {
	t := arg.(*Thread)
	if t.curCore < 0 {
		return
	}
	t.kern.cores[t.curCore].onSegmentEnd(t)
}

// sample reports the socket's consumed bandwidth to the metrics hook.
func (m *bwManager) sample(s *socketBW) {
	if m.k.BWSample == nil {
		return
	}
	used := s.demand
	if cap := m.k.HW.Mem.SocketBandwidth; used > cap {
		used = cap
	}
	m.k.BWSample(m.k.Eng.Now(), s.id, used)
}
