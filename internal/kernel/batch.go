package kernel

import "repro/internal/sim"

// batchClass is SCHED_BATCH: weighted-fair scheduling for threads known
// to be CPU hogs. It shares the fair class's vruntime clock and per-core
// min_vruntime (its queue is a separate instance of the same heap), but
// runs below fair, hands out slices BatchSliceMult times longer, never
// preempts on wake-up, and gets no sleeper bonus — fewer, longer quanta
// in exchange for latency.
//
// Simplification vs Linux: real SCHED_BATCH shares the cfs_rq with
// SCHED_OTHER and keeps its weighted share alongside fair threads; here
// batch owns a separate queue ranked below fair, so on a saturated core
// batch threads run only when no fair thread is runnable (closer to
// SCHED_IDLE in mixed fair+batch workloads).
type batchClass struct{ fairClass }

func (b *batchClass) Name() string { return "batch" }
func (b *batchClass) Rank() int    { return rankBatch }

// Slice is the fair slice scaled by BatchSliceMult, computed over the
// batch queue's own depth.
func (b *batchClass) Slice(c *Core, t *Thread) sim.Duration {
	p := b.kern.Params
	mult := sim.Duration(p.BatchSliceMult)
	if mult <= 0 {
		mult = DefaultBatchSliceMult
	}
	nr := c.qs[b.slot()].Len() + 1
	s := mult * p.TargetLatency / sim.Duration(nr)
	if min := mult * p.MinGranularity; s < min {
		s = min
	}
	return s
}

// WakeupPreempts is false: batch threads never disturb the current
// thread on wake-up.
func (b *batchClass) WakeupPreempts(c *Core, t, curr *Thread) bool { return false }

// OnWake places the waking thread at min_vruntime with no sleeper bonus.
func (b *batchClass) OnWake(c *Core, t *Thread) {
	if t.vruntime < c.minVruntime {
		t.vruntime = c.minVruntime
	}
}

// DefaultBatchSliceMult is the slice multiplier used when
// SchedParams.BatchSliceMult is unset.
const DefaultBatchSliceMult = 4
