package kernel

import (
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/sim"
)

func TestMaskRoundTripProperty(t *testing.T) {
	// Property: Set then Cores returns exactly the distinct sorted
	// input cores.
	f := func(raw []uint8) bool {
		var m Mask
		want := map[int]bool{}
		for _, c := range raw {
			m.Set(int(c))
			want[int(c)] = true
		}
		got := m.Cores()
		if len(got) != len(want) {
			return false
		}
		for i, c := range got {
			if !want[c] {
				return false
			}
			if i > 0 && got[i-1] >= c {
				return false // must be sorted strictly
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskClearInverseProperty(t *testing.T) {
	f := func(set, clear []uint8) bool {
		var m Mask
		for _, c := range set {
			m.Set(int(c))
		}
		for _, c := range clear {
			m.Clear(int(c))
		}
		for _, c := range clear {
			inSet := false
			for _, s := range set {
				if s == c {
					inSet = true
				}
			}
			if !m.IsEmpty() && m.Has(int(c)) && inSet {
				// cleared cores must not remain (unless mask became
				// empty, where Has means "all")
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightTableMonotonic(t *testing.T) {
	for n := -19; n <= 19; n++ {
		if weightOf(n) >= weightOf(n-1) {
			t.Fatalf("weight(%d)=%d !< weight(%d)=%d", n, weightOf(n), n-1, weightOf(n-1))
		}
	}
	if weightOf(0) != 1024 {
		t.Fatalf("weight(0) = %d, want 1024", weightOf(0))
	}
	if weightOf(-100) != weightOf(-20) || weightOf(100) != weightOf(19) {
		t.Fatal("clamping broken")
	}
}

// TestWorkConservationProperty: with N independent CPU-bound threads on C
// cores and zero costs, total busy time equals total work and the
// makespan is at most ceil(N/C) times the per-thread work plus slack.
func TestWorkConservationProperty(t *testing.T) {
	f := func(nRaw, cRaw uint8) bool {
		n := int(nRaw%24) + 1
		c := int(cRaw%8) + 1
		cfg := hw.SmallNode()
		cfg.Topo.CoresPerSocket = c
		cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
		eng := sim.NewEngine(uint64(n*31 + c))
		k := New(eng, cfg, DefaultSchedParams())
		p := k.NewProcess("app")
		const work = 10 * sim.Millisecond
		var makespan sim.Time
		for i := 0; i < n; i++ {
			k.SpawnThread(p, "w", func(th *Thread) {
				th.Compute(work)
				if now := eng.Now(); now > makespan {
					makespan = now
				}
			})
		}
		if _, err := eng.RunAll(); err != nil {
			return false
		}
		total := k.TotalBusyTime()
		if total != sim.Duration(n)*work {
			return false
		}
		// Makespan bounds: at least total/c, at most total (fully
		// serialised).
		lower := sim.Time(int64(total) / int64(c))
		return makespan >= lower && makespan <= sim.Time(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFairnessProperty: two equal-weight CPU hogs sharing one core finish
// within one slice of each other regardless of work size.
func TestFairnessProperty(t *testing.T) {
	f := func(workRaw uint16) bool {
		work := sim.Duration(int(workRaw%200)+50) * sim.Millisecond
		cfg := hw.SmallNode()
		cfg.Topo.CoresPerSocket = 1
		cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
		eng := sim.NewEngine(uint64(workRaw))
		k := New(eng, cfg, DefaultSchedParams())
		p := k.NewProcess("app")
		var ends []sim.Time
		for i := 0; i < 2; i++ {
			k.SpawnThread(p, "hog", func(th *Thread) {
				th.Compute(work)
				ends = append(ends, eng.Now())
			})
		}
		if _, err := eng.RunAll(); err != nil {
			return false
		}
		gap := ends[1] - ends[0]
		if gap < 0 {
			gap = -gap
		}
		return sim.Duration(gap) <= k.Params.TargetLatency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestFutexNoLostWakeups: pairs of waiters and wakers always drain.
func TestFutexNoLostWakeups(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%16) + 1
		cfg := hw.SmallNode()
		cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
		eng := sim.NewEngine(uint64(n))
		k := New(eng, cfg, DefaultSchedParams())
		p := k.NewProcess("app")
		fx := k.NewFutex()
		fx.Word = 1
		woken := 0
		for i := 0; i < n; i++ {
			k.SpawnThread(p, "waiter", func(th *Thread) {
				for fx.Word == 1 {
					fx.Wait(th, 1, -1)
				}
				woken++
			})
		}
		eng.After(sim.Duration(n)*sim.Millisecond, func() {
			fx.Word = 0
			fx.Wake(1 << 30)
		})
		if _, err := eng.RunAll(); err != nil {
			return false
		}
		return woken == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
