package kernel

import "repro/internal/sim"

// fairClass is the EEVDF/CFS-style weighted fair scheduling class: a
// min-vruntime heap per core, latency-target slices that shrink as a core
// gets crowded, sleeper-friendly wake-up placement, and vruntime-gated
// wake-up preemption. It is the default class for new threads.
type fairClass struct{ ClassBase }

func (f *fairClass) Name() string       { return "fair" }
func (f *fairClass) Rank() int          { return rankFair }
func (f *fairClass) NewQueue() RunQueue { return &fairQueue{} }

// Slice divides the latency target among the core's runnable fair
// threads, clamped to the minimum granularity (CFS crowding).
func (f *fairClass) Slice(c *Core, t *Thread) sim.Duration {
	p := f.kern.Params
	nr := c.qs[f.slot()].Len() + 1
	s := p.TargetLatency / sim.Duration(nr)
	if s < p.MinGranularity {
		s = p.MinGranularity
	}
	return s
}

func (f *fairClass) SliceShrinks() bool                     { return true }
func (f *fairClass) ExpirePreempts(c *Core, t *Thread) bool { return true }

// WakeupPreempts lets a waking thread with sufficiently lower vruntime
// preempt the current one, gated by the minimum and wake-up
// granularities.
func (f *fairClass) WakeupPreempts(c *Core, t, curr *Thread) bool {
	p := f.kern.Params
	ran := c.now().Sub(curr.dispatchedAt)
	if ran < p.MinGranularity {
		return false
	}
	currVNow := curr.vruntime + int64(ran)*1024/curr.weight
	return t.vruntime+int64(p.WakeupGranularity) < currVNow
}

// OnWake implements CFS-style sleeper placement: a waking thread's
// vruntime is pulled up to the core's min_vruntime, minus a bonus when
// the wake ended a genuine sleep.
func (f *fairClass) OnWake(c *Core, t *Thread) {
	base := c.minVruntime
	if t.sleeperWake {
		base -= int64(f.kern.Params.SleeperBonus)
	}
	if t.vruntime < base {
		t.vruntime = base
	}
}

func (f *fairClass) OnDispatch(c *Core, t *Thread) {
	if t.vruntime > c.minVruntime {
		c.minVruntime = t.vruntime
	}
}

// Charge folds consumed wall time into weighted vruntime.
func (f *fairClass) Charge(c *Core, t *Thread, wall sim.Duration) {
	t.vruntime += int64(wall) * 1024 / t.weight
	if t.vruntime > c.minVruntime {
		c.minVruntime = t.vruntime
	}
}

func (f *fairClass) Stealable() bool { return true }

// fairQueue is a min-heap of fair-class threads ordered by (vruntime,
// rqSeq). Threads track their heap index so arbitrary removal (steals,
// affinity changes, exits) stays O(log n).
type fairQueue struct {
	ts []*Thread
}

func (q *fairQueue) Len() int { return len(q.ts) }

func (q *fairQueue) less(i, j int) bool {
	a, b := q.ts[i], q.ts[j]
	if a.vruntime != b.vruntime {
		return a.vruntime < b.vruntime
	}
	return a.rqSeq < b.rqSeq
}

func (q *fairQueue) swap(i, j int) {
	q.ts[i], q.ts[j] = q.ts[j], q.ts[i]
	q.ts[i].rqIdx = i
	q.ts[j].rqIdx = j
}

func (q *fairQueue) Enqueue(t *Thread) {
	t.rqIdx = len(q.ts)
	q.ts = append(q.ts, t)
	q.up(t.rqIdx)
}

func (q *fairQueue) Peek() *Thread {
	if len(q.ts) == 0 {
		return nil
	}
	return q.ts[0]
}

func (q *fairQueue) Pick() *Thread {
	if len(q.ts) == 0 {
		return nil
	}
	t := q.ts[0]
	q.removeAt(0)
	return t
}

func (q *fairQueue) Dequeue(t *Thread) bool {
	if t.rqIdx >= 0 && t.rqIdx < len(q.ts) && q.ts[t.rqIdx] == t {
		q.removeAt(t.rqIdx)
		return true
	}
	return false
}

// Steal removes and returns the first queued thread (in heap array
// order) whose affinity allows core, or nil.
func (q *fairQueue) Steal(core int) *Thread {
	for _, t := range q.ts {
		if t != nil && t.affinity.Has(core) {
			q.Dequeue(t)
			return t
		}
	}
	return nil
}

func (q *fairQueue) removeAt(i int) {
	n := len(q.ts) - 1
	q.swap(i, n)
	t := q.ts[n]
	q.ts[n] = nil
	q.ts = q.ts[:n]
	t.rqIdx = -1
	if i < n {
		q.down(i)
		q.up(i)
	}
}

func (q *fairQueue) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q.swap(i, p)
		i = p
	}
}

func (q *fairQueue) down(i int) {
	n := len(q.ts)
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && q.less(l, s) {
			s = l
		}
		if r < n && q.less(r, s) {
			s = r
		}
		if s == i {
			return
		}
		q.swap(i, s)
		i = s
	}
}
