package kernel

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

// testKernelClass builds a 1-core zero-cost kernel whose default class is
// the named one.
func testKernelClass(t *testing.T, class string) (*sim.Engine, *Kernel) {
	t.Helper()
	cfg := hw.SmallNode()
	cfg.Topo.CoresPerSocket = 1
	cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
	eng := sim.NewEngine(1)
	params := DefaultSchedParams()
	params.DefaultClass = class
	return eng, New(eng, cfg, params)
}

func TestRegisteredClasses(t *testing.T) {
	eng := sim.NewEngine(1)
	k := New(eng, hw.SmallNode(), DefaultSchedParams())
	want := map[string]bool{"fair": true, "rr": true, "fifo": true, "batch": true}
	for _, cl := range k.Classes() {
		delete(want, cl.Name())
	}
	if len(want) != 0 {
		t.Fatalf("classes missing from kernel: %v (registered %v)", want, ClassNames())
	}
	// Pick order is ascending rank: rt classes before fair before batch.
	cs := k.Classes()
	for i := 1; i < len(cs); i++ {
		if cs[i-1].Rank() >= cs[i].Rank() {
			t.Fatalf("classes not rank-ordered: %s(%d) before %s(%d)",
				cs[i-1].Name(), cs[i-1].Rank(), cs[i].Name(), cs[i].Rank())
		}
	}
	if k.DefaultClass().Name() != "fair" {
		t.Fatalf("default class = %s, want fair", k.DefaultClass().Name())
	}
}

func TestUnknownDefaultClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with unknown DefaultClass did not panic")
		}
	}()
	params := DefaultSchedParams()
	params.DefaultClass = "bogus"
	New(sim.NewEngine(1), hw.SmallNode(), params)
}

func TestFIFORunsToBlock(t *testing.T) {
	// Two CPU hogs under SCHED_FIFO on one core: no slice expiry, so the
	// first to dispatch runs its full compute before the second starts.
	eng, k := testKernelClass(t, "fifo")
	p := k.NewProcess("app")
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		k.SpawnThread(p, "w", func(th *Thread) {
			th.Compute(100 * sim.Millisecond)
			ends = append(ends, eng.Now())
		})
	}
	run(t, eng)
	if len(ends) != 2 {
		t.Fatalf("completions = %d", len(ends))
	}
	if ends[0] != sim.Time(100*sim.Millisecond) || ends[1] != sim.Time(200*sim.Millisecond) {
		t.Fatalf("ends = %v, want strictly serial 100ms/200ms (run-to-block)", ends)
	}
	if k.Stats.Preemptions != 0 {
		t.Fatalf("Preemptions = %d, want 0 under FIFO", k.Stats.Preemptions)
	}
}

func TestFIFOQueuedWorkIsStolen(t *testing.T) {
	// Run-to-block must still be work-conserving across cores: queued
	// FIFO threads are pulled by idle cores (rt pull balancing).
	cfg := hw.SmallNode()
	cfg.Costs = hw.Costs{CacheRefillBytesPerNs: 1, L2Bytes: 1}
	eng := sim.NewEngine(1)
	params := DefaultSchedParams()
	params.DefaultClass = "fifo"
	k := New(eng, cfg, params) // 8 cores
	p := k.NewProcess("app")
	var latest sim.Time
	for i := 0; i < 8; i++ {
		k.SpawnThread(p, "w", func(th *Thread) {
			th.Compute(10 * sim.Millisecond)
			if eng.Now() > latest {
				latest = eng.Now()
			}
		})
	}
	run(t, eng)
	if latest != sim.Time(10*sim.Millisecond) {
		t.Fatalf("makespan %v, want 10ms (FIFO must spread over idle cores)", latest)
	}
}

func TestBatchSharesFairlyWithLongerSlices(t *testing.T) {
	// Two batch hogs on one core still time-share (vruntime fairness)
	// but with far fewer preemptions than the fair class would incur.
	fairRun := func(class string) (int64, []sim.Time) {
		eng, k := testKernelClass(t, class)
		p := k.NewProcess("app")
		var ends []sim.Time
		for i := 0; i < 2; i++ {
			k.SpawnThread(p, "w", func(th *Thread) {
				th.Compute(200 * sim.Millisecond)
				ends = append(ends, eng.Now())
			})
		}
		run(t, eng)
		return k.Stats.Preemptions, ends
	}
	fairPre, fairEnds := fairRun("fair")
	batchPre, batchEnds := fairRun("batch")
	for _, ends := range [][]sim.Time{fairEnds, batchEnds} {
		if len(ends) != 2 || ends[1] != sim.Time(400*sim.Millisecond) {
			t.Fatalf("ends = %v, want second finisher at 400ms", ends)
		}
		if ends[0] >= sim.Time(400*sim.Millisecond) || ends[0] <= sim.Time(200*sim.Millisecond) {
			t.Fatalf("ends = %v: hogs did not time-share", ends)
		}
	}
	if batchPre == 0 {
		t.Fatal("batch hogs never preempted: slices should still expire")
	}
	if batchPre*2 > fairPre {
		t.Fatalf("batch preemptions %d not well below fair %d (longer slices)", batchPre, fairPre)
	}
}

func TestBatchWakeupDoesNotPreempt(t *testing.T) {
	// A waking batch thread never kicks the current batch thread; a
	// waking fair thread with a sleeper-bonus vruntime deficit does. The
	// wake lands 5ms into the hog's slice (inside both classes' slices),
	// so only fair's wake-up preemption lets the waker finish early;
	// under batch it waits out the hog's long slice.
	probe := func(class string) sim.Time {
		eng, k := testKernelClass(t, class)
		p := k.NewProcess("app")
		var wakerDone sim.Time
		k.SpawnThread(p, "sleeper", func(th *Thread) {
			th.Nanosleep(5 * sim.Millisecond)
			th.Compute(1 * sim.Millisecond)
			wakerDone = eng.Now()
		})
		k.SpawnThread(p, "hog", func(th *Thread) {
			th.Compute(300 * sim.Millisecond)
		})
		run(t, eng)
		return wakerDone
	}
	fairDone := probe("fair")
	batchDone := probe("batch")
	if batchDone <= fairDone {
		t.Fatalf("batch waker finished at %v, fair at %v: batch wake-up should not preempt promptly",
			batchDone, fairDone)
	}
}

func TestSetClassRequeuesAndRejectsUnknown(t *testing.T) {
	eng, k := testKernelClass(t, "fair")
	p := k.NewProcess("app")
	k.SpawnThread(p, "w", func(th *Thread) {
		if err := th.SetClass("bogus"); err == nil {
			t.Error("SetClass(bogus) did not error")
		}
		if th.ClassName() != "fair" {
			t.Errorf("class = %s after failed SetClass, want fair", th.ClassName())
		}
		if err := th.SetClass("batch"); err != nil {
			t.Errorf("SetClass(batch): %v", err)
		}
		if th.ClassName() != "batch" {
			t.Errorf("class = %s, want batch", th.ClassName())
		}
		th.Compute(1 * sim.Millisecond)
	})
	run(t, eng)
}

func TestSetClassMovesQueuedThread(t *testing.T) {
	// A runnable (queued) thread changing class must move between the
	// class runqueues, or later dequeue/pick operations corrupt state.
	eng, k := testKernelClass(t, "fair")
	p := k.NewProcess("app")
	var victim *Thread
	victim = k.SpawnThread(p, "victim", func(th *Thread) {
		th.Compute(30 * sim.Millisecond)
	})
	k.SpawnThread(p, "hog", func(th *Thread) {
		th.Compute(30 * sim.Millisecond)
	})
	// While the victim sits queued behind the hog on the single core,
	// flip its class from event context.
	eng.After(1*sim.Millisecond, func() {
		if victim.State() == ThreadRunnable && victim.CurrentCore() < 0 {
			if err := victim.SetClass("fifo"); err != nil {
				t.Error(err)
			}
		}
	})
	run(t, eng)
	if victim.State() != ThreadExited {
		t.Fatalf("victim state = %v, want exited", victim.State())
	}
}

func TestRRQuantumRenewedWithoutEqualPriorityWaiter(t *testing.T) {
	// An RR thread whose only rt competitor has lower priority keeps
	// renewing its quantum at each expiry and runs to completion first.
	// Regression: this path used to re-arm a timer in the past and
	// live-lock the event loop.
	eng, k := testKernelClass(t, "fair")
	p := k.NewProcess("app")
	var loDone, hiDone sim.Time
	k.SpawnThread(p, "rt-lo", func(th *Thread) {
		th.SetRR(1)
		th.Nanosleep(10 * sim.Millisecond) // wake into hi's first quantum
		th.Compute(30 * sim.Millisecond)
		loDone = eng.Now()
	})
	k.SpawnThread(p, "rt-hi", func(th *Thread) {
		th.SetRR(5)
		th.Compute(250 * sim.Millisecond) // several RR quanta (100ms each)
		hiDone = eng.Now()
	})
	run(t, eng)
	if hiDone != sim.Time(250*sim.Millisecond) {
		t.Fatalf("high-prio RR finished at %v, want 250ms (quantum renewals, no round-robin with lower prio)", hiDone)
	}
	if loDone != sim.Time(280*sim.Millisecond) {
		t.Fatalf("low-prio RR finished at %v, want 280ms", loDone)
	}
	if k.Stats.Preemptions != 0 {
		t.Fatalf("Preemptions = %d, want 0 (renewals, not requeues)", k.Stats.Preemptions)
	}
}

func TestFairWithOnlyBatchQueuedDoesNotChurn(t *testing.T) {
	// A fair thread whose only queued competitor is a batch thread must
	// not self-preempt every slice: batch ranks below fair, so the pick
	// would return the same fair thread. Regression: slice timers used
	// to arm against any non-empty queue, inflating Preemptions.
	eng, k := testKernelClass(t, "fair")
	p := k.NewProcess("app")
	var fairDone, batchDone sim.Time
	k.SpawnThread(p, "bg", func(th *Thread) {
		th.SetBatch()
		th.Nanosleep(1 * sim.Millisecond) // requeue as batch behind the hog
		th.Compute(50 * sim.Millisecond)
		batchDone = eng.Now()
	})
	k.SpawnThread(p, "fair-hog", func(th *Thread) {
		th.Compute(200 * sim.Millisecond)
		fairDone = eng.Now()
	})
	run(t, eng)
	if fairDone != sim.Time(200*sim.Millisecond) {
		t.Fatalf("fair hog finished at %v, want 200ms uninterrupted", fairDone)
	}
	if batchDone != sim.Time(250*sim.Millisecond) {
		t.Fatalf("batch finished at %v, want 250ms (after the fair hog)", batchDone)
	}
	if k.Stats.Preemptions != 0 {
		t.Fatalf("Preemptions = %d, want 0 (no fair self-preempt churn)", k.Stats.Preemptions)
	}
}
