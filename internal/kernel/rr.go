package kernel

import "repro/internal/sim"

// Class ranks. Cores pick from queues in ascending rank order, and a
// waking thread of a lower-ranked class preempts a current thread of a
// higher-ranked one (the Linux class hierarchy: rt above fair above
// batch).
//
// Simplification vs Linux: SCHED_RR and SCHED_FIFO really share one
// priority-ordered rt runqueue, so rtPrio orders threads across the two
// policies. Here each class owns its queue and RR ranks above FIFO
// regardless of rtPrio — adequate for the single-policy schedcmp
// ablations, wrong for workloads mixing high-priority FIFO with
// low-priority RR on one core.
const (
	rankRR    = 10
	rankFIFO  = 15
	rankFair  = 20
	rankBatch = 30
)

// rrClass is SCHED_RR: priority-ordered real-time threads that
// round-robin on a fixed quantum within a priority level. It preempts
// every lower class on wake-up and is exempt from load balancing (the
// kernel's CFS balancer never migrates rt threads).
type rrClass struct{ ClassBase }

func (r *rrClass) Name() string       { return "rr" }
func (r *rrClass) Rank() int          { return rankRR }
func (r *rrClass) NewQueue() RunQueue { return &rtQueue{} }

func (r *rrClass) Slice(c *Core, t *Thread) sim.Duration { return r.kern.Params.RRQuantum }

// SliceShrinks is false: an RR thread keeps its granted quantum no
// matter who arrives mid-slice.
func (r *rrClass) SliceShrinks() bool { return false }

// ExpirePreempts round-robins only among equal-or-higher priority
// waiters; otherwise the quantum is renewed in place.
func (r *rrClass) ExpirePreempts(c *Core, t *Thread) bool {
	head := c.qs[r.slot()].Peek()
	return head != nil && head.rtPrio >= t.rtPrio
}

func (r *rrClass) WakeupPreempts(c *Core, t, curr *Thread) bool { return false }
func (r *rrClass) OnWake(c *Core, t *Thread)                    {}
func (r *rrClass) OnDispatch(c *Core, t *Thread)                {}
func (r *rrClass) Charge(c *Core, t *Thread, wall sim.Duration) {}
func (r *rrClass) Stealable() bool                              { return false }

// rtQueue holds real-time threads, highest priority first, FIFO within a
// priority level. Shared by the RR and FIFO classes (each core holds an
// independent instance per class).
type rtQueue struct {
	ts []*Thread
}

func (q *rtQueue) Len() int { return len(q.ts) }

func (q *rtQueue) Enqueue(t *Thread) {
	// Insert after the last thread with priority >= t's.
	i := len(q.ts)
	for i > 0 && q.ts[i-1].rtPrio < t.rtPrio {
		i--
	}
	q.ts = append(q.ts, nil)
	copy(q.ts[i+1:], q.ts[i:])
	q.ts[i] = t
}

func (q *rtQueue) Peek() *Thread {
	if len(q.ts) == 0 {
		return nil
	}
	return q.ts[0]
}

func (q *rtQueue) Pick() *Thread {
	if len(q.ts) == 0 {
		return nil
	}
	t := q.ts[0]
	copy(q.ts, q.ts[1:])
	q.ts = q.ts[:len(q.ts)-1]
	return t
}

func (q *rtQueue) Dequeue(t *Thread) bool {
	for i, x := range q.ts {
		if x == t {
			copy(q.ts[i:], q.ts[i+1:])
			q.ts[len(q.ts)-1] = nil
			q.ts = q.ts[:len(q.ts)-1]
			return true
		}
	}
	return false
}

// Steal removes and returns the highest-priority queued thread whose
// affinity allows core, or nil.
func (q *rtQueue) Steal(core int) *Thread {
	for _, t := range q.ts {
		if t != nil && t.affinity.Has(core) {
			q.Dequeue(t)
			return t
		}
	}
	return nil
}
