package kernel

import (
	"fmt"
	"strings"
)

// Mask is a CPU affinity bitmask, the simulated analogue of cpu_set_t.
// The zero Mask is empty; schedulers treat an empty mask as "all cores".
type Mask struct {
	bits []uint64
}

// NewMask returns a mask with the given cores set.
func NewMask(cores ...int) Mask {
	var m Mask
	for _, c := range cores {
		m.Set(c)
	}
	return m
}

// FullMask returns a mask with cores 0..n-1 set.
func FullMask(n int) Mask {
	var m Mask
	for c := 0; c < n; c++ {
		m.Set(c)
	}
	return m
}

// RangeMask returns a mask with cores lo..hi-1 set.
func RangeMask(lo, hi int) Mask {
	var m Mask
	for c := lo; c < hi; c++ {
		m.Set(c)
	}
	return m
}

// Set adds core c to the mask.
func (m *Mask) Set(c int) {
	w := c / 64
	for len(m.bits) <= w {
		m.bits = append(m.bits, 0)
	}
	m.bits[w] |= 1 << (uint(c) % 64)
}

// Clear removes core c from the mask.
func (m *Mask) Clear(c int) {
	w := c / 64
	if w < len(m.bits) {
		m.bits[w] &^= 1 << (uint(c) % 64)
	}
}

// Has reports whether core c is in the mask. An empty mask contains every
// core.
func (m Mask) Has(c int) bool {
	if m.IsEmpty() {
		return true
	}
	w := c / 64
	if w >= len(m.bits) {
		return false
	}
	return m.bits[w]&(1<<(uint(c)%64)) != 0
}

// IsEmpty reports whether no cores are set (meaning "unrestricted").
func (m Mask) IsEmpty() bool {
	for _, w := range m.bits {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of cores explicitly set.
func (m Mask) Count() int {
	n := 0
	for _, w := range m.bits {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Cores returns the explicitly set cores in ascending order.
func (m Mask) Cores() []int {
	var out []int
	for wi, w := range m.bits {
		for b := 0; b < 64; b++ {
			if w&(1<<uint(b)) != 0 {
				out = append(out, wi*64+b)
			}
		}
	}
	return out
}

// Clone returns an independent copy.
func (m Mask) Clone() Mask {
	out := Mask{bits: make([]uint64, len(m.bits))}
	copy(out.bits, m.bits)
	return out
}

// CloneInto returns an independent copy of m, reusing dst's backing
// storage when it is large enough. Hot affinity updates (worker pinning
// on every nOS-V placement) use it to avoid allocating a fresh mask per
// update.
func (m Mask) CloneInto(dst Mask) Mask {
	if cap(dst.bits) < len(m.bits) {
		return m.Clone()
	}
	b := dst.bits[:len(m.bits)]
	copy(b, m.bits)
	return Mask{bits: b}
}

// Equal reports whether two masks select the same cores.
func (m Mask) Equal(o Mask) bool {
	n := len(m.bits)
	if len(o.bits) > n {
		n = len(o.bits)
	}
	at := func(b []uint64, i int) uint64 {
		if i < len(b) {
			return b[i]
		}
		return 0
	}
	for i := 0; i < n; i++ {
		if at(m.bits, i) != at(o.bits, i) {
			return false
		}
	}
	return true
}

// String renders the mask like "0-3,8".
func (m Mask) String() string {
	if m.IsEmpty() {
		return "all"
	}
	cores := m.Cores()
	var sb strings.Builder
	for i := 0; i < len(cores); {
		j := i
		for j+1 < len(cores) && cores[j+1] == cores[j]+1 {
			j++
		}
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		if j > i {
			fmt.Fprintf(&sb, "%d-%d", cores[i], cores[j])
		} else {
			fmt.Fprintf(&sb, "%d", cores[i])
		}
		i = j + 1
	}
	return sb.String()
}
