package kernel

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

func TestFutexWakeFewerThanWaiters(t *testing.T) {
	// 5 waiters, Wake(2): exactly the first two (FIFO) wake; the rest
	// stay queued until a later wake.
	eng, k := testKernel(t, hw.SmallNode(), false)
	p := k.NewProcess("app")
	f := k.NewFutex()
	f.Word = 1
	var woken []int
	for i := 0; i < 5; i++ {
		i := i
		k.SpawnThread(p, "w", func(th *Thread) {
			th.Compute(sim.Duration(i+1) * sim.Microsecond) // stagger arrival
			f.Wait(th, 1, -1)
			woken = append(woken, i)
		})
	}
	k.SpawnThread(p, "waker", func(th *Thread) {
		th.Compute(1 * sim.Millisecond)
		if n := f.Wake(2); n != 2 {
			t.Errorf("Wake(2) = %d, want 2", n)
		}
		if f.Waiters() != 3 {
			t.Errorf("Waiters = %d after partial wake, want 3", f.Waiters())
		}
		th.Compute(1 * sim.Millisecond)
		// Waking more than remain reports only the real wake count.
		if n := f.Wake(100); n != 3 {
			t.Errorf("Wake(100) = %d, want 3", n)
		}
	})
	run(t, eng)
	if len(woken) != 5 {
		t.Fatalf("woken = %v, want all 5", woken)
	}
	for i := range woken {
		if woken[i] != i {
			t.Fatalf("wake order = %v, want FIFO", woken)
		}
	}
	if f.Waiters() != 0 {
		t.Fatalf("Waiters = %d at end", f.Waiters())
	}
}

func TestFutexWakeZeroAndEmpty(t *testing.T) {
	eng, k := testKernel(t, hw.SmallNode(), false)
	f := k.NewFutex()
	if n := f.Wake(3); n != 0 {
		t.Fatalf("Wake on empty futex = %d, want 0", n)
	}
	p := k.NewProcess("app")
	f.Word = 1
	waited := false
	k.SpawnThread(p, "w", func(th *Thread) {
		f.Wait(th, 1, 2*sim.Millisecond) // timeout backstop
		waited = true
	})
	k.SpawnThread(p, "waker", func(th *Thread) {
		th.Compute(1 * sim.Millisecond)
		if n := f.Wake(0); n != 0 {
			t.Errorf("Wake(0) = %d, want 0", n)
		}
		if f.Waiters() != 1 {
			t.Errorf("Wake(0) disturbed the wait queue")
		}
	})
	run(t, eng)
	if !waited {
		t.Fatal("waiter never resumed")
	}
}
