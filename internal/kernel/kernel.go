// Package kernel simulates the Linux process scheduler and the kernel
// facilities user-space scheduling builds on: pluggable scheduling
// classes (an EEVDF-style weighted fair class with slice-based
// preemption, SCHED_RR, SCHED_FIFO, and SCHED_BATCH — see Class),
// wake-up placement, idle stealing and periodic load balancing, futexes,
// timers, per-thread affinity, and nice priorities.
//
// Simulated threads are sim procs: their Go code runs in zero virtual time
// and advances the clock only through Thread.Compute and blocking
// syscalls, which is where all scheduling decisions are modelled.
package kernel

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Pid identifies a simulated process.
type Pid int

// Tid identifies a simulated thread.
type Tid int

// SchedParams are the tunables of the fair class, modelled on the Linux
// EEVDF/CFS sysctls.
type SchedParams struct {
	// TargetLatency is the period over which every runnable thread on a
	// core should run once (sched_latency).
	TargetLatency sim.Duration
	// MinGranularity is the smallest slice handed to a thread when a
	// core is crowded (sched_min_granularity).
	MinGranularity sim.Duration
	// WakeupGranularity limits wake-up preemption of the current thread
	// (sched_wakeup_granularity).
	WakeupGranularity sim.Duration
	// SleeperBonus caps how far behind min_vruntime a waking thread is
	// placed, giving sleepers a mild latency advantage.
	SleeperBonus sim.Duration
	// RRQuantum is the SCHED_RR round-robin quantum.
	RRQuantum sim.Duration
	// BalanceInterval is the period of the load balancer. Zero disables
	// periodic balancing (idle stealing still runs).
	BalanceInterval sim.Duration
	// YieldImmediate selects whether sched_yield reschedules right away
	// when competitors exist. Linux versions differ here (§5.3 of the
	// paper): false (the default) models the laziness of the paper's
	// Linux 5.14 testbed, where a yield takes effect only at the next
	// scheduler tick; true models a prompt EEVDF-style yield (used as
	// an ablation).
	YieldImmediate bool
	// TickInterval is the scheduler tick: the granularity at which a
	// lazy yield actually switches (Linux: 1 ms at CONFIG_HZ=1000).
	TickInterval sim.Duration
	// DefaultClass names the scheduling class new threads start in
	// ("fair", "rr", "fifo", "batch", or any registered class); empty
	// selects "fair". This is the knob the schedcmp kernel-scheduler
	// ablation sweeps.
	DefaultClass string
	// BatchSliceMult scales the fair slice for SCHED_BATCH threads
	// (non-positive selects DefaultBatchSliceMult).
	BatchSliceMult int
}

// DefaultSchedParams returns parameters approximating a stock 112-core
// Linux configuration.
func DefaultSchedParams() SchedParams {
	return SchedParams{
		TargetLatency:     24 * sim.Millisecond,
		MinGranularity:    3 * sim.Millisecond,
		WakeupGranularity: 1 * sim.Millisecond,
		SleeperBonus:      12 * sim.Millisecond,
		RRQuantum:         100 * sim.Millisecond,
		BalanceInterval:   4 * sim.Millisecond,
		YieldImmediate:    false,
		TickInterval:      1 * sim.Millisecond,
		DefaultClass:      "fair",
		BatchSliceMult:    DefaultBatchSliceMult,
	}
}

// Counters aggregates kernel-wide scheduling statistics.
type Counters struct {
	ContextSwitches int64 // thread dispatched on a core it wasn't current on
	Preemptions     int64 // involuntary slice-expiry or wake-up preemptions
	Migrations      int64 // dispatches on a different core than last time
	CrossSocket     int64 // migrations that crossed a socket boundary
	Wakeups         int64
	FutexWaits      int64
	FutexWakes      int64
	Yields          int64
	Sleeps          int64
	Steals          int64 // idle-balance pulls
	BalanceMoves    int64 // periodic-balance moves
	ThreadsCreated  int64
	ThreadsExited   int64
}

// Kernel is one simulated machine instance.
type Kernel struct {
	Eng    *sim.Engine
	HW     hw.Config
	Params SchedParams

	cores []*Core
	// classes holds one instance of every registered scheduling class,
	// in ascending rank order (the core pick order); defaultClass is the
	// class new threads start in (SchedParams.DefaultClass).
	classes      []Class
	classByName  map[string]Class
	defaultClass Class
	// stealableSlot and classRank cache Stealable()/Rank() by queue
	// slot so per-pick decisions avoid interface calls.
	stealableSlot []bool
	classRank     []int

	procs   map[Pid]*Process
	threads map[Tid]*Thread
	nextPid Pid
	nextTid Tid

	bw *bwManager

	Stats Counters

	// BWSample, when non-nil, is invoked whenever a socket's consumed
	// bandwidth changes: (time, socket, bytes/ns actually flowing).
	BWSample func(at sim.Time, socket int, used float64)

	// Local carries machine-wide upper-layer state (e.g. the registry of
	// nOS-V shared-memory segments), keyed by subsystem name.
	Local map[string]any

	// Tracer, when non-nil, records scheduling events (dispatches,
	// blocks, wakes) for offline inspection.
	Tracer *trace.Buffer

	balanceEv sim.Event
	rrSeq     uint64 // dispatch sequence for FIFO tie-breaking
}

// New creates a kernel over the given engine and machine.
func New(eng *sim.Engine, cfg hw.Config, params SchedParams) *Kernel {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	k := &Kernel{
		Eng:     eng,
		HW:      cfg,
		Params:  params,
		procs:   make(map[Pid]*Process),
		threads: make(map[Tid]*Thread),
		Local:   make(map[string]any),
	}
	k.classes = newClasses(k)
	k.classByName = make(map[string]Class, len(k.classes))
	k.stealableSlot = make([]bool, len(k.classes))
	k.classRank = make([]int, len(k.classes))
	for i, cl := range k.classes {
		k.classByName[cl.Name()] = cl
		k.stealableSlot[i] = cl.Stealable()
		k.classRank[i] = cl.Rank()
	}
	def := params.DefaultClass
	if def == "" {
		def = "fair"
	}
	cl, ok := k.classByName[def]
	if !ok {
		panic(fmt.Sprintf("kernel: unknown scheduling class %q (have %v)", def, ClassNames()))
	}
	k.defaultClass = cl
	n := cfg.Topo.Cores()
	k.cores = make([]*Core, n)
	for i := 0; i < n; i++ {
		k.cores[i] = newCore(k, i)
	}
	k.bw = newBWManager(k)
	return k
}

// Classes returns the kernel's scheduling-class instances in ascending
// rank (pick) order.
func (k *Kernel) Classes() []Class { return append([]Class(nil), k.classes...) }

// Class returns the kernel's instance of the named scheduling class.
func (k *Kernel) Class(name string) (Class, bool) {
	cl, ok := k.classByName[name]
	return cl, ok
}

// DefaultClass returns the class new threads start in.
func (k *Kernel) DefaultClass() Class { return k.defaultClass }

// NumCores returns the number of simulated cores.
func (k *Kernel) NumCores() int { return len(k.cores) }

// Process is a simulated process: a container for threads sharing a pid,
// an environment, and a default affinity inherited by new threads.
type Process struct {
	PID  Pid
	Name string

	kern *Kernel
	// UID and GID model process credentials; nOS-V only lets processes
	// of the same user and group share a memory segment (§4.4).
	UID, GID int
	// Env mimics the process environment (USF_ENABLE et al.).
	Env map[string]string
	// DefaultAffinity is inherited by threads created in this process
	// (the cpuset-style partitioning used by the microservices baselines).
	DefaultAffinity Mask
	// DefaultNice is applied to new threads.
	DefaultNice int

	threads []*Thread
	exited  bool

	// Local lets upper layers (glibc, nOS-V) attach per-process state
	// without the kernel knowing their types.
	Local map[string]any
}

// NewProcess creates a process.
func (k *Kernel) NewProcess(name string) *Process {
	k.nextPid++
	p := &Process{
		PID:   k.nextPid,
		Name:  name,
		kern:  k,
		Env:   make(map[string]string),
		Local: make(map[string]any),
	}
	k.procs[p.PID] = p
	return p
}

// Kernel returns the owning kernel.
func (p *Process) Kernel() *Kernel { return p.kern }

// Threads returns a snapshot of the process's live threads.
func (p *Process) Threads() []*Thread {
	out := make([]*Thread, 0, len(p.threads))
	for _, t := range p.threads {
		if t.state != ThreadExited {
			out = append(out, t)
		}
	}
	return out
}

// LookupThread finds a thread by tid, or nil.
func (k *Kernel) LookupThread(tid Tid) *Thread { return k.threads[tid] }

// Processes returns all processes, in creation order of pid.
func (k *Kernel) Processes() []*Process {
	out := make([]*Process, 0, len(k.procs))
	for pid := Pid(1); pid <= k.nextPid; pid++ {
		if p, ok := k.procs[pid]; ok {
			out = append(out, p)
		}
	}
	return out
}

// Current returns the thread whose code is currently executing, or nil when
// called from event context. The thread rides on the proc's Data slot
// (set by SpawnThread, cleared on exit), so the lookup is pointer-chasing
// only — no map access on this per-syscall path. It stays correct with
// independent engines running concurrently: the binding is per-proc.
func (k *Kernel) Current() *Thread {
	p := k.Eng.Current()
	if p == nil {
		return nil
	}
	if t, ok := p.Data.(*Thread); ok && t.kern == k {
		return t
	}
	return nil
}

// CoreBusy reports whether core c currently runs a thread.
func (k *Kernel) CoreBusy(c int) bool { return k.cores[c].curr != nil }

// CoreRunnable returns the number of runnable-or-running threads associated
// with core c.
func (k *Kernel) CoreRunnable(c int) int {
	n := k.cores[c].queued()
	if k.cores[c].curr != nil {
		n++
	}
	return n
}

// CoreQueued returns the number of threads waiting in core c's runqueue
// (the running thread excluded) — the per-core backlog depth telemetry
// scrapers sample.
func (k *Kernel) CoreQueued(c int) int { return k.cores[c].queued() }

// TotalRunnable returns system-wide runnable thread count (including
// running ones) — the oversubscription level.
func (k *Kernel) TotalRunnable() int {
	n := 0
	for _, c := range k.cores {
		n += c.queued()
		if c.curr != nil {
			n++
		}
	}
	return n
}

// TotalBusyTime returns the sum of busy time across all cores.
func (k *Kernel) TotalBusyTime() sim.Duration {
	var b sim.Duration
	for _, c := range k.cores {
		b += c.busyAccum
		if !c.isIdle && c.curr != nil {
			b += k.Eng.Now().Sub(c.curr.dispatchedAt)
		}
	}
	return b
}

// CoreIdleTime returns the accumulated idle time of core c.
func (k *Kernel) CoreIdleTime(c int) sim.Duration {
	co := k.cores[c]
	idle := co.idleAccum
	if co.isIdle {
		idle += k.Eng.Now().Sub(co.idleSince)
	}
	return idle
}

func (k *Kernel) String() string {
	return fmt.Sprintf("kernel(%s, %d cores, %d threads)", k.HW.Name, len(k.cores), len(k.threads))
}
