package kernel

import "repro/internal/sim"

// Futex is the simulated analogue of a Linux futex word: a 32-bit value
// plus a kernel wait queue. glibc-level synchronisation objects (mutex,
// condition variable, barrier, semaphore) are built on it exactly as in
// the real library.
//
// The simulation executes one thread at a time, so Word needs no atomics;
// the interleaving-sensitive part — who sleeps and who gets woken in what
// order — is what the futex models.
type Futex struct {
	Word    int32
	k       *Kernel
	waiters []*Thread // FIFO
}

// NewFutex creates a futex belonging to the kernel.
func (k *Kernel) NewFutex() *Futex { return &Futex{k: k} }

// WaitResult describes how a futex wait ended.
type WaitResult int

// Futex wait outcomes.
const (
	WaitWoken    WaitResult = iota // woken by FutexWake
	WaitEAGAIN                     // word changed before sleeping
	WaitTimedOut                   // timeout expired
)

// Wait blocks the calling thread while f.Word == expect, like
// FUTEX_WAIT. A negative timeout waits forever.
func (f *Futex) Wait(t *Thread, expect int32, timeout sim.Duration) WaitResult {
	t.assertCurrent()
	k := f.k
	t.chargeSyscall()
	if f.Word != expect {
		return WaitEAGAIN
	}
	k.Stats.FutexWaits++
	f.waiters = append(f.waiters, t)
	t.waitsOn = f
	if timeout >= 0 {
		t.timeoutFutex = f
		t.futexTimedOut = false
		t.sleepEv = k.Eng.AfterFunc(timeout, futexTimeout, t)
	}
	k.blockCurrent(t)
	t.proc.Park()
	t.sleepEv.Cancel()
	t.sleepEv = sim.Event{}
	if t.futexTimedOut {
		t.futexTimedOut = false
		t.timeoutFutex = nil
		return WaitTimedOut
	}
	t.timeoutFutex = nil
	return WaitWoken
}

// futexTimeout is the wait-timeout callback shared by every thread: it
// wakes the waiter unless it was requeued to another futex (then the
// timer armed for the original wait is dead, as in FUTEX_CMP_REQUEUE).
func futexTimeout(arg any) {
	t := arg.(*Thread)
	t.sleepEv = sim.Event{}
	if f := t.timeoutFutex; f != nil && t.waitsOn == f {
		f.remove(t)
		t.futexTimedOut = true
		t.kern.wake(t, true)
	}
}

// popWaiter removes and returns the head of the wait queue. The queue
// shifts in place (rather than re-slicing the head away) so the backing
// array is stable and wait/wake cycles do not reallocate it.
func (f *Futex) popWaiter() *Thread {
	t := f.waiters[0]
	n := copy(f.waiters, f.waiters[1:])
	f.waiters[n] = nil
	f.waiters = f.waiters[:n]
	return t
}

// Wake wakes up to n waiters (FUTEX_WAKE) and returns how many were woken.
// It may be called from thread or event context.
func (f *Futex) Wake(n int) int {
	k := f.k
	woken := 0
	for woken < n && len(f.waiters) > 0 {
		t := f.popWaiter()
		t.waitsOn = nil
		t.sleepEv.Cancel()
		t.sleepEv = sim.Event{}
		k.Stats.FutexWakes++
		k.wake(t, true)
		woken++
	}
	return woken
}

// Requeue wakes up to nWake waiters and moves up to nMove of the remaining
// ones onto target's wait queue (FUTEX_CMP_REQUEUE). Used by condition
// variable broadcast to avoid thundering herds.
func (f *Futex) Requeue(nWake, nMove int, target *Futex) (woken, moved int) {
	woken = f.Wake(nWake)
	for moved < nMove && len(f.waiters) > 0 {
		t := f.popWaiter()
		t.waitsOn = target
		target.waiters = append(target.waiters, t)
		moved++
	}
	return woken, moved
}

// Waiters returns the number of threads currently asleep on the futex.
func (f *Futex) Waiters() int { return len(f.waiters) }

// remove deletes t from the wait queue (timeout or thread exit).
func (f *Futex) remove(t *Thread) {
	for i, x := range f.waiters {
		if x == t {
			copy(f.waiters[i:], f.waiters[i+1:])
			f.waiters = f.waiters[:len(f.waiters)-1]
			break
		}
	}
	t.waitsOn = nil
}
