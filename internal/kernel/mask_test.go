package kernel

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

func TestMaskSetClearIdempotent(t *testing.T) {
	var m Mask
	m.Set(5)
	m.Set(5)
	if m.Count() != 1 {
		t.Fatalf("double Set: Count = %d, want 1", m.Count())
	}
	m.Clear(5)
	m.Clear(5)
	if !m.IsEmpty() {
		t.Fatal("double Clear left the mask non-empty")
	}
	// Clearing a core beyond the allocated words must not panic or
	// allocate.
	m.Clear(1000)
	if !m.IsEmpty() {
		t.Fatal("Clear past the end changed the mask")
	}
}

func TestMaskMultiWord(t *testing.T) {
	// Cores straddling several 64-bit words, including word boundaries.
	cores := []int{0, 63, 64, 127, 128, 200}
	m := NewMask(cores...)
	if m.Count() != len(cores) {
		t.Fatalf("Count = %d, want %d", m.Count(), len(cores))
	}
	got := m.Cores()
	for i, c := range cores {
		if got[i] != c {
			t.Fatalf("Cores = %v, want %v", got, cores)
		}
	}
	for _, c := range []int{1, 62, 65, 129, 199, 201} {
		if m.Has(c) {
			t.Fatalf("Has(%d) true for unset core", c)
		}
	}
	if m.String() != "0,63-64,127-128,200" {
		t.Fatalf("String = %q", m.String())
	}
}

func TestMaskEqualAcrossWordLengths(t *testing.T) {
	// Masks representing the same cores with different backing-array
	// lengths (one grew to word 3 and shrank back via Clear) compare
	// equal.
	a := NewMask(1, 2)
	b := NewMask(1, 2, 200)
	if a.Equal(b) {
		t.Fatal("distinct masks compare equal")
	}
	b.Clear(200)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("equal masks with different word counts compare unequal")
	}
	var empty Mask
	long := NewMask(300)
	long.Clear(300)
	if !empty.Equal(long) || !long.Equal(empty) {
		t.Fatal("empty masks with different word counts compare unequal")
	}
}

func TestMaskCloneIndependent(t *testing.T) {
	a := NewMask(1, 2, 3)
	b := a.Clone()
	b.Clear(2)
	b.Set(9)
	if !a.Has(2) || a.Has(9) {
		t.Fatal("Clone shares storage with the original")
	}
}

func TestMaskIntersectionViaHas(t *testing.T) {
	// The scheduler's effective intersection of affinity and core set is
	// Has per core; an empty mask intersects as the full set.
	a := NewMask(0, 2, 4, 6)
	b := NewMask(2, 3, 4)
	var got []int
	for c := 0; c < 8; c++ {
		if a.Has(c) && b.Has(c) {
			got = append(got, c)
		}
	}
	want := []int{2, 4}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("intersection = %v, want %v", got, want)
	}
	var empty Mask
	n := 0
	for c := 0; c < 8; c++ {
		if empty.Has(c) && a.Has(c) {
			n++
		}
	}
	if n != a.Count() {
		t.Fatal("empty mask must intersect as the full set")
	}
}

func TestEmptyMaskAffinityRunsAnywhere(t *testing.T) {
	// A thread with an empty (unrestricted) affinity mask schedules on
	// any core: 8 such threads on 8 cores run perfectly in parallel.
	eng, k := testKernel(t, hw.SmallNode(), false)
	p := k.NewProcess("app")
	var latest sim.Time
	for i := 0; i < 8; i++ {
		k.SpawnThread(p, "w", func(th *Thread) {
			th.SetAffinity(Mask{})
			if th.Affinity().Count() != 0 {
				t.Error("empty affinity mask not preserved")
			}
			th.Compute(5 * sim.Millisecond)
			if eng.Now() > latest {
				latest = eng.Now()
			}
		})
	}
	run(t, eng)
	if latest != sim.Time(5*sim.Millisecond) {
		t.Fatalf("makespan %v, want 5ms (empty mask must allow all cores)", latest)
	}
}
